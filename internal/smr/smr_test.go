package smr

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"rex/internal/apps"
	"rex/internal/env"
	"rex/internal/sim"
	"rex/internal/storage"
	"rex/internal/transport"
)

func startCluster(t *testing.T, e *sim.Env, app apps.App) []*Replica {
	t.Helper()
	const n = 3
	net := transport.NewNetwork(e, n, 500*time.Microsecond, 5)
	var reps []*Replica
	for i := 0; i < n; i++ {
		r, err := NewReplica(Config{
			ID: i, N: n, Env: e,
			Endpoint:        net.Endpoint(i),
			Log:             storage.NewMemLog(),
			Factory:         app.Factory,
			Timers:          app.Timers,
			BatchEvery:      2 * time.Millisecond,
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 100 * time.Millisecond,
			Seed:            5,
		})
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		r.Start()
		reps = append(reps, r)
	}
	return reps
}

func waitLeader(t *testing.T, e *sim.Env, reps []*Replica) int {
	t.Helper()
	deadline := e.Now() + 5*time.Second
	for e.Now() < deadline {
		for i, r := range reps {
			if r.IsLeader() {
				return i
			}
		}
		e.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no SMR leader elected")
	return -1
}

func TestSMRReplicatesSequentially(t *testing.T) {
	e := sim.New(4)
	e.Run(func() {
		app := apps.LSMKV()
		reps := startCluster(t, e, app)
		lead := waitLeader(t, e, reps)
		g := env.NewGroup(e)
		for cid := 0; cid < 3; cid++ {
			cid := cid
			g.Add(1)
			e.Go("client", func() {
				defer g.Done()
				wl := app.NewWorkload(int64(cid + 1))
				for i := 0; i < 20; i++ {
					if _, err := reps[lead].Submit(uint64(cid+1), uint64(i+1), wl.Next()); err != nil {
						t.Errorf("submit: %v", err)
						return
					}
				}
			})
		}
		g.Wait()
		// All replicas execute the same total order; wait for followers to
		// drain and compare serialized state.
		deadline := e.Now() + 10*time.Second
		for e.Now() < deadline {
			if reps[0].Executed() == 60 && reps[1].Executed() == 60 && reps[2].Executed() == 60 {
				break
			}
			e.Sleep(10 * time.Millisecond)
		}
		var states []string
		for _, r := range reps {
			var buf bytes.Buffer
			if err := r.sm.WriteCheckpoint(&buf); err != nil {
				t.Fatal(err)
			}
			states = append(states, buf.String())
		}
		if states[0] != states[1] || states[1] != states[2] {
			t.Error("SMR replicas diverged")
		}
		for _, r := range reps {
			r.Stop()
		}
	})
}

func TestSMRDedup(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		app := apps.HashDB()
		reps := startCluster(t, e, app)
		lead := waitLeader(t, e, reps)
		body := []byte(fmt.Sprintf("%c%s", 1, "k"))
		_ = body
		wl := app.NewWorkload(9)
		req := wl.Next()
		if _, err := reps[lead].Submit(7, 1, req); err != nil {
			t.Fatal(err)
		}
		before := reps[lead].Executed()
		// Re-executing the same (client, seq) must be suppressed.
		reps[lead].Submit(7, 1, req)
		e.Sleep(50 * time.Millisecond)
		// The duplicate may block forever waiting for a response that was
		// already delivered and dropped — but it must not RE-EXECUTE.
		if got := reps[lead].Executed(); got != before {
			t.Errorf("duplicate executed: %d -> %d", before, got)
		}
		for _, r := range reps {
			r.Stop()
		}
	})
}

func TestSMRFollowerRejectsSubmit(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		app := apps.Thumbnail()
		reps := startCluster(t, e, app)
		lead := waitLeader(t, e, reps)
		follower := (lead + 1) % 3
		if _, err := reps[follower].Submit(1, 1, app.NewWorkload(1).Next()); err != ErrNotLeader {
			t.Errorf("follower Submit err = %v, want ErrNotLeader", err)
		}
		for _, r := range reps {
			r.Stop()
		}
	})
}
