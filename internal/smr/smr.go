// Package smr implements standard state-machine replication — the paper's
// "RSM" baseline (§2.1, Fig. 1 left): replicas agree on a total order of
// request batches through the same Paxos engine Rex uses, then execute
// them sequentially and deterministically on a single logical thread.
//
// Background tasks, which classic SMR cannot run nondeterministically, are
// injected by the leader as ordered pseudo-requests, so applications with
// timers (LSM compaction, auto-sync) still function under the baseline.
package smr

import (
	"errors"
	"fmt"
	"time"

	"rex/internal/core"
	"rex/internal/env"
	"rex/internal/paxos"
	"rex/internal/sched"
	"rex/internal/storage"
	"rex/internal/transport"
	"rex/internal/wire"
)

// Config configures an SMR replica.
type Config struct {
	ID       int
	N        int
	Env      env.Env
	Endpoint transport.Endpoint
	Log      storage.Log
	Factory  core.Factory
	Timers   int

	BatchEvery      time.Duration
	HeartbeatEvery  time.Duration
	ElectionTimeout time.Duration
	MaxOutstanding  int
	Seed            int64
	Logf            func(string, ...any)
}

// ErrNotLeader reports a Submit at a non-leader replica.
var ErrNotLeader = errors.New("smr: not the leader")

// ErrStopped reports a Submit abandoned by shutdown or demotion.
var ErrStopped = errors.New("smr: stopped or demoted")

type pending struct {
	ch env.Chan
}

type reqKey struct {
	client, seq uint64
}

type dedupEntry struct {
	seq  uint64
	resp []byte
}

type batchReq struct {
	Client, Seq uint64
	Timer       int // >= 0: pseudo-request firing timer i; Body unused
	Body        []byte
}

// Replica is one SMR replica.
type Replica struct {
	cfg  Config
	e    env.Env
	node *paxos.Node

	mu      env.Mutex
	cond    env.Cond
	leader  bool
	stopped bool
	batch   []batchReq
	pend    map[reqKey]*pending
	dedup   map[uint64]dedupEntry
	inFly   int

	rt     *sched.Runtime
	sm     core.StateMachine
	timers []core.TimerSpecView
	ctx    *core.Ctx

	applyQ env.Chan

	executed uint64
	lastFire []time.Duration
}

// NewReplica builds an SMR replica.
func NewReplica(cfg Config) (*Replica, error) {
	if cfg.BatchEvery <= 0 {
		cfg.BatchEvery = 2 * time.Millisecond
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 20 * time.Millisecond
	}
	if cfg.ElectionTimeout <= 0 {
		cfg.ElectionTimeout = 150 * time.Millisecond
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 1024
	}
	r := &Replica{
		cfg:   cfg,
		e:     cfg.Env,
		pend:  make(map[reqKey]*pending),
		dedup: make(map[uint64]dedupEntry),
	}
	r.mu = cfg.Env.NewMutex()
	r.cond = cfg.Env.NewCond(r.mu)
	r.applyQ = cfg.Env.NewChan(0)

	// The application executes on one logical thread, entirely in native
	// mode: consensus precedes execution, so determinism comes from the
	// total order alone.
	rt := sched.NewRuntime(cfg.Env, 1+cfg.Timers, sched.ModeNative)
	host := &core.TimerHost{}
	r.sm = cfg.Factory(rt, host)
	specs := host.Specs()
	if len(specs) != cfg.Timers {
		return nil, fmt.Errorf("smr: factory registered %d timers, config says %d", len(specs), cfg.Timers)
	}
	r.rt = rt
	r.timers = specs
	r.lastFire = make([]time.Duration, len(specs))
	r.ctx = core.NewNativeCtxForWorker(cfg.Env, rt.Worker(0), cfg.Seed)

	node, err := paxos.NewNode(paxos.Config{
		ID: cfg.ID, N: cfg.N, Env: cfg.Env,
		Endpoint:        cfg.Endpoint,
		Log:             cfg.Log,
		HeartbeatEvery:  cfg.HeartbeatEvery,
		ElectionTimeout: cfg.ElectionTimeout,
		Seed:            cfg.Seed,
		Logf:            cfg.Logf,
		OnCommitted: func(inst uint64, val []byte) {
			r.applyQ.Send(val)
		},
		OnBecomeLeader: func() {
			r.mu.Lock()
			r.leader = true
			r.cond.Broadcast()
			r.mu.Unlock()
		},
		OnNewLeader: func(l int) {
			r.mu.Lock()
			r.leader = false
			for _, p := range r.pend {
				p.ch.Close()
			}
			r.pend = make(map[reqKey]*pending)
			r.batch = nil
			r.inFly = 0
			r.cond.Broadcast()
			r.mu.Unlock()
		},
	})
	if err != nil {
		return nil, err
	}
	r.node = node
	return r, nil
}

// Start brings the replica up.
func (r *Replica) Start() {
	r.node.Start()
	r.e.Go(fmt.Sprintf("smr-%d-apply", r.cfg.ID), r.applyLoop)
	r.e.Go(fmt.Sprintf("smr-%d-pump", r.cfg.ID), r.pump)
}

// Stop shuts the replica down.
func (r *Replica) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	for _, p := range r.pend {
		p.ch.Close()
	}
	r.pend = make(map[reqKey]*pending)
	r.cond.Broadcast()
	r.mu.Unlock()
	r.node.Stop()
	r.applyQ.Close()
}

// IsLeader reports whether this replica currently leads.
func (r *Replica) IsLeader() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leader
}

// Executed returns the number of requests executed locally.
func (r *Replica) Executed() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.executed
}

// Submit runs one request through consensus and sequential execution.
func (r *Replica) Submit(client, seq uint64, body []byte) ([]byte, error) {
	r.mu.Lock()
	for {
		if r.stopped {
			r.mu.Unlock()
			return nil, ErrStopped
		}
		if !r.leader {
			r.mu.Unlock()
			return nil, ErrNotLeader
		}
		if e, ok := r.dedup[client]; ok && seq <= e.seq {
			resp := e.resp
			r.mu.Unlock()
			return resp, nil
		}
		if r.inFly < r.cfg.MaxOutstanding {
			break
		}
		r.cond.Wait()
	}
	p := &pending{ch: r.e.NewChan(1)}
	r.pend[reqKey{client, seq}] = p
	r.inFly++
	r.batch = append(r.batch, batchReq{Client: client, Seq: seq, Timer: -1, Body: body})
	r.mu.Unlock()
	v, ok := p.ch.Recv()
	if !ok {
		return nil, ErrStopped
	}
	return v.([]byte), nil
}

// pump proposes batches and injects due timer pseudo-requests.
func (r *Replica) pump() {
	for {
		r.e.Sleep(r.cfg.BatchEvery)
		r.mu.Lock()
		if r.stopped {
			r.mu.Unlock()
			return
		}
		if !r.leader {
			r.mu.Unlock()
			continue
		}
		now := r.e.Now()
		for i, spec := range r.timers {
			if now-r.lastFire[i] >= spec.Interval {
				r.lastFire[i] = now
				r.batch = append(r.batch, batchReq{Timer: i})
			}
		}
		if len(r.batch) == 0 {
			r.mu.Unlock()
			continue
		}
		batch := r.batch
		r.batch = nil
		r.mu.Unlock()
		r.node.Propose(encodeBatch(batch))
	}
}

// applyLoop executes committed batches sequentially.
func (r *Replica) applyLoop() {
	for {
		v, ok := r.applyQ.Recv()
		if !ok {
			return
		}
		batch, err := decodeBatch(v.([]byte))
		if err != nil {
			if r.cfg.Logf != nil {
				r.cfg.Logf("smr[%d]: corrupt batch: %v", r.cfg.ID, err)
			}
			return
		}
		for _, req := range batch {
			if req.Timer >= 0 {
				r.timers[req.Timer].Cb(r.ctx)
				continue
			}
			r.mu.Lock()
			if last, ok := r.dedup[req.Client]; ok && req.Seq <= last.seq {
				r.mu.Unlock()
				continue
			}
			r.mu.Unlock()
			resp := r.sm.Apply(r.ctx, req.Body)
			r.mu.Lock()
			r.dedup[req.Client] = dedupEntry{seq: req.Seq, resp: resp}
			r.executed++
			if p, ok := r.pend[reqKey{req.Client, req.Seq}]; ok {
				p.ch.Send(resp)
				delete(r.pend, reqKey{req.Client, req.Seq})
				r.inFly--
				r.cond.Broadcast()
			}
			r.mu.Unlock()
		}
	}
}

func encodeBatch(batch []batchReq) []byte {
	e := wire.NewEncoder(nil)
	e.Uvarint(uint64(len(batch)))
	for _, b := range batch {
		e.Varint(int64(b.Timer))
		e.Uvarint(b.Client)
		e.Uvarint(b.Seq)
		e.BytesVal(b.Body)
	}
	return e.Bytes()
}

func decodeBatch(buf []byte) ([]batchReq, error) {
	d := wire.NewDecoder(buf)
	n := d.Uvarint()
	if d.Err() != nil || n > 1<<24 {
		return nil, wire.ErrCorrupt
	}
	out := make([]batchReq, 0, n)
	for i := uint64(0); i < n; i++ {
		b := batchReq{Timer: int(d.Varint()), Client: d.Uvarint(), Seq: d.Uvarint()}
		b.Body = append([]byte(nil), d.BytesVal()...)
		out = append(out, b)
	}
	return out, d.Err()
}
