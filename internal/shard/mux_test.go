package shard

import (
	"testing"
	"time"

	"rex/internal/sim"
	"rex/internal/transport"
)

// TestNodeMuxRoutesByGroup checks the demux contract: a message sent on
// group g's sub-endpoint arrives on the peer node's sub-endpoint for g,
// with the sender translated to its in-group replica index.
func TestNodeMuxRoutesByGroup(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		m, err := NewShardMap(1, 2, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		// Placement: group 0 -> nodes {0,1}, group 1 -> nodes {1,2}.
		nw := transport.NewNetwork(e, 3, time.Millisecond, 1)
		muxes := make([]*NodeMux, 3)
		for n := range muxes {
			muxes[n] = NewNodeMux(e, nw.Endpoint(n), m, n)
		}
		g0n0 := muxes[0].Endpoint(0) // group 0 replica 0
		g0n1 := muxes[1].Endpoint(0) // group 0 replica 1
		g1n1 := muxes[1].Endpoint(1) // group 1 replica 0
		g1n2 := muxes[2].Endpoint(1) // group 1 replica 1

		if g0n0.ID() != 0 || g0n1.ID() != 1 || g1n1.ID() != 0 || g1n2.ID() != 1 {
			t.Fatalf("sub-endpoint IDs = %d %d %d %d", g0n0.ID(), g0n1.ID(), g1n1.ID(), g1n2.ID())
		}

		// Both groups talk over the shared node mesh without crosstalk.
		g0n0.Send(1, []byte("zero"))
		g1n2.Send(0, []byte("one"))
		if payload, from, ok := g0n1.Recv(); !ok || from != 0 || string(payload) != "zero" {
			t.Fatalf("group 0 recv = %q,%d,%v", payload, from, ok)
		}
		if payload, from, ok := g1n1.Recv(); !ok || from != 1 || string(payload) != "one" {
			t.Fatalf("group 1 recv = %q,%d,%v", payload, from, ok)
		}

		// Closing one group's endpoint must not affect the other group on
		// the same node: replicas fail independently.
		g1n1.Close()
		g0n0.Send(1, []byte("still-up"))
		if payload, _, ok := g0n1.Recv(); !ok || string(payload) != "still-up" {
			t.Fatalf("group 0 after group 1 close = %q,%v", payload, ok)
		}

		// Re-acquiring a group endpoint (a restarted replica) starts with a
		// fresh inbox and keeps working.
		g1n1b := muxes[1].Endpoint(1)
		g1n2.Send(0, []byte("after-restart"))
		if payload, from, ok := g1n1b.Recv(); !ok || from != 1 || string(payload) != "after-restart" {
			t.Fatalf("restarted group 1 recv = %q,%d,%v", payload, from, ok)
		}

		// Node mux close tears down the remaining sub-endpoints.
		muxes[1].Close()
		if _, _, ok := g0n1.Recv(); ok {
			t.Fatal("sub-endpoint still open after node close")
		}
	})
}
