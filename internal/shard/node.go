package shard

import (
	"fmt"
	"strconv"

	"rex/internal/core"
	"rex/internal/env"
	"rex/internal/obs"
	"rex/internal/storage"
	"rex/internal/transport"
)

// NodeConfig assembles one process's share of a sharded deployment: one
// core.Replica per group the map places on this node, all multiplexed
// over a single node-level endpoint.
type NodeConfig struct {
	Env      env.Env
	Map      *ShardMap
	Node     int
	Endpoint transport.Endpoint // node-level attachment (one listener, one peer mesh)

	// NewLog and NewSnapshots build group g's durable state — per-group
	// directories in a real process, so groups never share a WAL or a
	// snapshot store. Defaults are in-memory stores.
	NewLog       func(g int) (storage.Log, error)
	NewSnapshots func(g int) (storage.SnapshotStore, error)

	// Template seeds every group's core.Config. The per-group fields —
	// ID, N, Env, Endpoint, Log, Snapshots, Seed, Metrics, and the
	// election-timeout bias — are overwritten; everything else (Factory,
	// Workers, Timers, tuning) passes through unchanged.
	Template core.Config

	// Metrics, when set, receives each group's full series set under a
	// group="<g>" label, plus the node-wide rex_shard_* aggregates.
	Metrics *obs.Registry

	// RebalanceWrap, when set, wraps each hosted group's factory with the
	// live-rebalance ownership layer (rebalance.WrapFactory, injected
	// here to keep shard free of a dependency cycle). Setting it marks
	// the node rebalance-enabled: servers then serve the live map from
	// group 0's replicated state instead of the static bootstrap map.
	RebalanceWrap func(group int, inner core.Factory) core.Factory
}

// Node hosts this process's replicas. One Node = one process in the
// deployment; its groups fail independently (stopping one group's replica
// does not touch the node endpoint or the other groups).
type Node struct {
	cfg  NodeConfig
	mux  *NodeMux
	gids []int
	reps map[int]*core.Replica
}

// NewNode builds (but does not start) the node's replicas.
func NewNode(cfg NodeConfig) (*Node, error) {
	if err := cfg.Map.Validate(); err != nil {
		return nil, err
	}
	if cfg.Node < 0 || cfg.Node >= cfg.Map.Nodes {
		return nil, fmt.Errorf("shard: node %d outside map's %d nodes", cfg.Node, cfg.Map.Nodes)
	}
	gids := cfg.Map.GroupsOn(cfg.Node)
	if len(gids) == 0 {
		return nil, fmt.Errorf("shard: map places no groups on node %d", cfg.Node)
	}
	if cfg.NewLog == nil {
		cfg.NewLog = func(int) (storage.Log, error) { return storage.NewMemLog(), nil }
	}
	if cfg.NewSnapshots == nil {
		cfg.NewSnapshots = func(int) (storage.SnapshotStore, error) { return storage.NewMemSnapshots(), nil }
	}
	n := &Node{
		cfg:  cfg,
		mux:  NewNodeMux(cfg.Env, cfg.Endpoint, cfg.Map, cfg.Node),
		gids: gids,
		reps: make(map[int]*core.Replica, len(gids)),
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Gauge("rex_shard_groups").Set(int64(len(gids)))
		cfg.Metrics.Gauge("rex_shard_map_version").Set(int64(cfg.Map.Version))
		cfg.Metrics.Gauge("rex_shard_node").Set(int64(cfg.Node))
	}
	for _, g := range gids {
		rc := cfg.Template
		rc.Env = cfg.Env
		rc.ID = cfg.Map.ReplicaOn(g, cfg.Node)
		rc.N = cfg.Map.Replicas(g)
		rc.Group = g // session tokens are per-group; stamp the id
		rc.Endpoint = n.mux.Endpoint(g)
		var err error
		if rc.Log, err = cfg.NewLog(g); err != nil {
			return nil, fmt.Errorf("shard: group %d log: %w", g, err)
		}
		if rc.Snapshots, err = cfg.NewSnapshots(g); err != nil {
			return nil, fmt.Errorf("shard: group %d snapshots: %w", g, err)
		}
		// Decorrelate per-group randomness (election jitter above all):
		// identical seeds would make colocated groups' timers fire in
		// lockstep.
		rc.Seed = cfg.Template.Seed + int64(g)*1009 + int64(rc.ID)*17
		// The map's preferred primary (replica 0) gets half the election
		// timeout — Paxos picks base + rand(0..base), so its whole jitter
		// range sits below the others' and each group's primary lands
		// where the placement rotation put it, spreading leader load over
		// the nodes.
		if rc.ID == 0 && rc.ElectionTimeout > 0 {
			rc.ElectionTimeout = rc.ElectionTimeout / 2
		}
		if cfg.Metrics != nil {
			rc.Metrics = cfg.Metrics.Labeled("group", strconv.Itoa(g))
		}
		if cfg.RebalanceWrap != nil {
			rc.Factory = cfg.RebalanceWrap(g, rc.Factory)
		}
		rep, err := core.NewReplica(rc)
		if err != nil {
			return nil, fmt.Errorf("shard: group %d replica: %w", g, err)
		}
		n.reps[g] = rep
	}
	return n, nil
}

// Start brings every hosted replica up.
func (n *Node) Start() error {
	for _, g := range n.gids {
		if err := n.reps[g].Start(); err != nil {
			return fmt.Errorf("shard: start group %d: %w", g, err)
		}
	}
	return nil
}

// Stop shuts every hosted replica down, then the node endpoint.
func (n *Node) Stop() {
	for _, g := range n.gids {
		n.reps[g].Stop()
	}
	n.mux.Close()
}

// Groups lists the hosted group ids, ascending.
func (n *Node) Groups() []int { return append([]int(nil), n.gids...) }

// Replica returns the hosted replica for group g, or nil if the map does
// not place g here.
func (n *Node) Replica(g int) *core.Replica { return n.reps[g] }

// AddMember proposes admitting replica id to group g's membership. The
// hosted replica must currently be g's primary (core.ErrNotPrimary
// otherwise), exactly as for client submits.
func (n *Node) AddMember(g, id int, addr string) error {
	rep := n.reps[g]
	if rep == nil {
		return fmt.Errorf("shard: group %d not hosted on node %d", g, n.cfg.Node)
	}
	return rep.AddMember(id, addr)
}

// RemoveMember proposes retiring replica id from group g's membership.
func (n *Node) RemoveMember(g, id int) error {
	rep := n.reps[g]
	if rep == nil {
		return fmt.Errorf("shard: group %d not hosted on node %d", g, n.cfg.Node)
	}
	return rep.RemoveMember(id)
}

// ReplaceMember proposes swapping oldID for newID in group g's
// membership in one committed change.
func (n *Node) ReplaceMember(g, oldID, newID int, addr string) error {
	rep := n.reps[g]
	if rep == nil {
		return fmt.Errorf("shard: group %d not hosted on node %d", g, n.cfg.Node)
	}
	return rep.ReplaceMember(oldID, newID, addr)
}

// Map returns the shard map the node was built from.
func (n *Node) Map() *ShardMap { return n.cfg.Map }

// RebalanceEnabled reports whether the node's groups run under the
// live-rebalance ownership layer.
func (n *Node) RebalanceEnabled() bool { return n.cfg.RebalanceWrap != nil }
