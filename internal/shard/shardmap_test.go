package shard

import (
	"bytes"
	"fmt"
	"testing"
)

func TestNewShardMapRotatesPrimaries(t *testing.T) {
	m, err := NewShardMap(1, 4, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Replica r of group g on node (g+r) mod nodes; preferred primaries
	// (replica 0) rotate over all nodes.
	want := [][]int{{0, 1, 2}, {1, 2, 3}, {2, 3, 0}, {3, 0, 1}}
	for g, row := range want {
		for r, n := range row {
			if m.Placement[g][r] != n {
				t.Errorf("Placement[%d][%d] = %d, want %d", g, r, m.Placement[g][r], n)
			}
		}
	}
	for g := 0; g < 4; g++ {
		if m.Placement[g][0] != g%4 {
			t.Errorf("group %d preferred primary on node %d, want %d", g, m.Placement[g][0], g%4)
		}
	}
}

func TestNewShardMapRejectsBadShapes(t *testing.T) {
	cases := []struct{ groups, nodes, rpg int }{
		{0, 3, 3}, // no groups
		{2, 3, 0}, // no replicas
		{2, 2, 3}, // more replicas per group than nodes
	}
	for _, c := range cases {
		if _, err := NewShardMap(1, c.groups, c.nodes, c.rpg); err == nil {
			t.Errorf("NewShardMap(%d groups, %d nodes, %d rpg) accepted", c.groups, c.nodes, c.rpg)
		}
	}
}

// TestGroupForDeterminism pins the routing hash: same key + same map
// version must land on the same group on every node and across process
// restarts, so the expected values are golden constants (FNV-64a plus a
// fixed finalizer — seedless and process-independent). If this test ever
// needs regolding, the change breaks rolling restarts of a sharded
// deployment. (Regolded once, when range partitioning added the
// finalizer: raw FNV's high bits don't avalanche, and ranges split on
// the high bits.)
func TestGroupForDeterminism(t *testing.T) {
	m, err := NewShardMap(1, 8, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	golden := map[string]int{
		"":        6, // HashKey("") = 0xefd01f60ba992926, % 8
		"a":       3,
		"key-0":   1,
		"key-1":   4,
		"key-42":  0,
		"user:17": 7,
	}
	for key, want := range golden {
		if got := m.GroupFor([]byte(key)); got != want {
			t.Errorf("GroupFor(%q) = %d, want golden %d", key, got, want)
		}
	}
	// Every "node" computing the route independently — fresh map structs,
	// as after a restart — agrees.
	for node := 0; node < 3; node++ {
		m2, err := NewShardMap(1, 8, 8, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			key := []byte(fmt.Sprintf("key-%d", i))
			if m.GroupFor(key) != m2.GroupFor(key) {
				t.Fatalf("node %d disagrees on route for %q", node, key)
			}
		}
	}
}

// TestGroupForSurvivesEncodeDecode models a restart that reloads the map
// from its wire encoding (rexd fetching it, or rexctl caching it): the
// decoded map must route every key identically.
func TestGroupForSurvivesEncodeDecode(t *testing.T) {
	m, err := NewShardMap(7, 5, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := DecodeShardMapBytes(m.EncodeBytes())
	if err != nil {
		t.Fatal(err)
	}
	if m2.Version != 7 || m2.Nodes != 6 || m2.Groups() != 5 {
		t.Fatalf("decoded map %v", m2)
	}
	if !bytes.Equal(m.EncodeBytes(), m2.EncodeBytes()) {
		t.Fatal("re-encoding differs")
	}
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		if m.GroupFor(key) != m2.GroupFor(key) {
			t.Fatalf("decoded map routes %q to %d, original to %d",
				key, m2.GroupFor(key), m.GroupFor(key))
		}
	}
	for g := 0; g < m.Groups(); g++ {
		for n := 0; n < m.Nodes; n++ {
			if m.ReplicaOn(g, n) != m2.ReplicaOn(g, n) {
				t.Fatalf("decoded map disagrees on ReplicaOn(%d, %d)", g, n)
			}
		}
	}
}

func TestDecodeRejectsCorruptMaps(t *testing.T) {
	m, _ := NewShardMap(1, 2, 3, 2)
	good := m.EncodeBytes()
	if _, err := DecodeShardMapBytes(good[:len(good)-1]); err == nil {
		t.Error("truncated map accepted")
	}
	if _, err := DecodeShardMapBytes([]byte{1, 3, 0}); err == nil {
		t.Error("zero-group map accepted")
	}
	// A group with two replicas on one node must fail Validate.
	bad := &ShardMap{Version: 1, Nodes: 2, Placement: [][]int{{0, 0}}}
	if _, err := DecodeShardMapBytes(bad.EncodeBytes()); err == nil {
		t.Error("duplicate-node placement accepted")
	}
}

func TestGroupsOnAndReplicaOn(t *testing.T) {
	m, err := NewShardMap(1, 4, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 hosts: group 0 replica 0, group 2 replica 2, group 3 replica 1.
	got := m.GroupsOn(0)
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("GroupsOn(0) = %v", got)
	}
	if r := m.ReplicaOn(2, 0); r != 2 {
		t.Errorf("ReplicaOn(2, 0) = %d, want 2", r)
	}
	if r := m.ReplicaOn(1, 0); r != -1 {
		t.Errorf("ReplicaOn(1, 0) = %d, want -1", r)
	}
}

func TestEnsureRangesSeedsEqualPartition(t *testing.T) {
	m, err := NewShardMap(3, 4, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	m.EnsureRanges()
	if len(m.Ranges) != 4 {
		t.Fatalf("got %d ranges, want 4", len(m.Ranges))
	}
	if m.Ranges[0].Start != 0 {
		t.Fatalf("first range starts at %#x, want 0", m.Ranges[0].Start)
	}
	for i, r := range m.Ranges {
		if r.Group != i {
			t.Errorf("range %d owned by group %d, want %d", i, r.Group, i)
		}
		if r.Epoch != m.Version {
			t.Errorf("range %d epoch %d, want map version %d", i, r.Epoch, m.Version)
		}
		lo, hi := m.RangeBounds(i)
		if i < 3 && hi-lo != (^uint64(0))/4 {
			t.Errorf("range %d spans %#x, want a quarter", i, hi-lo)
		}
	}
	// Idempotent: a second call must not reshuffle.
	before := fmt.Sprint(m.Ranges)
	m.EnsureRanges()
	if got := fmt.Sprint(m.Ranges); got != before {
		t.Errorf("EnsureRanges not idempotent: %s -> %s", before, got)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("seeded map invalid: %v", err)
	}
}

func TestWithSplitMoveMerge(t *testing.T) {
	m, err := NewShardMap(1, 2, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	m.EnsureRanges()
	at := uint64(1) << 62

	// Split: new boundary, same owner and epoch both sides, version bump.
	ms, err := m.WithSplit(at)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Version != m.Version+1 || len(ms.Ranges) != 3 {
		t.Fatalf("split: v%d with %d ranges, want v%d with 3", ms.Version, len(ms.Ranges), m.Version+1)
	}
	i := ms.RangeIndexFor(at)
	if ms.Ranges[i].Start != at || ms.Ranges[i].Group != 0 {
		t.Fatalf("split range %d = %+v, want start %#x group 0", i, ms.Ranges[i], at)
	}
	if ms.Ranges[i].Epoch != ms.Ranges[i-1].Epoch {
		t.Errorf("split bumped the child epoch: %d vs %d (splits must not fence)",
			ms.Ranges[i].Epoch, ms.Ranges[i-1].Epoch)
	}
	if _, err := ms.WithSplit(at); err == nil {
		t.Error("re-split at an existing boundary accepted")
	}

	// Move: owner flips, epoch fences at the new version.
	mv, err := ms.WithMove(at, 1)
	if err != nil {
		t.Fatal(err)
	}
	j := mv.RangeIndexFor(at)
	if mv.Ranges[j].Group != 1 || mv.Ranges[j].Epoch != mv.Version {
		t.Fatalf("move range = %+v, want group 1 epoch %d", mv.Ranges[j], mv.Version)
	}
	if _, err := ms.WithMove(at, 0); err == nil {
		t.Error("move to the current owner accepted")
	}
	if _, err := ms.WithMove(at, 9); err == nil {
		t.Error("move to a group outside the map accepted")
	}

	// Merge: same-owner adjacent ranges fuse; the survivor is fenced.
	mg, err := mv.WithMerge(uint64(1) << 63)
	if err != nil {
		t.Fatal(err)
	}
	if len(mg.Ranges) != 2 {
		t.Fatalf("merge left %d ranges, want 2", len(mg.Ranges))
	}
	k := mg.RangeIndexFor(at)
	if lo, hi := mg.RangeBounds(k); lo != at || hi != ^uint64(0) {
		t.Fatalf("merged range spans [%#x, %#x], want [%#x, max]", lo, hi, at)
	}
	if mg.Ranges[k].Epoch != mg.Version {
		t.Errorf("merged range epoch %d, want fenced at v%d", mg.Ranges[k].Epoch, mg.Version)
	}
	if _, err := mv.WithMerge(at); err == nil {
		t.Error("merge across different owners accepted")
	}
	if _, err := mv.WithMerge(0); err == nil {
		t.Error("merge at the zero boundary accepted")
	}

	// Every derived map must round-trip with its ranges intact.
	for _, mm := range []*ShardMap{ms, mv, mg} {
		dec, err := DecodeShardMapBytes(mm.EncodeBytes())
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if fmt.Sprint(dec.Ranges) != fmt.Sprint(mm.Ranges) || dec.Version != mm.Version {
			t.Errorf("round-trip changed ranges: %v -> %v", mm.Ranges, dec.Ranges)
		}
	}
}

func TestRangeIndexForEdges(t *testing.T) {
	m, err := NewShardMap(1, 4, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	m.EnsureRanges()
	step := (^uint64(0))/4 + 1
	cases := []struct {
		h    uint64
		want int
	}{
		{0, 0},
		{step - 1, 0},
		{step, 1},
		{2*step - 1, 1},
		{3 * step, 3},
		{^uint64(0), 3},
	}
	for _, c := range cases {
		if got := m.RangeIndexFor(c.h); got != c.want {
			t.Errorf("RangeIndexFor(%#x) = %d, want %d", c.h, got, c.want)
		}
	}
}
