package shard

import (
	"bytes"
	"fmt"
	"testing"
)

func TestNewShardMapRotatesPrimaries(t *testing.T) {
	m, err := NewShardMap(1, 4, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Replica r of group g on node (g+r) mod nodes; preferred primaries
	// (replica 0) rotate over all nodes.
	want := [][]int{{0, 1, 2}, {1, 2, 3}, {2, 3, 0}, {3, 0, 1}}
	for g, row := range want {
		for r, n := range row {
			if m.Placement[g][r] != n {
				t.Errorf("Placement[%d][%d] = %d, want %d", g, r, m.Placement[g][r], n)
			}
		}
	}
	for g := 0; g < 4; g++ {
		if m.Placement[g][0] != g%4 {
			t.Errorf("group %d preferred primary on node %d, want %d", g, m.Placement[g][0], g%4)
		}
	}
}

func TestNewShardMapRejectsBadShapes(t *testing.T) {
	cases := []struct{ groups, nodes, rpg int }{
		{0, 3, 3}, // no groups
		{2, 3, 0}, // no replicas
		{2, 2, 3}, // more replicas per group than nodes
	}
	for _, c := range cases {
		if _, err := NewShardMap(1, c.groups, c.nodes, c.rpg); err == nil {
			t.Errorf("NewShardMap(%d groups, %d nodes, %d rpg) accepted", c.groups, c.nodes, c.rpg)
		}
	}
}

// TestGroupForDeterminism pins the routing hash: same key + same map
// version must land on the same group on every node and across process
// restarts, so the expected values are golden constants (FNV-64a is
// seedless and process-independent). If this test ever needs regolding,
// the change breaks rolling restarts of a sharded deployment.
func TestGroupForDeterminism(t *testing.T) {
	m, err := NewShardMap(1, 8, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	golden := map[string]int{
		"":        5, // FNV-64a offset basis 14695981039346656037 % 8
		"a":       4,
		"key-0":   1,
		"key-1":   6,
		"key-42":  5,
		"user:17": 4,
	}
	for key, want := range golden {
		if got := m.GroupFor([]byte(key)); got != want {
			t.Errorf("GroupFor(%q) = %d, want golden %d", key, got, want)
		}
	}
	// Every "node" computing the route independently — fresh map structs,
	// as after a restart — agrees.
	for node := 0; node < 3; node++ {
		m2, err := NewShardMap(1, 8, 8, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			key := []byte(fmt.Sprintf("key-%d", i))
			if m.GroupFor(key) != m2.GroupFor(key) {
				t.Fatalf("node %d disagrees on route for %q", node, key)
			}
		}
	}
}

// TestGroupForSurvivesEncodeDecode models a restart that reloads the map
// from its wire encoding (rexd fetching it, or rexctl caching it): the
// decoded map must route every key identically.
func TestGroupForSurvivesEncodeDecode(t *testing.T) {
	m, err := NewShardMap(7, 5, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := DecodeShardMapBytes(m.EncodeBytes())
	if err != nil {
		t.Fatal(err)
	}
	if m2.Version != 7 || m2.Nodes != 6 || m2.Groups() != 5 {
		t.Fatalf("decoded map %v", m2)
	}
	if !bytes.Equal(m.EncodeBytes(), m2.EncodeBytes()) {
		t.Fatal("re-encoding differs")
	}
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		if m.GroupFor(key) != m2.GroupFor(key) {
			t.Fatalf("decoded map routes %q to %d, original to %d",
				key, m2.GroupFor(key), m.GroupFor(key))
		}
	}
	for g := 0; g < m.Groups(); g++ {
		for n := 0; n < m.Nodes; n++ {
			if m.ReplicaOn(g, n) != m2.ReplicaOn(g, n) {
				t.Fatalf("decoded map disagrees on ReplicaOn(%d, %d)", g, n)
			}
		}
	}
}

func TestDecodeRejectsCorruptMaps(t *testing.T) {
	m, _ := NewShardMap(1, 2, 3, 2)
	good := m.EncodeBytes()
	if _, err := DecodeShardMapBytes(good[:len(good)-1]); err == nil {
		t.Error("truncated map accepted")
	}
	if _, err := DecodeShardMapBytes([]byte{1, 3, 0}); err == nil {
		t.Error("zero-group map accepted")
	}
	// A group with two replicas on one node must fail Validate.
	bad := &ShardMap{Version: 1, Nodes: 2, Placement: [][]int{{0, 0}}}
	if _, err := DecodeShardMapBytes(bad.EncodeBytes()); err == nil {
		t.Error("duplicate-node placement accepted")
	}
}

func TestGroupsOnAndReplicaOn(t *testing.T) {
	m, err := NewShardMap(1, 4, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 hosts: group 0 replica 0, group 2 replica 2, group 3 replica 1.
	got := m.GroupsOn(0)
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("GroupsOn(0) = %v", got)
	}
	if r := m.ReplicaOn(2, 0); r != 2 {
		t.Errorf("ReplicaOn(2, 0) = %d, want 2", r)
	}
	if r := m.ReplicaOn(1, 0); r != -1 {
		t.Errorf("ReplicaOn(1, 0) = %d, want -1", r)
	}
}
