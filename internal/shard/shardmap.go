// Package shard runs N independent Rex replica groups across one set of
// processes and routes client requests by key (partitioned parallel SMR:
// Marandi & Pedone). Each group is a full Rex cluster — Consensus,
// Determinism, and Prefix hold per group exactly as before — and the
// key→group mapping is static and conflict-free, so no cross-group
// ordering is ever needed. The pieces:
//
//   - ShardMap: the static, versioned placement of N groups × M replicas
//     over P nodes, with each group's preferred primary rotated across
//     nodes so leaders (and their WAL fsync load) spread over all
//     machines.
//   - NodeMux: multiplexes one replica endpoint per hosted group over a
//     single node-level transport endpoint.
//   - Router: hashes an application-supplied key to a group and forwards
//     the request to that group's client, which follows per-group
//     `not primary` hints independently.
//   - Node: hosts one core.Replica per hosted group inside one process,
//     with per-group storage and per-group-labeled metrics.
package shard

import (
	"fmt"
	"hash/fnv"

	"rex/internal/wire"
)

// ShardMap is the versioned key→group→replica placement. It is identical
// on every node (distributed out of band or fetched over the client
// protocol) and never changes within a version; live rebalancing
// (internal/rebalance) installs successor versions through the map
// consensus sequence, which is why every routed request carries the map
// version (range epoch) it was routed under.
type ShardMap struct {
	// Version identifies this placement; nodes reject requests routed
	// under a different version.
	Version uint64
	// Nodes is the number of processes the groups are placed over.
	Nodes int
	// Placement[g][r] is the node hosting replica r of group g. Replica 0
	// is the group's preferred primary; NewShardMap rotates it across
	// nodes so per-group primaries spread over all machines.
	Placement [][]int
	// Ranges partitions the 64-bit key-hash space into contiguous ranges,
	// sorted ascending by Start with Ranges[0].Start == 0; range i covers
	// [Ranges[i].Start, Ranges[i+1].Start) (the last range runs to the top
	// of the hash space). Empty means the legacy static hash%groups
	// routing; rebalance-enabled deployments seed ranges with
	// EnsureRanges.
	Ranges []Range
}

// Range is one contiguous span of the key-hash space owned by a group.
type Range struct {
	// Start is the first hash value in the range.
	Start uint64
	// Group owns the range.
	Group int
	// Epoch is the map version at which this group last acquired the
	// range (move) or at which the range's boundaries were last fused
	// (merge). Routed requests carry it as a fence: a replica whose
	// replicated ownership state has not yet reached the epoch NACKs
	// instead of serving a stale view. Splits inherit the parent epoch —
	// ownership is unchanged, so no fence blip.
	Epoch uint64
}

// NewShardMap builds the canonical rotated placement: replica r of group
// g lands on node (g+r) mod nodes, so group g's preferred primary sits on
// node g mod nodes.
func NewShardMap(version uint64, groups, nodes, replicasPerGroup int) (*ShardMap, error) {
	if groups < 1 {
		return nil, fmt.Errorf("shard: need at least one group, got %d", groups)
	}
	if replicasPerGroup < 1 {
		return nil, fmt.Errorf("shard: need at least one replica per group, got %d", replicasPerGroup)
	}
	if nodes < replicasPerGroup {
		return nil, fmt.Errorf("shard: %d replicas per group need at least that many nodes, got %d",
			replicasPerGroup, nodes)
	}
	m := &ShardMap{Version: version, Nodes: nodes, Placement: make([][]int, groups)}
	for g := range m.Placement {
		row := make([]int, replicasPerGroup)
		for r := range row {
			row[r] = (g + r) % nodes
		}
		m.Placement[g] = row
	}
	return m, nil
}

// Groups returns the number of replica groups.
func (m *ShardMap) Groups() int { return len(m.Placement) }

// Replicas returns the number of replicas in group g.
func (m *ShardMap) Replicas(g int) int { return len(m.Placement[g]) }

// HashKey hashes a key into the 64-bit range space. The hash is FNV-64a
// run through a 64-bit finalizer — fixed and seedless, so the same key
// maps to the same hash on every node, in every process, across
// restarts. The finalizer matters: raw FNV barely avalanches the high
// bits for short, similar keys, and range partitioning splits on the
// high bits (plain hash%groups only ever looked at the low ones).
func HashKey(key []byte) uint64 {
	f := fnv.New64a()
	f.Write(key)
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// GroupFor hashes a key to its group: by range lookup when the map has
// ranges, by hash%groups otherwise (the legacy static layout).
func (m *ShardMap) GroupFor(key []byte) int {
	h := HashKey(key)
	if len(m.Ranges) > 0 {
		return m.Ranges[m.RangeIndexFor(h)].Group
	}
	return int(h % uint64(len(m.Placement)))
}

// RangeIndexFor returns the index of the range covering hash h. The map
// must have ranges.
func (m *ShardMap) RangeIndexFor(h uint64) int {
	lo, hi := 0, len(m.Ranges)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if m.Ranges[mid].Start <= h {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// RangeBounds returns range i's span as an inclusive [lo, hi] pair.
func (m *ShardMap) RangeBounds(i int) (lo, hi uint64) {
	lo = m.Ranges[i].Start
	if i+1 < len(m.Ranges) {
		return lo, m.Ranges[i+1].Start - 1
	}
	return lo, ^uint64(0)
}

// EnsureRanges seeds the map with one equal-width range per group (range
// g owned by group g, epoch = the map version) if it has none. Rebalance-
// enabled deployments call this once at bootstrap; static deployments
// never do and keep hash%groups routing.
func (m *ShardMap) EnsureRanges() {
	if len(m.Ranges) > 0 {
		return
	}
	g := uint64(len(m.Placement))
	step := ^uint64(0)/g + 1 // 0 (i.e. 2^64) when g == 1; Start math still lands on 0
	for i := uint64(0); i < g; i++ {
		m.Ranges = append(m.Ranges, Range{Start: i * step, Group: int(i), Epoch: m.Version})
	}
}

// Clone returns a deep copy of the map.
func (m *ShardMap) Clone() *ShardMap {
	c := &ShardMap{Version: m.Version, Nodes: m.Nodes}
	for _, row := range m.Placement {
		c.Placement = append(c.Placement, append([]int(nil), row...))
	}
	c.Ranges = append([]Range(nil), m.Ranges...)
	return c
}

// WithSplit returns a successor map (version+1) in which the range
// containing hash `at` is split at `at`. Both halves keep the owner and
// epoch of the parent, so routing and fencing are unchanged — a split is
// pure metadata.
func (m *ShardMap) WithSplit(at uint64) (*ShardMap, error) {
	if len(m.Ranges) == 0 {
		return nil, fmt.Errorf("shard: map v%d has no ranges (rebalancing disabled)", m.Version)
	}
	i := m.RangeIndexFor(at)
	if m.Ranges[i].Start == at {
		return nil, fmt.Errorf("shard: hash %#x is already a range boundary", at)
	}
	c := m.Clone()
	c.Version++
	nr := Range{Start: at, Group: c.Ranges[i].Group, Epoch: c.Ranges[i].Epoch}
	c.Ranges = append(c.Ranges[:i+1], append([]Range{nr}, c.Ranges[i+1:]...)...)
	return c, nil
}

// WithMerge returns a successor map (version+1) in which the range
// starting exactly at `boundary` is fused into its left neighbor. Both
// ranges must be owned by the same group; the fused range's epoch is the
// new version (the owner's replicated ownership state is fused by a
// MergeOwned control op at the same version).
func (m *ShardMap) WithMerge(boundary uint64) (*ShardMap, error) {
	if len(m.Ranges) == 0 {
		return nil, fmt.Errorf("shard: map v%d has no ranges (rebalancing disabled)", m.Version)
	}
	i := m.RangeIndexFor(boundary)
	if i == 0 || m.Ranges[i].Start != boundary {
		return nil, fmt.Errorf("shard: hash %#x is not an interior range boundary", boundary)
	}
	if m.Ranges[i-1].Group != m.Ranges[i].Group {
		return nil, fmt.Errorf("shard: ranges around %#x are owned by groups %d and %d; move first",
			boundary, m.Ranges[i-1].Group, m.Ranges[i].Group)
	}
	c := m.Clone()
	c.Version++
	c.Ranges[i-1].Epoch = c.Version
	c.Ranges = append(c.Ranges[:i], c.Ranges[i+1:]...)
	return c, nil
}

// WithMove returns a successor map (version+1) in which the range
// containing hash `at` is reassigned to group dest, with its epoch bumped
// to the new version (the ownership fence for the migration).
func (m *ShardMap) WithMove(at uint64, dest int) (*ShardMap, error) {
	if len(m.Ranges) == 0 {
		return nil, fmt.Errorf("shard: map v%d has no ranges (rebalancing disabled)", m.Version)
	}
	if dest < 0 || dest >= m.Groups() {
		return nil, fmt.Errorf("shard: destination group %d out of range [0,%d)", dest, m.Groups())
	}
	i := m.RangeIndexFor(at)
	if m.Ranges[i].Group == dest {
		return nil, fmt.Errorf("shard: range at %#x is already owned by group %d", at, dest)
	}
	c := m.Clone()
	c.Version++
	c.Ranges[i].Group = dest
	c.Ranges[i].Epoch = c.Version
	return c, nil
}

// ReplicaOn returns the index within group g of the replica hosted on
// node, or -1 if the group has no replica there.
func (m *ShardMap) ReplicaOn(g, node int) int {
	for r, n := range m.Placement[g] {
		if n == node {
			return r
		}
	}
	return -1
}

// GroupsOn lists the groups with a replica on node, ascending.
func (m *ShardMap) GroupsOn(node int) []int {
	var out []int
	for g := range m.Placement {
		if m.ReplicaOn(g, node) >= 0 {
			out = append(out, g)
		}
	}
	return out
}

// Validate checks structural invariants: non-empty groups, placement
// within node bounds, and no group with two replicas on one node.
func (m *ShardMap) Validate() error {
	if len(m.Placement) == 0 {
		return fmt.Errorf("shard: map has no groups")
	}
	if m.Nodes < 1 {
		return fmt.Errorf("shard: map has %d nodes", m.Nodes)
	}
	for g, row := range m.Placement {
		if len(row) == 0 {
			return fmt.Errorf("shard: group %d has no replicas", g)
		}
		seen := make(map[int]bool, len(row))
		for r, n := range row {
			if n < 0 || n >= m.Nodes {
				return fmt.Errorf("shard: group %d replica %d placed on unknown node %d", g, r, n)
			}
			if seen[n] {
				return fmt.Errorf("shard: group %d has two replicas on node %d", g, n)
			}
			seen[n] = true
		}
	}
	for i, r := range m.Ranges {
		if i == 0 && r.Start != 0 {
			return fmt.Errorf("shard: first range starts at %#x, not 0", r.Start)
		}
		if i > 0 && r.Start <= m.Ranges[i-1].Start {
			return fmt.Errorf("shard: range %d start %#x not above predecessor", i, r.Start)
		}
		if r.Group < 0 || r.Group >= len(m.Placement) {
			return fmt.Errorf("shard: range %d owned by unknown group %d", i, r.Group)
		}
		if r.Epoch > m.Version {
			return fmt.Errorf("shard: range %d epoch %d above map version %d", i, r.Epoch, m.Version)
		}
	}
	return nil
}

// Encode appends the map to e.
func (m *ShardMap) Encode(e *wire.Encoder) {
	e.Uvarint(m.Version)
	e.Uvarint(uint64(m.Nodes))
	e.Uvarint(uint64(len(m.Placement)))
	for _, row := range m.Placement {
		e.Uvarint(uint64(len(row)))
		for _, n := range row {
			e.Uvarint(uint64(n))
		}
	}
	e.Uvarint(uint64(len(m.Ranges)))
	for _, r := range m.Ranges {
		e.Uvarint(r.Start)
		e.Uvarint(uint64(r.Group))
		e.Uvarint(r.Epoch)
	}
}

// EncodeBytes returns the map's wire encoding.
func (m *ShardMap) EncodeBytes() []byte {
	e := wire.NewEncoder(nil)
	m.Encode(e)
	return e.Bytes()
}

// DecodeShardMap reads a map written by Encode and validates it.
func DecodeShardMap(d *wire.Decoder) (*ShardMap, error) {
	m := &ShardMap{Version: d.Uvarint(), Nodes: int(d.Uvarint())}
	groups := d.Uvarint()
	const maxGroups = 1 << 16
	if d.Err() == nil && (groups == 0 || groups > maxGroups) {
		return nil, fmt.Errorf("shard: implausible group count %d", groups)
	}
	for g := uint64(0); g < groups && d.Err() == nil; g++ {
		n := d.Uvarint()
		if d.Err() == nil && n > uint64(m.Nodes) {
			return nil, fmt.Errorf("shard: group %d lists %d replicas over %d nodes", g, n, m.Nodes)
		}
		row := make([]int, 0, n)
		for r := uint64(0); r < n && d.Err() == nil; r++ {
			row = append(row, int(d.Uvarint()))
		}
		m.Placement = append(m.Placement, row)
	}
	nr := d.Uvarint()
	const maxRanges = 1 << 20
	if d.Err() == nil && nr > maxRanges {
		return nil, fmt.Errorf("shard: implausible range count %d", nr)
	}
	for i := uint64(0); i < nr && d.Err() == nil; i++ {
		m.Ranges = append(m.Ranges, Range{
			Start: d.Uvarint(),
			Group: int(d.Uvarint()),
			Epoch: d.Uvarint(),
		})
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("shard: decode map: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeShardMapBytes decodes a map from its EncodeBytes form.
func DecodeShardMapBytes(b []byte) (*ShardMap, error) {
	return DecodeShardMap(wire.NewDecoder(b))
}

// String renders the placement compactly for logs and rexctl.
func (m *ShardMap) String() string {
	s := fmt.Sprintf("shardmap v%d: %d groups over %d nodes", m.Version, m.Groups(), m.Nodes)
	for g, row := range m.Placement {
		s += fmt.Sprintf("\n  group %d: nodes %v (preferred primary on node %d)", g, row, row[0])
	}
	for i, r := range m.Ranges {
		_, hi := m.RangeBounds(i)
		s += fmt.Sprintf("\n  range [%#016x, %#016x] -> group %d (epoch %d)", r.Start, hi, r.Group, r.Epoch)
	}
	return s
}
