// Package shard runs N independent Rex replica groups across one set of
// processes and routes client requests by key (partitioned parallel SMR:
// Marandi & Pedone). Each group is a full Rex cluster — Consensus,
// Determinism, and Prefix hold per group exactly as before — and the
// key→group mapping is static and conflict-free, so no cross-group
// ordering is ever needed. The pieces:
//
//   - ShardMap: the static, versioned placement of N groups × M replicas
//     over P nodes, with each group's preferred primary rotated across
//     nodes so leaders (and their WAL fsync load) spread over all
//     machines.
//   - NodeMux: multiplexes one replica endpoint per hosted group over a
//     single node-level transport endpoint.
//   - Router: hashes an application-supplied key to a group and forwards
//     the request to that group's client, which follows per-group
//     `not primary` hints independently.
//   - Node: hosts one core.Replica per hosted group inside one process,
//     with per-group storage and per-group-labeled metrics.
package shard

import (
	"fmt"
	"hash/fnv"

	"rex/internal/wire"
)

// ShardMap is the static, versioned key→group→replica placement. It is
// identical on every node (distributed out of band or fetched over the
// client protocol) and never changes within a version; a resharding would
// install a new version, which is why every routed request carries the
// map version it was routed under.
type ShardMap struct {
	// Version identifies this placement; nodes reject requests routed
	// under a different version.
	Version uint64
	// Nodes is the number of processes the groups are placed over.
	Nodes int
	// Placement[g][r] is the node hosting replica r of group g. Replica 0
	// is the group's preferred primary; NewShardMap rotates it across
	// nodes so per-group primaries spread over all machines.
	Placement [][]int
}

// NewShardMap builds the canonical rotated placement: replica r of group
// g lands on node (g+r) mod nodes, so group g's preferred primary sits on
// node g mod nodes.
func NewShardMap(version uint64, groups, nodes, replicasPerGroup int) (*ShardMap, error) {
	if groups < 1 {
		return nil, fmt.Errorf("shard: need at least one group, got %d", groups)
	}
	if replicasPerGroup < 1 {
		return nil, fmt.Errorf("shard: need at least one replica per group, got %d", replicasPerGroup)
	}
	if nodes < replicasPerGroup {
		return nil, fmt.Errorf("shard: %d replicas per group need at least that many nodes, got %d",
			replicasPerGroup, nodes)
	}
	m := &ShardMap{Version: version, Nodes: nodes, Placement: make([][]int, groups)}
	for g := range m.Placement {
		row := make([]int, replicasPerGroup)
		for r := range row {
			row[r] = (g + r) % nodes
		}
		m.Placement[g] = row
	}
	return m, nil
}

// Groups returns the number of replica groups.
func (m *ShardMap) Groups() int { return len(m.Placement) }

// Replicas returns the number of replicas in group g.
func (m *ShardMap) Replicas(g int) int { return len(m.Placement[g]) }

// GroupFor hashes a key to its group. The hash is FNV-64a — a fixed,
// seedless function — so the same key maps to the same group on every
// node, in every process, across restarts, for as long as the map version
// (and thus the group count) is unchanged.
func (m *ShardMap) GroupFor(key []byte) int {
	h := fnv.New64a()
	h.Write(key)
	return int(h.Sum64() % uint64(len(m.Placement)))
}

// ReplicaOn returns the index within group g of the replica hosted on
// node, or -1 if the group has no replica there.
func (m *ShardMap) ReplicaOn(g, node int) int {
	for r, n := range m.Placement[g] {
		if n == node {
			return r
		}
	}
	return -1
}

// GroupsOn lists the groups with a replica on node, ascending.
func (m *ShardMap) GroupsOn(node int) []int {
	var out []int
	for g := range m.Placement {
		if m.ReplicaOn(g, node) >= 0 {
			out = append(out, g)
		}
	}
	return out
}

// Validate checks structural invariants: non-empty groups, placement
// within node bounds, and no group with two replicas on one node.
func (m *ShardMap) Validate() error {
	if len(m.Placement) == 0 {
		return fmt.Errorf("shard: map has no groups")
	}
	if m.Nodes < 1 {
		return fmt.Errorf("shard: map has %d nodes", m.Nodes)
	}
	for g, row := range m.Placement {
		if len(row) == 0 {
			return fmt.Errorf("shard: group %d has no replicas", g)
		}
		seen := make(map[int]bool, len(row))
		for r, n := range row {
			if n < 0 || n >= m.Nodes {
				return fmt.Errorf("shard: group %d replica %d placed on unknown node %d", g, r, n)
			}
			if seen[n] {
				return fmt.Errorf("shard: group %d has two replicas on node %d", g, n)
			}
			seen[n] = true
		}
	}
	return nil
}

// Encode appends the map to e.
func (m *ShardMap) Encode(e *wire.Encoder) {
	e.Uvarint(m.Version)
	e.Uvarint(uint64(m.Nodes))
	e.Uvarint(uint64(len(m.Placement)))
	for _, row := range m.Placement {
		e.Uvarint(uint64(len(row)))
		for _, n := range row {
			e.Uvarint(uint64(n))
		}
	}
}

// EncodeBytes returns the map's wire encoding.
func (m *ShardMap) EncodeBytes() []byte {
	e := wire.NewEncoder(nil)
	m.Encode(e)
	return e.Bytes()
}

// DecodeShardMap reads a map written by Encode and validates it.
func DecodeShardMap(d *wire.Decoder) (*ShardMap, error) {
	m := &ShardMap{Version: d.Uvarint(), Nodes: int(d.Uvarint())}
	groups := d.Uvarint()
	const maxGroups = 1 << 16
	if d.Err() == nil && (groups == 0 || groups > maxGroups) {
		return nil, fmt.Errorf("shard: implausible group count %d", groups)
	}
	for g := uint64(0); g < groups && d.Err() == nil; g++ {
		n := d.Uvarint()
		if d.Err() == nil && n > uint64(m.Nodes) {
			return nil, fmt.Errorf("shard: group %d lists %d replicas over %d nodes", g, n, m.Nodes)
		}
		row := make([]int, 0, n)
		for r := uint64(0); r < n && d.Err() == nil; r++ {
			row = append(row, int(d.Uvarint()))
		}
		m.Placement = append(m.Placement, row)
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("shard: decode map: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeShardMapBytes decodes a map from its EncodeBytes form.
func DecodeShardMapBytes(b []byte) (*ShardMap, error) {
	return DecodeShardMap(wire.NewDecoder(b))
}

// String renders the placement compactly for logs and rexctl.
func (m *ShardMap) String() string {
	s := fmt.Sprintf("shardmap v%d: %d groups over %d nodes", m.Version, m.Groups(), m.Nodes)
	for g, row := range m.Placement {
		s += fmt.Sprintf("\n  group %d: nodes %v (preferred primary on node %d)", g, row, row[0])
	}
	return s
}
