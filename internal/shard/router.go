package shard

import (
	"fmt"

	"rex/internal/readpath"
)

// GroupClient submits to one replica group. Both cluster.Client
// (in-process) and server.Client (TCP) satisfy it: each follows its own
// group's `not primary` hints independently, so a failover in one group
// never stalls routing to the others. Each group client keeps its own
// session token, so session reads stay read-your-writes per group without
// ever comparing cut frontiers across groups (they live in different
// trace spaces).
type GroupClient interface {
	// Do submits one replicated request to the group and returns the
	// application response.
	Do(body []byte) ([]byte, error)
	// Query runs a read-only query preferring the group's replica i
	// (served by a replica's local hybrid read pool, outside the
	// replication protocol), failing over on transient errors.
	Query(i int, q []byte) ([]byte, error)
	// QueryLevel runs a read at the given consistency level, routing to
	// the primary or a caught-up secondary as the level demands.
	QueryLevel(level readpath.Level, q []byte) ([]byte, error)
}

// Router routes requests to groups by an application-supplied key. It is
// as safe for concurrent use as its GroupClients (cluster.Client and
// server.Client serialize internally, but a client per routing task
// avoids head-of-line blocking between tasks).
type Router struct {
	Map    *ShardMap
	Groups []GroupClient // one per group, indexed by group id
}

// NewRouter binds a map to its per-group clients.
func NewRouter(m *ShardMap, groups []GroupClient) (*Router, error) {
	if len(groups) != m.Groups() {
		return nil, fmt.Errorf("shard: router has %d group clients for %d groups", len(groups), m.Groups())
	}
	return &Router{Map: m, Groups: groups}, nil
}

// GroupFor exposes the key hash for callers that track per-group state.
func (r *Router) GroupFor(key []byte) int { return r.Map.GroupFor(key) }

// Do submits body to the group owning key.
func (r *Router) Do(key, body []byte) ([]byte, error) {
	return r.Groups[r.Map.GroupFor(key)].Do(body)
}

// Query runs a read-only query for key against replica i of the owning
// group (read fan-out: any replica's local hybrid pool can serve it).
func (r *Router) Query(key []byte, i int, q []byte) ([]byte, error) {
	return r.Groups[r.Map.GroupFor(key)].Query(i, q)
}

// QueryLevel runs a read for key at the given consistency level against
// the owning group: linearizable reads go to that group's primary,
// session/eventual reads fan out over its secondaries with the group
// client's own session token.
func (r *Router) QueryLevel(key []byte, level readpath.Level, q []byte) ([]byte, error) {
	return r.Groups[r.Map.GroupFor(key)].QueryLevel(level, q)
}
