package shard

import (
	"errors"
	"fmt"
	"time"

	"rex/internal/overload"
	"rex/internal/readpath"
	"rex/internal/retry"
)

// GroupClient submits to one replica group. Both cluster.Client
// (in-process) and server.Client (TCP) satisfy it: each follows its own
// group's `not primary` hints independently, so a failover in one group
// never stalls routing to the others. Each group client keeps its own
// session token, so session reads stay read-your-writes per group without
// ever comparing cut frontiers across groups (they live in different
// trace spaces).
type GroupClient interface {
	// Do submits one replicated request to the group and returns the
	// application response.
	Do(body []byte) ([]byte, error)
	// Query runs a read-only query preferring the group's replica i
	// (served by a replica's local hybrid read pool, outside the
	// replication protocol), failing over on transient errors.
	Query(i int, q []byte) ([]byte, error)
	// QueryLevel runs a read at the given consistency level, routing to
	// the primary or a caught-up secondary as the level demands.
	QueryLevel(level readpath.Level, q []byte) ([]byte, error)
}

// Recorder observes routed operations as a concurrent history (the same
// shape as cluster.HistoryRecorder; check.History satisfies it). A
// rebalance-aware router records at the routing layer — with the raw
// application bytes, before enveloping — so one global history spans
// groups and the linearizability checker sees a key's operations across
// an ownership move.
type Recorder interface {
	Invoke(client uint64, input []byte) uint64
	Return(id uint64, output []byte)
	Timeout(id uint64)
}

// ErrMapRetriesExhausted reports that a request kept landing on
// non-owners (or frozen ranges) for the router's whole attempt budget —
// the map could not be brought up to date in time.
var ErrMapRetriesExhausted = errors.New("shard: map retries exhausted")

// ErrRebalance reports a permanent rebalance-layer NACK (ReplyErr).
var ErrRebalance = errors.New("shard: rebalance error")

// Router routes requests to groups by an application-supplied key. It is
// single-task like its GroupClients (cluster.Client and server.Client
// serialize internally; a router per routing task avoids head-of-line
// blocking between tasks).
//
// With Enveloped unset the router is the PR 4 static router: it trusts
// Map forever and forwards raw bodies. With Enveloped set it speaks the
// rebalance envelope: each request carries the routed range's epoch, and
// a wrong-group / stale / frozen NACK triggers a bounded map refetch with
// jittered backoff instead of retrying the same group blindly.
type Router struct {
	Map    *ShardMap
	Groups []GroupClient // one per group, indexed by group id

	// Enveloped turns on the rebalance envelope protocol.
	Enveloped bool
	// Fetch returns the current map (a linearizable read of the map home
	// group). Nil disables refetch; NACKs then only burn attempts.
	Fetch func() (*ShardMap, error)
	// IsPermanent classifies a transport error as permanent-for-this-
	// target (e.g. cluster.ErrPermanent after a stale-map redirect loop);
	// such errors trigger a refetch+reroute instead of failing the call.
	IsPermanent func(error) bool
	// Sleep and Now drive the backoff; they default to real time and MUST
	// be injected (env.Env's methods) inside the simulation.
	Sleep func(time.Duration)
	Now   func() time.Duration
	// Recorder, when set, records Do and linearizable QueryLevel calls
	// with raw application bytes (see Recorder). ClientID labels the
	// history's client column.
	Recorder Recorder
	ClientID uint64
	// MaxAttempts bounds NACK-driven rerouting per call (default 32).
	MaxAttempts int
	// BudgetExhausted counts calls abandoned on a dry retry budget.
	BudgetExhausted uint64

	bo     *retry.Backoff
	budget *retry.Budget
}

// Router retry budget: every envelope NACK consumed real replication
// work (the request went through consensus before being refused), so
// NACK-driven retries spend tokens. Successes earn a full token and the
// bucket is deep — rebalance freezes are short and bursty; only a
// sustained NACK storm with no goodput drains it.
const (
	routeBudgetRatio = 1.0
	routeBudgetBurst = 128
)

// ErrRetryBudget reports a routed call abandoned because the router's
// retry budget ran dry.
var ErrRetryBudget = fmt.Errorf("shard: %w", retry.ErrBudgetExhausted)

// NewRouter binds a map to its per-group clients.
func NewRouter(m *ShardMap, groups []GroupClient) (*Router, error) {
	if len(groups) != m.Groups() {
		return nil, fmt.Errorf("shard: router has %d group clients for %d groups", len(groups), m.Groups())
	}
	return &Router{Map: m, Groups: groups}, nil
}

// GroupFor exposes the key hash for callers that track per-group state.
func (r *Router) GroupFor(key []byte) int { return r.Map.GroupFor(key) }

const (
	minRouteBackoff = 500 * time.Microsecond
	maxRouteBackoff = 20 * time.Millisecond
)

func (r *Router) sleep(d time.Duration) {
	if r.Sleep != nil {
		r.Sleep(d)
		return
	}
	time.Sleep(d)
}

// retryState lazily builds the router's shared backoff schedule and
// retry budget (internal/retry), seeded from the client id.
func (r *Router) retryState() (*retry.Backoff, *retry.Budget) {
	if r.bo == nil {
		r.bo = retry.NewBackoff(minRouteBackoff, maxRouteBackoff, int64(r.ClientID)*2654435761+0x5bd1e995)
		r.budget = retry.NewBudget(routeBudgetRatio, routeBudgetBurst)
	}
	return r.bo, r.budget
}

// backoff sleeps one jittered exponential step; each routed call resets
// the schedule (resetBackoff) so per-call delays still start at the
// minimum like the old attempt-indexed form did.
func (r *Router) backoff() {
	bo, _ := r.retryState()
	r.sleep(bo.Next())
}

func (r *Router) resetBackoff() {
	bo, _ := r.retryState()
	bo.Reset()
}

// spend charges one retry against the budget; false means the budget is
// dry and the call must be abandoned.
func (r *Router) spend() bool {
	_, budget := r.retryState()
	if budget.Allow() {
		return true
	}
	r.BudgetExhausted++
	return false
}

func (r *Router) earn() {
	_, budget := r.retryState()
	budget.Success()
}

// refetch replaces the map if a newer version can be fetched. It is
// called only on evidence of staleness (a NACK carrying a version above
// ours, or a permanent transport error), so the backoff loop around it
// bounds the fetch rate.
func (r *Router) refetch() {
	if r.Fetch == nil {
		return
	}
	nm, err := r.Fetch()
	if err != nil || nm == nil {
		return
	}
	if nm.Version > r.Map.Version && nm.Groups() == len(r.Groups) {
		r.Map = nm
	}
}

func (r *Router) attempts() int {
	if r.MaxAttempts > 0 {
		return r.MaxAttempts
	}
	return 32
}

// route returns the target group and envelope for a key hash.
func (r *Router) route(kind byte, h uint64, body []byte) (int, []byte) {
	if len(r.Map.Ranges) == 0 {
		return int(h % uint64(len(r.Groups))), Envelope(kind, r.Map.Version, h, body)
	}
	rg := r.Map.Ranges[r.Map.RangeIndexFor(h)]
	return rg.Group, Envelope(kind, rg.Epoch, h, body)
}

// Do submits body to the group owning key.
func (r *Router) Do(key, body []byte) ([]byte, error) {
	if !r.Enveloped {
		return r.Groups[r.Map.GroupFor(key)].Do(body)
	}
	var opID uint64
	if r.Recorder != nil {
		opID = r.Recorder.Invoke(r.ClientID, body)
	}
	resp, definite, err := r.do(HashKey(key), body)
	if r.Recorder != nil {
		switch {
		case err == nil:
			r.Recorder.Return(opID, resp)
		case definite:
			// Every attempt was answered with a definite did-not-execute
			// NACK (rebalance NACKs and overload sheds both guarantee it):
			// drop the op from the history instead of recording an unknown
			// outcome the checker must treat as maybe-executes-anytime.
			if d, ok := r.Recorder.(interface{ Discard(uint64) }); ok {
				d.Discard(opID)
			} else {
				r.Recorder.Timeout(opID)
			}
		default:
			r.Recorder.Timeout(opID)
		}
	}
	return resp, err
}

// do runs the enveloped submit loop. It retries only after deterministic
// rebalance NACKs (which provably did not mutate state) or permanent
// transport errors on a stale route; an unknown-outcome transport error
// is surfaced to the caller rather than blindly resubmitted, since a
// resubmission would be a second, distinct request. definite reports
// that no attempt can have mutated state.
func (r *Router) do(h uint64, body []byte) (resp []byte, definite bool, err error) {
	r.resetBackoff()
	definite = true
	for attempt := 0; attempt < r.attempts(); attempt++ {
		if attempt > 0 && !r.spend() {
			// Every retry here follows a NACK that consumed replication
			// work; a dry budget means this router is amplifying load on
			// a cluster that is refusing it.
			return nil, definite, ErrRetryBudget
		}
		g, env := r.route(EnvApp, h, body)
		out, err := r.Groups[g].Do(env)
		if err != nil {
			if r.IsPermanent != nil && r.IsPermanent(err) {
				// A permanent transport error (e.g. a stale-sequence wrap)
				// may mean an earlier attempt landed: outcome unknown.
				definite = false
				r.refetch()
				r.backoff()
				continue
			}
			if errors.Is(err, overload.ErrOverloaded) || errors.Is(err, overload.ErrDeadlineExceeded) {
				// Shed before admission, after the group client's own
				// paced retries: provably never executed. Surface it — the
				// caller owns the load decision now.
				return nil, definite, err
			}
			return nil, false, err
		}
		done, payload, rerr := r.handleReply(out, attempt)
		if done {
			if rerr != nil {
				return nil, false, rerr
			}
			r.earn()
			return payload, true, nil
		}
	}
	return nil, definite, ErrMapRetriesExhausted
}

// handleReply interprets an envelope reply. done=false means "NACKed,
// rerouted, try again".
func (r *Router) handleReply(resp []byte, attempt int) (done bool, payload []byte, err error) {
	st, payload, err := DecodeReply(resp)
	if err != nil {
		return true, nil, err
	}
	switch st {
	case ReplyOK:
		return true, payload, nil
	case ReplyWrongGroup, ReplyStale:
		if ReplyVersion(payload) > r.Map.Version {
			r.refetch()
		} else if attempt > 2 {
			// Same-version NACKs that persist mean our map is stale but
			// the responder's is too (mid-flip); fetch the authoritative
			// one.
			r.refetch()
		}
		r.backoff()
		return false, nil, nil
	case ReplyFrozen:
		// Bounded migration write barrier; wait it out, occasionally
		// confirming the flip landed.
		if attempt > 1 {
			r.refetch()
		}
		r.backoff()
		return false, nil, nil
	case ReplyErr:
		return true, nil, fmt.Errorf("%w: %s", ErrRebalance, ReplyErrMessage(payload))
	default:
		return true, nil, fmt.Errorf("shard: unknown reply status %d", st)
	}
}

// Query runs a read-only query for key against replica i of the owning
// group (read fan-out: any replica's local hybrid pool can serve it).
func (r *Router) Query(key []byte, i int, q []byte) ([]byte, error) {
	if !r.Enveloped {
		return r.Groups[r.Map.GroupFor(key)].Query(i, q)
	}
	h := HashKey(key)
	r.resetBackoff()
	for attempt := 0; attempt < r.attempts(); attempt++ {
		if attempt > 0 && !r.spend() {
			return nil, ErrRetryBudget
		}
		g, env := r.route(EnvApp, h, q)
		resp, err := r.Groups[g].Query(i, env)
		if err != nil {
			if r.IsPermanent != nil && r.IsPermanent(err) {
				r.refetch()
				r.backoff()
				continue
			}
			return nil, err
		}
		done, payload, err := r.handleReply(resp, attempt)
		if done {
			if err == nil {
				r.earn()
			}
			return payload, err
		}
	}
	return nil, ErrMapRetriesExhausted
}

// QueryLevel runs a read for key at the given consistency level against
// the owning group: linearizable reads go to that group's primary,
// session/eventual reads fan out over its secondaries with the group
// client's own session token. Linearizable reads are recorded (they must
// be, to constrain the history); weaker reads are checked by the session
// checker instead.
func (r *Router) QueryLevel(key []byte, level readpath.Level, q []byte) ([]byte, error) {
	if !r.Enveloped {
		return r.Groups[r.Map.GroupFor(key)].QueryLevel(level, q)
	}
	var opID uint64
	record := r.Recorder != nil && level == readpath.Linearizable
	if record {
		opID = r.Recorder.Invoke(r.ClientID, q)
	}
	resp, err := r.queryLevel(HashKey(key), level, q)
	if record {
		switch {
		case err == nil:
			r.Recorder.Return(opID, resp)
		default:
			// A failed read is always discardable: it mutated nothing and
			// the caller never saw a response, so dropping it cannot
			// invalidate any other op's linearization.
			if d, ok := r.Recorder.(interface{ Discard(uint64) }); ok {
				d.Discard(opID)
			} else {
				r.Recorder.Timeout(opID)
			}
		}
	}
	return resp, err
}

func (r *Router) queryLevel(h uint64, level readpath.Level, q []byte) ([]byte, error) {
	r.resetBackoff()
	for attempt := 0; attempt < r.attempts(); attempt++ {
		if attempt > 0 && !r.spend() {
			return nil, ErrRetryBudget
		}
		g, env := r.route(EnvApp, h, q)
		resp, err := r.Groups[g].QueryLevel(level, env)
		if err != nil {
			if r.IsPermanent != nil && r.IsPermanent(err) {
				r.refetch()
				r.backoff()
				continue
			}
			return nil, err
		}
		done, payload, err := r.handleReply(resp, attempt)
		if done {
			if err == nil {
				r.earn()
			}
			return payload, err
		}
	}
	return nil, ErrMapRetriesExhausted
}
