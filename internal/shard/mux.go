package shard

import (
	"rex/internal/env"
	"rex/internal/transport"
	"rex/internal/wire"
)

// NodeMux multiplexes one replica endpoint per hosted group over a single
// node-level transport endpoint, so a process participating in many
// groups needs only one listener and one peer mesh. Every payload is
// prefixed with a uvarint group id; inbound messages are routed to the
// group's sub-endpoint with the sender translated from node id to the
// sender's replica index within that group (which is what Paxos
// addresses).
type NodeMux struct {
	e    env.Env
	ep   transport.Endpoint
	m    *ShardMap
	node int

	mu   env.Mutex
	subs map[int]*groupEndpoint
}

type groupDelivery struct {
	payload []byte
	from    int
}

// NewNodeMux wraps the node-level endpoint and starts the demux pump.
func NewNodeMux(e env.Env, ep transport.Endpoint, m *ShardMap, node int) *NodeMux {
	nm := &NodeMux{
		e:    e,
		ep:   ep,
		m:    m,
		node: node,
		mu:   e.NewMutex(),
		subs: make(map[int]*groupEndpoint),
	}
	e.Go("shard-mux", nm.pump)
	return nm
}

func (nm *NodeMux) pump() {
	for {
		payload, fromNode, ok := nm.ep.Recv()
		if !ok {
			nm.mu.Lock()
			for _, s := range nm.subs {
				s.inbox.Close()
			}
			nm.mu.Unlock()
			return
		}
		d := wire.NewDecoder(payload)
		g := d.Uvarint()
		if d.Err() != nil || g >= uint64(nm.m.Groups()) {
			continue // unroutable
		}
		from := nm.m.ReplicaOn(int(g), fromNode)
		if from < 0 {
			continue // sender claims a group it has no replica in
		}
		nm.mu.Lock()
		sub := nm.subs[int(g)]
		nm.mu.Unlock()
		if sub != nil {
			sub.inbox.TrySend(groupDelivery{payload: payload[d.Offset():], from: from})
		}
	}
}

// Endpoint returns a fresh endpoint for group g's local replica,
// replacing any previous one (a restarted replica starts with an empty
// inbox, like a new process's socket). The replica must be placed on this
// node.
func (nm *NodeMux) Endpoint(g int) transport.Endpoint {
	if nm.m.ReplicaOn(g, nm.node) < 0 {
		panic("shard: node hosts no replica of this group")
	}
	sub := &groupEndpoint{nm: nm, group: g, inbox: nm.e.NewChan(0)}
	nm.mu.Lock()
	if old := nm.subs[g]; old != nil {
		old.inbox.Close()
	}
	nm.subs[g] = sub
	nm.mu.Unlock()
	return sub
}

// Close shuts the node endpoint down; the pump then closes every group
// sub-endpoint.
func (nm *NodeMux) Close() { nm.ep.Close() }

type groupEndpoint struct {
	nm    *NodeMux
	group int
	inbox env.Chan
}

// ID is the local replica's index within its group (what Paxos uses).
func (s *groupEndpoint) ID() int { return s.nm.m.ReplicaOn(s.group, s.nm.node) }

func (s *groupEndpoint) Send(to int, payload []byte) {
	row := s.nm.m.Placement[s.group]
	if to < 0 || to >= len(row) {
		panic("shard: send to unknown group replica")
	}
	e := wire.NewEncoder(make([]byte, 0, len(payload)+2))
	e.Uvarint(uint64(s.group))
	buf := append(e.Bytes(), payload...)
	s.nm.ep.Send(row[to], buf)
}

func (s *groupEndpoint) Recv() ([]byte, int, bool) {
	v, ok := s.inbox.Recv()
	if !ok {
		return nil, 0, false
	}
	d := v.(groupDelivery)
	return d.payload, d.from, true
}

// Close closes only this group's inbox; the node endpoint and the other
// groups keep running (one group's replica stopping is not a node crash).
func (s *groupEndpoint) Close() { s.inbox.Close() }
