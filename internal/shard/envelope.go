package shard

import (
	"fmt"

	"rex/internal/wire"
)

// Rebalance envelope. When a deployment enables live rebalancing, every
// routed request is wrapped in a small envelope carrying the key hash and
// the epoch of the range it was routed under, and every response is
// wrapped in a status byte. The rebalance wrapper state machine
// (internal/rebalance) checks the envelope against its replicated
// ownership state before handing the body to the application, so a
// request routed under a stale map is deterministically NACKed — on every
// replica, in record and in replay — instead of being applied by a group
// that no longer owns the key. Requests without the envelope magic pass
// through untouched (legacy static deployments never see envelopes).
const (
	// EnvMagic prefixes every enveloped request.
	EnvMagic byte = 0xE5
	// ReplyMagic prefixes every enveloped response.
	ReplyMagic byte = 0xE6

	// EnvApp wraps an application request or query.
	EnvApp byte = 1
	// EnvCtrl wraps a rebalance control operation (internal/rebalance).
	EnvCtrl byte = 2

	// ReplyOK: payload is the application response.
	ReplyOK byte = 0
	// ReplyWrongGroup: this group does not own the key's range; payload is
	// the responder's map version (uvarint) so the router knows whether a
	// newer map exists to fetch.
	ReplyWrongGroup byte = 1
	// ReplyFrozen: the range is owned here but frozen behind the migration
	// write barrier; payload is the responder's map version. Retry after
	// backoff — the freeze window is bounded.
	ReplyFrozen byte = 2
	// ReplyStale: the serving replica's replicated ownership state has not
	// reached the epoch the request was routed under (a follower that has
	// not replayed the ownership flip yet); payload is the responder's map
	// version. Retry — the replica catches up.
	ReplyStale byte = 3
	// ReplyErr: a rebalance-layer error (e.g. the application does not
	// support range migration); payload is the message. Permanent.
	ReplyErr byte = 4
)

// Envelope wraps body for routing under the given range epoch.
func Envelope(kind byte, epoch, hash uint64, body []byte) []byte {
	e := wire.NewEncoder(nil)
	e.Byte(EnvMagic)
	e.Byte(kind)
	e.Uvarint(epoch)
	e.Uvarint(hash)
	e.BytesVal(body)
	return e.Bytes()
}

// DecodeEnvelope splits an enveloped request. ok is false when b does not
// start with the envelope magic (a legacy raw request — pass it through).
func DecodeEnvelope(b []byte) (kind byte, epoch, hash uint64, body []byte, ok bool) {
	if len(b) == 0 || b[0] != EnvMagic {
		return 0, 0, 0, nil, false
	}
	d := wire.NewDecoder(b[1:])
	kind = d.Byte()
	epoch = d.Uvarint()
	hash = d.Uvarint()
	body = d.BytesVal()
	if d.Err() != nil || (kind != EnvApp && kind != EnvCtrl) {
		return 0, 0, 0, nil, false
	}
	return kind, epoch, hash, body, true
}

// OKReply wraps an application response.
func OKReply(payload []byte) []byte {
	return append([]byte{ReplyMagic, ReplyOK}, payload...)
}

// NackReply builds a wrong-group/frozen/stale NACK carrying the
// responder's map version.
func NackReply(status byte, version uint64) []byte {
	e := wire.NewEncoder(nil)
	e.Byte(ReplyMagic)
	e.Byte(status)
	e.Uvarint(version)
	return e.Bytes()
}

// ErrReply builds a permanent rebalance-layer error reply.
func ErrReply(msg string) []byte {
	e := wire.NewEncoder(nil)
	e.Byte(ReplyMagic)
	e.Byte(ReplyErr)
	e.String(msg)
	return e.Bytes()
}

// DecodeReply splits an enveloped response into status and payload.
func DecodeReply(b []byte) (status byte, payload []byte, err error) {
	if len(b) < 2 || b[0] != ReplyMagic {
		return 0, nil, fmt.Errorf("shard: response is not an envelope reply (%d bytes)", len(b))
	}
	return b[1], b[2:], nil
}

// ReplyVersion decodes the map version carried by a NACK payload.
func ReplyVersion(payload []byte) uint64 {
	return wire.NewDecoder(payload).Uvarint()
}

// ReplyErrMessage decodes the message carried by a ReplyErr payload.
func ReplyErrMessage(payload []byte) string {
	d := wire.NewDecoder(payload)
	s := d.String()
	if d.Err() != nil {
		return fmt.Sprintf("%x", payload)
	}
	return s
}
