// Package reconfig defines the versioned cluster membership that Rex
// commits through its own consensus stream to add, remove, and replace
// replicas without downtime (horizon-based, α-bounded reconfiguration).
//
// A membership change is an ordinary consensus value: the primary proposes
// the encoded next Membership at some instance i, and once chosen it takes
// effect at instance i+α. Every instance in [i, i+α) still uses the quorum
// of the epoch that proposed it, so in-flight pipelined instances are never
// stranded; every instance ≥ i+α uses the new quorum. α is chosen at
// propose time to exceed the proposer's pipeline depth so no open instance
// can straddle the boundary with the wrong quorum.
//
// Members come in two flavors: voters participate in promise/accept/election
// quorums; learners receive commits (and snapshots) but never vote. A fresh
// joiner enters as a learner, catches up via the existing checkpoint-transfer
// and chosen-log paths, and is promoted to voter by a second committed
// change once its lag is within a bound.
package reconfig

import (
	"fmt"
	"sort"

	"rex/internal/wire"
)

// valueMagic is the first byte of an encoded membership value. Trace deltas
// — the only other value kind in the consensus stream — begin with their
// format version byte (currently 1), so the magic makes the two
// unambiguous. 0xC7 ("C7onfig") is far from any plausible delta version.
const valueMagic = 0xC7

// encVersion is the membership encoding version, bumped on layout changes.
const encVersion = 1

// DefaultAlpha is the activation horizon used when the proposer does not
// derive one from its pipeline depth.
const DefaultAlpha = 10

// Membership is one epoch of cluster configuration. Epochs are assigned
// consecutively; exactly one change (epoch e → e+1) may be in flight at a
// time, serialized by the primary.
type Membership struct {
	Epoch    uint64
	Voters   []int          // replica ids with promise/accept/election rights
	Learners []int          // non-voting members catching up
	Addrs    map[int]string // replication address per member (TCP deployments; empty in-process)
	Alpha    uint64         // activation horizon: chosen at i → effective at i+Alpha
}

// Initial returns the epoch-0 membership for a cluster of n voters with ids
// 0..n-1, matching the static paxos.Config.N world.
func Initial(n int) Membership {
	m := Membership{Epoch: 0, Alpha: DefaultAlpha}
	for i := 0; i < n; i++ {
		m.Voters = append(m.Voters, i)
	}
	return m
}

// Joiner returns the bootstrap view of a node started with the intent of
// joining (rexd -join): the n peers it was pointed at are assumed voters,
// except itself, which it deliberately leaves out entirely. The view stays
// at epoch 0 so the cluster's real committed membership — learned from
// epoch-nacks and the chosen log — always supersedes it. Not listing self
// matters twice over: the joiner must never count itself a voter before
// the cluster admits it, and it must not think it was ever a member — a
// catching-up node activates every historical config on its way to the
// present, and absence from those must read as "not admitted yet", never
// as "removed".
func Joiner(n, self int) Membership {
	m := Membership{Epoch: 0, Alpha: DefaultAlpha}
	for i := 0; i < n; i++ {
		if i != self {
			m.Voters = append(m.Voters, i)
		}
	}
	return m
}

// Clone returns a deep copy.
func (m Membership) Clone() Membership {
	c := m
	c.Voters = append([]int(nil), m.Voters...)
	c.Learners = append([]int(nil), m.Learners...)
	if m.Addrs != nil {
		c.Addrs = make(map[int]string, len(m.Addrs))
		for id, a := range m.Addrs {
			c.Addrs[id] = a
		}
	}
	return c
}

// IsVoter reports whether id votes in this epoch.
func (m Membership) IsVoter(id int) bool {
	for _, v := range m.Voters {
		if v == id {
			return true
		}
	}
	return false
}

// IsLearner reports whether id is a non-voting member.
func (m Membership) IsLearner(id int) bool {
	for _, v := range m.Learners {
		if v == id {
			return true
		}
	}
	return false
}

// IsMember reports whether id is a voter or learner.
func (m Membership) IsMember(id int) bool { return m.IsVoter(id) || m.IsLearner(id) }

// Members returns all member ids (voters then learners), sorted.
func (m Membership) Members() []int {
	out := append(append([]int(nil), m.Voters...), m.Learners...)
	sort.Ints(out)
	return out
}

// Quorum returns the majority size over the voters.
func (m Membership) Quorum() int { return len(m.Voters)/2 + 1 }

// MaxID returns the largest member id, or -1 for an empty membership.
func (m Membership) MaxID() int {
	max := -1
	for _, v := range m.Voters {
		if v > max {
			max = v
		}
	}
	for _, v := range m.Learners {
		if v > max {
			max = v
		}
	}
	return max
}

// Validate checks structural invariants: at least one voter, no duplicate
// ids, no id both voter and learner, non-negative ids, Alpha ≥ 1.
func (m Membership) Validate() error {
	if len(m.Voters) == 0 {
		return fmt.Errorf("reconfig: membership epoch %d has no voters", m.Epoch)
	}
	if m.Alpha == 0 {
		return fmt.Errorf("reconfig: membership epoch %d has zero alpha", m.Epoch)
	}
	seen := make(map[int]bool)
	for _, id := range append(append([]int(nil), m.Voters...), m.Learners...) {
		if id < 0 {
			return fmt.Errorf("reconfig: negative member id %d", id)
		}
		if seen[id] {
			return fmt.Errorf("reconfig: duplicate member id %d", id)
		}
		seen[id] = true
	}
	return nil
}

func (m Membership) String() string {
	return fmt.Sprintf("epoch=%d voters=%v learners=%v alpha=%d", m.Epoch, m.Voters, m.Learners, m.Alpha)
}

// next clones m with the epoch advanced — the starting point for every
// change constructor.
func (m Membership) next() Membership {
	c := m.Clone()
	c.Epoch++
	return c
}

// WithAdd returns the next epoch with id joined as a non-voting learner at
// addr (addr may be empty in-process). Fails if id is already a member.
func (m Membership) WithAdd(id int, addr string) (Membership, error) {
	if m.IsMember(id) {
		return Membership{}, fmt.Errorf("reconfig: id %d is already a member", id)
	}
	c := m.next()
	c.Learners = append(c.Learners, id)
	sort.Ints(c.Learners)
	if addr != "" {
		if c.Addrs == nil {
			c.Addrs = make(map[int]string)
		}
		c.Addrs[id] = addr
	}
	return c, nil
}

// WithRemove returns the next epoch with id removed (voter or learner).
func (m Membership) WithRemove(id int) (Membership, error) {
	if !m.IsMember(id) {
		return Membership{}, fmt.Errorf("reconfig: id %d is not a member", id)
	}
	c := m.next()
	c.Voters = without(c.Voters, id)
	c.Learners = without(c.Learners, id)
	delete(c.Addrs, id)
	if len(c.Voters) == 0 {
		return Membership{}, fmt.Errorf("reconfig: removing id %d would leave no voters", id)
	}
	return c, nil
}

// WithPromote returns the next epoch with learner id promoted to voter.
func (m Membership) WithPromote(id int) (Membership, error) {
	if !m.IsLearner(id) {
		return Membership{}, fmt.Errorf("reconfig: id %d is not a learner", id)
	}
	c := m.next()
	c.Learners = without(c.Learners, id)
	c.Voters = append(c.Voters, id)
	sort.Ints(c.Voters)
	return c, nil
}

func without(ids []int, id int) []int {
	out := ids[:0]
	for _, v := range ids {
		if v != id {
			out = append(out, v)
		}
	}
	return out
}

// IsValue reports whether val is an encoded membership (as opposed to a
// trace delta). Safe on arbitrary bytes.
func IsValue(val []byte) bool { return len(val) > 0 && val[0] == valueMagic }

// paddingMagic marks the no-op consensus value a leader proposes to push
// the instance counter across a pending activation horizon when client
// traffic alone would not (a chosen-but-idle cluster must still activate).
const paddingMagic = 0xC8

// PaddingValue returns a no-op consensus value.
func PaddingValue() []byte { return []byte{paddingMagic} }

// IsPadding reports whether val is a no-op padding value (bare padding or
// an id-carrying read barrier — both are no-ops for the state machine).
func IsPadding(val []byte) bool { return len(val) >= 1 && val[0] == paddingMagic }

// BarrierValue returns a no-op consensus value carrying a read-barrier
// id: committing one proves the proposer was still the leader at commit
// time, which is what an unleased linearizable read needs. To every
// consumer except the issuing replica it is ordinary padding.
func BarrierValue(id uint64) []byte {
	e := wire.NewEncoder(make([]byte, 0, 11))
	e.Byte(paddingMagic)
	e.Uvarint(id)
	return e.Bytes()
}

// BarrierID extracts the read-barrier id from a padding value; ok is
// false for bare padding or non-padding values.
func BarrierID(val []byte) (id uint64, ok bool) {
	if len(val) < 2 || val[0] != paddingMagic {
		return 0, false
	}
	d := wire.NewDecoder(val[1:])
	id = d.Uvarint()
	if d.Err() != nil {
		return 0, false
	}
	return id, true
}

// IsMeta reports whether val is consensus metadata (a membership or a
// padding no-op) rather than an application trace delta.
func IsMeta(val []byte) bool { return IsValue(val) || IsPadding(val) }

// EncodeValue encodes m as a consensus value.
func EncodeValue(m Membership) []byte {
	enc := wire.NewEncoder(nil)
	enc.Byte(valueMagic)
	enc.Byte(encVersion)
	enc.Uvarint(m.Epoch)
	enc.Uvarint(m.Alpha)
	enc.Uvarint(uint64(len(m.Voters)))
	for _, id := range m.Voters {
		enc.Uvarint(uint64(id))
	}
	enc.Uvarint(uint64(len(m.Learners)))
	for _, id := range m.Learners {
		enc.Uvarint(uint64(id))
	}
	ids := make([]int, 0, len(m.Addrs))
	for id := range m.Addrs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	enc.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		enc.Uvarint(uint64(id))
		enc.String(m.Addrs[id])
	}
	return enc.Bytes()
}

// DecodeValue decodes a membership encoded by EncodeValue.
func DecodeValue(val []byte) (Membership, error) {
	if !IsValue(val) {
		return Membership{}, fmt.Errorf("reconfig: not a membership value")
	}
	dec := wire.NewDecoder(val)
	dec.Byte() // magic, checked above
	if v := dec.Byte(); v != encVersion && dec.Err() == nil {
		return Membership{}, fmt.Errorf("reconfig: unknown membership encoding version %d", v)
	}
	var m Membership
	m.Epoch = dec.Uvarint()
	m.Alpha = dec.Uvarint()
	nv := dec.Uvarint()
	if nv > 1<<16 {
		return Membership{}, fmt.Errorf("reconfig: implausible voter count %d", nv)
	}
	for i := uint64(0); i < nv; i++ {
		m.Voters = append(m.Voters, int(dec.Uvarint()))
	}
	nl := dec.Uvarint()
	if nl > 1<<16 {
		return Membership{}, fmt.Errorf("reconfig: implausible learner count %d", nl)
	}
	for i := uint64(0); i < nl; i++ {
		m.Learners = append(m.Learners, int(dec.Uvarint()))
	}
	na := dec.Uvarint()
	if na > 1<<16 {
		return Membership{}, fmt.Errorf("reconfig: implausible address count %d", na)
	}
	for i := uint64(0); i < na; i++ {
		id := int(dec.Uvarint())
		addr := dec.String()
		if m.Addrs == nil {
			m.Addrs = make(map[int]string)
		}
		m.Addrs[id] = addr
	}
	if err := dec.Err(); err != nil {
		return Membership{}, fmt.Errorf("reconfig: decode membership: %w", err)
	}
	if err := m.Validate(); err != nil {
		return Membership{}, err
	}
	return m, nil
}

// Scheduled pairs a membership with the instance it takes effect at: every
// instance ≥ FromInst uses M's quorum and epoch.
type Scheduled struct {
	FromInst uint64
	M        Membership
}

// EncodeSchedule encodes a config schedule (for snapshots and WAL records).
func EncodeSchedule(s []Scheduled) []byte {
	enc := wire.NewEncoder(nil)
	enc.Uvarint(uint64(len(s)))
	for _, sc := range s {
		enc.Uvarint(sc.FromInst)
		enc.BytesVal(EncodeValue(sc.M))
	}
	return enc.Bytes()
}

// DecodeSchedule decodes an EncodeSchedule blob.
func DecodeSchedule(b []byte) ([]Scheduled, error) {
	dec := wire.NewDecoder(b)
	n := dec.Uvarint()
	if n > 1<<16 {
		return nil, fmt.Errorf("reconfig: implausible schedule length %d", n)
	}
	out := make([]Scheduled, 0, n)
	for i := uint64(0); i < n; i++ {
		from := dec.Uvarint()
		mv := dec.BytesVal()
		if dec.Err() != nil {
			break
		}
		m, err := DecodeValue(mv)
		if err != nil {
			return nil, err
		}
		out = append(out, Scheduled{FromInst: from, M: m})
	}
	if err := dec.Err(); err != nil {
		return nil, fmt.Errorf("reconfig: decode schedule: %w", err)
	}
	return out, nil
}
