package reconfig

import (
	"reflect"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := Membership{
		Epoch:    7,
		Voters:   []int{0, 1, 3},
		Learners: []int{4},
		Addrs:    map[int]string{0: "a:1", 1: "b:2", 3: "c:3", 4: "d:4"},
		Alpha:    12,
	}
	val := EncodeValue(m)
	if !IsValue(val) {
		t.Fatal("encoded membership not recognized by IsValue")
	}
	got, err := DecodeValue(val)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestIsValueRejectsDeltas(t *testing.T) {
	// Trace deltas start with their version byte (1); arbitrary small
	// values must not be mistaken for memberships.
	for _, b := range [][]byte{nil, {}, {1}, {1, 2, 3}, {0}} {
		if IsValue(b) {
			t.Fatalf("IsValue(%v) = true", b)
		}
	}
	if _, err := DecodeValue([]byte{valueMagic}); err == nil {
		t.Fatal("truncated membership decoded without error")
	}
}

func TestChangeConstructors(t *testing.T) {
	m := Initial(3)
	if m.Epoch != 0 || !reflect.DeepEqual(m.Voters, []int{0, 1, 2}) {
		t.Fatalf("Initial(3) = %+v", m)
	}
	if m.Quorum() != 2 {
		t.Fatalf("quorum = %d", m.Quorum())
	}

	added, err := m.WithAdd(3, "x:1")
	if err != nil {
		t.Fatal(err)
	}
	if added.Epoch != 1 || !added.IsLearner(3) || added.IsVoter(3) {
		t.Fatalf("WithAdd: %+v", added)
	}
	if added.Quorum() != 2 {
		t.Fatalf("learner changed quorum: %d", added.Quorum())
	}
	if _, err := added.WithAdd(3, "x:1"); err == nil {
		t.Fatal("double add allowed")
	}

	promoted, err := added.WithPromote(3)
	if err != nil {
		t.Fatal(err)
	}
	if promoted.Epoch != 2 || !promoted.IsVoter(3) || promoted.IsLearner(3) {
		t.Fatalf("WithPromote: %+v", promoted)
	}
	if promoted.Quorum() != 3 {
		t.Fatalf("4-voter quorum = %d", promoted.Quorum())
	}

	removed, err := promoted.WithRemove(1)
	if err != nil {
		t.Fatal(err)
	}
	if removed.IsMember(1) || removed.Epoch != 3 {
		t.Fatalf("WithRemove: %+v", removed)
	}
	if _, ok := removed.Addrs[1]; ok {
		t.Fatal("address survived removal")
	}
	if _, err := removed.WithPromote(0); err == nil {
		t.Fatal("promoting a voter allowed")
	}
	if _, err := removed.WithRemove(9); err == nil {
		t.Fatal("removing a stranger allowed")
	}

	// Cannot remove the last voter.
	solo := Membership{Epoch: 0, Voters: []int{0}, Alpha: 1}
	if _, err := solo.WithRemove(0); err == nil {
		t.Fatal("removed last voter")
	}
}

func TestValidate(t *testing.T) {
	bad := []Membership{
		{Voters: nil, Alpha: 1},
		{Voters: []int{0}, Alpha: 0},
		{Voters: []int{0, 0}, Alpha: 1},
		{Voters: []int{0}, Learners: []int{0}, Alpha: 1},
		{Voters: []int{-1}, Alpha: 1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("case %d: %+v validated", i, m)
		}
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	m0 := Initial(3)
	m1, _ := m0.WithAdd(3, "x:1")
	s := []Scheduled{{FromInst: 0, M: m0}, {FromInst: 42, M: m1}}
	got, err := DecodeSchedule(EncodeSchedule(s))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("schedule round trip mismatch:\n got %+v\nwant %+v", got, s)
	}
}

func TestBarrierValues(t *testing.T) {
	for _, id := range []uint64{0, 1, 1 << 40, ^uint64(0)} {
		val := BarrierValue(id)
		if !IsPadding(val) || !IsMeta(val) {
			t.Fatalf("barrier %d must read as padding metadata", id)
		}
		if IsValue(val) {
			t.Fatalf("barrier %d must not read as a membership", id)
		}
		got, ok := BarrierID(val)
		if !ok || got != id {
			t.Fatalf("BarrierID(BarrierValue(%d)) = %d, %v", id, got, ok)
		}
	}
	if !IsPadding(PaddingValue()) {
		t.Fatal("bare padding must still read as padding")
	}
	if _, ok := BarrierID(PaddingValue()); ok {
		t.Fatal("bare padding carries no barrier id")
	}
	if _, ok := BarrierID(EncodeValue(Initial(3))); ok {
		t.Fatal("membership values carry no barrier id")
	}
}
