package wire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripBasics(t *testing.T) {
	e := NewEncoder(nil)
	e.Uvarint(0)
	e.Uvarint(300)
	e.Uvarint(math.MaxUint64)
	e.Varint(-1)
	e.Varint(1 << 40)
	e.Uint32(0xdeadbeef)
	e.Uint64(0x0123456789abcdef)
	e.Byte(7)
	e.Bool(true)
	e.Bool(false)
	e.BytesVal([]byte("hello"))
	e.String("world")
	e.Float64(3.5)

	d := NewDecoder(e.Bytes())
	if got := d.Uvarint(); got != 0 {
		t.Errorf("Uvarint = %d, want 0", got)
	}
	if got := d.Uvarint(); got != 300 {
		t.Errorf("Uvarint = %d, want 300", got)
	}
	if got := d.Uvarint(); got != math.MaxUint64 {
		t.Errorf("Uvarint = %d, want MaxUint64", got)
	}
	if got := d.Varint(); got != -1 {
		t.Errorf("Varint = %d, want -1", got)
	}
	if got := d.Varint(); got != 1<<40 {
		t.Errorf("Varint = %d, want 1<<40", got)
	}
	if got := d.Uint32(); got != 0xdeadbeef {
		t.Errorf("Uint32 = %#x", got)
	}
	if got := d.Uint64(); got != 0x0123456789abcdef {
		t.Errorf("Uint64 = %#x", got)
	}
	if got := d.Byte(); got != 7 {
		t.Errorf("Byte = %d", got)
	}
	if got := d.Bool(); !got {
		t.Error("Bool = false, want true")
	}
	if got := d.Bool(); got {
		t.Error("Bool = true, want false")
	}
	if got := d.BytesVal(); !bytes.Equal(got, []byte("hello")) {
		t.Errorf("BytesVal = %q", got)
	}
	if got := d.String(); got != "world" {
		t.Errorf("String = %q", got)
	}
	if got := d.Float64(); got != 3.5 {
		t.Errorf("Float64 = %v", got)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("decode error: %v", err)
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", d.Remaining())
	}
}

func TestShortBuffer(t *testing.T) {
	e := NewEncoder(nil)
	e.Uint64(42)
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		d.Uint64()
		if d.Err() != ErrShort {
			t.Errorf("cut=%d: err = %v, want ErrShort", cut, d.Err())
		}
	}
}

func TestCorruptLengthPrefix(t *testing.T) {
	e := NewEncoder(nil)
	e.Uvarint(1000) // claims 1000 bytes follow
	e.Byte('x')
	d := NewDecoder(e.Bytes())
	d.BytesVal()
	if d.Err() != ErrCorrupt {
		t.Errorf("err = %v, want ErrCorrupt", d.Err())
	}
}

func TestBoolCorrupt(t *testing.T) {
	d := NewDecoder([]byte{2})
	d.Bool()
	if d.Err() != ErrCorrupt {
		t.Errorf("err = %v, want ErrCorrupt", d.Err())
	}
}

func TestErrorSticky(t *testing.T) {
	d := NewDecoder(nil)
	d.Byte()
	if d.Err() != ErrShort {
		t.Fatalf("err = %v", d.Err())
	}
	// Subsequent reads keep returning zero values without changing the error.
	if v := d.Uvarint(); v != 0 {
		t.Errorf("Uvarint after error = %d", v)
	}
	if d.Err() != ErrShort {
		t.Errorf("err changed to %v", d.Err())
	}
}

func TestQuickUvarint(t *testing.T) {
	f := func(v uint64) bool {
		e := NewEncoder(nil)
		e.Uvarint(v)
		d := NewDecoder(e.Bytes())
		return d.Uvarint() == v && d.Err() == nil && d.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickVarint(t *testing.T) {
	f := func(v int64) bool {
		e := NewEncoder(nil)
		e.Varint(v)
		d := NewDecoder(e.Bytes())
		return d.Varint() == v && d.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBytes(t *testing.T) {
	f := func(b []byte, s string) bool {
		e := NewEncoder(nil)
		e.BytesVal(b)
		e.String(s)
		d := NewDecoder(e.Bytes())
		gb := d.BytesVal()
		gs := d.String()
		return bytes.Equal(gb, b) && gs == s && d.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMixedSequence(t *testing.T) {
	// A sequence of (tag, value) pairs must decode to exactly what was
	// encoded regardless of value mix.
	f := func(us []uint64, is []int64, bs [][]byte) bool {
		e := NewEncoder(nil)
		for _, v := range us {
			e.Byte(0)
			e.Uvarint(v)
		}
		for _, v := range is {
			e.Byte(1)
			e.Varint(v)
		}
		for _, v := range bs {
			e.Byte(2)
			e.BytesVal(v)
		}
		d := NewDecoder(e.Bytes())
		for _, v := range us {
			if d.Byte() != 0 || d.Uvarint() != v {
				return false
			}
		}
		for _, v := range is {
			if d.Byte() != 1 || d.Varint() != v {
				return false
			}
		}
		for _, v := range bs {
			if d.Byte() != 2 || !bytes.Equal(d.BytesVal(), v) {
				return false
			}
		}
		return d.Err() == nil && d.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(nil)
	e.Uvarint(7)
	if e.Len() == 0 {
		t.Fatal("Len = 0 after write")
	}
	e.Reset()
	if e.Len() != 0 {
		t.Errorf("Len = %d after Reset", e.Len())
	}
	e.Uvarint(9)
	d := NewDecoder(e.Bytes())
	if got := d.Uvarint(); got != 9 {
		t.Errorf("after reset decode = %d, want 9", got)
	}
}

func TestBytesValAliasing(t *testing.T) {
	e := NewEncoder(nil)
	e.BytesVal([]byte{1, 2, 3})
	e.Byte(9)
	d := NewDecoder(e.Bytes())
	b := d.BytesVal()
	// The returned slice must have capacity clamped so appends cannot
	// clobber adjacent encoded data.
	b = append(b, 42)
	if got := d.Byte(); got != 9 {
		t.Errorf("append to decoded bytes clobbered the buffer: next byte = %d, want 9", got)
	}
}
