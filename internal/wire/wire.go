// Package wire implements the compact binary encoding used throughout Rex
// for traces, Paxos messages, and WAL records.
//
// The format is deliberately simple: unsigned varints (the same encoding as
// encoding/binary's Uvarint), zig-zag signed varints, length-prefixed byte
// strings, and fixed-width little-endian integers where alignment matters.
// Encoding never fails; decoding returns ErrCorrupt on malformed input and
// ErrShort on truncated input so callers can distinguish a torn tail (normal
// for a write-ahead log) from corruption.
package wire

import (
	"encoding/binary"
	"errors"
	"math"
	"sync"
)

// ErrShort reports that the buffer ended before a complete value was read.
var ErrShort = errors.New("wire: short buffer")

// ErrCorrupt reports structurally invalid data (e.g. an overlong varint or a
// length prefix that exceeds the remaining input).
var ErrCorrupt = errors.New("wire: corrupt data")

// Encoder appends values to a byte slice. The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder writing into buf (which may be nil).
func NewEncoder(buf []byte) *Encoder { return &Encoder{buf: buf} }

// encPool recycles Encoders (and, more importantly, their grown buffers)
// across hot-path encodes: delta proposals, WAL record framing.
var encPool = sync.Pool{New: func() any { return &Encoder{} }}

// maxPooledBuf bounds the buffer capacity returned to the pool so one
// pathological giant delta cannot pin memory forever.
const maxPooledBuf = 1 << 22 // 4 MiB

// GetEncoder returns a pooled, reset Encoder whose buffer holds at least
// sizeHint bytes without growing. Callers that know the size of the
// previous encode (e.g. the previous delta) pass it so steady-state
// encoding never reallocates. Release the encoder when its bytes have been
// fully consumed or copied.
func GetEncoder(sizeHint int) *Encoder {
	e := encPool.Get().(*Encoder)
	if cap(e.buf) < sizeHint {
		e.buf = make([]byte, 0, sizeHint)
	} else {
		e.buf = e.buf[:0]
	}
	return e
}

// Release returns e to the pool. The caller must not touch e or any slice
// obtained from e.Bytes() afterwards (copy first if the bytes outlive the
// encode).
func (e *Encoder) Release() {
	if cap(e.buf) > maxPooledBuf {
		e.buf = nil
	}
	encPool.Put(e)
}

// AppendCopy appends the encoded bytes to dst and returns the result —
// the right-sized escape hatch before Release when the bytes must
// outlive the encoder.
func (e *Encoder) AppendCopy(dst []byte) []byte {
	return append(dst, e.buf...)
}

// Bytes returns the encoded bytes accumulated so far.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes accumulated so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the accumulated bytes but keeps the underlying storage.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Uvarint appends v in unsigned varint encoding.
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Varint appends v in zig-zag signed varint encoding.
func (e *Encoder) Varint(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Uint32 appends v as a fixed-width little-endian 32-bit value.
func (e *Encoder) Uint32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// Uint64 appends v as a fixed-width little-endian 64-bit value.
func (e *Encoder) Uint64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// Byte appends a single byte.
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// Bool appends a boolean as a single 0/1 byte.
func (e *Encoder) Bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Bytes8 appends b with a uvarint length prefix.
func (e *Encoder) BytesVal(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends s with a uvarint length prefix.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Float64 appends v as its IEEE-754 bit pattern, little-endian.
func (e *Encoder) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// Decoder reads values from a byte slice.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a Decoder reading from buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Offset returns the current read offset.
func (d *Decoder) Offset() int { return d.off }

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Uvarint reads an unsigned varint. On error it returns 0 and records the
// error, making it safe to chain reads and check Err once.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	switch {
	case n > 0:
		d.off += n
		return v
	case n == 0:
		d.fail(ErrShort)
	default:
		d.fail(ErrCorrupt)
	}
	return 0
}

// Varint reads a zig-zag signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	switch {
	case n > 0:
		d.off += n
		return v
	case n == 0:
		d.fail(ErrShort)
	default:
		d.fail(ErrCorrupt)
	}
	return 0
}

// Uint32 reads a fixed-width little-endian 32-bit value.
func (d *Decoder) Uint32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 4 {
		d.fail(ErrShort)
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

// Uint64 reads a fixed-width little-endian 64-bit value.
func (d *Decoder) Uint64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.fail(ErrShort)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// Byte reads a single byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 1 {
		d.fail(ErrShort)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// Bool reads a 0/1 byte; any other value is corruption.
func (d *Decoder) Bool() bool {
	b := d.Byte()
	if d.err != nil {
		return false
	}
	switch b {
	case 0:
		return false
	case 1:
		return true
	}
	d.fail(ErrCorrupt)
	return false
}

// BytesVal reads a length-prefixed byte string. The returned slice aliases
// the decoder's buffer; callers that retain it must copy.
func (d *Decoder) BytesVal() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail(ErrCorrupt)
		return nil
	}
	b := d.buf[d.off : d.off+int(n) : d.off+int(n)]
	d.off += int(n)
	return b
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	return string(d.BytesVal())
}

// Float64 reads an IEEE-754 bit pattern written by Encoder.Float64.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }
