package core_test

import (
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"rex/internal/cluster"
	"rex/internal/core"
	"rex/internal/readpath"
	"rex/internal/sched"
	"rex/internal/sim"
)

// unclassifiedSM wraps tkv but hides its ClassifyQuery, modeling a state
// machine that never opted into the read/write classification hook.
type unclassifiedSM struct{ kv *tkv }

func (u *unclassifiedSM) Apply(ctx *core.Ctx, req []byte) []byte { return u.kv.Apply(ctx, req) }
func (u *unclassifiedSM) Query(ctx *core.Ctx, q []byte) []byte   { return u.kv.Query(ctx, q) }
func (u *unclassifiedSM) WriteCheckpoint(w io.Writer) error      { return u.kv.WriteCheckpoint(w) }
func (u *unclassifiedSM) ReadCheckpoint(r io.Reader) error       { return u.kv.ReadCheckpoint(r) }

func TestLinearizableReadSeesOwnWrite(t *testing.T) {
	e := sim.New(8)
	e.Run(func() {
		c := cluster.New(e, newTKV, defaultOpts())
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		p, err := c.WaitPrimary(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		cl := c.NewClient(1)
		for i := 0; i < 5; i++ {
			if _, err := cl.Do([]byte(fmt.Sprintf("put lin%d v%d", i, i))); err != nil {
				t.Fatal(err)
			}
			resp, err := cl.QueryLevel(readpath.Linearizable, []byte(fmt.Sprintf("get lin%d", i)))
			if err != nil || string(resp) != fmt.Sprintf("v%d", i) {
				t.Fatalf("linearizable read %d = %q, %v", i, resp, err)
			}
		}
		// Linearizable reads are primary-only: a secondary bounces them
		// with a leader hint rather than serving possibly-stale state.
		sec := (p + 1) % c.Size()
		_, _, err = c.Replica(sec).QueryLevel(readpath.Linearizable, readpath.Token{}, []byte("get lin0"))
		var np core.ErrNotPrimary
		if !errors.As(err, &np) {
			t.Fatalf("secondary linearizable read: got %v, want ErrNotPrimary", err)
		}
		c.Stop()
	})
}

// TestLinearizableReadBarrierPath disables the quorum lease so every
// linearizable read must confirm leadership through a consensus barrier.
func TestLinearizableReadBarrierPath(t *testing.T) {
	e := sim.New(8)
	e.Run(func() {
		opts := defaultOpts()
		opts.LeaseDuration = -1 // force the barrier leg
		c := cluster.New(e, newTKV, opts)
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		if _, err := c.WaitPrimary(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		cl := c.NewClient(1)
		if _, err := cl.Do([]byte("put bar yes")); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			resp, err := cl.QueryLevel(readpath.Linearizable, []byte("get bar"))
			if err != nil || string(resp) != "yes" {
				t.Fatalf("barrier-confirmed read = %q, %v", resp, err)
			}
		}
		c.Stop()
	})
}

func TestSessionReadYourWritesOnSecondary(t *testing.T) {
	e := sim.New(8)
	e.Run(func() {
		c := cluster.New(e, newTKV, defaultOpts())
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		p, err := c.WaitPrimary(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		// Write directly on the primary to capture the session token its
		// commit frontier produces.
		_, tok, err := c.Replica(p).SubmitToken(7, 1, []byte("put sess mine"))
		if err != nil {
			t.Fatal(err)
		}
		if tok.Zero() {
			t.Fatal("write returned a zero session token")
		}
		// A secondary must hold the session read until its replayed
		// frontier covers the token, then serve the written value.
		sec := (p + 1) % c.Size()
		resp, tok2, err := c.Replica(sec).QueryLevel(readpath.Session, tok, []byte("get sess"))
		if err != nil || string(resp) != "mine" {
			t.Fatalf("session read on secondary = %q, %v", resp, err)
		}
		if !tok2.Covers(tok) {
			t.Fatalf("refreshed token %+v does not cover the write token %+v", tok2, tok)
		}
		// The client wrapper does the same dance end to end.
		cl := c.NewClient(1)
		if _, err := cl.Do([]byte("put sess2 also")); err != nil {
			t.Fatal(err)
		}
		resp, err = cl.QueryLevel(readpath.Session, []byte("get sess2"))
		if err != nil || string(resp) != "also" {
			t.Fatalf("client session read = %q, %v", resp, err)
		}
		c.Stop()
	})
}

// TestFollowerReadLeavesStateUntouched is the classification regression
// test: serving reads from a secondary must not change its replicated
// state by a single byte (a query with side effects would fork it from
// the committed trace).
func TestFollowerReadLeavesStateUntouched(t *testing.T) {
	e := sim.New(8)
	e.Run(func() {
		c := cluster.New(e, newTKV, defaultOpts())
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		p, err := c.WaitPrimary(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		cl := c.NewClient(1)
		for i := 0; i < 8; i++ {
			if _, err := cl.Do([]byte(fmt.Sprintf("put fr%d v%d", i, i))); err != nil {
				t.Fatal(err)
			}
		}
		waitConverged(t, e, c, 20*time.Second)
		sec := (p + 1) % c.Size()
		before := stateOf(t, c.Replica(sec))
		for i := 0; i < 8; i++ {
			q := []byte(fmt.Sprintf("get fr%d", i))
			resp, _, err := c.Replica(sec).QueryLevel(readpath.Eventual, readpath.Token{}, q)
			if err != nil || string(resp) != fmt.Sprintf("v%d", i) {
				t.Fatalf("eventual read %d = %q, %v", i, resp, err)
			}
			if resp, _, err = c.Replica(sec).QueryLevel(readpath.Session, readpath.Token{}, q); err != nil || string(resp) != fmt.Sprintf("v%d", i) {
				t.Fatalf("session read %d = %q, %v", i, resp, err)
			}
		}
		if after := stateOf(t, c.Replica(sec)); after != before {
			t.Fatal("follower reads changed replica state")
		}
		c.Stop()
	})
}

// TestUnclassifiedQueryBouncesToPrimary checks the default-deny side of
// the hook: a state machine without ClassifyQuery never serves follower
// reads; the client falls back to the primary instead.
func TestUnclassifiedQueryBouncesToPrimary(t *testing.T) {
	e := sim.New(8)
	e.Run(func() {
		factory := func(rt *sched.Runtime, host *core.TimerHost) core.StateMachine {
			return &unclassifiedSM{kv: newTKV(rt, host).(*tkv)}
		}
		c := cluster.New(e, factory, defaultOpts())
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		p, err := c.WaitPrimary(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		cl := c.NewClient(1)
		if _, err := cl.Do([]byte("put u x")); err != nil {
			t.Fatal(err)
		}
		sec := (p + 1) % c.Size()
		if _, _, err := c.Replica(sec).QueryLevel(readpath.Eventual, readpath.Token{}, []byte("get u")); !errors.Is(err, readpath.ErrPrimaryOnly) {
			t.Fatalf("unclassified follower read: got %v, want ErrPrimaryOnly", err)
		}
		// The client falls back to the primary and still answers.
		resp, err := cl.QueryLevel(readpath.Eventual, []byte("get u"))
		if err != nil || string(resp) != "x" {
			t.Fatalf("client fallback read = %q, %v", resp, err)
		}
		c.Stop()
	})
}
