package core_test

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"rex/internal/cluster"
	"rex/internal/env"
	"rex/internal/sim"
)

// TestCrashRecoveryTorture repeatedly crashes and restarts replicas —
// primaries and secondaries alike — under continuous counter load with
// periodic checkpoints, then verifies that (a) the cluster converges and
// (b) the counters reflect exactly the acknowledged increments (no loss,
// no duplication: the §2.2 correctness definition end-to-end).
func TestCrashRecoveryTorture(t *testing.T) {
	e := sim.New(8)
	e.Run(func() {
		opts := cluster.Options{
			Replicas:        3,
			Workers:         4,
			Timers:          1,
			ProposeEvery:    time.Millisecond,
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 120 * time.Millisecond,
			CheckpointEvery: 300 * time.Millisecond,
			Seed:            23,
		}
		c := cluster.New(e, newTKV, opts)
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		if _, err := c.WaitPrimary(5 * time.Second); err != nil {
			t.Fatal(err)
		}

		const clients = 4
		acked := make([]int, clients) // successful increments per client
		stop := false
		mu := e.NewMutex()
		g := env.NewGroup(e)
		for cid := 0; cid < clients; cid++ {
			cid := cid
			g.Add(1)
			e.Go(fmt.Sprintf("client-%d", cid), func() {
				defer g.Done()
				cl := c.NewClient(uint64(cid + 1))
				for {
					mu.Lock()
					s := stop
					mu.Unlock()
					if s {
						return
					}
					if _, err := cl.DoTimeout([]byte(fmt.Sprintf("add c%d 1", cid)), 30*time.Second); err == nil {
						mu.Lock()
						acked[cid]++
						mu.Unlock()
					}
				}
			})
		}

		// The torture schedule: 6 rounds of kill-a-replica / run / restart.
		for round := 0; round < 6; round++ {
			e.Sleep(400 * time.Millisecond)
			victim := round % 3
			if round%2 == 0 {
				// Kill whoever is primary on even rounds.
				if p := c.Primary(); p >= 0 {
					victim = p
				}
			}
			c.Crash(victim)
			e.Sleep(600 * time.Millisecond)
			if err := c.Restart(victim); err != nil {
				t.Fatalf("round %d restart: %v", round, err)
			}
		}
		e.Sleep(time.Second)
		mu.Lock()
		stop = true
		mu.Unlock()
		g.Wait()

		if _, err := c.WaitConverged(60 * time.Second); err != nil {
			t.Fatal(err)
		}
		// At-most-once + no-loss: each counter equals its client's
		// acknowledged increments. (A retried request that was actually
		// executed before the crash is answered from the replicated dedup
		// table, so acked == executed exactly.)
		cl := c.NewClient(999)
		total := 0
		for cid := 0; cid < clients; cid++ {
			resp, err := cl.Do([]byte(fmt.Sprintf("get c%d", cid)))
			if err != nil {
				t.Fatalf("final get: %v", err)
			}
			got := 0
			if len(resp) > 0 {
				got, _ = strconv.Atoi(string(resp))
			}
			mu.Lock()
			want := acked[cid]
			mu.Unlock()
			if got != want {
				t.Errorf("client %d: counter=%d acknowledged=%d", cid, got, want)
			}
			total += got
		}
		if total == 0 {
			t.Fatal("no increments survived the torture — vacuous run")
		}
		t.Logf("torture survived: %d acknowledged increments across %d crash/restart rounds", total, 6)
		c.Stop()
	})
}
