package core_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"rex/internal/apps/hashdb"
	"rex/internal/cluster"
	"rex/internal/env"
	"rex/internal/readpath"
	"rex/internal/sim"
)

// conflictSchedule pre-generates a deterministic request schedule from a
// seed: per-client private keys (pairwise-disjoint conflict classes, so
// their slice-lock events elide), a shared read-only key pool
// (overlapping classes exercised through concurrent readers), and
// whole-table sweeps (catch-all class, dispatched under the admission
// barrier). Writes stay single-writer-per-key so the final database
// contents are schedule-independent and can be compared byte for byte
// across runs with different tracing modes.
func conflictSchedule(seed int64, clients, opsPer int) [][][]byte {
	rng := rand.New(rand.NewSource(seed))
	scheds := make([][][]byte, clients)
	for ci := 0; ci < clients; ci++ {
		for op := 0; op < opsPer; op++ {
			var body []byte
			switch r := rng.Intn(100); {
			case r < 45:
				body = hashdb.SetReq(fmt.Sprintf("p%d-%d", ci, rng.Intn(6)),
					[]byte(fmt.Sprintf("c%d-n%d", ci, op)))
			case r < 55:
				body = hashdb.DelReq(fmt.Sprintf("p%d-%d", ci, rng.Intn(6)))
			case r < 90:
				body = hashdb.GetReq(fmt.Sprintf("shared-%d", rng.Intn(4)))
			default:
				body = hashdb.SweepReq()
			}
			scheds[ci] = append(scheds[ci], body)
		}
	}
	return scheds
}

// runConflictWorkload drives one 3-replica hashdb cluster through the
// schedule and returns the converged application state plus the number
// of lock ops the primary elided. The auto-sync period is pushed past
// the test horizon so the replicated state depends only on the request
// set, not on timer interleavings — which is what makes elided and
// fully-traced runs byte-comparable.
func runConflictWorkload(t *testing.T, scheds [][][]byte, disableElision bool) (string, uint64) {
	t.Helper()
	var state string
	var elided uint64
	e := sim.New(8)
	e.Run(func() {
		factory := hashdb.New(hashdb.Options{
			Slices:    64,
			SyncEvery: time.Hour, // never fires inside the test horizon
			SyncCost:  50 * time.Microsecond,
			SetCost:   20 * time.Microsecond,
			GetCost:   15 * time.Microsecond,
		})
		c := cluster.New(e, factory, cluster.Options{
			Replicas:               3,
			Workers:                4,
			Timers:                 hashdb.Timers(),
			ProposeEvery:           2 * time.Millisecond,
			HeartbeatEvery:         20 * time.Millisecond,
			ElectionTimeout:        100 * time.Millisecond,
			StatusEvery:            20 * time.Millisecond,
			Seed:                   11,
			DisableConflictElision: disableElision,
		})
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		p, err := c.WaitPrimary(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		g := env.NewGroup(e)
		for ci := range scheds {
			ci := ci
			g.Add(1)
			e.Go(fmt.Sprintf("conflict-client-%d", ci), func() {
				defer g.Done()
				cl := c.NewClient(uint64(100 + ci))
				for _, body := range scheds[ci] {
					if _, err := cl.Do(body); err != nil {
						t.Errorf("client %d: %v", ci, err)
						return
					}
				}
			})
		}
		g.Wait()
		elided = c.Replica(p).Stats().ElidedOps

		// Replay determinism through a restart: a secondary rebuilt from
		// its own log must replay the (possibly elided) trace back to the
		// same bytes.
		sec := (p + 1) % c.Size()
		c.Crash(sec)
		if err := c.Restart(sec); err != nil {
			t.Fatalf("restart secondary: %v", err)
		}
		state = waitConverged(t, e, c, 30*time.Second)
		c.Stop()
	})
	return state, elided
}

// TestConflictElisionStateEquivalence is the elision property test:
// across random schedules of disjoint-class writes, overlapping-class
// reads, and catch-all sweeps, a cluster tracing with conflict-class
// elision must converge — including through a secondary crash/restart —
// to the exact bytes a fully-traced cluster produces, while actually
// eliding a nonzero number of lock events.
func TestConflictElisionStateEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			scheds := conflictSchedule(seed, 4, 60)
			elidedState, elidedOps := runConflictWorkload(t, scheds, false)
			fullState, fullOps := runConflictWorkload(t, scheds, true)
			if elidedOps == 0 {
				t.Fatal("elision enabled but no lock op was elided")
			}
			if fullOps != 0 {
				t.Fatalf("elision disabled but %d ops were elided", fullOps)
			}
			if elidedState != fullState {
				t.Fatalf("elided and fully-traced runs diverged:\nelided: %d bytes\nfull:   %d bytes",
					len(elidedState), len(fullState))
			}
		})
	}
}

// TestSessionReadTokenAcrossRebuild is the cut-normalization regression
// test (Replayer.WaitExecutedAtLeast / readpath.Token.Covers): a session
// token minted before a resync or rebuild can carry a cut sized for a
// different thread count. Trailing zeros must be treated as "nothing to
// wait for" — the read is served — while a non-zero entry for a thread
// the trace does not have must fail fast instead of stalling out the
// full wait budget.
func TestSessionReadTokenAcrossRebuild(t *testing.T) {
	e := sim.New(8)
	e.Run(func() {
		opts := defaultOpts()
		opts.ReadWaitTimeout = 300 * time.Millisecond
		c := cluster.New(e, newTKV, opts)
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		p, err := c.WaitPrimary(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		_, tok, err := c.Replica(p).SubmitToken(7, 1, []byte("put reb mine"))
		if err != nil {
			t.Fatal(err)
		}

		// Rebuild a secondary from its durable state, then read through it
		// with a token whose cut is padded past the worker count — the
		// shape a pre-rebuild token has when thread counts change.
		sec := (p + 1) % c.Size()
		c.Crash(sec)
		if err := c.Restart(sec); err != nil {
			t.Fatal(err)
		}
		padded := tok
		padded.Cut = append(tok.Cut.Clone(), 0, 0, 0)
		resp, tok2, err := c.Replica(sec).QueryLevel(readpath.Session, padded, []byte("get reb"))
		if err != nil || string(resp) != "mine" {
			t.Fatalf("session read with padded token = %q, %v", resp, err)
		}
		if !tok2.Covers(tok) {
			t.Fatalf("refreshed token %+v does not cover the original %+v", tok2, tok)
		}

		// A genuinely uncoverable token — non-zero progress on a thread
		// this trace does not have — must fail fast, not stall.
		impossible := tok
		impossible.Cut = append(tok.Cut.Clone(), 0, 0, 7)
		t0 := e.Now()
		_, _, err = c.Replica(sec).QueryLevel(readpath.Session, impossible, []byte("get reb"))
		waited := e.Now() - t0
		if !errors.Is(err, readpath.ErrFrontierWait) {
			t.Fatalf("impossible token: got %v, want ErrFrontierWait", err)
		}
		if waited >= opts.ReadWaitTimeout {
			t.Fatalf("impossible token stalled %v (budget %v); want fail-fast", waited, opts.ReadWaitTimeout)
		}
		c.Stop()
	})
}

// TestLinearizableReadWaitBound is the shared-deadline regression test:
// a linearizable read whose lease has lapsed AND whose consensus barrier
// cannot confirm (the primary is isolated, with a write still pending)
// must give up within ONE ReadWaitTimeout — the drain and barrier legs
// share a single deadline rather than each getting their own budget.
func TestLinearizableReadWaitBound(t *testing.T) {
	e := sim.New(8)
	e.Run(func() {
		opts := defaultOpts()
		opts.ReadWaitTimeout = 300 * time.Millisecond
		c := cluster.New(e, newTKV, opts)
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		p, err := c.WaitPrimary(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		cl := c.NewClient(1)
		if _, err := cl.Do([]byte("put bound v")); err != nil {
			t.Fatal(err)
		}

		// Cut the primary off and let its lease lapse (default lease is
		// 4×HeartbeatEvery = 80ms); a write submitted behind the partition
		// stays pending so the drain leg has something to wait on too.
		c.Net.Isolate(p, true)
		e.Go("stuck-writer", func() {
			_, _, _ = c.Replica(p).SubmitToken(9, 1, []byte("put bound v2"))
		})
		e.Sleep(150 * time.Millisecond)

		t0 := e.Now()
		_, _, err = c.Replica(p).QueryLevel(readpath.Linearizable, readpath.Token{}, []byte("get bound"))
		waited := e.Now() - t0
		if err == nil {
			t.Fatal("isolated primary served a linearizable read")
		}
		if waited > opts.ReadWaitTimeout+100*time.Millisecond {
			t.Fatalf("linearizable read waited %v, want <= one ReadWaitTimeout (%v) plus grace",
				waited, opts.ReadWaitTimeout)
		}
		c.Net.Isolate(p, false)
		c.Stop()
	})
}
