package core_test

import (
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"rex/internal/cluster"
	"rex/internal/core"
	"rex/internal/env"
	"rex/internal/rexsync"
	"rex/internal/sched"
	"rex/internal/sim"
	"rex/internal/wire"
)

// racySM reproduces the paper's §6.1 debugging experience: a state machine
// with an unsynchronized lazy initialization (the Fig. 5 singleton). With
// `fixed` false the initialization races are visible to Rex and replay
// diverges (caught by version checking); with `fixed` true the
// initialization runs inside a NativeExec scope (the paper's NATIVE_EXEC
// fix) and replication works.
type racySM struct {
	lock  *rexsync.Lock
	singl *int // lazily initialized "singleton"
	data  int
	fixed bool
}

func newRacy(fixed bool) core.Factory {
	return func(rt *sched.Runtime, host *core.TimerHost) core.StateMachine {
		return &racySM{lock: rexsync.NewLock(rt, "singleton-lock"), fixed: fixed}
	}
}

func (s *racySM) getInstance(ctx *core.Ctx) *int {
	w := ctx.Worker()
	init := func() {
		if s.singl == nil { // double-checked locking (Fig. 5)
			s.lock.Lock(w)
			if s.singl == nil {
				v := 42
				s.singl = &v
			}
			s.lock.Unlock(w)
		}
	}
	if s.fixed {
		// The paper's fix: exclude the benign race from the agree-follow
		// scope so any thread may initialize on any replica.
		ctx.Native(init)
	} else {
		init()
	}
	return s.singl
}

func (s *racySM) Apply(ctx *core.Ctx, req []byte) []byte {
	w := ctx.Worker()
	_ = s.getInstance(ctx)
	ctx.Compute(50 * time.Microsecond)
	s.lock.Lock(w)
	s.data++
	v := s.data
	s.lock.Unlock(w)
	e := wire.NewEncoder(nil)
	e.Uvarint(uint64(v))
	return e.Bytes()
}

func (s *racySM) WriteCheckpoint(w io.Writer) error {
	e := wire.NewEncoder(nil)
	e.Uvarint(uint64(s.data))
	_, err := w.Write(e.Bytes())
	return err
}

func (s *racySM) ReadCheckpoint(r io.Reader) error {
	buf, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	s.data = int(wire.NewDecoder(buf).Uvarint())
	return nil
}

func runRacy(t *testing.T, fixed bool) (faultErr error) {
	t.Helper()
	e := sim.New(8)
	e.Run(func() {
		c := cluster.New(e, newRacy(fixed), cluster.Options{
			Replicas:        3,
			Workers:         4,
			ProposeEvery:    time.Millisecond,
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 100 * time.Millisecond,
			Seed:            3,
		})
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		if _, err := c.WaitPrimary(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		g := env.NewGroup(e)
		for cid := 0; cid < 4; cid++ {
			cid := cid
			g.Add(1)
			e.Go("client", func() {
				defer g.Done()
				cl := c.NewClient(uint64(cid + 1))
				for i := 0; i < 15; i++ {
					if _, err := cl.Do([]byte{1}); err != nil {
						return
					}
				}
			})
		}
		g.Wait()
		e.Sleep(300 * time.Millisecond) // let secondaries replay
		for _, r := range c.Replicas {
			if err := r.FaultError(); err != nil {
				faultErr = err
			}
		}
		c.Stop()
	})
	return faultErr
}

// TestSingletonRaceDetectedByVersionChecking: with the unguarded lazy
// initialization, a secondary whose scheduling differs takes the
// initialization lock from a "wrong" thread and version checking reports
// the divergence naming the resource — the paper's §6.1 experience.
func TestSingletonRaceDetectedByVersionChecking(t *testing.T) {
	err := runRacy(t, false)
	if err == nil {
		// The race fires only when replica scheduling differs; with our
		// deterministic simulator the primary's own interleaving is the
		// one replayed, so the unfixed version may still pass. Accept but
		// require the FIXED variant to pass below; if a fault does fire it
		// must be a divergence naming the lock.
		t.Skip("race did not manifest under this seed (timing-dependent, as in the paper)")
	}
	var div *sched.DivergenceError
	if ok := asDivergence(err, &div); !ok {
		t.Fatalf("fault is not a divergence: %v", err)
	}
	if !strings.Contains(err.Error(), "singleton-lock") {
		t.Errorf("divergence does not name the racy resource: %v", err)
	}
}

func asDivergence(err error, out **sched.DivergenceError) bool {
	for err != nil {
		if d, ok := err.(*sched.DivergenceError); ok {
			*out = d
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestSingletonRaceFixedWithNativeExec: wrapping the benign race in a
// NativeExec scope (Fig. 5's NATIVE_EXEC) removes it from the agree-follow
// scope and the cluster replicates cleanly.
func TestSingletonRaceFixedWithNativeExec(t *testing.T) {
	if err := runRacy(t, true); err != nil {
		t.Fatalf("NATIVE_EXEC-fixed singleton still faulted: %v", err)
	}
}

// TestClusterConvergesUnderMessageLoss is the chaos test: 5% message loss
// and jitter on the replication network must not break convergence (Paxos
// retransmits; the trace protocol sits above it).
func TestClusterConvergesUnderMessageLoss(t *testing.T) {
	e := sim.New(8)
	e.Run(func() {
		c := cluster.New(e, newRacy(true), cluster.Options{
			Replicas:        3,
			Workers:         4,
			ProposeEvery:    time.Millisecond,
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 150 * time.Millisecond,
			Seed:            17,
		})
		c.Net.SetLoss(0.05)
		c.Net.SetJitter(time.Millisecond)
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		if _, err := c.WaitPrimary(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		g := env.NewGroup(e)
		okCount := 0
		mu := e.NewMutex()
		for cid := 0; cid < 4; cid++ {
			cid := cid
			g.Add(1)
			e.Go("client", func() {
				defer g.Done()
				cl := c.NewClient(uint64(cid + 1))
				for i := 0; i < 20; i++ {
					if _, err := cl.DoTimeout([]byte{1}, 20*time.Second); err == nil {
						mu.Lock()
						okCount++
						mu.Unlock()
					}
				}
			})
		}
		g.Wait()
		if okCount < 70 {
			t.Errorf("only %d/80 requests completed under 5%% loss", okCount)
		}
		if _, err := c.WaitConverged(30 * time.Second); err != nil {
			t.Fatalf("no convergence under loss: %v", err)
		}
		c.Stop()
	})
	_ = fmt.Sprint
}
