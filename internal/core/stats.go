package core

import (
	"rex/internal/sched"
	"rex/internal/trace"
)

// Stats is a point-in-time view of a replica's counters, used by the
// benchmark harness to reproduce the paper's measurements.
type Stats struct {
	Role           Role
	ReqsCompleted  uint64 // requests whose handler finished on this replica
	Applied        uint64 // committed instances applied locally
	EventsProposed uint64 // sync events in committed deltas seen
	EdgesProposed  uint64 // causal edges in committed deltas seen
	BytesCommitted uint64 // encoded bytes of committed deltas seen
	ReqsCommitted  uint64 // requests carried in committed deltas
	ReqBytes       uint64 // request payload bytes in committed deltas
	ReplayedEvents uint64 // events executed by the replay engine
	WaitedEvents   uint64 // replayed events that blocked on a causal edge
	ElidedOps      uint64 // lock ops elided via conflict-class ownership
	Outstanding    int    // admitted but unanswered requests (primary)
}

// Stats returns the replica's current counters.
func (r *Replica) Stats() Stats {
	r.mu.Lock()
	s := Stats{
		Role:           r.role,
		ReqsCompleted:  r.reqsCompleted,
		Applied:        r.applied,
		EventsProposed: r.eventsProposed,
		EdgesProposed:  r.edgesProposed,
		BytesCommitted: r.bytesProposed,
		ReqsCommitted:  r.reqsProposed,
		ReqBytes:       r.reqBytesProp,
		Outstanding:    r.outstanding,
	}
	rt := r.rt
	r.mu.Unlock()
	if rt != nil {
		if rep := rt.Replayer(); rep != nil && rt.Mode() == sched.ModeReplay {
			s.ReplayedEvents, s.WaitedEvents = rep.Stats()
		}
		s.ElidedOps = rt.ElidedOps()
	}
	return s
}

// Health is a point-in-time liveness/readiness view for operators (the
// rexd /healthz and /readyz endpoints serve it).
type Health struct {
	Role       Role
	Epoch      uint64 // latest committed membership epoch applied
	Applied    uint64 // committed instances applied locally
	ChosenSeq  uint64 // committed instances learned by consensus
	Voters     []int
	Learners   []int
	Member     bool // this replica appears in the membership
	Voter      bool // this replica votes
	CatchingUp bool // applied lags the learned frontier
}

// healthLagSlack is how many learned-but-unapplied instances a replica may
// carry before Health reports it catching up.
const healthLagSlack = 16

// Health reports the replica's role, membership view, and replication lag.
func (r *Replica) Health() Health {
	st := r.node.ChosenSnapshot()
	r.mu.Lock()
	defer r.mu.Unlock()
	return Health{
		Role:       r.role,
		Epoch:      r.member.Epoch,
		Applied:    r.applied,
		ChosenSeq:  st.Seq,
		Voters:     append([]int(nil), r.member.Voters...),
		Learners:   append([]int(nil), r.member.Learners...),
		Member:     r.member.IsMember(r.cfg.ID),
		Voter:      r.member.IsVoter(r.cfg.ID),
		CatchingUp: st.Seq > r.applied+healthLagSlack,
	}
}

// Ready reports whether the replica can serve: it is a live member (voter,
// or primary) and is not still catching up on the committed stream.
func (h Health) Ready() bool {
	if h.Role == RoleFaulted || h.Role == RoleRemoved {
		return false
	}
	if h.Role == RolePrimary {
		return true
	}
	return h.Voter && !h.CatchingUp
}

// DeltaSizes returns the encoded size of every committed delta this
// replica has applied, in instance order (for the §3.1 proposal-volume
// ablation).
func (r *Replica) DeltaSizes() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.deltaSizes...)
}

// StateMachineForTest exposes the current application instance; tests use
// it to compare replica states after quiescing.
func (r *Replica) StateMachineForTest() StateMachine {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sm
}

// TraceRetainedForTest reports how many events and requests the replica's
// trace currently retains in memory (after prefix garbage collection).
func (r *Replica) TraceRetainedForTest() (events, reqs int) {
	r.mu.Lock()
	tr := r.tr
	r.mu.Unlock()
	if tr == nil {
		return 0, 0
	}
	return tr.EventCount(), len(tr.Reqs)
}

// ChosenLog returns a consistent snapshot of the consensus learner's
// chosen instances: the first retained instance index (instances below it
// were compacted after a checkpoint) and the chosen values from there on.
// The chaos checker uses it to verify the prefix property across replicas.
func (r *Replica) ChosenLog() (base uint64, vals [][]byte) {
	st := r.node.ChosenSnapshot()
	return st.Base, st.Vals
}

// TraceForTest exposes the replica's committed-trace view for debugging.
func (r *Replica) TraceForTest() *trace.Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.rt != nil && r.rt.Replayer() != nil {
		return r.rt.Replayer().Trace()
	}
	return r.tr
}
