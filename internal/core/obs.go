package core

import (
	"rex/internal/obs"
	"rex/internal/paxos"
	"rex/internal/sched"
)

// replicaMetrics bundles every series a replica records, together with the
// registry they are exported in. The series are always allocated — when
// Config.Metrics is nil the replica keeps a private registry — so hot
// paths never nil-check.
//
// Units follow the registry conventions: *_seconds histograms, *_total
// counters. See DESIGN.md "Observability" for the full catalogue.
type replicaMetrics struct {
	reg *obs.Registry

	reqsAdmitted  *obs.Counter
	reqsCompleted *obs.Counter
	execLatency   *obs.Histogram // admission → handler done (primary)
	reqLatency    *obs.Histogram // admission → response release (includes commit)
	ckptPause     *obs.Histogram // primary pause while placing a checkpoint mark
	ckptBuild     *obs.Histogram // snapshot serialization on the designated secondary
	promoteDur    *obs.Histogram // leader win → serving as primary
	rebuildDur    *obs.Histogram // rollback/recovery rebuild duration

	// Recovery-bound series: how often replicas fall back to a checkpoint
	// re-sync, how much work each rebuild folds in, and how often the
	// log-growth checkpoint floor fires (DESIGN.md "Recovery bounds").
	resyncs       *obs.Counter       // desync detected → rebuild scheduled
	rebuilds      *obs.Counter       // rebuilds completed (any cause)
	rebuildDeltas *obs.SizeHistogram // chosen instances folded per rebuild
	ckptFloor     *obs.Counter       // checkpoints forced by the log-growth floor
	applyBacklog  *obs.Gauge         // committed instances queued behind apply

	// Commit-path series: per-proposal delta shape and the end-to-end
	// propose → commit-applied latency at the primary.
	proposeCommit *obs.Histogram     // pump Propose → instance applied
	deltaBytes    *obs.SizeHistogram // encoded bytes per proposed delta
	deltaEvents   *obs.SizeHistogram // sync events per proposed delta

	// Read-path series (DESIGN.md "Read path"): how linearizable reads
	// were confirmed (lease fast path vs consensus barrier), how many
	// reads secondaries served, and how long reads waited on admission
	// (pending drain, barrier commit, or session-frontier catch-up).
	leaseReads    *obs.Counter   // linearizable reads confirmed by the lease
	confirmReads  *obs.Counter   // linearizable reads confirmed by a barrier
	followerReads *obs.Counter   // session/eventual reads served as secondary
	readWait      *obs.Histogram // admission wait per read that waited
	readTimeouts  *obs.Counter   // reads abandoned at ReadWaitTimeout

	// Overload-protection series (DESIGN.md "Overload & admission
	// control"): the admission gate's queue shape and everything shed
	// instead of queued.
	admissionWait     *obs.Histogram // time writes waited at the admission gate
	admissionWaiters  *obs.Gauge     // submitters currently blocked at the gate
	admissionPressure *obs.Gauge     // degradation level in force (0/1/2)
	shedTotal         *obs.Counter   // everything shed, any cause
	shedWrites        *obs.Counter   // writes shed by the CoDel gate
	shedReads         *obs.Counter   // reads shed under pressure (any level)
	deadlineExceeded  *obs.Counter   // requests failed fast on an expired deadline
	degradedReads     *obs.Counter   // linearizable reads served lease-only under pressure

	paxos  *paxos.Metrics
	replay *sched.ReplayObs
}

func newReplicaMetrics(reg *obs.Registry) *replicaMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &replicaMetrics{
		reg:           reg,
		reqsAdmitted:  reg.Counter("rex_requests_admitted_total"),
		reqsCompleted: reg.Counter("rex_requests_completed_total"),
		execLatency:   reg.Histogram("rex_exec_latency_seconds"),
		reqLatency:    reg.Histogram("rex_request_latency_seconds"),
		ckptPause:     reg.Histogram("rex_checkpoint_pause_seconds"),
		ckptBuild:     reg.Histogram("rex_checkpoint_build_seconds"),
		promoteDur:    reg.Histogram("rex_promotion_seconds"),
		rebuildDur:    reg.Histogram("rex_rebuild_seconds"),
		resyncs:       reg.Counter("rex_resync_total"),
		rebuilds:      reg.Counter("rex_rebuild_total"),
		rebuildDeltas: reg.SizeHistogram("rex_rebuild_deltas"),
		ckptFloor:     reg.Counter("rex_checkpoint_floor_total"),
		applyBacklog:  reg.Gauge("rex_apply_backlog"),
		proposeCommit: reg.Histogram("rex_propose_commit_seconds"),
		deltaBytes:    reg.SizeHistogram("rex_delta_bytes"),
		deltaEvents:   reg.SizeHistogram("rex_delta_events"),
		leaseReads:    reg.Counter("rex_lease_reads_total"),
		confirmReads:  reg.Counter("rex_lease_confirm_reads_total"),
		followerReads: reg.Counter("rex_follower_reads_total"),
		readWait:      reg.Histogram("rex_read_wait_seconds"),
		readTimeouts:  reg.Counter("rex_read_wait_timeouts_total"),

		admissionWait:     reg.Histogram("rex_admission_wait_seconds"),
		admissionWaiters:  reg.Gauge("rex_admission_waiters"),
		admissionPressure: reg.Gauge("rex_admission_pressure"),
		shedTotal:         reg.Counter("rex_shed_total"),
		shedWrites:        reg.Counter("rex_shed_writes_total"),
		shedReads:         reg.Counter("rex_shed_reads_total"),
		deadlineExceeded:  reg.Counter("rex_deadline_exceeded_total"),
		degradedReads:     reg.Counter("rex_degraded_reads_total"),

		paxos:  paxos.NewMetrics(),
		replay: sched.NewReplayObs(),
	}
	m.paxos.Register(reg)
	m.replay.Register(reg)
	return m
}

// Metrics returns a point-in-time snapshot of every metric the replica
// records: stage latencies, Paxos counters, replay wait histograms, and
// checkpoint/promotion durations.
func (r *Replica) Metrics() obs.Snapshot {
	return r.obs.reg.Snapshot()
}

// MetricsRegistry exposes the replica's registry so callers (cmd/rexd's
// -metrics endpoint) can serve a text dump or co-register more series.
func (r *Replica) MetricsRegistry() *obs.Registry {
	return r.obs.reg
}
