package core_test

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"rex/internal/cluster"
	"rex/internal/env"
	"rex/internal/sim"
)

// TestPromoteDemoteChurnResync drives rapid promote/demote cycles with
// periodic checkpoints disabled — the configuration that used to livelock
// and then crash two replicas with "panic: trace: base cut ... beyond
// available events" in Replayer.Extend. Leadership churn makes every new
// primary issue a rebasing delta while demoted primaries rebuild over the
// growing log; a mid-run secondary crash/restart forces recovery across
// checkpoint-floor compaction. The run must end with every replica live
// (resyncs instead of panics) and counters exactly matching acknowledged
// increments.
func TestPromoteDemoteChurnResync(t *testing.T) {
	e := sim.New(8)
	e.Run(func() {
		opts := cluster.Options{
			Replicas:        3,
			Workers:         4,
			Timers:          1,
			ProposeEvery:    time.Millisecond,
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 120 * time.Millisecond,
			CheckpointEvery: 0,  // periodic checkpoints off: the old livelock setup
			MaxLogInstances: 24, // the log-growth floor is the only checkpoint driver
			Seed:            29,
		}
		c := cluster.New(e, newTKV, opts)
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		if _, err := c.WaitPrimary(5 * time.Second); err != nil {
			t.Fatal(err)
		}

		const clients = 4
		acked := make([]int, clients)
		stop := false
		mu := e.NewMutex()
		g := env.NewGroup(e)
		for cid := 0; cid < clients; cid++ {
			cid := cid
			g.Add(1)
			e.Go(fmt.Sprintf("client-%d", cid), func() {
				defer g.Done()
				cl := c.NewClient(uint64(cid + 1))
				for {
					mu.Lock()
					s := stop
					mu.Unlock()
					if s {
						return
					}
					if _, err := cl.DoTimeout([]byte(fmt.Sprintf("add c%d 1", cid)), 30*time.Second); err == nil {
						mu.Lock()
						acked[cid]++
						mu.Unlock()
					}
				}
			})
		}

		// Promote/demote churn: repeatedly cut the current primary off just
		// long enough for a new leader to win and issue its rebasing delta,
		// then heal so the deposed primary demotes and rebuilds mid-stream.
		for round := 0; round < 8; round++ {
			e.Sleep(250 * time.Millisecond)
			p := c.Primary()
			if p < 0 {
				continue
			}
			c.Net.Isolate(p, true)
			e.Sleep(200 * time.Millisecond)
			c.Net.Isolate(p, false)
			if round == 3 {
				// Mid-churn, bounce a secondary so its recovery crosses
				// whatever the checkpoint floor compacted in the meantime.
				victim := (c.Primary() + 1) % 3
				if victim == p {
					victim = (victim + 1) % 3
				}
				c.Crash(victim)
				e.Sleep(700 * time.Millisecond)
				if err := c.Restart(victim); err != nil {
					t.Fatalf("round %d restart: %v", round, err)
				}
			}
		}
		e.Sleep(time.Second)
		mu.Lock()
		stop = true
		mu.Unlock()
		g.Wait()

		if _, err := c.WaitConverged(60 * time.Second); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			r := c.Replica(i)
			if r == nil {
				t.Fatalf("replica %d not running after churn", i)
			}
			if err := r.FaultError(); err != nil {
				t.Fatalf("replica %d faulted: %v", i, err)
			}
		}
		cl := c.NewClient(999)
		total := 0
		for cid := 0; cid < clients; cid++ {
			resp, err := cl.Do([]byte(fmt.Sprintf("get c%d", cid)))
			if err != nil {
				t.Fatalf("final get: %v", err)
			}
			got := 0
			if len(resp) > 0 {
				got, _ = strconv.Atoi(string(resp))
			}
			mu.Lock()
			want := acked[cid]
			mu.Unlock()
			if got != want {
				t.Errorf("client %d: counter=%d acknowledged=%d", cid, got, want)
			}
			total += got
		}
		if total == 0 {
			t.Fatal("no increments survived the churn — vacuous run")
		}
		var resyncs, floors uint64
		for i := 0; i < 3; i++ {
			m := c.Replica(i).Metrics()
			resyncs += m.Counter("rex_resync_total")
			floors += m.Counter("rex_checkpoint_floor_total")
		}
		if floors == 0 {
			t.Error("checkpoint floor never fired with CheckpointEvery=0")
		}
		t.Logf("churn survived: %d increments, %d resyncs, %d floor checkpoints", total, resyncs, floors)
		c.Stop()
	})
}
