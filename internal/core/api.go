// Package core implements the Rex replica: the execute-agree-follow engine
// that ties the execution runtime (internal/sched, internal/rexsync), the
// consensus engine (internal/paxos), and durable storage together.
//
// A Replica plays one of two roles at a time. As primary it executes client
// requests concurrently while recording a partially ordered trace, proposes
// trace deltas through Paxos, and responds to a client once the trace
// containing the request's completion has been committed (§2.1). As
// secondary it follows committed traces, pausing at checkpoint marks to
// snapshot the application (§3.3), and stands ready to be promoted: on
// election it finishes replaying to the last consistent cut and switches
// the same in-flight handlers from replay to live recording (§4's mode
// change). A deposed primary discards its speculative state by rebuilding
// from the latest checkpoint and the committed trace (full-machine
// rollback, §5.2).
package core

import (
	"hash/fnv"
	"io"
	"math/rand"
	"time"

	"rex/internal/env"
	"rex/internal/rexsync"
	"rex/internal/sched"
)

// StateMachine is the replicated application (the paper's RexRSM, Fig. 6).
// Implementations coordinate internal concurrency exclusively with
// rexsync primitives created against the runtime passed to the Factory,
// and must be deterministic apart from those primitives and Ctx's
// nondeterministic helpers.
type StateMachine interface {
	// Apply executes one request handler and returns the response. Apply
	// is called concurrently from many logical threads.
	Apply(ctx *Ctx, req []byte) []byte
	// WriteCheckpoint serializes the full application state (§3.3).
	WriteCheckpoint(w io.Writer) error
	// ReadCheckpoint restores state serialized by WriteCheckpoint.
	ReadCheckpoint(r io.Reader) error
}

// QueryHandler is optionally implemented by state machines that serve
// read-only queries outside the replication protocol (§6.5, hybrid
// execution §4). Query runs on native-mode threads concurrently with
// replicated handlers and must not modify state (transient lock state
// excepted).
type QueryHandler interface {
	Query(ctx *Ctx, q []byte) []byte
}

// QueryClass classifies a query for the follower-read path.
type QueryClass uint8

const (
	// QueryPrimaryOnly marks a query that must run on the primary: its
	// handler mutates state the replication protocol tracks (a cache
	// touching LRU order on reads, say), so running it on a secondary
	// would fork the replica's state from the replayed trace. This is
	// the default for state machines that do not classify.
	QueryPrimaryOnly QueryClass = iota
	// QueryFollowerOK marks a side-effect-free query any replica can
	// serve against its committed-and-replayed state.
	QueryFollowerOK
)

// QueryClassifier is optionally implemented by state machines whose
// queries may be served by secondaries. Classification is default-deny:
// without this interface every query is QueryPrimaryOnly, and session/
// eventual reads routed to a follower bounce with
// readpath.ErrPrimaryOnly instead of risking divergence.
type QueryClassifier interface {
	ClassifyQuery(q []byte) QueryClass
}

// ConflictClass identifies a set of requests that may conflict with each
// other but provably not with requests in any other non-zero class
// (typically a key hash). ConflictAll (0) is the catch-all: a catch-all
// request may conflict with anything, so dispatch serializes it against
// all classes with a barrier.
type ConflictClass = uint32

// ConflictAll is the catch-all conflict class.
const ConflictAll ConflictClass = 0

// ConflictClassifier is optionally implemented by state machines whose
// requests can be partitioned into conflict classes at admission.
// Classified state machines get deterministic class → thread dispatch
// (class c runs on worker c mod Workers, so same-class requests are
// serialized by program order) and lock-event elision on class-owned
// rexsync resources — smaller deltas, less WAL and network, faster
// replay. The classification contract:
//
//   - two requests whose classes are distinct and non-zero must not touch
//     any common mutable state except under resources that are NOT
//     class-owned (those stay fully traced);
//   - class-owned resources are touched only by their class's handlers
//     and by catch-all handlers (never by background timers);
//   - classification must be a pure function of the request bytes, so
//     every replica derives the same class.
//
// Unclassified state machines keep the shared-queue dispatch and full
// tracing — behavior is unchanged.
type ConflictClassifier interface {
	ClassifyConflict(req []byte) ConflictClass
}

// RangeStateMachine is optionally implemented by state machines whose
// key space can be migrated between replica groups by hash range
// (internal/rebalance). Hashes are shard.HashKey of the application key.
// All three methods run as replicated handlers (or, for ExportRange, as a
// linearizable query) under the rebalance wrapper's exclusive ownership
// lock, so they may touch any slice of state; implementations must
// produce deterministic bytes (sort before encoding) and coordinate with
// their own locks as usual.
type RangeStateMachine interface {
	// ExportRange serializes every key whose hash lies in [lo, hi]
	// (inclusive) into a self-contained blob.
	ExportRange(ctx *Ctx, lo, hi uint64) []byte
	// ImportRange merges a blob produced by ExportRange into local state,
	// overwriting existing keys.
	ImportRange(ctx *Ctx, blob []byte)
	// DropRange deletes every key whose hash lies in [lo, hi] (inclusive).
	DropRange(ctx *Ctx, lo, hi uint64)
}

// Factory constructs the application. It runs identically on every replica
// (and on every rebuild), so resources must be created in a deterministic
// order. Background tasks are registered through host.AddTimer; the number
// of registrations must equal Config.Timers.
type Factory func(rt *sched.Runtime, host *TimerHost) StateMachine

// TimerHost collects the application's background timers (the paper's
// AddTimer, Fig. 6). Each timer gets a dedicated logical thread.
type TimerHost struct {
	specs []timerSpec
}

type timerSpec struct {
	name     string
	interval time.Duration
	cb       func(*Ctx)
}

// TimerSpecView exposes a registered timer to alternative execution
// engines (the SMR baseline runs timers as ordered pseudo-requests).
type TimerSpecView struct {
	Name     string
	Interval time.Duration
	Cb       func(*Ctx)
}

// Specs returns the registered timers.
func (h *TimerHost) Specs() []TimerSpecView {
	out := make([]TimerSpecView, 0, len(h.specs))
	for _, s := range h.specs {
		out = append(out, TimerSpecView{Name: s.name, Interval: s.interval, Cb: s.cb})
	}
	return out
}

// NewNativeCtxForWorker builds a context bound to the given worker, for
// engines that drive a state machine outside a Replica (native baseline,
// SMR baseline, tests).
func NewNativeCtxForWorker(e env.Env, w *sched.Worker, seed int64) *Ctx {
	return &Ctx{w: w, e: e, rng: rand.New(rand.NewSource(seed ^ 0x3c6ef372))}
}

// AddTimer registers a background task that runs cb about every interval
// on its own logical thread. On secondaries the timer fires when replay
// reaches the recorded firing, not by time.
func (h *TimerHost) AddTimer(name string, interval time.Duration, cb func(*Ctx)) {
	h.specs = append(h.specs, timerSpec{name: name, interval: interval, cb: cb})
}

// Ctx is a request handler's execution context, bound to one logical
// thread. All synchronization and all nondeterminism must flow through it
// (or through rexsync primitives, which take it via Worker()).
type Ctx struct {
	w   *sched.Worker
	e   env.Env
	rng *rand.Rand
}

// Worker returns the underlying logical thread, which rexsync primitives
// take as their first argument.
func (c *Ctx) Worker() *sched.Worker { return c.w }

// Env returns the execution environment (for Compute/Sleep cost modeling).
func (c *Ctx) Env() env.Env { return c.e }

// Compute consumes d of CPU time; the standard way for applications to
// model request-processing work.
func (c *Ctx) Compute(d time.Duration) { c.e.Compute(d) }

// Now returns the current time as a recorded nondeterministic value: the
// primary reads the clock, secondaries replay the recorded value.
func (c *Ctx) Now() time.Duration {
	const tagNow = 1
	v := rexsync.Value(c.w, tagNow, func() uint64 { return uint64(c.e.Now()) })
	return time.Duration(v)
}

// Rand returns a pseudo-random uint64 as a recorded nondeterministic value.
func (c *Ctx) Rand() uint64 {
	const tagRand = 2
	return rexsync.Value(c.w, tagRand, func() uint64 { return c.rng.Uint64() })
}

// Native runs fn outside the agree-follow scope (the paper's NATIVE_EXEC,
// §5.1): primitives used inside fn are not recorded or replayed.
func (c *Ctx) Native(fn func()) { c.w.Native(fn) }

// hashResponse computes the FNV-64a hash used for result checking (§5.1).
func hashResponse(resp []byte) uint64 {
	h := fnv.New64a()
	h.Write(resp)
	return h.Sum64()
}
