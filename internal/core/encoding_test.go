package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"rex/internal/sched"
	"rex/internal/trace"
)

func TestSnapshotBlobRoundTrip(t *testing.T) {
	s := &snapshotBlob{
		MarkID: 77,
		Inst:   123,
		Cut:    trace.Cut{4, 9, 0},
		LiveReqs: []sched.IndexedReq{
			{Idx: 3, Req: trace.Req{Client: 1, Seq: 2, Body: []byte("abc")}},
			{Idx: 9, Req: trace.Req{Client: 4, Seq: 1, Body: nil}},
		},
		Dedup: map[uint64]dedupEntry{
			1: {seq: 2, resp: []byte("ok")},
			4: {seq: 1, resp: nil},
		},
		Versions: []uint64{0, 5, 17},
		App:      []byte("application-state"),
	}
	got, err := decodeSnapshot(s.encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.MarkID != 77 || got.Inst != 123 || !got.Cut.Equal(s.Cut) {
		t.Errorf("header = %+v", got)
	}
	if len(got.LiveReqs) != 2 || got.LiveReqs[0].Idx != 3 || string(got.LiveReqs[0].Req.Body) != "abc" {
		t.Errorf("live reqs = %+v", got.LiveReqs)
	}
	if len(got.Dedup) != 2 || got.Dedup[1].seq != 2 || string(got.Dedup[1].resp) != "ok" {
		t.Errorf("dedup = %+v", got.Dedup)
	}
	if len(got.Versions) != 3 || got.Versions[2] != 17 {
		t.Errorf("versions = %v", got.Versions)
	}
	if string(got.App) != "application-state" {
		t.Errorf("app = %q", got.App)
	}
}

func TestSnapshotBlobDeterministicEncoding(t *testing.T) {
	// Map iteration must not leak into the bytes: two encodes are equal.
	s := &snapshotBlob{
		Dedup: map[uint64]dedupEntry{
			9: {seq: 1}, 3: {seq: 2}, 7: {seq: 3}, 1: {seq: 4}, 5: {seq: 5},
		},
	}
	a := s.encode()
	for i := 0; i < 10; i++ {
		if !bytes.Equal(a, s.encode()) {
			t.Fatal("snapshot encoding not deterministic")
		}
	}
}

func TestSnapshotDecodeRejectsGarbage(t *testing.T) {
	if _, err := decodeSnapshot(nil); err == nil {
		t.Error("decoded empty blob")
	}
	if _, err := decodeSnapshot([]byte{0xee, 1, 2, 3}); err == nil {
		t.Error("decoded wrong version")
	}
	s := &snapshotBlob{MarkID: 1, Cut: trace.Cut{1}, App: []byte("x")}
	b := s.encode()
	for cut := 1; cut < len(b); cut++ {
		if _, err := decodeSnapshot(b[:cut]); err == nil {
			t.Fatalf("decoded truncated blob (%d/%d)", cut, len(b))
		}
	}
}

func TestCtrlMsgRoundTrip(t *testing.T) {
	f := func(kind byte, applied, backlog uint64, blob []byte) bool {
		if kind == 0 {
			kind = 1
		}
		m := &ctrlMsg{Kind: kind, Applied: applied, Backlog: backlog, Blob: blob}
		got, ok := decodeCtrl(m.encode())
		return ok && got.Kind == kind && got.Applied == applied &&
			got.Backlog == backlog && bytes.Equal(got.Blob, blob)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, ok := decodeCtrl(nil); ok {
		t.Error("decoded empty control message")
	}
}

func TestHashResponseStable(t *testing.T) {
	a := hashResponse([]byte("hello"))
	b := hashResponse([]byte("hello"))
	c := hashResponse([]byte("hellp"))
	if a != b {
		t.Error("hash not deterministic")
	}
	if a == c {
		t.Error("hash collision on trivially different inputs")
	}
	if hashResponse(nil) == a {
		t.Error("nil hash equals non-empty hash")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := (&Config{}).withDefaults()
	if cfg.Workers <= 0 || cfg.ProposeEvery <= 0 || cfg.HeartbeatEvery <= 0 ||
		cfg.ElectionTimeout <= 0 || cfg.MaxOutstanding <= 0 ||
		cfg.LagLimitInstances == 0 || cfg.LagLimitEvents == 0 {
		t.Errorf("defaults incomplete: %+v", cfg)
	}
}

func TestRoleString(t *testing.T) {
	if RolePrimary.String() != "primary" || RoleSecondary.String() != "secondary" ||
		RoleFaulted.String() != "faulted" {
		t.Error("role strings wrong")
	}
	if Role(99).String() == "" {
		t.Error("unknown role empty")
	}
}
