package core

import (
	"rex/internal/sched"
	"rex/internal/wire"
)

// Control-plane message kinds (channel 1 of the transport mux).
const (
	ctrlStatus      byte = 1 // secondary → all: replay progress
	ctrlSnapRequest byte = 2 // rebuilding replica → all: need a checkpoint
	ctrlSnapBlob    byte = 3 // checkpoint copy (push after snapshot, or reply)
)

type ctrlMsg struct {
	Kind    byte
	Applied uint64
	Backlog uint64
	Blob    []byte
}

func (m *ctrlMsg) encode() []byte {
	e := wire.NewEncoder(nil)
	e.Byte(m.Kind)
	e.Uvarint(m.Applied)
	e.Uvarint(m.Backlog)
	e.BytesVal(m.Blob)
	return e.Bytes()
}

func decodeCtrl(buf []byte) (*ctrlMsg, bool) {
	d := wire.NewDecoder(buf)
	m := &ctrlMsg{Kind: d.Byte()}
	m.Applied = d.Uvarint()
	m.Backlog = d.Uvarint()
	m.Blob = append([]byte(nil), d.BytesVal()...)
	return m, d.Err() == nil
}

func (r *Replica) broadcastCtrl(m *ctrlMsg) {
	payload := m.encode()
	r.mu.Lock()
	members := r.member.Members()
	r.mu.Unlock()
	for _, i := range members {
		if i != r.cfg.ID {
			r.ctrl.Send(i, payload)
		}
	}
}

// ctrlLoop handles control-plane traffic.
func (r *Replica) ctrlLoop() {
	for {
		payload, from, ok := r.ctrl.Recv()
		if !ok {
			return
		}
		m, valid := decodeCtrl(payload)
		if !valid {
			r.logf("dropping corrupt control message from %d", from)
			continue
		}
		switch m.Kind {
		case ctrlStatus:
			r.mu.Lock()
			r.peers[from] = peerStatus{applied: m.Applied, backlog: m.Backlog, at: r.e.Now()}
			promo := r.promotionForLocked(from, m.Applied, m.Backlog)
			r.cond.Broadcast()
			r.mu.Unlock()
			if promo != nil {
				r.logf("learner %d caught up (applied=%d); proposing promotion", from, m.Applied)
				r.node.Propose(promo)
			}
		case ctrlSnapRequest:
			_, data, ok, err := r.cfg.Snapshots.Load()
			if err == nil && ok {
				r.ctrl.Send(from, (&ctrlMsg{Kind: ctrlSnapBlob, Blob: data}).encode())
			}
		case ctrlSnapBlob:
			r.acceptSnapshotCopy(m.Blob, from)
		}
	}
}

// acceptSnapshotCopy stores a checkpoint pushed by the designated
// snapshotter and garbage-collects the covered trace prefix (§3.3).
func (r *Replica) acceptSnapshotCopy(blob []byte, from int) {
	s, err := decodeSnapshot(blob)
	if err != nil {
		r.logf("corrupt snapshot copy from %d: %v", from, err)
		return
	}
	cur, ok, err := r.loadLocalSnapshot()
	if err == nil && ok && cur.Inst >= s.Inst {
		return // already have an equal or newer checkpoint
	}
	if err := r.cfg.Snapshots.Save(s.MarkID, blob); err != nil {
		r.logf("saving snapshot copy failed: %v", err)
		return
	}
	r.mu.Lock()
	r.lastSnapID = s.MarkID
	r.cond.Broadcast()
	// Garbage-collect the covered prefix of this replica's trace view.
	if r.role == RolePrimary && r.tr != nil {
		clamped := s.Cut.Clone()
		for t := range clamped {
			if t < len(r.lcc) && r.lcc[t] < clamped[t] {
				clamped[t] = r.lcc[t]
			}
		}
		r.tr.Forget(clamped, r.tr.LiveLowWater(clamped))
	}
	rep := (*sched.Replayer)(nil)
	if r.role == RoleSecondary && r.rt != nil {
		rep = r.rt.Replayer()
	}
	r.mu.Unlock()
	if rep != nil {
		rep.ForgetThrough(s.Cut)
	}
	r.node.Compact(s.Inst)
	r.logf("accepted checkpoint %d (instance %d) from replica %d", s.MarkID, s.Inst, from)
}
