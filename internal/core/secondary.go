package core

import (
	"time"

	"rex/internal/sched"
)

// checkpointCoordinator drives checkpoint marks on a secondary: when
// replay reaches a mark's cut, the designated secondary snapshots the
// application and copies the checkpoint to its peers in the background;
// other secondaries pass the mark through (§3.3).
func (r *Replica) checkpointCoordinator(gen int, rt *sched.Runtime, sm StateMachine) {
	for {
		if r.genEnded(gen) {
			return
		}
		if rt.Mode() != sched.ModeReplay {
			return // promoted: the primary initiates marks, it doesn't serve them
		}
		rep := rt.Replayer()
		m, ok := rep.PendingMark()
		if !ok {
			if !r.sleepInterruptible(5 * time.Millisecond) {
				return
			}
			continue
		}
		if !r.designatedSnapshotter(m.ID) {
			rep.CompleteMark(m.ID)
			continue
		}
		if !rep.WaitMarkReached(m) {
			return // aborted (promotion or shutdown)
		}
		r.mu.Lock()
		inst := r.markInst[m.ID]
		r.mu.Unlock()
		buildStart := r.e.Now()
		blob, err := r.buildSnapshot(rt, rep, sm, m, inst)
		r.obs.ckptBuild.Observe(r.e.Now() - buildStart)
		if err != nil {
			r.logf("checkpoint %d failed: %v", m.ID, err)
			rep.CompleteMark(m.ID)
			continue
		}
		if err := r.cfg.Snapshots.Save(m.ID, blob); err != nil {
			r.logf("checkpoint %d save failed: %v", m.ID, err)
			rep.CompleteMark(m.ID)
			continue
		}
		rep.CompleteMark(m.ID)
		r.mu.Lock()
		r.lastSnapID = m.ID
		r.mu.Unlock()
		r.logf("checkpoint %d taken at cut %v (instance %d)", m.ID, m.Cut, inst)
		// Garbage-collect the covered prefix — both the consensus log and
		// the in-memory trace — and copy the checkpoint to the other
		// replicas in the background.
		r.node.Compact(inst)
		rep.ForgetThrough(m.Cut)
		r.broadcastCtrl(&ctrlMsg{Kind: ctrlSnapBlob, Blob: blob})
	}
}

// designatedSnapshotter picks which secondary snapshots a given mark: the
// voter at index (mark id modulo voter count), skipping the (believed)
// leader. Replicas with a stale leader guess — or a briefly divergent
// membership view — merely cause a skipped or duplicated snapshot, never
// incorrectness.
func (r *Replica) designatedSnapshotter(markID uint64) bool {
	r.mu.Lock()
	leader := r.curLeader
	voters := append([]int(nil), r.member.Voters...)
	r.mu.Unlock()
	if len(voters) == 0 {
		return false
	}
	idx := int(markID % uint64(len(voters)))
	if voters[idx] == leader {
		idx = (idx + 1) % len(voters)
	}
	return voters[idx] == r.cfg.ID
}

// statusLoop reports replay progress to the primary (feeding its flow
// control) while this replica is a secondary.
func (r *Replica) statusLoop() {
	for {
		if !r.sleepInterruptible(r.cfg.StatusEvery) {
			return
		}
		r.mu.Lock()
		if r.role != RoleSecondary {
			// Re-evaluate throttling staleness on the primary even without
			// fresh reports.
			r.cond.Broadcast()
			r.mu.Unlock()
			continue
		}
		applied := r.applied
		rt := r.rt
		r.mu.Unlock()
		r.broadcastCtrl(&ctrlMsg{Kind: ctrlStatus, Applied: applied, Backlog: runtimeBacklog(rt)})
	}
}

// runtimeBacklog sums the replay backlog (committed-but-unexecuted
// events across threads) of rt, 0 when rt is not replaying.
func runtimeBacklog(rt *sched.Runtime) uint64 {
	if rt == nil || rt.Mode() != sched.ModeReplay {
		return 0
	}
	rep := rt.Replayer()
	if rep == nil {
		return 0
	}
	var backlog uint64
	limit := rep.Limit()
	executed := rep.Executed()
	for t := range limit {
		if d := limit[t] - executed[t]; d > 0 {
			backlog += uint64(d)
		}
	}
	return backlog
}

// replayBacklog reports this replica's own replay backlog in events;
// the read path sheds weak follower reads past the lag limit.
func (r *Replica) replayBacklog() uint64 {
	r.mu.Lock()
	rt := r.rt
	r.mu.Unlock()
	return runtimeBacklog(rt)
}
