package core_test

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"rex/internal/cluster"
	"rex/internal/core"
	"rex/internal/env"
	"rex/internal/rexsync"
	"rex/internal/sched"
	"rex/internal/sim"
	"rex/internal/wire"
)

// tkv is the integration-test state machine: a sharded map plus a staging
// buffer flushed by a background timer, coordinated entirely with rexsync
// primitives.
type tkv struct {
	shards []*rexsync.Lock
	data   []map[string]string

	metaLock *rexsync.Lock
	staging  []string
	flushed  []string
}

const tkvShards = 4

func newTKV(rt *sched.Runtime, host *core.TimerHost) core.StateMachine {
	s := &tkv{}
	for i := 0; i < tkvShards; i++ {
		s.shards = append(s.shards, rexsync.NewLock(rt, fmt.Sprintf("shard-%d", i)))
		s.data = append(s.data, make(map[string]string))
	}
	s.metaLock = rexsync.NewLock(rt, "meta")
	host.AddTimer("flush", 20*time.Millisecond, s.flush)
	return s
}

func (s *tkv) shard(k string) int {
	h := 0
	for i := 0; i < len(k); i++ {
		h = h*31 + int(k[i])
	}
	if h < 0 {
		h = -h
	}
	return h % tkvShards
}

func (s *tkv) flush(ctx *core.Ctx) {
	w := ctx.Worker()
	s.metaLock.Lock(w)
	if len(s.staging) > 0 {
		s.flushed = append(s.flushed, s.staging...)
		s.staging = nil
	}
	s.metaLock.Unlock(w)
}

func (s *tkv) Apply(ctx *core.Ctx, req []byte) []byte {
	w := ctx.Worker()
	parts := strings.SplitN(string(req), " ", 3)
	switch parts[0] {
	case "put":
		k, v := parts[1], parts[2]
		sh := s.shard(k)
		s.shards[sh].Lock(w)
		s.data[sh][k] = v
		s.shards[sh].Unlock(w)
		return []byte("ok")
	case "get":
		k := parts[1]
		sh := s.shard(k)
		s.shards[sh].Lock(w)
		v := s.data[sh][k]
		s.shards[sh].Unlock(w)
		return []byte(v)
	case "add":
		k := parts[1]
		n, _ := strconv.Atoi(parts[2])
		sh := s.shard(k)
		s.shards[sh].Lock(w)
		cur, _ := strconv.Atoi(s.data[sh][k])
		cur += n
		s.data[sh][k] = strconv.Itoa(cur)
		out := cur
		s.shards[sh].Unlock(w)
		return []byte(strconv.Itoa(out))
	case "stage":
		s.metaLock.Lock(w)
		s.staging = append(s.staging, parts[1])
		s.metaLock.Unlock(w)
		return []byte("staged")
	case "work":
		// Compute-heavy request to exercise parallelism.
		ctx.Compute(500 * time.Microsecond)
		k := parts[1]
		sh := s.shard(k)
		s.shards[sh].Lock(w)
		s.data[sh][k] = "worked"
		s.shards[sh].Unlock(w)
		return []byte("done")
	}
	return []byte("bad request")
}

func (s *tkv) Query(ctx *core.Ctx, q []byte) []byte {
	w := ctx.Worker()
	parts := strings.SplitN(string(q), " ", 2)
	if parts[0] != "get" || len(parts) != 2 {
		return []byte("bad query")
	}
	k := parts[1]
	sh := s.shard(k)
	s.shards[sh].Lock(w)
	v := s.data[sh][k]
	s.shards[sh].Unlock(w)
	return []byte(v)
}

// ClassifyQuery marks gets as safe for secondaries; everything else
// stays primary-only.
func (s *tkv) ClassifyQuery(q []byte) core.QueryClass {
	if strings.HasPrefix(string(q), "get ") {
		return core.QueryFollowerOK
	}
	return core.QueryPrimaryOnly
}

func (s *tkv) WriteCheckpoint(w io.Writer) error {
	e := wire.NewEncoder(nil)
	for _, m := range s.data {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		e.Uvarint(uint64(len(keys)))
		for _, k := range keys {
			e.String(k)
			e.String(m[k])
		}
	}
	e.Uvarint(uint64(len(s.staging)))
	for _, v := range s.staging {
		e.String(v)
	}
	e.Uvarint(uint64(len(s.flushed)))
	for _, v := range s.flushed {
		e.String(v)
	}
	_, err := w.Write(e.Bytes())
	return err
}

func (s *tkv) ReadCheckpoint(r io.Reader) error {
	buf, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	d := wire.NewDecoder(buf)
	for i := range s.data {
		n := d.Uvarint()
		s.data[i] = make(map[string]string)
		for j := uint64(0); j < n; j++ {
			k := d.String()
			s.data[i][k] = d.String()
		}
	}
	s.staging = nil
	for j, n := uint64(0), d.Uvarint(); j < n; j++ {
		s.staging = append(s.staging, d.String())
	}
	s.flushed = nil
	for j, n := uint64(0), d.Uvarint(); j < n; j++ {
		s.flushed = append(s.flushed, d.String())
	}
	return d.Err()
}

// stateOf serializes a replica's application state for comparison.
func stateOf(t *testing.T, r *core.Replica) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.StateMachineForTest().WriteCheckpoint(&buf); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	return buf.String()
}

// waitConverged waits until every live replica reports the same stable
// application state.
func waitConverged(t *testing.T, e env.Env, c *cluster.Cluster, timeout time.Duration) string {
	t.Helper()
	deadline := e.Now() + timeout
	var last string
	stable := 0
	for e.Now() < deadline {
		states := make(map[string]bool)
		all := true
		var s string
		for _, r := range c.Replicas {
			if r == nil {
				continue
			}
			if r.Role() == core.RoleFaulted {
				t.Fatalf("replica faulted: %v", r.FaultError())
			}
			s = stateOf(t, r)
			states[s] = true
		}
		if len(states) == 1 && all {
			if s == last {
				stable++
				if stable >= 3 {
					return s
				}
			} else {
				stable = 0
				last = s
			}
		} else {
			stable = 0
			last = ""
		}
		e.Sleep(20 * time.Millisecond)
	}
	for i, r := range c.Replicas {
		if r != nil {
			t.Logf("replica %d (%v): stats %+v", i, r.Role(), r.Stats())
		}
	}
	t.Fatal("cluster did not converge in time")
	return ""
}

func defaultOpts() cluster.Options {
	return cluster.Options{
		Replicas:        3,
		Workers:         4,
		Timers:          1,
		ReadWorkers:     2,
		ProposeEvery:    2 * time.Millisecond,
		HeartbeatEvery:  20 * time.Millisecond,
		ElectionTimeout: 100 * time.Millisecond,
		StatusEvery:     20 * time.Millisecond,
		Seed:            11,
	}
}

func TestClusterBasicReplication(t *testing.T) {
	e := sim.New(8)
	e.Run(func() {
		c := cluster.New(e, newTKV, defaultOpts())
		if err := c.Start(); err != nil {
			t.Fatalf("start: %v", err)
		}
		if _, err := c.WaitPrimary(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		g := env.NewGroup(e)
		for cid := 0; cid < 4; cid++ {
			cid := cid
			g.Add(1)
			e.Go("client", func() {
				defer g.Done()
				cl := c.NewClient(uint64(cid + 1))
				for i := 0; i < 25; i++ {
					key := fmt.Sprintf("k%d-%d", cid, i)
					resp, err := cl.Do([]byte("put " + key + " v" + strconv.Itoa(i)))
					if err != nil {
						t.Errorf("put: %v", err)
						return
					}
					if string(resp) != "ok" {
						t.Errorf("put resp = %q", resp)
					}
					if i%5 == 0 {
						resp, err = cl.Do([]byte("get " + key))
						if err != nil || string(resp) != "v"+strconv.Itoa(i) {
							t.Errorf("get = %q, %v", resp, err)
						}
					}
				}
			})
		}
		g.Wait()
		state := waitConverged(t, e, c, 10*time.Second)
		if len(state) == 0 {
			t.Error("converged on empty state")
		}
		c.Stop()
	})
}

func TestClusterCountersAreConsistent(t *testing.T) {
	e := sim.New(8)
	e.Run(func() {
		c := cluster.New(e, newTKV, defaultOpts())
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		if _, err := c.WaitPrimary(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		// Concurrent increments on shared counters: the final values must
		// reflect every increment exactly once.
		const clients, incs = 6, 20
		g := env.NewGroup(e)
		for cid := 0; cid < clients; cid++ {
			cid := cid
			g.Add(1)
			e.Go("client", func() {
				defer g.Done()
				cl := c.NewClient(uint64(100 + cid))
				for i := 0; i < incs; i++ {
					if _, err := cl.Do([]byte("add counter 1")); err != nil {
						t.Errorf("add: %v", err)
						return
					}
				}
			})
		}
		g.Wait()
		cl := c.NewClient(999)
		resp, err := cl.Do([]byte("get counter"))
		if err != nil {
			t.Fatal(err)
		}
		if string(resp) != strconv.Itoa(clients*incs) {
			t.Errorf("counter = %q, want %d", resp, clients*incs)
		}
		waitConverged(t, e, c, 10*time.Second)
		c.Stop()
	})
}

func TestQueryOnPrimaryAndSecondary(t *testing.T) {
	e := sim.New(8)
	e.Run(func() {
		c := cluster.New(e, newTKV, defaultOpts())
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		p, err := c.WaitPrimary(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		cl := c.NewClient(1)
		if _, err := cl.Do([]byte("put q hello")); err != nil {
			t.Fatal(err)
		}
		// Query on the primary sees the write immediately (speculative
		// state, already committed here since Do returned).
		resp, err := cl.Query(p, []byte("get q"))
		if err != nil || string(resp) != "hello" {
			t.Errorf("primary query = %q, %v", resp, err)
		}
		// Queries on secondaries see it once replay catches up.
		deadline := e.Now() + 5*time.Second
		for i := range c.Replicas {
			if i == p {
				continue
			}
			for {
				resp, err := cl.Query(i, []byte("get q"))
				if err == nil && string(resp) == "hello" {
					break
				}
				if e.Now() > deadline {
					t.Fatalf("secondary %d never saw the write: %q, %v", i, resp, err)
				}
				e.Sleep(5 * time.Millisecond)
			}
		}
		c.Stop()
	})
}

func TestFailoverPreservesStateAndAvailability(t *testing.T) {
	e := sim.New(8)
	e.Run(func() {
		c := cluster.New(e, newTKV, defaultOpts())
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		p, err := c.WaitPrimary(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		cl := c.NewClient(1)
		for i := 0; i < 10; i++ {
			if _, err := cl.Do([]byte(fmt.Sprintf("put pre%d x%d", i, i))); err != nil {
				t.Fatal(err)
			}
		}
		c.Crash(p)
		// The cluster must elect a new primary and keep serving.
		for i := 0; i < 10; i++ {
			if _, err := cl.Do([]byte(fmt.Sprintf("put post%d y%d", i, i))); err != nil {
				t.Fatalf("post-failover put %d: %v", i, err)
			}
		}
		// Old state must survive.
		resp, err := cl.Do([]byte("get pre7"))
		if err != nil || string(resp) != "x7" {
			t.Errorf("pre-failover data lost: %q, %v", resp, err)
		}
		// Restart the crashed replica; it must catch up and converge.
		if err := c.Restart(p); err != nil {
			t.Fatal(err)
		}
		waitConverged(t, e, c, 20*time.Second)
		c.Stop()
	})
}

func TestFailoverUnderLoad(t *testing.T) {
	e := sim.New(8)
	e.Run(func() {
		c := cluster.New(e, newTKV, defaultOpts())
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		p, err := c.WaitPrimary(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		stop := false
		g := env.NewGroup(e)
		errs := 0
		for cid := 0; cid < 4; cid++ {
			cid := cid
			g.Add(1)
			e.Go("client", func() {
				defer g.Done()
				cl := c.NewClient(uint64(cid + 1))
				for i := 0; !stop; i++ {
					if _, err := cl.Do([]byte(fmt.Sprintf("add c%d 1", cid))); err != nil {
						errs++
						return
					}
				}
			})
		}
		e.Sleep(300 * time.Millisecond)
		c.Crash(p) // kill the primary mid-load
		e.Sleep(2 * time.Second)
		stop = true
		g.Wait()
		if errs > 0 {
			t.Errorf("%d clients gave up during failover", errs)
		}
		if err := c.Restart(p); err != nil {
			t.Fatal(err)
		}
		waitConverged(t, e, c, 20*time.Second)
		c.Stop()
	})
}

func TestDedupAcrossFailover(t *testing.T) {
	e := sim.New(8)
	e.Run(func() {
		c := cluster.New(e, newTKV, defaultOpts())
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		p, err := c.WaitPrimary(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		// Submit directly with an explicit sequence number.
		resp, err := c.Replicas[p].Submit(42, 1, []byte("add dedup 5"))
		if err != nil {
			t.Fatal(err)
		}
		if string(resp) != "5" {
			t.Fatalf("first = %q", resp)
		}
		// Duplicate on the same primary: cached response, no re-execution.
		resp, err = c.Replicas[p].Submit(42, 1, []byte("add dedup 5"))
		if err != nil || string(resp) != "5" {
			t.Errorf("duplicate = %q, %v (want cached \"5\")", resp, err)
		}
		// Fail over, then retry the same request at the new primary: the
		// dedup table is part of replicated state.
		c.Crash(p)
		deadline := e.Now() + 10*time.Second
		for {
			np := c.Primary()
			if np >= 0 && np != p {
				resp, err = c.Replicas[np].Submit(42, 1, []byte("add dedup 5"))
				if err == nil {
					if string(resp) != "5" {
						t.Errorf("post-failover duplicate executed again: %q", resp)
					}
					break
				}
			}
			if e.Now() > deadline {
				t.Fatal("no new primary in time")
			}
			e.Sleep(10 * time.Millisecond)
		}
		c.Stop()
	})
}

func TestCheckpointCompactionAndFreshJoin(t *testing.T) {
	e := sim.New(8)
	e.Run(func() {
		opts := defaultOpts()
		opts.CheckpointEvery = 250 * time.Millisecond
		c := cluster.New(e, newTKV, opts)
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		if _, err := c.WaitPrimary(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		cl := c.NewClient(1)
		for i := 0; i < 40; i++ {
			if _, err := cl.Do([]byte(fmt.Sprintf("put ck%d v%d", i, i))); err != nil {
				t.Fatal(err)
			}
			if i%10 == 0 {
				e.Sleep(100 * time.Millisecond)
			}
		}
		// Let at least one full checkpoint cycle complete.
		e.Sleep(time.Second)
		snaps := 0
		for _, s := range c.Snaps {
			if _, _, ok, _ := s.Load(); ok {
				snaps++
			}
		}
		if snaps == 0 {
			t.Fatal("no snapshots taken despite CheckpointEvery")
		}
		// Replace a secondary with a fresh machine: it must obtain a
		// checkpoint transfer (the log prefix was compacted).
		p := c.Primary()
		victim := (p + 1) % 3
		c.Crash(victim)
		for i := 0; i < 10; i++ {
			if _, err := cl.Do([]byte(fmt.Sprintf("put after%d w%d", i, i))); err != nil {
				t.Fatal(err)
			}
		}
		e.Sleep(500 * time.Millisecond) // another checkpoint lands
		if err := c.RestartFresh(victim); err != nil {
			t.Fatal(err)
		}
		waitConverged(t, e, c, 30*time.Second)
		c.Stop()
	})
}

func TestTimerBackgroundTaskReplicates(t *testing.T) {
	e := sim.New(8)
	e.Run(func() {
		c := cluster.New(e, newTKV, defaultOpts())
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		if _, err := c.WaitPrimary(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		cl := c.NewClient(1)
		for i := 0; i < 10; i++ {
			if _, err := cl.Do([]byte(fmt.Sprintf("stage item%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		// The background flush timer must move staged items to flushed on
		// every replica identically.
		e.Sleep(200 * time.Millisecond)
		state := waitConverged(t, e, c, 10*time.Second)
		if !strings.Contains(state, "item9") {
			t.Error("staged items never flushed by the background timer")
		}
		c.Stop()
	})
}

func TestClusterDeterminism(t *testing.T) {
	run := func() string {
		var state string
		e := sim.New(8)
		e.Run(func() {
			c := cluster.New(e, newTKV, defaultOpts())
			if err := c.Start(); err != nil {
				t.Fatal(err)
			}
			if _, err := c.WaitPrimary(5 * time.Second); err != nil {
				t.Fatal(err)
			}
			g := env.NewGroup(e)
			for cid := 0; cid < 3; cid++ {
				cid := cid
				g.Add(1)
				e.Go("client", func() {
					defer g.Done()
					cl := c.NewClient(uint64(cid + 1))
					for i := 0; i < 15; i++ {
						cl.Do([]byte(fmt.Sprintf("add x%d 2", cid)))
					}
				})
			}
			g.Wait()
			state = waitConverged(t, e, c, 10*time.Second)
			c.Stop()
		})
		return state
	}
	if run() != run() {
		t.Error("two identically seeded cluster runs diverged")
	}
}

func TestComputeHeavyRequestsRunConcurrently(t *testing.T) {
	// The same compute-heavy workload must finish substantially faster
	// with 4 worker threads than with 1: Rex preserves handler
	// parallelism on the primary (§2.2).
	run := func(workers int) time.Duration {
		var elapsed time.Duration
		e := sim.New(8)
		e.Run(func() {
			opts := defaultOpts()
			opts.Workers = workers
			c := cluster.New(e, newTKV, opts)
			if err := c.Start(); err != nil {
				t.Fatal(err)
			}
			if _, err := c.WaitPrimary(5 * time.Second); err != nil {
				t.Fatal(err)
			}
			start := e.Now()
			g := env.NewGroup(e)
			for cid := 0; cid < 8; cid++ {
				cid := cid
				g.Add(1)
				e.Go("client", func() {
					defer g.Done()
					cl := c.NewClient(uint64(cid + 1))
					for i := 0; i < 10; i++ {
						if _, err := cl.Do([]byte(fmt.Sprintf("work w%d-%d", cid, i))); err != nil {
							t.Errorf("work: %v", err)
							return
						}
					}
				})
			}
			g.Wait()
			elapsed = e.Now() - start
			waitConverged(t, e, c, 10*time.Second)
			c.Stop()
		})
		return elapsed
	}
	serial := run(1)
	parallel := run(4)
	if parallel >= serial {
		t.Errorf("4 workers (%v) not faster than 1 worker (%v)", parallel, serial)
	}
	// 80 requests x 500µs = 40ms of handler time; commit latency pipelines
	// with handler execution, so require a conservative overlap margin.
	if serial-parallel < 10*time.Millisecond {
		t.Errorf("parallel speedup only %v (serial %v, parallel %v)", serial-parallel, serial, parallel)
	}
}

func TestTraceGarbageCollection(t *testing.T) {
	// With periodic checkpoints, the in-memory trace must stay bounded:
	// the prefix covered by each checkpoint is forgotten (§3.3 GC applied
	// to the trace, not just the consensus log).
	e := sim.New(8)
	e.Run(func() {
		opts := defaultOpts()
		opts.CheckpointEvery = 200 * time.Millisecond
		c := cluster.New(e, newTKV, opts)
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		if _, err := c.WaitPrimary(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		cl := c.NewClient(1)
		var retainedMid int
		for round := 0; round < 6; round++ {
			for i := 0; i < 40; i++ {
				if _, err := cl.Do([]byte(fmt.Sprintf("put gc%d-%d v", round, i))); err != nil {
					t.Fatal(err)
				}
			}
			e.Sleep(300 * time.Millisecond) // let a checkpoint + GC land
			if round == 2 {
				_, retainedMid = maxRetained(c)
			}
		}
		evEnd, reqEnd := maxRetained(c)
		// 240 requests were executed; with GC the retained request table
		// must be far below that, and events bounded similarly.
		if reqEnd > 150 {
			t.Errorf("retained %d requests after GC, want a bounded tail (ran 240)", reqEnd)
		}
		if retainedMid > 0 && reqEnd > 4*retainedMid+100 {
			t.Errorf("retention grows without bound: mid=%d end=%d", retainedMid, reqEnd)
		}
		if evEnd == 0 {
			t.Error("vacuous: no events retained at all")
		}
		if _, err := c.WaitConverged(15 * time.Second); err != nil {
			t.Fatal(err)
		}
		c.Stop()
	})
}

func maxRetained(c *cluster.Cluster) (events, reqs int) {
	for _, r := range c.Replicas {
		if r == nil {
			continue
		}
		ev, rq := r.TraceRetainedForTest()
		if ev > events {
			events = ev
		}
		if rq > reqs {
			reqs = rq
		}
	}
	return
}
