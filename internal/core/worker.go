package core

import (
	"fmt"
	"math/rand"
	"time"

	"rex/internal/env"
	"rex/internal/rexsync"
	"rex/internal/sched"
	"rex/internal/trace"
)

// spawnExecution starts the logical-thread tasks for the current runtime
// incarnation: request workers and timer threads. Called under r.mu.
//
// These tasks are deliberately not joined by Stop: a demoted primary
// abandons its speculative incarnation (the paper's process-level
// rollback, §5.2), and a worker of an abandoned incarnation may be parked
// on an abandoned application's condition variable until the environment
// tears it down.
func (r *Replica) spawnExecutionLocked() {
	gen := r.gen
	rt := r.rt
	sm := r.sm
	for i := 0; i < r.cfg.Workers; i++ {
		i := i
		r.e.Go(fmt.Sprintf("rex-%d-worker-%d-g%d", r.cfg.ID, i, gen), func() {
			r.workerLoop(gen, rt, sm, i)
		})
	}
	for j, spec := range r.timers {
		j, spec := j, spec
		ti := r.cfg.Workers + j
		r.e.Go(fmt.Sprintf("rex-%d-timer-%s-g%d", r.cfg.ID, spec.name, gen), func() {
			r.timerLoop(gen, rt, sm, ti, uint32(j), spec)
		})
	}
	r.e.Go(fmt.Sprintf("rex-%d-ckpt-coord-g%d", r.cfg.ID, gen), func() {
		r.checkpointCoordinator(gen, rt, sm)
	})
}

// recoverWorker converts panics from the record/replay machinery into
// clean exits or replica faults.
func (r *Replica) recoverWorker() {
	switch v := recover().(type) {
	case nil:
	case rexsync.Stopped:
		// Clean shutdown of this incarnation.
	case *sched.DivergenceError:
		r.fault(v)
	default:
		panic(v)
	}
}

// workerLoop runs one request-handler thread across mode changes: it
// replays as long as the runtime is in replay mode, and records (pulling
// work from the primary's queue) in record mode.
func (r *Replica) workerLoop(gen int, rt *sched.Runtime, sm StateMachine, ti int) {
	defer r.recoverWorker()
	w := rt.Worker(ti)
	ctx := &Ctx{w: w, e: r.e, rng: rand.New(rand.NewSource(r.cfg.Seed ^ int64(ti)<<32 ^ 0x5bf03635))}
	for {
		if r.genEnded(gen) {
			return
		}
		switch rt.Mode() {
		case sched.ModeRecord:
			if !r.recordStep(gen, rt, sm, ctx) {
				return
			}
		case sched.ModeReplay:
			if !r.replayStep(gen, rt, sm, ctx) {
				return
			}
		default:
			return
		}
	}
}

func (r *Replica) genEnded(gen int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen != gen || r.stopped || r.role == RoleFaulted || r.role == RoleRemoved
}

// recordStep executes one request in record mode (primary, execute stage).
func (r *Replica) recordStep(gen int, rt *sched.Runtime, sm StateMachine, ctx *Ctx) bool {
	work, ok := r.nextWork(gen, int(ctx.w.ID()))
	if !ok {
		// Demoted, stopped, or a new generation: if the runtime merely
		// left record mode this incarnation is done anyway.
		return false
	}
	w := ctx.w
	// Dispatch-computed causal edges (catch-all barriers and the first
	// classified request after one) ride on the req-begin event.
	var in []trace.EventID
	for _, src := range work.in {
		if !w.PruneEdge(src) {
			in = append(in, src)
		}
	}
	w.Record(trace.Event{Kind: trace.KindReqBegin, Res: uint32(work.idx)}, in)
	w.SetClass(work.class)
	resp := sm.Apply(ctx, work.body)
	w.SetClass(0)
	end := w.Record(trace.Event{Kind: trace.KindReqEnd, Res: uint32(work.idx), Arg: hashResponse(resp)}, nil)
	r.completeLocal(gen, work, resp, end)
	return true
}

// replayStep follows one request (or detects a mode change) on a
// secondary. Returns false when this worker task should exit.
func (r *Replica) replayStep(gen int, rt *sched.Runtime, sm StateMachine, ctx *Ctx) bool {
	rep := rt.Replayer()
	w := ctx.w
	ev, id, ok := rep.Next(w.ID())
	if !ok {
		// Aborted: promotion switches us to record mode; otherwise exit.
		return rt.Mode() == sched.ModeRecord && !r.genEnded(gen)
	}
	if ev.Kind != trace.KindReqBegin {
		r.fault(&sched.DivergenceError{
			Thread: w.ID(), Clock: w.Clock() + 1, Expected: ev,
			GotKind: trace.KindReqBegin, Resource: "request-dispatch",
			Detail: "worker thread expected a request begin",
		})
		return false
	}
	// Dispatch edges (catch-all barriers, first-after-barrier requests) are
	// recorded on the req-begin; honor them before executing the handler.
	if in := rep.In(id); len(in) > 0 && !rep.WaitSources(in) {
		return rt.Mode() == sched.ModeRecord && !r.genEnded(gen)
	}
	idx := uint64(ev.Res)
	req, found := rep.ReqBody(idx)
	if !found {
		r.fault(fmt.Errorf("rex: replay references unknown request %d", idx))
		return false
	}
	rep.Commit(w.ID())
	w.SetClass(req.Class)
	resp := sm.Apply(ctx, req.Body)
	w.SetClass(0)

	if rt.Mode() == sched.ModeRecord {
		// Promoted mid-request (§4 mode change): the remainder of the
		// handler already recorded live; finish by recording the req-end.
		end := w.Record(trace.Event{Kind: trace.KindReqEnd, Res: uint32(idx), Arg: hashResponse(resp)}, nil)
		r.finishCarried(gen, req, resp, end)
		return true
	}

	ev2, _, ok := rep.Next(w.ID())
	if !ok {
		if rt.Mode() == sched.ModeRecord {
			// Promoted between the handler's last event and its req-end.
			end := w.Record(trace.Event{Kind: trace.KindReqEnd, Res: uint32(idx), Arg: hashResponse(resp)}, nil)
			r.finishCarried(gen, req, resp, end)
			return true
		}
		return false
	}
	if ev2.Kind != trace.KindReqEnd || uint64(ev2.Res) != idx {
		r.fault(&sched.DivergenceError{
			Thread: w.ID(), Clock: w.Clock(), Expected: ev2,
			GotKind: trace.KindReqEnd, GotRes: uint32(idx), Resource: "request-completion",
			Detail: "handler produced a different event structure than recorded",
		})
		return false
	}
	if !r.cfg.DisableResultChecks && ev2.Arg != hashResponse(resp) {
		r.fault(&sched.DivergenceError{
			Thread: w.ID(), Clock: w.Clock(), Expected: ev2,
			GotKind: trace.KindReqEnd, GotRes: uint32(idx), GotArg: hashResponse(resp),
			Resource: "result-check",
			Detail:   "response hash mismatch (result checking, §5.1)",
		})
		return false
	}
	// Update the dedup table before committing the req-end so a checkpoint
	// coordinator that observes the cut reached sees the entry.
	r.mu.Lock()
	r.dedup[req.Client] = dedupEntry{seq: req.Seq, resp: resp}
	r.reqsCompleted++
	r.mu.Unlock()
	rep.Commit(w.ID())
	return true
}

// finishCarried completes a handler that began under replay and finished
// recording live after a promotion: the dedup/stat updates the two
// promotion paths in replayStep share, plus the conflict-class dispatch
// bookkeeping such requests otherwise escape (promote seeded the in-flight
// counter with them, and a queued catch-all barrier drains on it).
func (r *Replica) finishCarried(gen int, req trace.Req, resp []byte, end trace.EventID) {
	r.mu.Lock()
	if r.classifier != nil && r.gen == gen && r.role == RolePrimary {
		r.noteClassCompleteLocked(end, req.Class == ConflictAll)
	}
	r.dedup[req.Client] = dedupEntry{seq: req.Seq, resp: resp}
	r.reqsCompleted++
	r.mu.Unlock()
}

// timerLoop runs one background-task thread (the paper's AddTimer). In
// record mode it fires by time; in replay mode it fires when the trace
// says so.
func (r *Replica) timerLoop(gen int, rt *sched.Runtime, sm StateMachine, ti int, timerID uint32, spec timerSpec) {
	defer r.recoverWorker()
	_ = sm
	w := rt.Worker(ti)
	ctx := &Ctx{w: w, e: r.e, rng: rand.New(rand.NewSource(r.cfg.Seed ^ int64(ti)<<32 ^ 0x7ad870c8))}
	var seq uint64
	for {
		if r.genEnded(gen) {
			return
		}
		switch rt.Mode() {
		case sched.ModeRecord:
			if !r.sleepInterruptibleGated(gen, spec.interval) {
				return
			}
			if r.genEnded(gen) {
				return
			}
			r.pauseGate(gen)
			if rt.Mode() != sched.ModeRecord || r.genEnded(gen) {
				continue
			}
			seq++
			w.Record(trace.Event{Kind: trace.KindTimerFire, Res: timerID, Arg: seq}, nil)
			spec.cb(ctx)
		case sched.ModeReplay:
			rep := rt.Replayer()
			ev, _, ok := rep.Next(w.ID())
			if !ok {
				if rt.Mode() == sched.ModeRecord && !r.genEnded(gen) {
					continue // promoted: switch to timed firing
				}
				return
			}
			if ev.Kind != trace.KindTimerFire || ev.Res != timerID {
				r.fault(&sched.DivergenceError{
					Thread: w.ID(), Clock: w.Clock() + 1, Expected: ev,
					GotKind: trace.KindTimerFire, GotRes: timerID, Resource: spec.name,
					Detail: "timer thread expected a timer firing",
				})
				return
			}
			seq = ev.Arg
			rep.Commit(w.ID())
			spec.cb(ctx)
		default:
			return
		}
	}
}

// sleepInterruptibleGated is sleepInterruptible plus checkpoint-pause
// participation, so a sleeping timer thread still reaches the barrier.
func (r *Replica) sleepInterruptibleGated(gen int, d time.Duration) bool {
	const chunk = 5 * time.Millisecond
	deadline := r.e.Now() + d
	for {
		if r.genEnded(gen) {
			return false
		}
		r.pauseGate(gen)
		now := r.e.Now()
		if now >= deadline {
			return true
		}
		step := deadline - now
		if step > chunk {
			step = chunk
		}
		r.e.Sleep(step)
	}
}

// readWorker serves read-only queries on a native-mode thread (hybrid
// execution, §4; query semantics, §6.5).
func (r *Replica) readWorker() {
	r.mu.Lock()
	rt := r.rt
	r.mu.Unlock()
	w := rt.NativeWorker()
	ctx := &Ctx{w: w, e: r.e, rng: rand.New(rand.NewSource(r.cfg.Seed ^ 0x2957cb3a))}
	for {
		v, ok := r.queryQ.Recv()
		if !ok {
			return
		}
		q := v.(queryWork)
		r.mu.Lock()
		sm := r.sm
		curRT := r.rt
		r.mu.Unlock()
		if curRT != rt {
			// The runtime was rebuilt: rebind the native worker.
			rt = curRT
			w = rt.NativeWorker()
			ctx = &Ctx{w: w, e: r.e, rng: ctx.rng}
		}
		qh, ok2 := sm.(QueryHandler)
		if !ok2 {
			q.reply.Send(queryResult{err: fmt.Errorf("rex: state machine does not implement QueryHandler")})
			continue
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					q.reply.Send(queryResult{err: fmt.Errorf("rex: query panicked: %v", p)})
				}
			}()
			q.reply.Send(queryResult{resp: qh.Query(ctx, q.body)})
		}()
	}
}

type queryWork struct {
	body  []byte
	reply env.Chan
}

type queryResult struct {
	resp []byte
	err  error
}

// Query executes a read-only request on this replica outside the
// replication protocol. On the primary it observes speculative
// (pre-consensus) state; on a secondary it observes committed-and-replayed
// state (§6.5's two query semantics). For reads with consistency
// guarantees, use QueryLevel (read.go).
func (r *Replica) Query(q []byte) ([]byte, error) {
	r.mu.Lock()
	if r.stopped || r.role == RoleFaulted {
		r.mu.Unlock()
		return nil, ErrStopped
	}
	r.mu.Unlock()
	return r.runQuery(q)
}

// runQuery hands q to the read pool and waits for its answer.
func (r *Replica) runQuery(q []byte) ([]byte, error) {
	if r.cfg.ReadWorkers <= 0 {
		return nil, fmt.Errorf("rex: no read workers configured")
	}
	reply := r.e.NewChan(1)
	if !r.queryQ.Send(queryWork{body: q, reply: reply}) {
		return nil, ErrStopped
	}
	v, ok := reply.Recv()
	if !ok {
		return nil, ErrStopped
	}
	res := v.(queryResult)
	return res.resp, res.err
}
