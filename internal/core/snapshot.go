package core

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"

	"rex/internal/paxos"
	"rex/internal/reconfig"
	"rex/internal/sched"
	"rex/internal/trace"
	"rex/internal/wire"
)

// snapshotBlob is a checkpoint as stored and transferred: the application
// state plus everything Rex needs to resume replay from the cut — the
// requests still in flight at the cut and the client dedup table (§3.3).
type snapshotBlob struct {
	MarkID   uint64
	Inst     uint64 // instance whose delta carries the mark
	Cut      trace.Cut
	LiveReqs []sched.IndexedReq
	Dedup    map[uint64]dedupEntry
	// Versions are the resource version counters at the cut (§5.1):
	// replicated state, required for version checking to stay sound after
	// a restore.
	Versions []uint64
	App      []byte
	// Configs is the membership schedule governing the snapshot instance
	// and beyond. A learner restored from this checkpoint may have had the
	// chosen instances carrying those memberships compacted away; carrying
	// them here means it can never assemble quorums from a stale world.
	Configs []reconfig.Scheduled
}

// snapshotVersion 2 added Configs; version 3 added per-live-request
// conflict classes. Older blobs still load (missing fields default).
const snapshotVersion = 3

func (s *snapshotBlob) encode() []byte {
	e := wire.NewEncoder(nil)
	e.Byte(snapshotVersion)
	e.BytesVal(reconfig.EncodeSchedule(s.Configs))
	e.Uvarint(s.MarkID)
	e.Uvarint(s.Inst)
	e.Uvarint(uint64(len(s.Cut)))
	for _, c := range s.Cut {
		e.Uvarint(uint64(c))
	}
	e.Uvarint(uint64(len(s.LiveReqs)))
	for _, lr := range s.LiveReqs {
		e.Uvarint(lr.Idx)
		e.Uvarint(lr.Req.Client)
		e.Uvarint(lr.Req.Seq)
		e.Uvarint(uint64(lr.Req.Class))
		e.BytesVal(lr.Req.Body)
	}
	// Encode the dedup table in sorted order for deterministic bytes.
	clients := make([]uint64, 0, len(s.Dedup))
	for c := range s.Dedup {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	e.Uvarint(uint64(len(clients)))
	for _, c := range clients {
		d := s.Dedup[c]
		e.Uvarint(c)
		e.Uvarint(d.seq)
		e.BytesVal(d.resp)
	}
	e.Uvarint(uint64(len(s.Versions)))
	for _, v := range s.Versions {
		e.Uvarint(v)
	}
	e.BytesVal(s.App)
	return e.Bytes()
}

func decodeSnapshot(buf []byte) (*snapshotBlob, error) {
	d := wire.NewDecoder(buf)
	v := d.Byte()
	if d.Err() == nil && (v < 1 || v > snapshotVersion) {
		return nil, fmt.Errorf("rex: unsupported snapshot version %d", v)
	}
	s := &snapshotBlob{Dedup: make(map[uint64]dedupEntry)}
	if v >= 2 {
		configs, err := reconfig.DecodeSchedule(d.BytesVal())
		if err != nil {
			return nil, fmt.Errorf("rex: snapshot config schedule: %w", err)
		}
		s.Configs = configs
	}
	s.MarkID = d.Uvarint()
	s.Inst = d.Uvarint()
	nCut := d.Uvarint()
	if d.Err() != nil || nCut > 1<<16 {
		return nil, wire.ErrCorrupt
	}
	s.Cut = make(trace.Cut, nCut)
	for i := range s.Cut {
		s.Cut[i] = int32(d.Uvarint())
	}
	nLive := d.Uvarint()
	if d.Err() != nil || nLive > 1<<24 {
		return nil, wire.ErrCorrupt
	}
	for i := uint64(0); i < nLive; i++ {
		lr := sched.IndexedReq{Idx: d.Uvarint()}
		lr.Req.Client = d.Uvarint()
		lr.Req.Seq = d.Uvarint()
		if v >= 3 {
			lr.Req.Class = uint32(d.Uvarint())
		}
		lr.Req.Body = append([]byte(nil), d.BytesVal()...)
		s.LiveReqs = append(s.LiveReqs, lr)
	}
	nDedup := d.Uvarint()
	if d.Err() != nil || nDedup > 1<<24 {
		return nil, wire.ErrCorrupt
	}
	for i := uint64(0); i < nDedup; i++ {
		c := d.Uvarint()
		de := dedupEntry{seq: d.Uvarint()}
		de.resp = append([]byte(nil), d.BytesVal()...)
		s.Dedup[c] = de
	}
	nVer := d.Uvarint()
	if d.Err() != nil || nVer > 1<<24 {
		return nil, wire.ErrCorrupt
	}
	for i := uint64(0); i < nVer; i++ {
		s.Versions = append(s.Versions, d.Uvarint())
	}
	s.App = append([]byte(nil), d.BytesVal()...)
	return s, d.Err()
}

// buildSnapshot serializes the application at a checkpoint mark whose cut
// replay has reached (every logical thread paused exactly at the cut).
func (r *Replica) buildSnapshot(rt *sched.Runtime, rep *sched.Replayer, sm StateMachine, m trace.Mark, inst uint64) ([]byte, error) {
	var app bytes.Buffer
	if err := sm.WriteCheckpoint(&app); err != nil {
		return nil, fmt.Errorf("rex: WriteCheckpoint: %w", err)
	}
	r.mu.Lock()
	dedup := make(map[uint64]dedupEntry, len(r.dedup))
	for c, d := range r.dedup {
		dedup[c] = d
	}
	r.mu.Unlock()
	blob := &snapshotBlob{
		MarkID:   m.ID,
		Inst:     inst,
		Cut:      m.Cut,
		LiveReqs: rep.LiveReqs(m.Cut),
		Dedup:    dedup,
		Versions: rt.VersionsSnapshot(),
		App:      app.Bytes(),
		Configs:  r.node.ChosenSnapshot().Configs,
	}
	return blob.encode(), nil
}

// loadLocalSnapshot returns the newest locally stored snapshot, if any.
func (r *Replica) loadLocalSnapshot() (*snapshotBlob, bool, error) {
	_, data, ok, err := r.cfg.Snapshots.Load()
	if err != nil || !ok {
		return nil, false, err
	}
	s, err := decodeSnapshot(data)
	if err != nil {
		return nil, false, err
	}
	return s, true, nil
}

// errSnapshotAhead reports a locally stored checkpoint newer than the
// locally persisted chosen log: a checkpoint transfer landed before the
// learner's entries reached the WAL, and then the process crashed. The
// checkpoint itself is valid — recovery needs the learner running so it
// can re-fetch the missing log suffix from peers (see Start).
var errSnapshotAhead = errors.New("rex: checkpoint outruns the persisted chosen log")

// snapCatchupTimeout bounds how long rebuild waits for the learner to
// re-fetch chosen entries past a checkpoint's mark before giving up.
const snapCatchupTimeout = 30 * time.Second

// rebuild reconstructs the replica's execution state — a fresh runtime and
// application — from the latest checkpoint plus the committed trace, and
// starts it replaying as a secondary. It serves initial startup, crash
// recovery, rejoin, and primary rollback after demotion (§5.2).
func (r *Replica) rebuild() error {
	start := r.e.Now()
	threads := r.cfg.Workers + r.cfg.Timers
	for {
		var st paxos.ChosenState
		if r.nodeStarted {
			st = r.node.ChosenSnapshot()
		} else {
			base, vals := r.node.Chosen()
			st = paxos.ChosenState{Base: base, Vals: vals, Seq: base + uint64(len(vals))}
		}
		snap, haveSnap, err := r.loadLocalSnapshot()
		if err != nil {
			return err
		}
		if haveSnap && snap.Inst < st.Base {
			haveSnap = false // snapshot predates the compaction horizon
		}
		if haveSnap && r.nodeStarted && len(snap.Configs) > 0 {
			// Before any fast-forward: the jump must land with the schedule
			// governing the snapshot instance already in place.
			r.node.AdoptConfigs(snap.Configs)
		}
		if haveSnap && st.Seq <= snap.Inst {
			// The delta carrying the snapshot's mark is not in the chosen
			// log yet (checkpoint transfer racing the learner).
			if r.nodeStarted {
				// Entries below the checkpoint may have been compacted
				// cluster-wide, so the learner cannot fill them in; the
				// checkpoint covers them, so fast-forward past the gap
				// (same move handleGap makes) and wait for the delta
				// carrying the mark to arrive from peers.
				r.node.AdvanceTo(snap.Inst)
				if ferr := r.FaultError(); ferr != nil {
					return fmt.Errorf("rex: crash-stopped while recovering checkpoint at instance %d: %w", snap.Inst, ferr)
				}
				if r.e.Now()-start > snapCatchupTimeout {
					return fmt.Errorf("rex: snapshot at instance %d unreachable: chosen log starts at %d and ends at %d: %w",
						snap.Inst, st.Base, st.Seq, errSnapshotAhead)
				}
				if !r.sleepInterruptible(50 * time.Millisecond) {
					return ErrStopped
				}
				continue // the learner will catch up
			}
			if st.Base == 0 {
				haveSnap = false // cold start: replay from the beginning
			} else {
				return fmt.Errorf("rex: snapshot at instance %d vs chosen log [%d, %d): %w",
					snap.Inst, st.Base, st.Seq, errSnapshotAhead)
			}
		}
		if !haveSnap && st.Base > 0 {
			// The chosen prefix was compacted and we have no (recent
			// enough) checkpoint: fetch one from a peer and retry.
			if err := r.requestSnapshot(st.Base); err != nil {
				return err
			}
			continue
		}

		var startInst uint64
		if haveSnap {
			startInst = snap.Inst
		}
		// Adopt the membership schedule: the checkpoint carries the configs
		// governing its instance (chosen entries holding them may be
		// compacted away everywhere), and the chosen suffix may hold newer
		// committed memberships.
		var latest *reconfig.Membership
		if haveSnap && len(snap.Configs) > 0 {
			m := snap.Configs[len(snap.Configs)-1].M
			latest = &m
		}
		deltas := make([]*trace.Delta, 0, st.Seq-startInst)
		for i := startInst; i < st.Seq; i++ {
			raw := st.Vals[i-st.Base]
			if reconfig.IsMeta(raw) {
				if m, err := reconfig.DecodeValue(raw); err == nil {
					if latest == nil || m.Epoch > latest.Epoch {
						latest = &m
					}
				}
				continue // memberships and padding carry no trace events
			}
			d, err := trace.DecodeDeltaBytes(raw)
			if err != nil {
				return fmt.Errorf("rex: corrupt chosen delta %d: %w", i, err)
			}
			deltas = append(deltas, d)
		}

		var tr *trace.Trace
		var base trace.Cut
		dedup := make(map[uint64]dedupEntry)
		if haveSnap {
			if len(deltas) == 0 {
				return fmt.Errorf("rex: snapshot at instance %d but no chosen delta carries its mark", snap.Inst)
			}
			tr = trace.NewAt(threads, deltas[0].Base, deltas[0].ReqBase)
			for _, lr := range snap.LiveReqs {
				if lr.Idx < deltas[0].ReqBase {
					tr.StashReq(lr.Idx, lr.Req)
				}
			}
			base = snap.Cut
			for c, d := range snap.Dedup {
				dedup[c] = d
			}
		} else {
			tr = trace.New(threads)
		}
		for i, d := range deltas {
			if err := tr.Apply(d); err != nil {
				return fmt.Errorf("rex: replaying chosen delta %d: %w", startInst+uint64(i), err)
			}
		}

		rt := sched.NewRuntime(r.e, threads, sched.ModeNative)
		rt.CheckVersions = !r.cfg.DisableVersionChecks
		rt.DisablePruning = r.cfg.DisablePruning
		rt.TotalOrderTryFail = r.cfg.TotalOrderTryFail
		rt.DisableConflictElision = r.cfg.DisableConflictElision
		rt.UnsafeSkipEdgeWaits = r.cfg.UnsafeReplayNoEdgeWaits
		rt.Obs = r.obs.replay
		host := &TimerHost{}
		sm := r.cfg.Factory(rt, host)
		if len(host.specs) != r.cfg.Timers {
			return fmt.Errorf("rex: factory registered %d timers, config says %d", len(host.specs), r.cfg.Timers)
		}
		if haveSnap {
			if err := sm.ReadCheckpoint(bytes.NewReader(snap.App)); err != nil {
				return fmt.Errorf("rex: ReadCheckpoint: %w", err)
			}
			rt.RestoreVersions(snap.Versions)
		}
		if err := rt.StartReplay(tr, base); err != nil {
			return fmt.Errorf("rex: starting replay from checkpoint cut %v: %w", base, err)
		}

		r.mu.Lock()
		oldRT := r.rt
		r.gen++
		r.rt = rt
		r.sm = sm
		r.classifier, _ = sm.(ConflictClassifier)
		r.resetClassDispatchLocked()
		r.timers = host.specs
		r.tr = tr
		r.lcc = nil
		r.snapBase = base
		if st.Seq > r.applied {
			r.applied = st.Seq
		}
		if startInst > r.lastCkptInst {
			r.lastCkptInst = startInst
		}
		if latest != nil && latest.Epoch > r.member.Epoch {
			r.member = latest.Clone()
		}
		if !r.removed {
			r.role = RoleSecondary
		}
		r.spawnExecutionLocked()
		r.cond.Broadcast()
		r.mu.Unlock()
		if oldRT != nil {
			if oldRep := oldRT.Replayer(); oldRep != nil {
				oldRep.Abort() // release the previous incarnation's workers
			}
		}
		r.logf("rebuilt (gen %d) from %s at applied=%d",
			r.gen, map[bool]string{true: "checkpoint", false: "initial state"}[haveSnap], st.Seq)
		r.obs.rebuildDur.Observe(r.e.Now() - start)
		r.obs.rebuilds.Inc()
		r.obs.rebuildDeltas.Observe(st.Seq - startInst)
		return nil
	}
}

// requestSnapshot asks peers for a checkpoint covering at least instance
// minInst and waits for one to arrive.
func (r *Replica) requestSnapshot(minInst uint64) error {
	deadline := r.e.Now() + 30*time.Second
	for r.e.Now() < deadline {
		r.broadcastCtrl(&ctrlMsg{Kind: ctrlSnapRequest})
		if !r.sleepInterruptible(100 * time.Millisecond) {
			return ErrStopped
		}
		snap, ok, err := r.loadLocalSnapshot()
		if err != nil {
			return err
		}
		if ok && snap.Inst >= minInst {
			return nil
		}
	}
	return fmt.Errorf("rex: no peer supplied a checkpoint covering instance %d", minInst)
}
