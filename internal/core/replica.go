package core

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"time"

	"rex/internal/env"
	"rex/internal/obs"
	"rex/internal/overload"
	"rex/internal/paxos"
	"rex/internal/reconfig"
	"rex/internal/sched"
	"rex/internal/storage"
	"rex/internal/trace"
	"rex/internal/transport"
)

// Role is a replica's current role.
type Role uint8

const (
	// RoleSecondary follows committed traces.
	RoleSecondary Role = iota
	// RolePrimary executes requests and proposes traces.
	RolePrimary
	// RoleFaulted means the replica detected divergence or an internal
	// error and halted (§5.1's validity checks fired).
	RoleFaulted
	// RoleRemoved means a committed membership change took effect that no
	// longer includes this replica; it has gone quiet.
	RoleRemoved
)

func (r Role) String() string {
	switch r {
	case RoleSecondary:
		return "secondary"
	case RolePrimary:
		return "primary"
	case RoleFaulted:
		return "faulted"
	case RoleRemoved:
		return "removed"
	}
	return fmt.Sprintf("role(%d)", uint8(r))
}

// ErrNotPrimary is returned by Submit on a replica that is not the
// primary; Leader hints where to retry (-1 if unknown).
type ErrNotPrimary struct{ Leader int }

func (e ErrNotPrimary) Error() string {
	return fmt.Sprintf("rex: not the primary (leader hint: %d)", e.Leader)
}

// ErrStopped is returned when the replica is shut down or the request was
// abandoned by a demotion; the client should retry elsewhere.
var ErrStopped = errors.New("rex: replica stopped or demoted; retry")

// Config configures a replica.
type Config struct {
	ID  int
	N   int
	Env env.Env

	// Members, when set, is the starting cluster membership and overrides
	// the static 0..N-1 voter set implied by N. A joiner bootstraps with a
	// membership that lists itself as a learner (or not at all — it learns
	// of its own admission from the chosen log).
	Members *reconfig.Membership
	// JoinLagInstances is how close (in committed instances) a learner must
	// be to the primary's applied frontier before the primary proposes its
	// promotion to voter.
	JoinLagInstances uint64
	// OnMembership, if set, is called (from the apply task, no locks held)
	// whenever a membership change commits — the hook deployments use to
	// update transport address books.
	OnMembership func(reconfig.Membership)
	// Endpoint is the replica's network attachment; Paxos and the Rex
	// control plane are multiplexed over it.
	Endpoint  transport.Endpoint
	Log       storage.Log
	Snapshots storage.SnapshotStore
	Factory   Factory

	// Workers is the number of request-handler threads; Timers must equal
	// the number of AddTimer registrations the factory makes; ReadWorkers
	// sizes the native read-only pool (0 disables Query).
	Workers     int
	Timers      int
	ReadWorkers int

	// ProposeEvery is the max-delay cap on trace collection (§3.1:
	// "periodically proposes the up-to-date trace"). The pump is
	// demand-driven — the recorder wakes it on the first event or request
	// after a drain, and commits wake it when pipeline room opens — so
	// this cadence only bounds how stale a proposal can get when every
	// edge-triggered wake-up is deferred by the batching thresholds.
	ProposeEvery time.Duration
	// ProposeBatchEvents is the minimum recorder backlog required to open
	// an ADDITIONAL pipelined consensus instance. The first instance is
	// always proposed immediately on demand (commit latency at low load);
	// later ones wait for this much growth or the ProposeEvery cap, so a
	// hot recorder cannot flood consensus with per-event deltas.
	ProposeBatchEvents int
	// PipelineDepth is how many consensus instances may be open at once:
	// 1 (default) is the paper's one-active-instance design; higher values
	// enable the §3.1 piggyback alternative.
	PipelineDepth   int
	HeartbeatEvery  time.Duration
	ElectionTimeout time.Duration
	// LeaseDuration and ClockSkewBound tune the quorum read lease
	// (paxos.Config): 0 takes the consensus defaults (4×HeartbeatEvery,
	// duration/8), negative LeaseDuration disables leases — linearizable
	// reads then always pay a consensus barrier.
	LeaseDuration  time.Duration
	ClockSkewBound time.Duration
	// ReadWaitTimeout bounds how long a read blocks on admission: a
	// linearizable read waiting for observed writes to commit (or for
	// its barrier), a session read waiting for replay to cover the
	// client's token. 0 defaults to 1s; expired waits return a
	// transient error so the client retries elsewhere.
	ReadWaitTimeout time.Duration
	// Group is the shard group id stamped into read-path session tokens
	// (readpath.Token.Group); 0 for unsharded deployments.
	Group int
	// CheckpointEvery is the primary's checkpoint initiation period; 0
	// disables periodic checkpoints (Checkpoint can still be called).
	// Even at 0, the MaxLogInstancesWithoutCheckpoint floor still forces a
	// checkpoint when the log has grown too far, keeping rebuild cost —
	// and hence recovery time — bounded.
	CheckpointEvery time.Duration
	// MaxLogInstancesWithoutCheckpoint is the log-growth checkpoint floor:
	// when the committed log holds at least this many instances beyond the
	// last checkpoint mark, the primary initiates a checkpoint regardless
	// of CheckpointEvery. 0 selects the default (4096); negative disables
	// the floor (rebuild cost then grows without bound — test-only).
	MaxLogInstancesWithoutCheckpoint int64
	// StatusEvery is the secondary's replay-status report period, feeding
	// the primary's flow control.
	StatusEvery time.Duration

	// MaxOutstanding bounds admitted-but-unanswered requests (speculation
	// depth). LagLimitInstances and LagLimitEvents bound how far a live
	// secondary may fall behind before the primary throttles admission
	// (§6.2's aggressive flow control).
	MaxOutstanding    int
	LagLimitInstances uint64
	LagLimitEvents    uint64

	// Overload protection (DESIGN.md "Overload & admission control").
	// AdmissionTarget is the CoDel sojourn target: when completed
	// requests' admission→release latency stays above it for a full
	// AdmissionInterval, the gate starts shedding arrivals that would
	// otherwise queue. 0 selects the default (25ms); negative disables
	// shedding entirely (the pre-overload-protection behavior:
	// unbounded blocking at the gate).
	AdmissionTarget time.Duration
	// AdmissionInterval is the CoDel control interval (default 100ms).
	AdmissionInterval time.Duration
	// MaxAdmissionWaiters caps submitters blocked at the gate; arrivals
	// beyond it are shed unconditionally so the wait queue (and the
	// memory behind it) stays bounded no matter what the controller
	// thinks. 0 selects 4x MaxOutstanding.
	MaxAdmissionWaiters int

	// DisableVersionChecks and DisableResultChecks turn off the §5.1
	// validity checks (used by ablation benchmarks).
	DisableVersionChecks bool
	DisableResultChecks  bool
	// DisablePruning and TotalOrderTryFail select the §4.2 ablations.
	DisablePruning    bool
	TotalOrderTryFail bool
	// DisableConflictElision keeps lock events on conflict-class-owned
	// resources in the trace even when the executing request's class owns
	// them (classified dispatch is unaffected). Must be set identically on
	// every replica of a group: the elision decision is part of the
	// trace's meaning. Used by the delta-size ablation benchmark.
	DisableConflictElision bool
	// UnsafeReplayNoEdgeWaits injects a deliberate replay bug (events
	// released before their causal predecessors) so the chaos checker can
	// prove it detects divergence. Never set outside tests.
	UnsafeReplayNoEdgeWaits bool

	Seed int64
	Logf func(format string, args ...any)

	// Metrics, if set, is the registry the replica exports its series
	// into (shared with e.g. the transport endpoint). When nil the
	// replica keeps a private registry; Replica.Metrics() works either
	// way.
	Metrics *obs.Registry
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.ReadWorkers < 0 {
		cfg.ReadWorkers = 0
	}
	if cfg.ProposeEvery <= 0 {
		cfg.ProposeEvery = 2 * time.Millisecond
	}
	if cfg.ProposeBatchEvents <= 0 {
		cfg.ProposeBatchEvents = 256
	}
	if cfg.PipelineDepth <= 0 {
		cfg.PipelineDepth = 1
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 20 * time.Millisecond
	}
	if cfg.ElectionTimeout <= 0 {
		cfg.ElectionTimeout = 150 * time.Millisecond
	}
	if cfg.StatusEvery <= 0 {
		cfg.StatusEvery = 25 * time.Millisecond
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 1024
	}
	if cfg.LagLimitInstances == 0 {
		cfg.LagLimitInstances = 64
	}
	if cfg.LagLimitEvents == 0 {
		cfg.LagLimitEvents = 1 << 14
	}
	if cfg.AdmissionTarget == 0 {
		cfg.AdmissionTarget = 25 * time.Millisecond
	}
	if cfg.AdmissionInterval <= 0 {
		cfg.AdmissionInterval = 100 * time.Millisecond
	}
	if cfg.MaxAdmissionWaiters <= 0 {
		cfg.MaxAdmissionWaiters = 4 * cfg.MaxOutstanding
	}
	if cfg.JoinLagInstances == 0 {
		cfg.JoinLagInstances = 16
	}
	if cfg.MaxLogInstancesWithoutCheckpoint == 0 {
		cfg.MaxLogInstancesWithoutCheckpoint = 4096
	}
	if cfg.ReadWaitTimeout <= 0 {
		cfg.ReadWaitTimeout = time.Second
	}
	return cfg
}

func (r *Replica) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(fmt.Sprintf("rex[%d] ", r.cfg.ID)+format, args...)
	}
}

type pendingReq struct {
	client, seq uint64
	resp        []byte
	end         trace.EventID
	done        bool
	at          time.Duration // admission time, for stage latency metrics
	ch          env.Chan      // cap 1; receives []byte or is closed on demotion
}

type dedupEntry struct {
	seq  uint64
	resp []byte
}

type peerStatus struct {
	applied uint64
	backlog uint64
	at      time.Duration
}

type reqWork struct {
	idx  uint64
	body []byte
	// class is the request's conflict class (classified state machines
	// only); in carries the cross-thread causal edges the req-begin event
	// must record, computed at dispatch time (catch-all barriers and the
	// first dispatch after one).
	class uint32
	in    []trace.EventID
}

// Replica is one Rex replica.
type Replica struct {
	cfg         Config
	e           env.Env
	obs         *replicaMetrics
	mux         *transport.Mux
	ctrl        transport.Endpoint
	node        *paxos.Node
	nodeStarted bool

	mu   env.Mutex
	cond env.Cond

	role      Role
	curLeader int
	faultErr  error
	stopped   bool

	// Membership state. member is the latest committed membership this
	// replica has applied (commit-time view; the paxos layer tracks the
	// activation-time view). reconfigInflight serializes changes at the
	// primary; pendingPromote is the learner id the primary will promote
	// once its reported lag is within JoinLagInstances (-1: none);
	// removed latches once a membership excluding this replica activates.
	member           reconfig.Membership
	reconfigInflight bool
	pendingPromote   int
	removed          bool

	gen        int
	gapUntil   uint64 // highest compaction gap already being bridged
	needResync bool   // commits jumped past applied; a rebuild is required
	rt         *sched.Runtime
	sm         StateMachine
	timers     []timerSpec
	tr         *trace.Trace // committed trace (primary bookkeeping)
	lcc        trace.Cut    // last consistent cut of tr (primary)
	applied    uint64       // committed instances applied locally
	snapBase   trace.Cut    // cut the current incarnation restored from

	// Primary state.
	workQ         []reqWork
	pending       map[uint64]*pendingReq
	outstanding   int
	pendingRebase trace.Cut
	dedup         map[uint64]dedupEntry

	// Admission-control state (primary, guarded by mu). ctrl is the
	// CoDel-style controller deciding when a full gate sheds instead of
	// queueing; admWaiters counts submitters blocked at the gate; nil
	// ctrl means shedding is disabled (AdmissionTarget < 0).
	admCtrl    *overload.Controller
	admWaiters int

	// Conflict-class dispatch state (primary, classified state machines
	// only; see ConflictClassifier). classifier is non-nil iff the state
	// machine classifies, in which case admission routes class c to worker
	// thread c mod Workers via classQ and catch-all (class 0) requests to
	// barrierQ. While barrierQ is non-empty classified dispatch halts;
	// once classDispatched drains to zero, worker thread 0 runs the
	// barrier request with in-edges from every other thread's last
	// req-end, and after it completes each thread's next classified
	// dispatch carries an edge from the barrier's req-end (classAfter).
	classifier      ConflictClassifier
	classQ          [][]reqWork
	barrierQ        []reqWork
	classDispatched int
	classLastEnd    []trace.EventID
	classAfter      []trace.EventID

	// Linearizable-read barrier state (read.go). pendingBarriers maps a
	// barrier id to the cap-1 channel its reader waits on; applyMeta
	// signals it when the barrier value commits, failPendingLocked
	// closes it on demotion/stop. nextBarrier never resets, so combined
	// with the replica id a barrier id is unique cluster-wide and a
	// deposed primary can never be woken by another primary's barrier.
	nextBarrier     uint64
	pendingBarriers map[uint64]env.Chan

	// Propose-pump state. proposeWake (cap 1) is the demand edge: the
	// recorder pokes it on new work, applyLoop pokes it when a commit
	// opens pipeline room, and a ticker pokes it every ProposeEvery as
	// the max-delay backstop. proposeInflight/lastProposeAt/proposeTimes
	// are under mu; lastDeltaBytes is owned by the pump task alone.
	proposeWake     env.Chan
	proposeInflight int
	lastProposeAt   time.Duration
	proposeTimes    []time.Duration // FIFO propose stamps, for propose→commit
	lastDeltaBytes  int             // size hint for the next delta encode

	// Checkpointing.
	// Checkpoint pause happens in two phases: request workers pause at
	// request boundaries first, while timer threads keep running so that
	// background tasks (e.g. compaction) can unblock stalled handlers;
	// only then do timer threads pause (§3.3).
	ckPauseWorkers bool
	ckPauseTimers  bool
	ckPausedW      int
	ckPausedT      int
	markBase       uint64
	nextMarkID     uint64
	markInst       map[uint64]uint64
	lastSnapID     uint64
	// lastCkptInst is the highest committed instance known to carry (or
	// follow from) a checkpoint mark; the log-growth floor measures
	// applied - lastCkptInst. Under mu.
	lastCkptInst uint64

	peers map[int]peerStatus

	// Commit intake: OnCommitted runs on the paxos event loop, which also
	// drives heartbeats and elections, so it must never block behind the
	// apply path (a replica mid-rebuild can stall apply for a long time;
	// blocking here was the election-churn half of the checkpoint-disabled
	// livelock). Committed instances land in an unbounded slice queue and
	// applyLoop drains them at its own pace.
	commitMu     env.Mutex
	commitCond   env.Cond
	commitQ      []committedEvt
	commitClosed bool

	queryQ env.Chan
	lifeQ  env.Chan

	group *env.Group // all long-lived tasks, for Stop

	// Stats (under mu unless noted).
	reqsCompleted  uint64
	bytesProposed  uint64
	eventsProposed uint64
	edgesProposed  uint64
	reqsProposed   uint64
	reqBytesProp   uint64 // request payload bytes inside committed deltas
	deltaSizes     []int  // encoded bytes per committed instance
}

type committedEvt struct {
	inst uint64
	val  []byte
}
type leaderEvt struct {
	becameLeader bool
	leader       int
	chosenAt     uint64
}

// gapEvt: a peer compacted the chosen prefix this replica still needs; a
// checkpoint transfer is required before learning can resume.
type gapEvt struct{ minInst uint64 }

// resyncEvt: committed instances jumped past our applied frontier (after a
// checkpoint transfer): rebuild from the checkpoint.
type resyncEvt struct{}

// NewReplica creates a replica. Call Start to bring it up (it begins as a
// secondary and participates in leader election).
func NewReplica(cfg Config) (*Replica, error) {
	cfg = cfg.withDefaults()
	r := &Replica{
		cfg:             cfg,
		e:               cfg.Env,
		curLeader:       -1,
		pendingPromote:  -1,
		pending:         make(map[uint64]*pendingReq),
		pendingBarriers: make(map[uint64]env.Chan),
		dedup:           make(map[uint64]dedupEntry),
		markInst:        make(map[uint64]uint64),
		peers:           make(map[int]peerStatus),
	}
	if cfg.AdmissionTarget > 0 {
		r.admCtrl = overload.NewController(overload.Config{
			Target:   cfg.AdmissionTarget,
			Interval: cfg.AdmissionInterval,
		})
	}
	if cfg.Members != nil {
		r.member = cfg.Members.Clone()
	} else {
		r.member = reconfig.Initial(cfg.N)
	}
	r.obs = newReplicaMetrics(cfg.Metrics)
	r.mu = cfg.Env.NewMutex()
	r.cond = cfg.Env.NewCond(r.mu)
	r.commitMu = cfg.Env.NewMutex()
	r.commitCond = cfg.Env.NewCond(r.commitMu)
	r.lifeQ = cfg.Env.NewChan(0)
	r.queryQ = cfg.Env.NewChan(0)
	r.proposeWake = cfg.Env.NewChan(1)
	r.group = env.NewGroup(cfg.Env)
	r.mux = transport.NewMux(cfg.Env, cfg.Endpoint, 2)
	r.ctrl = r.mux.Channel(1)
	node, err := paxos.NewNode(paxos.Config{
		ID:              cfg.ID,
		N:               cfg.N,
		Members:         cfg.Members,
		Env:             cfg.Env,
		Endpoint:        r.mux.Channel(0),
		Log:             cfg.Log,
		HeartbeatEvery:  cfg.HeartbeatEvery,
		ElectionTimeout: cfg.ElectionTimeout,
		LeaseDuration:   cfg.LeaseDuration,
		ClockSkewBound:  cfg.ClockSkewBound,
		PipelineDepth:   cfg.PipelineDepth,
		Seed:            cfg.Seed,
		Logf:            cfg.Logf,
		Metrics:         r.obs.paxos,
		OnCommitted: func(inst uint64, val []byte) {
			r.enqueueCommit(committedEvt{inst: inst, val: val})
		},
		OnBecomeLeader: func() {
			r.lifeQ.Send(leaderEvt{becameLeader: true, leader: cfg.ID, chosenAt: r.node.ChosenSeq()})
		},
		OnNewLeader: func(l int) {
			r.lifeQ.Send(leaderEvt{leader: l})
		},
		OnSnapshotGap: func(minInst uint64) {
			r.lifeQ.Send(gapEvt{minInst: minInst})
		},
		OnStorageFault: func(err error) {
			r.fault(fmt.Errorf("rex: consensus storage fault: %w", err))
		},
		OnRemoved: func(m reconfig.Membership) {
			// Fires on the consensus event loop once a membership excluding
			// this node activates; quiesce from a fresh task (finishRemoval
			// stops the node, which must not happen from its own loop).
			r.e.Go(fmt.Sprintf("rex-%d-removed", cfg.ID), func() {
				r.finishRemoval(m)
			})
		},
	})
	if err != nil {
		return nil, err
	}
	r.node = node
	return r, nil
}

// Start brings the replica up as a secondary: it rebuilds application
// state from the latest local checkpoint plus the committed trace, then
// joins the cluster.
func (r *Replica) Start() error {
	joinCluster := func() {
		r.nodeStarted = true
		r.node.Start()
		// The control plane must run alongside the learner: catching up
		// across a compaction gap needs checkpoint transfers (ctrlLoop)
		// and gap fast-forwards (lifecycleLoop's handleGap).
		r.spawn("lifecycle", r.lifecycleLoop)
		r.spawn("ctrl", r.ctrlLoop)
	}
	err := r.rebuild()
	if errors.Is(err, errSnapshotAhead) {
		// A checkpoint transfer raced the learner's WAL persistence
		// before the crash: the stored checkpoint is valid but the delta
		// carrying its mark never reached the local log. Join the
		// cluster first so the learner can re-fetch the missing suffix
		// from peers; rebuild then waits (bounded) for it to catch up.
		joinCluster()
		err = r.rebuild()
	}
	if err != nil {
		// Tear down the already-started learner — unless it crash-stopped
		// on its own (its loop is gone; a graceful Stop would hang).
		if r.nodeStarted && r.FaultError() == nil {
			r.Stop()
		}
		return err
	}
	if !r.nodeStarted {
		joinCluster()
	}
	r.spawn("apply", r.applyLoop)
	r.spawn("pump", r.proposePump)
	r.spawn("pump-tick", r.proposeTicker)
	r.spawn("status", r.statusLoop)
	if r.cfg.CheckpointEvery > 0 {
		r.spawn("ckpt-timer", r.checkpointTimer)
	}
	if r.cfg.MaxLogInstancesWithoutCheckpoint > 0 {
		r.spawn("ckpt-floor", r.checkpointFloorLoop)
	}
	for i := 0; i < r.cfg.ReadWorkers; i++ {
		r.spawn(fmt.Sprintf("read-%d", i), r.readWorker)
	}
	return nil
}

func (r *Replica) spawn(name string, fn func()) {
	r.group.Add(1)
	r.e.Go(fmt.Sprintf("rex-%d-%s", r.cfg.ID, name), func() {
		defer r.group.Done()
		fn()
	})
}

// Stop shuts the replica down.
func (r *Replica) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	r.failPendingLocked()
	var rep *sched.Replayer
	if r.rt != nil { // nil when Start never completed a rebuild
		rep = r.rt.Replayer()
	}
	r.cond.Broadcast()
	r.mu.Unlock()
	if rep != nil {
		rep.Abort()
	}
	r.node.Stop()
	r.mux.Close()
	r.closeCommitQ()
	r.lifeQ.Close()
	r.queryQ.Close()
	r.proposeWake.Close()
	r.group.Wait()
}

// Role returns the replica's current role.
func (r *Replica) Role() Role {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.role
}

// Leader returns the replica's best guess of the current leader id.
func (r *Replica) Leader() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.role == RolePrimary {
		return r.cfg.ID
	}
	return r.curLeader
}

// FaultError returns the divergence or internal error that halted the
// replica, if any.
func (r *Replica) FaultError() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.faultErr
}

// fault halts the replica after a divergence (§5.1).
func (r *Replica) fault(err error) {
	r.mu.Lock()
	if r.faultErr == nil && !r.removed {
		r.faultErr = err
		r.role = RoleFaulted
		r.failPendingLocked()
		r.logf("FAULT: %v", err)
	}
	var rep *sched.Replayer
	if r.rt != nil { // nil when faulting during Start's initial rebuild
		rep = r.rt.Replayer()
	}
	r.cond.Broadcast()
	r.mu.Unlock()
	if rep != nil {
		rep.Abort()
	}
}

func (r *Replica) failPendingLocked() {
	for idx, p := range r.pending {
		// Close even completed-but-unreleased requests: their commit never
		// covered them here, so the client must retry at the new primary
		// (dedup makes the retry idempotent).
		p.ch.Close()
		delete(r.pending, idx)
	}
	// Barrier readers lose their leadership proof with the demotion; a
	// closed channel tells them to retry (possibly elsewhere) instead of
	// waiting out the timeout.
	for id, ch := range r.pendingBarriers {
		ch.Close()
		delete(r.pendingBarriers, id)
	}
	r.outstanding = 0
	r.workQ = nil
	r.proposeInflight = 0
	r.proposeTimes = nil
	r.resetClassDispatchLocked()
	r.cond.Broadcast()
}

// resetClassDispatchLocked clears the conflict-class dispatch state
// (promotion, demotion, fault, rebuild). Queued work is dropped along with
// the pending table; the per-thread edge bookkeeping restarts empty because
// event ids from a previous record epoch are meaningless in the next one —
// everything up to the promotion cut is ordered by the trace base instead.
func (r *Replica) resetClassDispatchLocked() {
	if r.classifier == nil {
		return
	}
	n := r.cfg.Workers
	r.classQ = make([][]reqWork, n)
	r.barrierQ = nil
	r.classDispatched = 0
	r.classLastEnd = make([]trace.EventID, n)
	r.classAfter = make([]trace.EventID, n)
}

// inFlightAtPromotionLocked counts requests whose req-begin is inside the
// (already truncated-to) promotion cut but whose req-end is not: handlers
// carried across the replay→record mode change. Checkpoint pauses happen at
// request boundaries, so a garbage-collected trace prefix never hides an
// unmatched req-begin.
func (r *Replica) inFlightAtPromotionLocked() int {
	open := make(map[uint64]bool)
	for t := range r.tr.Threads {
		l := &r.tr.Threads[t]
		for _, ev := range l.Events {
			switch ev.Kind {
			case trace.KindReqBegin:
				open[uint64(ev.Res)] = true
			case trace.KindReqEnd:
				delete(open, uint64(ev.Res))
			}
		}
	}
	return len(open)
}

// enqueueCommit appends a committed instance to the intake queue. It runs
// on the paxos event loop and never blocks.
func (r *Replica) enqueueCommit(evt committedEvt) {
	r.commitMu.Lock()
	if !r.commitClosed {
		r.commitQ = append(r.commitQ, evt)
		r.obs.applyBacklog.Set(int64(len(r.commitQ)))
		r.commitCond.Broadcast()
	}
	r.commitMu.Unlock()
}

// nextCommit blocks until a committed instance is available (ok) or the
// intake is closed (!ok).
func (r *Replica) nextCommit() (committedEvt, bool) {
	r.commitMu.Lock()
	defer r.commitMu.Unlock()
	for len(r.commitQ) == 0 {
		if r.commitClosed {
			return committedEvt{}, false
		}
		r.commitCond.Wait()
	}
	evt := r.commitQ[0]
	r.commitQ[0] = committedEvt{}
	r.commitQ = r.commitQ[1:]
	if len(r.commitQ) == 0 {
		r.commitQ = nil // let the drained backing array go
	}
	r.obs.applyBacklog.Set(int64(len(r.commitQ)))
	return evt, true
}

func (r *Replica) closeCommitQ() {
	r.commitMu.Lock()
	r.commitClosed = true
	r.commitQ = nil
	r.commitCond.Broadcast()
	r.commitMu.Unlock()
}

// noteResyncLocked records that this replica's applied state has
// desynchronized from the committed stream and a rebuild is required.
// Callers must hold r.mu; it reports whether a resyncEvt should be posted
// (false when one is already pending, so a replica mid-rebuild batches the
// committed backlog instead of queueing one event per skipped instance).
func (r *Replica) noteResyncLocked() bool {
	if r.needResync {
		return false
	}
	r.needResync = true
	r.obs.resyncs.Inc()
	r.cond.Broadcast()
	return true
}

// applyLoop consumes committed deltas from Paxos and folds them into the
// replica's view of the committed trace.
func (r *Replica) applyLoop() {
	for {
		evt, ok := r.nextCommit()
		if !ok {
			return
		}
		if reconfig.IsMeta(evt.val) {
			// Membership changes and activation padding share the stream
			// with trace deltas but never touch the application state.
			if !r.applyMeta(evt.inst, evt.val) {
				return
			}
			continue
		}
		d, err := trace.DecodeDeltaBytes(evt.val)
		if err != nil {
			r.fault(fmt.Errorf("rex: corrupt committed delta %d: %w", evt.inst, err))
			return
		}
		r.mu.Lock()
		if evt.inst < r.applied {
			r.mu.Unlock()
			continue // already folded in by a rebuild
		}
		if evt.inst > r.applied {
			// Commits jumped past us: a checkpoint transfer advanced the
			// learner. Rebuild from the checkpoint; it will fold this
			// instance in from the learner's chosen log. The flag lets a
			// promotion already occupying the lifecycle loop service the
			// resync itself instead of waiting on an event queued behind
			// it (see promote). While a resync is already pending, further
			// jumped instances are simply dropped — the rebuild reads them
			// from the chosen log — so a rebuilding replica batches the
			// committed backlog instead of queueing an event per instance.
			post := r.noteResyncLocked()
			r.mu.Unlock()
			if post {
				r.lifeQ.Send(resyncEvt{})
			}
			continue
		}
		r.eventsProposed += uint64(d.EventCount())
		r.edgesProposed += uint64(d.EdgeCount())
		r.bytesProposed += uint64(len(evt.val))
		r.reqsProposed += uint64(len(d.Reqs))
		for _, rq := range d.Reqs {
			r.reqBytesProp += uint64(len(rq.Body))
		}
		r.deltaSizes = append(r.deltaSizes, len(evt.val))
		for _, m := range d.Marks {
			r.markInst[m.ID] = evt.inst
		}
		if len(d.Marks) > 0 && evt.inst > r.lastCkptInst {
			r.lastCkptInst = evt.inst
		}
		var applyErr error
		wakePump := false
		if r.role == RolePrimary {
			// One of our proposals closed: pipeline room opened, so wake
			// the pump (it paces additional instances on backlog/cap).
			if r.proposeInflight > 0 {
				r.proposeInflight--
				if len(r.proposeTimes) > 0 {
					r.obs.proposeCommit.Observe(r.e.Now() - r.proposeTimes[0])
					r.proposeTimes = r.proposeTimes[1:]
				}
				wakePump = true
			}
			applyErr = r.tr.Apply(d)
			if applyErr == nil {
				var lcc trace.Cut
				lcc, applyErr = r.tr.ConsistentCut(r.lcc)
				if applyErr == nil {
					r.lcc = lcc
					r.releaseResponsesLocked()
				}
			}
		} else {
			rep := r.rt.Replayer()
			r.mu.Unlock()
			applyErr = rep.Extend(d)
			r.mu.Lock()
		}
		if applyErr != nil {
			if errors.Is(applyErr, sched.ErrReplayerAborted) {
				// A stale incarnation: the replayer was aborted under us
				// (promotion, rebuild, or a prior desync). Whatever replaces
				// it folds this instance back in from the chosen log.
				r.mu.Unlock()
				continue
			}
			if errors.Is(applyErr, trace.ErrCutBeyondTrace) && r.role == RoleSecondary && !r.stopped {
				// The committed delta's cuts have desynchronized from our
				// local trace (e.g. a rebasing delta across rapid
				// promote/demote cycles). Exactly like the commits-jumped-
				// past-applied case above: degrade to a checkpoint re-sync
				// instead of crashing.
				r.logf("resync: committed delta %d beyond local trace: %v", evt.inst, applyErr)
				post := r.noteResyncLocked()
				r.mu.Unlock()
				if post {
					r.lifeQ.Send(resyncEvt{})
				}
				continue
			}
			removed := r.removed
			r.mu.Unlock()
			if removed {
				return // replayer aborted by removal, not divergence
			}
			r.fault(fmt.Errorf("rex: applying committed delta %d: %w", evt.inst, applyErr))
			return
		}
		r.applied = evt.inst + 1
		r.cond.Broadcast()
		r.mu.Unlock()
		if wakePump {
			r.wakePump()
		}
	}
}

// wakePump pokes the propose pump's demand edge; a full (or closed) wake
// channel means a wake-up is already pending, which is all we need.
func (r *Replica) wakePump() {
	r.proposeWake.TrySend(struct{}{})
}

// lifecycleLoop serializes promotions and demotions.
func (r *Replica) lifecycleLoop() {
	for {
		v, ok := r.lifeQ.Recv()
		if !ok {
			return
		}
		switch evt := v.(type) {
		case leaderEvt:
			if evt.becameLeader {
				r.promote(evt.chosenAt)
			} else {
				r.demote(evt.leader)
			}
		case gapEvt:
			r.handleGap(evt.minInst)
		case resyncEvt:
			r.mu.Lock()
			ok := !r.stopped && r.role == RoleSecondary && r.needResync
			if ok {
				r.needResync = false
			}
			r.mu.Unlock()
			if ok {
				if err := r.rebuild(); err != nil {
					r.fault(fmt.Errorf("rex: resync rebuild failed: %w", err))
				}
			}
		}
	}
}

// handleGap obtains a checkpoint covering the compacted prefix and
// fast-forwards the learner past it; the subsequent commit jump triggers a
// rebuild from that checkpoint.
func (r *Replica) handleGap(minInst uint64) {
	r.mu.Lock()
	skip := r.stopped || r.role != RoleSecondary || r.applied >= minInst || r.gapUntil >= minInst
	r.mu.Unlock()
	if skip {
		return
	}
	if err := r.requestSnapshot(minInst); err != nil {
		r.logf("checkpoint transfer for gap at %d failed: %v", minInst, err)
		return
	}
	snap, ok, err := r.loadLocalSnapshot()
	if err != nil || !ok {
		r.logf("checkpoint transfer for gap at %d: no usable snapshot (%v)", minInst, err)
		return
	}
	r.mu.Lock()
	r.gapUntil = snap.Inst
	r.mu.Unlock()
	r.logf("bridging compaction gap with checkpoint %d (instance %d)", snap.MarkID, snap.Inst)
	if len(snap.Configs) > 0 {
		r.node.AdoptConfigs(snap.Configs)
	}
	r.node.AdvanceTo(snap.Inst)
}

// promote turns this secondary into the primary: wait for every committed
// instance to be applied and replayed, truncate to the last consistent
// cut, switch the runtime to record mode mid-flight (§4 mode change), and
// schedule the rebasing proposal (§3.2).
func (r *Replica) promote(chosenAt uint64) {
	start := r.e.Now()
	r.mu.Lock()
	for r.applied < chosenAt && !r.stopped && r.role != RoleFaulted && !r.removed {
		if r.needResync {
			// The learner jumped past a compaction gap, so applied can
			// never reach chosenAt by folding commits in order. The
			// resync event sits behind this promotion on the lifecycle
			// queue — service it here or we deadlock.
			r.needResync = false
			r.mu.Unlock()
			if err := r.rebuild(); err != nil {
				r.fault(fmt.Errorf("rex: pre-promotion rebuild failed: %w", err))
				return
			}
			r.mu.Lock()
			continue
		}
		r.cond.Wait()
	}
	if r.stopped || r.role == RoleFaulted || r.role == RolePrimary || r.removed {
		r.mu.Unlock()
		return
	}
	rep := r.rt.Replayer()
	r.mu.Unlock()

	if !rep.WaitCaughtUp() {
		return // aborted: stopping or faulted
	}
	cut := rep.Executed()

	r.mu.Lock()
	if r.stopped || r.role == RoleFaulted || r.removed {
		r.mu.Unlock()
		return
	}
	r.tr = rep.Trace()
	if err := r.tr.TruncateTo(cut); err != nil {
		r.mu.Unlock()
		r.fault(fmt.Errorf("rex: promotion truncate to executed cut: %w", err))
		return
	}
	if os.Getenv("REX_DEBUG_VERSIONS") != "" {
		expect := make(map[uint32]uint64)
		for t := range r.tr.Threads {
			l := &r.tr.Threads[t]
			for i, ev := range l.Events {
				_ = i
				switch ev.Kind {
				case trace.KindLockAcq, trace.KindLockRel, trace.KindTryAcq,
					trace.KindCondWaitBegin, trace.KindCondWake,
					trace.KindWLockAcq, trace.KindWLockRel,
					trace.KindSemAcq, trace.KindSemRel,
					trace.KindCondSignal, trace.KindCondBroadcast:
					expect[ev.Res]++
				}
			}
		}
		got := r.rt.VersionsSnapshot()
		for res, want := range expect {
			if int(res) < len(got) && got[res] != want {
				fmt.Printf("VERSION MISMATCH at promotion: replica %d res %d (%s): runtime=%d trace=%d\n",
					r.cfg.ID, res, r.rt.ResourceName(res), got[res], want)
			}
		}
	}
	r.lcc = cut.Clone()
	reqBase := r.tr.ReqsBase + uint64(len(r.tr.Reqs))
	r.rt.StartRecord(cut, reqBase)
	r.rt.Recorder().SetNotify(r.wakePump)
	r.pendingRebase = cut.Clone()
	r.role = RolePrimary
	r.curLeader = r.cfg.ID
	r.proposeInflight = 0
	r.proposeTimes = nil
	r.markBase = (r.applied << 20) | uint64(r.cfg.ID)<<12
	r.nextMarkID = 0
	r.pending = make(map[uint64]*pendingReq)
	r.outstanding = 0
	r.resetClassDispatchLocked()
	if r.classifier != nil {
		// Handlers carried across the mode change (req-begin inside the
		// promotion cut, req-end still to come) escape nextWork's dispatch
		// accounting; seed the in-flight counter with them so a catch-all
		// barrier waits for their completion. replayStep's promotion path
		// decrements it as they finish.
		r.classDispatched = r.inFlightAtPromotionLocked()
	}
	// A change proposed by the previous primary either committed (we saw it
	// in the stream) or died with it; start with a clean slate. Any learner
	// still in the membership is re-adopted so its promotion survives the
	// failover.
	r.reconfigInflight = false
	r.pendingPromote = -1
	if len(r.member.Learners) > 0 {
		r.pendingPromote = r.member.Learners[0]
	}
	r.logf("promoted to primary at cut %v (reqs=%d, applied=%d)", cut, reqBase, r.applied)
	r.cond.Broadcast()
	r.mu.Unlock()
	r.obs.promoteDur.Observe(r.e.Now() - start)
	// Push out the one-time rebasing delta without waiting for demand.
	r.wakePump()
	rep.Abort()
}

// demote handles a new leader elsewhere. A primary rolls back its
// speculative execution by rebuilding from the latest checkpoint and the
// committed trace (§5.2: full-machine rollback).
func (r *Replica) demote(leader int) {
	r.mu.Lock()
	r.curLeader = leader
	wasPrimary := r.role == RolePrimary
	if wasPrimary {
		r.role = RoleSecondary
		r.failPendingLocked()
		r.reconfigInflight = false
		r.pendingPromote = -1
		r.logf("demoted; new leader is %d", leader)
	}
	r.cond.Broadcast()
	r.mu.Unlock()
	if wasPrimary {
		if err := r.rebuild(); err != nil {
			r.fault(fmt.Errorf("rex: rollback rebuild failed: %w", err))
		}
	}
}

// Checkpoint requests a checkpoint now (normally driven by
// Config.CheckpointEvery). Only the primary can initiate one.
func (r *Replica) Checkpoint() error {
	return r.initiateCheckpoint()
}

func (r *Replica) checkpointTimer() {
	for {
		if !r.sleepInterruptible(r.cfg.CheckpointEvery) {
			return
		}
		if err := r.initiateCheckpoint(); err != nil && !errors.Is(err, errNotPrimaryNow) {
			r.logf("checkpoint failed: %v", err)
		}
	}
}

// checkpointFloorPoll is how often the log-growth floor is evaluated. The
// floor is a coarse bound on rebuild cost, not a cadence, so a fixed short
// poll is fine.
const checkpointFloorPoll = 25 * time.Millisecond

// checkpointFloorLoop enforces Config.MaxLogInstancesWithoutCheckpoint:
// even with CheckpointEvery == 0, the primary initiates a checkpoint once
// the committed log has grown that many instances past the last checkpoint
// mark, so a recovery never rebuilds over an unbounded log (the
// checkpoint-disabled livelock; see DESIGN.md "Recovery bounds").
func (r *Replica) checkpointFloorLoop() {
	floor := uint64(r.cfg.MaxLogInstancesWithoutCheckpoint)
	for {
		if !r.sleepInterruptible(checkpointFloorPoll) {
			return
		}
		r.mu.Lock()
		due := r.role == RolePrimary && !r.ckPauseWorkers &&
			r.applied > r.lastCkptInst && r.applied-r.lastCkptInst >= floor
		r.mu.Unlock()
		if !due {
			continue
		}
		if err := r.initiateCheckpoint(); err != nil {
			if !errors.Is(err, errNotPrimaryNow) {
				r.logf("floor checkpoint failed: %v", err)
			}
			continue
		}
		r.obs.ckptFloor.Inc()
	}
}

// sleepInterruptible sleeps d in small chunks, returning false when the
// replica stops.
func (r *Replica) sleepInterruptible(d time.Duration) bool {
	const chunk = 10 * time.Millisecond
	deadline := r.e.Now() + d
	for {
		r.mu.Lock()
		stopped := r.stopped
		r.mu.Unlock()
		if stopped {
			return false
		}
		now := r.e.Now()
		if now >= deadline {
			return true
		}
		step := deadline - now
		if step > chunk {
			step = chunk
		}
		r.e.Sleep(step)
	}
}

// newCtx builds a handler context for a worker.
func (r *Replica) newCtx(w *sched.Worker) *Ctx {
	return &Ctx{w: w, e: r.e, rng: rand.New(rand.NewSource(r.cfg.Seed ^ 0x5bf03635))}
}
