package core

import (
	"errors"
	"time"

	"rex/internal/overload"
	"rex/internal/readpath"
	"rex/internal/trace"
)

var errNotPrimaryNow = errors.New("rex: not primary")

// ErrStaleSeq is returned for a client sequence number below the newest
// one already answered: the request can never succeed, so clients must not
// retry it.
var ErrStaleSeq = errors.New("rex: stale client sequence number")

// Submit executes one client request through the replication protocol and
// returns its response. It blocks until the trace containing the request's
// completion has committed (§2.1: the primary responds after consensus on
// the trace, without waiting for secondary replay). client/seq provide
// at-most-once semantics across retries and failovers.
func (r *Replica) Submit(client, seq uint64, body []byte) ([]byte, error) {
	resp, _, err := r.SubmitToken(client, seq, body)
	return resp, err
}

// submitResult is the payload a pendingReq channel carries: the response
// plus the session token covering the write's commit.
type submitResult struct {
	resp []byte
	tok  readpath.Token
}

// SubmitToken is Submit returning a session token alongside the response:
// the committed frontier (epoch, applied instance, consistent cut) that
// covers the write. A client presenting the token with a session-level
// read is guaranteed to observe this write (read path, DESIGN.md §11).
func (r *Replica) SubmitToken(client, seq uint64, body []byte) ([]byte, readpath.Token, error) {
	return r.SubmitTokenDeadline(client, seq, body, 0)
}

// SubmitTokenDeadline is SubmitToken with a propagated deadline budget:
// the remaining time the client is willing to wait, 0 for none. The
// budget is only consulted *ahead of* trace admission — an expired
// request fails fast with overload.ErrDeadlineExceeded and provably
// never executed; once admitted into the trace it must run to
// completion regardless (dropping it would corrupt replay), so the call
// then blocks until release as before.
//
// The same pre-admission gate is where overload sheds happen: an
// arrival that would have to queue behind a full gate is refused with
// overload.Shed (carrying a retry-after hint) when the wait queue hit
// its hard bound or the CoDel controller detected a standing queue
// (DESIGN.md "Overload & admission control").
func (r *Replica) SubmitTokenDeadline(client, seq uint64, body []byte, budget time.Duration) ([]byte, readpath.Token, error) {
	r.mu.Lock()
	entered := r.e.Now()
	var deadline time.Duration
	if budget > 0 {
		deadline = entered + budget
	}
	waiting := false
	leaveWait := func() {
		if waiting {
			waiting = false
			r.admWaiters--
			r.obs.admissionWaiters.Set(int64(r.admWaiters))
		}
	}
	for {
		if r.stopped || r.role == RoleFaulted {
			leaveWait()
			r.mu.Unlock()
			return nil, readpath.Token{}, ErrStopped
		}
		if r.role != RolePrimary {
			leader := r.curLeader
			leaveWait()
			r.mu.Unlock()
			return nil, readpath.Token{}, ErrNotPrimary{Leader: leader}
		}
		if e, ok := r.dedup[client]; ok && seq <= e.seq {
			resp := e.resp
			tok := r.tokenLocked()
			leaveWait()
			r.mu.Unlock()
			if seq < e.seq {
				return nil, readpath.Token{}, ErrStaleSeq
			}
			// The duplicate's original commit is at or below the current
			// committed frontier, so today's token still covers it.
			return resp, tok, nil
		}
		now := r.e.Now()
		if deadline > 0 && now >= deadline {
			leaveWait()
			r.obs.deadlineExceeded.Inc()
			r.mu.Unlock()
			return nil, readpath.Token{}, overload.ErrDeadlineExceeded
		}
		// Flow control: bound speculation depth and wait for lagging live
		// secondaries (§6.2).
		if r.outstanding < r.cfg.MaxOutstanding && !r.throttledLocked() {
			break
		}
		// The gate is full. Shed instead of queueing when the wait queue
		// hit its hard bound or the controller says the queue is standing.
		if shed, ra := r.shouldShedSubmitLocked(now); shed {
			leaveWait()
			r.obs.shedTotal.Inc()
			r.obs.shedWrites.Inc()
			r.obs.admissionPressure.Set(int64(r.pressureLocked()))
			r.mu.Unlock()
			return nil, readpath.Token{}, overload.Shed{RetryAfter: ra}
		}
		if !waiting {
			waiting = true
			r.admWaiters++
			r.obs.admissionWaiters.Set(int64(r.admWaiters))
			if deadline > 0 {
				r.spawnCondWatchdog(deadline)
			}
		}
		r.cond.Wait()
	}
	if waiting {
		leaveWait()
		r.obs.admissionWait.Observe(r.e.Now() - entered)
	}
	var class uint32
	if r.classifier != nil {
		class = r.classifier.ClassifyConflict(body)
	}
	idx := r.rt.Recorder().AddReq(trace.Req{Client: client, Seq: seq, Class: class, Body: body})
	p := &pendingReq{client: client, seq: seq, at: r.e.Now(), ch: r.e.NewChan(1)}
	r.obs.reqsAdmitted.Inc()
	r.pending[idx] = p
	r.outstanding++
	work := reqWork{idx: idx, body: body, class: class}
	switch {
	case r.classifier == nil:
		r.workQ = append(r.workQ, work)
	case class == ConflictAll:
		r.barrierQ = append(r.barrierQ, work)
	default:
		// Deterministic class → thread assignment: same-class requests are
		// serialized by program order on one thread, which is what lets
		// class-owned lock events be elided from the trace.
		t := int(class % uint32(r.cfg.Workers))
		r.classQ[t] = append(r.classQ[t], work)
	}
	r.cond.Broadcast()
	r.mu.Unlock()

	v, ok := p.ch.Recv()
	if !ok {
		return nil, readpath.Token{}, ErrStopped
	}
	res := v.(submitResult)
	return res.resp, res.tok, nil
}

// tokenLocked builds a session token from the replica's committed
// frontier. Tokens must never include speculative state: on the primary
// that is the last consistent cut of the committed trace (r.lcc), on a
// secondary the replayed-and-executed cut — both only ever cover
// consensus-committed effects, so a token survives any failover.
func (r *Replica) tokenLocked() readpath.Token {
	tok := readpath.Token{Group: r.cfg.Group, Epoch: r.member.Epoch, Applied: r.applied}
	switch {
	case r.role == RolePrimary:
		tok.Cut = r.lcc.Clone()
	case r.rt != nil:
		if rep := r.rt.Replayer(); rep != nil {
			tok.Cut = rep.Executed()
		}
	}
	return tok
}

// throttledLocked implements the primary's aggressive flow control: it
// reports true while any recently-heard-from secondary is too far behind,
// either in committed instances applied or in replay backlog. A silent
// peer (crashed or partitioned) stops counting after a grace period so a
// dead replica cannot stall the cluster.
func (r *Replica) throttledLocked() bool {
	now := r.e.Now()
	stale := 8 * r.cfg.StatusEvery
	for id, st := range r.peers {
		if id == r.cfg.ID {
			continue
		}
		// Only voters gate admission: a learner is expected to lag while it
		// catches up (its promotion is what's gated on lag), and a removed
		// node's last report must not throttle the cluster it left.
		if !r.member.IsVoter(id) {
			continue
		}
		if now-st.at > stale {
			continue
		}
		if st.applied+r.cfg.LagLimitInstances < r.applied {
			return true
		}
		if st.backlog > r.cfg.LagLimitEvents {
			return true
		}
	}
	return false
}

// shouldShedSubmitLocked decides whether a write arrival that would
// otherwise wait at a full admission gate is shed instead. Two
// triggers: the hard waiter bound (the wait queue — and the memory
// behind it — stays bounded no matter what), and the CoDel controller's
// drop schedule while it observes a standing queue.
func (r *Replica) shouldShedSubmitLocked(now time.Duration) (bool, time.Duration) {
	if r.admWaiters >= r.cfg.MaxAdmissionWaiters {
		return true, r.retryAfterLocked()
	}
	if r.admCtrl != nil && r.admCtrl.ShouldShed(now) {
		return true, r.admCtrl.RetryAfter()
	}
	return false, 0
}

// retryAfterLocked is the retry-after hint attached to sheds.
func (r *Replica) retryAfterLocked() time.Duration {
	if r.admCtrl != nil {
		return r.admCtrl.RetryAfter()
	}
	return r.cfg.AdmissionInterval
}

// pressureLocked maps the gate's state to a degradation level
// (overload.Pressure*): the controller's view, escalated to critical
// when the wait queue is halfway to its hard bound.
func (r *Replica) pressureLocked() int {
	p := overload.PressureNone
	if r.admCtrl != nil {
		p = r.admCtrl.Pressure()
	}
	if r.admWaiters >= (r.cfg.MaxAdmissionWaiters+1)/2 {
		p = overload.PressureCritical
	}
	return p
}

// nextWork blocks until there is a request for worker thread ti to run,
// honoring checkpoint pauses. Returns ok=false when the worker's generation
// ended (demotion or shutdown).
func (r *Replica) nextWork(gen int, ti int) (w reqWork, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.gen != gen || r.stopped || r.role != RolePrimary {
			return reqWork{}, false
		}
		if r.ckPauseWorkers {
			r.ckPausedW++
			r.cond.Broadcast()
			for r.ckPauseWorkers && r.gen == gen && !r.stopped {
				r.cond.Wait()
			}
			r.ckPausedW--
			continue
		}
		if r.classifier == nil {
			if len(r.workQ) > 0 {
				w = r.workQ[0]
				r.workQ = r.workQ[1:]
				return w, true
			}
		} else if w, ok := r.nextClassWorkLocked(ti); ok {
			return w, true
		}
		r.cond.Wait()
	}
}

// nextClassWorkLocked is conflict-class dispatch for one worker thread.
// Catch-all (class 0) requests act as admission barriers: while any is
// queued, classified dispatch halts; once the in-flight count drains to
// zero, thread 0 runs the catch-all with in-edges from every other thread's
// last req-end, so replay serializes it against everything dispatched
// before it. The first classified request dispatched to a thread after a
// barrier carries an edge from the barrier's req-end (classAfter);
// everything later on that thread is ordered behind it by program order.
func (r *Replica) nextClassWorkLocked(ti int) (reqWork, bool) {
	if len(r.barrierQ) > 0 {
		if ti != 0 || r.classDispatched > 0 {
			return reqWork{}, false
		}
		w := r.barrierQ[0]
		r.barrierQ = r.barrierQ[1:]
		for t, end := range r.classLastEnd {
			if t != ti && end != (trace.EventID{}) {
				w.in = append(w.in, end)
			}
		}
		r.classDispatched++
		return w, true
	}
	q := r.classQ[ti]
	if len(q) == 0 {
		return reqWork{}, false
	}
	w := q[0]
	r.classQ[ti] = q[1:]
	if a := r.classAfter[ti]; a != (trace.EventID{}) {
		w.in = append(w.in, a)
		r.classAfter[ti] = trace.EventID{}
	}
	r.classDispatched++
	return w, true
}

// pauseGate is the checkpoint barrier for timer threads: it joins a
// phase-2 pause in progress and returns when released.
func (r *Replica) pauseGate(gen int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.ckPauseTimers || r.gen != gen || r.stopped {
		return
	}
	r.ckPausedT++
	r.cond.Broadcast()
	for r.ckPauseTimers && r.gen == gen && !r.stopped {
		r.cond.Wait()
	}
	r.ckPausedT--
}

// completeLocal records a finished request on the primary; the response is
// released to the client once the committed trace's last consistent cut
// covers the req-end event.
func (r *Replica) completeLocal(gen int, work reqWork, resp []byte, end trace.EventID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gen != gen {
		return // a rebuild superseded this incarnation
	}
	if r.classifier != nil && r.role == RolePrimary {
		r.noteClassCompleteLocked(end, work.class == ConflictAll)
	}
	p, ok := r.pending[work.idx]
	if !ok {
		return // demoted meanwhile; client will retry
	}
	p.resp = resp
	p.end = end
	p.done = true
	r.dedup[p.client] = dedupEntry{seq: p.seq, resp: resp}
	r.reqsCompleted++
	r.obs.reqsCompleted.Inc()
	r.obs.execLatency.Observe(r.e.Now() - p.at)
	if r.lcc.Covers(end) {
		r.releaseOneLocked(work.idx, p)
	}
}

// noteClassCompleteLocked maintains the conflict-class dispatch bookkeeping
// when a request finishes on a worker thread: the thread's last req-end
// (barrier in-edges point at these), the in-flight count the barrier drains
// on, and — when the finished request was itself a catch-all — the
// after-barrier edge every other thread's next dispatch must carry.
func (r *Replica) noteClassCompleteLocked(end trace.EventID, barrier bool) {
	t := int(end.Thread)
	if t >= 0 && t < len(r.classLastEnd) {
		r.classLastEnd[t] = end
	}
	if r.classDispatched > 0 {
		r.classDispatched--
	}
	if barrier {
		for i := range r.classAfter {
			if i != t {
				r.classAfter[i] = end
			}
		}
	}
	r.cond.Broadcast()
}

func (r *Replica) releaseOneLocked(idx uint64, p *pendingReq) {
	now := r.e.Now()
	sojourn := now - p.at
	r.obs.reqLatency.Observe(sojourn)
	if r.admCtrl != nil {
		// The admission→release sojourn is the controller's signal: a
		// floor above target for a full interval means a standing queue.
		r.admCtrl.OnSojourn(now, sojourn)
		r.obs.admissionPressure.Set(int64(r.pressureLocked()))
	}
	p.ch.Send(submitResult{resp: p.resp, tok: r.tokenLocked()})
	delete(r.pending, idx)
	r.outstanding--
	r.cond.Broadcast()
}

// releaseResponsesLocked flushes every pending response now covered by the
// committed last consistent cut.
func (r *Replica) releaseResponsesLocked() {
	for idx, p := range r.pending {
		if p.done && r.lcc.Covers(p.end) {
			r.releaseOneLocked(idx, p)
		}
	}
}

// proposePump collects the recorder's growth and proposes it (§3.1). It is
// demand-driven rather than fixed-cadence: the recorder wakes it on the
// first event/request after a drain, applyLoop wakes it when a committed
// instance opens pipeline room, and proposeTicker wakes it every
// ProposeEvery as the max-delay backstop. It also carries the one-time
// rebase marker after a promotion.
func (r *Replica) proposePump() {
	for {
		if _, ok := r.proposeWake.Recv(); !ok {
			return
		}
		r.pumpDrain()
	}
}

// pumpDrain proposes until the recorder is empty or pacing defers: the
// first open instance goes out immediately (sub-cap commit latency at low
// load), additional pipelined instances require ProposeBatchEvents of
// backlog or the ProposeEvery cap since the last proposal, and a full
// pipeline waits for a commit to wake the pump again. Re-collecting until
// empty also closes the race with the recorder's edge-triggered notify (an
// append landing between the drain and the re-arm is picked up here).
func (r *Replica) pumpDrain() {
	for {
		r.mu.Lock()
		if r.stopped || r.role != RolePrimary {
			r.mu.Unlock()
			return
		}
		now := r.e.Now()
		if r.proposeInflight > 0 {
			if r.proposeInflight >= r.cfg.PipelineDepth {
				r.mu.Unlock()
				return // a commit re-wakes us
			}
			if r.rt.Recorder().PendingEvents() < r.cfg.ProposeBatchEvents &&
				now-r.lastProposeAt < r.cfg.ProposeEvery {
				r.mu.Unlock()
				return // the ticker re-checks at the cap
			}
		}
		d := r.rt.Recorder().Collect()
		if r.pendingRebase != nil {
			d.Rebase = r.pendingRebase
			r.pendingRebase = nil
		}
		if d.Empty() {
			r.mu.Unlock()
			return
		}
		r.proposeInflight++
		r.lastProposeAt = now
		r.proposeTimes = append(r.proposeTimes, now)
		r.mu.Unlock()
		val := d.EncodeBytesHint(r.lastDeltaBytes)
		r.lastDeltaBytes = len(val)
		r.obs.deltaBytes.Observe(uint64(len(val)))
		r.obs.deltaEvents.Observe(uint64(d.EventCount()))
		r.node.Propose(val)
	}
}

// proposeTicker is the pump's liveness backstop: whatever edge-triggered
// wake-ups were deferred or lost, pending growth is proposed at most
// ProposeEvery late.
func (r *Replica) proposeTicker() {
	for {
		if !r.sleepInterruptible(r.cfg.ProposeEvery) {
			return
		}
		r.wakePump()
	}
}

// initiateCheckpoint pauses every worker and timer thread at a clean
// boundary, records the cut as a checkpoint mark in the trace, and resumes
// (§3.3). The snapshot itself is taken by a designated secondary when its
// replay reaches the cut.
func (r *Replica) initiateCheckpoint() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.role != RolePrimary || r.stopped {
		return errNotPrimaryNow
	}
	if r.ckPauseWorkers {
		return errors.New("rex: checkpoint already in progress")
	}
	gen := r.gen
	total := r.cfg.Workers + r.cfg.Timers
	pauseStart := r.e.Now()
	// Phase 1: pause request workers at request boundaries. Timer threads
	// keep running so background tasks can unblock stalled handlers.
	r.ckPauseWorkers = true
	r.cond.Broadcast()
	for r.ckPausedW < r.cfg.Workers && r.gen == gen && !r.stopped && r.role == RolePrimary {
		r.cond.Wait()
	}
	// Phase 2: pause timer threads at firing boundaries.
	r.ckPauseTimers = true
	r.cond.Broadcast()
	for r.ckPausedT < r.cfg.Timers && r.gen == gen && !r.stopped && r.role == RolePrimary {
		r.cond.Wait()
	}
	if r.gen != gen || r.stopped || r.role != RolePrimary {
		r.ckPauseWorkers = false
		r.ckPauseTimers = false
		r.cond.Broadcast()
		return errNotPrimaryNow
	}
	cut := make(trace.Cut, total)
	for i := 0; i < total; i++ {
		cut[i] = r.rt.Worker(i).Clock()
	}
	// Mark ids must be unique across primaries (they key snapshots): fold
	// in the promotion instance and replica id.
	r.nextMarkID++
	id := r.markBase + r.nextMarkID
	r.rt.Recorder().AddMark(trace.Mark{ID: id, Cut: cut})
	if r.applied > r.lastCkptInst {
		// Reset the log-growth floor immediately; the mark's own commit
		// will bump this again to its exact instance.
		r.lastCkptInst = r.applied
	}
	r.ckPauseWorkers = false
	r.ckPauseTimers = false
	r.cond.Broadcast()
	r.obs.ckptPause.Observe(r.e.Now() - pauseStart)
	r.logf("checkpoint mark %d at cut %v", id, cut)
	return nil
}
