package core

import (
	"fmt"
	"math/rand"

	"rex/internal/env"
	"rex/internal/sched"
)

// NativeHost runs a state machine unreplicated, with all primitives in
// native mode: the paper's "native" baseline (§6.3) and the harness for
// application unit tests. Background timers fire by time on their own
// tasks.
type NativeHost struct {
	Env env.Env
	RT  *sched.Runtime
	SM  StateMachine

	seed    int64
	timers  []timerSpec
	mu      env.Mutex
	stopped bool
}

// NewNativeHost constructs the application with the given number of
// request workers; timers must match the factory's AddTimer count. Call
// StartTimers to begin background tasks.
func NewNativeHost(e env.Env, workers, timers int, seed int64, f Factory) (*NativeHost, error) {
	rt := sched.NewRuntime(e, workers+timers, sched.ModeNative)
	host := &TimerHost{}
	sm := f(rt, host)
	if len(host.specs) != timers {
		return nil, fmt.Errorf("core: factory registered %d timers, caller said %d", len(host.specs), timers)
	}
	return &NativeHost{
		Env:    e,
		RT:     rt,
		SM:     sm,
		seed:   seed,
		timers: host.specs,
		mu:     e.NewMutex(),
	}, nil
}

// Ctx returns the execution context for request worker i (0 ≤ i <
// workers).
func (h *NativeHost) Ctx(i int) *Ctx {
	return &Ctx{w: h.RT.Worker(i), e: h.Env, rng: rand.New(rand.NewSource(h.seed ^ int64(i)<<32))}
}

// Apply runs one request on worker i's logical thread. The caller must
// ensure at most one request runs per worker at a time.
func (h *NativeHost) Apply(i int, req []byte) []byte {
	return h.SM.Apply(h.Ctx(i), req)
}

// StartTimers launches the background tasks.
func (h *NativeHost) StartTimers() {
	for j, spec := range h.timers {
		j, spec := j, spec
		ti := h.RT.NumThreads() - len(h.timers) + j
		ctx := &Ctx{w: h.RT.Worker(ti), e: h.Env, rng: rand.New(rand.NewSource(h.seed ^ int64(ti)<<32))}
		h.Env.Go(fmt.Sprintf("native-timer-%s", spec.name), func() {
			for {
				h.Env.Sleep(spec.interval)
				h.mu.Lock()
				stopped := h.stopped
				h.mu.Unlock()
				if stopped {
					return
				}
				spec.cb(ctx)
			}
		})
	}
}

// Stop halts background tasks (after their current firing).
func (h *NativeHost) Stop() {
	h.mu.Lock()
	h.stopped = true
	h.mu.Unlock()
}
