package core

import (
	"errors"
	"fmt"

	"rex/internal/reconfig"
	"rex/internal/sched"
)

// ErrReconfigInFlight is returned when a membership change is proposed
// while another one has not committed yet; the primary serializes changes.
var ErrReconfigInFlight = errors.New("rex: a membership change is already in flight")

// Membership returns the latest committed membership this replica applied.
func (r *Replica) Membership() reconfig.Membership {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.member.Clone()
}

// AddMember proposes admitting id (reachable at addr; empty in-process) as
// a non-voting learner. Primary-only; one change in flight at a time. The
// learner catches up via checkpoint transfer and the chosen log, and is
// promoted to voter automatically once within JoinLagInstances of the
// primary's applied frontier.
func (r *Replica) AddMember(id int, addr string) error {
	return r.proposeChange(id, func(m reconfig.Membership) (reconfig.Membership, error) {
		return m.WithAdd(id, addr)
	})
}

// RemoveMember proposes removing id (voter or learner). The removed node
// keeps voting for the α instances before activation, then goes quiet.
func (r *Replica) RemoveMember(id int) error {
	// The self-guard lives inside the mutation, which runs only after the
	// primary check: a non-primary replica asked to remove itself must
	// answer "not primary" (so the client redirects) rather than refuse a
	// perfectly valid removal just because the client contacted the doomed
	// node first.
	return r.proposeChange(-1, func(m reconfig.Membership) (reconfig.Membership, error) {
		if id == r.cfg.ID {
			return reconfig.Membership{}, errors.New("rex: cannot remove self; move the primary first")
		}
		return m.WithRemove(id)
	})
}

// ReplaceMember removes oldID and admits newID as a learner in a single
// committed change, so the voter count never dips below the starting value
// minus one and the operator cannot be left mid-swap by a crash.
func (r *Replica) ReplaceMember(oldID, newID int, addr string) error {
	return r.proposeChange(newID, func(m reconfig.Membership) (reconfig.Membership, error) {
		if oldID == r.cfg.ID {
			return reconfig.Membership{}, errors.New("rex: cannot replace self; move the primary first")
		}
		mid, err := m.WithRemove(oldID)
		if err != nil {
			return reconfig.Membership{}, err
		}
		return mid.WithAdd(newID, addr)
	})
}

func (r *Replica) proposeChange(promoteTarget int, mut func(reconfig.Membership) (reconfig.Membership, error)) error {
	r.mu.Lock()
	if r.stopped || r.role == RoleFaulted || r.removed {
		r.mu.Unlock()
		return ErrStopped
	}
	if r.role != RolePrimary {
		leader := r.curLeader
		r.mu.Unlock()
		return ErrNotPrimary{Leader: leader}
	}
	if r.reconfigInflight {
		r.mu.Unlock()
		return ErrReconfigInFlight
	}
	next, err := mut(r.member)
	if err != nil {
		r.mu.Unlock()
		return err
	}
	next.Alpha = r.alphaLocked()
	r.reconfigInflight = true
	if promoteTarget >= 0 {
		r.pendingPromote = promoteTarget
	}
	r.mu.Unlock()
	r.logf("proposing membership change: %v", next)
	r.node.Propose(reconfig.EncodeValue(next))
	return nil
}

// alphaLocked derives the activation horizon: beyond the pipeline depth so
// no open instance straddles the boundary with the wrong quorum, and never
// below the default.
func (r *Replica) alphaLocked() uint64 {
	a := uint64(r.cfg.PipelineDepth) + 2
	if a < reconfig.DefaultAlpha {
		a = reconfig.DefaultAlpha
	}
	return a
}

// applyMeta folds a non-delta consensus value (a committed membership or
// activation padding) into the applied frontier. Returns false when the
// apply loop must exit.
func (r *Replica) applyMeta(inst uint64, val []byte) bool {
	var m reconfig.Membership
	isMember := reconfig.IsValue(val)
	if isMember {
		var err error
		m, err = reconfig.DecodeValue(val)
		if err != nil {
			r.fault(fmt.Errorf("rex: corrupt committed membership %d: %w", inst, err))
			return false
		}
	}
	r.mu.Lock()
	if inst < r.applied {
		r.mu.Unlock()
		return true // already folded in by a rebuild
	}
	if inst > r.applied {
		// Same resync path as deltas: commits jumped past us after a
		// checkpoint transfer (rebuild re-adopts memberships from the
		// chosen log).
		r.needResync = true
		r.cond.Broadcast()
		r.mu.Unlock()
		r.lifeQ.Send(resyncEvt{})
		return true
	}
	var hook func(reconfig.Membership)
	if isMember {
		if m.Epoch > r.member.Epoch {
			r.member = m.Clone()
			if r.pendingPromote >= 0 && !m.IsLearner(r.pendingPromote) {
				r.pendingPromote = -1 // promoted — or removed before promotion
			}
		}
		r.reconfigInflight = false
		hook = r.cfg.OnMembership
	} else if id, isBarrier := reconfig.BarrierID(val); isBarrier {
		// A read barrier committed. Only the exact id this replica
		// proposed may confirm a waiting linearizable read: matching on
		// anything weaker (a high-water instance, any barrier) would let
		// another primary's barrier wake a deposed reader and pass off a
		// stale read as linearizable.
		if ch, waiting := r.pendingBarriers[id]; waiting {
			ch.TrySend(true)
			delete(r.pendingBarriers, id)
		}
	}
	r.applied = inst + 1
	r.cond.Broadcast()
	r.mu.Unlock()
	if isMember {
		r.logf("membership committed at instance %d: %v", inst, m)
		if hook != nil {
			hook(m.Clone())
		}
	}
	return true
}

// promotionForLocked decides whether a peer's replay-status report should
// trigger its promotion from learner to voter, returning the encoded
// proposal (to be proposed outside the lock) or nil.
func (r *Replica) promotionForLocked(from int, applied, backlog uint64) []byte {
	if r.role != RolePrimary || r.reconfigInflight || r.removed {
		return nil
	}
	if from != r.pendingPromote || !r.member.IsLearner(from) {
		return nil
	}
	if applied+r.cfg.JoinLagInstances < r.applied || backlog > r.cfg.LagLimitEvents {
		return nil
	}
	next, err := r.member.WithPromote(from)
	if err != nil {
		return nil
	}
	next.Alpha = r.alphaLocked()
	r.reconfigInflight = true
	return reconfig.EncodeValue(next)
}

// finishRemoval quiesces a replica whose removal took effect (the paxos
// layer fires OnRemoved at activation): fail pending work, abort replay,
// park in RoleRemoved, and stop the consensus node.
func (r *Replica) finishRemoval(m reconfig.Membership) {
	r.mu.Lock()
	if r.stopped || r.removed {
		r.mu.Unlock()
		return
	}
	r.removed = true
	if r.role != RoleFaulted {
		r.role = RoleRemoved
	}
	if m.Epoch > r.member.Epoch {
		r.member = m.Clone()
	}
	r.failPendingLocked()
	var rep *sched.Replayer
	if r.rt != nil {
		rep = r.rt.Replayer()
	}
	r.cond.Broadcast()
	r.mu.Unlock()
	r.logf("removed from membership (epoch %d); going quiet", m.Epoch)
	if rep != nil {
		rep.Abort()
	}
	r.node.Stop()
}
