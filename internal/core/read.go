package core

import (
	"fmt"
	"time"

	"rex/internal/overload"
	"rex/internal/readpath"
	"rex/internal/reconfig"
	"rex/internal/sched"
)

// The consistent read path (DESIGN.md §11).
//
// QueryLevel serves a read at one of readpath's three consistency levels.
// Writes never wait for reads; reads wait only on the frontier they need:
//
//   - Linearizable (primary only): execute the query against the
//     primary's state, then (1) drain — wait until every write the query
//     may have observed has committed and released — and (2) confirm
//     leadership: the quorum read lease, when live, proves no other
//     primary can have committed writes this one missed, at zero
//     consensus cost; otherwise an id-carrying barrier value is pushed
//     through consensus and the read completes when this replica applies
//     it. Both legs are bounded by ReadWaitTimeout.
//   - Session: a secondary first waits until its replayed execution
//     frontier covers the client's token cut (read-your-writes /
//     monotonic reads); the primary's state covers every committed token
//     by construction. The response carries a refreshed token.
//   - Eventual: served immediately from local replayed state.
//
// Secondaries only serve queries the state machine classifies as
// QueryFollowerOK (default-deny: an unclassified query is primary-only,
// because a query with side effects executed outside replay would fork
// the replica's state from the committed trace).

// QueryLevel executes the read-only query q at the requested consistency
// level. tok is the client's session token (zero for none); the returned
// token reflects the state the read observed and must be carried into the
// client's next session read.
func (r *Replica) QueryLevel(level readpath.Level, tok readpath.Token, q []byte) ([]byte, readpath.Token, error) {
	if !level.Valid() {
		return nil, tok, fmt.Errorf("rex: invalid consistency level %d", uint8(level))
	}
	r.mu.Lock()
	if r.stopped || r.role == RoleFaulted || r.removed {
		r.mu.Unlock()
		return nil, tok, ErrStopped
	}
	role := r.role
	leader := r.curLeader
	sm := r.sm
	pressure := overload.PressureNone
	retryAfter := time.Duration(0)
	if role == RolePrimary {
		pressure = r.pressureLocked()
		retryAfter = r.retryAfterLocked()
	}
	r.mu.Unlock()

	if role != RolePrimary {
		if level == readpath.Linearizable {
			return nil, tok, ErrNotPrimary{Leader: leader}
		}
		if classifyQuery(sm, q) != QueryFollowerOK {
			return nil, tok, readpath.ErrPrimaryOnly
		}
		return r.followerRead(level, tok, q)
	}
	// Graceful degradation by consistency level (DESIGN.md "Overload &
	// admission control"): at critical pressure every read is shed
	// before doing any work; at elevated pressure the weakest levels
	// shed first while linearizable reads proceed (lease-only — see
	// linearizableRead) and writes keep the remaining capacity.
	if pressure >= overload.PressureCritical ||
		(pressure >= overload.PressureElevated && level != readpath.Linearizable) {
		r.obs.shedTotal.Inc()
		r.obs.shedReads.Inc()
		return nil, tok, overload.Shed{RetryAfter: retryAfter}
	}
	if level == readpath.Linearizable {
		return r.linearizableRead(q, pressure)
	}
	// Session/eventual on the primary: its state covers every committed
	// frontier any token can describe, so serve immediately.
	resp, err := r.runQuery(q)
	if err != nil {
		return nil, tok, err
	}
	r.mu.Lock()
	out := r.tokenLocked()
	r.mu.Unlock()
	return resp, out.Merge(tok), nil
}

// classifyQuery applies the default-deny read/write classification: only
// state machines that implement QueryClassifier and answer QueryFollowerOK
// may have q served by a secondary.
func classifyQuery(sm StateMachine, q []byte) QueryClass {
	if qc, ok := sm.(QueryClassifier); ok {
		return qc.ClassifyQuery(q)
	}
	return QueryPrimaryOnly
}

// followerRead serves a session/eventual read on a secondary: wait for the
// token's frontier if the level demands it, query replayed state, refresh
// the token.
func (r *Replica) followerRead(level readpath.Level, tok readpath.Token, q []byte) ([]byte, readpath.Token, error) {
	// A secondary whose replay backlog is past the lag limit sheds weak
	// reads: serving ever-staler state only costs CPU the replayer needs
	// for catch-up, and session reads would mostly time out on the
	// frontier wait anyway.
	if bl := r.replayBacklog(); bl > r.cfg.LagLimitEvents {
		r.obs.shedTotal.Inc()
		r.obs.shedReads.Inc()
		return nil, tok, overload.Shed{RetryAfter: r.cfg.AdmissionInterval}
	}
	if level == readpath.Session && !tok.Zero() {
		if tok.Group != r.cfg.Group {
			return nil, tok, fmt.Errorf("rex: session token for group %d presented to group %d", tok.Group, r.cfg.Group)
		}
		if len(tok.Cut) > 0 {
			r.mu.Lock()
			var rep *sched.Replayer
			if r.rt != nil {
				rep = r.rt.Replayer()
			}
			r.mu.Unlock()
			if rep == nil {
				return nil, tok, ErrStopped
			}
			start := r.e.Now()
			if !rep.WaitExecutedAtLeast(tok.Cut, r.cfg.ReadWaitTimeout) {
				r.obs.readTimeouts.Inc()
				return nil, tok, readpath.ErrFrontierWait
			}
			if wait := r.e.Now() - start; wait > 0 {
				r.obs.readWait.Observe(wait)
			}
		}
	}
	resp, err := r.runQuery(q)
	if err != nil {
		return nil, tok, err
	}
	r.obs.followerReads.Inc()
	r.mu.Lock()
	out := r.tokenLocked()
	r.mu.Unlock()
	// Merge keeps the refreshed token monotone even when the local applied
	// count trails the token's (meta instances advance applied without
	// moving the cut).
	return resp, out.Merge(tok), nil
}

// linearizableRead runs on the primary: query speculative state, drain
// the writes the query may have observed, then prove no newer primary
// exists — via the lease when live, via a consensus barrier otherwise.
// Under elevated pressure the consensus-barrier fallback is disabled:
// the read is served lease-only or shed, keeping read confirmations out
// of a propose pipeline that is already the bottleneck.
func (r *Replica) linearizableRead(q []byte, pressure int) ([]byte, readpath.Token, error) {
	resp, err := r.runQuery(q)
	if err != nil {
		return nil, readpath.Token{}, err
	}
	start := r.e.Now()
	deadline := start + r.cfg.ReadWaitTimeout
	if err := r.drainObservedWrites(deadline); err != nil {
		return nil, readpath.Token{}, err
	}
	if r.node.LeaseValid() {
		// The quorum lease guarantees no competing election completed:
		// every write this read could have missed would have to come from
		// a leader that cannot exist yet.
		r.obs.leaseReads.Inc()
	} else {
		if pressure >= overload.PressureElevated {
			r.obs.degradedReads.Inc()
			r.obs.shedTotal.Inc()
			r.obs.shedReads.Inc()
			r.mu.Lock()
			ra := r.retryAfterLocked()
			r.mu.Unlock()
			return nil, readpath.Token{}, overload.Shed{RetryAfter: ra}
		}
		if err := r.readBarrier(deadline); err != nil {
			return nil, readpath.Token{}, err
		}
		r.obs.confirmReads.Inc()
	}
	if wait := r.e.Now() - start; wait > 0 {
		r.obs.readWait.Observe(wait)
	}
	r.mu.Lock()
	tok := r.tokenLocked()
	r.mu.Unlock()
	return resp, tok, nil
}

// drainObservedWrites blocks until every request pending at the moment
// the query returned has left the pending set — i.e. every write whose
// speculative effects the query may have observed has committed (or the
// primary was deposed and the client must retry). The snapshot is taken
// AFTER the query executed: anything admitted later cannot have been
// observed and must not delay the read.
func (r *Replica) drainObservedWrites(deadline time.Duration) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	observed := make([]uint64, 0, len(r.pending))
	for idx := range r.pending {
		observed = append(observed, idx)
	}
	if len(observed) == 0 {
		return nil
	}
	r.spawnCondWatchdog(deadline)
	for {
		if r.stopped || r.role == RoleFaulted {
			return ErrStopped
		}
		if r.role != RolePrimary {
			return ErrNotPrimary{Leader: r.curLeader}
		}
		live := false
		for _, idx := range observed {
			if _, ok := r.pending[idx]; ok {
				live = true
				break
			}
		}
		if !live {
			return nil
		}
		if r.e.Now() >= deadline {
			r.obs.readTimeouts.Inc()
			return readpath.ErrLeaseWait
		}
		r.cond.Wait()
	}
}

// spawnCondWatchdog broadcasts r.cond once deadline passes, so a
// cond-based wait can time out (env.Cond has no timed wait). Spurious
// wake-ups are harmless — every waiter re-checks its predicate.
func (r *Replica) spawnCondWatchdog(deadline time.Duration) {
	r.e.Go(fmt.Sprintf("rex-%d-read-watchdog", r.cfg.ID), func() {
		if d := deadline - r.e.Now(); d > 0 {
			r.e.Sleep(d)
		}
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
}

// readBarrier proposes an id-carrying padding value through consensus and
// waits for this replica to apply it. The id is unique cluster-wide
// (replica id in the high bits, a never-reset counter below), and
// applyMeta signals only an exact id match — a high-water or any-barrier
// match would let another primary's barrier confirm a deposed reader.
// Committing our own barrier under our own ballot proves no newer leader
// completed an election before the barrier's quorum accepted it, so no
// write this read missed can have committed before the read's
// linearization point.
func (r *Replica) readBarrier(deadline time.Duration) error {
	r.mu.Lock()
	if r.stopped || r.role != RolePrimary {
		leader := r.curLeader
		r.mu.Unlock()
		if leader >= 0 {
			return ErrNotPrimary{Leader: leader}
		}
		return ErrStopped
	}
	r.nextBarrier++
	id := uint64(r.cfg.ID)<<48 | r.nextBarrier
	ch := r.e.NewChan(1)
	r.pendingBarriers[id] = ch
	r.mu.Unlock()

	// A deposed node's Propose is dropped silently; the watchdog turns
	// that into a timeout the client can retry.
	r.node.Propose(reconfig.BarrierValue(id))
	r.e.Go(fmt.Sprintf("rex-%d-barrier-watchdog", r.cfg.ID), func() {
		if d := deadline - r.e.Now(); d > 0 {
			r.e.Sleep(d)
		}
		ch.TrySend(false)
	})

	v, ok := ch.Recv()
	r.mu.Lock()
	delete(r.pendingBarriers, id)
	r.mu.Unlock()
	if !ok {
		return ErrStopped // demoted or stopped while waiting
	}
	if !v.(bool) {
		r.obs.readTimeouts.Inc()
		return readpath.ErrLeaseWait
	}
	return nil
}
