package trace

import (
	"errors"
	"fmt"

	"rex/internal/wire"
)

// Delta is the unit of agreement: the trace growth a primary proposes on
// top of the previously committed trace (§3.1 — "a proposal to a new
// instance can contain not the full trace, but only the additional
// information on top of the committed trace in the previous instance").
type Delta struct {
	// Rebase, when non-nil, instructs the receiver to truncate its trace to
	// this cut before applying the delta. A new primary issues exactly one
	// rebasing delta after takeover to discard the residue beyond the last
	// consistent cut (§3.2).
	Rebase Cut
	// Base is the expected per-thread frontier (after any rebase) that this
	// delta extends; a mismatch means a protocol bug and fails Apply.
	Base Cut
	// ReqBase is the expected length of the request table before applying.
	ReqBase uint64
	// Threads holds the appended events per logical thread.
	Threads []ThreadLog
	// Reqs are the request payloads appended by this delta.
	Reqs []Req
	// Marks are checkpoint marks appended by this delta.
	Marks []Mark
}

// ErrBaseMismatch reports that a delta does not extend the trace it was
// applied to.
var ErrBaseMismatch = errors.New("trace: delta base mismatch")

// EventCount returns the number of events the delta appends.
func (d *Delta) EventCount() int {
	n := 0
	for i := range d.Threads {
		n += len(d.Threads[i].Events)
	}
	return n
}

// EdgeCount returns the number of causal edges the delta appends.
func (d *Delta) EdgeCount() int {
	n := 0
	for i := range d.Threads {
		for _, in := range d.Threads[i].In {
			n += len(in)
		}
	}
	return n
}

// Empty reports whether the delta appends nothing and carries no rebase.
func (d *Delta) Empty() bool {
	return d.Rebase == nil && d.EventCount() == 0 && len(d.Reqs) == 0 && len(d.Marks) == 0
}

// Apply extends tr by d, performing the rebase truncation first if present.
//
// A rebase cut outside the locally available window (beyond the frontier or
// inside the collected prefix) yields ErrCutBeyondTrace: the local trace has
// desynchronized from the committed stream and the replica must re-sync from
// a checkpoint. Other base disagreements yield ErrBaseMismatch (a protocol
// bug).
func (tr *Trace) Apply(d *Delta) error {
	if d.Rebase != nil {
		cur := tr.Cut()
		if !cur.AtLeast(d.Rebase) {
			return fmt.Errorf("%w: rebase cut %v beyond local trace %v", ErrCutBeyondTrace, d.Rebase, cur)
		}
		if err := tr.TruncateTo(d.Rebase); err != nil {
			return err
		}
	}
	if len(d.Threads) != len(tr.Threads) {
		return fmt.Errorf("%w: delta has %d threads, trace has %d", ErrBaseMismatch, len(d.Threads), len(tr.Threads))
	}
	if cur := tr.Cut(); !cur.Equal(d.Base) {
		return fmt.Errorf("%w: delta base %v, trace frontier %v", ErrBaseMismatch, d.Base, cur)
	}
	if have := tr.ReqsBase + uint64(len(tr.Reqs)); have != d.ReqBase {
		return fmt.Errorf("%w: delta req base %d, trace has %d reqs", ErrBaseMismatch, d.ReqBase, have)
	}
	for t := range d.Threads {
		tr.Threads[t].Events = append(tr.Threads[t].Events, d.Threads[t].Events...)
		tr.Threads[t].In = append(tr.Threads[t].In, d.Threads[t].In...)
	}
	tr.Reqs = append(tr.Reqs, d.Reqs...)
	tr.Marks = append(tr.Marks, d.Marks...)
	return nil
}

// deltaVersion 2 added the compact conflict-class table; version 1 deltas
// (no classes: every request is catch-all) still decode.
const (
	deltaVersion   = 2
	deltaVersionV1 = 1
)

func encodeCut(e *wire.Encoder, c Cut) {
	e.Uvarint(uint64(len(c)))
	for _, v := range c {
		e.Uvarint(uint64(v))
	}
}

func decodeCut(d *wire.Decoder) Cut {
	n := d.Uvarint()
	if d.Err() != nil || n > 1<<20 {
		return nil
	}
	c := make(Cut, n)
	for i := range c {
		c[i] = int32(d.Uvarint())
	}
	return c
}

// Encode appends the wire form of d to e. The encoding is the Paxos
// proposal value and the WAL record body; it averages roughly 16 bytes per
// synchronization event plus request payloads, matching §6.3.
func (d *Delta) Encode(e *wire.Encoder) {
	e.Byte(deltaVersion)
	e.Bool(d.Rebase != nil)
	if d.Rebase != nil {
		encodeCut(e, d.Rebase)
	}
	encodeCut(e, d.Base)
	e.Uvarint(d.ReqBase)
	e.Uvarint(uint64(len(d.Threads)))
	for t := range d.Threads {
		l := &d.Threads[t]
		e.Uvarint(uint64(len(l.Events)))
		for i, ev := range l.Events {
			e.Byte(byte(ev.Kind))
			e.Uvarint(uint64(ev.Res))
			e.Uvarint(ev.Arg)
			in := l.In[i]
			e.Uvarint(uint64(len(in)))
			for _, src := range in {
				e.Uvarint(uint64(src.Thread))
				e.Uvarint(uint64(src.Clock))
			}
		}
	}
	e.Uvarint(uint64(len(d.Reqs)))
	// Compact conflict-class table: each distinct non-zero class id is
	// listed once, and each request carries a 1-based uvarint index into
	// the table (0 = the catch-all class). A delta dominated by a few hot
	// classes pays ~1 byte per request instead of re-encoding the id.
	var classes []uint32
	for _, r := range d.Reqs {
		if r.Class == 0 {
			continue
		}
		seen := false
		for _, c := range classes {
			if c == r.Class {
				seen = true
				break
			}
		}
		if !seen {
			classes = append(classes, r.Class)
		}
	}
	e.Uvarint(uint64(len(classes)))
	for _, c := range classes {
		e.Uvarint(uint64(c))
	}
	for _, r := range d.Reqs {
		e.Uvarint(r.Client)
		e.Uvarint(r.Seq)
		idx := uint64(0)
		for i, c := range classes {
			if c == r.Class {
				idx = uint64(i + 1)
				break
			}
		}
		e.Uvarint(idx)
		e.BytesVal(r.Body)
	}
	e.Uvarint(uint64(len(d.Marks)))
	for _, m := range d.Marks {
		e.Uvarint(m.ID)
		encodeCut(e, m.Cut)
	}
}

// EncodeBytes returns the wire form of d.
func (d *Delta) EncodeBytes() []byte {
	return d.EncodeBytesHint(0)
}

// EncodeBytesHint returns the wire form of d, encoding through a pooled
// scratch buffer pre-sized to sizeHint (callers pass the previous delta's
// encoded size). The returned slice is exact-length and owned by the
// caller; steady state costs one allocation (the copy), not the O(log n)
// growth reallocations of a cold encoder.
func (d *Delta) EncodeBytesHint(sizeHint int) []byte {
	e := wire.GetEncoder(sizeHint)
	d.Encode(e)
	out := e.AppendCopy(make([]byte, 0, e.Len()))
	e.Release()
	return out
}

// DecodeDelta parses a delta from dec.
func DecodeDelta(dec *wire.Decoder) (*Delta, error) {
	v := dec.Byte()
	if dec.Err() == nil && v != deltaVersion && v != deltaVersionV1 {
		return nil, fmt.Errorf("trace: unsupported delta version %d", v)
	}
	d := &Delta{}
	if dec.Bool() {
		d.Rebase = decodeCut(dec)
	}
	d.Base = decodeCut(dec)
	d.ReqBase = dec.Uvarint()
	nThreads := dec.Uvarint()
	if dec.Err() != nil {
		return nil, dec.Err()
	}
	if nThreads > 1<<16 {
		return nil, wire.ErrCorrupt
	}
	d.Threads = make([]ThreadLog, nThreads)
	for t := range d.Threads {
		n := dec.Uvarint()
		if dec.Err() != nil {
			return nil, dec.Err()
		}
		if n > 1<<28 {
			return nil, wire.ErrCorrupt
		}
		l := &d.Threads[t]
		l.Events = make([]Event, 0, n)
		l.In = make([][]EventID, 0, n)
		for i := uint64(0); i < n; i++ {
			kind := Kind(dec.Byte())
			if dec.Err() == nil && (kind == KindInvalid || kind >= kindMax) {
				return nil, fmt.Errorf("trace: invalid event kind %d", kind)
			}
			ev := Event{Kind: kind, Res: uint32(dec.Uvarint()), Arg: dec.Uvarint()}
			nIn := dec.Uvarint()
			if dec.Err() != nil {
				return nil, dec.Err()
			}
			if nIn > 1<<20 {
				return nil, wire.ErrCorrupt
			}
			var in []EventID
			for j := uint64(0); j < nIn; j++ {
				in = append(in, EventID{Thread: int32(dec.Uvarint()), Clock: int32(dec.Uvarint())})
			}
			l.Events = append(l.Events, ev)
			l.In = append(l.In, in)
		}
	}
	nReqs := dec.Uvarint()
	if dec.Err() != nil {
		return nil, dec.Err()
	}
	if nReqs > 1<<28 {
		return nil, wire.ErrCorrupt
	}
	var classes []uint32
	if v == deltaVersion {
		nc := dec.Uvarint()
		if dec.Err() != nil {
			return nil, dec.Err()
		}
		if nc > 1<<20 {
			return nil, wire.ErrCorrupt
		}
		classes = make([]uint32, nc)
		for i := range classes {
			classes[i] = uint32(dec.Uvarint())
		}
	}
	for i := uint64(0); i < nReqs; i++ {
		r := Req{Client: dec.Uvarint(), Seq: dec.Uvarint()}
		if v == deltaVersion {
			ci := dec.Uvarint()
			if ci > 0 {
				if ci > uint64(len(classes)) {
					return nil, wire.ErrCorrupt
				}
				r.Class = classes[ci-1]
			}
		}
		r.Body = append([]byte(nil), dec.BytesVal()...)
		d.Reqs = append(d.Reqs, r)
	}
	nMarks := dec.Uvarint()
	if dec.Err() != nil {
		return nil, dec.Err()
	}
	if nMarks > 1<<20 {
		return nil, wire.ErrCorrupt
	}
	for i := uint64(0); i < nMarks; i++ {
		m := Mark{ID: dec.Uvarint(), Cut: decodeCut(dec)}
		d.Marks = append(d.Marks, m)
	}
	return d, dec.Err()
}

// DecodeDeltaBytes parses a delta from buf.
func DecodeDeltaBytes(buf []byte) (*Delta, error) {
	return DecodeDelta(wire.NewDecoder(buf))
}
