package trace

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// mustCC computes ConsistentCut for a base known to be inside the trace.
func mustCC(t *testing.T, tr *Trace, base Cut) Cut {
	t.Helper()
	cc, err := tr.ConsistentCut(base)
	if err != nil {
		t.Fatalf("ConsistentCut(%v): %v", base, err)
	}
	return cc
}

// buildFig2 builds the paper's Figure 2 trace: two threads sharing lock L.
// Thread 0: req-begin(1), lock-acq(2), lock-rel(3), lock-acq(4)
// Thread 1: req-begin(1), lock-acq(2), lock-rel(3)
// Edges: (0,3) -> (1,2) and (1,3) -> (0,4).
func buildFig2() *Trace {
	tr := New(2)
	t0 := &tr.Threads[0]
	t1 := &tr.Threads[1]
	t0.Append(0, Event{Kind: KindReqBegin, Res: 0}, nil)
	t0.Append(0, Event{Kind: KindLockAcq, Res: 1, Arg: 1}, nil)
	t0.Append(0, Event{Kind: KindLockRel, Res: 1, Arg: 2}, nil)
	t1.Append(1, Event{Kind: KindReqBegin, Res: 1}, nil)
	t1.Append(1, Event{Kind: KindLockAcq, Res: 1, Arg: 3}, []EventID{{0, 3}})
	t1.Append(1, Event{Kind: KindLockRel, Res: 1, Arg: 4}, nil)
	t0.Append(0, Event{Kind: KindLockAcq, Res: 1, Arg: 5}, []EventID{{1, 3}})
	tr.Reqs = []Req{{Client: 1, Seq: 1}, {Client: 2, Seq: 1}}
	return tr
}

func TestCutBasics(t *testing.T) {
	tr := buildFig2()
	cut := tr.Cut()
	if cut[0] != 4 || cut[1] != 3 {
		t.Fatalf("Cut = %v, want [4 3]", cut)
	}
	if !cut.Covers(EventID{0, 4}) || cut.Covers(EventID{0, 5}) {
		t.Error("Covers wrong")
	}
	if !cut.AtLeast(Cut{4, 3}) || cut.AtLeast(Cut{5, 0}) {
		t.Error("AtLeast wrong")
	}
}

func TestConsistentCutFig2(t *testing.T) {
	tr := buildFig2()
	// The full trace is consistent: every edge source is present.
	cc := mustCC(t, tr, nil)
	if !cc.Equal(Cut{4, 3}) {
		t.Fatalf("ConsistentCut = %v, want [4 3]", cc)
	}
	// c1 from the paper is consistent, c2 ((0,4) in but (1,3) out) is not.
	if !tr.IsConsistent(Cut{3, 2}) {
		t.Error("paper's c1 [3 2] should be consistent")
	}
	if tr.IsConsistent(Cut{4, 2}) {
		t.Error("paper's c2 [4 2] should be inconsistent")
	}
}

func TestConsistentCutWithMissingSource(t *testing.T) {
	// Event (1,2) depends on (0,3), but thread 0 only logged 2 events —
	// the async collector raced (§3.2). The consistent cut must exclude
	// (1,2) and everything after it on thread 1.
	tr := New(2)
	tr.Threads[0].Append(0, Event{Kind: KindLockAcq, Res: 1}, nil)
	tr.Threads[0].Append(0, Event{Kind: KindLockRel, Res: 1}, nil)
	tr.Threads[1].Append(1, Event{Kind: KindLockAcq, Res: 1}, []EventID{{0, 3}})
	tr.Threads[1].Append(1, Event{Kind: KindLockRel, Res: 1}, nil)
	cc := mustCC(t, tr, nil)
	if !cc.Equal(Cut{2, 0}) {
		t.Fatalf("ConsistentCut = %v, want [2 0]", cc)
	}
}

func TestConsistentCutCascade(t *testing.T) {
	// Removing an event must cascade through later dependents on other
	// threads: (0,2) depends on missing (2,1); (1,1) depends on (0,2).
	tr := New(3)
	tr.Threads[0].Append(0, Event{Kind: KindLockAcq, Res: 1}, nil)
	tr.Threads[0].Append(0, Event{Kind: KindLockAcq, Res: 2}, []EventID{{2, 1}})
	tr.Threads[1].Append(1, Event{Kind: KindLockAcq, Res: 3}, []EventID{{0, 2}})
	cc := mustCC(t, tr, nil)
	if !cc.Equal(Cut{1, 0, 0}) {
		t.Fatalf("ConsistentCut = %v, want [1 0 0]", cc)
	}
}

func TestConsistentCutIncrementalMatchesFull(t *testing.T) {
	tr := buildFig2()
	base := Cut{3, 1} // consistent prefix
	if !tr.IsConsistent(base) {
		t.Fatal("base not consistent")
	}
	inc := mustCC(t, tr, base)
	full := mustCC(t, tr, nil)
	if !inc.Equal(full) {
		t.Errorf("incremental %v != full %v", inc, full)
	}
}

func TestTruncateTo(t *testing.T) {
	tr := buildFig2()
	tr.Marks = []Mark{{ID: 1, Cut: Cut{3, 2}}, {ID: 2, Cut: Cut{4, 3}}}
	if err := tr.TruncateTo(Cut{3, 2}); err != nil {
		t.Fatalf("TruncateTo: %v", err)
	}
	if got := tr.Cut(); !got.Equal(Cut{3, 2}) {
		t.Fatalf("after truncate Cut = %v", got)
	}
	if len(tr.Marks) != 1 || tr.Marks[0].ID != 1 {
		t.Errorf("marks after truncate = %v, want only mark 1", tr.Marks)
	}
	// Both requests still referenced by surviving req-begin events.
	if len(tr.Reqs) != 2 {
		t.Errorf("reqs after truncate = %d, want 2", len(tr.Reqs))
	}
	if !tr.IsConsistent(tr.Cut()) {
		t.Error("truncated trace inconsistent")
	}
}

func TestApplyDelta(t *testing.T) {
	tr := New(2)
	d1 := &Delta{
		Base:    Cut{0, 0},
		Threads: make([]ThreadLog, 2),
	}
	d1.Threads[0].Append(0, Event{Kind: KindReqBegin, Res: 0}, nil)
	d1.Threads[0].Append(0, Event{Kind: KindLockAcq, Res: 1}, nil)
	d1.Reqs = []Req{{Client: 1, Seq: 1, Body: []byte("a")}}
	if err := tr.Apply(d1); err != nil {
		t.Fatalf("Apply d1: %v", err)
	}
	d2 := &Delta{
		Base:    Cut{2, 0},
		ReqBase: 1,
		Threads: make([]ThreadLog, 2),
	}
	d2.Threads[1].Append(1, Event{Kind: KindLockAcq, Res: 1}, []EventID{{0, 2}})
	if err := tr.Apply(d2); err != nil {
		t.Fatalf("Apply d2: %v", err)
	}
	if tr.EventCount() != 3 || tr.EdgeCount() != 1 || len(tr.Reqs) != 1 {
		t.Errorf("trace after applies: events=%d edges=%d reqs=%d",
			tr.EventCount(), tr.EdgeCount(), len(tr.Reqs))
	}
	// Re-applying d2 must fail the base check.
	if err := tr.Apply(d2); err == nil {
		t.Error("re-apply of delta succeeded, want base mismatch")
	}
}

func TestApplyRebase(t *testing.T) {
	tr := buildFig2()
	d := &Delta{
		Rebase:  Cut{3, 2},
		Base:    Cut{3, 2},
		ReqBase: 2,
		Threads: make([]ThreadLog, 2),
	}
	d.Threads[1].Append(1, Event{Kind: KindLockRel, Res: 1}, nil)
	if err := tr.Apply(d); err != nil {
		t.Fatalf("Apply rebase: %v", err)
	}
	if got := tr.Cut(); !got.Equal(Cut{3, 3}) {
		t.Errorf("Cut after rebase-apply = %v, want [3 3]", got)
	}
}

func TestDeltaEncodeDecodeRoundTrip(t *testing.T) {
	d := &Delta{
		Rebase:  Cut{1, 2},
		Base:    Cut{1, 2},
		ReqBase: 7,
		Threads: make([]ThreadLog, 2),
		Reqs:    []Req{{Client: 9, Seq: 3, Body: []byte("hello")}},
		Marks:   []Mark{{ID: 5, Cut: Cut{1, 1}}},
	}
	d.Threads[0].Append(0, Event{Kind: KindLockAcq, Res: 3, Arg: 17}, []EventID{{1, 2}, {1, 1}})
	d.Threads[1].Append(1, Event{Kind: KindValue, Res: 1, Arg: 12345}, nil)

	got, err := DecodeDeltaBytes(d.EncodeBytes())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !got.Base.Equal(d.Base) || !got.Rebase.Equal(d.Rebase) || got.ReqBase != 7 {
		t.Errorf("header mismatch: %+v", got)
	}
	if got.EventCount() != 2 || got.EdgeCount() != 2 {
		t.Errorf("events=%d edges=%d", got.EventCount(), got.EdgeCount())
	}
	ev := got.Threads[0].Events[0]
	if ev.Kind != KindLockAcq || ev.Res != 3 || ev.Arg != 17 {
		t.Errorf("event = %+v", ev)
	}
	if in := got.Threads[0].In[0]; len(in) != 2 || in[0] != (EventID{1, 2}) {
		t.Errorf("in-edges = %v", in)
	}
	if len(got.Reqs) != 1 || string(got.Reqs[0].Body) != "hello" {
		t.Errorf("reqs = %+v", got.Reqs)
	}
	if len(got.Marks) != 1 || got.Marks[0].ID != 5 {
		t.Errorf("marks = %+v", got.Marks)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeDeltaBytes([]byte{0xff, 0x01, 0x02}); err == nil {
		t.Error("decoding garbage succeeded")
	}
	if _, err := DecodeDeltaBytes(nil); err == nil {
		t.Error("decoding empty succeeded")
	}
	// Truncated valid delta.
	d := &Delta{Base: Cut{0}, Threads: make([]ThreadLog, 1)}
	d.Threads[0].Append(0, Event{Kind: KindLockAcq, Res: 1}, nil)
	b := d.EncodeBytes()
	for cut := 1; cut < len(b); cut++ {
		if _, err := DecodeDeltaBytes(b[:cut]); err == nil {
			t.Fatalf("decoding truncated delta (%d/%d bytes) succeeded", cut, len(b))
		}
	}
}

// randomTrace builds a random trace whose edges always point to events that
// were appended earlier in real time, mirroring how the recorder works.
func randomTrace(rng *rand.Rand, nThreads, nEvents int) *Trace {
	tr := New(nThreads)
	type rec struct{ id EventID }
	var all []rec
	for i := 0; i < nEvents; i++ {
		t := int32(rng.Intn(nThreads))
		var in []EventID
		// Edges from up to 2 earlier events on other threads.
		for j := 0; j < rng.Intn(3) && len(all) > 0; j++ {
			src := all[rng.Intn(len(all))].id
			if src.Thread != t {
				in = append(in, src)
			}
		}
		id := tr.Threads[t].Append(t, Event{Kind: KindLockAcq, Res: 1, Arg: uint64(i)}, in)
		all = append(all, rec{id})
	}
	return tr
}

func TestQuickConsistentCutProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, 2+rng.Intn(4), 30)
		cc, err := tr.ConsistentCut(nil)
		if err != nil {
			return false
		}
		// Property 1: the returned cut is consistent.
		if !tr.IsConsistent(cc) {
			return false
		}
		// Property 2: maximality — extending the cut by one event on any
		// thread makes it inconsistent or exceeds the trace.
		full := tr.Cut()
		for th := range cc {
			if cc[th] < full[th] {
				ext := cc.Clone()
				ext[th]++
				if tr.IsConsistent(ext) {
					// Extending a *last* consistent cut on one thread alone
					// may still be consistent if that event's deps are all
					// inside; but then ConsistentCut should have included it.
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickDeltaRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, 3, 25)
		d := &Delta{Base: Cut{0, 0, 0}, Threads: tr.Threads, Reqs: tr.Reqs}
		got, err := DecodeDeltaBytes(d.EncodeBytes())
		if err != nil {
			return false
		}
		if got.EventCount() != d.EventCount() || got.EdgeCount() != d.EdgeCount() {
			return false
		}
		for t := range d.Threads {
			for i, ev := range d.Threads[t].Events {
				if got.Threads[t].Events[i] != ev {
					return false
				}
				if len(got.Threads[t].In[i]) != len(d.Threads[t].In[i]) {
					return false
				}
				for j, src := range d.Threads[t].In[i] {
					if got.Threads[t].In[i][j] != src {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickTruncateKeepsConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, 3, 40)
		cc, err := tr.ConsistentCut(nil)
		if err != nil {
			return false
		}
		if err := tr.TruncateTo(cc); err != nil {
			return false
		}
		return tr.Cut().Equal(cc) && tr.IsConsistent(tr.Cut())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	if KindLockAcq.String() != "lock-acq" {
		t.Errorf("KindLockAcq = %q", KindLockAcq.String())
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind has empty String")
	}
}

func TestEventLookup(t *testing.T) {
	tr := buildFig2()
	ev := tr.Event(EventID{1, 2})
	if ev.Kind != KindLockAcq {
		t.Errorf("Event(1,2) = %+v", ev)
	}
	if in := tr.In(EventID{1, 2}); len(in) != 1 || in[0] != (EventID{0, 3}) {
		t.Errorf("In(1,2) = %v", in)
	}
}

func TestNewAtAndForget(t *testing.T) {
	// A trace reconstructed at a cut behaves like one that grew there.
	tr := NewAt(2, Cut{3, 1}, 5)
	if !tr.Cut().Equal(Cut{3, 1}) {
		t.Fatalf("NewAt cut = %v", tr.Cut())
	}
	id := tr.Threads[0].Append(0, Event{Kind: KindReqBegin, Res: 5}, nil)
	if id != (EventID{0, 4}) {
		t.Fatalf("append after NewAt got id %v, want (0,4)", id)
	}
	if ev := tr.Event(id); ev.Kind != KindReqBegin {
		t.Fatalf("Event(%v) = %+v", id, ev)
	}
	// Requests: index 5 is the first present one; stashed ones below work.
	tr.Reqs = append(tr.Reqs, Req{Client: 9})
	if r, ok := tr.Req(5); !ok || r.Client != 9 {
		t.Errorf("Req(5) = %+v %v", r, ok)
	}
	if _, ok := tr.Req(3); ok {
		t.Error("Req(3) found without stash")
	}
	tr.StashReq(3, Req{Client: 7})
	if r, ok := tr.Req(3); !ok || r.Client != 7 {
		t.Errorf("stashed Req(3) = %+v %v", r, ok)
	}
}

func TestForgetPrefix(t *testing.T) {
	tr := buildFig2()
	before := tr.EventCount()
	tr.Forget(Cut{3, 2}, 1)
	if got := tr.Cut(); !got.Equal(Cut{4, 3}) {
		t.Fatalf("frontier changed by Forget: %v", got)
	}
	if tr.EventCount() >= before {
		t.Fatal("Forget dropped nothing")
	}
	// Events beyond the forgotten prefix stay addressable.
	if ev := tr.Event(EventID{0, 4}); ev.Kind != KindLockAcq {
		t.Errorf("Event(0,4) after Forget = %+v", ev)
	}
	if ev := tr.Event(EventID{1, 3}); ev.Kind != KindLockRel {
		t.Errorf("Event(1,3) after Forget = %+v", ev)
	}
	// Requests below the low-water mark are gone; the rest remain.
	if _, ok := tr.Req(0); ok {
		t.Error("forgotten request still present")
	}
	if r, ok := tr.Req(1); !ok || r.Client != 2 {
		t.Errorf("surviving request = %+v %v", r, ok)
	}
	// Appending continues seamlessly.
	id := tr.Threads[1].Append(1, Event{Kind: KindLockAcq, Res: 1}, nil)
	if id != (EventID{1, 4}) {
		t.Errorf("append after Forget id = %v", id)
	}
	// ConsistentCut still works with the collected prefix.
	cc := mustCC(t, tr, Cut{3, 2})
	if !cc.Equal(Cut{4, 4}) {
		t.Errorf("ConsistentCut after Forget = %v", cc)
	}
}

func TestLiveLowWater(t *testing.T) {
	tr := New(1)
	tr.Reqs = []Req{{Client: 1}, {Client: 2}, {Client: 3}}
	tr.Threads[0].Append(0, Event{Kind: KindReqBegin, Res: 0}, nil)
	tr.Threads[0].Append(0, Event{Kind: KindReqEnd, Res: 0}, nil)
	tr.Threads[0].Append(0, Event{Kind: KindReqBegin, Res: 2}, nil)
	tr.Threads[0].Append(0, Event{Kind: KindReqEnd, Res: 2}, nil)
	// Req 0 and 2 done inside cut {4}; req 1 never begun → low water 1.
	if lw := tr.LiveLowWater(Cut{4}); lw != 1 {
		t.Errorf("LiveLowWater = %d, want 1", lw)
	}
	// With everything done, low water is the table end.
	tr2 := New(1)
	tr2.Reqs = []Req{{Client: 1}}
	tr2.Threads[0].Append(0, Event{Kind: KindReqBegin, Res: 0}, nil)
	tr2.Threads[0].Append(0, Event{Kind: KindReqEnd, Res: 0}, nil)
	if lw := tr2.LiveLowWater(Cut{2}); lw != 1 {
		t.Errorf("all-done LiveLowWater = %d, want 1", lw)
	}
}

func TestQuickForgetPreservesSuffixSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, 3, 40)
		ref := randomTrace(rng, 0, 0) // placeholder to keep rng advancing consistently
		_ = ref
		cc, err := tr.ConsistentCut(nil)
		if err != nil {
			return false
		}
		// Remember the suffix events before forgetting.
		type rec struct {
			id trace_id
			ev Event
		}
		var suffix []rec
		full := tr.Cut()
		for t0 := range tr.Threads {
			for c := cc[t0] + 1; c <= full[t0]; c++ {
				id := EventID{Thread: int32(t0), Clock: c}
				suffix = append(suffix, rec{trace_id(id), tr.Event(id)})
			}
		}
		tr.Forget(cc, 0)
		if !tr.Cut().Equal(full) {
			return false
		}
		for _, s := range suffix {
			if tr.Event(EventID(s.id)) != s.ev {
				return false
			}
		}
		cc2, err := tr.ConsistentCut(cc)
		if err != nil {
			return false
		}
		return tr.IsConsistent(cc2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

type trace_id EventID

// The committed-delta apply path must never panic: adversarial cuts yield
// typed errors the replica resolves by re-syncing from a checkpoint.

func TestConsistentCutBaseBeyondFrontier(t *testing.T) {
	tr := buildFig2() // frontier [4 3]
	if _, err := tr.ConsistentCut(Cut{5, 3}); !errors.Is(err, ErrCutBeyondTrace) {
		t.Fatalf("ConsistentCut(beyond frontier) err = %v, want ErrCutBeyondTrace", err)
	}
	if _, err := tr.ConsistentCut(Cut{4, 9}); !errors.Is(err, ErrCutBeyondTrace) {
		t.Fatalf("ConsistentCut(beyond frontier) err = %v, want ErrCutBeyondTrace", err)
	}
}

func TestTruncateToBadCuts(t *testing.T) {
	tr := buildFig2() // frontier [4 3]
	if err := tr.TruncateTo(Cut{5, 3}); !errors.Is(err, ErrCutBeyondTrace) {
		t.Fatalf("TruncateTo(beyond frontier) err = %v, want ErrCutBeyondTrace", err)
	}
	if got := tr.Cut(); !got.Equal(Cut{4, 3}) {
		t.Fatalf("failed truncation mutated the trace: %v", got)
	}
	// A cut inside the garbage-collected prefix is equally unusable.
	tr.Forget(Cut{3, 2}, 0)
	if err := tr.TruncateTo(Cut{2, 2}); !errors.Is(err, ErrCutBeyondTrace) {
		t.Fatalf("TruncateTo(inside collected prefix) err = %v, want ErrCutBeyondTrace", err)
	}
	if got := tr.Cut(); !got.Equal(Cut{4, 3}) {
		t.Fatalf("failed truncation mutated the trace: %v", got)
	}
}

func TestApplyRebaseBeyondLocalTrace(t *testing.T) {
	// A rebasing delta whose cut exceeds what this replica holds (e.g. the
	// replica restarted from an older checkpoint) must be a resyncable
	// ErrCutBeyondTrace, not a crash and not a protocol-bug mismatch.
	tr := New(2)
	tr.Threads[0].Append(0, Event{Kind: KindLockAcq, Res: 1}, nil)
	d := &Delta{Rebase: Cut{3, 0}, Base: Cut{3, 0}, Threads: make([]ThreadLog, 2)}
	err := tr.Apply(d)
	if !errors.Is(err, ErrCutBeyondTrace) {
		t.Fatalf("Apply(rebase beyond trace) err = %v, want ErrCutBeyondTrace", err)
	}
	if errors.Is(err, ErrBaseMismatch) {
		t.Fatal("desync misclassified as protocol-bug base mismatch")
	}
	if got := tr.Cut(); !got.Equal(Cut{1, 0}) {
		t.Fatalf("failed apply mutated the trace: %v", got)
	}
}

func TestApplyRebaseInsideCollectedPrefix(t *testing.T) {
	tr := buildFig2()
	tr.Forget(Cut{3, 2}, 0)
	d := &Delta{Rebase: Cut{2, 1}, Base: Cut{2, 1}, ReqBase: 2, Threads: make([]ThreadLog, 2)}
	if err := tr.Apply(d); !errors.Is(err, ErrCutBeyondTrace) {
		t.Fatalf("Apply(rebase into collected prefix) err = %v, want ErrCutBeyondTrace", err)
	}
}

func TestApplyStaleBaseIsMismatch(t *testing.T) {
	// A stale (non-rebase) base is a protocol bug, not a resync condition.
	tr := buildFig2() // frontier [4 3]
	d := &Delta{Base: Cut{3, 3}, ReqBase: 2, Threads: make([]ThreadLog, 2)}
	err := tr.Apply(d)
	if !errors.Is(err, ErrBaseMismatch) {
		t.Fatalf("Apply(stale base) err = %v, want ErrBaseMismatch", err)
	}
	if errors.Is(err, ErrCutBeyondTrace) {
		t.Fatal("stale base misclassified as resyncable desync")
	}
}

func TestApplyOverlappingReplayIsMismatch(t *testing.T) {
	// Applying the same delta twice (an overlapping replay of the commit
	// stream) must fail the base check the second time.
	tr := New(2)
	d := &Delta{Base: Cut{0, 0}, Threads: make([]ThreadLog, 2)}
	d.Threads[0].Append(0, Event{Kind: KindLockAcq, Res: 1}, nil)
	if err := tr.Apply(d); err != nil {
		t.Fatalf("first Apply: %v", err)
	}
	if err := tr.Apply(d); !errors.Is(err, ErrBaseMismatch) {
		t.Fatalf("second Apply err = %v, want ErrBaseMismatch", err)
	}
}
