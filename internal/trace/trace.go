// Package trace defines Rex's partially ordered execution traces: the
// synchronization events and causal edges a primary records during the
// execute stage, the unit replicas agree on during the agree stage, and the
// script secondaries follow during the follow stage.
//
// A trace holds, per logical thread, an append-only event log. An event is
// identified by (thread, clock) where the clock is the 1-based index of the
// event in its thread's log. Causal edges are stored with their destination
// event. The trace also carries the request payload table (the committed
// trace is the replicated log: it contains both client requests and the
// synchronization events — §6.3) and checkpoint marks (§3.3).
package trace

import (
	"errors"
	"fmt"
)

// ErrCutBeyondTrace reports that a cut references events outside the
// trace's available window — beyond the current frontier or inside the
// garbage-collected prefix. It marks recoverable desynchronization (the
// local trace no longer holds what the cut describes): replicas resolve
// it by re-syncing from a checkpoint (§3.3, §5.2) rather than crashing.
var ErrCutBeyondTrace = errors.New("trace: cut beyond available events")

// EventID identifies a synchronization event: the logical thread it occurred
// on and its 1-based per-thread logical clock.
type EventID struct {
	Thread int32
	Clock  int32
}

func (e EventID) String() string { return fmt.Sprintf("(%d,%d)", e.Thread, e.Clock) }

// Kind classifies a trace event.
type Kind uint8

// Event kinds. The Res and Arg fields of Event are interpreted per kind as
// documented on each constant.
const (
	KindInvalid Kind = iota
	// KindReqBegin marks a worker starting a request. Res = index of the
	// request in the trace's request table.
	KindReqBegin
	// KindReqEnd marks request completion. Res = request-table index,
	// Arg = FNV-64a hash of the response (for result checking, §5.1).
	KindReqEnd
	// KindLockAcq is a successful mutex acquisition. Res = resource id,
	// Arg = resource version (for version checking, §5.1).
	KindLockAcq
	// KindLockRel is a mutex release. Res = resource id, Arg = version.
	KindLockRel
	// KindTryAcq is a successful TryLock. Res/Arg as KindLockAcq.
	KindTryAcq
	// KindTryFail is a failed TryLock (Fig. 4). Res = resource id,
	// Arg = version observed.
	KindTryFail
	// KindRLockAcq / KindRLockRel are reader acquisitions/releases of a
	// readers–writer lock. Res = resource id, Arg = version.
	KindRLockAcq
	KindRLockRel
	// KindWLockAcq / KindWLockRel are writer acquisitions/releases.
	KindWLockAcq
	KindWLockRel
	// KindSemAcq / KindSemRel are semaphore acquire/release. Res = resource
	// id, Arg = version.
	KindSemAcq
	KindSemRel
	// KindCondWaitBegin marks entry to Cond.Wait: it releases the associated
	// lock (acts as the release event in the lock's causal chain).
	// Res = lock resource id, Arg = version.
	KindCondWaitBegin
	// KindCondWake marks return from Cond.Wait: it reacquires the associated
	// lock (acts as the acquire event in the lock's chain) and carries an
	// edge from the signal/broadcast event that enabled it.
	// Res = lock resource id, Arg = version.
	KindCondWake
	// KindCondSignal / KindCondBroadcast are Signal/Broadcast events.
	// Res = condition-variable resource id, Arg = version.
	KindCondSignal
	KindCondBroadcast
	// KindValue records the result of a nondeterministic function
	// (Ctx.Now, Ctx.Rand, ...). Res = a small tag, Arg = the value.
	KindValue
	// KindTimerFire marks a background timer callback starting.
	// Res = timer id, Arg = firing sequence number.
	KindTimerFire
	kindMax
)

var kindNames = [...]string{
	KindInvalid:       "invalid",
	KindReqBegin:      "req-begin",
	KindReqEnd:        "req-end",
	KindLockAcq:       "lock-acq",
	KindLockRel:       "lock-rel",
	KindTryAcq:        "try-acq",
	KindTryFail:       "try-fail",
	KindRLockAcq:      "rlock-acq",
	KindRLockRel:      "rlock-rel",
	KindWLockAcq:      "wlock-acq",
	KindWLockRel:      "wlock-rel",
	KindSemAcq:        "sem-acq",
	KindSemRel:        "sem-rel",
	KindCondWaitBegin: "cond-waitbegin",
	KindCondWake:      "cond-wake",
	KindCondSignal:    "cond-signal",
	KindCondBroadcast: "cond-broadcast",
	KindValue:         "value",
	KindTimerFire:     "timer-fire",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one synchronization event. Its identity (thread, clock) is
// implicit in its position within a thread log.
type Event struct {
	Kind Kind
	Res  uint32
	Arg  uint64
}

// Req is a client request carried in the trace. Class is the request's
// conflict class as assigned at admission (0 = the catch-all class):
// requests in distinct non-zero classes provably touch disjoint state, so
// the recorder elides lock events between them and replay reconstructs
// their schedule from the class id alone (class → thread assignment is
// deterministic, and intra-class order is thread order).
type Req struct {
	Client uint64
	Seq    uint64
	Class  uint32
	Body   []byte
}

// Cut is a per-thread vector of clocks; thread t's events with clock ≤
// Cut[t] are inside the cut.
type Cut []int32

// Clone returns an independent copy of c.
func (c Cut) Clone() Cut {
	o := make(Cut, len(c))
	copy(o, c)
	return o
}

// Covers reports whether event id is inside the cut.
func (c Cut) Covers(id EventID) bool {
	return int(id.Thread) < len(c) && c[id.Thread] >= id.Clock
}

// AtLeast reports whether c includes o pointwise. Cuts of different
// lengths are normalized: a thread missing from either side counts as
// clock 0, so extra threads in o are covered only if their entries are
// zero.
func (c Cut) AtLeast(o Cut) bool {
	for i := range o {
		var ci int32
		if i < len(c) {
			ci = c[i]
		}
		if ci < o[i] {
			return false
		}
	}
	return true
}

// Norm returns c without trailing zero entries. Cuts recorded under
// different thread counts (a token minted before a rebuild, a trace grown
// after a reconfiguration) normalize to the same value when they describe
// the same frontier, making length a non-issue in AtLeast/Equal.
func (c Cut) Norm() Cut {
	n := len(c)
	for n > 0 && c[n-1] == 0 {
		n--
	}
	return c[:n]
}

// Equal reports whether the two cuts are pointwise equal (missing entries
// count as zero).
func (c Cut) Equal(o Cut) bool {
	return c.AtLeast(o) && o.AtLeast(c)
}

// Mark is a checkpoint mark embedded in the trace: when replay reaches Cut,
// the designated secondary snapshots the application (§3.3).
type Mark struct {
	ID  uint64
	Cut Cut
}

// ThreadLog is the event log of one logical thread. Events[i] is the event
// with clock Base+i+1; In[i] holds the source events of the causal edges
// whose destination is that event. Base > 0 after prefix garbage
// collection (§3.3: everything before a checkpoint's cut can be dropped)
// or when the trace was reconstructed from a checkpoint.
type ThreadLog struct {
	Base   int32
	Events []Event
	In     [][]EventID
}

// Append adds an event with its incoming edges and returns its EventID.
func (l *ThreadLog) Append(thread int32, ev Event, in []EventID) EventID {
	l.Events = append(l.Events, ev)
	l.In = append(l.In, in)
	return EventID{Thread: thread, Clock: l.Base + int32(len(l.Events))}
}

// forgetTo drops events with clock ≤ c (clamped to what is present).
func (l *ThreadLog) forgetTo(c int32) {
	drop := int(c - l.Base)
	if drop <= 0 {
		return
	}
	if drop > len(l.Events) {
		drop = len(l.Events)
	}
	l.Events = append([]Event(nil), l.Events[drop:]...)
	l.In = append([][]EventID(nil), l.In[drop:]...)
	l.Base += int32(drop)
}

// Trace is a partially ordered execution trace over a fixed set of logical
// threads. Reqs[i] is the request with global index ReqsBase+i; requests
// below ReqsBase were garbage collected (any still in flight at the
// collection cut live in Stash, populated from a checkpoint's live-request
// list).
type Trace struct {
	Threads  []ThreadLog
	ReqsBase uint64
	Reqs     []Req
	Stash    map[uint64]Req
	Marks    []Mark
}

// New returns an empty trace over n logical threads.
func New(n int) *Trace {
	return &Trace{Threads: make([]ThreadLog, n)}
}

// NewAt returns an empty trace whose frontier is already at cut with
// reqBase requests considered present-but-collected. A replica restoring
// from a checkpoint uses it as the base to apply post-checkpoint deltas
// onto; the region before the cut is never replayed (the replayer starts
// at or beyond it).
func NewAt(n int, cut Cut, reqBase uint64) *Trace {
	tr := New(n)
	for t := 0; t < n; t++ {
		if t < len(cut) {
			tr.Threads[t].Base = cut[t]
		}
	}
	tr.ReqsBase = reqBase
	return tr
}

// StashReq registers a request that predates ReqsBase (a checkpoint's
// live request): it is still replayable via Req().
func (tr *Trace) StashReq(idx uint64, r Req) {
	if tr.Stash == nil {
		tr.Stash = make(map[uint64]Req)
	}
	tr.Stash[idx] = r
}

// Req returns the request with the given global index.
func (tr *Trace) Req(idx uint64) (Req, bool) {
	if idx >= tr.ReqsBase {
		if off := idx - tr.ReqsBase; off < uint64(len(tr.Reqs)) {
			return tr.Reqs[off], true
		}
		return Req{}, false
	}
	r, ok := tr.Stash[idx]
	return r, ok
}

// LiveLowWater returns the smallest request index that may still be
// needed given that all requests completed (req-end) inside cut are done:
// the lowest live request, or the end of the table when everything
// completed.
func (tr *Trace) LiveLowWater(cut Cut) uint64 {
	done := make(map[uint64]bool)
	for t := range tr.Threads {
		l := &tr.Threads[t]
		limit := int32(0)
		if t < len(cut) {
			limit = cut[t]
		}
		for c := l.Base + 1; c <= limit; c++ {
			ev := l.Events[c-1-l.Base]
			if ev.Kind == KindReqEnd {
				done[uint64(ev.Res)] = true
			}
		}
	}
	low := tr.ReqsBase + uint64(len(tr.Reqs))
	for idx := range tr.Stash {
		if !done[idx] && idx < low {
			low = idx
		}
	}
	for i := range tr.Reqs {
		idx := tr.ReqsBase + uint64(i)
		if !done[idx] && idx < low {
			low = idx
		}
	}
	return low
}

// Forget garbage-collects the trace prefix covered by a checkpoint: all
// events with clocks inside cut and all requests below keepReqsFrom
// (typically the checkpoint's lowest live request index). Callers must
// ensure nothing will read inside the forgotten region again — on a
// secondary, that replay has executed past cut.
func (tr *Trace) Forget(cut Cut, keepReqsFrom uint64) {
	for t := range tr.Threads {
		if t < len(cut) {
			tr.Threads[t].forgetTo(cut[t])
		}
	}
	if keepReqsFrom > tr.ReqsBase {
		drop := keepReqsFrom - tr.ReqsBase
		if drop > uint64(len(tr.Reqs)) {
			drop = uint64(len(tr.Reqs))
		}
		tr.Reqs = append([]Req(nil), tr.Reqs[drop:]...)
		tr.ReqsBase += drop
	}
	for idx := range tr.Stash {
		if idx < keepReqsFrom {
			delete(tr.Stash, idx)
		}
	}
	kept := tr.Marks[:0]
	for _, m := range tr.Marks {
		if !cut.AtLeast(m.Cut) || m.Cut.Equal(cut) {
			kept = append(kept, m)
		}
	}
	tr.Marks = kept
}

// NumThreads returns the number of logical threads.
func (tr *Trace) NumThreads() int { return len(tr.Threads) }

// Cut returns the trace's current frontier (all events).
func (tr *Trace) Cut() Cut {
	c := make(Cut, len(tr.Threads))
	for i := range tr.Threads {
		c[i] = tr.Threads[i].Base + int32(len(tr.Threads[i].Events))
	}
	return c
}

// Event returns the event with the given id, which must not have been
// garbage collected.
func (tr *Trace) Event(id EventID) Event {
	l := &tr.Threads[id.Thread]
	return l.Events[id.Clock-1-l.Base]
}

// In returns the incoming edge sources of the event with the given id.
func (tr *Trace) In(id EventID) []EventID {
	l := &tr.Threads[id.Thread]
	return l.In[id.Clock-1-l.Base]
}

// EventCount returns the total number of events.
func (tr *Trace) EventCount() int {
	n := 0
	for i := range tr.Threads {
		n += len(tr.Threads[i].Events)
	}
	return n
}

// EdgeCount returns the total number of causal edges.
func (tr *Trace) EdgeCount() int {
	n := 0
	for i := range tr.Threads {
		for _, in := range tr.Threads[i].In {
			n += len(in)
		}
	}
	return n
}

// ConsistentCut computes the trace's last consistent cut: the maximal cut
// such that for every causal edge whose destination is inside the cut, the
// source is inside the cut too (§3.2). base must be a known-consistent cut
// (use a zero cut for the whole trace); only events beyond base are
// examined, which makes incremental maintenance cheap.
//
// If base lies beyond the trace's frontier — the caller's notion of what is
// committed has desynchronized from the local trace, e.g. across rapid
// promote/demote cycles — ConsistentCut returns ErrCutBeyondTrace so the
// caller can re-sync from a checkpoint instead of crashing.
func (tr *Trace) ConsistentCut(base Cut) (Cut, error) {
	cut := tr.Cut()
	for i := range base {
		if i < len(cut) && cut[i] < base[i] {
			return nil, fmt.Errorf("%w: base cut %v beyond trace frontier %v", ErrCutBeyondTrace, base, cut)
		}
	}
	for {
		changed := false
		for t := range tr.Threads {
			lo := tr.Threads[t].Base
			if t < len(base) && base[t] > lo {
				lo = base[t]
			}
			limit := cut[t]
			for c := lo + 1; c <= limit; c++ {
				violated := false
				for _, src := range tr.Threads[t].In[c-1-tr.Threads[t].Base] {
					if !cut.Covers(src) {
						violated = true
						break
					}
				}
				if violated {
					cut[t] = c - 1
					changed = true
					break
				}
			}
		}
		if !changed {
			return cut, nil
		}
	}
}

// IsConsistent reports whether cut is a consistent cut of the trace.
// Garbage-collected prefixes are assumed consistent (they were covered by
// a checkpoint at a consistent cut).
func (tr *Trace) IsConsistent(cut Cut) bool {
	for t := range tr.Threads {
		l := &tr.Threads[t]
		limit := int32(0)
		if t < len(cut) {
			limit = cut[t]
		}
		if limit > l.Base+int32(len(l.Events)) {
			return false
		}
		for c := l.Base + 1; c <= limit; c++ {
			for _, src := range l.In[c-1-l.Base] {
				if !cut.Covers(src) {
					return false
				}
			}
		}
	}
	return true
}

// TruncateTo discards all events beyond cut, along with marks beyond it.
// Used when a new primary rebases the trace to the last consistent cut
// after a leader change (§3.2).
//
// The request table is deliberately left untouched: its length is part of
// the replicated state (delta base checks compare it), and replicas that
// restored from a checkpoint hold placeholder events from which references
// cannot be recomputed. A request orphaned by the truncation (admitted by
// the old primary but never begun) simply stays in the table unexecuted;
// its client retries at the new primary.
//
// A cut inside the garbage-collected prefix or beyond the frontier means
// the local trace no longer holds the region the cut describes; TruncateTo
// returns ErrCutBeyondTrace (leaving the trace untouched) so the caller can
// re-sync from a checkpoint instead of crashing.
func (tr *Trace) TruncateTo(cut Cut) error {
	clockAt := func(t int) int32 {
		if t < len(cut) {
			return cut[t]
		}
		return 0
	}
	for t := range tr.Threads {
		l := &tr.Threads[t]
		limit := int(clockAt(t) - l.Base)
		if limit < 0 {
			return fmt.Errorf("%w: truncation cut %v inside the collected prefix (thread %d base %d)", ErrCutBeyondTrace, cut, t, l.Base)
		}
		if limit > len(l.Events) {
			return fmt.Errorf("%w: truncation cut %v beyond trace frontier %v", ErrCutBeyondTrace, cut, tr.Cut())
		}
	}
	for t := range tr.Threads {
		l := &tr.Threads[t]
		limit := int(clockAt(t) - l.Base)
		l.Events = l.Events[:limit]
		l.In = l.In[:limit]
	}
	kept := tr.Marks[:0]
	for _, m := range tr.Marks {
		if cut.AtLeast(m.Cut) {
			kept = append(kept, m)
		}
	}
	tr.Marks = kept
	return nil
}

// Stats summarizes a trace for the §4.2/§6.3 measurements.
type Stats struct {
	Events       int
	Edges        int
	Reqs         int
	EncodedBytes int
}

// Stats computes summary statistics; EncodedBytes is filled by callers that
// encode the trace.
func (tr *Trace) Stats() Stats {
	return Stats{Events: tr.EventCount(), Edges: tr.EdgeCount(), Reqs: len(tr.Reqs)}
}
