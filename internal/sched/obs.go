package sched

import (
	"rex/internal/obs"
)

// ReplayObs carries the follow-stage metrics. It lives on the Runtime (set
// once by the owner) and is handed to each Replayer the runtime builds, so
// the series survive replayer rebuilds across promotions and snapshot
// restores. A nil ReplayObs disables collection.
type ReplayObs struct {
	// Released counts replayed sync events whose causal sources had all
	// executed by the time the event was reached (no blocking).
	Released *obs.Counter
	// Waited counts replayed sync events that blocked on at least one
	// causal edge — the paper's "waited events" (Fig. 7).
	Waited *obs.Counter
	// WaitTime is the time a waited event spent blocked in WaitSources.
	WaitTime *obs.Histogram
	// CommitLag is the time from a delta's commit (Extend) until replay
	// has executed everything the delta released (commit→replayed).
	CommitLag *obs.Histogram
	// LagDropped counts committed deltas whose commit→replayed watermark
	// was dropped because the pending queue was saturated (replay more than
	// maxLagQ deltas behind the commit stream). A nonzero value means
	// CommitLag under-reports exactly when lag is worst.
	LagDropped *obs.Counter
	// Elided counts lock operations elided from the trace via
	// conflict-class ownership. Recorded on the execute side but carried
	// here because this struct is the one that lives on the Runtime and
	// survives replayer rebuilds.
	Elided *obs.Counter
}

// NewReplayObs allocates all series.
func NewReplayObs() *ReplayObs {
	return &ReplayObs{
		Released:   obs.NewCounter(),
		Waited:     obs.NewCounter(),
		WaitTime:   obs.NewHistogram(),
		CommitLag:  obs.NewHistogram(),
		LagDropped: obs.NewCounter(),
		Elided:     obs.NewCounter(),
	}
}

// Register exports the series into reg under rex_replay_* names.
func (o *ReplayObs) Register(reg *obs.Registry) {
	reg.RegisterCounter("rex_replay_released_total", o.Released)
	reg.RegisterCounter("rex_replay_waited_total", o.Waited)
	reg.RegisterHistogram("rex_replay_wait_seconds", o.WaitTime)
	reg.RegisterHistogram("rex_replay_commit_lag_seconds", o.CommitLag)
	reg.RegisterCounter("rex_replay_lag_dropped_total", o.LagDropped)
	reg.RegisterCounter("rex_elided_ops_total", o.Elided)
}
