package sched

import (
	"errors"
	"fmt"
	"time"

	"rex/internal/env"
	"rex/internal/trace"
)

// Replayer drives the follow stage on a secondary: it owns the replica's
// copy of the committed trace and releases events to workers only when (a)
// the event is inside the last consistent cut of what has been committed,
// and (b) every causally preceding event has executed (§2.1, §4).
//
// Gating at the last consistent cut means a secondary never executes the
// residue of an inconsistent proposal, so a leader change never needs to
// roll a secondary back — only a demoted primary rolls back (§3.2, §5.2).
type Replayer struct {
	mu   env.Mutex
	grow env.Cond // trace/limit growth, mark completion, abort
	// perThread[t] is signaled when executed[t] advances; edge waiters wait
	// on the source thread's cond to avoid broadcast storms.
	perThread []env.Cond
	progress  env.Cond // any watermark advance (mark coordinator, catch-up)

	tr       *trace.Trace
	limit    trace.Cut // last consistent cut of the applied deltas
	executed trace.Cut
	aborted  bool
	marks    []trace.Mark // pending checkpoint marks, oldest first

	waitedEvents   uint64 // events that blocked on at least one causal edge
	replayedEvents uint64

	// skipEdgeWaits, when set, makes WaitSources release every event
	// immediately instead of waiting for its causal predecessors —
	// deliberately breaking the Determinism leg of the Rex contract. It
	// exists only so the chaos checker can prove it catches a broken
	// replayer (set via Runtime.UnsafeSkipEdgeWaits; never in production).
	skipEdgeWaits bool

	e    env.Env
	ob   *ReplayObs // nil disables metric collection
	lagQ []lagMark  // commit-time watermarks pending execution, oldest first
}

// lagMark remembers when a committed delta's release frontier was reached,
// so Commit can measure commit→replayed lag once replay catches up to it.
type lagMark struct {
	cut trace.Cut
	at  time.Duration
}

// maxLagQ bounds the pending-watermark queue; when replay falls far behind
// the commit stream, further deltas simply go unmeasured.
const maxLagQ = 1024

// NewReplayer wraps tr for replay. Events inside base are considered
// already executed (restored from a checkpoint); base must be a consistent
// cut of tr. A base beyond tr's frontier yields ErrCutBeyondTrace.
func NewReplayer(e env.Env, tr *trace.Trace, base trace.Cut) (*Replayer, error) {
	n := tr.NumThreads()
	r := &Replayer{
		mu:       e.NewMutex(),
		tr:       tr,
		executed: make(trace.Cut, n),
		e:        e,
	}
	for t := 0; t < n; t++ {
		if t < len(base) {
			r.executed[t] = base[t]
		}
	}
	limit, err := tr.ConsistentCut(r.executed.Clone())
	if err != nil {
		return nil, err
	}
	r.limit = limit
	r.grow = e.NewCond(r.mu)
	r.progress = e.NewCond(r.mu)
	for t := 0; t < n; t++ {
		r.perThread = append(r.perThread, e.NewCond(r.mu))
	}
	// Marks already in the trace beyond base are still pending.
	for _, m := range tr.Marks {
		if !base.AtLeast(m.Cut) {
			r.marks = append(r.marks, m)
		}
	}
	return r, nil
}

// Extend applies a committed delta to the trace, advances the release
// frontier to the new last consistent cut, and wakes blocked workers.
//
// On a replayer that is already aborted it returns ErrReplayerAborted
// without touching the trace. If the delta's cuts have desynchronized from
// the local trace (ErrCutBeyondTrace from Apply or ConsistentCut), the
// replayer aborts itself — workers must not keep executing against a trace
// whose committed extension it can no longer follow — and the error is
// returned for the owner to resolve by re-syncing from a checkpoint.
func (r *Replayer) Extend(d *trace.Delta) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.aborted {
		return ErrReplayerAborted
	}
	if d.Rebase != nil && !d.Rebase.AtLeast(r.limit) {
		// The rebase would cut below the release frontier: workers may
		// already have executed events the new primary discarded. Only a
		// checkpoint restore can realign us.
		r.abortLocked()
		return fmt.Errorf("%w: rebase cut %v below release frontier %v",
			trace.ErrCutBeyondTrace, d.Rebase, r.limit)
	}
	if err := r.tr.Apply(d); err != nil {
		if errors.Is(err, trace.ErrCutBeyondTrace) {
			r.abortLocked()
		}
		return err
	}
	limit, err := r.tr.ConsistentCut(r.limit)
	if err != nil {
		r.abortLocked()
		return err
	}
	r.limit = limit
	if r.ob != nil && !r.executed.AtLeast(r.limit) {
		if len(r.lagQ) < maxLagQ {
			r.lagQ = append(r.lagQ, lagMark{cut: r.limit.Clone(), at: r.e.Now()})
		} else if r.ob.LagDropped != nil {
			r.ob.LagDropped.Inc()
		}
	}
	r.marks = append(r.marks, d.Marks...)
	r.grow.Broadcast()
	return nil
}

// Trace returns the underlying trace. Callers must not mutate it while
// replay is running.
func (r *Replayer) Trace() *trace.Trace { return r.tr }

// Next blocks until thread t's next event is released for execution and
// returns it. ok is false if the replayer was aborted. Events beyond the
// oldest pending checkpoint mark are held back until the mark completes, so
// every worker pauses exactly at the mark's cut (§3.3).
func (r *Replayer) Next(t int32) (trace.Event, trace.EventID, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.aborted {
			return trace.Event{}, trace.EventID{}, false
		}
		next := r.executed[t] + 1
		if next <= r.limit[t] && !r.gatedLocked(t, next) {
			id := trace.EventID{Thread: t, Clock: next}
			return r.tr.Event(id), id, true
		}
		r.grow.Wait()
	}
}

// gatedLocked reports whether executing (t, clock) would cross the oldest
// pending checkpoint mark.
func (r *Replayer) gatedLocked(t int32, clock int32) bool {
	if len(r.marks) == 0 {
		return false
	}
	cut := r.marks[0].Cut
	return int(t) < len(cut) && clock > cut[t]
}

// In returns the incoming edges of an event previously returned by Next.
func (r *Replayer) In(id trace.EventID) []trace.EventID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tr.In(id)
}

// WaitSources blocks until every source event in `in` has executed. It
// returns false if the replayer was aborted. It also maintains the paper's
// "waited events" statistic: the number of events that had to wait for a
// causal edge (Fig. 7).
func (r *Replayer) WaitSources(in []trace.EventID) bool {
	if r.skipEdgeWaits {
		return true // injected bug: release before causal predecessors
	}
	if len(in) == 0 {
		if r.ob != nil {
			r.ob.Released.Inc()
		}
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	waited := false
	var start time.Duration
	for _, src := range in {
		for r.executed[src.Thread] < src.Clock {
			if r.aborted {
				return false
			}
			if !waited {
				waited = true
				start = r.e.Now()
			}
			r.perThread[src.Thread].Wait()
		}
	}
	if r.ob != nil {
		if waited {
			r.ob.Waited.Inc()
			r.ob.WaitTime.Observe(r.e.Now() - start)
		} else {
			r.ob.Released.Inc()
		}
	}
	if waited {
		r.waitedEvents++
	}
	return true
}

// Commit marks thread t's next event as executed and wakes its waiters.
// Wrappers call it after performing the real operation, so an edge wait
// completing implies the source's real effect has happened.
func (r *Replayer) Commit(t int32) {
	r.mu.Lock()
	r.executed[t]++
	r.replayedEvents++
	for len(r.lagQ) > 0 && r.executed.AtLeast(r.lagQ[0].cut) {
		r.ob.CommitLag.Observe(r.e.Now() - r.lagQ[0].at)
		r.lagQ = r.lagQ[1:]
	}
	r.perThread[t].Broadcast()
	r.progress.Broadcast()
	r.mu.Unlock()
}

// Executed returns the per-thread executed watermarks.
func (r *Replayer) Executed() trace.Cut {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.executed.Clone()
}

// Limit returns the current release frontier (the last consistent cut of
// the committed trace).
func (r *Replayer) Limit() trace.Cut {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.limit.Clone()
}

// CaughtUp reports whether every released event has executed.
func (r *Replayer) CaughtUp() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.executed.AtLeast(r.limit)
}

// WaitCaughtUp blocks until every released event has executed (used at
// promotion) or the replayer is aborted; it reports success.
func (r *Replayer) WaitCaughtUp() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for !r.executed.AtLeast(r.limit) {
		if r.aborted {
			return false
		}
		r.progress.Wait()
	}
	return !r.aborted
}

// WaitExecutedAtLeast blocks until replay has executed at least cut on
// every thread — the admission gate for a follower read carrying a
// session token — or until timeout elapses or the replayer aborts. It
// reports whether the frontier was reached.
//
// env.Cond has no timed wait, so the deadline is enforced by a watchdog
// task spawned only on the slow path: it sleeps the full timeout and
// broadcasts progress so the wait loop re-checks the clock.
func (r *Replayer) WaitExecutedAtLeast(cut trace.Cut, timeout time.Duration) bool {
	// Normalize: a token minted before a resync/rebuild can carry a cut
	// sized for a different thread count. Trailing zeros are trivially
	// covered; a non-zero entry for a thread this trace does not have can
	// never be covered, so fail fast instead of stalling until timeout.
	cut = cut.Norm()
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(cut) > len(r.executed) {
		return false
	}
	if r.executed.AtLeast(cut) {
		return true // fast path: no watchdog, no waiting
	}
	if r.aborted || timeout <= 0 {
		return false
	}
	deadline := r.e.Now() + timeout
	r.e.Go("replay-wait-watchdog", func() {
		r.e.Sleep(timeout)
		r.mu.Lock()
		r.progress.Broadcast()
		r.mu.Unlock()
	})
	for !r.executed.AtLeast(cut) {
		if r.aborted || r.e.Now() >= deadline {
			return false
		}
		r.progress.Wait()
	}
	return true
}

// PendingMark returns the oldest pending checkpoint mark, if any.
func (r *Replayer) PendingMark() (trace.Mark, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.marks) == 0 {
		return trace.Mark{}, false
	}
	return r.marks[0], true
}

// WaitMarkReached blocks until replay has executed exactly up to the given
// mark's cut on every thread (all workers paused at the mark), or the
// replayer is aborted; it reports success.
func (r *Replayer) WaitMarkReached(m trace.Mark) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for !r.executed.AtLeast(m.Cut) {
		if r.aborted {
			return false
		}
		r.progress.Wait()
	}
	return !r.aborted
}

// CompleteMark retires the oldest pending mark (which must match id) and
// releases the workers held at its cut.
func (r *Replayer) CompleteMark(id uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.marks) == 0 || r.marks[0].ID != id {
		panic("sched: CompleteMark out of order")
	}
	r.marks = r.marks[1:]
	r.grow.Broadcast()
}

// Abort unblocks every waiter; Next and WaitSources return false.
func (r *Replayer) Abort() {
	r.mu.Lock()
	r.abortLocked()
	r.mu.Unlock()
}

// Aborted reports whether the replayer has been aborted.
func (r *Replayer) Aborted() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.aborted
}

func (r *Replayer) abortLocked() {
	r.aborted = true
	r.grow.Broadcast()
	r.progress.Broadcast()
	for _, c := range r.perThread {
		c.Broadcast()
	}
}

// ReqBody returns the payload of request idx from the trace's table.
func (r *Replayer) ReqBody(idx uint64) (trace.Req, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tr.Req(idx)
}

// IndexedReq pairs a request with its global index in the trace's table.
type IndexedReq struct {
	Idx uint64
	Req trace.Req
}

// LiveReqs returns the requests whose completion (req-end) is not inside
// cut: the in-flight and not-yet-started requests a checkpoint at cut must
// carry so a replica restored from it can replay them (§3.3). Requests in
// the garbage-collected prefix were either completed (dropped) or carried
// forward in the stash.
func (r *Replayer) LiveReqs(cut trace.Cut) []IndexedReq {
	r.mu.Lock()
	defer r.mu.Unlock()
	done := make(map[uint64]bool)
	for t := range r.tr.Threads {
		l := &r.tr.Threads[t]
		limit := int32(0)
		if t < len(cut) {
			limit = cut[t]
		}
		for c := l.Base + 1; c <= limit; c++ {
			ev := l.Events[c-1-l.Base]
			if ev.Kind == trace.KindReqEnd {
				done[uint64(ev.Res)] = true
			}
		}
	}
	var live []IndexedReq
	for idx, req := range r.tr.Stash {
		if !done[idx] {
			live = append(live, IndexedReq{Idx: idx, Req: req})
		}
	}
	for i, req := range r.tr.Reqs {
		idx := r.tr.ReqsBase + uint64(i)
		if !done[idx] {
			live = append(live, IndexedReq{Idx: idx, Req: req})
		}
	}
	sortLive(live)
	return live
}

func sortLive(live []IndexedReq) {
	// Insertion sort by index (live sets are small); keeps snapshot bytes
	// deterministic despite map iteration over the stash.
	for i := 1; i < len(live); i++ {
		for j := i; j > 0 && live[j-1].Idx > live[j].Idx; j-- {
			live[j-1], live[j] = live[j], live[j-1]
		}
	}
}

// ForgetThrough garbage-collects the trace prefix covered by a completed
// checkpoint (§3.3), clamped to what replay has already executed so no
// future read lands in the collected region.
func (r *Replayer) ForgetThrough(cut trace.Cut) {
	r.mu.Lock()
	defer r.mu.Unlock()
	clamped := cut.Clone()
	for t := range clamped {
		if t < len(r.executed) && r.executed[t] < clamped[t] {
			clamped[t] = r.executed[t]
		}
	}
	r.tr.Forget(clamped, r.tr.LiveLowWater(clamped))
}

// Stats returns cumulative replay statistics: total events replayed and how
// many of them blocked on a causal edge.
func (r *Replayer) Stats() (replayed, waited uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.replayedEvents, r.waitedEvents
}
