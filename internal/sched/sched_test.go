package sched

import (
	"errors"
	"testing"
	"time"

	"rex/internal/env"
	"rex/internal/sim"
	"rex/internal/trace"
)

func TestRecorderCollectsDeltasInOrder(t *testing.T) {
	e := sim.New(1)
	e.Run(func() {
		rt := NewRuntime(e, 2, ModeNative)
		rt.StartRecord(nil, 0)
		w0, w1 := rt.Worker(0), rt.Worker(1)
		rec := rt.Recorder()

		idx := rec.AddReq(trace.Req{Client: 1, Seq: 1, Body: []byte("a")})
		if idx != 0 {
			t.Fatalf("first req index = %d", idx)
		}
		w0.Record(trace.Event{Kind: trace.KindReqBegin, Res: uint32(idx)}, nil)
		d1 := rec.Collect()
		if d1.EventCount() != 1 || len(d1.Reqs) != 1 || !d1.Base.Equal(trace.Cut{0, 0}) {
			t.Fatalf("delta1 = %+v", d1)
		}
		w0.Record(trace.Event{Kind: trace.KindReqEnd, Res: uint32(idx)}, nil)
		w1.Record(trace.Event{Kind: trace.KindLockAcq, Res: 5, Arg: 1}, []trace.EventID{{Thread: 0, Clock: 1}})
		d2 := rec.Collect()
		if !d2.Base.Equal(trace.Cut{1, 0}) || d2.ReqBase != 1 {
			t.Fatalf("delta2 base = %v reqbase = %d", d2.Base, d2.ReqBase)
		}
		if d2.EventCount() != 2 || d2.EdgeCount() != 1 {
			t.Fatalf("delta2 events=%d edges=%d", d2.EventCount(), d2.EdgeCount())
		}
		// Deltas chain onto a trace.
		tr := trace.New(2)
		if err := tr.Apply(d1); err != nil {
			t.Fatal(err)
		}
		if err := tr.Apply(d2); err != nil {
			t.Fatal(err)
		}
		if tr.EventCount() != 3 {
			t.Fatalf("trace events = %d", tr.EventCount())
		}
		// An empty collect returns an empty (but valid) delta.
		d3 := rec.Collect()
		if !d3.Empty() {
			t.Fatalf("expected empty delta, got %+v", d3)
		}
	})
}

func TestRecorderStartFromCut(t *testing.T) {
	e := sim.New(1)
	e.Run(func() {
		rt := NewRuntime(e, 2, ModeNative)
		rt.StartRecord(trace.Cut{5, 3}, 7)
		if got := rt.Worker(0).Clock(); got != 5 {
			t.Errorf("worker 0 clock = %d, want 5", got)
		}
		idx := rt.Recorder().AddReq(trace.Req{})
		if idx != 7 {
			t.Errorf("req index = %d, want 7", idx)
		}
		rt.Worker(0).Record(trace.Event{Kind: trace.KindReqBegin, Res: uint32(idx)}, nil)
		d := rt.Recorder().Collect()
		if !d.Base.Equal(trace.Cut{5, 3}) || d.ReqBase != 7 {
			t.Errorf("delta base=%v reqBase=%d", d.Base, d.ReqBase)
		}
	})
}

func mustReplayer(t *testing.T, e env.Env, tr *trace.Trace, base trace.Cut) *Replayer {
	t.Helper()
	rep, err := NewReplayer(e, tr, base)
	if err != nil {
		t.Fatalf("NewReplayer: %v", err)
	}
	return rep
}

// buildTwoThreadTrace: t0: A(1) B(2); t1: C(1) depends on (0,2).
func buildTwoThreadTrace() *trace.Trace {
	tr := trace.New(2)
	tr.Threads[0].Append(0, trace.Event{Kind: trace.KindLockAcq, Res: 1, Arg: 1}, nil)
	tr.Threads[0].Append(0, trace.Event{Kind: trace.KindLockRel, Res: 1, Arg: 2}, nil)
	tr.Threads[1].Append(1, trace.Event{Kind: trace.KindLockAcq, Res: 1, Arg: 3}, []trace.EventID{{Thread: 0, Clock: 2}})
	return tr
}

func TestReplayerWaitSourcesBlocksUntilCommit(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		rep := mustReplayer(t, e, buildTwoThreadTrace(), nil)
		order := []string{}
		g := env.NewGroup(e)
		g.Add(2)
		e.Go("t1", func() {
			defer g.Done()
			ev, id, ok := rep.Next(1)
			if !ok || ev.Kind != trace.KindLockAcq {
				t.Errorf("t1 Next = %v %v %v", ev, id, ok)
				return
			}
			if !rep.WaitSources(rep.In(id)) {
				t.Error("t1 aborted")
				return
			}
			order = append(order, "t1")
			rep.Commit(1)
		})
		e.Go("t0", func() {
			defer g.Done()
			for i := 0; i < 2; i++ {
				_, id, ok := rep.Next(0)
				if !ok {
					t.Error("t0 aborted")
					return
				}
				rep.WaitSources(rep.In(id))
				e.Sleep(time.Millisecond) // ensure t1 is already waiting
				order = append(order, "t0")
				rep.Commit(0)
			}
		})
		g.Wait()
		if len(order) != 3 || order[2] != "t1" {
			t.Errorf("execution order = %v, want t1 last", order)
		}
		_, waited := rep.Stats()
		if waited != 1 {
			t.Errorf("waited events = %d, want 1", waited)
		}
		if !rep.CaughtUp() {
			t.Error("not caught up after full replay")
		}
	})
}

func TestReplayerGatesBeyondLimit(t *testing.T) {
	// An event whose causal source is missing from the trace must be held
	// back by the last-consistent-cut gate.
	e := sim.New(2)
	e.Run(func() {
		tr := trace.New(2)
		tr.Threads[1].Append(1, trace.Event{Kind: trace.KindLockAcq, Res: 1}, []trace.EventID{{Thread: 0, Clock: 1}})
		rep := mustReplayer(t, e, tr, nil)
		if limit := rep.Limit(); limit[1] != 0 {
			t.Fatalf("limit = %v, want thread 1 gated at 0", limit)
		}
		got := false
		e.Go("t1", func() {
			_, _, ok := rep.Next(1)
			got = ok
		})
		e.Sleep(time.Millisecond)
		if got {
			t.Fatal("gated event was released")
		}
		// Extending the trace with the missing source releases it.
		d := &trace.Delta{Base: trace.Cut{0, 1}, Threads: make([]trace.ThreadLog, 2)}
		d.Threads[0].Append(0, trace.Event{Kind: trace.KindLockRel, Res: 1}, nil)
		if err := rep.Extend(d); err != nil {
			t.Fatal(err)
		}
		e.Go("t0", func() {
			rep.Next(0)
			rep.Commit(0)
		})
		e.Sleep(time.Millisecond)
		if !got {
			t.Fatal("event not released after its source arrived and executed")
		}
	})
}

func TestReplayerMarkGatingAndCompletion(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		tr := buildTwoThreadTrace()
		tr.Marks = append(tr.Marks, trace.Mark{ID: 9, Cut: trace.Cut{2, 1}})
		rep := mustReplayer(t, e, tr, nil)
		executedAll := false
		e.Go("workers", func() {
			for i := 0; i < 2; i++ {
				_, id, _ := rep.Next(0)
				rep.WaitSources(rep.In(id))
				rep.Commit(0)
			}
			_, id, _ := rep.Next(1)
			rep.WaitSources(rep.In(id))
			rep.Commit(1)
			executedAll = true
		})
		e.Sleep(time.Millisecond)
		// Everything is inside the mark's cut here, so replay runs to the
		// cut; add one more event beyond the cut and check it gates.
		d := &trace.Delta{Base: trace.Cut{2, 1}, Threads: make([]trace.ThreadLog, 2)}
		d.Threads[0].Append(0, trace.Event{Kind: trace.KindLockAcq, Res: 1, Arg: 4}, nil)
		if err := rep.Extend(d); err != nil {
			t.Fatal(err)
		}
		released := false
		e.Go("t0-beyond", func() {
			_, _, ok := rep.Next(0)
			released = ok
		})
		e.Sleep(time.Millisecond)
		if !executedAll {
			t.Fatal("events inside the mark cut did not execute")
		}
		if released {
			t.Fatal("event beyond a pending mark was released")
		}
		m, ok := rep.PendingMark()
		if !ok || m.ID != 9 {
			t.Fatalf("PendingMark = %v %v", m, ok)
		}
		if !rep.WaitMarkReached(m) {
			t.Fatal("mark never reached")
		}
		rep.CompleteMark(9)
		e.Sleep(time.Millisecond)
		if !released {
			t.Fatal("event not released after mark completion")
		}
	})
}

func TestReplayerAbortUnblocksEverything(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		tr := trace.New(1)
		rep := mustReplayer(t, e, tr, nil)
		results := e.NewChan(0)
		e.Go("w", func() {
			_, _, ok := rep.Next(0) // blocks: empty trace
			results.Send(ok)
		})
		e.Sleep(time.Millisecond)
		rep.Abort()
		v, _ := results.Recv()
		if v.(bool) {
			t.Error("Next returned ok after abort")
		}
		if rep.WaitCaughtUp() {
			t.Error("WaitCaughtUp reported success after abort")
		}
	})
}

func TestExtendRebaseBelowLimitAbortsNotPanics(t *testing.T) {
	// A rebasing delta that cuts below the release frontier (the replica's
	// workers may already have executed into the discarded region) must
	// abort the replayer with a typed resync error — this is the exact
	// shape that used to panic in ConsistentCut under promote/demote churn.
	e := sim.New(2)
	e.Run(func() {
		tr := buildTwoThreadTrace() // frontier [2 1], fully consistent
		rep := mustReplayer(t, e, tr, nil)
		d := &trace.Delta{Rebase: trace.Cut{1, 0}, Base: trace.Cut{1, 0}, Threads: make([]trace.ThreadLog, 2)}
		err := rep.Extend(d)
		if !errors.Is(err, trace.ErrCutBeyondTrace) {
			t.Fatalf("Extend err = %v, want ErrCutBeyondTrace", err)
		}
		if !rep.Aborted() {
			t.Fatal("replayer not aborted after desynchronized rebase")
		}
		if _, _, ok := rep.Next(0); ok {
			t.Fatal("Next released an event on an aborted replayer")
		}
		if err := rep.Extend(d); !errors.Is(err, ErrReplayerAborted) {
			t.Fatalf("Extend on aborted replayer err = %v, want ErrReplayerAborted", err)
		}
	})
}

func TestExtendRebaseBeyondTraceAborts(t *testing.T) {
	// Rebase beyond the local frontier: the replica restored from an old
	// checkpoint and the stream has moved on. Must be resyncable.
	e := sim.New(2)
	e.Run(func() {
		tr := trace.New(2)
		rep := mustReplayer(t, e, tr, nil)
		d := &trace.Delta{Rebase: trace.Cut{5, 5}, Base: trace.Cut{5, 5}, Threads: make([]trace.ThreadLog, 2)}
		if err := rep.Extend(d); !errors.Is(err, trace.ErrCutBeyondTrace) {
			t.Fatalf("Extend err = %v, want ErrCutBeyondTrace", err)
		}
		if !rep.Aborted() {
			t.Fatal("replayer not aborted")
		}
	})
}

func TestExtendLagQueueSaturationCounted(t *testing.T) {
	// When replay lags more than maxLagQ deltas behind the commit stream,
	// further watermarks are dropped — that loss must be counted, not
	// silent.
	e := sim.New(1)
	e.Run(func() {
		tr := trace.New(1)
		rep := mustReplayer(t, e, tr, nil)
		ob := NewReplayObs()
		rep.ob = ob
		base := int32(0)
		for i := 0; i < maxLagQ+7; i++ {
			d := &trace.Delta{Base: trace.Cut{base}, Threads: make([]trace.ThreadLog, 1)}
			d.Threads[0].Append(0, trace.Event{Kind: trace.KindLockAcq, Res: 1}, nil)
			if err := rep.Extend(d); err != nil {
				t.Fatalf("Extend %d: %v", i, err)
			}
			base++
		}
		if got := ob.LagDropped.Value(); got != 7 {
			t.Fatalf("LagDropped = %d, want 7", got)
		}
	})
}

func TestLiveReqs(t *testing.T) {
	e := sim.New(1)
	e.Run(func() {
		tr := trace.New(1)
		tr.Reqs = []trace.Req{{Client: 1, Seq: 1}, {Client: 2, Seq: 1}, {Client: 3, Seq: 1}}
		tr.Threads[0].Append(0, trace.Event{Kind: trace.KindReqBegin, Res: 0}, nil)
		tr.Threads[0].Append(0, trace.Event{Kind: trace.KindReqEnd, Res: 0}, nil)
		tr.Threads[0].Append(0, trace.Event{Kind: trace.KindReqBegin, Res: 1}, nil)
		rep := mustReplayer(t, e, tr, nil)
		// Cut covers the first request's end only: reqs 1 (begun, not
		// ended) and 2 (never begun) are live.
		live := rep.LiveReqs(trace.Cut{2})
		if len(live) != 2 || live[0].Idx != 1 || live[1].Idx != 2 {
			t.Errorf("LiveReqs = %+v", live)
		}
	})
}

func TestNativeWorkerMode(t *testing.T) {
	e := sim.New(1)
	e.Run(func() {
		rt := NewRuntime(e, 1, ModeNative)
		rt.StartRecord(nil, 0)
		w := rt.Worker(0)
		if w.Mode() != ModeRecord {
			t.Errorf("worker mode = %v, want record", w.Mode())
		}
		nw := rt.NativeWorker()
		if nw.Mode() != ModeNative {
			t.Errorf("native worker mode = %v", nw.Mode())
		}
		w.Native(func() {
			if w.Mode() != ModeNative {
				t.Error("mode inside Native scope not native")
			}
		})
		if w.Mode() != ModeRecord {
			t.Error("mode after Native scope not record")
		}
	})
}

func TestVersionSlotsSurviveRegistryGrowth(t *testing.T) {
	e := sim.New(1)
	e.Run(func() {
		testVersionSlots(t, e)
	})
}

func testVersionSlots(t *testing.T, e *sim.Env) {
	rt := NewRuntime(e, 1, ModeNative)
	id1 := rt.RegisterResource("first")
	p1 := rt.Version(id1)
	*p1 = 42
	// Register many more resources: the slice must not invalidate p1.
	for i := 0; i < 1000; i++ {
		rt.RegisterResource("more")
	}
	if *rt.Version(id1) != 42 {
		t.Error("version slot lost after registry growth")
	}
	*p1 = 43
	snap := rt.VersionsSnapshot()
	if snap[id1] != 43 {
		t.Errorf("snapshot[%d] = %d, want 43", id1, snap[id1])
	}
	snap[id1] = 99
	rt.RestoreVersions(snap)
	if *p1 != 99 {
		t.Errorf("restore did not reach the wrapper's pointer: %d", *p1)
	}
}

func TestPruneEdgeRespectsDisableFlag(t *testing.T) {
	e := sim.New(1)
	e.Run(func() { testPruneEdgeFlag(t, e) })
}

func testPruneEdgeFlag(t *testing.T, e *sim.Env) {
	rt := NewRuntime(e, 2, ModeNative)
	rt.StartRecord(nil, 0)
	w := rt.Worker(0)
	src := trace.EventID{Thread: 1, Clock: 1}
	if w.PruneEdge(src) {
		t.Fatal("first observation pruned")
	}
	if !w.PruneEdge(src) {
		t.Fatal("second observation not pruned")
	}
	rt2 := NewRuntime(e, 2, ModeNative)
	rt2.DisablePruning = true
	rt2.StartRecord(nil, 0)
	w2 := rt2.Worker(0)
	if w2.PruneEdge(src) {
		t.Fatal("pruned on first observation with pruning disabled")
	}
	if w2.PruneEdge(src) {
		t.Fatal("pruned with pruning disabled")
	}
}

func TestDivergenceErrorMessage(t *testing.T) {
	err := &DivergenceError{
		Thread: 3, Clock: 17,
		Expected: trace.Event{Kind: trace.KindLockAcq, Res: 4, Arg: 9},
		GotKind:  trace.KindLockRel, GotRes: 4, GotArg: 8,
		Resource: "shard-4", Detail: "test",
	}
	msg := err.Error()
	for _, want := range []string{"thread 3", "clock 17", "lock-acq", "lock-rel", "shard-4"} {
		if !contains(msg, want) {
			t.Errorf("error message missing %q: %s", want, msg)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestWaitExecutedAtLeast(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		rep := mustReplayer(t, e, buildTwoThreadTrace(), nil)
		// Fast path: the zero cut is already executed.
		if !rep.WaitExecutedAtLeast(nil, 0) {
			t.Fatal("zero cut should be satisfied immediately")
		}
		// Timeout path: nothing executes, the wait must give up at the
		// deadline rather than block forever.
		t0 := e.Now()
		if rep.WaitExecutedAtLeast(trace.Cut{2, 1}, 50*time.Millisecond) {
			t.Fatal("unexecuted cut reported reached")
		}
		if d := e.Now() - t0; d < 50*time.Millisecond {
			t.Fatalf("timed out after %v, want >= 50ms", d)
		}
		// Progress path: a waiter is released as soon as replay covers the
		// cut, well before its timeout.
		done := e.NewChan(1)
		e.Go("waiter", func() {
			done.Send(rep.WaitExecutedAtLeast(trace.Cut{2, 1}, 5*time.Second))
		})
		e.Go("executor", func() {
			for _, tid := range []int32{0, 0, 1} {
				_, id, ok := rep.Next(tid)
				if !ok {
					t.Error("replayer aborted")
					return
				}
				rep.WaitSources(rep.In(id))
				rep.Commit(tid)
			}
		})
		v, _ := done.Recv()
		if !v.(bool) {
			t.Fatal("waiter not released by progress")
		}
		// Aborted replayers fail the wait.
		rep.Abort()
		if rep.WaitExecutedAtLeast(trace.Cut{9, 9}, time.Millisecond) {
			t.Fatal("aborted replayer satisfied a wait")
		}
	})
}
