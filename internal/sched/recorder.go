package sched

import (
	"sync/atomic"

	"rex/internal/env"
	"rex/internal/trace"
)

// Recorder accumulates the primary's trace growth between proposals.
// Workers append to per-thread buffers under per-thread locks (the paper's
// asynchronous logging, §3.2); the proposal pump drains everything new with
// Collect. Because Collect snapshots the threads without a global barrier,
// a collected delta may be an inconsistent cut — consumers use the last
// consistent cut as its meaning.
type Recorder struct {
	threads []*threadBuf

	reqMu   env.Mutex
	reqs    []trace.Req
	marks   []trace.Mark
	reqBase uint64 // global index of reqs[0]
	nextReq uint64

	// Collection state (owned by the single collector).
	collected trace.Cut

	// notify, when set, fires edge-triggered when work lands for the
	// collector: at most once per Collect cycle for events (armed re-arms
	// at the top of Collect), and on every request/mark admission (those
	// want a prompt proposal). It powers the primary's demand-driven
	// propose pump; it must be cheap and non-blocking.
	notify func()
	armed  atomic.Bool
}

type threadBuf struct {
	mu     env.Mutex
	events []trace.Event
	in     [][]trace.EventID
	base   int32 // clock of the first buffered event minus one
}

// NewRecorder returns a recorder for n threads whose trace resumes from cut
// with the request table already holding reqBase entries.
func NewRecorder(e env.Env, n int, cut trace.Cut, reqBase uint64) *Recorder {
	r := &Recorder{
		reqMu:     e.NewMutex(),
		reqBase:   reqBase,
		nextReq:   reqBase,
		collected: make(trace.Cut, n),
	}
	for t := 0; t < n; t++ {
		base := int32(0)
		if t < len(cut) {
			base = cut[t]
		}
		r.collected[t] = base
		r.threads = append(r.threads, &threadBuf{mu: e.NewMutex(), base: base})
	}
	return r
}

// SetNotify installs fn as the collector wake-up hook and arms it. Call
// before recording begins (it is not synchronized against Append).
func (r *Recorder) SetNotify(fn func()) {
	r.notify = fn
	r.armed.Store(true)
}

// maybeNotify fires the hook once per armed cycle. The fast path (already
// fired, or no hook) is a single atomic load.
func (r *Recorder) maybeNotify() {
	if r.notify != nil && r.armed.Load() && r.armed.CompareAndSwap(true, false) {
		r.notify()
	}
}

// Append adds an event (with its incoming edges) to thread t's buffer.
func (r *Recorder) Append(t int32, ev trace.Event, in []trace.EventID) {
	b := r.threads[t]
	b.mu.Lock()
	b.events = append(b.events, ev)
	b.in = append(b.in, in)
	b.mu.Unlock()
	r.maybeNotify()
}

// AddReq appends a request payload to the table and returns its global
// index. The caller must add the request before dispatching it to a worker
// so that a collected req-begin event always has its payload in the same or
// an earlier delta.
func (r *Recorder) AddReq(req trace.Req) uint64 {
	r.reqMu.Lock()
	idx := r.nextReq
	r.nextReq++
	r.reqs = append(r.reqs, req)
	r.reqMu.Unlock()
	r.maybeNotify()
	return idx
}

// AddMark appends a checkpoint mark. The caller must hold all workers
// paused at the mark's cut when calling this (§3.3).
func (r *Recorder) AddMark(m trace.Mark) {
	r.reqMu.Lock()
	r.marks = append(r.marks, m)
	r.reqMu.Unlock()
	r.maybeNotify()
}

// PendingEvents reports how many recorded events have not been collected
// yet; the primary's flow control uses it to bound speculation.
func (r *Recorder) PendingEvents() int {
	n := 0
	for _, b := range r.threads {
		b.mu.Lock()
		n += len(b.events)
		b.mu.Unlock()
	}
	return n
}

// Collect drains everything recorded since the last Collect into a delta
// based at the current collection frontier. It snapshots thread buffers
// one at a time — deliberately without a global barrier — so the delta may
// be an inconsistent cut. Thread buffers are drained before the request
// table so that every collected req-begin's payload is present (requests
// are added before dispatch). The returned delta may be empty (check
// Delta.Empty); callers that only propose on growth skip empty deltas.
// Collect must be called from a single collector task.
func (r *Recorder) Collect() *trace.Delta {
	// Re-arm the wake-up hook BEFORE draining: an append that lands while
	// we drain may notify spuriously (harmless — the pump re-collects) but
	// can never be lost.
	r.armed.Store(true)
	d := &trace.Delta{
		Base:    r.collected.Clone(),
		Threads: make([]trace.ThreadLog, len(r.threads)),
	}
	for t, b := range r.threads {
		b.mu.Lock()
		n := len(b.events)
		if n > 0 {
			d.Threads[t].Events = append([]trace.Event(nil), b.events...)
			d.Threads[t].In = append([][]trace.EventID(nil), b.in...)
			b.events = b.events[:0]
			b.in = b.in[:0]
			b.base += int32(n)
		}
		b.mu.Unlock()
		r.collected[t] += int32(n)
	}
	r.reqMu.Lock()
	d.ReqBase = r.reqBase
	if len(r.reqs) > 0 {
		d.Reqs = append([]trace.Req(nil), r.reqs...)
		r.reqBase += uint64(len(r.reqs))
		r.reqs = r.reqs[:0]
	}
	if len(r.marks) > 0 {
		d.Marks = append([]trace.Mark(nil), r.marks...)
		r.marks = r.marks[:0]
	}
	r.reqMu.Unlock()
	return d
}

// Collected returns the collection frontier (clocks already drained).
func (r *Recorder) Collected() trace.Cut { return r.collected.Clone() }
