package sched

import (
	"errors"
	"fmt"

	"rex/internal/trace"
)

// ErrReplayerAborted reports that an operation was attempted on a replayer
// that has been aborted (by Abort, or by itself after a desynchronized
// delta). The replayer is permanently inert; the owner rebuilds a fresh one
// from a checkpoint.
var ErrReplayerAborted = errors.New("sched: replayer aborted")

// DivergenceError reports that a replica's replay diverged from the
// recorded trace: the operation a worker was about to perform does not
// match the trace's next event for that thread, or a resource version or
// result hash check failed (§5.1). It carries enough context to point a
// developer at the offending resource and thread, mirroring the paper's
// data-race debugging experience (§6.1).
type DivergenceError struct {
	Thread   int32
	Clock    int32
	Expected trace.Event
	GotKind  trace.Kind
	GotRes   uint32
	GotArg   uint64
	Resource string
	Detail   string
}

// Error implements error.
func (e *DivergenceError) Error() string {
	return fmt.Sprintf(
		"rex: replay divergence on thread %d at clock %d: expected %v(res=%d, arg=%d), got %v(res=%d, arg=%d) on %q: %s",
		e.Thread, e.Clock, e.Expected.Kind, e.Expected.Res, e.Expected.Arg,
		e.GotKind, e.GotRes, e.GotArg, e.Resource, e.Detail)
}
