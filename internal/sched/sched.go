// Package sched implements Rex's execution engine: the fixed pool of
// logical threads a replica runs request handlers on, the recorder that
// captures synchronization events and causal edges on the primary (execute
// stage), and the replayer that enforces them on secondaries (follow
// stage).
//
// A logical thread (Worker) is the unit of identity in traces. Request
// handlers never see goroutines directly; they receive a context bound to a
// Worker, and every synchronization primitive and nondeterministic helper
// routes through it. This is the Go equivalent of the paper's thread-local
// execution mode (Fig. 3).
package sched

import (
	"fmt"
	"sync/atomic"

	"rex/internal/env"
	"rex/internal/trace"
	"rex/internal/vclock"
)

// Mode is a worker's execution mode.
type Mode uint8

const (
	// ModeNative runs primitives as plain locks with no recording or
	// replaying: used for standalone (unreplicated) execution, for
	// read-only handler pools (hybrid execution, §4), and inside
	// NativeExec scopes (§5.1).
	ModeNative Mode = iota
	// ModeRecord captures events and causal edges (primary, execute stage).
	ModeRecord
	// ModeReplay follows a committed trace (secondary, follow stage).
	ModeReplay
)

func (m Mode) String() string {
	switch m {
	case ModeNative:
		return "native"
	case ModeRecord:
		return "record"
	case ModeReplay:
		return "replay"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Runtime owns the logical threads and the record/replay machinery of one
// replica. Mode changes (replay → record at promotion, §4) happen only at
// global barriers, when every worker is quiescent.
type Runtime struct {
	Env env.Env

	// CheckVersions enables resource version checking (§5.1): replay
	// verifies each resource is used in the same order as recorded, which
	// surfaces data races early. On by default.
	CheckVersions bool

	// DisablePruning turns off vector-clock edge pruning (§4.2): every
	// causal edge is recorded even when implied by recorded edges and
	// program order. For the pruning ablation benchmark.
	DisablePruning bool

	// UnsafeSkipEdgeWaits injects a replay bug: replayers release events
	// without waiting for their causal predecessors. Test-only — it exists
	// so the chaos consistency checker can demonstrate that it detects a
	// broken replayer (see internal/chaos).
	UnsafeSkipEdgeWaits bool

	// TotalOrderTryFail records failed TryLocks in the per-resource total
	// order (Fig. 4 left) instead of the ground-truth partial order
	// (Fig. 4 right). For the partial-order ablation benchmark.
	TotalOrderTryFail bool

	// DisableConflictElision turns off conflict-class lock-event elision:
	// lock events on class-owned resources are traced even when the
	// executing worker's conflict class matches the resource's. Must be
	// set identically on every replica of a group (like DisablePruning) —
	// the elision decision is part of the trace's meaning.
	DisableConflictElision bool

	// elidedOps counts lock operations whose trace events were elided
	// because the executing worker's conflict class owned the resource.
	elidedOps atomic.Uint64

	// Obs, when non-nil, collects follow-stage metrics. Set it before the
	// first StartReplay; the same series are handed to every replayer the
	// runtime builds, so they survive promotions and snapshot restores.
	Obs *ReplayObs

	mode  Mode
	epoch uint64
	// baseVC holds the per-thread clock floor of the current epoch (the
	// promotion cut): workers resume their event clocks from it. It is NOT
	// a pruning floor — although the promotion barrier orders everything
	// before the cut ahead of everything after it in real time on the
	// promoted node, that ordering is invisible to replaying secondaries,
	// so a worker's pruning clock restarts covering only its OWN prefix
	// (program order). Cross-thread edges into pre-cut events are then
	// recorded explicitly, as replay correctness requires.
	baseVC vclock.VC

	workers []*Worker
	rec     *Recorder
	rep     *Replayer

	resMu    env.Mutex
	nextRes  uint32
	resNames map[uint32]string
	// versions[id] is resource id's version counter (§5.1). Versions live
	// in the runtime — not in the wrapper objects — because they are
	// replicated state: a checkpoint captures them and a restore puts them
	// back, so version checking stays sound across recovery. Each counter
	// is its own allocation so the pointers wrappers hold stay valid as
	// the registry grows.
	versions []*uint64
}

// NewRuntime creates a runtime with n logical threads in the given mode.
// Timer threads count toward n; callers allocate worker ids [0, n).
func NewRuntime(e env.Env, n int, mode Mode) *Runtime {
	rt := &Runtime{
		Env:           e,
		CheckVersions: true,
		mode:          mode,
		baseVC:        vclock.New(n),
		resMu:         e.NewMutex(),
		resNames:      make(map[uint32]string),
	}
	for i := 0; i < n; i++ {
		rt.workers = append(rt.workers, &Worker{
			rt: rt,
			id: int32(i),
			vc: vclock.New(n),
		})
	}
	return rt
}

// NumThreads returns the number of logical threads.
func (rt *Runtime) NumThreads() int { return len(rt.workers) }

// Worker returns logical thread i.
func (rt *Runtime) Worker(i int) *Worker { return rt.workers[i] }

// NativeWorker returns a worker that always executes natively, for
// read-only handler pools (hybrid execution). Its id is outside the traced
// thread range.
func (rt *Runtime) NativeWorker() *Worker {
	return &Worker{rt: rt, id: -1, fixedNative: true}
}

// Mode returns the runtime's current mode. It is only changed at global
// barriers, so a plain read is safe for workers.
func (rt *Runtime) Mode() Mode { return rt.mode }

// Recorder returns the active recorder (mode must be ModeRecord).
func (rt *Runtime) Recorder() *Recorder { return rt.rec }

// Replayer returns the active replayer (mode must be ModeReplay).
func (rt *Runtime) Replayer() *Replayer { return rt.rep }

// Epoch identifies the current record/replay incarnation; resources lazily
// reset their pruning clocks when they observe a new epoch.
func (rt *Runtime) Epoch() uint64 { return rt.epoch }

// BaseVC returns the vector-clock floor of the current epoch.
func (rt *Runtime) BaseVC() vclock.VC { return rt.baseVC }

// RegisterResource allocates a resource id. Applications must create their
// resources (locks, condition variables, semaphores) in a deterministic
// order — normally at state-machine construction — so ids agree across
// replicas.
func (rt *Runtime) RegisterResource(name string) uint32 {
	rt.resMu.Lock()
	defer rt.resMu.Unlock()
	rt.nextRes++
	id := rt.nextRes
	rt.resNames[id] = name
	for uint32(len(rt.versions)) <= id {
		rt.versions = append(rt.versions, new(uint64))
	}
	return id
}

// Version returns the version counter slot for a resource. The caller
// serializes access through the resource's own metadata lock; distinct
// resources use distinct slots.
func (rt *Runtime) Version(id uint32) *uint64 { return rt.versions[id] }

// VersionsSnapshot copies all resource version counters; call only while
// every traced thread is quiescent (a checkpoint cut).
func (rt *Runtime) VersionsSnapshot() []uint64 {
	rt.resMu.Lock()
	defer rt.resMu.Unlock()
	out := make([]uint64, len(rt.versions))
	for i, p := range rt.versions {
		out[i] = *p
	}
	return out
}

// RestoreVersions installs version counters captured by VersionsSnapshot.
// Call before execution starts (checkpoint restore). A shorter snapshot
// (fewer resources existed then) leaves the remainder at zero.
func (rt *Runtime) RestoreVersions(v []uint64) {
	rt.resMu.Lock()
	defer rt.resMu.Unlock()
	for i, val := range v {
		if i < len(rt.versions) {
			*rt.versions[i] = val
		}
	}
}

// ResourceName returns the registered name of a resource id.
func (rt *Runtime) ResourceName(id uint32) string {
	rt.resMu.Lock()
	defer rt.resMu.Unlock()
	if n, ok := rt.resNames[id]; ok {
		return n
	}
	return fmt.Sprintf("res#%d", id)
}

// StartRecord switches the runtime into record mode starting from cut: the
// worker clocks resume from the cut, a fresh epoch resets all pruning
// clocks to the cut vector, and a new recorder collects deltas based at
// (cut, reqBase). Must be called only when all workers are quiescent.
func (rt *Runtime) StartRecord(cut trace.Cut, reqBase uint64) {
	n := len(rt.workers)
	rt.mode = ModeRecord
	rt.epoch++
	rt.baseVC = vclock.New(n)
	for t := 0; t < n; t++ {
		if t < len(cut) {
			rt.baseVC[t] = cut[t]
		}
	}
	for _, w := range rt.workers {
		w.clock = rt.baseVC[w.id]
		w.vc = vclock.New(n)
		w.vc[w.id] = w.clock // program order only; see baseVC's comment
		w.epoch = rt.epoch
	}
	rt.rec = NewRecorder(rt.Env, n, cut, reqBase)
	// The previous replayer (if any) is left in place: workers unblocking
	// from an aborted replay may still touch it on their way to the record
	// path.
}

// StartReplay switches the runtime into replay mode following tr, whose
// events strictly after base are executed (events inside base are assumed
// already reflected in application state, e.g. restored from a checkpoint).
// Must be called only when all workers are quiescent. A base beyond tr's
// frontier yields trace.ErrCutBeyondTrace, leaving the runtime's mode and
// previous replayer untouched.
func (rt *Runtime) StartReplay(tr *trace.Trace, base trace.Cut) error {
	rep, err := NewReplayer(rt.Env, tr, base)
	if err != nil {
		return err
	}
	rt.mode = ModeReplay
	rt.epoch++
	rt.baseVC = vclock.New(len(rt.workers))
	rt.rep = rep
	rt.rep.ob = rt.Obs
	rt.rep.skipEdgeWaits = rt.UnsafeSkipEdgeWaits
	return nil
}

// NoteElided counts an elided lock operation (rex_elided_ops_total).
func (rt *Runtime) NoteElided() {
	rt.elidedOps.Add(1)
	if rt.Obs != nil {
		rt.Obs.Elided.Add(1)
	}
}

// ElidedOps returns the number of lock operations elided from the trace.
func (rt *Runtime) ElidedOps() uint64 { return rt.elidedOps.Load() }

// Worker is one logical thread. All trace identity — event clocks, vector
// clocks for pruning, the execution mode override — lives here.
type Worker struct {
	rt          *Runtime
	id          int32
	clock       int32
	vc          vclock.VC
	epoch       uint64
	nativeDepth int
	fixedNative bool
	// class is the conflict class of the request currently executing on
	// this worker (0 = catch-all / no class). It is set by the dispatch
	// layer around each request in both record and replay mode — replay
	// derives it from the request's recorded class id, so both sides make
	// identical elision decisions.
	class uint32
}

// ID returns the logical thread id (-1 for native-only workers).
func (w *Worker) ID() int32 { return w.id }

// Runtime returns the owning runtime.
func (w *Worker) Runtime() *Runtime { return w.rt }

// Mode returns the worker's effective mode, honoring NativeExec scopes and
// fixed-native (read-pool) workers.
func (w *Worker) Mode() Mode {
	if w.fixedNative || w.nativeDepth > 0 {
		return ModeNative
	}
	return w.rt.mode
}

// SetClass installs the conflict class of the request about to execute on
// this worker (0 clears it). Only the dispatch layer calls it, at request
// boundaries.
func (w *Worker) SetClass(c uint32) { w.class = c }

// Class returns the conflict class of the currently executing request.
func (w *Worker) Class() uint32 { return w.class }

// ElideFor reports whether lock events on a resource owned by conflict
// class resClass should be elided for this worker: the resource is
// class-owned, the executing request is in that same class, and elision
// is enabled. Requests in the owning class are serialized by their
// deterministic class → thread assignment, so the elided events' ordering
// is implied by program order on both record and replay.
func (w *Worker) ElideFor(resClass uint32) bool {
	if resClass == 0 || w.class != resClass || w.rt.DisableConflictElision {
		return false
	}
	w.rt.NoteElided()
	return true
}

// EnterNative begins a NativeExec scope (§5.1): until the matching
// ExitNative, the worker's primitives run natively and record nothing.
func (w *Worker) EnterNative() { w.nativeDepth++ }

// ExitNative ends a NativeExec scope.
func (w *Worker) ExitNative() {
	if w.nativeDepth == 0 {
		panic("sched: ExitNative without EnterNative")
	}
	w.nativeDepth--
}

// Native runs fn inside a NativeExec scope.
func (w *Worker) Native(fn func()) {
	w.EnterNative()
	defer w.ExitNative()
	fn()
}

// refreshEpoch lazily resets the worker's pruning clock at epoch changes:
// it restarts covering only the worker's own prefix (see baseVC).
func (w *Worker) refreshEpoch() {
	if w.epoch != w.rt.epoch {
		w.clock = w.rt.baseVC[w.id]
		w.vc = vclock.New(len(w.rt.baseVC))
		w.vc[w.id] = w.clock
		w.epoch = w.rt.epoch
	}
}

// Clock returns the worker's current logical clock (the clock of its most
// recent event).
func (w *Worker) Clock() int32 { return w.clock }

// VC returns the worker's pruning vector clock. The caller must be the
// worker's own thread.
func (w *Worker) VC() vclock.VC {
	w.refreshEpoch()
	return w.vc
}

// Record appends an event with the given incoming edges to the worker's
// thread log and returns its id. Record mode only. The sources of all
// edges must already have been recorded (committed) by their threads; this
// keeps the trace acyclic and replayable.
func (w *Worker) Record(ev trace.Event, in []trace.EventID) trace.EventID {
	w.refreshEpoch()
	w.clock++
	id := trace.EventID{Thread: w.id, Clock: w.clock}
	w.vc.Observe(w.id, w.clock)
	w.rt.rec.Append(w.id, ev, in)
	return id
}

// PruneEdge reports whether an edge from src is redundant for this
// worker's next event, and if not, observes it in the pruning clock.
// A zero src (no predecessor) is always redundant.
func (w *Worker) PruneEdge(src trace.EventID) bool {
	if src == (trace.EventID{}) {
		return true
	}
	w.refreshEpoch()
	if !w.rt.DisablePruning && w.vc.Covers(src.Thread, src.Clock) {
		return true
	}
	w.vc.Observe(src.Thread, src.Clock)
	return false
}

// JoinVC folds a resource's release-time vector clock into the worker's
// pruning clock.
func (w *Worker) JoinVC(o vclock.VC) {
	if o == nil {
		return
	}
	w.refreshEpoch()
	w.vc.Join(o)
}
