package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"rex/internal/apps/hashdb"
	"rex/internal/check"
	"rex/internal/cluster"
	"rex/internal/env"
	"rex/internal/obs"
	"rex/internal/readpath"
	"rex/internal/rebalance"
	"rex/internal/shard"
	"rex/internal/sim"
	"rex/internal/wire"
)

// RebalanceScenarioConfig parameterizes the live-rebalancing chaos
// scenario: routed clients run continuous keyed writes, reads, and
// session traffic while one nemesis drives random shard-map changes
// (split / merge / move) through the coordinator and another kills and
// restarts group primaries. Linearizability is checked over ONE global
// history recorded at the router — an operation that lands on the wrong
// group during a map transition would surface as a stale read or lost
// write there, not hide inside a per-group history.
type RebalanceScenarioConfig struct {
	Seed             int64
	Groups           int
	Nodes            int
	ReplicasPerGroup int
	Clients          int           // routed closed-loop clients
	Keys             int           // shared key space, routed across groups
	RebalanceOps     int           // map changes to drive (≥3: one of each kind)
	KillEvery        time.Duration // primary-kill cadence during the churn
}

func (c RebalanceScenarioConfig) withDefaults() RebalanceScenarioConfig {
	if c.Groups <= 0 {
		c.Groups = 3
	}
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.ReplicasPerGroup <= 0 {
		c.ReplicasPerGroup = 3
	}
	if c.Clients <= 0 {
		c.Clients = 6
	}
	if c.Keys <= 0 {
		c.Keys = 12 * c.Groups
	}
	if c.RebalanceOps < 3 {
		c.RebalanceOps = 6
	}
	if c.KillEvery <= 0 {
		c.KillEvery = 400 * time.Millisecond
	}
	return c
}

// RebalanceResult is the scenario's verdict.
type RebalanceResult struct {
	OK         bool
	Violations []string
	Ops        int // operations in the global router history
	Timeouts   int // operations with unknown outcome
	Splits     int // completed map changes, by kind
	Merges     int
	Moves      int
	Kills      int // primary crashes injected during the churn
	MapVersion uint64
	Checks     []check.Result
}

// RunRebalanceScenario executes the live-rebalancing chaos scenario
// under a fresh simulator. The nemesis plan guarantees at least one
// split, one merge, and one move complete while primaries are being
// killed and restarted underneath both the movers and the map home
// group. Afterwards every group must pass state agreement and the
// prefix property, the global routed history must be linearizable, and
// every client's session events must satisfy read-your-writes and
// monotonic reads across the ownership flips.
func RunRebalanceScenario(cfg RebalanceScenarioConfig, reg *obs.Registry, logf func(string, ...any)) RebalanceResult {
	cfg = cfg.withDefaults()
	res := RebalanceResult{}
	if reg == nil {
		reg = obs.NewRegistry()
	}

	e := sim.New(4)
	hist := check.NewHistory(e.Now)
	events := make([][]check.SessionEvent, cfg.Clients)
	var violations []string
	timeouts := 0
	e.Run(func() {
		m, err := shard.NewShardMap(1, cfg.Groups, cfg.Nodes, cfg.ReplicasPerGroup)
		if err != nil {
			violations = append(violations, err.Error())
			return
		}
		mc, err := cluster.NewMulti(e, hashdb.New(hashdb.DefaultOptions()), m, cluster.Options{
			Workers:         2,
			ReadWorkers:     2,
			Timers:          hashdb.Timers(),
			ProposeEvery:    2 * time.Millisecond,
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 100 * time.Millisecond,
			StatusEvery:     20 * time.Millisecond,
			CheckpointEvery: 200 * time.Millisecond,
			Seed:            cfg.Seed,
			Logf:            logf,
			LiveRebalance:   true,
		})
		if err != nil {
			violations = append(violations, err.Error())
			return
		}
		if err := mc.Start(); err != nil {
			violations = append(violations, fmt.Sprintf("multi-cluster start: %v", err))
			return
		}
		if err := mc.WaitAllPrimaries(5 * time.Second); err != nil {
			violations = append(violations, err.Error())
			return
		}

		mu := e.NewMutex()
		stop := false
		stopped := func() bool {
			mu.Lock()
			defer mu.Unlock()
			return stop
		}
		clients := env.GoEach(e, "rebalance-chaos-client", cfg.Clients, func(ci int) {
			// One enveloped router per task: it follows map changes on its
			// own and records into the shared global history under its
			// idBase. Space idBases by 64 (router uses groups+1 ids).
			r := mc.NewRouter(uint64(100 + 64*ci))
			r.Recorder = hist
			rng := rand.New(rand.NewSource(cfg.Seed + int64(ci)*7919))
			sessKey := fmt.Sprintf("sess-%d", ci)
			var sessVer uint64
			for seq := 0; ; seq++ {
				if stopped() {
					return
				}
				if rng.Intn(4) == 0 {
					// Session traffic on the client's private key.
					if rng.Intn(2) == 0 {
						next := sessVer + 1
						_, err := r.Do([]byte(sessKey),
							hashdb.SetReq(sessKey, []byte(strconv.FormatUint(next, 10))))
						if err == nil {
							sessVer = next
							events[ci] = append(events[ci], check.SessionEvent{
								Client: uint64(ci), Kind: check.SessionWrite, Version: next,
							})
						}
					} else {
						resp, err := r.QueryLevel([]byte(sessKey), readpath.Session, hashdb.GetReq(sessKey))
						if err == nil {
							d := wire.NewDecoder(resp)
							var ver uint64
							if d.Bool() {
								ver, _ = strconv.ParseUint(string(d.BytesVal()), 10, 64)
							}
							events[ci] = append(events[ci], check.SessionEvent{
								Client: uint64(ci), Kind: check.SessionRead, Version: ver, Level: "session",
							})
						}
					}
					e.Sleep(time.Duration(1+rng.Intn(4)) * time.Millisecond)
					continue
				}
				k := fmt.Sprintf("k%d", rng.Intn(cfg.Keys))
				var body []byte
				switch r := rng.Intn(100); {
				case r < 45:
					body = hashdb.GetReq(k)
				case r < 90:
					body = hashdb.SetReq(k, []byte(fmt.Sprintf("c%d-n%d", ci, seq)))
				default:
					body = hashdb.DelReq(k)
				}
				if _, err := r.Do([]byte(k), body); err != nil {
					mu.Lock()
					timeouts++
					mu.Unlock()
				}
				e.Sleep(time.Duration(1+rng.Intn(4)) * time.Millisecond)
			}
		})

		// Warm-up load before the churn starts.
		e.Sleep(300 * time.Millisecond)

		// Nemesis B: primary-kill churn. Crashes a random group's primary
		// (the map home group included), lets the group fail over, then
		// restarts the replica so quorums never shrink for long.
		churn := true
		churning := func() bool {
			mu.Lock()
			defer mu.Unlock()
			return churn
		}
		killer := env.GoEach(e, "rebalance-chaos-killer", 1, func(int) {
			rng := rand.New(rand.NewSource(cfg.Seed*31 + 5))
			for churning() {
				e.Sleep(cfg.KillEvery)
				g := rng.Intn(cfg.Groups)
				p, err := mc.CrashGroupPrimary(g)
				if err != nil {
					continue
				}
				mu.Lock()
				res.Kills++
				mu.Unlock()
				reg.CounterOf("chaos_rebalance_primary_kills").Inc()
				if logf != nil {
					logf("chaos: killed group %d primary (replica %d)", g, p)
				}
				e.Sleep(300 * time.Millisecond)
				if err := mc.Groups[g].Restart(p); err != nil {
					mu.Lock()
					violations = append(violations, fmt.Sprintf("restart group %d replica %d: %v", g, p, err))
					mu.Unlock()
					return
				}
			}
		})

		// Nemesis A: the rebalance plan. Random split/merge/move rounds,
		// guaranteed to complete at least one of each kind; a merge step
		// falls back to a split when no same-owner adjacent pair exists.
		cd := mc.NewCoordinator(9000, reg)
		cd.Logf = logf
		rng := rand.New(rand.NewSource(cfg.Seed*17 + 3))
		for round := 0; round < cfg.RebalanceOps || res.Splits == 0 || res.Merges == 0 || res.Moves == 0; round++ {
			if round > cfg.RebalanceOps+8 {
				violations = append(violations, fmt.Sprintf(
					"rebalance plan stalled: %d splits, %d merges, %d moves after %d rounds",
					res.Splits, res.Merges, res.Moves, round))
				break
			}
			cur, _, err := cd.FetchMap()
			if err != nil {
				violations = append(violations, fmt.Sprintf("fetch map: %v", err))
				break
			}
			kind := rng.Intn(3)
			if kind == 1 && res.Merges > 0 && res.Moves == 0 {
				kind = 2 // don't burn rounds re-merging before the first move
			}
			switch kind {
			case 0: // split
				at, ok := pickSplitPoint(cur, rng)
				if !ok {
					continue
				}
				if _, err := cd.Split(at); err != nil {
					if !rebalanceErrIsTransient(err) {
						violations = append(violations, fmt.Sprintf("split at %#x: %v", at, err))
					}
				} else {
					res.Splits++
				}
			case 1: // merge
				boundary, ok := pickMergeBoundary(cur)
				if !ok {
					// No fusable pair: split first so one exists next round.
					if at, ok := pickSplitPoint(cur, rng); ok {
						if _, err := cd.Split(at); err == nil {
							res.Splits++
						}
					}
					continue
				}
				if _, err := cd.Merge(boundary); err != nil {
					if !rebalanceErrIsTransient(err) {
						violations = append(violations, fmt.Sprintf("merge at %#x: %v", boundary, err))
					}
				} else {
					res.Merges++
				}
			case 2: // move
				at, dest, ok := pickMove(cur, rng)
				if !ok {
					continue
				}
				if _, err := cd.Move(at, dest); err != nil {
					if !rebalanceErrIsTransient(err) {
						violations = append(violations, fmt.Sprintf("move %#x -> group %d: %v", at, dest, err))
					}
				} else {
					res.Moves++
				}
			}
			e.Sleep(time.Duration(50+rng.Intn(100)) * time.Millisecond)
		}

		mu.Lock()
		churn = false
		mu.Unlock()
		killer.Wait()

		fm, _, err := cd.FetchMap()
		if err != nil {
			violations = append(violations, fmt.Sprintf("final map: %v", err))
		} else {
			res.MapVersion = fm.Version
			if logf != nil {
				logf("final map:\n%s", fm)
			}
		}

		// Drain the load, then every group must quiesce into agreement
		// with clean logs.
		e.Sleep(300 * time.Millisecond)
		mu.Lock()
		stop = true
		mu.Unlock()
		clients.Wait()

		for g := 0; g < cfg.Groups; g++ {
			states, faulted, err := mc.Groups[g].StableStates(30 * time.Second)
			if err != nil {
				violations = append(violations, fmt.Sprintf("group %d: %v", g, err))
				continue
			}
			for i, ferr := range faulted {
				violations = append(violations, fmt.Sprintf("group %d replica %d faulted after recovery: %v", g, i, ferr))
			}
			for _, v := range check.StateAgreement(states) {
				violations = append(violations, fmt.Sprintf("group %d: %s", g, v))
			}
			for _, v := range check.CheckPrefix(chosenLogs(mc.Groups[g])) {
				violations = append(violations, fmt.Sprintf("group %d: %s", g, v))
			}
		}
	})

	res.Violations = append(res.Violations, violations...)
	res.Timeouts = timeouts
	res.Ops = hist.Len()
	cr := check.CheckLinearizable(check.KVModel(false), hist.Ops(), 0)
	res.Checks = append(res.Checks, cr)
	reg.CounterOf("chaos_ops_checked").Add(uint64(cr.Ops))
	reg.CounterOf("chaos_histories_verified").Inc()
	if !cr.Ok {
		res.Violations = append(res.Violations,
			fmt.Sprintf("global routed history of %d ops is not linearizable", cr.Ops))
	}
	if cr.Undecided {
		res.Violations = append(res.Violations,
			"global linearizability undecided: step budget exhausted")
	}
	var sess []check.SessionEvent
	for _, evs := range events {
		sess = append(sess, evs...)
	}
	res.Violations = append(res.Violations, check.CheckSessionReads(sess)...)
	res.OK = len(res.Violations) == 0
	reg.CounterOf("chaos_rebalance_scenarios_run").Inc()
	if !res.OK {
		reg.CounterOf("chaos_rebalance_scenarios_failed").Inc()
	}
	return res
}

// pickSplitPoint finds a random range wide enough to split and returns
// its midpoint.
func pickSplitPoint(m *shard.ShardMap, rng *rand.Rand) (uint64, bool) {
	if len(m.Ranges) == 0 {
		return 0, false
	}
	for try := 0; try < 8; try++ {
		i := rng.Intn(len(m.Ranges))
		lo, hi := m.RangeBounds(i)
		if hi-lo < 2 {
			continue
		}
		return lo + (hi-lo)/2 + 1, true
	}
	return 0, false
}

// pickMergeBoundary scans for an interior boundary whose two sides share
// an owner.
func pickMergeBoundary(m *shard.ShardMap) (uint64, bool) {
	for i := 1; i < len(m.Ranges); i++ {
		if m.Ranges[i].Group == m.Ranges[i-1].Group {
			return m.Ranges[i].Start, true
		}
	}
	return 0, false
}

// pickMove picks a random range and a random different destination
// group.
func pickMove(m *shard.ShardMap, rng *rand.Rand) (uint64, int, bool) {
	if len(m.Ranges) == 0 || m.Groups() < 2 {
		return 0, 0, false
	}
	i := rng.Intn(len(m.Ranges))
	dest := rng.Intn(m.Groups() - 1)
	if dest >= m.Ranges[i].Group {
		dest++
	}
	return m.Ranges[i].Start, dest, true
}

// rebalanceErrIsTransient reports whether a coordinator error is one the
// plan may retry (map version races between concurrent proposals).
func rebalanceErrIsTransient(err error) bool {
	return errors.Is(err, rebalance.ErrProposeConflict)
}
