package chaos

import (
	"fmt"
	"math/rand"
	"time"
)

// Kind enumerates nemesis operations.
type Kind int

const (
	// KindCrashReplica crashes replica I (skipped if it would break the
	// majority).
	KindCrashReplica Kind = iota
	// KindCrashPrimary crashes whichever replica is currently primary.
	KindCrashPrimary
	// KindRestartAll restarts every crashed or faulted replica.
	KindRestartAll
	// KindPartition symmetrically cuts replica I off from the others.
	KindPartition
	// KindPartitionAsym cuts only the one-way link I -> J.
	KindPartitionAsym
	// KindHeal clears partitions, loss, and delay injections.
	KindHeal
	// KindLossBurst drops messages with probability P until the next heal.
	KindLossBurst
	// KindDelayBurst adds Min..Max delay on the links between I and J
	// (both directions) until the next heal.
	KindDelayBurst
	// KindWALFault arms replica I's log to fail its next K appends; the
	// replica crash-stops on the first one.
	KindWALFault

	numKinds int = iota
)

// String names the kind for logs and metric names.
func (k Kind) String() string {
	switch k {
	case KindCrashReplica:
		return "crash_replica"
	case KindCrashPrimary:
		return "crash_primary"
	case KindRestartAll:
		return "restart_all"
	case KindPartition:
		return "partition"
	case KindPartitionAsym:
		return "partition_asym"
	case KindHeal:
		return "heal"
	case KindLossBurst:
		return "loss_burst"
	case KindDelayBurst:
		return "delay_burst"
	case KindWALFault:
		return "wal_fault"
	}
	return fmt.Sprintf("kind_%d", int(k))
}

// Step is one timed nemesis operation.
type Step struct {
	At       time.Duration // offset from schedule start (virtual time)
	Kind     Kind
	I, J     int
	K        int
	P        float64
	Min, Max time.Duration
}

// String renders the step for verdict output.
func (st Step) String() string {
	switch st.Kind {
	case KindCrashReplica:
		return fmt.Sprintf("%v %s(%d)", st.At, st.Kind, st.I)
	case KindPartition:
		return fmt.Sprintf("%v %s(%d)", st.At, st.Kind, st.I)
	case KindPartitionAsym:
		return fmt.Sprintf("%v %s(%d->%d)", st.At, st.Kind, st.I, st.J)
	case KindLossBurst:
		return fmt.Sprintf("%v %s(p=%.2f)", st.At, st.Kind, st.P)
	case KindDelayBurst:
		return fmt.Sprintf("%v %s(%d<->%d %v..%v)", st.At, st.Kind, st.I, st.J, st.Min, st.Max)
	case KindWALFault:
		return fmt.Sprintf("%v %s(%d k=%d)", st.At, st.Kind, st.I, st.K)
	}
	return fmt.Sprintf("%v %s", st.At, st.Kind)
}

// Schedule is a declarative fault plan, reproducible from its seed.
type Schedule struct {
	Seed  int64
	Steps []Step
}

// Generate derives a random schedule for an n-replica cluster from the
// seed. Faults land in the first 70% of the duration; the tail is left
// healed and fully restarted so the cluster can quiesce before checking.
func Generate(seed int64, n int, duration time.Duration) Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := Schedule{Seed: seed}
	end := duration * 7 / 10
	at := duration / 20
	for at < end {
		st := Step{At: at}
		switch r := rng.Intn(100); {
		case r < 14:
			st.Kind = KindCrashReplica
			st.I = rng.Intn(n)
		case r < 27:
			st.Kind = KindCrashPrimary
		case r < 45:
			st.Kind = KindRestartAll
		case r < 55:
			st.Kind = KindPartition
			st.I = rng.Intn(n)
		case r < 64:
			st.Kind = KindPartitionAsym
			st.I = rng.Intn(n)
			st.J = (st.I + 1 + rng.Intn(n-1)) % n
		case r < 78:
			st.Kind = KindHeal
		case r < 85:
			st.Kind = KindLossBurst
			st.P = 0.05 + 0.2*rng.Float64()
		case r < 93:
			st.Kind = KindDelayBurst
			st.I = rng.Intn(n)
			st.J = (st.I + 1 + rng.Intn(n-1)) % n
			st.Min = time.Duration(1+rng.Intn(3)) * time.Millisecond
			st.Max = st.Min + time.Duration(1+rng.Intn(8))*time.Millisecond
		default:
			st.Kind = KindWALFault
			st.I = rng.Intn(n)
			st.K = 1 + rng.Intn(2)
		}
		s.Steps = append(s.Steps, st)
		at += time.Duration(40+rng.Intn(160)) * time.Millisecond
	}
	s.Steps = append(s.Steps,
		Step{At: end, Kind: KindHeal},
		Step{At: end + 20*time.Millisecond, Kind: KindRestartAll})
	return s
}
