package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"rex/internal/check"
	"rex/internal/cluster"
	"rex/internal/core"
	"rex/internal/env"
	"rex/internal/obs"
	"rex/internal/sim"
	"rex/internal/storage"
)

// ReconfigScenarioConfig parameterizes one membership-change chaos run.
type ReconfigScenarioConfig struct {
	Seed     int64
	App      string        // "" or "all" derives the app from the seed
	Duration time.Duration // virtual length of the client load phase
	Clients  int
}

// reconfigWait bounds each membership transition inside the scenario
// (virtual time; generous because transitions race partitions).
const reconfigWait = 30 * time.Second

// RunReconfigScenario runs the reconfiguration nemesis: a three-replica
// cluster under continuous client load has a secondary replaced (half the
// time crashed first, so the replacement heals a real failure), a fresh
// node added and promoted, and a node removed — interleaved with random
// partitions that also hit the joiner mid-catch-up. Afterwards the
// standard contract is checked: linearizability of the client history,
// the prefix property over chosen logs, and state agreement among the
// surviving members.
func RunReconfigScenario(cfg ReconfigScenarioConfig, reg *obs.Registry, logf func(string, ...any)) Result {
	if cfg.Duration <= 0 {
		cfg.Duration = 3 * time.Second
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	app := cfg.App
	if app == "" || app == "all" {
		names := Apps()
		app = names[uint64(cfg.Seed)%uint64(len(names))]
	}
	res := Result{Seed: cfg.Seed, App: app}
	spec, err := specFor(app)
	if err != nil {
		res.Violations = append(res.Violations, err.Error())
		return res
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}

	e := sim.New(4)
	var hist *check.History
	var violations []string
	var faults int
	timeouts := make([]int, cfg.Clients)
	e.Run(func() {
		c := cluster.New(e, spec.factory, cluster.Options{
			Replicas:        3,
			Workers:         2,
			Timers:          spec.timers,
			ProposeEvery:    2 * time.Millisecond,
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 100 * time.Millisecond,
			StatusEvery:     20 * time.Millisecond,
			CheckpointEvery: 200 * time.Millisecond,
			Seed:            cfg.Seed,
			Logf:            logf,
			NewLog:          func(int) storage.Log { return storage.NewMemLog() },
		})
		if err := c.Start(); err != nil {
			violations = append(violations, fmt.Sprintf("cluster start: %v", err))
			return
		}
		if _, err := c.WaitPrimary(5 * time.Second); err != nil {
			violations = append(violations, err.Error())
			return
		}

		hist = check.NewHistory(e.Now)
		rng := rand.New(rand.NewSource(cfg.Seed ^ 0x7ec0f19))
		begin := e.Now()
		note := func(name, format string, args ...any) {
			faults++
			reg.CounterOf("chaos_fault_" + name).Inc()
			if logf != nil {
				logf("chaos: "+format, args...)
			}
		}
		fail := func(format string, args ...any) {
			violations = append(violations, fmt.Sprintf(format, args...))
		}
		sleep := func(min, max int) {
			e.Sleep(time.Duration(min+rng.Intn(max-min)) * time.Millisecond)
		}
		// partition cuts replica i off from everyone else; heal undoes it.
		partition := func(i int) {
			note("partition", "partition {%d} | rest", i)
			for j := 0; j < c.Size(); j++ {
				if j != i {
					c.Net.SetPartition(i, j, true)
					c.Net.SetPartition(j, i, true)
				}
			}
		}
		// pickSecondary returns a random non-primary voter, -1 if none.
		pickSecondary := func() int {
			p := c.Primary()
			if p < 0 {
				return -1
			}
			r := c.Replica(p)
			if r == nil {
				return -1
			}
			m := r.Membership()
			var cands []int
			for _, v := range m.Voters {
				if v != p {
					cands = append(cands, v)
				}
			}
			if len(cands) == 0 {
				return -1
			}
			return cands[rng.Intn(len(cands))]
		}

		nemesis := env.GoEach(e, "reconfig-nemesis", 1, func(int) {
			// A plain partition first, so the membership machinery below
			// runs against a cluster that has already had to fail over.
			sleep(100, 300)
			partition(rng.Intn(3))
			sleep(40, 120)
			c.Net.Heal()
			note("heal", "heal network")

			// Replace a secondary; half the time crash it first so the
			// replacement repairs an actual dead node.
			sleep(50, 150)
			if old := pickSecondary(); old >= 0 {
				if rng.Intn(2) == 0 {
					note("crash_replica", "crash replica %d before replacing it", old)
					c.Crash(old)
					sleep(30, 80)
				}
				note("reconfig_replace", "replace replica %d", old)
				nid, err := c.ReplaceNode(old)
				if err != nil {
					fail("replace %d: %v", old, err)
				} else {
					if err := c.WaitVoter(nid, reconfigWait); err != nil {
						fail("replacement %d never promoted: %v", nid, err)
					}
					if err := c.WaitRemoved(old, reconfigWait); err != nil {
						fail("replaced %d never left: %v", old, err)
					}
				}
			}

			// Add a learner, partition a random member during its
			// catch-up, then wait for promotion after healing.
			sleep(50, 150)
			note("reconfig_add", "add a node")
			added, err := c.AddNode()
			if err != nil {
				fail("add: %v", err)
			} else {
				sleep(10, 60)
				partition(rng.Intn(c.Size()))
				sleep(40, 120)
				c.Net.Heal()
				note("heal", "heal network")
				if err := c.WaitVoter(added, reconfigWait); err != nil {
					fail("joiner %d never promoted: %v", added, err)
				}
				// Shrink back to three voters.
				sleep(50, 150)
				victim := pickSecondary()
				if victim >= 0 {
					note("reconfig_remove", "remove replica %d", victim)
					if err := c.RemoveNode(victim); err != nil {
						fail("remove %d: %v", victim, err)
					} else if err := c.WaitRemoved(victim, reconfigWait); err != nil {
						fail("removed %d never went quiet: %v", victim, err)
					}
				}
			}
		})
		clients := env.GoEach(e, "reconfig-client", cfg.Clients, func(ci int) {
			cl := c.NewClient(uint64(100 + ci))
			cl.Recorder = hist
			crng := rand.New(rand.NewSource(cfg.Seed + int64(ci)*7919))
			for seq := 0; e.Now() < begin+cfg.Duration || seq == 0; seq++ {
				body := spec.gen(crng, cl.ID, seq)
				if _, err := cl.DoTimeout(body, 3*time.Second); err != nil {
					timeouts[ci]++
				}
				e.Sleep(time.Duration(2+crng.Intn(8)) * time.Millisecond)
			}
		})
		nemesis.Wait()
		clients.Wait()

		// Recover: heal the network and restart every crashed replica that
		// is still a member (a removed identity must stay out).
		c.Net.Heal()
		member := func(i int) bool {
			p := c.Primary()
			if p < 0 {
				return true
			}
			r := c.Replica(p)
			return r == nil || r.Membership().IsMember(i)
		}
		for i := 0; i < c.Size(); i++ {
			if r := c.Replica(i); r != nil && r.Role() == core.RoleFaulted {
				c.Crash(i)
			}
			if c.Replica(i) == nil && member(i) {
				if err := c.Restart(i); err != nil {
					fail("recovery restart %d: %v", i, err)
					return
				}
			}
		}
		states, faulted, err := c.StableStates(30 * time.Second)
		if err != nil {
			violations = append(violations, err.Error())
			return
		}
		for i, ferr := range faulted {
			fail("replica %d faulted after recovery: %v", i, ferr)
		}
		violations = append(violations, check.StateAgreement(states)...)
		violations = append(violations, check.CheckPrefix(chosenLogs(c))...)
	})

	res.Violations = append(res.Violations, violations...)
	for _, t := range timeouts {
		res.Timeouts += t
	}
	if hist != nil {
		res.Ops = hist.Len()
		wall := time.Now()
		res.Check = check.CheckLinearizable(spec.model, hist.Ops(), 0)
		res.CheckerWall = time.Since(wall)
		reg.CounterOf("chaos_ops_checked").Add(uint64(res.Check.Ops))
		reg.CounterOf("chaos_histories_verified").Inc()
		reg.HistogramOf("chaos_checker_wall").Observe(res.CheckerWall)
		if !res.Check.Ok {
			res.Violations = append(res.Violations,
				fmt.Sprintf("history of %d ops is not linearizable (%s)", res.Check.Ops, app))
		}
		if res.Check.Undecided {
			res.Violations = append(res.Violations, "linearizability undecided: step budget exhausted")
		}
	}
	res.OK = len(res.Violations) == 0
	res.Faults = faults
	reg.CounterOf("chaos_scenarios_run").Inc()
	if !res.OK {
		reg.CounterOf("chaos_scenarios_failed").Inc()
	}
	return res
}
