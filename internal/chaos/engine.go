package chaos

import (
	"rex/internal/cluster"
	"rex/internal/core"
	"rex/internal/obs"
)

// Engine applies a Schedule to a running cluster on its virtual clock.
// It is meant to run in its own simulator task, concurrent with the
// client workload.
type Engine struct {
	C      *cluster.Cluster
	Faults []*FaultLog // per-replica WAL wrappers; nil entries disable KindWALFault
	Reg    *obs.Registry
	Logf   func(string, ...any)
}

func (en *Engine) logf(format string, args ...any) {
	if en.Logf != nil {
		en.Logf(format, args...)
	}
}

func (en *Engine) count(name string) {
	if en.Reg != nil {
		en.Reg.CounterOf("chaos_" + name).Inc()
	}
}

// isDown reports whether replica i is crashed or crash-stopped on a
// storage fault.
func (en *Engine) isDown(i int) bool {
	r := en.C.Replica(i)
	return r == nil || r.Role() == core.RoleFaulted
}

func (en *Engine) downCount() int {
	n := 0
	for i := 0; i < en.C.Size(); i++ {
		if en.isDown(i) {
			n++
		}
	}
	return n
}

// Run executes every step at its offset from now. It returns after the
// last step fires.
func (en *Engine) Run(s Schedule) {
	e := en.C.Env
	start := e.Now()
	for _, st := range s.Steps {
		if wake := start + st.At; wake > e.Now() {
			e.Sleep(wake - e.Now())
		}
		en.Apply(st)
	}
}

// Apply executes one step now. Crashes that would reduce the cluster
// below a majority of live replicas are skipped (counted under
// chaos_fault_skipped), so the generator never has to reason about
// global liveness.
func (en *Engine) Apply(st Step) {
	n := en.C.Size()
	switch st.Kind {
	case KindCrashReplica, KindCrashPrimary:
		i := st.I % n
		if st.Kind == KindCrashPrimary {
			if i = en.C.Primary(); i < 0 {
				en.count("fault_skipped")
				return
			}
		}
		if en.isDown(i) || en.downCount() >= (n-1)/2 {
			en.count("fault_skipped")
			return
		}
		en.logf("chaos: crash replica %d (%s)", i, st.Kind)
		en.C.Crash(i)
	case KindRestartAll:
		if err := en.restartDown(); err != nil {
			en.logf("chaos: restart failed: %v", err)
		}
	case KindPartition:
		i := st.I % n
		en.logf("chaos: partition {%d} | rest", i)
		for j := 0; j < n; j++ {
			if j != i {
				en.C.Net.SetPartition(i, j, true)
				en.C.Net.SetPartition(j, i, true)
			}
		}
	case KindPartitionAsym:
		i, j := st.I%n, st.J%n
		if i == j {
			en.count("fault_skipped")
			return
		}
		en.logf("chaos: cut link %d->%d", i, j)
		en.C.Net.SetPartition(i, j, true)
	case KindHeal:
		en.logf("chaos: heal network")
		en.C.Net.Heal()
	case KindLossBurst:
		en.logf("chaos: loss burst p=%.2f", st.P)
		en.C.Net.SetLoss(st.P)
	case KindDelayBurst:
		i, j := st.I%n, st.J%n
		if i == j {
			en.count("fault_skipped")
			return
		}
		en.logf("chaos: delay burst %d<->%d %v..%v", i, j, st.Min, st.Max)
		en.C.Net.SetDelay(i, j, st.Min, st.Max)
		en.C.Net.SetDelay(j, i, st.Min, st.Max)
	case KindWALFault:
		i := st.I % n
		if en.Faults == nil || en.Faults[i] == nil {
			en.count("fault_skipped")
			return
		}
		en.logf("chaos: arm %d WAL failures on replica %d", st.K, i)
		en.Faults[i].FailAppends(st.K)
	default:
		en.count("fault_skipped")
		return
	}
	en.count("fault_" + st.Kind.String())
}

// restartDown restarts every crashed or faulted replica. Replicas parked
// in RoleRemoved are not down — they left the membership and must stay
// out (restarting their old identity would only be refused again).
func (en *Engine) restartDown() error {
	for i := 0; i < en.C.Size(); i++ {
		if r := en.C.Replica(i); r != nil && r.Role() == core.RoleFaulted {
			en.C.Crash(i) // reap the crash-stopped process
		}
		if en.C.Replica(i) == nil {
			en.logf("chaos: restart replica %d", i)
			if err := en.C.Restart(i); err != nil {
				return err
			}
		}
	}
	return nil
}

// RecoverAll ends the fault phase: disarm pending WAL failures, heal the
// network, and restart everything that is down, so the cluster can
// quiesce for checking.
func (en *Engine) RecoverAll() error {
	for _, f := range en.Faults {
		if f != nil {
			f.Disarm()
		}
	}
	en.C.Net.Heal()
	return en.restartDown()
}
