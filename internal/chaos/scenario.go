package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"rex/internal/check"
	"rex/internal/cluster"
	"rex/internal/core"
	"rex/internal/env"
	"rex/internal/obs"
	"rex/internal/sim"
	"rex/internal/storage"
)

// Scenario is one reproducible chaos run: an application, a client load
// phase, and a fault schedule, all derived from the seed.
type Scenario struct {
	Seed     int64
	App      string
	Duration time.Duration // virtual length of the client load phase
	Clients  int
	Schedule Schedule
}

// NewScenario derives a scenario deterministically from its seed. app
// "all" (or "") picks one of the supported applications from the seed
// itself, so re-running a printed seed reproduces the identical
// scenario regardless of the original -app flag.
func NewScenario(seed int64, app string, duration time.Duration) (Scenario, error) {
	if duration <= 0 {
		duration = 3 * time.Second
	}
	if app == "" || app == "all" {
		names := Apps()
		app = names[uint64(seed)%uint64(len(names))]
	}
	if _, err := specFor(app); err != nil {
		return Scenario{}, err
	}
	return Scenario{
		Seed:     seed,
		App:      app,
		Duration: duration,
		Clients:  4,
		Schedule: Generate(seed, 3, duration),
	}, nil
}

// Result is one scenario's verdict.
type Result struct {
	Seed        int64
	App         string
	OK          bool
	Violations  []string
	Ops         int // operations recorded
	Timeouts    int // operations whose outcome is unknown
	Check       check.Result
	CheckerWall time.Duration
	Faults      int // nemesis steps applied
	Resyncs     int // rex_resync_total summed over live replicas at the end

	// Reads-scenario extras (RunReadsScenario).
	Failovers     int // primary changes observed by the nemesis
	FollowerReads int // rex_follower_reads_total summed over replicas
	LeaseReads    int // rex_lease_reads_total summed over replicas
	SessionOps    int // session-consistency events checked

	// Conflicts-scenario extras (RunConflictsScenario).
	ElidedOps int // lock ops elided via conflict-class ownership
	Sweeps    int // catch-all barrier requests completed

	// Overload-scenario extras (RunOverloadScenario).
	Sheds           int // rex_shed_total summed over replicas (incl. pre-crash)
	DeadlineErrs    int // rex_deadline_exceeded_total summed over replicas
	BudgetExhausted int // client retry budgets that ran dry
	MaxOutstanding  int // peak admitted-but-unreleased requests sampled on the primary
	MaxWaiters      int // peak admission-gate waiters sampled on the primary
	RecoveryOps     int // closed-loop ops completed by the post-storm probe
	Discarded       int // history ops dropped as definite no-executes
}

// Run executes the scenario under a fresh simulator and checks every
// piece of the correctness contract: linearizability of the recorded
// history, the prefix property over chosen logs, cross-replica state
// agreement after quiescence, and replay determinism across a secondary
// restart. Metrics land in reg (which may be shared across scenarios).
func (sc Scenario) Run(reg *obs.Registry, logf func(string, ...any)) Result {
	res := Result{Seed: sc.Seed, App: sc.App}
	spec, err := specFor(sc.App)
	if err != nil {
		res.Violations = append(res.Violations, err.Error())
		return res
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}

	e := sim.New(4)
	faults := make([]*FaultLog, 3)
	var hist *check.History
	var violations []string
	timeouts := make([]int, sc.Clients)
	e.Run(func() {
		c := cluster.New(e, spec.factory, cluster.Options{
			Replicas:        3,
			Workers:         2,
			Timers:          spec.timers,
			ProposeEvery:    2 * time.Millisecond,
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 100 * time.Millisecond,
			StatusEvery:     20 * time.Millisecond,
			CheckpointEvery: 200 * time.Millisecond,
			Seed:            sc.Seed,
			Logf:            logf,
			NewLog: func(i int) storage.Log {
				f := NewFaultLog(storage.NewMemLog())
				faults[i] = f
				return f
			},
		})
		// No deferred c.Stop(): when the run ends (or a task panics) the
		// simulator reaps every remaining task itself, and a deferred Stop
		// can deadlock teardown by waiting on an already-killed loop.
		if err := c.Start(); err != nil {
			violations = append(violations, fmt.Sprintf("cluster start: %v", err))
			return
		}
		if _, err := c.WaitPrimary(5 * time.Second); err != nil {
			violations = append(violations, err.Error())
			return
		}

		hist = check.NewHistory(e.Now)
		engine := &Engine{C: c, Faults: faults, Reg: reg, Logf: logf}
		begin := e.Now()
		nemesis := env.GoEach(e, "nemesis", 1, func(int) {
			engine.Run(sc.Schedule)
		})
		clients := env.GoEach(e, "chaos-client", sc.Clients, func(ci int) {
			cl := c.NewClient(uint64(100 + ci))
			cl.Recorder = hist
			rng := rand.New(rand.NewSource(sc.Seed + int64(ci)*7919))
			for seq := 0; e.Now() < begin+sc.Duration; seq++ {
				body := spec.gen(rng, cl.ID, seq)
				if _, err := cl.DoTimeout(body, 3*time.Second); err != nil {
					timeouts[ci]++
				}
				e.Sleep(time.Duration(2+rng.Intn(8)) * time.Millisecond)
			}
		})
		clients.Wait()
		nemesis.Wait()

		// Fault phase over: heal, restart, quiesce, and check structure.
		if err := engine.RecoverAll(); err != nil {
			violations = append(violations, fmt.Sprintf("recovery: %v", err))
			return
		}
		states, faulted, err := c.StableStates(30 * time.Second)
		if err != nil {
			violations = append(violations, err.Error())
			return
		}
		for i, ferr := range faulted {
			violations = append(violations, fmt.Sprintf("replica %d faulted after recovery: %v", i, ferr))
		}
		violations = append(violations, check.StateAgreement(states)...)
		violations = append(violations, check.CheckPrefix(chosenLogs(c))...)

		// Replay determinism: a secondary rebuilt from its WAL and
		// snapshot must land in the same state as the others.
		if len(violations) == 0 {
			sec := -1
			p := c.Primary()
			for i := 0; i < c.Size(); i++ {
				if r := c.Replica(i); i != p && r != nil && r.Role() != core.RoleRemoved {
					sec = i
					break
				}
			}
			if sec >= 0 {
				c.Crash(sec)
				if err := c.Restart(sec); err != nil {
					violations = append(violations, fmt.Sprintf("replay restart: %v", err))
					return
				}
				states, faulted, err = c.StableStates(30 * time.Second)
				if err != nil {
					violations = append(violations, fmt.Sprintf("after secondary restart: %v", err))
					return
				}
				for i, ferr := range faulted {
					violations = append(violations, fmt.Sprintf("replica %d faulted after replay restart: %v", i, ferr))
				}
				for _, v := range check.StateAgreement(states) {
					violations = append(violations, "replay determinism: "+v)
				}
				violations = append(violations, check.CheckPrefix(chosenLogs(c))...)
			}
		}
	})

	res.Violations = append(res.Violations, violations...)
	for _, t := range timeouts {
		res.Timeouts += t
	}
	if hist != nil {
		res.Ops = hist.Len()
		wall := time.Now()
		res.Check = check.CheckLinearizable(spec.model, hist.Ops(), 0)
		res.CheckerWall = time.Since(wall)
		reg.CounterOf("chaos_ops_checked").Add(uint64(res.Check.Ops))
		reg.CounterOf("chaos_histories_verified").Inc()
		reg.HistogramOf("chaos_checker_wall").Observe(res.CheckerWall)
		if !res.Check.Ok {
			res.Violations = append(res.Violations,
				fmt.Sprintf("history of %d ops is not linearizable (%s)", res.Check.Ops, sc.App))
		}
		if res.Check.Undecided {
			res.Violations = append(res.Violations, "linearizability undecided: step budget exhausted")
		}
	}
	res.OK = len(res.Violations) == 0
	reg.CounterOf("chaos_scenarios_run").Inc()
	if !res.OK {
		reg.CounterOf("chaos_scenarios_failed").Inc()
	}
	res.Faults = len(sc.Schedule.Steps)
	return res
}

// chosenLogs snapshots every live replica's chosen instance sequence.
func chosenLogs(c *cluster.Cluster) []check.ChosenLog {
	var logs []check.ChosenLog
	for i := 0; i < c.Size(); i++ {
		r := c.Replica(i)
		if r == nil {
			continue
		}
		base, vals := r.ChosenLog()
		logs = append(logs, check.ChosenLog{Replica: i, Base: base, Vals: vals})
	}
	return logs
}
