package chaos

import (
	"fmt"
	"io"
	"testing"
	"time"

	"rex/internal/check"
	"rex/internal/cluster"
	"rex/internal/core"
	"rex/internal/env"
	"rex/internal/obs"
	"rex/internal/rexsync"
	"rex/internal/sched"
	"rex/internal/sim"
	"rex/internal/storage"
	"rex/internal/wire"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, 3, 3*time.Second)
	b := Generate(42, 3, 3*time.Second)
	if len(a.Steps) == 0 {
		t.Fatal("empty schedule")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	c := Generate(43, 3, 3*time.Second)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical schedules")
	}
	for i := 1; i < len(a.Steps); i++ {
		if a.Steps[i].At < a.Steps[i-1].At {
			t.Fatalf("steps out of order at %d: %v", i, a.Steps)
		}
	}
}

func TestScenarioDerivedFromSeed(t *testing.T) {
	a, err := NewScenario(7, "all", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewScenario(7, "", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if a.App != b.App {
		t.Fatalf("app not derived from seed alone: %q vs %q", a.App, b.App)
	}
	if _, err := NewScenario(1, "nosuchapp", 0); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestFaultLogInjectsFailures(t *testing.T) {
	fl := NewFaultLog(storage.NewMemLog())
	if err := fl.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	fl.FailAppends(2)
	for i := 0; i < 2; i++ {
		if err := fl.Append([]byte("b")); err == nil {
			t.Fatalf("armed append %d succeeded", i)
		}
	}
	if err := fl.Append([]byte("c")); err != nil {
		t.Fatalf("append after faults exhausted: %v", err)
	}
	if got := fl.Injected(); got != 2 {
		t.Fatalf("injected = %d, want 2", got)
	}
	fl.FailAppends(5)
	fl.Disarm()
	if err := fl.Append([]byte("d")); err != nil {
		t.Fatalf("append after disarm: %v", err)
	}
	recs, err := fl.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("failed appends reached the log: %d records, want 3", len(recs))
	}
}

// TestScenarioSmoke runs one short scenario end to end and requires a
// clean verdict plus populated metrics.
func TestScenarioSmoke(t *testing.T) {
	sc, err := NewScenario(1, "memcache", 1500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	res := sc.Run(reg, nil)
	if !res.OK {
		t.Fatalf("scenario failed: %v", res.Violations)
	}
	if res.Ops == 0 || res.Check.Ops == 0 {
		t.Fatalf("no operations recorded/checked: %+v", res)
	}
	snap := reg.Snapshot()
	if snap.Counter("chaos_scenarios_run") != 1 || snap.Counter("chaos_histories_verified") != 1 {
		t.Fatalf("metrics not recorded: %v", snap.Counters)
	}
}

// TestRecoveryScenarioPinnedSeed replays the bounded-recovery scenario at
// a pinned seed: checkpoints disabled, promote/demote churn, and a
// secondary bounced across checkpoint-floor compaction. This configuration
// used to livelock and then panic in Replayer.Extend; the scenario must
// now finish with every replica live, the history linearizable, and at
// least one rex_resync_total increment proving the defensive resync path
// (not luck) carried the lagging replica back.
func TestRecoveryScenarioPinnedSeed(t *testing.T) {
	reg := obs.NewRegistry()
	res := RunRecoveryScenario(RecoveryScenarioConfig{
		Seed:     1,
		Duration: 4 * time.Second,
	}, reg, nil)
	if !res.OK {
		t.Fatalf("recovery scenario failed: %v", res.Violations)
	}
	if res.Resyncs < 1 {
		t.Fatalf("resyncs = %d, want >= 1", res.Resyncs)
	}
	if res.Ops == 0 || res.Check.Ops == 0 {
		t.Fatalf("no operations recorded/checked: %+v", res)
	}
	t.Logf("recovery: app=%s faults=%d ops=%d resyncs=%d", res.App, res.Faults, res.Ops, res.Resyncs)
}

// journal is an order-sensitive state machine for the bug-detection test:
// every request appends its tag to one list under a single Rex lock, so a
// replayer that releases events before their causal predecessors can
// interleave the appends differently on each replica.
type journal struct {
	mu      *rexsync.Lock
	entries []string
}

func newJournal() core.Factory {
	return func(rt *sched.Runtime, host *core.TimerHost) core.StateMachine {
		return &journal{mu: rexsync.NewLock(rt, "journal")}
	}
}

func (j *journal) Apply(ctx *core.Ctx, req []byte) []byte {
	w := ctx.Worker()
	// The pre-lock compute varies by request and is long enough that
	// handlers overlap, so the lock sees real contention: the recorded
	// causal edges are then the only thing forcing replay to grant the
	// lock in the primary's order.
	ctx.Compute(time.Duration(1+int(req[len(req)-1])%7) * 300 * time.Microsecond)
	j.mu.Lock(w)
	j.entries = append(j.entries, string(req))
	j.mu.Unlock(w)
	return []byte{1}
}

func (j *journal) WriteCheckpoint(w io.Writer) error {
	e := wire.NewEncoder(nil)
	e.Uvarint(uint64(len(j.entries)))
	for _, s := range j.entries {
		e.BytesVal([]byte(s))
	}
	_, err := w.Write(e.Bytes())
	return err
}

func (j *journal) ReadCheckpoint(r io.Reader) error {
	buf, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	d := wire.NewDecoder(buf)
	n := d.Uvarint()
	j.entries = nil
	for i := uint64(0); i < n; i++ {
		j.entries = append(j.entries, string(d.BytesVal()))
	}
	return d.Err()
}

// runJournalLoad drives a concurrent append workload and returns any
// structural violations found after quiescence. With buggy set, replay
// releases events without waiting for their causal predecessors
// (Options.UnsafeReplayNoEdgeWaits) and the runtime's own divergence
// checks are disabled, leaving detection entirely to the checker.
func runJournalLoad(t *testing.T, seed int64, buggy bool) []string {
	t.Helper()
	e := sim.New(4)
	var violations []string
	e.Run(func() {
		c := cluster.New(e, newJournal(), cluster.Options{
			Replicas:                3,
			Workers:                 2,
			ProposeEvery:            2 * time.Millisecond,
			HeartbeatEvery:          20 * time.Millisecond,
			ElectionTimeout:         100 * time.Millisecond,
			StatusEvery:             20 * time.Millisecond,
			Seed:                    seed,
			DisableChecks:           buggy,
			UnsafeReplayNoEdgeWaits: buggy,
		})
		if err := c.Start(); err != nil {
			violations = append(violations, err.Error())
			return
		}
		if _, err := c.WaitPrimary(5 * time.Second); err != nil {
			violations = append(violations, err.Error())
			return
		}
		clients := env.GoEach(e, "journal-client", 4, func(ci int) {
			cl := c.NewClient(uint64(10 + ci))
			for k := 0; k < 100; k++ {
				if _, err := cl.DoTimeout([]byte(fmt.Sprintf("c%d-n%d", ci, k)), 5*time.Second); err != nil {
					violations = append(violations, fmt.Sprintf("client %d: %v", ci, err))
					return
				}
			}
		})
		clients.Wait()
		states, faults, err := c.StableStates(30 * time.Second)
		if err != nil {
			violations = append(violations, err.Error())
			return
		}
		for i, ferr := range faults {
			violations = append(violations, fmt.Sprintf("replica %d faulted: %v", i, ferr))
		}
		violations = append(violations, check.StateAgreement(states)...)
	})
	return violations
}

// TestCheckerCatchesBrokenReplayer proves the consistency checker has
// teeth: an intentionally broken build whose replayer ignores causal
// edges must produce a state-agreement violation, while the same workload
// on the correct build must not.
func TestCheckerCatchesBrokenReplayer(t *testing.T) {
	if v := runJournalLoad(t, 1, false); len(v) != 0 {
		t.Fatalf("correct build reported violations: %v", v)
	}
	for seed := int64(1); seed <= 5; seed++ {
		if v := runJournalLoad(t, seed, true); len(v) != 0 {
			t.Logf("broken replayer caught at seed %d: %v", seed, v[0])
			return
		}
	}
	t.Fatal("broken replayer produced no detectable divergence in 5 seeds")
}

// TestReadsScenarioPinnedSeed replays the consistent-read scenario at a
// pinned seed: the primary is repeatedly isolated mid-lease, so the run
// must survive at least one failover with no stale linearizable read (the
// history stays linearizable), session reads staying read-your-writes and
// monotonic, and both read fast paths demonstrably exercised.
func TestReadsScenarioPinnedSeed(t *testing.T) {
	reg := obs.NewRegistry()
	res := RunReadsScenario(ReadsScenarioConfig{
		Seed:     1,
		Duration: 4 * time.Second,
	}, reg, nil)
	if !res.OK {
		t.Fatalf("reads scenario failed: %v", res.Violations)
	}
	if res.Failovers < 1 {
		t.Fatalf("failovers = %d, want >= 1", res.Failovers)
	}
	if res.LeaseReads < 1 || res.FollowerReads < 1 {
		t.Fatalf("lease reads = %d, follower reads = %d, want both >= 1", res.LeaseReads, res.FollowerReads)
	}
	if res.Ops == 0 || res.Check.Ops == 0 || res.SessionOps == 0 {
		t.Fatalf("no operations recorded/checked: %+v", res)
	}
	t.Logf("reads: faults=%d failovers=%d ops=%d sessionOps=%d leaseReads=%d followerReads=%d timeouts=%d",
		res.Faults, res.Failovers, res.Ops, res.SessionOps, res.LeaseReads, res.FollowerReads, res.Timeouts)
}

// TestConflictsScenarioPinnedSeed replays the conflict-class scenario at
// a pinned seed: with elision on, failovers mid-load, contended shared
// keys, and catch-all sweeps, the history must stay linearizable, the
// replicas must agree (including after a secondary replays the elided
// trace from its own log), and the run must demonstrably have elided
// lock events and completed at least one barrier-dispatched sweep.
func TestConflictsScenarioPinnedSeed(t *testing.T) {
	reg := obs.NewRegistry()
	res := RunConflictsScenario(ConflictsScenarioConfig{
		Seed:     1,
		Duration: 4 * time.Second,
	}, reg, nil)
	if !res.OK {
		t.Fatalf("conflicts scenario failed: %v", res.Violations)
	}
	if res.Failovers < 1 {
		t.Fatalf("failovers = %d, want >= 1", res.Failovers)
	}
	if res.ElidedOps < 1 {
		t.Fatalf("elided ops = %d, want >= 1", res.ElidedOps)
	}
	if res.Sweeps < 1 {
		t.Fatalf("sweeps = %d, want >= 1", res.Sweeps)
	}
	if res.Ops == 0 || res.Check.Ops == 0 {
		t.Fatalf("no operations recorded/checked: %+v", res)
	}
	t.Logf("conflicts: faults=%d failovers=%d ops=%d elided=%d sweeps=%d timeouts=%d",
		res.Faults, res.Failovers, res.Ops, res.ElidedOps, res.Sweeps, res.Timeouts)
}

// TestOverloadScenarioPinnedSeed replays the overload scenario at a
// pinned seed: a zipfian hot-key storm saturates a deliberately tiny
// primary while the nemesis crashes it mid-storm. The run must shed
// (admission control demonstrably engaged), fail over at least once,
// keep the primary's queues under their configured bounds, recover
// steady service after the storm, and the surviving history must stay
// linearizable.
func TestOverloadScenarioPinnedSeed(t *testing.T) {
	reg := obs.NewRegistry()
	res := RunOverloadScenario(OverloadScenarioConfig{
		Seed: 1,
	}, reg, nil)
	if !res.OK {
		t.Fatalf("overload scenario failed: %v", res.Violations)
	}
	if res.Sheds < 1 {
		t.Fatalf("sheds = %d, want >= 1", res.Sheds)
	}
	if res.Failovers < 1 {
		t.Fatalf("failovers = %d, want >= 1", res.Failovers)
	}
	if res.Ops == 0 || res.Check.Ops == 0 {
		t.Fatalf("no operations recorded/checked: %+v", res)
	}
	t.Logf("overload: faults=%d failovers=%d ops=%d discarded=%d sheds=%d deadline=%d budgetDry=%d maxOut=%d maxWait=%d recovery=%d/40 timeouts=%d",
		res.Faults, res.Failovers, res.Ops, res.Discarded, res.Sheds, res.DeadlineErrs,
		res.BudgetExhausted, res.MaxOutstanding, res.MaxWaiters, res.RecoveryOps, res.Timeouts)
}
