package chaos

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"rex/internal/check"
	"rex/internal/cluster"
	"rex/internal/core"
	"rex/internal/env"
	"rex/internal/obs"
	"rex/internal/sim"
	"rex/internal/storage"

	"rex/internal/apps/hashdb"
)

// ConflictsScenarioConfig parameterizes one conflict-class chaos run.
type ConflictsScenarioConfig struct {
	Seed     int64
	Duration time.Duration // virtual length of the client load phase
	Clients  int
}

// RunConflictsScenario stresses conflict-class tracing with elision on: a
// three-replica hashdb cluster (hashdb classifies single-key ops into
// per-slice conflict classes whose slice locks are class-owned, so their
// lock events are elided from the committed deltas) serves a mix of
// disjoint per-client keys and contended shared keys while the nemesis
// repeatedly isolates the primary, forcing failovers through promotions
// that must account for carried-over classified requests. A side client
// issues whole-table sweeps — catch-all class requests that run under the
// admission barrier — outside the checked history. The run then asserts:
//
//   - linearizability of the recorded set/get/del history (KVModel):
//     elision must not let same-class requests reorder observably;
//   - cross-replica state agreement after quiescence, and again after a
//     secondary crash/restart replays the elided trace from its own log
//     (replay determinism: reconstructed class edges reproduce the
//     primary's schedule);
//   - the prefix property over chosen logs;
//   - the scenario exercised what it claims: at least one failover and a
//     nonzero count of elided lock operations.
func RunConflictsScenario(cfg ConflictsScenarioConfig, reg *obs.Registry, logf func(string, ...any)) Result {
	if cfg.Duration <= 0 {
		cfg.Duration = 3 * time.Second
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	res := Result{Seed: cfg.Seed, App: "hashdb"}
	if reg == nil {
		reg = obs.NewRegistry()
	}

	e := sim.New(4)
	var hist *check.History
	var violations []string
	var faults, failovers, sweeps int
	var elidedOps uint64
	timeouts := make([]int, cfg.Clients+1) // +1: the sweep client
	e.Run(func() {
		c := cluster.New(e, hashdb.New(hashdb.DefaultOptions()), cluster.Options{
			Replicas:        3,
			Workers:         4, // spread conflict classes over several threads
			Timers:          hashdb.Timers(),
			ProposeEvery:    2 * time.Millisecond,
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 120 * time.Millisecond,
			StatusEvery:     20 * time.Millisecond,
			CheckpointEvery: 200 * time.Millisecond,
			Seed:            cfg.Seed,
			Logf:            logf,
			NewLog:          func(int) storage.Log { return storage.NewMemLog() },
		})
		if err := c.Start(); err != nil {
			violations = append(violations, fmt.Sprintf("cluster start: %v", err))
			return
		}
		if _, err := c.WaitPrimary(5 * time.Second); err != nil {
			violations = append(violations, err.Error())
			return
		}

		hist = check.NewHistory(e.Now)
		rng := rand.New(rand.NewSource(cfg.Seed ^ 0xc0f1))
		begin := e.Now()
		note := func(name, format string, args ...any) {
			faults++
			reg.CounterOf("chaos_fault_" + name).Inc()
			if logf != nil {
				logf("chaos: "+format, args...)
			}
		}

		nemesis := env.GoEach(e, "conflicts-nemesis", 1, func(int) {
			last := c.Primary()
			for e.Now() < begin+cfg.Duration {
				e.Sleep(time.Duration(250+rng.Intn(200)) * time.Millisecond)
				p := c.Primary()
				if p < 0 {
					continue
				}
				if p != last {
					failovers++
					last = p
				}
				// Depose the primary mid-load: the new primary's promotion
				// must re-seed its dispatch accounting from the carried-over
				// classified requests still in flight.
				note("isolate_primary", "isolate primary %d", p)
				c.Net.Isolate(p, true)
				e.Sleep(time.Duration(280+rng.Intn(170)) * time.Millisecond)
				c.Net.Isolate(p, false)
				note("heal", "heal old primary %d", p)
			}
			if p := c.Primary(); p >= 0 && p != last {
				failovers++
			}
		})
		clients := env.GoEach(e, "conflicts-client", cfg.Clients, func(ci int) {
			cl := c.NewClient(uint64(100 + ci))
			cl.Recorder = hist
			crng := rand.New(rand.NewSource(cfg.Seed + int64(ci)*7919))
			for seq := 0; e.Now() < begin+cfg.Duration; seq++ {
				// 70% private keys (pairwise-disjoint conflict classes,
				// maximal elision), 30% shared keys (same class contended by
				// every client — same-class ordering must survive elision).
				var key string
				if crng.Intn(100) < 70 {
					key = fmt.Sprintf("own-%d-%d", ci, crng.Intn(4))
				} else {
					key = fmt.Sprintf("shared-%d", crng.Intn(3))
				}
				var body []byte
				switch r := crng.Intn(100); {
				case r < 45:
					body = hashdb.GetReq(key)
				case r < 90:
					body = hashdb.SetReq(key, []byte("c"+strconv.Itoa(ci)+"-n"+strconv.Itoa(seq)))
				default:
					body = hashdb.DelReq(key)
				}
				if _, err := cl.DoTimeout(body, 3*time.Second); err != nil {
					timeouts[ci]++
				}
				e.Sleep(time.Duration(2+crng.Intn(8)) * time.Millisecond)
			}
		})
		// The sweep client exercises the catch-all class: a whole-table scan
		// that the primary may only dispatch once every classified request
		// has finished (the admission barrier). Sweeps touch every key, so
		// they stay OUTSIDE the per-key-partitioned linearizability history;
		// state agreement and replay determinism still cover them.
		sweeper := env.GoEach(e, "conflicts-sweeper", 1, func(int) {
			cl := c.NewClient(99)
			srng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eeb))
			for e.Now() < begin+cfg.Duration {
				e.Sleep(time.Duration(60+srng.Intn(80)) * time.Millisecond)
				if _, err := cl.DoTimeout(hashdb.SweepReq(), 3*time.Second); err != nil {
					timeouts[cfg.Clients]++
				} else {
					sweeps++
				}
			}
		})
		clients.Wait()
		sweeper.Wait()
		nemesis.Wait()

		// Heal and check the structural contract.
		c.Net.Heal()
		states, faulted, err := c.StableStates(30 * time.Second)
		if err != nil {
			violations = append(violations, err.Error())
			return
		}
		for i, ferr := range faulted {
			violations = append(violations, fmt.Sprintf("replica %d faulted after recovery: %v", i, ferr))
		}
		violations = append(violations, check.StateAgreement(states)...)
		violations = append(violations, check.CheckPrefix(chosenLogs(c))...)

		for i := 0; i < c.Size(); i++ {
			if r := c.Replica(i); r != nil {
				elidedOps += r.Stats().ElidedOps
			}
		}
		if failovers == 0 {
			violations = append(violations, "no failover observed: the nemesis never deposed a primary")
		}
		if elidedOps == 0 {
			violations = append(violations, "no lock operations elided: conflict-class elision never engaged")
		}
		if sweeps == 0 {
			violations = append(violations, "no sweep completed: the catch-all barrier path was never exercised")
		}

		// Replay determinism: a secondary rebuilt from its log must replay
		// the elided trace — reconstructing class-implied edges — to the
		// same state as the others.
		if len(violations) == 0 {
			sec := -1
			p := c.Primary()
			for i := 0; i < c.Size(); i++ {
				if r := c.Replica(i); i != p && r != nil && r.Role() != core.RoleRemoved {
					sec = i
					break
				}
			}
			if sec >= 0 {
				c.Crash(sec)
				if err := c.Restart(sec); err != nil {
					violations = append(violations, fmt.Sprintf("replay restart: %v", err))
					return
				}
				states, faulted, err = c.StableStates(30 * time.Second)
				if err != nil {
					violations = append(violations, fmt.Sprintf("after secondary restart: %v", err))
					return
				}
				for i, ferr := range faulted {
					violations = append(violations, fmt.Sprintf("replica %d faulted after replay restart: %v", i, ferr))
				}
				for _, v := range check.StateAgreement(states) {
					violations = append(violations, "replay determinism: "+v)
				}
				violations = append(violations, check.CheckPrefix(chosenLogs(c))...)
			}
		}
	})

	res.Violations = append(res.Violations, violations...)
	res.Failovers = failovers
	res.ElidedOps = int(elidedOps)
	res.Sweeps = sweeps
	for _, t := range timeouts {
		res.Timeouts += t
	}
	if hist != nil {
		res.Ops = hist.Len()
		wall := time.Now()
		res.Check = check.CheckLinearizable(check.KVModel(false), hist.Ops(), 0)
		res.CheckerWall = time.Since(wall)
		reg.CounterOf("chaos_ops_checked").Add(uint64(res.Check.Ops))
		reg.CounterOf("chaos_histories_verified").Inc()
		reg.HistogramOf("chaos_checker_wall").Observe(res.CheckerWall)
		if !res.Check.Ok {
			res.Violations = append(res.Violations,
				fmt.Sprintf("history of %d ops is not linearizable (elision reordered conflicting requests?)", res.Check.Ops))
		}
		if res.Check.Undecided {
			res.Violations = append(res.Violations, "linearizability undecided: step budget exhausted")
		}
	}
	res.OK = len(res.Violations) == 0
	res.Faults = faults
	reg.CounterOf("chaos_scenarios_run").Inc()
	if !res.OK {
		reg.CounterOf("chaos_scenarios_failed").Inc()
	}
	return res
}
