package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"rex/internal/apps/hashdb"
	"rex/internal/check"
	"rex/internal/cluster"
	"rex/internal/env"
	"rex/internal/obs"
	"rex/internal/shard"
	"rex/internal/sim"
)

// ShardScenarioConfig parameterizes the sharded fault-isolation scenario:
// kill one group's primary under load and demand that (a) the other
// groups keep committing at speed, (b) the killed group re-elects and
// serves again, and (c) every group's history stays linearizable.
type ShardScenarioConfig struct {
	Seed             int64
	Groups           int
	Nodes            int
	ReplicasPerGroup int
	Clients          int           // routed closed-loop clients
	Keys             int           // shared key space, routed across groups
	Phase            time.Duration // virtual length of each load phase
}

func (c ShardScenarioConfig) withDefaults() ShardScenarioConfig {
	if c.Groups <= 0 {
		c.Groups = 4
	}
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.ReplicasPerGroup <= 0 {
		c.ReplicasPerGroup = 3
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Keys <= 0 {
		c.Keys = 8 * c.Groups
	}
	if c.Phase <= 0 {
		c.Phase = time.Second
	}
	return c
}

// ShardResult is the scenario's verdict.
type ShardResult struct {
	OK            bool
	Violations    []string
	Ops           int // operations recorded across all groups
	Timeouts      int // operations with unknown outcome
	KilledGroup   int
	KilledReplica int
	PreKill       []float64 // per-group committed ops/sec before the kill
	PostKill      []float64 // per-group committed ops/sec after the kill
	Checks        []check.Result
}

// RunShardScenario executes the sharded chaos scenario under a fresh
// simulator. The load runs in two phases — Phase before the kill, Phase
// after — and each surviving group must keep at least half its pre-kill
// rate through the victim group's failover (blast-radius check). After
// the phases the crashed replica restarts and every group must pass
// state agreement, the prefix property, and per-group linearizability.
func RunShardScenario(cfg ShardScenarioConfig, reg *obs.Registry, logf func(string, ...any)) ShardResult {
	cfg = cfg.withDefaults()
	res := ShardResult{KilledGroup: -1, KilledReplica: -1}
	if reg == nil {
		reg = obs.NewRegistry()
	}

	e := sim.New(4)
	hists := make([]*check.History, cfg.Groups)
	var violations []string
	timeouts := 0
	e.Run(func() {
		m, err := shard.NewShardMap(1, cfg.Groups, cfg.Nodes, cfg.ReplicasPerGroup)
		if err != nil {
			violations = append(violations, err.Error())
			return
		}
		mc, err := cluster.NewMulti(e, hashdb.New(hashdb.DefaultOptions()), m, cluster.Options{
			Workers:         2,
			Timers:          hashdb.Timers(),
			ProposeEvery:    2 * time.Millisecond,
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 100 * time.Millisecond,
			StatusEvery:     20 * time.Millisecond,
			CheckpointEvery: 200 * time.Millisecond,
			Seed:            cfg.Seed,
			Logf:            logf,
		})
		if err != nil {
			violations = append(violations, err.Error())
			return
		}
		// As in Scenario.Run, no deferred Stop: the simulator reaps
		// remaining tasks itself when the run ends.
		if err := mc.Start(); err != nil {
			violations = append(violations, fmt.Sprintf("multi-cluster start: %v", err))
			return
		}
		if err := mc.WaitAllPrimaries(5 * time.Second); err != nil {
			violations = append(violations, err.Error())
			return
		}

		for g := range hists {
			hists[g] = check.NewHistory(e.Now)
		}
		key := func(k int) string { return fmt.Sprintf("k%d", k) }

		done := make([]uint64, cfg.Groups)
		mu := e.NewMutex()
		stop := false
		clients := env.GoEach(e, "shard-chaos-client", cfg.Clients, func(ci int) {
			// One client per group per routed task, recording each
			// group's operations into that group's history. Ids are
			// unique within every group because each task uses one id
			// for all groups.
			gcs := make([]*cluster.Client, cfg.Groups)
			for g := 0; g < cfg.Groups; g++ {
				cl := mc.Groups[g].NewClient(uint64(100 + ci))
				cl.Recorder = hists[g]
				gcs[g] = cl
			}
			rng := rand.New(rand.NewSource(cfg.Seed + int64(ci)*7919))
			for seq := 0; ; seq++ {
				mu.Lock()
				s := stop
				mu.Unlock()
				if s {
					return
				}
				k := key(rng.Intn(cfg.Keys))
				var body []byte
				switch r := rng.Intn(100); {
				case r < 45:
					body = hashdb.GetReq(k)
				case r < 90:
					body = hashdb.SetReq(k, []byte(fmt.Sprintf("c%d-n%d", ci, seq)))
				default:
					body = hashdb.DelReq(k)
				}
				g := m.GroupFor([]byte(k))
				if _, err := gcs[g].DoTimeout(body, 2*time.Second); err != nil {
					mu.Lock()
					timeouts++
					mu.Unlock()
					continue
				}
				mu.Lock()
				done[g]++
				mu.Unlock()
				e.Sleep(time.Duration(1+rng.Intn(4)) * time.Millisecond)
			}
		})

		snapshot := func() []uint64 {
			mu.Lock()
			defer mu.Unlock()
			return append([]uint64(nil), done...)
		}
		rates := func(a, b []uint64) []float64 {
			out := make([]float64, len(a))
			for i := range a {
				out[i] = float64(b[i]-a[i]) / cfg.Phase.Seconds()
			}
			return out
		}

		// Phase 1: healthy load.
		e.Sleep(cfg.Phase)
		pre0 := snapshot()
		e.Sleep(cfg.Phase)
		pre1 := snapshot()
		res.PreKill = rates(pre0, pre1)

		// Kill one group's primary (seed-derived victim).
		victim := int(uint64(cfg.Seed) % uint64(cfg.Groups))
		p, err := mc.CrashGroupPrimary(victim)
		if err != nil {
			violations = append(violations, err.Error())
			return
		}
		res.KilledGroup, res.KilledReplica = victim, p
		if logf != nil {
			logf("killed group %d primary (replica %d)", victim, p)
		}
		reg.CounterOf("chaos_shard_primary_kills").Inc()

		// Phase 2: the other groups must ride through the failover.
		post0 := snapshot()
		e.Sleep(cfg.Phase)
		post1 := snapshot()
		res.PostKill = rates(post0, post1)
		for g := 0; g < cfg.Groups; g++ {
			if g == victim {
				continue
			}
			if res.PostKill[g] < 0.5*res.PreKill[g] {
				violations = append(violations, fmt.Sprintf(
					"group %d throughput collapsed during group %d failover: %.0f -> %.0f ops/sec",
					g, victim, res.PreKill[g], res.PostKill[g]))
			}
		}

		// The killed group must re-elect and serve again.
		if _, err := mc.Groups[victim].WaitPrimary(5 * time.Second); err != nil {
			violations = append(violations, fmt.Sprintf("group %d after kill: %v", victim, err))
		}

		mu.Lock()
		stop = true
		mu.Unlock()
		clients.Wait()

		// Heal: restart the crashed replica, then every group must
		// quiesce into agreement with clean logs.
		if err := mc.Groups[victim].Restart(p); err != nil {
			violations = append(violations, fmt.Sprintf("restart group %d replica %d: %v", victim, p, err))
			return
		}
		for g := 0; g < cfg.Groups; g++ {
			states, faulted, err := mc.Groups[g].StableStates(30 * time.Second)
			if err != nil {
				violations = append(violations, fmt.Sprintf("group %d: %v", g, err))
				continue
			}
			for i, ferr := range faulted {
				violations = append(violations, fmt.Sprintf("group %d replica %d faulted after recovery: %v", g, i, ferr))
			}
			for _, v := range check.StateAgreement(states) {
				violations = append(violations, fmt.Sprintf("group %d: %s", g, v))
			}
			for _, v := range check.CheckPrefix(chosenLogs(mc.Groups[g])) {
				violations = append(violations, fmt.Sprintf("group %d: %s", g, v))
			}
		}
	})

	res.Violations = append(res.Violations, violations...)
	res.Timeouts = timeouts
	model := check.KVModel(false)
	for g, h := range hists {
		if h == nil {
			continue
		}
		res.Ops += h.Len()
		cr := check.CheckLinearizable(model, h.Ops(), 0)
		res.Checks = append(res.Checks, cr)
		reg.CounterOf("chaos_ops_checked").Add(uint64(cr.Ops))
		reg.CounterOf("chaos_histories_verified").Inc()
		if !cr.Ok {
			res.Violations = append(res.Violations,
				fmt.Sprintf("group %d history of %d ops is not linearizable", g, cr.Ops))
		}
		if cr.Undecided {
			res.Violations = append(res.Violations,
				fmt.Sprintf("group %d linearizability undecided: step budget exhausted", g))
		}
	}
	res.OK = len(res.Violations) == 0
	reg.CounterOf("chaos_shard_scenarios_run").Inc()
	if !res.OK {
		reg.CounterOf("chaos_shard_scenarios_failed").Inc()
	}
	return res
}
