package chaos

import (
	"testing"

	"rex/internal/obs"
)

// TestRebalanceScenario runs the live-rebalancing chaos scenario on a
// pinned seed: at least one split, one merge, and one move must complete
// while primaries are killed and restarted underneath the migration, and
// the global routed history, the per-group replica states, and every
// client's session guarantees must all check out afterwards.
func TestRebalanceScenario(t *testing.T) {
	reg := obs.NewRegistry()
	res := RunRebalanceScenario(RebalanceScenarioConfig{
		Seed:    9,
		Groups:  3,
		Nodes:   3,
		Clients: 4,
	}, reg, t.Logf)
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if !res.OK {
		t.Fatalf("scenario failed: %d splits, %d merges, %d moves, %d kills, map v%d",
			res.Splits, res.Merges, res.Moves, res.Kills, res.MapVersion)
	}
	if res.Splits < 1 || res.Merges < 1 || res.Moves < 1 {
		t.Fatalf("plan incomplete: %d splits, %d merges, %d moves", res.Splits, res.Merges, res.Moves)
	}
	if res.Kills < 1 {
		t.Fatalf("no primary was killed during the churn")
	}
	if res.Ops == 0 {
		t.Fatal("no operations recorded")
	}
	snap := reg.Snapshot()
	if snap.Counter("rex_rebalance_total") == 0 {
		t.Error("rex_rebalance_total = 0, want > 0")
	}
	if snap.Counter("rex_rebalance_moved_bytes") == 0 {
		t.Error("rex_rebalance_moved_bytes = 0, want > 0")
	}
}
