package chaos

import (
	"testing"
	"time"

	"rex/internal/obs"
)

// TestShardScenarioIsolation kills one group's primary under load and
// verifies the blast radius stays inside that group: the other groups
// keep committing, the victim re-elects, and every group's history stays
// linearizable.
func TestShardScenarioIsolation(t *testing.T) {
	reg := obs.NewRegistry()
	res := RunShardScenario(ShardScenarioConfig{
		Seed:    3,
		Groups:  3,
		Nodes:   3,
		Clients: 6,
		Phase:   700 * time.Millisecond,
	}, reg, t.Logf)
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if !res.OK {
		t.Fatalf("scenario failed (killed group %d replica %d, pre %v post %v)",
			res.KilledGroup, res.KilledReplica, res.PreKill, res.PostKill)
	}
	if res.KilledGroup < 0 || res.KilledReplica < 0 {
		t.Fatalf("no primary was killed: %+v", res)
	}
	if res.Ops == 0 {
		t.Fatal("no operations recorded")
	}
	if len(res.Checks) != 3 {
		t.Fatalf("got %d per-group checks, want 3", len(res.Checks))
	}
	// The load must actually have exercised every group in both phases.
	for g, r := range res.PreKill {
		if r <= 0 {
			t.Errorf("group %d idle before the kill", g)
		}
	}
	snap := reg.Snapshot()
	if snap.Counter("chaos_shard_primary_kills") != 1 {
		t.Errorf("chaos_shard_primary_kills = %d, want 1", snap.Counter("chaos_shard_primary_kills"))
	}
}
