package chaos

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"rex/internal/check"
	"rex/internal/cluster"
	"rex/internal/env"
	"rex/internal/obs"
	"rex/internal/readpath"
	"rex/internal/sim"
	"rex/internal/storage"

	"rex/internal/apps/hashdb"
)

// OverloadScenarioConfig parameterizes one overload chaos run.
type OverloadScenarioConfig struct {
	Seed     int64
	Duration time.Duration // virtual length of the storm phase
	Clients  int           // storm workers (each its own client)
}

// overload scenario tuning: a deliberately tiny primary (16 admitted, 24
// waiting) so the worker fleet — three times that capacity — saturates it
// hard enough to engage both the CoDel controller and the hard waiter cap.
const (
	overloadMaxOutstanding = 16
	overloadMaxWaiters     = 24
	overloadAdmTarget      = 5 * time.Millisecond
	overloadAdmInterval    = 25 * time.Millisecond
	overloadOpTimeout      = 250 * time.Millisecond
	// overloadRecorded caps how many storm workers feed the history: the
	// whole fleet's ops on one hot key would blow the WGL checker's
	// budget, and a sampled history already catches a lost or stale write.
	overloadRecorded = 6
)

// RunOverloadScenario drives a three-replica hashdb cluster into
// saturation and proves the overload-protection contract end to end:
//
//   - a zipfian hot-key write storm from a worker fleet several times the
//     primary's admission capacity, with short per-op deadlines so the
//     propagated budget is exercised on every hop;
//   - the primary is crashed and restarted mid-storm, so shedding and
//     failover interleave;
//   - a monitor samples the primary's admitted and waiting request
//     counts throughout: they must never exceed the configured bounds
//     (the never-OOM-queue guarantee);
//   - after the storm the cluster must serve a closed-loop probe again
//     (graceful recovery, not congestion collapse);
//   - the surviving history — sheds and expired deadlines are discarded
//     as definite no-executes — must be linearizable, and the run must
//     actually have shed (rex_shed_total > 0) and failed over at least
//     once, or the storm never bit.
func RunOverloadScenario(cfg OverloadScenarioConfig, reg *obs.Registry, logf func(string, ...any)) Result {
	if cfg.Duration <= 0 {
		cfg.Duration = 1500 * time.Millisecond
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 48
	}
	res := Result{Seed: cfg.Seed, App: "hashdb"}
	if reg == nil {
		reg = obs.NewRegistry()
	}

	e := sim.New(4)
	var hist *check.History
	var violations []string
	var faults, failovers int
	var sheds, deadlineErrs uint64
	var maxOutstanding, maxWaiters int
	var budgetExhausted, recoveryOps int
	timeouts := make([]int, cfg.Clients)
	budgetDry := make([]int, cfg.Clients)
	recovered := make([]int, 4)
	e.Run(func() {
		c := cluster.New(e, hashdb.New(hashdb.DefaultOptions()), cluster.Options{
			Replicas:            3,
			Workers:             2,
			Timers:              hashdb.Timers(),
			ReadWorkers:         2,
			ProposeEvery:        2 * time.Millisecond,
			HeartbeatEvery:      20 * time.Millisecond,
			ElectionTimeout:     120 * time.Millisecond,
			StatusEvery:         20 * time.Millisecond,
			CheckpointEvery:     200 * time.Millisecond,
			ReadWaitTimeout:     300 * time.Millisecond,
			MaxOutstanding:      overloadMaxOutstanding,
			MaxAdmissionWaiters: overloadMaxWaiters,
			AdmissionTarget:     overloadAdmTarget,
			AdmissionInterval:   overloadAdmInterval,
			Seed:                cfg.Seed,
			Logf:                logf,
			NewLog:              func(int) storage.Log { return storage.NewMemLog() },
		})
		if err := c.Start(); err != nil {
			violations = append(violations, fmt.Sprintf("cluster start: %v", err))
			return
		}
		if _, err := c.WaitPrimary(5 * time.Second); err != nil {
			violations = append(violations, err.Error())
			return
		}

		hist = check.NewHistory(e.Now)
		begin := e.Now()
		stormEnd := begin + cfg.Duration
		note := func(name, format string, args ...any) {
			faults++
			reg.CounterOf("chaos_fault_" + name).Inc()
			if logf != nil {
				logf("chaos: "+format, args...)
			}
		}
		// shedCount sums the overload counters across live replicas.
		counters := func(name string) (total uint64) {
			for i := 0; i < c.Size(); i++ {
				if r := c.Replica(i); r != nil {
					total += r.Metrics().Counter(name)
				}
			}
			return total
		}

		// The monitor proves the bounded-queue guarantee: whatever the
		// storm offers, the primary's admitted set and admission wait
		// queue stay under their configured caps. It runs for the storm
		// (plus a margin into recovery) and is the only writer of the
		// peaks; they are read after its Wait.
		monitor := env.GoEach(e, "overload-monitor", 1, func(int) {
			for e.Now() < stormEnd+200*time.Millisecond {
				if p := c.Primary(); p >= 0 {
					if r := c.Replica(p); r != nil {
						if o := r.Stats().Outstanding; o > maxOutstanding {
							maxOutstanding = o
						}
						if w := int(r.Metrics().Gauges["rex_admission_waiters"]); w > maxWaiters {
							maxWaiters = w
						}
					}
				}
				e.Sleep(5 * time.Millisecond)
			}
		})

		// Mid-storm the nemesis kills the primary outright — overload
		// protection must survive a failover, and the new primary starts
		// shedding on its own. Counter snapshots are taken first: a
		// restarted replica's registry starts from zero.
		var preCrashSheds, preCrashDeadline uint64
		nemesis := env.GoEach(e, "overload-nemesis", 1, func(int) {
			e.Sleep(cfg.Duration / 3)
			p := c.Primary()
			if p < 0 {
				return
			}
			if r := c.Replica(p); r != nil {
				preCrashSheds = r.Metrics().Counter("rex_shed_total")
				preCrashDeadline = r.Metrics().Counter("rex_deadline_exceeded_total")
			}
			note("crash_primary", "crash primary %d mid-storm", p)
			c.Crash(p)
			// Let the survivors elect and shed on their own for a while.
			e.Sleep(400 * time.Millisecond)
			note("restart", "restart old primary %d", p)
			if err := c.Restart(p); err != nil && logf != nil {
				logf("chaos: restart %d: %v", p, err)
			}
			for e.Now() < stormEnd {
				np := c.Primary()
				if np >= 0 && np != p {
					failovers++
					return
				}
				e.Sleep(10 * time.Millisecond)
			}
		})

		// The storm: every worker is its own client hammering a zipfian
		// hot-key set in a tight loop with a short deadline — offered
		// load is set by fleet size, not completion rate, so it does not
		// back off when the cluster slows (open-loop saturation).
		clients := env.GoEach(e, "overload-client", cfg.Clients, func(ci int) {
			cl := c.NewClient(uint64(100 + ci))
			// The recorded sample and the bulk fleet use disjoint key
			// spaces: a recorded read returning an unrecorded client's
			// value would look like a lost write to the checker. Admission
			// pressure is global, so the bulk fleet still saturates the
			// gate for everyone.
			prefix := "bulk"
			if ci < overloadRecorded {
				cl.Recorder = hist
				prefix = "hot"
			}
			rng := rand.New(rand.NewSource(cfg.Seed + int64(ci)*7919))
			zipf := rand.NewZipf(rng, 1.3, 1.0, 31)
			for seq := 0; e.Now() < stormEnd; seq++ {
				key := fmt.Sprintf("%s-%d", prefix, zipf.Uint64())
				val := strconv.FormatUint(uint64(ci)<<32|uint64(seq), 10)
				if _, err := cl.DoTimeout(hashdb.SetReq(key, []byte(val)), overloadOpTimeout); err != nil {
					timeouts[ci]++
				}
				if seq%8 == 7 {
					// Linearizable reads ride along: under pressure they must
					// be served lease-only or shed — never go stale.
					if _, err := cl.QueryLevelTimeout(readpath.Linearizable, hashdb.GetReq(key), overloadOpTimeout); err != nil {
						timeouts[ci]++
					}
				}
			}
			budgetDry[ci] = int(cl.BudgetExhausted)
		})
		clients.Wait()
		nemesis.Wait()
		for _, b := range budgetDry {
			budgetExhausted += b
		}

		// Storm over: the cluster must come back to steady service.
		c.Net.Heal()
		sheds = counters("rex_shed_total") + preCrashSheds
		deadlineErrs = counters("rex_deadline_exceeded_total") + preCrashDeadline
		probe := env.GoEach(e, "overload-probe", 4, func(ci int) {
			cl := c.NewClient(uint64(900 + ci))
			cl.Recorder = hist
			key := fmt.Sprintf("probe-%d", ci)
			for seq := 0; seq < 10; seq++ {
				if _, err := cl.DoTimeout(hashdb.SetReq(key, []byte(strconv.Itoa(seq))), 3*time.Second); err == nil {
					recovered[ci]++
				}
				e.Sleep(5 * time.Millisecond)
			}
		})
		probe.Wait()
		monitor.Wait()
		for _, n := range recovered {
			recoveryOps += n
		}

		states, faulted, err := c.StableStates(30 * time.Second)
		if err != nil {
			violations = append(violations, err.Error())
			return
		}
		for i, ferr := range faulted {
			violations = append(violations, fmt.Sprintf("replica %d faulted after recovery: %v", i, ferr))
		}
		violations = append(violations, check.StateAgreement(states)...)
		violations = append(violations, check.CheckPrefix(chosenLogs(c))...)

		if failovers == 0 {
			violations = append(violations, "no failover observed: the nemesis never deposed the primary mid-storm")
		}
		if sheds == 0 {
			violations = append(violations, "no rex_shed_total increment: the storm never tripped admission control")
		}
		if maxOutstanding > overloadMaxOutstanding {
			violations = append(violations, fmt.Sprintf(
				"admitted requests peaked at %d, above the MaxOutstanding=%d bound", maxOutstanding, overloadMaxOutstanding))
		}
		if maxWaiters > overloadMaxWaiters {
			violations = append(violations, fmt.Sprintf(
				"admission waiters peaked at %d, above the MaxAdmissionWaiters=%d bound", maxWaiters, overloadMaxWaiters))
		}
		if recoveryOps < 32 { // 80% of the 40 probe ops
			violations = append(violations, fmt.Sprintf(
				"post-storm probe completed only %d/40 ops: the cluster did not recover steady service", recoveryOps))
		}
	})

	res.Violations = append(res.Violations, violations...)
	res.Failovers = failovers
	res.Sheds = int(sheds)
	res.DeadlineErrs = int(deadlineErrs)
	res.BudgetExhausted = budgetExhausted
	res.MaxOutstanding = maxOutstanding
	res.MaxWaiters = maxWaiters
	res.RecoveryOps = recoveryOps
	for _, t := range timeouts {
		res.Timeouts += t
	}
	if hist != nil {
		ops := hist.Ops()
		res.Ops = len(ops)
		res.Discarded = hist.Len() - len(ops)
		wall := time.Now()
		res.Check = check.CheckLinearizable(check.KVModel(false), ops, 0)
		res.CheckerWall = time.Since(wall)
		reg.CounterOf("chaos_ops_checked").Add(uint64(res.Check.Ops))
		reg.CounterOf("chaos_histories_verified").Inc()
		reg.HistogramOf("chaos_checker_wall").Observe(res.CheckerWall)
		if !res.Check.Ok {
			res.Violations = append(res.Violations,
				fmt.Sprintf("history of %d ops is not linearizable (lost write under overload?)", res.Check.Ops))
		}
		if res.Check.Undecided {
			res.Violations = append(res.Violations, "linearizability undecided: step budget exhausted")
		}
	}
	res.OK = len(res.Violations) == 0
	res.Faults = faults
	reg.CounterOf("chaos_scenarios_run").Inc()
	if !res.OK {
		reg.CounterOf("chaos_scenarios_failed").Inc()
	}
	return res
}
