package chaos

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"rex/internal/check"
	"rex/internal/cluster"
	"rex/internal/env"
	"rex/internal/obs"
	"rex/internal/readpath"
	"rex/internal/sim"
	"rex/internal/storage"

	"rex/internal/apps/hashdb"
	"rex/internal/wire"
)

// ReadsScenarioConfig parameterizes one consistent-read chaos run.
type ReadsScenarioConfig struct {
	Seed     int64
	Duration time.Duration // virtual length of the client load phase
	Clients  int
}

// RunReadsScenario stresses the consistent read path: a three-replica
// hashdb cluster with quorum read leases serves a mix of writes,
// linearizable reads, and session reads while the nemesis repeatedly
// isolates the primary mid-lease, forcing failovers. Each client writes
// strictly increasing versions to a private key, so the run can assert
// the whole read-path contract at once:
//
//   - no stale linearizable read: lin reads are recorded into the
//     history next to the writes and the WGL checker holds them to a
//     linearization point (a deposed primary answering from an expired
//     lease would surface here);
//   - read-your-writes / monotonic reads for session-level reads served
//     by secondaries (check.CheckSessionReads);
//   - the scenario actually exercised what it claims: at least one
//     failover, at least one lease-served linearizable read, and at
//     least one follower-served read.
func RunReadsScenario(cfg ReadsScenarioConfig, reg *obs.Registry, logf func(string, ...any)) Result {
	if cfg.Duration <= 0 {
		cfg.Duration = 3 * time.Second
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	// hashdb is the classified application: gets are follower-safe.
	res := Result{Seed: cfg.Seed, App: "hashdb"}
	if reg == nil {
		reg = obs.NewRegistry()
	}

	e := sim.New(4)
	var hist *check.History
	var violations []string
	var faults, failovers int
	var followerReads, leaseReads uint64
	timeouts := make([]int, cfg.Clients)
	events := make([][]check.SessionEvent, cfg.Clients)
	clientViolations := make([][]string, cfg.Clients)
	e.Run(func() {
		c := cluster.New(e, hashdb.New(hashdb.DefaultOptions()), cluster.Options{
			Replicas:        3,
			Workers:         2,
			Timers:          hashdb.Timers(),
			ReadWorkers:     2,
			ProposeEvery:    2 * time.Millisecond,
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 120 * time.Millisecond,
			StatusEvery:     20 * time.Millisecond,
			CheckpointEvery: 200 * time.Millisecond,
			ReadWaitTimeout: 300 * time.Millisecond,
			Seed:            cfg.Seed,
			Logf:            logf,
			NewLog:          func(int) storage.Log { return storage.NewMemLog() },
		})
		if err := c.Start(); err != nil {
			violations = append(violations, fmt.Sprintf("cluster start: %v", err))
			return
		}
		if _, err := c.WaitPrimary(5 * time.Second); err != nil {
			violations = append(violations, err.Error())
			return
		}

		hist = check.NewHistory(e.Now)
		rng := rand.New(rand.NewSource(cfg.Seed ^ 0x6ead5))
		begin := e.Now()
		note := func(name, format string, args ...any) {
			faults++
			reg.CounterOf("chaos_fault_" + name).Inc()
			if logf != nil {
				logf("chaos: "+format, args...)
			}
		}

		nemesis := env.GoEach(e, "reads-nemesis", 1, func(int) {
			last := c.Primary()
			for e.Now() < begin+cfg.Duration {
				e.Sleep(time.Duration(200+rng.Intn(150)) * time.Millisecond)
				p := c.Primary()
				if p < 0 {
					continue
				}
				if p != last {
					failovers++
					last = p
				}
				// Isolate the primary while its lease is almost certainly
				// live: lease reads keep flowing (they are still
				// linearizable — no rival can win an election before the
				// grant expires), then the cluster must fail over.
				note("isolate_primary", "isolate primary %d mid-lease", p)
				c.Net.Isolate(p, true)
				e.Sleep(time.Duration(280+rng.Intn(170)) * time.Millisecond)
				c.Net.Isolate(p, false)
				note("heal", "heal old primary %d", p)
			}
			if p := c.Primary(); p >= 0 && p != last {
				failovers++
			}
		})
		clients := env.GoEach(e, "reads-client", cfg.Clients, func(ci int) {
			cl := c.NewClient(uint64(100 + ci))
			cl.Recorder = hist
			crng := rand.New(rand.NewSource(cfg.Seed + int64(ci)*7919))
			key := fmt.Sprintf("sess-%d", cl.ID)
			version := uint64(0)
			record := func(kind check.SessionEventKind, ver uint64, level string) {
				events[ci] = append(events[ci], check.SessionEvent{
					Client: cl.ID, Kind: kind, Version: ver, Level: level,
				})
			}
			readVersion := func(resp []byte) (uint64, bool) {
				d := wire.NewDecoder(resp)
				ok := d.Bool()
				val := d.BytesVal()
				if d.Err() != nil {
					clientViolations[ci] = append(clientViolations[ci], fmt.Sprintf("client %d: corrupt read response %x", cl.ID, resp))
					return 0, false
				}
				if !ok {
					return 0, true // key absent: version 0
				}
				v, err := strconv.ParseUint(string(val), 10, 64)
				if err != nil {
					clientViolations[ci] = append(clientViolations[ci], fmt.Sprintf("client %d: unparseable version %q", cl.ID, val))
					return 0, false
				}
				return v, true
			}
			for seq := 0; e.Now() < begin+cfg.Duration || seq == 0; seq++ {
				version++
				body := hashdb.SetReq(key, []byte(strconv.FormatUint(version, 10)))
				if _, err := cl.DoTimeout(body, 3*time.Second); err != nil {
					timeouts[ci]++
					// Outcome unknown: the write may commit late (or
					// never), so it must not raise the read floor.
				} else {
					record(check.SessionWrite, version, "")
				}
				level, name := readpath.Session, "session"
				if seq%3 == 1 {
					level, name = readpath.Linearizable, "linearizable"
				}
				resp, err := cl.QueryLevelTimeout(level, hashdb.GetReq(key), 3*time.Second)
				if err != nil {
					timeouts[ci]++
				} else if v, ok := readVersion(resp); ok {
					record(check.SessionRead, v, name)
				}
				if seq%5 == 4 {
					// Eventual reads ride along to exercise the weakest
					// path; they promise nothing worth checking here.
					if _, err := cl.QueryLevelTimeout(readpath.Eventual, hashdb.GetReq(key), 3*time.Second); err != nil {
						timeouts[ci]++
					}
				}
				e.Sleep(time.Duration(2+crng.Intn(8)) * time.Millisecond)
			}
		})
		clients.Wait()
		nemesis.Wait()
		for _, vs := range clientViolations {
			violations = append(violations, vs...)
		}

		// Heal and check the structural contract.
		c.Net.Heal()
		states, faulted, err := c.StableStates(30 * time.Second)
		if err != nil {
			violations = append(violations, err.Error())
			return
		}
		for i, ferr := range faulted {
			violations = append(violations, fmt.Sprintf("replica %d faulted after recovery: %v", i, ferr))
		}
		violations = append(violations, check.StateAgreement(states)...)
		violations = append(violations, check.CheckPrefix(chosenLogs(c))...)

		for i := 0; i < c.Size(); i++ {
			if r := c.Replica(i); r != nil {
				followerReads += r.Metrics().Counter("rex_follower_reads_total")
				leaseReads += r.Metrics().Counter("rex_lease_reads_total")
			}
		}
		if failovers == 0 {
			violations = append(violations, "no failover observed: the nemesis never deposed a primary")
		}
		if leaseReads == 0 {
			violations = append(violations, "no rex_lease_reads_total increment: no linearizable read was served off the lease")
		}
		if followerReads == 0 {
			violations = append(violations, "no rex_follower_reads_total increment: no read was served by a secondary")
		}
	})

	res.Violations = append(res.Violations, violations...)
	res.Failovers = failovers
	res.FollowerReads = int(followerReads)
	res.LeaseReads = int(leaseReads)
	for _, t := range timeouts {
		res.Timeouts += t
	}
	var merged []check.SessionEvent
	for _, evs := range events {
		merged = append(merged, evs...)
	}
	res.SessionOps = len(merged)
	res.Violations = append(res.Violations, check.CheckSessionReads(merged)...)
	if hist != nil {
		res.Ops = hist.Len()
		wall := time.Now()
		res.Check = check.CheckLinearizable(check.KVModel(false), hist.Ops(), 0)
		res.CheckerWall = time.Since(wall)
		reg.CounterOf("chaos_ops_checked").Add(uint64(res.Check.Ops))
		reg.CounterOf("chaos_histories_verified").Inc()
		reg.HistogramOf("chaos_checker_wall").Observe(res.CheckerWall)
		if !res.Check.Ok {
			res.Violations = append(res.Violations,
				fmt.Sprintf("history of %d ops is not linearizable (stale linearizable read?)", res.Check.Ops))
		}
		if res.Check.Undecided {
			res.Violations = append(res.Violations, "linearizability undecided: step budget exhausted")
		}
	}
	res.OK = len(res.Violations) == 0
	res.Faults = faults
	reg.CounterOf("chaos_scenarios_run").Inc()
	if !res.OK {
		reg.CounterOf("chaos_scenarios_failed").Inc()
	}
	return res
}
