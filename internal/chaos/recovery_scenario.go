package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"rex/internal/check"
	"rex/internal/cluster"
	"rex/internal/env"
	"rex/internal/obs"
	"rex/internal/sim"
	"rex/internal/storage"
)

// RecoveryScenarioConfig parameterizes one bounded-recovery chaos run.
type RecoveryScenarioConfig struct {
	Seed     int64
	App      string        // "" or "all" derives the app from the seed
	Duration time.Duration // virtual length of the client load phase
	Clients  int
}

// RunRecoveryScenario runs the bounded-recovery nemesis: a three-replica
// cluster with periodic checkpoints DISABLED (the checkpoint floor is the
// only thing bounding log growth) is driven through promote/demote churn —
// the current primary is repeatedly isolated just long enough for a new
// leader to win and issue a rebasing delta, then healed so the deposed
// primary demotes and rebuilds mid-stream. A secondary is also crashed and
// restarted after the floor has compacted the log, forcing it to recover
// via snapshot and follow committed deltas whose cuts may run beyond its
// rebuilt trace. This is the configuration that used to livelock under
// churn and then kill replicas with "panic: trace: base cut ... beyond
// available events"; the run must instead end with every replica live, the
// client history linearizable, states agreeing, and at least one
// rex_resync_total increment proving the defensive resync path fired.
func RunRecoveryScenario(cfg RecoveryScenarioConfig, reg *obs.Registry, logf func(string, ...any)) Result {
	if cfg.Duration <= 0 {
		cfg.Duration = 3 * time.Second
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	app := cfg.App
	if app == "" || app == "all" {
		names := Apps()
		app = names[uint64(cfg.Seed)%uint64(len(names))]
	}
	res := Result{Seed: cfg.Seed, App: app}
	spec, err := specFor(app)
	if err != nil {
		res.Violations = append(res.Violations, err.Error())
		return res
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}

	e := sim.New(4)
	var hist *check.History
	var violations []string
	var faults, resyncs int
	timeouts := make([]int, cfg.Clients)
	e.Run(func() {
		c := cluster.New(e, spec.factory, cluster.Options{
			Replicas:        3,
			Workers:         2,
			Timers:          spec.timers,
			ProposeEvery:    2 * time.Millisecond,
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 120 * time.Millisecond,
			StatusEvery:     20 * time.Millisecond,
			CheckpointEvery: 0,  // periodic checkpoints off: the old livelock setup
			MaxLogInstances: 48, // the log-growth floor is the only checkpoint driver
			Seed:            cfg.Seed,
			Logf:            logf,
			NewLog:          func(int) storage.Log { return storage.NewMemLog() },
		})
		if err := c.Start(); err != nil {
			violations = append(violations, fmt.Sprintf("cluster start: %v", err))
			return
		}
		if _, err := c.WaitPrimary(5 * time.Second); err != nil {
			violations = append(violations, err.Error())
			return
		}

		hist = check.NewHistory(e.Now)
		rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5ec0fe5))
		begin := e.Now()
		note := func(name, format string, args ...any) {
			faults++
			reg.CounterOf("chaos_fault_" + name).Inc()
			if logf != nil {
				logf("chaos: "+format, args...)
			}
		}
		fail := func(format string, args ...any) {
			violations = append(violations, fmt.Sprintf(format, args...))
		}
		sleep := func(min, max int) {
			e.Sleep(time.Duration(min+rng.Intn(max-min)) * time.Millisecond)
		}

		nemesis := env.GoEach(e, "recovery-nemesis", 1, func(int) {
			crashRound := 2 + rng.Intn(3) // bounce a secondary once, mid-churn
			for round := 0; e.Now() < begin+cfg.Duration; round++ {
				sleep(180, 320)
				p := c.Primary()
				if p < 0 {
					continue
				}
				note("isolate_primary", "round %d: isolate primary %d", round, p)
				c.Net.Isolate(p, true)
				sleep(150, 260)
				c.Net.Isolate(p, false)
				note("heal", "round %d: heal primary %d", round, p)
				if round == crashRound {
					// Bounce a secondary so its recovery has to cross whatever
					// the checkpoint floor compacted in the meantime.
					victim := (c.Primary() + 1) % c.Size()
					if victim == p {
						victim = (victim + 1) % c.Size()
					}
					note("crash_replica", "round %d: crash secondary %d", round, victim)
					c.Crash(victim)
					sleep(500, 800)
					if err := c.Restart(victim); err != nil {
						fail("round %d restart %d: %v", round, victim, err)
						return
					}
					note("restart_replica", "round %d: restart secondary %d", round, victim)
				}
			}
		})
		clients := env.GoEach(e, "recovery-client", cfg.Clients, func(ci int) {
			cl := c.NewClient(uint64(100 + ci))
			cl.Recorder = hist
			crng := rand.New(rand.NewSource(cfg.Seed + int64(ci)*7919))
			for seq := 0; e.Now() < begin+cfg.Duration || seq == 0; seq++ {
				body := spec.gen(crng, cl.ID, seq)
				if _, err := cl.DoTimeout(body, 3*time.Second); err != nil {
					timeouts[ci]++
				}
				e.Sleep(time.Duration(2+crng.Intn(8)) * time.Millisecond)
			}
		})
		nemesis.Wait()
		clients.Wait()

		// Recover: heal the network and bring every replica back.
		c.Net.Heal()
		for i := 0; i < c.Size(); i++ {
			if c.Replica(i) == nil {
				if err := c.Restart(i); err != nil {
					fail("recovery restart %d: %v", i, err)
					return
				}
			}
		}
		states, faulted, err := c.StableStates(30 * time.Second)
		if err != nil {
			violations = append(violations, err.Error())
			return
		}
		for i, ferr := range faulted {
			fail("replica %d faulted after recovery: %v", i, ferr)
		}
		violations = append(violations, check.StateAgreement(states)...)
		violations = append(violations, check.CheckPrefix(chosenLogs(c))...)

		for i := 0; i < c.Size(); i++ {
			if r := c.Replica(i); r != nil {
				resyncs += int(r.Metrics().Counter("rex_resync_total"))
			}
		}
		if resyncs == 0 {
			fail("no rex_resync_total increment: the scenario never exercised the resync path")
		}
	})

	res.Violations = append(res.Violations, violations...)
	res.Resyncs = resyncs
	for _, t := range timeouts {
		res.Timeouts += t
	}
	if hist != nil {
		res.Ops = hist.Len()
		wall := time.Now()
		res.Check = check.CheckLinearizable(spec.model, hist.Ops(), 0)
		res.CheckerWall = time.Since(wall)
		reg.CounterOf("chaos_ops_checked").Add(uint64(res.Check.Ops))
		reg.CounterOf("chaos_histories_verified").Inc()
		reg.HistogramOf("chaos_checker_wall").Observe(res.CheckerWall)
		if !res.Check.Ok {
			res.Violations = append(res.Violations,
				fmt.Sprintf("history of %d ops is not linearizable (%s)", res.Check.Ops, app))
		}
		if res.Check.Undecided {
			res.Violations = append(res.Violations, "linearizability undecided: step budget exhausted")
		}
	}
	res.OK = len(res.Violations) == 0
	res.Faults = faults
	reg.CounterOf("chaos_scenarios_run").Inc()
	if !res.OK {
		reg.CounterOf("chaos_scenarios_failed").Inc()
	}
	return res
}
