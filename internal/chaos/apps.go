package chaos

import (
	"fmt"
	"math/rand"

	"rex/internal/apps/hashdb"
	"rex/internal/apps/lockserver"
	"rex/internal/apps/memcache"
	"rex/internal/check"
	"rex/internal/core"
)

// appSpec binds one application to its chaos workload and its sequential
// model. The workloads use a deliberately small key space with unique
// values per write, so the history is dense enough for the checker to
// have teeth.
type appSpec struct {
	name    string
	timers  int
	factory core.Factory
	model   check.Model
	// gen produces the next request body. seq is a per-client counter
	// used to make written values unique.
	gen func(rng *rand.Rand, client uint64, seq int) []byte
}

const (
	chaosKeys      = 8
	chaosLockNames = 6
)

// Apps lists the applications the chaos runner supports.
func Apps() []string { return []string{"hashdb", "memcache", "lockserver"} }

func specFor(name string) (appSpec, error) {
	switch name {
	case "hashdb":
		return appSpec{
			name:    name,
			timers:  hashdb.Timers(),
			factory: hashdb.New(hashdb.DefaultOptions()),
			model:   check.KVModel(false),
			gen: func(rng *rand.Rand, client uint64, seq int) []byte {
				key := fmt.Sprintf("k%d", rng.Intn(chaosKeys))
				switch r := rng.Intn(100); {
				case r < 45:
					return hashdb.GetReq(key)
				case r < 90:
					return hashdb.SetReq(key, []byte(fmt.Sprintf("c%d-n%d", client, seq)))
				default:
					return hashdb.DelReq(key)
				}
			},
		}, nil
	case "memcache":
		// DefaultOptions' capacity (256k items) is never reached by an
		// 8-key workload, but the model still forgives eviction misses.
		return appSpec{
			name:    name,
			timers:  memcache.Timers(),
			factory: memcache.New(memcache.DefaultOptions()),
			model:   check.KVModel(true),
			gen: func(rng *rand.Rand, client uint64, seq int) []byte {
				key := fmt.Sprintf("k%d", rng.Intn(chaosKeys))
				switch r := rng.Intn(100); {
				case r < 45:
					return memcache.GetReq(key)
				case r < 90:
					return memcache.SetReq(key, []byte(fmt.Sprintf("c%d-n%d", client, seq)))
				default:
					return memcache.DelReq(key)
				}
			},
		}, nil
	case "lockserver":
		return appSpec{
			name:    name,
			timers:  0,
			factory: lockserver.New(lockserver.DefaultOptions()),
			model:   check.LockModel(),
			gen: func(rng *rand.Rand, client uint64, seq int) []byte {
				name := fmt.Sprintf("lk%d", rng.Intn(chaosLockNames))
				switch r := rng.Intn(100); {
				case r < 40:
					return lockserver.RenewReq(name, client)
				case r < 65:
					return lockserver.CreateReq(name, client, []byte(fmt.Sprintf("c%d-n%d", client, seq)))
				case r < 80:
					return lockserver.UpdateReq(name, client, []byte(fmt.Sprintf("c%d-n%d", client, seq)))
				default:
					return lockserver.InfoReq(name)
				}
			},
		}, nil
	}
	return appSpec{}, fmt.Errorf("chaos: unknown app %q (have %v)", name, Apps())
}
