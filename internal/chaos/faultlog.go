// Package chaos is the fault-injection engine: seed-deterministic
// nemesis schedules (crashes, primary kills, partitions, message loss
// and delay bursts, WAL write errors) executed against an in-process
// cluster under the simulator, plus the scenario runner that drives a
// recorded client workload through the faults and hands the evidence —
// concurrent histories, chosen logs, quiesced states — to the check
// package for verdicts.
package chaos

import (
	"fmt"
	"sync"

	"rex/internal/storage"
)

// FaultLog wraps a storage.Log and fails the next armed number of
// Appends, modelling a dying disk under the consensus WAL. The paxos
// node reacts crash-stop, so the chaos engine treats an armed fault as a
// delayed crash of that replica.
type FaultLog struct {
	mu       sync.Mutex
	inner    storage.Log
	armed    int
	injected uint64
}

// NewFaultLog wraps inner.
func NewFaultLog(inner storage.Log) *FaultLog {
	return &FaultLog{inner: inner}
}

// FailAppends arms the next n Append calls to fail.
func (l *FaultLog) FailAppends(n int) {
	l.mu.Lock()
	l.armed = n
	l.mu.Unlock()
}

// Disarm cancels any pending injected failures (used before final
// recovery so the cluster can heal).
func (l *FaultLog) Disarm() {
	l.mu.Lock()
	l.armed = 0
	l.mu.Unlock()
}

// Injected reports how many appends were failed.
func (l *FaultLog) Injected() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.injected
}

// Append implements storage.Log.
func (l *FaultLog) Append(rec []byte) error {
	l.mu.Lock()
	if l.armed > 0 {
		l.armed--
		l.injected++
		l.mu.Unlock()
		return fmt.Errorf("chaos: injected WAL write error")
	}
	l.mu.Unlock()
	return l.inner.Append(rec)
}

// AppendBatch implements storage.Log. An armed fault consumes up to one
// arming per record in the batch and fails the whole batch: a group
// commit is one unit of durability, so a dying disk takes every record in
// the flush down with it (the paxos node reacts crash-stop either way).
func (l *FaultLog) AppendBatch(recs [][]byte) error {
	l.mu.Lock()
	if l.armed > 0 {
		n := len(recs)
		if n > l.armed {
			n = l.armed
		}
		l.armed -= n
		l.injected += uint64(n)
		l.mu.Unlock()
		return fmt.Errorf("chaos: injected WAL write error (batch)")
	}
	l.mu.Unlock()
	return l.inner.AppendBatch(recs)
}

// Records implements storage.Log.
func (l *FaultLog) Records() ([][]byte, error) { return l.inner.Records() }

// Rewrite implements storage.Log.
func (l *FaultLog) Rewrite(recs [][]byte) error { return l.inner.Rewrite(recs) }

// Close implements storage.Log.
func (l *FaultLog) Close() error { return l.inner.Close() }
