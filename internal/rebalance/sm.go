package rebalance

import (
	"bytes"
	"io"
	"sort"

	"rex/internal/core"
	"rex/internal/rexsync"
	"rex/internal/sched"
	"rex/internal/shard"
	"rex/internal/wire"
)

// ownedRange is one contiguous span of the hash space this group serves.
// Spans are inclusive on both ends, sorted by Lo, non-overlapping.
type ownedRange struct {
	Lo, Hi uint64
	// Epoch is the map version at which the span was acquired (or the
	// initial map version). A request routed under a higher epoch than
	// the span's is NACKed ReplyStale: the replica has not replayed the
	// ownership change the router observed.
	Epoch uint64
}

// frozenSpan is a span behind the migration write barrier, headed for
// map version Ver.
type frozenSpan struct {
	Lo, Hi, Ver uint64
}

// stagedImport is state shipped from a source group, awaiting adoption.
type stagedImport struct {
	Lo, Hi, Ver uint64
	Blob        []byte
}

// groupState is the wrapper's replicated state. It changes only inside
// replicated control handlers (under the exclusive ownership lock), so
// every replica agrees on it at every trace position; checkpoints carry
// it alongside the application state.
type groupState struct {
	// Version is the highest map version this group has locally acted on.
	Version uint64
	Owned   []ownedRange
	Frozen  []frozenSpan
	Staged  []stagedImport
	// Map home (group 0) only: the current full map and whether a
	// proposed version awaits finalize.
	HomeMap     []byte
	HomePending bool
}

// SM interposes on an application state machine to enforce replicated
// range ownership (see the package comment). It always implements
// QueryHandler and QueryClassifier so control queries work even over
// apps that do not; requests without the envelope magic pass through
// untouched.
type SM struct {
	app   core.StateMachine
	group int
	home  bool
	// lock orders application handlers (shared) against ownership
	// changes (exclusive): a control op that flips ownership is a true
	// write barrier — it waits for every in-flight handler that passed
	// the ownership check. It is not class-owned, so its events stay
	// fully traced and cross-class ordering through it is preserved.
	lock *rexsync.RWLock
	st   groupState
}

// WrapFactory wraps an application factory with the rebalance ownership
// layer for the given group. init is the bootstrap map (identical on
// every replica); the group's initial owned spans are its ranges there.
// Group `home` (conventionally 0) additionally hosts the map consensus
// sequence. The wrapped factory preserves the application's conflict
// classification when it has one (control ops classify catch-all, so
// they serialize against all classes under the dispatch barrier).
func WrapFactory(inner core.Factory, init *shard.ShardMap, group int, home bool) core.Factory {
	initBytes := init.EncodeBytes()
	return func(rt *sched.Runtime, host *core.TimerHost) core.StateMachine {
		s := &SM{group: group, home: home}
		s.lock = rexsync.NewRWLock(rt, "rebalance-own")
		s.app = inner(rt, host)
		s.st.Version = init.Version
		for i, r := range init.Ranges {
			if r.Group != group {
				continue
			}
			lo, hi := init.RangeBounds(i)
			s.st.Owned = append(s.st.Owned, ownedRange{Lo: lo, Hi: hi, Epoch: r.Epoch})
		}
		coalesceOwned(&s.st)
		if home {
			s.st.HomeMap = initBytes
		}
		if _, ok := s.app.(core.ConflictClassifier); ok {
			return &classifiedSM{SM: s}
		}
		return s
	}
}

// classifiedSM adds conflict classification on top of SM only when the
// wrapped application classifies — a wrapper that always classified
// would force unclassified apps' requests into the catch-all barrier.
type classifiedSM struct {
	*SM
}

// ClassifyConflict implements core.ConflictClassifier: application
// bodies delegate to the app's classes; control ops (and anything
// unparseable) are catch-all, so an ownership flip serializes against
// every in-flight class.
func (s *classifiedSM) ClassifyConflict(req []byte) core.ConflictClass {
	cc := s.app.(core.ConflictClassifier)
	kind, _, _, body, ok := shard.DecodeEnvelope(req)
	if !ok {
		return cc.ClassifyConflict(req)
	}
	if kind == shard.EnvApp {
		return cc.ClassifyConflict(body)
	}
	return core.ConflictAll
}

// coalesceOwned merges adjacent owned spans with equal epochs (bootstrap
// ranges of one group are contiguous per group only by luck; merging
// when possible keeps the lists short).
func coalesceOwned(st *groupState) {
	sort.Slice(st.Owned, func(i, j int) bool { return st.Owned[i].Lo < st.Owned[j].Lo })
	out := st.Owned[:0]
	for _, o := range st.Owned {
		if n := len(out); n > 0 && out[n-1].Epoch == o.Epoch && out[n-1].Hi != ^uint64(0) && out[n-1].Hi+1 == o.Lo {
			out[n-1].Hi = o.Hi
			continue
		}
		out = append(out, o)
	}
	st.Owned = out
}

// ownerIdx returns the index of the owned span containing h, or -1.
func (s *SM) ownerIdx(h uint64) int {
	for i, o := range s.st.Owned {
		if o.Lo <= h && h <= o.Hi {
			return i
		}
	}
	return -1
}

func (s *SM) frozenAt(h uint64) bool {
	for _, f := range s.st.Frozen {
		if f.Lo <= h && h <= f.Hi {
			return true
		}
	}
	return false
}

// admit checks an application envelope against ownership state. It
// returns 0 to admit, or the NACK status. Caller holds the lock.
func (s *SM) admit(epoch, h uint64, write bool) byte {
	i := s.ownerIdx(h)
	if i < 0 {
		if epoch > s.st.Version {
			// The router acted on a newer map than we have replayed; we
			// may be the destination of a not-yet-adopted move.
			return shard.ReplyStale
		}
		return shard.ReplyWrongGroup
	}
	if s.st.Owned[i].Epoch < epoch {
		return shard.ReplyStale
	}
	if write && s.frozenAt(h) {
		return shard.ReplyFrozen
	}
	return 0
}

// Apply implements core.StateMachine.
func (s *SM) Apply(ctx *core.Ctx, req []byte) []byte {
	kind, epoch, h, body, ok := shard.DecodeEnvelope(req)
	if !ok {
		return s.app.Apply(ctx, req)
	}
	w := ctx.Worker()
	if kind == shard.EnvCtrl {
		return s.applyCtrl(ctx, body)
	}
	// Hold the ownership lock shared across the whole handler: an
	// ownership flip (exclusive) then genuinely waits out every admitted
	// in-flight write — the write barrier the migration depends on.
	s.lock.RLock(w)
	if st := s.admit(epoch, h, true); st != 0 {
		ver := s.st.Version
		s.lock.RUnlock(w)
		return shard.NackReply(st, ver)
	}
	resp := s.app.Apply(ctx, body)
	s.lock.RUnlock(w)
	return shard.OKReply(resp)
}

// Query implements core.QueryHandler. Reads are admitted on frozen
// spans (the freeze is a write barrier; committed state stays readable
// at the source until the ownership flip releases it).
func (s *SM) Query(ctx *core.Ctx, q []byte) []byte {
	kind, epoch, h, body, ok := shard.DecodeEnvelope(q)
	if !ok {
		if qh, qok := s.app.(core.QueryHandler); qok {
			return qh.Query(ctx, q)
		}
		return nil
	}
	w := ctx.Worker()
	if kind == shard.EnvCtrl {
		return s.queryCtrl(ctx, body)
	}
	qh, qok := s.app.(core.QueryHandler)
	if !qok {
		return shard.ErrReply("application has no query handler")
	}
	s.lock.RLock(w)
	if st := s.admit(epoch, h, false); st != 0 {
		ver := s.st.Version
		s.lock.RUnlock(w)
		return shard.NackReply(st, ver)
	}
	resp := qh.Query(ctx, body)
	s.lock.RUnlock(w)
	return shard.OKReply(resp)
}

// ClassifyQuery implements core.QueryClassifier: control queries are
// primary-only (the coordinator reads them linearizably anyway);
// application bodies delegate to the app's classifier, default-deny.
func (s *SM) ClassifyQuery(q []byte) core.QueryClass {
	kind, _, _, body, ok := shard.DecodeEnvelope(q)
	if !ok {
		if qc, cok := s.app.(core.QueryClassifier); cok {
			return qc.ClassifyQuery(q)
		}
		return core.QueryPrimaryOnly
	}
	if kind == shard.EnvCtrl {
		return core.QueryPrimaryOnly
	}
	if qc, cok := s.app.(core.QueryClassifier); cok {
		return qc.ClassifyQuery(body)
	}
	return core.QueryPrimaryOnly
}

// applyCtrl executes one replicated control op under the exclusive
// ownership lock. Every op is idempotent — a coordinator that loses a
// response to a failover can blindly resubmit (with a fresh sequence
// number) and converge.
func (s *SM) applyCtrl(ctx *core.Ctx, body []byte) []byte {
	w := ctx.Worker()
	d := wire.NewDecoder(body)
	op := d.Byte()
	s.lock.Lock(w)
	defer s.lock.Unlock(w)
	switch op {
	case opFreeze:
		lo, hi, ver := d.Uvarint(), d.Uvarint(), d.Uvarint()
		if d.Err() != nil {
			return shard.ErrReply("freeze: bad encoding")
		}
		return s.freeze(lo, hi, ver)
	case opImportStage:
		lo, hi, ver := d.Uvarint(), d.Uvarint(), d.Uvarint()
		blob := d.BytesVal()
		if d.Err() != nil {
			return shard.ErrReply("import: bad encoding")
		}
		return s.importStage(lo, hi, ver, append([]byte(nil), blob...))
	case opRelease:
		lo, hi, ver := d.Uvarint(), d.Uvarint(), d.Uvarint()
		if d.Err() != nil {
			return shard.ErrReply("release: bad encoding")
		}
		return s.release(ctx, lo, hi, ver)
	case opAdopt:
		lo, hi, ver := d.Uvarint(), d.Uvarint(), d.Uvarint()
		if d.Err() != nil {
			return shard.ErrReply("adopt: bad encoding")
		}
		return s.adopt(ctx, lo, hi, ver)
	case opMergeOwned:
		lo, hi, ver := d.Uvarint(), d.Uvarint(), d.Uvarint()
		if d.Err() != nil {
			return shard.ErrReply("merge: bad encoding")
		}
		return s.mergeOwned(lo, hi, ver)
	case opProposeMap:
		mb := d.BytesVal()
		if d.Err() != nil {
			return shard.ErrReply("propose: bad encoding")
		}
		return s.proposeMap(append([]byte(nil), mb...))
	case opFinalizeMap:
		ver := d.Uvarint()
		if d.Err() != nil {
			return shard.ErrReply("finalize: bad encoding")
		}
		return s.finalizeMap(ver)
	}
	return shard.ErrReply("unknown control op")
}

// splitOwnedAt ensures owned-span boundaries exist exactly at lo and
// hi+1, splitting spans as needed, and reports whether [lo, hi] is fully
// covered by owned spans.
func (s *SM) splitOwnedAt(lo, hi uint64) bool {
	var out []ownedRange
	for _, o := range s.st.Owned {
		if o.Lo < lo && lo <= o.Hi {
			out = append(out, ownedRange{Lo: o.Lo, Hi: lo - 1, Epoch: o.Epoch})
			o.Lo = lo
		}
		if o.Lo <= hi && hi < o.Hi {
			out = append(out, ownedRange{Lo: o.Lo, Hi: hi, Epoch: o.Epoch})
			o.Lo = hi + 1
		}
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lo < out[j].Lo })
	s.st.Owned = out
	// Verify contiguous coverage of [lo, hi].
	next := lo
	for _, o := range s.st.Owned {
		if o.Lo > next {
			break
		}
		if o.Lo <= next && next <= o.Hi {
			if o.Hi >= hi {
				return true
			}
			next = o.Hi + 1
		}
	}
	return false
}

func (s *SM) freeze(lo, hi, ver uint64) []byte {
	for _, f := range s.st.Frozen {
		if f.Lo == lo && f.Hi == hi && f.Ver >= ver {
			return shard.OKReply(nil) // idempotent resubmit
		}
	}
	if _, ok := s.app.(core.RangeStateMachine); !ok {
		return shard.ErrReply("application does not support range migration")
	}
	if !s.splitOwnedAt(lo, hi) {
		if s.st.Version >= ver {
			// Already released at this version: the freeze is a stale
			// resubmit from before the flip.
			return shard.OKReply(nil)
		}
		return shard.ErrReply("freeze: span not owned")
	}
	s.st.Frozen = append(s.st.Frozen, frozenSpan{Lo: lo, Hi: hi, Ver: ver})
	return shard.OKReply(nil)
}

func (s *SM) importStage(lo, hi, ver uint64, blob []byte) []byte {
	for i := range s.st.Staged {
		if s.st.Staged[i].Lo == lo && s.st.Staged[i].Hi == hi && s.st.Staged[i].Ver == ver {
			s.st.Staged[i].Blob = blob
			return shard.OKReply(nil)
		}
	}
	s.st.Staged = append(s.st.Staged, stagedImport{Lo: lo, Hi: hi, Ver: ver, Blob: blob})
	return shard.OKReply(nil)
}

func (s *SM) release(ctx *core.Ctx, lo, hi, ver uint64) []byte {
	covered := false
	for _, o := range s.st.Owned {
		if o.Lo <= lo && lo <= o.Hi {
			covered = true
		}
	}
	if !covered {
		if s.st.Version >= ver {
			return shard.OKReply(nil) // idempotent resubmit after the flip
		}
		return shard.ErrReply("release: span not owned")
	}
	frozen := false
	for _, f := range s.st.Frozen {
		if f.Lo == lo && f.Hi == hi {
			frozen = true
		}
	}
	if !frozen {
		return shard.ErrReply("release: span not frozen")
	}
	rsm, ok := s.app.(core.RangeStateMachine)
	if !ok {
		return shard.ErrReply("application does not support range migration")
	}
	rsm.DropRange(ctx, lo, hi)
	var owned []ownedRange
	for _, o := range s.st.Owned {
		if o.Lo >= lo && o.Hi <= hi {
			continue
		}
		owned = append(owned, o)
	}
	s.st.Owned = owned
	var froz []frozenSpan
	for _, f := range s.st.Frozen {
		if f.Lo == lo && f.Hi == hi {
			continue
		}
		froz = append(froz, f)
	}
	s.st.Frozen = froz
	if ver > s.st.Version {
		s.st.Version = ver
	}
	return shard.OKReply(nil)
}

func (s *SM) adopt(ctx *core.Ctx, lo, hi, ver uint64) []byte {
	if i := s.ownerIdx(lo); i >= 0 && s.st.Owned[i].Epoch >= ver {
		return shard.OKReply(nil) // idempotent resubmit
	}
	si := -1
	for i := range s.st.Staged {
		if s.st.Staged[i].Lo == lo && s.st.Staged[i].Hi == hi && s.st.Staged[i].Ver == ver {
			si = i
		}
	}
	if si < 0 {
		return shard.ErrReply("adopt: nothing staged for span")
	}
	rsm, ok := s.app.(core.RangeStateMachine)
	if !ok {
		return shard.ErrReply("application does not support range migration")
	}
	for _, o := range s.st.Owned {
		if o.Lo <= hi && lo <= o.Hi {
			return shard.ErrReply("adopt: span overlaps owned state")
		}
	}
	rsm.ImportRange(ctx, s.st.Staged[si].Blob)
	s.st.Owned = append(s.st.Owned, ownedRange{Lo: lo, Hi: hi, Epoch: ver})
	coalesceOwned(&s.st)
	s.st.Staged = append(s.st.Staged[:si], s.st.Staged[si+1:]...)
	if ver > s.st.Version {
		s.st.Version = ver
	}
	return shard.OKReply(nil)
}

func (s *SM) mergeOwned(lo, hi, ver uint64) []byte {
	if i := s.ownerIdx(lo); i >= 0 && s.st.Owned[i].Lo == lo && s.st.Owned[i].Hi == hi && s.st.Owned[i].Epoch >= ver {
		return shard.OKReply(nil) // idempotent resubmit
	}
	for _, f := range s.st.Frozen {
		if f.Lo <= hi && lo <= f.Hi {
			return shard.ErrReply("merge: span is mid-migration")
		}
	}
	if !s.splitOwnedAt(lo, hi) {
		return shard.ErrReply("merge: span not fully owned")
	}
	var owned []ownedRange
	for _, o := range s.st.Owned {
		if o.Lo >= lo && o.Hi <= hi {
			continue
		}
		owned = append(owned, o)
	}
	owned = append(owned, ownedRange{Lo: lo, Hi: hi, Epoch: ver})
	s.st.Owned = owned
	coalesceOwned(&s.st)
	if ver > s.st.Version {
		s.st.Version = ver
	}
	return shard.OKReply(nil)
}

func (s *SM) proposeMap(mb []byte) []byte {
	if !s.home {
		return shard.ErrReply("propose: not the map home group")
	}
	nm, err := shard.DecodeShardMapBytes(mb)
	if err != nil {
		return shard.ErrReply("propose: " + err.Error())
	}
	cur, err := shard.DecodeShardMapBytes(s.st.HomeMap)
	if err != nil {
		return shard.ErrReply("propose: corrupt home map: " + err.Error())
	}
	reply := func(accepted bool, m []byte) []byte {
		e := wire.NewEncoder(nil)
		e.Bool(accepted)
		e.BytesVal(m)
		return shard.OKReply(e.Bytes())
	}
	if nm.Version == cur.Version && bytes.Equal(mb, s.st.HomeMap) {
		return reply(true, s.st.HomeMap) // idempotent resubmit
	}
	if nm.Version != cur.Version+1 {
		return reply(false, s.st.HomeMap)
	}
	s.st.HomeMap = mb
	s.st.HomePending = true
	if nm.Version > s.st.Version {
		s.st.Version = nm.Version
	}
	return reply(true, mb)
}

func (s *SM) finalizeMap(ver uint64) []byte {
	if !s.home {
		return shard.ErrReply("finalize: not the map home group")
	}
	cur, err := shard.DecodeShardMapBytes(s.st.HomeMap)
	if err == nil && cur.Version == ver {
		s.st.HomePending = false
	}
	return shard.OKReply(nil)
}

// queryCtrl serves read-only control queries. It runs on native-mode
// read threads; the shared lock really excludes concurrent ownership
// flips without recording events.
func (s *SM) queryCtrl(ctx *core.Ctx, body []byte) []byte {
	w := ctx.Worker()
	d := wire.NewDecoder(body)
	switch d.Byte() {
	case qExport:
		lo, hi := d.Uvarint(), d.Uvarint()
		if d.Err() != nil {
			return shard.ErrReply("export: bad encoding")
		}
		rsm, ok := s.app.(core.RangeStateMachine)
		if !ok {
			return shard.ErrReply("application does not support range migration")
		}
		s.lock.RLock(w)
		blob := rsm.ExportRange(ctx, lo, hi)
		s.lock.RUnlock(w)
		return shard.OKReply(blob)
	case qGetMap:
		if !s.home {
			return shard.ErrReply("getmap: not the map home group")
		}
		s.lock.RLock(w)
		e := wire.NewEncoder(nil)
		e.Bool(s.st.HomePending)
		e.BytesVal(s.st.HomeMap)
		s.lock.RUnlock(w)
		return shard.OKReply(e.Bytes())
	case qStatus:
		s.lock.RLock(w)
		gs := &GroupStatus{Version: s.st.Version, Home: s.home, Pending: s.st.HomePending}
		for _, o := range s.st.Owned {
			gs.Owned = append(gs.Owned, Span{Lo: o.Lo, Hi: o.Hi, Epoch: o.Epoch})
		}
		for _, f := range s.st.Frozen {
			gs.Frozen = append(gs.Frozen, Span{Lo: f.Lo, Hi: f.Hi, Epoch: f.Ver})
		}
		for _, st := range s.st.Staged {
			gs.Staged = append(gs.Staged, Span{Lo: st.Lo, Hi: st.Hi, Epoch: st.Ver, Bytes: len(st.Blob)})
		}
		s.lock.RUnlock(w)
		return shard.OKReply(gs.encode())
	}
	return shard.ErrReply("unknown control query")
}

// WriteCheckpoint implements core.StateMachine: the wrapper's replicated
// ownership state rides in front of the application checkpoint.
func (s *SM) WriteCheckpoint(w io.Writer) error {
	e := wire.NewEncoder(nil)
	st := &s.st
	e.Uvarint(st.Version)
	e.Uvarint(uint64(len(st.Owned)))
	for _, o := range st.Owned {
		e.Uvarint(o.Lo)
		e.Uvarint(o.Hi)
		e.Uvarint(o.Epoch)
	}
	e.Uvarint(uint64(len(st.Frozen)))
	for _, f := range st.Frozen {
		e.Uvarint(f.Lo)
		e.Uvarint(f.Hi)
		e.Uvarint(f.Ver)
	}
	e.Uvarint(uint64(len(st.Staged)))
	for _, si := range st.Staged {
		e.Uvarint(si.Lo)
		e.Uvarint(si.Hi)
		e.Uvarint(si.Ver)
		e.BytesVal(si.Blob)
	}
	e.BytesVal(st.HomeMap)
	e.Bool(st.HomePending)
	hdr := wire.NewEncoder(nil)
	hdr.BytesVal(e.Bytes())
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return err
	}
	return s.app.WriteCheckpoint(w)
}

// ReadCheckpoint implements core.StateMachine.
func (s *SM) ReadCheckpoint(r io.Reader) error {
	buf, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	outer := wire.NewDecoder(buf)
	d := wire.NewDecoder(outer.BytesVal())
	if err := outer.Err(); err != nil {
		return err
	}
	st := groupState{Version: d.Uvarint()}
	for n := d.Uvarint(); n > 0 && d.Err() == nil; n-- {
		st.Owned = append(st.Owned, ownedRange{Lo: d.Uvarint(), Hi: d.Uvarint(), Epoch: d.Uvarint()})
	}
	for n := d.Uvarint(); n > 0 && d.Err() == nil; n-- {
		st.Frozen = append(st.Frozen, frozenSpan{Lo: d.Uvarint(), Hi: d.Uvarint(), Ver: d.Uvarint()})
	}
	for n := d.Uvarint(); n > 0 && d.Err() == nil; n-- {
		st.Staged = append(st.Staged, stagedImport{
			Lo: d.Uvarint(), Hi: d.Uvarint(), Ver: d.Uvarint(),
			Blob: append([]byte(nil), d.BytesVal()...),
		})
	}
	st.HomeMap = append([]byte(nil), d.BytesVal()...)
	st.HomePending = d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if len(st.HomeMap) == 0 {
		st.HomeMap = nil
	}
	s.st = st
	return s.app.ReadCheckpoint(bytes.NewReader(buf[outer.Offset():]))
}
