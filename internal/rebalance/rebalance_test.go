package rebalance_test

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"rex/internal/apps/hashdb"
	"rex/internal/check"
	"rex/internal/cluster"
	"rex/internal/env"
	"rex/internal/obs"
	"rex/internal/readpath"
	"rex/internal/shard"
	"rex/internal/sim"
	"rex/internal/wire"
)

// TestMigrationWindowProperty is the migration-window property test (run
// under -race in CI): two groups under continuous keyed writes and
// session reads while the coordinator splits group 0's range, moves the
// new child range to group 1 through a source-primary crash, and merges
// group 1's ranges back together. Afterwards every group's replicas must
// converge to byte-identical state, every key must read back at a
// version no older than its last confirmed write, and every client's
// session event sequence must satisfy read-your-writes and monotonic
// reads — i.e. session guarantees survive the ownership flips.
func TestMigrationWindowProperty(t *testing.T) {
	e := sim.New(4)
	var failure string
	fail := func(format string, args ...any) {
		if failure == "" {
			failure = fmt.Sprintf(format, args...)
		}
	}
	const (
		clients  = 4
		keysPer  = 8
		splitAt  = uint64(1) << 62 // interior of group 0's initial range
		mergeAt  = uint64(1) << 63 // group 1's original start, post-move
		moveDest = 1
	)
	// Per-client outcome tracking, merged after the load stops. Writes
	// whose outcome was unobserved (client error) leave a gap between
	// confirmed and attempted; readback accepts any version in it.
	type keyState struct {
		confirmed uint64 // last version whose write returned OK
		attempted uint64 // last version submitted at all
	}
	tracks := make([]map[string]*keyState, clients)
	events := make([][]check.SessionEvent, clients)

	e.Run(func() {
		m, err := shard.NewShardMap(1, 2, 3, 3)
		if err != nil {
			fail("map: %v", err)
			return
		}
		mc, err := cluster.NewMulti(e, hashdb.New(hashdb.DefaultOptions()), m, cluster.Options{
			Workers:         2,
			ReadWorkers:     2,
			Timers:          hashdb.Timers(),
			ProposeEvery:    2 * time.Millisecond,
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 100 * time.Millisecond,
			CheckpointEvery: 200 * time.Millisecond,
			Seed:            21,
			LiveRebalance:   true,
		})
		if err != nil {
			fail("new multi: %v", err)
			return
		}
		if err := mc.Start(); err != nil {
			fail("start: %v", err)
			return
		}
		if err := mc.WaitAllPrimaries(10 * time.Second); err != nil {
			fail("%v", err)
			return
		}

		mu := e.NewMutex()
		stop := false
		load := env.GoEach(e, "rebalance-client", clients, func(ci int) {
			// Routers fetch the live map with client id idBase+groups, so
			// space idBases by more than groups+1 to keep ids unique.
			router := mc.NewRouter(uint64(100 + 64*ci))
			rng := rand.New(rand.NewSource(int64(1000 + ci)))
			track := make(map[string]*keyState, keysPer)
			tracks[ci] = track
			sessKey := fmt.Sprintf("sess-%d", ci)
			var sessVer uint64
			for seq := 0; ; seq++ {
				mu.Lock()
				s := stop
				mu.Unlock()
				if s {
					return
				}
				if rng.Intn(3) == 0 {
					// Session traffic on the client's private key: a
					// versioned write, then a session-level read that must
					// observe at least the confirmed floor.
					if rng.Intn(2) == 0 {
						next := sessVer + 1
						_, err := router.Do([]byte(sessKey),
							hashdb.SetReq(sessKey, []byte(strconv.FormatUint(next, 10))))
						if err == nil {
							sessVer = next
							events[ci] = append(events[ci], check.SessionEvent{
								Client: uint64(ci), Kind: check.SessionWrite, Version: next,
							})
						}
					} else {
						resp, err := router.QueryLevel([]byte(sessKey), readpath.Session, hashdb.GetReq(sessKey))
						if err == nil {
							events[ci] = append(events[ci], check.SessionEvent{
								Client: uint64(ci), Kind: check.SessionRead,
								Version: getVersion(resp), Level: "session",
							})
						}
					}
				} else {
					key := fmt.Sprintf("c%d-k%d", ci, rng.Intn(keysPer))
					st := track[key]
					if st == nil {
						st = &keyState{}
						track[key] = st
					}
					next := st.attempted + 1
					st.attempted = next
					_, err := router.Do([]byte(key),
						hashdb.SetReq(key, []byte(strconv.FormatUint(next, 10))))
					if err == nil {
						st.confirmed = next
					}
				}
				e.Sleep(time.Duration(1+rng.Intn(3)) * time.Millisecond)
			}
		})

		// Let the load warm up, then run the rebalance plan: split, move
		// the new child range through a source-primary crash, merge the
		// destination's ranges back together.
		e.Sleep(300 * time.Millisecond)
		cd := mc.NewCoordinator(9000, obs.NewRegistry())
		if _, err := cd.Split(splitAt); err != nil {
			fail("split: %v", err)
			return
		}
		e.Sleep(100 * time.Millisecond)

		killedP := -1
		killer := env.GoEach(e, "rebalance-killer", 1, func(int) {
			// Land the crash inside the move's warm-copy/freeze window.
			e.Sleep(20 * time.Millisecond)
			p, err := mc.CrashGroupPrimary(0)
			if err == nil {
				mu.Lock()
				killedP = p
				mu.Unlock()
			}
		})
		if _, err := cd.Move(splitAt, moveDest); err != nil {
			fail("move: %v", err)
			return
		}
		killer.Wait()
		mu.Lock()
		p := killedP
		mu.Unlock()
		if p < 0 {
			fail("nemesis found no primary to crash")
			return
		}
		e.Sleep(200 * time.Millisecond)
		if err := mc.Groups[0].Restart(p); err != nil {
			fail("restart: %v", err)
			return
		}
		e.Sleep(200 * time.Millisecond)
		if _, err := cd.Merge(mergeAt); err != nil {
			fail("merge: %v", err)
			return
		}
		fm, _, err := cd.FetchMap()
		if err != nil {
			fail("final map: %v", err)
			return
		}
		if fm.Version < m.Version+3 {
			fail("final map v%d, want at least v%d (split+move+merge)", fm.Version, m.Version+3)
			return
		}
		if g := fm.GroupFor([]byte(probeKeyIn(splitAt, mergeAt))); g != moveDest {
			fail("moved span routes to group %d, want %d\n%s", g, moveDest, fm)
			return
		}

		// Drain the load and let every group settle.
		e.Sleep(300 * time.Millisecond)
		mu.Lock()
		stop = true
		mu.Unlock()
		load.Wait()

		for g := range mc.Groups {
			states, faults, err := mc.Groups[g].StableStates(30 * time.Second)
			if err != nil {
				fail("group %d stable states: %v (faults: %v)", g, err, faults)
				return
			}
			for _, v := range check.StateAgreement(states) {
				fail("group %d: %s", g, v)
				return
			}
		}

		// Every tracked key reads back at a version in the window between
		// its last confirmed and last attempted write.
		router := mc.NewRouter(8000)
		for ci, track := range tracks {
			for key, st := range track {
				resp, err := router.Do([]byte(key), hashdb.GetReq(key))
				if err != nil {
					fail("readback %s: %v", key, err)
					return
				}
				got := getVersion(resp)
				if got < st.confirmed || got > st.attempted {
					fail("client %d key %s read version %d, want within [%d, %d]",
						ci, key, got, st.confirmed, st.attempted)
					return
				}
			}
		}
	})
	if failure != "" {
		t.Fatal(failure)
	}

	var all []check.SessionEvent
	for _, evs := range events {
		all = append(all, evs...)
	}
	if len(all) == 0 {
		t.Fatal("no session events recorded")
	}
	for _, v := range check.CheckSessionReads(all) {
		t.Errorf("session violation: %s", v)
	}
}

// getVersion decodes a hashdb Get reply into the stored version number
// (0 when the key is absent).
func getVersion(resp []byte) uint64 {
	d := wire.NewDecoder(resp)
	if !d.Bool() {
		return 0
	}
	v, _ := strconv.ParseUint(string(d.BytesVal()), 10, 64)
	return v
}

// probeKeyIn brute-forces a key whose hash lands in [lo, hi).
func probeKeyIn(lo, hi uint64) string {
	for i := 0; ; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if h := shard.HashKey([]byte(k)); h >= lo && h < hi {
			return k
		}
	}
}
