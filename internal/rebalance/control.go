// Package rebalance migrates key-hash ranges between replica groups
// under live traffic. It has three pieces:
//
//   - a wrapper state machine (WrapFactory) that interposes on every
//     group's application, enforcing replicated per-range ownership: a
//     routed request whose range this group does not own — or owns at an
//     older epoch than the request was routed under — is NACKed
//     deterministically instead of applied;
//   - a small set of replicated control operations (freeze, import,
//     release, adopt, merge-owned, propose/finalize map) that drive the
//     migration state machine through the group's ordinary consensus
//     sequence, so ownership changes are agreed exactly like application
//     writes and survive failover and replay;
//   - a Coordinator that sequences a split, merge, or move: propose the
//     successor map at the map home (group 0), warm-copy the range,
//     freeze it behind the write barrier, ship the final delta, flip
//     ownership (release at the source strictly before adopt at the
//     destination), and finalize.
//
// The map itself lives in the map home group's replicated state — the
// "dedicated map consensus sequence" — and routers fetch it with a
// linearizable query, so every router converges on the newest version
// and wrong-group NACKs carry the version that proves staleness.
package rebalance

import (
	"fmt"

	"rex/internal/shard"
	"rex/internal/wire"
)

// Control operation codes (replicated, via Apply).
const (
	opFreeze      byte = 1 // lo, hi, ver: write-barrier the span
	opImportStage byte = 2 // lo, hi, ver, blob: stage imported state
	opRelease     byte = 3 // lo, hi, ver: drop span + ownership at source
	opAdopt       byte = 4 // lo, hi, ver: apply staged blob + own span
	opMergeOwned  byte = 5 // lo, hi, ver: fuse owned entries to one epoch
	opProposeMap  byte = 6 // mapBytes: CAS-install version+1 at map home
	opFinalizeMap byte = 7 // ver: clear the pending flag at map home

	// Control query codes (read-only, via Query).
	qExport byte = 32 // lo, hi: serialize the span (linearizable drain)
	qGetMap byte = 33 // current map + pending flag
	qStatus byte = 34 // group migration status
)

func spanOp(op byte, lo, hi, ver uint64) []byte {
	e := wire.NewEncoder(nil)
	e.Byte(op)
	e.Uvarint(lo)
	e.Uvarint(hi)
	e.Uvarint(ver)
	return shard.Envelope(shard.EnvCtrl, 0, 0, e.Bytes())
}

// FreezeOp encodes the write-barrier control op for [lo, hi] at map
// version ver.
func FreezeOp(lo, hi, ver uint64) []byte { return spanOp(opFreeze, lo, hi, ver) }

// ReleaseOp encodes the source-side ownership drop for [lo, hi].
func ReleaseOp(lo, hi, ver uint64) []byte { return spanOp(opRelease, lo, hi, ver) }

// AdoptOp encodes the destination-side ownership flip for [lo, hi].
func AdoptOp(lo, hi, ver uint64) []byte { return spanOp(opAdopt, lo, hi, ver) }

// MergeOwnedOp encodes the owner-side fuse of [lo, hi] to epoch ver.
func MergeOwnedOp(lo, hi, ver uint64) []byte { return spanOp(opMergeOwned, lo, hi, ver) }

// ImportStageOp encodes staging blob for [lo, hi] at map version ver.
func ImportStageOp(lo, hi, ver uint64, blob []byte) []byte {
	e := wire.NewEncoder(nil)
	e.Byte(opImportStage)
	e.Uvarint(lo)
	e.Uvarint(hi)
	e.Uvarint(ver)
	e.BytesVal(blob)
	return shard.Envelope(shard.EnvCtrl, 0, 0, e.Bytes())
}

// ProposeMapOp encodes the map-home CAS install of m (must be the
// current version + 1).
func ProposeMapOp(m *shard.ShardMap) []byte {
	e := wire.NewEncoder(nil)
	e.Byte(opProposeMap)
	e.BytesVal(m.EncodeBytes())
	return shard.Envelope(shard.EnvCtrl, 0, 0, e.Bytes())
}

// DecodeProposeReply splits a ProposeMapOp reply: whether the install was
// accepted, and the map now current at the home (the proposal on accept,
// the existing map on version mismatch).
func DecodeProposeReply(payload []byte) (accepted bool, cur *shard.ShardMap, err error) {
	d := wire.NewDecoder(payload)
	accepted = d.Bool()
	mb := d.BytesVal()
	if d.Err() != nil {
		return false, nil, fmt.Errorf("rebalance: propose reply: %w", d.Err())
	}
	cur, err = shard.DecodeShardMapBytes(mb)
	return accepted, cur, err
}

// FinalizeMapOp encodes clearing the pending flag for version ver.
func FinalizeMapOp(ver uint64) []byte {
	e := wire.NewEncoder(nil)
	e.Byte(opFinalizeMap)
	e.Uvarint(ver)
	return shard.Envelope(shard.EnvCtrl, 0, 0, e.Bytes())
}

// ExportQuery encodes the range-export control query.
func ExportQuery(lo, hi uint64) []byte {
	e := wire.NewEncoder(nil)
	e.Byte(qExport)
	e.Uvarint(lo)
	e.Uvarint(hi)
	return shard.Envelope(shard.EnvCtrl, 0, 0, e.Bytes())
}

// GetMapQuery encodes the map-fetch control query (map home only).
func GetMapQuery() []byte {
	return shard.Envelope(shard.EnvCtrl, 0, 0, []byte{qGetMap})
}

// DecodeGetMapReply splits a GetMapQuery reply.
func DecodeGetMapReply(payload []byte) (m *shard.ShardMap, pending bool, err error) {
	d := wire.NewDecoder(payload)
	pending = d.Bool()
	mb := d.BytesVal()
	if d.Err() != nil {
		return nil, false, fmt.Errorf("rebalance: getmap reply: %w", d.Err())
	}
	m, err = shard.DecodeShardMapBytes(mb)
	return m, pending, err
}

// StatusQuery encodes the group-status control query.
func StatusQuery() []byte {
	return shard.Envelope(shard.EnvCtrl, 0, 0, []byte{qStatus})
}

// Span is one owned/frozen/staged hash span in a GroupStatus.
type Span struct {
	Lo, Hi uint64
	// Epoch is the owned entry's epoch, the freeze's target map version,
	// or the staged blob's target map version.
	Epoch uint64
	// Bytes is the staged blob size (staged spans only).
	Bytes int
}

// GroupStatus is one group's migration state, as reported by StatusQuery.
type GroupStatus struct {
	Version uint64 // highest map version this group's state reflects
	Home    bool
	Pending bool // map home only: a proposed map awaits finalize
	Owned   []Span
	Frozen  []Span
	Staged  []Span
}

func encodeSpans(e *wire.Encoder, spans []Span) {
	e.Uvarint(uint64(len(spans)))
	for _, s := range spans {
		e.Uvarint(s.Lo)
		e.Uvarint(s.Hi)
		e.Uvarint(s.Epoch)
		e.Uvarint(uint64(s.Bytes))
	}
}

func decodeSpans(d *wire.Decoder) []Span {
	n := d.Uvarint()
	out := make([]Span, 0, n)
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		out = append(out, Span{Lo: d.Uvarint(), Hi: d.Uvarint(), Epoch: d.Uvarint(), Bytes: int(d.Uvarint())})
	}
	return out
}

func (gs *GroupStatus) encode() []byte {
	e := wire.NewEncoder(nil)
	e.Uvarint(gs.Version)
	e.Bool(gs.Home)
	e.Bool(gs.Pending)
	encodeSpans(e, gs.Owned)
	encodeSpans(e, gs.Frozen)
	encodeSpans(e, gs.Staged)
	return e.Bytes()
}

// DecodeGroupStatus splits a StatusQuery reply.
func DecodeGroupStatus(payload []byte) (*GroupStatus, error) {
	d := wire.NewDecoder(payload)
	gs := &GroupStatus{Version: d.Uvarint(), Home: d.Bool(), Pending: d.Bool()}
	gs.Owned = decodeSpans(d)
	gs.Frozen = decodeSpans(d)
	gs.Staged = decodeSpans(d)
	if d.Err() != nil {
		return nil, fmt.Errorf("rebalance: status reply: %w", d.Err())
	}
	return gs, nil
}

// String renders the status for rexctl.
func (gs *GroupStatus) String() string {
	s := fmt.Sprintf("version %d", gs.Version)
	if gs.Home {
		s += " (map home"
		if gs.Pending {
			s += ", map pending finalize"
		}
		s += ")"
	}
	for _, sp := range gs.Owned {
		s += fmt.Sprintf("\n  owned  [%#016x, %#016x] epoch %d", sp.Lo, sp.Hi, sp.Epoch)
	}
	for _, sp := range gs.Frozen {
		s += fmt.Sprintf("\n  frozen [%#016x, %#016x] -> v%d", sp.Lo, sp.Hi, sp.Epoch)
	}
	for _, sp := range gs.Staged {
		s += fmt.Sprintf("\n  staged [%#016x, %#016x] -> v%d (%d bytes)", sp.Lo, sp.Hi, sp.Epoch, sp.Bytes)
	}
	return s
}
