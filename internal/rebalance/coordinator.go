package rebalance

import (
	"errors"
	"fmt"
	"time"

	"rex/internal/obs"
	"rex/internal/readpath"
	"rex/internal/shard"
)

// Clock abstracts time for the coordinator; env.Env satisfies it, so the
// coordinator paces warm rounds in virtual time inside the simulation
// and in real time against a TCP deployment.
type Clock interface {
	Now() time.Duration
	Sleep(d time.Duration)
}

// realClock is the default Clock for TCP deployments.
type realClock struct{ base time.Time }

func (c realClock) Now() time.Duration    { return time.Since(c.base) }
func (c realClock) Sleep(d time.Duration) { time.Sleep(d) }
func newRealClock() Clock                 { return realClock{base: time.Now()} }

// ErrProposeConflict reports that another coordinator won the map CAS.
var ErrProposeConflict = errors.New("rebalance: map version conflict (another change in flight)")

// Coordinator drives split, merge, and move operations. It owns no
// replicated state: every step is an idempotent control op submitted
// through the target group's consensus sequence, so a re-run after any
// coordinator or replica failure converges. One coordinator should run
// at a time; concurrent coordinators are safe (the map CAS serializes
// them) but the loser's operation fails with ErrProposeConflict.
type Coordinator struct {
	// Groups submits control ops; use dedicated clients (not the router's)
	// so coordinator traffic never shares a client's sequence space with
	// application requests.
	Groups []shard.GroupClient
	// Home is the map home group's index (conventionally 0).
	Home int
	// WarmRounds bounds pre-freeze warm copy rounds (default 3); the
	// loop exits early when the shipped delta stops shrinking — the
	// catch-up lag bound.
	WarmRounds int
	Clock      Clock
	Metrics    *obs.Registry
	Logf       func(format string, args ...any)
}

func (c *Coordinator) clock() Clock {
	if c.Clock == nil {
		c.Clock = newRealClock()
	}
	return c.Clock
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

func (c *Coordinator) warmRounds() int {
	if c.WarmRounds > 0 {
		return c.WarmRounds
	}
	return 3
}

func (c *Coordinator) metric() *obs.Registry {
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	return c.Metrics
}

// ctrl submits a control op to group g and unwraps the reply.
func (c *Coordinator) ctrl(g int, op []byte) ([]byte, error) {
	resp, err := c.Groups[g].Do(op)
	if err != nil {
		return nil, err
	}
	st, payload, err := shard.DecodeReply(resp)
	if err != nil {
		return nil, err
	}
	if st != shard.ReplyOK {
		if st == shard.ReplyErr {
			return nil, fmt.Errorf("%w: group %d: %s", shard.ErrRebalance, g, shard.ReplyErrMessage(payload))
		}
		return nil, fmt.Errorf("rebalance: group %d control op nacked (%d)", g, st)
	}
	return payload, nil
}

// ctrlQuery runs a linearizable control query against group g. The
// linearizable level matters for exports: the read drains every pending
// write in the group before running, so a post-freeze export observes
// all writes admitted before the barrier.
func (c *Coordinator) ctrlQuery(g int, q []byte) ([]byte, error) {
	resp, err := c.Groups[g].QueryLevel(readpath.Linearizable, q)
	if err != nil {
		return nil, err
	}
	st, payload, err := shard.DecodeReply(resp)
	if err != nil {
		return nil, err
	}
	if st != shard.ReplyOK {
		if st == shard.ReplyErr {
			return nil, fmt.Errorf("%w: group %d: %s", shard.ErrRebalance, g, shard.ReplyErrMessage(payload))
		}
		return nil, fmt.Errorf("rebalance: group %d control query nacked (%d)", g, st)
	}
	return payload, nil
}

// FetchMap reads the current map from the map home.
func (c *Coordinator) FetchMap() (*shard.ShardMap, bool, error) {
	payload, err := c.ctrlQuery(c.Home, GetMapQuery())
	if err != nil {
		return nil, false, err
	}
	return DecodeGetMapReply(payload)
}

// Status reads group g's migration state.
func (c *Coordinator) Status(g int) (*GroupStatus, error) {
	payload, err := c.ctrlQuery(g, StatusQuery())
	if err != nil {
		return nil, err
	}
	return DecodeGroupStatus(payload)
}

// propose CAS-installs nm at the map home.
func (c *Coordinator) propose(nm *shard.ShardMap) error {
	payload, err := c.ctrl(c.Home, ProposeMapOp(nm))
	if err != nil {
		return err
	}
	accepted, cur, err := DecodeProposeReply(payload)
	if err != nil {
		return err
	}
	if !accepted {
		return fmt.Errorf("%w: proposed v%d, home has v%d", ErrProposeConflict, nm.Version, cur.Version)
	}
	return nil
}

// Split splits the range containing hash `at` at `at`. Pure metadata:
// two map ops, no data movement, no fencing blip.
func (c *Coordinator) Split(at uint64) (*shard.ShardMap, error) {
	m, _, err := c.FetchMap()
	if err != nil {
		return nil, err
	}
	nm, err := m.WithSplit(at)
	if err != nil {
		return nil, err
	}
	if err := c.propose(nm); err != nil {
		return nil, err
	}
	if _, err := c.ctrl(c.Home, FinalizeMapOp(nm.Version)); err != nil {
		return nil, err
	}
	c.metric().CounterOf("rex_rebalance_total").Inc()
	c.metric().CounterOf("rex_rebalance_split_total").Inc()
	c.logf("rebalance: split at %#x -> map v%d", at, nm.Version)
	return nm, nil
}

// Merge fuses the range starting exactly at `boundary` into its left
// neighbor (same owner required). The owner's replicated ownership state
// is fused at the same version, so the merged range's epoch fence holds.
func (c *Coordinator) Merge(boundary uint64) (*shard.ShardMap, error) {
	m, _, err := c.FetchMap()
	if err != nil {
		return nil, err
	}
	nm, err := m.WithMerge(boundary)
	if err != nil {
		return nil, err
	}
	i := nm.RangeIndexFor(boundary)
	lo, hi := nm.RangeBounds(i)
	owner := nm.Ranges[i].Group
	if err := c.propose(nm); err != nil {
		return nil, err
	}
	if _, err := c.ctrl(owner, MergeOwnedOp(lo, hi, nm.Version)); err != nil {
		return nil, err
	}
	if _, err := c.ctrl(c.Home, FinalizeMapOp(nm.Version)); err != nil {
		return nil, err
	}
	c.metric().CounterOf("rex_rebalance_total").Inc()
	c.metric().CounterOf("rex_rebalance_merge_total").Inc()
	c.logf("rebalance: merge at %#x -> map v%d", boundary, nm.Version)
	return nm, nil
}

// Move migrates the range containing hash `at` to group dest:
//
//	propose map v+1 (range -> dest, epoch v+1)   — routers start fencing
//	warm-copy rounds until the delta stops shrinking (catch-up bound)
//	freeze [lo,hi] at source                      — write barrier up
//	linearizable export (drains admitted writes)  — the final delta
//	stage at dest, release at source, adopt at dest — ownership flip
//	finalize v+1
//
// Release commits strictly before adopt is submitted, so at most one
// group owns the span at any trace position — the window between them is
// the bounded unavailability the freeze histogram measures.
func (c *Coordinator) Move(at uint64, dest int) (*shard.ShardMap, error) {
	reg := c.metric()
	active := reg.GaugeOf("rex_rebalance_active")
	active.Add(1)
	defer active.Add(-1)

	m, _, err := c.FetchMap()
	if err != nil {
		return nil, err
	}
	nm, err := m.WithMove(at, dest)
	if err != nil {
		return nil, err
	}
	i := nm.RangeIndexFor(at)
	lo, hi := nm.RangeBounds(i)
	src := m.Ranges[i].Group
	if err := c.propose(nm); err != nil {
		return nil, err
	}
	ver := nm.Version

	// Warm copy: ship snapshots of the live range so the post-freeze
	// delta is small. Each round's blob is a full replacement for the
	// span, so stale rounds cannot resurrect deleted keys — adopt
	// applies only the final, post-freeze blob.
	var lastSize = -1
	for round := 0; round < c.warmRounds(); round++ {
		blob, err := c.ctrlQuery(src, ExportQuery(lo, hi))
		if err != nil {
			return nil, fmt.Errorf("rebalance: warm export round %d: %w", round, err)
		}
		if _, err := c.ctrl(dest, ImportStageOp(lo, hi, ver, blob)); err != nil {
			return nil, fmt.Errorf("rebalance: warm import round %d: %w", round, err)
		}
		c.logf("rebalance: move %#x warm round %d: %d bytes", at, round, len(blob))
		if lastSize >= 0 && len(blob) >= lastSize {
			break // lag bound met: the delta stopped shrinking
		}
		lastSize = len(blob)
	}

	t0 := c.clock().Now()
	if _, err := c.ctrl(src, FreezeOp(lo, hi, ver)); err != nil {
		return nil, fmt.Errorf("rebalance: freeze: %w", err)
	}
	blob, err := c.ctrlQuery(src, ExportQuery(lo, hi))
	if err != nil {
		return nil, fmt.Errorf("rebalance: final export: %w", err)
	}
	if _, err := c.ctrl(dest, ImportStageOp(lo, hi, ver, blob)); err != nil {
		return nil, fmt.Errorf("rebalance: final import: %w", err)
	}
	if _, err := c.ctrl(src, ReleaseOp(lo, hi, ver)); err != nil {
		return nil, fmt.Errorf("rebalance: release: %w", err)
	}
	if _, err := c.ctrl(dest, AdoptOp(lo, hi, ver)); err != nil {
		return nil, fmt.Errorf("rebalance: adopt: %w", err)
	}
	reg.HistogramOf("rex_rebalance_freeze_seconds").Observe(c.clock().Now() - t0)
	if _, err := c.ctrl(c.Home, FinalizeMapOp(ver)); err != nil {
		return nil, err
	}
	reg.CounterOf("rex_rebalance_total").Inc()
	reg.CounterOf("rex_rebalance_move_total").Inc()
	reg.CounterOf("rex_rebalance_moved_bytes").Add(uint64(len(blob)))
	c.logf("rebalance: move %#x -> group %d done: map v%d, %d bytes final delta", at, dest, ver, len(blob))
	return nm, nil
}
