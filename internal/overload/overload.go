// Package overload holds the pieces of Rex's overload-protection layer
// that are shared between the core replica, the TCP server, and the
// clients: the typed shed/deadline errors that cross the wire, the
// CoDel-style admission controller that decides *when* to shed, and
// the encoding of the optional request-deadline wire field (protocol
// v5).
//
// Design summary (DESIGN.md "Overload & admission control"):
//
//   - Requests queue in exactly one place — the primary's admission
//     gate, ahead of trace recording. Once a request is admitted into
//     the trace it must execute (replay correctness), so all shedding
//     happens at admission.
//   - The controller watches the sojourn time of completed requests
//     (admission → release). When the sojourn floor stays above Target
//     for a full Interval the gate starts shedding arrivals that would
//     otherwise wait, at CoDel's increasing rate (interval/sqrt(n)),
//     until a sojourn below Target is seen again.
//   - Sheds carry a retry-after hint so budget-limited clients back off
//     by the controller's own estimate instead of guessing.
package overload

import (
	"errors"
	"fmt"
	"math"
	"time"

	"rex/internal/wire"
)

// ErrOverloaded is the sentinel for load-shed NACKs. Concrete errors
// are usually Shed values carrying a retry-after hint; match with
// errors.Is(err, ErrOverloaded). The message is part of the wire
// contract (stable-string matching across the TCP boundary) — keep it
// stable.
var ErrOverloaded = errors.New("overloaded: retry later")

// ErrDeadlineExceeded is returned when a request's propagated deadline
// expired before it was admitted for execution. It is only ever
// produced ahead of trace admission, so the request provably did not
// and will not execute. Keep the message stable (wire contract).
var ErrDeadlineExceeded = errors.New("deadline exceeded before execution")

// Shed is a load-shed NACK with a retry-after hint. It matches
// ErrOverloaded under errors.Is.
type Shed struct {
	// RetryAfter is the server's estimate of when capacity may free up.
	// Zero means "no estimate"; clients fall back to their own backoff.
	RetryAfter time.Duration
}

func (s Shed) Error() string { return ErrOverloaded.Error() }

// Is makes errors.Is(err, ErrOverloaded) succeed for Shed values.
func (s Shed) Is(target error) bool { return target == ErrOverloaded }

// RetryAfter extracts the retry-after hint from an error chain, or 0.
func RetryAfter(err error) time.Duration {
	var s Shed
	if errors.As(err, &s) {
		return s.RetryAfter
	}
	return 0
}

// Pressure levels reported by the controller, driving graceful
// degradation by consistency level (weakest reads shed first, writes
// protected last).
const (
	// PressureNone: no degradation; everything is served.
	PressureNone = 0
	// PressureElevated: the controller is in its dropping state.
	// Session/eventual reads are shed with a retry-after hint and
	// linearizable reads stop falling back to the consensus barrier
	// (lease-only or shed) — writes are still admitted normally.
	PressureElevated = 1
	// PressureCritical: the gate has a deep standing queue. All reads
	// are shed; writes are shed at the controller's drop rate.
	PressureCritical = 2
)

// Config parameterizes a Controller.
type Config struct {
	// Target is the acceptable sojourn (admission → response release)
	// floor. It must sit above the normal commit latency — the point is
	// to detect a standing queue, not ordinary consensus time.
	Target time.Duration
	// Interval is the CoDel control interval: how long the sojourn
	// floor must exceed Target before shedding starts.
	Interval time.Duration
}

// Controller is a CoDel-style admission controller. It is not safe for
// concurrent use: the owning replica calls it under its own mutex,
// which also keeps it deterministic under the simulator.
//
// State machine: sojourn observations below Target reset everything.
// When observations stay above Target continuously for Interval, the
// controller enters its dropping state and schedules sheds at
// Interval/sqrt(count) spacing — the classic CoDel control law — until
// a below-target sojourn appears.
type Controller struct {
	cfg Config

	firstAbove time.Duration // when sojourns first went above target (0 = none)
	dropping   bool
	dropNext   time.Duration // next scheduled shed while dropping
	count      int           // sheds this dropping episode
}

// NewController returns a controller with cfg, applying defaults for
// zero fields (Target 25ms, Interval 100ms).
func NewController(cfg Config) *Controller {
	if cfg.Target <= 0 {
		cfg.Target = 25 * time.Millisecond
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	return &Controller{cfg: cfg}
}

// Target returns the sojourn target in force.
func (c *Controller) Target() time.Duration { return c.cfg.Target }

// OnSojourn feeds one completed request's sojourn time at (virtual)
// time now.
func (c *Controller) OnSojourn(now, sojourn time.Duration) {
	if sojourn < c.cfg.Target {
		c.firstAbove = 0
		c.dropping = false
		c.count = 0
		return
	}
	if c.firstAbove == 0 {
		// Above target: arm. Shedding starts only if we stay above
		// target for a full interval.
		c.firstAbove = now + c.cfg.Interval
		return
	}
	if !c.dropping && now >= c.firstAbove {
		c.dropping = true
		c.count = 0
		c.dropNext = now
	}
}

// Dropping reports whether the controller is in its dropping state.
func (c *Controller) Dropping() bool { return c.dropping }

// ShouldShed is consulted for an arrival that would otherwise have to
// wait at a full admission gate. While dropping, it sheds at the CoDel
// rate; otherwise the arrival should wait.
func (c *Controller) ShouldShed(now time.Duration) bool {
	if !c.dropping {
		return false
	}
	if now < c.dropNext {
		return false
	}
	c.count++
	c.dropNext = now + time.Duration(float64(c.cfg.Interval)/math.Sqrt(float64(c.count)))
	return true
}

// RetryAfter is the hint attached to sheds: the current inter-shed
// spacing, i.e. roughly when the controller expects to re-evaluate.
func (c *Controller) RetryAfter() time.Duration {
	if c.count < 1 {
		return c.cfg.Interval
	}
	return time.Duration(float64(c.cfg.Interval) / math.Sqrt(float64(c.count)))
}

// Pressure maps controller state to a degradation level. The caller
// may escalate further (e.g. on queue depth).
func (c *Controller) Pressure() int {
	if !c.dropping {
		return PressureNone
	}
	if c.count >= 8 {
		return PressureCritical
	}
	return PressureElevated
}

// --- Protocol v5 wire deadline field ---

// MaxWireDeadline caps the deadline budget a frame may carry. Anything
// larger is rejected as corrupt: a garbage trailing field must produce
// an error, not an absurd deadline.
const MaxWireDeadline = time.Hour

// AppendWireDeadline appends the optional trailing deadline field to a
// request frame: the remaining budget in milliseconds as a uvarint. A
// non-positive budget appends nothing (meaning "no deadline"); since a
// zero encoded budget would be indistinguishable from garbage, budgets
// under 1ms round up to 1ms.
func AppendWireDeadline(e *wire.Encoder, budget time.Duration) {
	if budget <= 0 {
		return
	}
	if budget > MaxWireDeadline {
		budget = MaxWireDeadline
	}
	ms := uint64(budget / time.Millisecond)
	if ms == 0 {
		ms = 1
	}
	e.Uvarint(ms)
}

// DecodeWireDeadline reads the optional trailing deadline field. It
// returns 0 when the frame carries none (v4 frames), the remaining
// budget otherwise, and an error for truncated, oversized, or
// otherwise garbage trailers.
func DecodeWireDeadline(d *wire.Decoder) (time.Duration, error) {
	if d.Err() != nil {
		return 0, d.Err()
	}
	if d.Remaining() == 0 {
		return 0, nil
	}
	ms := d.Uvarint()
	if err := d.Err(); err != nil {
		return 0, fmt.Errorf("deadline field: %w", err)
	}
	if ms == 0 || ms > uint64(MaxWireDeadline/time.Millisecond) {
		return 0, fmt.Errorf("deadline field %dms out of range: %w", ms, wire.ErrCorrupt)
	}
	if d.Remaining() != 0 {
		// Unknown extra trailer bytes: reject rather than silently
		// dropping what a future protocol version considers meaningful.
		return 0, fmt.Errorf("trailing bytes after deadline field: %w", wire.ErrCorrupt)
	}
	return time.Duration(ms) * time.Millisecond, nil
}
