package overload

import (
	"errors"
	"testing"
	"time"

	"rex/internal/wire"
)

func TestShedMatchesSentinel(t *testing.T) {
	err := error(Shed{RetryAfter: 5 * time.Millisecond})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatal("Shed does not match ErrOverloaded")
	}
	if got := RetryAfter(err); got != 5*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 5ms", got)
	}
	if got := RetryAfter(errors.New("other")); got != 0 {
		t.Fatalf("RetryAfter on foreign error = %v, want 0", got)
	}
	// Stable-string contract: the message must survive a round trip
	// through an opaque errors.New on the far side of the wire.
	far := errors.New(err.Error())
	if far.Error() != ErrOverloaded.Error() {
		t.Fatal("shed message not stable across the wire")
	}
}

func TestControllerArmsAfterInterval(t *testing.T) {
	c := NewController(Config{Target: 10 * time.Millisecond, Interval: 100 * time.Millisecond})
	now := time.Duration(0)
	// Above-target sojourns, but not yet for a full interval: no shedding.
	c.OnSojourn(now, 20*time.Millisecond)
	if c.ShouldShed(now) {
		t.Fatal("shed before interval elapsed")
	}
	now += 50 * time.Millisecond
	c.OnSojourn(now, 20*time.Millisecond)
	if c.Dropping() {
		t.Fatal("dropping before interval elapsed")
	}
	// Past the interval: dropping begins and the first queued arrival
	// is shed immediately.
	now += 60 * time.Millisecond
	c.OnSojourn(now, 20*time.Millisecond)
	if !c.Dropping() {
		t.Fatal("not dropping after a full above-target interval")
	}
	if !c.ShouldShed(now) {
		t.Fatal("first arrival in dropping state not shed")
	}
	// Immediately after, the next shed is scheduled in the future.
	if c.ShouldShed(now) {
		t.Fatal("second arrival shed with no time elapsed")
	}
	if c.Pressure() != PressureElevated {
		t.Fatalf("pressure = %d, want elevated", c.Pressure())
	}
}

func TestControllerShedRateIncreases(t *testing.T) {
	c := NewController(Config{Target: 10 * time.Millisecond, Interval: 100 * time.Millisecond})
	now := time.Duration(0)
	c.OnSojourn(now, 50*time.Millisecond)
	now += 100 * time.Millisecond
	c.OnSojourn(now, 50*time.Millisecond)
	if !c.Dropping() {
		t.Fatal("expected dropping")
	}
	// Walk time forward in small steps; the inter-shed gap must shrink.
	var gaps []time.Duration
	last := time.Duration(-1)
	for step := 0; step < 4000 && len(gaps) < 8; step++ {
		now += time.Millisecond
		if c.ShouldShed(now) {
			if last >= 0 {
				gaps = append(gaps, now-last)
			}
			last = now
		}
	}
	if len(gaps) < 4 {
		t.Fatalf("only %d sheds observed", len(gaps))
	}
	for i := 1; i < len(gaps); i++ {
		if gaps[i] > gaps[i-1] {
			t.Fatalf("shed gap grew: %v after %v", gaps[i], gaps[i-1])
		}
	}
	if c.Pressure() != PressureCritical {
		t.Fatalf("pressure = %d after %d sheds, want critical", c.Pressure(), len(gaps)+1)
	}
}

func TestControllerRecovers(t *testing.T) {
	c := NewController(Config{Target: 10 * time.Millisecond, Interval: 100 * time.Millisecond})
	now := time.Duration(0)
	c.OnSojourn(now, 50*time.Millisecond)
	now += 150 * time.Millisecond
	c.OnSojourn(now, 50*time.Millisecond)
	if !c.Dropping() {
		t.Fatal("expected dropping")
	}
	// One below-target sojourn ends the episode.
	c.OnSojourn(now, time.Millisecond)
	if c.Dropping() || c.ShouldShed(now+time.Hour) {
		t.Fatal("controller did not recover on below-target sojourn")
	}
	if c.Pressure() != PressureNone {
		t.Fatalf("pressure = %d, want none", c.Pressure())
	}
}

func TestControllerDefaults(t *testing.T) {
	c := NewController(Config{})
	if c.Target() != 25*time.Millisecond {
		t.Fatalf("default target %v", c.Target())
	}
	if ra := c.RetryAfter(); ra != 100*time.Millisecond {
		t.Fatalf("idle retry-after %v, want the interval", ra)
	}
}

func TestWireDeadlineRoundTrip(t *testing.T) {
	for _, budget := range []time.Duration{time.Millisecond, 17 * time.Millisecond, 3 * time.Second, MaxWireDeadline} {
		e := wire.NewEncoder(nil)
		AppendWireDeadline(e, budget)
		d := wire.NewDecoder(e.Bytes())
		got, err := DecodeWireDeadline(d)
		if err != nil {
			t.Fatalf("budget %v: %v", budget, err)
		}
		if got != budget.Truncate(time.Millisecond) {
			t.Fatalf("budget %v round-tripped to %v", budget, got)
		}
	}
}

func TestWireDeadlineAbsent(t *testing.T) {
	e := wire.NewEncoder(nil)
	AppendWireDeadline(e, 0)
	AppendWireDeadline(e, -time.Second)
	if len(e.Bytes()) != 0 {
		t.Fatal("non-positive budgets must encode nothing")
	}
	got, err := DecodeWireDeadline(wire.NewDecoder(nil))
	if err != nil || got != 0 {
		t.Fatalf("absent field: got %v, %v", got, err)
	}
}

func TestWireDeadlineSubMillisecondRoundsUp(t *testing.T) {
	e := wire.NewEncoder(nil)
	AppendWireDeadline(e, 10*time.Microsecond)
	got, err := DecodeWireDeadline(wire.NewDecoder(e.Bytes()))
	if err != nil || got != time.Millisecond {
		t.Fatalf("sub-ms budget: got %v, %v", got, err)
	}
}

func TestWireDeadlineRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"zero":            {0x00},
		"oversized":       {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, // huge uvarint
		"truncated":       {0x80},                                                       // continuation bit, no next byte
		"trailing":        {0x05, 0x99},                                                 // valid deadline + junk
		"beyond max by 1": func() []byte { e := wire.NewEncoder(nil); e.Uvarint(uint64(MaxWireDeadline/time.Millisecond) + 1); return e.Bytes() }(),
	}
	for name, buf := range cases {
		if _, err := DecodeWireDeadline(wire.NewDecoder(buf)); err == nil {
			t.Fatalf("%s: garbage accepted", name)
		}
	}
}
