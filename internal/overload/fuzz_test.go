package overload

import (
	"testing"
	"time"

	"rex/internal/wire"
)

// FuzzWireDeadlineDecode throws arbitrary trailer bytes at the decoder:
// it must never panic, and anything it accepts must be a positive budget
// no larger than the wire ceiling.
func FuzzWireDeadlineDecode(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{0x00})                                                       // zero is invalid on the wire
	f.Add([]byte{0x80})                                                       // truncated uvarint
	f.Add([]byte{0x01, 0xde, 0xad})                                           // trailing junk
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // oversized
	f.Add([]byte{0xe8, 0x07})                                                 // 1000ms, valid
	f.Fuzz(func(t *testing.T, data []byte) {
		d := wire.NewDecoder(data)
		budget, err := DecodeWireDeadline(d)
		if err != nil {
			return
		}
		if len(data) == 0 {
			if budget != 0 {
				t.Fatalf("empty trailer decoded to %v, want 0 (v4 frame)", budget)
			}
			return
		}
		if budget <= 0 || budget > MaxWireDeadline {
			t.Fatalf("accepted budget %v outside (0, %v]", budget, MaxWireDeadline)
		}
	})
}

// FuzzWireDeadlineRoundTrip checks Append/Decode agree for any budget:
// positive budgets survive (clamped to the ceiling, floored to 1ms),
// non-positive budgets encode to nothing and decode to zero.
func FuzzWireDeadlineRoundTrip(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(-time.Second))
	f.Add(int64(time.Microsecond))
	f.Add(int64(250 * time.Millisecond))
	f.Add(int64(MaxWireDeadline))
	f.Add(int64(MaxWireDeadline + time.Hour))
	f.Fuzz(func(t *testing.T, nanos int64) {
		budget := time.Duration(nanos)
		e := wire.NewEncoder(nil)
		AppendWireDeadline(e, budget)
		got, err := DecodeWireDeadline(wire.NewDecoder(e.Bytes()))
		if err != nil {
			t.Fatalf("decode of freshly appended budget %v failed: %v", budget, err)
		}
		if budget <= 0 {
			if got != 0 {
				t.Fatalf("non-positive budget %v decoded to %v, want 0", budget, got)
			}
			return
		}
		want := budget
		if want > MaxWireDeadline {
			want = MaxWireDeadline
		}
		// The wire carries whole milliseconds, rounded down but never to
		// zero.
		wantMs := want / time.Millisecond
		if wantMs == 0 {
			wantMs = 1
		}
		if got != wantMs*time.Millisecond {
			t.Fatalf("budget %v round-tripped to %v, want %v", budget, got, wantMs*time.Millisecond)
		}
	})
}
