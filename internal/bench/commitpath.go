package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rex/internal/apps"
	"rex/internal/storage"
	"rex/internal/trace"
	"rex/internal/wire"
)

// CommitPathResult is the machine-readable evidence for the commit-path
// acceptance criteria: group commit amortizes fsyncs (fsyncs/append well
// below 1, mean batch above 1), the pooled delta encoder cuts allocs/op
// against a cold encoder, and the quick Figure 7 throughput is intact.
// `make bench-json` serializes it as BENCH_commit_path.json.
type CommitPathResult struct {
	WAL      WALBenchResult    `json:"wal"`
	Encode   EncodeBenchResult `json:"encode"`
	Fig7     []Fig7Point       `json:"fig7_quick"`
	Conflict []ConflictPoint   `json:"conflict_classes"`
}

// ConflictPoint is the conflict-class elision experiment: the disjoint-key
// hashdb workload measured with class elision on (the default) and off,
// on the same thread count and seed. The elided delta size is the
// acceptance number; the full-tracing columns show what the same commits
// would have cost without classes.
type ConflictPoint struct {
	Threads               int     `json:"threads"`
	ElidedReqPerSec       float64 `json:"elided_req_per_sec"`
	ElidedDeltaBytesMean  float64 `json:"elided_delta_bytes_mean"`
	ElidedDeltaEventsMean float64 `json:"elided_delta_events_mean"`
	ElidedOps             uint64  `json:"elided_ops"`
	FullReqPerSec         float64 `json:"full_req_per_sec"`
	FullDeltaBytesMean    float64 `json:"full_delta_bytes_mean"`
	FullDeltaEventsMean   float64 `json:"full_delta_events_mean"`
	// DeltaBytesRatio = full / elided: the trace-size win from elision.
	DeltaBytesRatio float64 `json:"delta_bytes_full_over_elided"`
}

// WALBenchResult measures the FileLog under concurrent appenders on the
// real filesystem.
type WALBenchResult struct {
	Writers         int     `json:"writers"`
	AppendsPerGor   int     `json:"appends_per_writer"`
	RecordBytes     int     `json:"record_bytes"`
	Appends         uint64  `json:"appends"`
	Fsyncs          uint64  `json:"fsyncs"`
	FsyncsPerAppend float64 `json:"fsyncs_per_append"`
	BatchMean       float64 `json:"batch_records_mean"`
	BatchMax        uint64  `json:"batch_records_max"`
	NsPerAppend     float64 `json:"ns_per_append"`
}

// EncodeBenchResult compares the pooled EncodeBytesHint path against a
// cold (fresh-encoder) baseline, both measured with testing.Benchmark so
// allocs/op are the runtime's own accounting.
type EncodeBenchResult struct {
	EventsPerDelta    int     `json:"events_per_delta"`
	DeltaBytes        int     `json:"delta_bytes"`
	ColdNsPerOp       float64 `json:"cold_ns_per_op"`
	ColdAllocsPerOp   int64   `json:"cold_allocs_per_op"`
	ColdBytesPerOp    int64   `json:"cold_bytes_per_op"`
	PooledNsPerOp     float64 `json:"pooled_ns_per_op"`
	PooledAllocsPerOp int64   `json:"pooled_allocs_per_op"`
	PooledBytesPerOp  int64   `json:"pooled_bytes_per_op"`
}

// Fig7Point is one quick Figure 7 x-axis point plus the commit-path
// metrics the primary recorded while producing it.
type Fig7Point struct {
	Threads            int     `json:"threads"`
	RexReqPerSec       float64 `json:"rex_req_per_sec"`
	NativeReqPerSec    float64 `json:"native_req_per_sec"`
	ProposeCommitP50Ms float64 `json:"propose_commit_p50_ms"`
	DeltaBytesMean     float64 `json:"delta_bytes_mean"`
	DeltaEventsMean    float64 `json:"delta_events_mean"`
	PersistBatchMean   float64 `json:"persist_batch_records_mean"`
	PersistBatchMax    uint64  `json:"persist_batch_records_max"`
}

// walBench drives a FileLog with writers concurrent appenders issuing
// sequential durable appends each, the pattern the Paxos node produces
// under load, and reads the group-commit shape off the log's own metrics.
func walBench(writers, appendsPer, recordBytes int) (WALBenchResult, error) {
	r := WALBenchResult{Writers: writers, AppendsPerGor: appendsPer, RecordBytes: recordBytes}
	dir, err := os.MkdirTemp("", "rex-walbench")
	if err != nil {
		return r, err
	}
	defer os.RemoveAll(dir)
	l, err := storage.OpenFileLog(filepath.Join(dir, "wal"), true)
	if err != nil {
		return r, err
	}
	defer l.Close()
	m := storage.NewLogMetrics()
	l.SetMetrics(m)

	rec := make([]byte, recordBytes)
	for i := range rec {
		rec[i] = byte(i)
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < appendsPer; i++ {
				if err := l.Append(rec); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return r, err
		}
	}
	batch := m.BatchRecords.Snapshot()
	r.Appends = m.Appends.Value()
	r.Fsyncs = m.Fsyncs.Value()
	if r.Appends > 0 {
		r.FsyncsPerAppend = float64(r.Fsyncs) / float64(r.Appends)
		r.NsPerAppend = float64(elapsed.Nanoseconds()) / float64(r.Appends)
	}
	r.BatchMean = batch.Mean()
	r.BatchMax = batch.Max
	return r, nil
}

// commitPathDelta builds a delta shaped like a busy primary's proposal:
// two-event, one-edge request traces spread over a few threads.
func commitPathDelta(n int) *trace.Delta {
	d := &trace.Delta{Base: trace.Cut{0, 0}, Threads: make([]trace.ThreadLog, 2)}
	for i := 0; i < n; i++ {
		d.Threads[0].Append(0, trace.Event{Kind: trace.KindLockAcq, Res: 1, Arg: uint64(i)}, nil)
		d.Threads[1].Append(1, trace.Event{Kind: trace.KindLockAcq, Res: 2, Arg: uint64(i)},
			[]trace.EventID{{Thread: 0, Clock: int32(i + 1)}})
	}
	return d
}

// encodeBench measures the cold baseline (a fresh encoder per delta, the
// pre-group-commit behavior) against the pooled EncodeBytesHint hot path.
func encodeBench(events int) EncodeBenchResult {
	d := commitPathDelta(events / 2)
	hint := len(d.EncodeBytes())
	r := EncodeBenchResult{EventsPerDelta: d.EventCount(), DeltaBytes: hint}

	cold := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := wire.NewEncoder(nil)
			d.Encode(e)
			_ = e.Bytes()
		}
	})
	pooled := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = d.EncodeBytesHint(hint)
		}
	})
	r.ColdNsPerOp = float64(cold.NsPerOp())
	r.ColdAllocsPerOp = cold.AllocsPerOp()
	r.ColdBytesPerOp = cold.AllocedBytesPerOp()
	r.PooledNsPerOp = float64(pooled.NsPerOp())
	r.PooledAllocsPerOp = pooled.AllocsPerOp()
	r.PooledBytesPerOp = pooled.AllocedBytesPerOp()
	return r
}

// conflictBench runs the disjoint-key hashdb workload at the given thread
// count twice — elision on, then off — with everything else identical.
func conflictBench(threads int) ConflictPoint {
	base := RunConfig{
		App:     apps.HashDBDisjoint(),
		Threads: threads,
		Cores:   24,
		Warmup:  100 * time.Millisecond,
		Measure: 400 * time.Millisecond,
		Seed:    42,
	}
	elided := RunRex(base)
	full := base
	full.DisableConflictElision = true
	fullRes := RunRex(full)
	p := ConflictPoint{
		Threads:               threads,
		ElidedReqPerSec:       elided.Throughput,
		ElidedDeltaBytesMean:  elided.Primary.Size("rex_delta_bytes").Mean(),
		ElidedDeltaEventsMean: elided.Primary.Size("rex_delta_events").Mean(),
		ElidedOps:             elided.ElidedOps,
		FullReqPerSec:         fullRes.Throughput,
		FullDeltaBytesMean:    fullRes.Primary.Size("rex_delta_bytes").Mean(),
		FullDeltaEventsMean:   fullRes.Primary.Size("rex_delta_events").Mean(),
	}
	if p.ElidedDeltaBytesMean > 0 {
		p.DeltaBytesRatio = p.FullDeltaBytesMean / p.ElidedDeltaBytesMean
	}
	return p
}

// CommitPath runs the commit-path evidence suite: the WAL group-commit
// microbench, the encode allocation microbench, a quick Figure 7
// panel (lock server) with the primary's commit-path metrics attached,
// and the conflict-class delta-size experiment.
func CommitPath() (CommitPathResult, error) {
	var res CommitPathResult
	wal, err := walBench(8, 200, 256)
	if err != nil {
		return res, err
	}
	res.WAL = wal
	res.Encode = encodeBench(2000)
	for _, row := range Fig7(apps.LockServer(), QuickFig7()) {
		pc := row.Metrics.Histogram("rex_propose_commit_seconds")
		db := row.Metrics.Size("rex_delta_bytes")
		de := row.Metrics.Size("rex_delta_events")
		pb := row.Metrics.Size("rex_paxos_persist_batch_records")
		res.Fig7 = append(res.Fig7, Fig7Point{
			Threads:            row.Threads,
			RexReqPerSec:       row.Rex,
			NativeReqPerSec:    row.Native,
			ProposeCommitP50Ms: float64(pc.P50.Nanoseconds()) / 1e6,
			DeltaBytesMean:     db.Mean(),
			DeltaEventsMean:    de.Mean(),
			PersistBatchMean:   pb.Mean(),
			PersistBatchMax:    pb.Max,
		})
	}
	res.Conflict = append(res.Conflict, conflictBench(16))
	return res, nil
}

// WriteCommitPathJSON serializes r as indented JSON.
func WriteCommitPathJSON(w io.Writer, r CommitPathResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintCommitPath renders the suite as tables.
func PrintCommitPath(w io.Writer, r CommitPathResult) {
	t := &Table{
		Title: "Commit path: WAL group commit under concurrent appenders",
		Cols:  []string{"writers", "appends", "fsyncs", "fsyncs/append", "batch mean", "batch max", "ns/append"},
	}
	t.AddRow(fmt.Sprint(r.WAL.Writers), fmt.Sprint(r.WAL.Appends), fmt.Sprint(r.WAL.Fsyncs),
		f2(r.WAL.FsyncsPerAppend), f2(r.WAL.BatchMean), fmt.Sprint(r.WAL.BatchMax), f0(r.WAL.NsPerAppend))
	t.Notes = append(t.Notes,
		"acceptance: fsyncs/append well below 1 and batch mean above 1 under concurrency.")
	t.Fprint(w)

	t = &Table{
		Title: "Commit path: delta encoding, cold encoder vs pooled EncodeBytesHint",
		Cols:  []string{"path", "ns/op", "allocs/op", "B/op"},
	}
	t.AddRow("cold", f0(r.Encode.ColdNsPerOp), fmt.Sprint(r.Encode.ColdAllocsPerOp), fmt.Sprint(r.Encode.ColdBytesPerOp))
	t.AddRow("pooled", f0(r.Encode.PooledNsPerOp), fmt.Sprint(r.Encode.PooledAllocsPerOp), fmt.Sprint(r.Encode.PooledBytesPerOp))
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d events, %d encoded bytes per delta; acceptance: pooled allocs/op below cold.",
			r.Encode.EventsPerDelta, r.Encode.DeltaBytes))
	t.Fprint(w)

	t = &Table{
		Title: "Commit path: quick Figure 7 (lock server) with primary commit-path metrics",
		Cols: []string{"threads", "Rex (req/s)", "native (req/s)", "propose→commit p50 (ms)",
			"delta bytes", "delta events", "persist batch mean", "persist batch max"},
	}
	for _, p := range r.Fig7 {
		t.AddRow(fmt.Sprint(p.Threads), f0(p.RexReqPerSec), f0(p.NativeReqPerSec),
			f2(p.ProposeCommitP50Ms), f0(p.DeltaBytesMean), f1(p.DeltaEventsMean),
			f2(p.PersistBatchMean), fmt.Sprint(p.PersistBatchMax))
	}
	t.Fprint(w)

	t = &Table{
		Title: "Commit path: conflict-class elision (hashdb, per-client disjoint keys)",
		Cols: []string{"threads", "req/s elided", "req/s full", "delta bytes elided",
			"delta bytes full", "delta events elided", "delta events full", "ops elided", "bytes ratio"},
	}
	for _, p := range r.Conflict {
		t.AddRow(fmt.Sprint(p.Threads), f0(p.ElidedReqPerSec), f0(p.FullReqPerSec),
			f0(p.ElidedDeltaBytesMean), f0(p.FullDeltaBytesMean),
			f1(p.ElidedDeltaEventsMean), f1(p.FullDeltaEventsMean),
			fmt.Sprint(p.ElidedOps), f2(p.DeltaBytesRatio))
	}
	t.Notes = append(t.Notes,
		"acceptance: elided delta bytes well below full (class-owned lock events leave the trace).")
	t.Fprint(w)
}
