package bench

import (
	"fmt"
	"time"

	"rex/internal/apps"
	"rex/internal/cluster"
	"rex/internal/core"
	"rex/internal/env"
	"rex/internal/obs"
	"rex/internal/sim"
	"rex/internal/smr"
	"rex/internal/storage"
	"rex/internal/transport"
)

// RunConfig parameterizes one measurement run.
type RunConfig struct {
	App     apps.App
	Threads int // worker threads per replica
	Cores   int // simulated cores (the paper's machines: 24 with HT)
	Clients int // closed-loop clients; default 3×Threads
	Warmup  time.Duration
	Measure time.Duration
	// SetupCap truncates the workload prefill.
	SetupCap int
	Seed     int64

	ReadWorkers    int
	PipelineDepth  int
	DisablePruning bool
	TotalOrderTry  bool
	DisableChecks  bool
	// DisableConflictElision keeps class-owned lock events in the trace;
	// the conflict-class experiment measures its delta-size cost.
	DisableConflictElision bool
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Cores <= 0 {
		c.Cores = 24
	}
	if c.Threads <= 0 {
		c.Threads = 8
	}
	if c.Clients <= 0 {
		// Enough closed-loop clients that the machine, not the client
		// population, is the bottleneck (§6.2: "enough clients submitting
		// requests so that the machines are fully loaded"): light handlers
		// need many concurrent requests per worker to cover the commit
		// latency.
		cpt := c.App.ClientsPerThread
		if cpt <= 0 {
			cpt = 4
		}
		c.Clients = cpt * c.Threads
		if c.Clients < 32 {
			c.Clients = 32
		}
	}
	if c.Warmup <= 0 {
		c.Warmup = 200 * time.Millisecond
	}
	if c.Measure <= 0 {
		c.Measure = time.Second
	}
	if c.SetupCap == 0 {
		c.SetupCap = 500
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// RunResult is one measurement.
type RunResult struct {
	Throughput    float64 // completed requests/sec in the measure window
	WaitedPerSec  float64 // replay events that blocked, per second (Fig. 7)
	EventsPerSec  float64 // sync events committed per second
	BytesPerEvent float64 // committed sync-event bytes per event (§6.3)
	EdgesPerEvent float64 // causal edges per sync event (§4.2)
	EventsPerReq  float64
	SyncShare     float64 // sync-event bytes as a fraction of the log

	// Client-observed request latency inside the measure window (Rex runs
	// only; zero elsewhere).
	P50, P95, P99 time.Duration
	// Primary is the primary replica's metric snapshot at the end of the
	// measure window (Rex runs only).
	Primary obs.Snapshot
	// ElidedOps counts lock operations elided from the trace via
	// conflict-class ownership during the measure window (Rex runs only).
	ElidedOps uint64
}

// RunNative measures the unreplicated baseline: Threads workers running
// handlers directly, native-mode primitives.
func RunNative(cfg RunConfig) RunResult {
	cfg = cfg.withDefaults()
	e := sim.New(cfg.Cores)
	var res RunResult
	e.Run(func() {
		host, err := core.NewNativeHost(e, cfg.Threads, cfg.App.Timers, cfg.Seed, cfg.App.Factory)
		if err != nil {
			panic(err)
		}
		setup := cfg.App.NewWorkload(cfg.Seed).Setup()
		if len(setup) > cfg.SetupCap {
			setup = setup[:cfg.SetupCap]
		}
		for _, req := range setup {
			host.Apply(0, req)
		}
		host.StartTimers()
		var done uint64
		mu := e.NewMutex()
		stop := false
		g := env.NewGroup(e)
		for i := 0; i < cfg.Threads; i++ {
			i := i
			g.Add(1)
			e.Go(fmt.Sprintf("native-worker-%d", i), func() {
				defer g.Done()
				wl := cfg.App.NewWorkload(cfg.Seed + int64(i) + 1)
				for {
					mu.Lock()
					s := stop
					mu.Unlock()
					if s {
						return
					}
					host.Apply(i, wl.Next())
					mu.Lock()
					done++
					mu.Unlock()
				}
			})
		}
		e.Sleep(cfg.Warmup)
		mu.Lock()
		start := done
		mu.Unlock()
		e.Sleep(cfg.Measure)
		mu.Lock()
		finished := done
		stop = true
		mu.Unlock()
		g.Wait()
		host.Stop()
		res.Throughput = float64(finished-start) / cfg.Measure.Seconds()
	})
	return res
}

// RunRex measures a 3-replica Rex cluster.
func RunRex(cfg RunConfig) RunResult {
	cfg = cfg.withDefaults()
	e := sim.New(cfg.Cores)
	var res RunResult
	e.Run(func() {
		c := cluster.New(e, cfg.App.Factory, cluster.Options{
			Replicas:        3,
			Workers:         cfg.Threads,
			Timers:          cfg.App.Timers,
			ReadWorkers:     cfg.ReadWorkers,
			ProposeEvery:    2 * time.Millisecond,
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 100 * time.Millisecond,
			StatusEvery:     20 * time.Millisecond,
			MaxOutstanding:  4 * cfg.Clients,
			Seed:            cfg.Seed,
			DisableChecks:          cfg.DisableChecks,
			DisablePruning:         cfg.DisablePruning,
			TotalOrderTry:          cfg.TotalOrderTry,
			DisableConflictElision: cfg.DisableConflictElision,
		})
		if err := c.Start(); err != nil {
			panic(err)
		}
		p, err := c.WaitPrimary(5 * time.Second)
		if err != nil {
			panic(err)
		}
		setupCl := c.NewClient(1)
		setup := cfg.App.NewWorkload(cfg.Seed).Setup()
		if len(setup) > cfg.SetupCap {
			setup = setup[:cfg.SetupCap]
		}
		for _, req := range setup {
			if _, err := setupCl.Do(req); err != nil {
				panic(err)
			}
		}
		var done uint64
		lat := obs.NewHistogram()
		mu := e.NewMutex()
		stop := false
		measuring := false
		g := env.NewGroup(e)
		for i := 0; i < cfg.Clients; i++ {
			i := i
			g.Add(1)
			e.Go(fmt.Sprintf("client-%d", i), func() {
				defer g.Done()
				cl := c.NewClient(uint64(100 + i))
				wl := cfg.App.NewWorkload(cfg.Seed + int64(i) + 1)
				for {
					mu.Lock()
					s := stop
					mu.Unlock()
					if s {
						return
					}
					t0 := e.Now()
					if _, err := cl.Do(wl.Next()); err != nil {
						return
					}
					d := e.Now() - t0
					mu.Lock()
					if measuring {
						lat.Observe(d)
					}
					done++
					mu.Unlock()
				}
			})
		}
		secondary := (p + 1) % 3
		e.Sleep(cfg.Warmup)
		mu.Lock()
		startDone := done
		measuring = true
		mu.Unlock()
		s0 := c.Replicas[secondary].Stats()
		p0 := c.Replicas[p].Stats()
		e.Sleep(cfg.Measure)
		mu.Lock()
		endDone := done
		measuring = false
		stop = true
		mu.Unlock()
		s1 := c.Replicas[secondary].Stats()
		p1 := c.Replicas[p].Stats()
		res.Primary = c.Replicas[p].Metrics()
		res.ElidedOps = p1.ElidedOps - p0.ElidedOps
		g.Wait()
		c.Stop()
		res.P50 = lat.Quantile(0.50)
		res.P95 = lat.Quantile(0.95)
		res.P99 = lat.Quantile(0.99)

		secs := cfg.Measure.Seconds()
		res.Throughput = float64(endDone-startDone) / secs
		res.WaitedPerSec = float64(s1.WaitedEvents-s0.WaitedEvents) / secs
		events := float64(p1.EventsProposed - p0.EventsProposed)
		res.EventsPerSec = events / secs
		totalBytes := float64(p1.BytesCommitted - p0.BytesCommitted)
		reqBytes := float64(p1.ReqBytes - p0.ReqBytes)
		syncBytes := totalBytes - reqBytes
		if events > 0 {
			res.BytesPerEvent = syncBytes / events
			res.EdgesPerEvent = float64(p1.EdgesProposed-p0.EdgesProposed) / events
		}
		if totalBytes > 0 {
			res.SyncShare = syncBytes / totalBytes
		}
		if reqs := float64(endDone - startDone); reqs > 0 {
			res.EventsPerReq = events / reqs
		}
	})
	return res
}

// RunRSM measures the standard state-machine-replication baseline: same
// Paxos, sequential execution.
func RunRSM(cfg RunConfig) RunResult {
	cfg = cfg.withDefaults()
	e := sim.New(cfg.Cores)
	var res RunResult
	e.Run(func() {
		const n = 3
		net := transport.NewNetwork(e, n, 500*time.Microsecond, cfg.Seed)
		reps := make([]*smr.Replica, n)
		for i := 0; i < n; i++ {
			i := i
			build := func() {
				r, err := smr.NewReplica(smr.Config{
					ID: i, N: n, Env: e,
					Endpoint:        net.Endpoint(i),
					Log:             storage.NewMemLog(),
					Factory:         cfg.App.Factory,
					Timers:          cfg.App.Timers,
					BatchEvery:      2 * time.Millisecond,
					HeartbeatEvery:  20 * time.Millisecond,
					ElectionTimeout: 100 * time.Millisecond,
					MaxOutstanding:  4 * cfg.Clients,
					Seed:            cfg.Seed,
				})
				if err != nil {
					panic(err)
				}
				r.Start()
				reps[i] = r
			}
			// Give each SMR replica its own simulated machine, like Rex.
			m := e.AddMachine(cfg.Cores)
			done := e.NewChan(1)
			e.GoOn(m, fmt.Sprintf("rsm-replica-%d-boot", i), func() {
				build()
				done.Send(struct{}{})
			})
			done.Recv()
		}
		leader := -1
		deadline := e.Now() + 5*time.Second
		for leader < 0 && e.Now() < deadline {
			for i, r := range reps {
				if r.IsLeader() {
					leader = i
				}
			}
			e.Sleep(5 * time.Millisecond)
		}
		if leader < 0 {
			panic("bench: no SMR leader")
		}
		setup := cfg.App.NewWorkload(cfg.Seed).Setup()
		if len(setup) > cfg.SetupCap {
			setup = setup[:cfg.SetupCap]
		}
		for i, req := range setup {
			if _, err := reps[leader].Submit(1, uint64(i+1), req); err != nil {
				panic(err)
			}
		}
		var done uint64
		mu := e.NewMutex()
		stop := false
		g := env.NewGroup(e)
		for i := 0; i < cfg.Clients; i++ {
			i := i
			g.Add(1)
			e.Go(fmt.Sprintf("rsm-client-%d", i), func() {
				defer g.Done()
				wl := cfg.App.NewWorkload(cfg.Seed + int64(i) + 1)
				seq := uint64(0)
				for {
					mu.Lock()
					s := stop
					mu.Unlock()
					if s {
						return
					}
					seq++
					if _, err := reps[leader].Submit(uint64(100+i), seq, wl.Next()); err != nil {
						return
					}
					mu.Lock()
					done++
					mu.Unlock()
				}
			})
		}
		e.Sleep(cfg.Warmup)
		mu.Lock()
		start := done
		mu.Unlock()
		e.Sleep(cfg.Measure)
		mu.Lock()
		end := done
		stop = true
		mu.Unlock()
		g.Wait()
		for _, r := range reps {
			r.Stop()
		}
		res.Throughput = float64(end-start) / cfg.Measure.Seconds()
	})
	return res
}
