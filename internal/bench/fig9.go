package bench

import (
	"fmt"
	"io"
	"time"

	"rex/internal/apps"
	"rex/internal/apps/lockserver"
	"rex/internal/cluster"
	"rex/internal/env"
	"rex/internal/obs"
	"rex/internal/sim"
)

// Fig9Config parameterizes the §6.5 query-semantics experiment: a fixed
// pool of query threads reads outside the replication protocol while
// update load scales.
type Fig9Config struct {
	QueryThreads  int
	UpdateThreads []int
	Cores         int
	Warmup        time.Duration
	Measure       time.Duration
	Seed          int64
}

// DefaultFig9 mirrors the paper's 24 query threads and 1–32 update
// threads.
func DefaultFig9() Fig9Config {
	return Fig9Config{
		QueryThreads:  24,
		UpdateThreads: []int{1, 2, 4, 8, 16, 24, 32},
		Cores:         24,
		Warmup:        200 * time.Millisecond,
		Measure:       time.Second,
		Seed:          42,
	}
}

// Fig9Row is one x-axis point: update and query throughput for one query
// placement.
type Fig9Row struct {
	UpdateThreads int
	UpdateTput    float64
	QueryTput     float64

	// Metrics is the queried replica's snapshot for this point (the
	// secondary's includes the replay wait histograms).
	Metrics obs.Snapshot
}

// Fig9 reproduces Figure 9 for the given placement: onPrimary=false reads
// a secondary's committed state, onPrimary=true reads the primary's
// speculative state. The lock server runs in a contended configuration
// (few shards, work held under the shard lock) so queries feel update
// pressure, as in the paper's fully loaded setup.
func Fig9(cfg Fig9Config, onPrimary bool) []Fig9Row {
	opts := lockserver.DefaultOptions()
	opts.Shards = 8
	opts.OpCost = 10 * time.Microsecond
	opts.HoldCost = 40 * time.Microsecond
	app := apps.LockServerWith(opts)
	var rows []Fig9Row
	for _, uth := range cfg.UpdateThreads {
		rows = append(rows, fig9Point(cfg, app, uth, onPrimary))
	}
	return rows
}

func fig9Point(cfg Fig9Config, app apps.App, updateThreads int, onPrimary bool) Fig9Row {
	e := sim.New(cfg.Cores)
	var row Fig9Row
	e.Run(func() {
		c := cluster.New(e, app.Factory, cluster.Options{
			Replicas:        3,
			Workers:         updateThreads,
			Timers:          app.Timers,
			ReadWorkers:     cfg.QueryThreads,
			ProposeEvery:    2 * time.Millisecond,
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 100 * time.Millisecond,
			StatusEvery:     20 * time.Millisecond,
			MaxOutstanding:  96 * updateThreads,
			Seed:            cfg.Seed,
		})
		if err := c.Start(); err != nil {
			panic(err)
		}
		p, err := c.WaitPrimary(5 * time.Second)
		if err != nil {
			panic(err)
		}
		setupCl := c.NewClient(1)
		setup := app.NewWorkload(cfg.Seed).Setup()
		if len(setup) > 500 {
			setup = setup[:500]
		}
		for _, req := range setup {
			if _, err := setupCl.Do(req); err != nil {
				panic(err)
			}
		}
		target := (p + 1) % 3
		if onPrimary {
			target = p
		}
		var updates, queries uint64
		mu := e.NewMutex()
		stop := false
		g := env.NewGroup(e)
		for i := 0; i < 24*updateThreads; i++ {
			i := i
			g.Add(1)
			e.Go(fmt.Sprintf("updater-%d", i), func() {
				defer g.Done()
				cl := c.NewClient(uint64(100 + i))
				wl := app.NewWorkload(cfg.Seed + int64(i) + 1)
				for {
					mu.Lock()
					s := stop
					mu.Unlock()
					if s {
						return
					}
					if _, err := cl.Do(wl.Next()); err != nil {
						return
					}
					mu.Lock()
					updates++
					mu.Unlock()
				}
			})
		}
		for i := 0; i < cfg.QueryThreads; i++ {
			i := i
			g.Add(1)
			e.Go(fmt.Sprintf("querier-%d", i), func() {
				defer g.Done()
				wl := app.NewWorkload(cfg.Seed + 1000 + int64(i))
				for {
					mu.Lock()
					s := stop
					mu.Unlock()
					if s {
						return
					}
					if _, err := c.Replicas[target].Query(wl.Query()); err != nil {
						return
					}
					mu.Lock()
					queries++
					mu.Unlock()
				}
			})
		}
		e.Sleep(cfg.Warmup)
		mu.Lock()
		u0, q0 := updates, queries
		mu.Unlock()
		e.Sleep(cfg.Measure)
		mu.Lock()
		u1, q1 := updates, queries
		stop = true
		mu.Unlock()
		snap := c.Replicas[target].Metrics()
		g.Wait()
		c.Stop()
		secs := cfg.Measure.Seconds()
		row = Fig9Row{
			UpdateThreads: updateThreads,
			UpdateTput:    float64(u1-u0) / secs,
			QueryTput:     float64(q1-q0) / secs,
			Metrics:       snap,
		}
	})
	return row
}

// PrintFig9 renders one Figure 9 panel.
func PrintFig9(w io.Writer, onPrimary bool, rows []Fig9Row) {
	place := "secondary (committed state)"
	panel := "9(a)"
	if onPrimary {
		place = "primary (speculative state)"
		panel = "9(b)"
	}
	t := &Table{
		Title: fmt.Sprintf("Figure %s: queries on the %s", panel, place),
		Cols:  []string{"update threads", "update (req/s)", "query (req/s)"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.UpdateThreads), f0(r.UpdateTput), f0(r.QueryTput))
	}
	t.Notes = append(t.Notes,
		"paper (§6.5): query throughput stays roughly flat on a secondary as updates scale,",
		"but sags on the primary, whose threads rarely wait and so hold locks more contiguously.")
	t.Fprint(w)
	if n := len(rows); n > 0 {
		PrintMetricsSummary(w, fmt.Sprintf("queried %s @ %d update threads", place, rows[n-1].UpdateThreads),
			rows[n-1].Metrics)
	}
}
