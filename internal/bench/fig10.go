package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"rex/internal/apps"
	"rex/internal/cluster"
	"rex/internal/env"
	"rex/internal/obs"
	"rex/internal/sim"
)

// Fig10Config scripts the §6.6 failover timeline on the thumbnail server:
// two checkpoints, a primary kill, and a rejoin, under saturating load
// with aggressive flow control.
type Fig10Config struct {
	Threads     int
	Cores       int
	Clients     int
	BucketEvery time.Duration

	Checkpoint1 time.Duration
	Checkpoint2 time.Duration
	KillAt      time.Duration
	RestartAt   time.Duration
	EndAt       time.Duration

	// ElectionTimeout controls how long the outage lasts after the kill:
	// the paper's conservative failure detector takes ~5s to elect a new
	// primary.
	ElectionTimeout time.Duration

	Seed int64
}

// DefaultFig10 compresses the paper's 135-second timeline to 36 virtual
// seconds (the dynamics — checkpoint dip, outage, catch-up throttling —
// are unchanged, just denser).
func DefaultFig10() Fig10Config {
	return Fig10Config{
		Threads:         4,
		Cores:           8,
		Clients:         12,
		BucketEvery:     time.Second,
		Checkpoint1:     5 * time.Second,
		Checkpoint2:     17 * time.Second,
		KillAt:          18 * time.Second,
		RestartAt:       24 * time.Second,
		EndAt:           36 * time.Second,
		ElectionTimeout: 1200 * time.Millisecond,
		Seed:            42,
	}
}

// Fig10Sample is one timeline bucket. The final sample additionally
// carries the surviving primary's metric snapshot (promotion, rebuild and
// election series for the failover).
type Fig10Sample struct {
	At         time.Duration
	Throughput float64
	Event      string
	Metrics    obs.Snapshot
}

// Fig10 runs the failover timeline and returns per-bucket throughput.
func Fig10(cfg Fig10Config) []Fig10Sample {
	app := apps.Thumbnail()
	e := sim.New(cfg.Cores)
	var samples []Fig10Sample
	e.Run(func() {
		c := cluster.New(e, app.Factory, cluster.Options{
			Replicas:        3,
			Workers:         cfg.Threads,
			Timers:          app.Timers,
			ProposeEvery:    2 * time.Millisecond,
			HeartbeatEvery:  cfg.ElectionTimeout / 8,
			ElectionTimeout: cfg.ElectionTimeout,
			StatusEvery:     20 * time.Millisecond,
			MaxOutstanding:  4 * cfg.Clients,
			LagInstances:    32,
			LagEvents:       1 << 12,
			Seed:            cfg.Seed,
		})
		if err := c.Start(); err != nil {
			panic(err)
		}
		p, err := c.WaitPrimary(5 * time.Second)
		if err != nil {
			panic(err)
		}
		var done uint64
		mu := e.NewMutex()
		stop := false
		g := env.NewGroup(e)
		for i := 0; i < cfg.Clients; i++ {
			i := i
			g.Add(1)
			e.Go(fmt.Sprintf("client-%d", i), func() {
				defer g.Done()
				cl := c.NewClient(uint64(100 + i))
				wl := app.NewWorkload(cfg.Seed + int64(i) + 1)
				for {
					mu.Lock()
					s := stop
					mu.Unlock()
					if s {
						return
					}
					// Keep retrying through the outage; the request stream
					// must resume as soon as a new primary serves.
					cl.DoTimeout(wl.Next(), 60*time.Second)
					mu.Lock()
					done++
					mu.Unlock()
				}
			})
		}

		// Scripted control plane.
		events := make(map[int]string)
		e.Go("script", func() {
			wait := func(until time.Duration) bool {
				for e.Now() < until {
					mu.Lock()
					s := stop
					mu.Unlock()
					if s {
						return false
					}
					e.Sleep(10 * time.Millisecond)
				}
				return true
			}
			mark := func(at time.Duration, what string) {
				mu.Lock()
				events[int(at/cfg.BucketEvery)] = what
				mu.Unlock()
			}
			if !wait(cfg.Checkpoint1) {
				return
			}
			mark(cfg.Checkpoint1, "checkpoint 1")
			if pr := c.Primary(); pr >= 0 {
				c.Replicas[pr].Checkpoint()
			}
			if !wait(cfg.Checkpoint2) {
				return
			}
			mark(cfg.Checkpoint2, "checkpoint 2")
			if pr := c.Primary(); pr >= 0 {
				c.Replicas[pr].Checkpoint()
			}
			if !wait(cfg.KillAt) {
				return
			}
			mark(cfg.KillAt, "primary killed")
			c.Crash(p)
			if !wait(cfg.RestartAt) {
				return
			}
			mark(cfg.RestartAt, "old primary rejoins")
			if err := c.Restart(p); err != nil {
				panic(err)
			}
		})

		// Sample throughput per bucket.
		start := e.Now()
		last := uint64(0)
		for e.Now()-start < cfg.EndAt {
			e.Sleep(cfg.BucketEvery)
			mu.Lock()
			cur := done
			mu.Unlock()
			at := e.Now() - start
			samples = append(samples, Fig10Sample{
				At:         at,
				Throughput: float64(cur-last) / cfg.BucketEvery.Seconds(),
			})
			last = cur
		}
		mu.Lock()
		stop = true
		for i := range samples {
			if ev, ok := events[int(samples[i].At/cfg.BucketEvery)-1]; ok {
				samples[i].Event = ev
			}
		}
		mu.Unlock()
		if pr := c.Primary(); pr >= 0 && len(samples) > 0 {
			samples[len(samples)-1].Metrics = c.Replicas[pr].Metrics()
		}
		g.Wait()
		c.Stop()
	})
	return samples
}

// PrintFig10 renders the timeline.
func PrintFig10(w io.Writer, cfg Fig10Config, samples []Fig10Sample) {
	t := &Table{
		Title: "Figure 10: thumbnail-server failover timeline (throughput per second)",
		Cols:  []string{"t (s)", "req/s", "", "event"},
	}
	var peak float64
	for _, s := range samples {
		if s.Throughput > peak {
			peak = s.Throughput
		}
	}
	for _, s := range samples {
		barLen := 0
		if peak > 0 {
			barLen = int(s.Throughput / peak * 40)
		}
		t.AddRow(fmt.Sprintf("%.0f", s.At.Seconds()), f0(s.Throughput),
			strings.Repeat("#", barLen), s.Event)
	}
	t.Notes = append(t.Notes,
		"paper (§6.6): throughput dips ~2s at each checkpoint, drops to zero when the primary",
		"dies, recovers after election, and sags while the rejoined replica catches up under",
		"aggressive flow control, then returns to normal.")
	t.Fprint(w)
	if n := len(samples); n > 0 {
		PrintMetricsSummary(w, "surviving primary after failover", samples[n-1].Metrics)
	}
}
