package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"rex/internal/apps"
	"rex/internal/core"
	"rex/internal/rexsync"
	"rex/internal/sched"
	"rex/internal/wire"
)

// microSM is the §6.4 micro-benchmark: each request computes for a fixed
// total, part of it while holding a lock drawn from a pool of l locks, so
// the contention probability is p = 1/l and the lock granularity is the
// in-lock percentage.
type microSM struct {
	locks    []*rexsync.Lock
	counters []uint64
	total    time.Duration
	pctIn    int
}

// newMicroApp builds the micro-benchmark as an apps.App.
func newMicroApp(numLocks, pctInLock int, total time.Duration) apps.App {
	factory := func(rt *sched.Runtime, host *core.TimerHost) core.StateMachine {
		s := &microSM{total: total, pctIn: pctInLock}
		for i := 0; i < numLocks; i++ {
			s.locks = append(s.locks, rexsync.NewLock(rt, fmt.Sprintf("micro-%d", i)))
		}
		s.counters = make([]uint64, numLocks)
		return s
	}
	return apps.App{
		Name:       fmt.Sprintf("micro-l%d-p%d", numLocks, pctInLock),
		Title:      "lock-granularity micro-benchmark",
		Primitives: []string{"Lock"},
		Factory:    factory,
		NewWorkload: func(seed int64) apps.Workload {
			return &microWorkload{rng: rand.New(rand.NewSource(seed)), locks: numLocks}
		},
	}
}

type microWorkload struct {
	rng   *rand.Rand
	locks int
}

func (w *microWorkload) Setup() [][]byte { return nil }
func (w *microWorkload) Next() []byte {
	e := wire.NewEncoder(nil)
	e.Uvarint(uint64(w.rng.Intn(w.locks)))
	return e.Bytes()
}
func (w *microWorkload) Query() []byte { return w.Next() }

// Apply implements core.StateMachine.
func (s *microSM) Apply(ctx *core.Ctx, req []byte) []byte {
	d := wire.NewDecoder(req)
	idx := int(d.Uvarint()) % len(s.locks)
	inside := s.total * time.Duration(s.pctIn) / 100
	outside := s.total - inside
	ctx.Compute(outside)
	w := ctx.Worker()
	s.locks[idx].Lock(w)
	ctx.Compute(inside)
	s.counters[idx]++
	s.locks[idx].Unlock(w)
	return []byte{1}
}

// WriteCheckpoint implements core.StateMachine.
func (s *microSM) WriteCheckpoint(w io.Writer) error {
	e := wire.NewEncoder(nil)
	for _, c := range s.counters {
		e.Uvarint(c)
	}
	_, err := w.Write(e.Bytes())
	return err
}

// ReadCheckpoint implements core.StateMachine.
func (s *microSM) ReadCheckpoint(r io.Reader) error {
	buf := make([]byte, 0, 8*len(s.counters))
	b := make([]byte, 4096)
	for {
		n, err := r.Read(b)
		buf = append(buf, b[:n]...)
		if err != nil {
			break
		}
	}
	d := wire.NewDecoder(buf)
	for i := range s.counters {
		s.counters[i] = d.Uvarint()
	}
	return nil
}

// Fig8Config parameterizes the §6.4 experiments. HandlerTotal is the
// paper's "approximately 10 milliseconds" of computation per request,
// scaled down by default to keep simulations fast (the shape depends only
// on the in-lock fraction and the contention probability).
type Fig8Config struct {
	Threads      int
	Cores        int
	HandlerTotal time.Duration
	Warmup       time.Duration
	Measure      time.Duration
	Seed         int64
}

// DefaultFig8 uses the paper's 16-core setting.
func DefaultFig8() Fig8Config {
	return Fig8Config{
		Threads:      16,
		Cores:        16,
		HandlerTotal: time.Millisecond,
		Warmup:       200 * time.Millisecond,
		Measure:      time.Second,
		Seed:         42,
	}
}

// Fig8aRow is one cell of Figure 8(a): Rex throughput for a given lock
// granularity (percent of computation inside the lock) and contention
// probability.
type Fig8aRow struct {
	PctInLock   int
	ContentionP float64
	Rex         float64
}

func locksForP(p float64) int {
	l := int(1/p + 0.5)
	if l < 1 {
		l = 1
	}
	return l
}

// Fig8a reproduces Figure 8(a): the impact of lock granularity under
// increasing contention probability.
func Fig8a(cfg Fig8Config, pcts []int, ps []float64) []Fig8aRow {
	var rows []Fig8aRow
	for _, pct := range pcts {
		for _, p := range ps {
			app := newMicroApp(locksForP(p), pct, cfg.HandlerTotal)
			r := RunRex(RunConfig{
				App: app, Threads: cfg.Threads, Cores: cfg.Cores,
				Warmup: cfg.Warmup, Measure: cfg.Measure, Seed: cfg.Seed,
			})
			rows = append(rows, Fig8aRow{PctInLock: pct, ContentionP: p, Rex: r.Throughput})
		}
	}
	return rows
}

// PrintFig8a renders Figure 8(a).
func PrintFig8a(w io.Writer, rows []Fig8aRow) {
	byPct := map[int]map[float64]float64{}
	var pcts []int
	var ps []float64
	seenP := map[float64]bool{}
	for _, r := range rows {
		if byPct[r.PctInLock] == nil {
			byPct[r.PctInLock] = map[float64]float64{}
			pcts = append(pcts, r.PctInLock)
		}
		byPct[r.PctInLock][r.ContentionP] = r.Rex
		if !seenP[r.ContentionP] {
			seenP[r.ContentionP] = true
			ps = append(ps, r.ContentionP)
		}
	}
	sort.Ints(pcts)
	sort.Float64s(ps)
	t := &Table{
		Title: "Figure 8(a): Rex throughput (req/s) by lock granularity and contention probability",
		Cols:  []string{"contention p"},
	}
	for _, pct := range pcts {
		t.Cols = append(t.Cols, fmt.Sprintf("%d%% in lock", pct))
	}
	for _, p := range ps {
		row := []string{fmt.Sprintf("%g", p)}
		for _, pct := range pcts {
			row = append(row, f0(byPct[pct][p]))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper (§6.4): below p=0.05 granularity barely matters; at p=0.1 the 100%-in-lock case",
		"loses roughly half its throughput while 10% barely degrades.")
	t.Fprint(w)
}

// Fig8bRow is one x-axis point of Figure 8(b): native vs Rex as contention
// grows, at 10% in-lock computation.
type Fig8bRow struct {
	ContentionP float64
	Native      float64
	Rex         float64
}

// Fig8b reproduces Figure 8(b).
func Fig8b(cfg Fig8Config, ps []float64) []Fig8bRow {
	var rows []Fig8bRow
	for _, p := range ps {
		app := newMicroApp(locksForP(p), 10, cfg.HandlerTotal)
		rc := RunConfig{
			App: app, Threads: cfg.Threads, Cores: cfg.Cores,
			Warmup: cfg.Warmup, Measure: cfg.Measure, Seed: cfg.Seed,
		}
		native := RunNative(rc)
		rex := RunRex(rc)
		rows = append(rows, Fig8bRow{ContentionP: p, Native: native.Throughput, Rex: rex.Throughput})
	}
	return rows
}

// PrintFig8b renders Figure 8(b).
func PrintFig8b(w io.Writer, rows []Fig8bRow) {
	t := &Table{
		Title: "Figure 8(b): native vs Rex under increasing lock contention (10% in lock)",
		Cols:  []string{"contention p", "native (req/s)", "Rex (req/s)", "Rex/native"},
	}
	for _, r := range rows {
		ratio := 0.0
		if r.Native > 0 {
			ratio = r.Rex / r.Native
		}
		t.AddRow(fmt.Sprintf("%g", r.ContentionP), f0(r.Native), f0(r.Rex), f2(ratio))
	}
	t.Notes = append(t.Notes,
		"paper (§6.4): Rex stays within 10-20% of native below p=0.5; both collapse together above.")
	t.Fprint(w)
}
