package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"rex/internal/apps"
	"rex/internal/apps/hashdb"
	"rex/internal/apps/lsmkv"
	"rex/internal/cluster"
	"rex/internal/env"
	"rex/internal/obs"
	"rex/internal/shard"
	"rex/internal/sim"
)

// The shard-scaling suite measures what partitioning buys: the same four
// nodes host 1, 2, 4, or 8 independent replica groups, a fixed client
// population routes keyed writes through the shard router, and aggregate
// committed throughput is compared against the single-group baseline.
// With one group every request funnels through one primary's propose
// pipeline; with G groups the key space splits into G independent
// pipelines whose primaries the placement rotation spreads over the
// nodes, so throughput scales until either the client population or the
// nodes' cores saturate.

// ShardScalingConfig parameterizes the suite. The client population is
// deliberately FIXED across group counts: the speedup then reflects the
// extra parallel commit pipelines, not extra offered load.
type ShardScalingConfig struct {
	GroupCounts      []int // e.g. 1, 2, 4, 8
	Nodes            int
	ReplicasPerGroup int
	Workers          int // request workers per replica (per group)
	Cores            int // simulated cores per node machine
	Clients          int // total closed-loop clients, fixed across counts
	Keys             int // routed key-space size
	ValueBytes       int
	Warmup           time.Duration
	Measure          time.Duration
	Seed             int64
	Apps             []string // subset of "hashdb", "lsmkv"
}

// DefaultShardScaling is the full suite.
func DefaultShardScaling() ShardScalingConfig {
	return ShardScalingConfig{
		GroupCounts:      []int{1, 2, 4, 8},
		Nodes:            4,
		ReplicasPerGroup: 3,
		Workers:          2,
		Cores:            8,
		Clients:          384,
		Keys:             2048,
		ValueBytes:       64,
		Warmup:           200 * time.Millisecond,
		Measure:          500 * time.Millisecond,
		Seed:             42,
		Apps:             []string{"hashdb", "lsmkv"},
	}
}

// QuickShardScaling trims the suite for a fast pass.
func QuickShardScaling() ShardScalingConfig {
	cfg := DefaultShardScaling()
	cfg.GroupCounts = []int{1, 4}
	cfg.Clients = 256
	cfg.Measure = 300 * time.Millisecond
	return cfg
}

// ShardPoint is one (app, group count) measurement.
type ShardPoint struct {
	App              string    `json:"app"`
	Groups           int       `json:"groups"`
	Nodes            int       `json:"nodes"`
	ReplicasPerGroup int       `json:"replicas_per_group"`
	Clients          int       `json:"clients"`
	Throughput       float64   `json:"throughput_rps"` // aggregate committed writes/sec
	PerGroup         []float64 `json:"per_group_rps"`
	SpeedupVs1       float64   `json:"speedup_vs_1"`
	P50Ms            float64   `json:"p50_ms"`
	P99Ms            float64   `json:"p99_ms"`
}

// ShardScalingResult is the whole suite; `make bench-json` serializes it
// as BENCH_shard_scaling.json. Rebalance carries the live-migration
// experiment when the caller ran it alongside the scaling sweep.
type ShardScalingResult struct {
	Points    []ShardPoint          `json:"points"`
	Rebalance *RebalanceBenchResult `json:"rebalance,omitempty"`
}

// keyedApp adapts one application to the routed workload: a replicated
// write and the state-machine factory to run under each group.
type keyedApp struct {
	app   apps.App
	write func(key string, val []byte) []byte
}

func keyedApps(names []string) ([]keyedApp, error) {
	var out []keyedApp
	for _, name := range names {
		app, ok := apps.Get(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown application %q", name)
		}
		ka := keyedApp{app: app}
		switch name {
		case "hashdb":
			ka.write = hashdb.SetReq
		case "lsmkv":
			ka.write = lsmkv.PutReq
		default:
			return nil, fmt.Errorf("bench: no keyed workload for %q", name)
		}
		out = append(out, ka)
	}
	return out, nil
}

// runShardPoint measures one group count for one app on a fresh simulator.
func runShardPoint(ka keyedApp, groups int, cfg ShardScalingConfig) ShardPoint {
	pt := ShardPoint{
		App:              ka.app.Name,
		Groups:           groups,
		Nodes:            cfg.Nodes,
		ReplicasPerGroup: cfg.ReplicasPerGroup,
		Clients:          cfg.Clients,
	}
	e := sim.New(cfg.Cores)
	e.Run(func() {
		m, err := shard.NewShardMap(1, groups, cfg.Nodes, cfg.ReplicasPerGroup)
		if err != nil {
			panic(err)
		}
		mc, err := cluster.NewMulti(e, ka.app.Factory, m, cluster.Options{
			Workers:         cfg.Workers,
			Timers:          ka.app.Timers,
			ProposeEvery:    2 * time.Millisecond,
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 100 * time.Millisecond,
			StatusEvery:     20 * time.Millisecond,
			MaxOutstanding:  4 * cfg.Clients,
			Seed:            cfg.Seed,
		})
		if err != nil {
			panic(err)
		}
		if err := mc.Start(); err != nil {
			panic(err)
		}
		if err := mc.WaitAllPrimaries(5 * time.Second); err != nil {
			panic(err)
		}

		key := func(k int) string { return fmt.Sprintf("key-%06d", k) }
		val := make([]byte, cfg.ValueBytes)
		for i := range val {
			val[i] = byte('a' + i%26)
		}

		// Prefill the key space in parallel so the measured window never
		// pays first-touch costs.
		setup := env.NewGroup(e)
		setupWorkers := 16
		for w := 0; w < setupWorkers; w++ {
			w := w
			setup.Add(1)
			e.Go(fmt.Sprintf("shard-setup-%d", w), func() {
				defer setup.Done()
				r := mc.NewRouter(uint64(1 + w*100))
				for k := w; k < cfg.Keys; k += setupWorkers {
					if _, err := r.Do([]byte(key(k)), ka.write(key(k), val)); err != nil {
						panic(fmt.Sprintf("bench: shard prefill: %v", err))
					}
				}
			})
		}
		setup.Wait()

		var done uint64
		perGroup := make([]uint64, groups)
		lat := obs.NewHistogram()
		mu := e.NewMutex()
		stop := false
		measuring := false
		g := env.NewGroup(e)
		for i := 0; i < cfg.Clients; i++ {
			i := i
			g.Add(1)
			e.Go(fmt.Sprintf("shard-client-%d", i), func() {
				defer g.Done()
				// Each client gets its own router (cluster clients are not
				// concurrency-safe); id ranges are spaced so every group
				// sees unique client ids.
				r := mc.NewRouter(uint64(10_000 + i*100))
				rng := rand.New(rand.NewSource(cfg.Seed + int64(i) + 1))
				for {
					mu.Lock()
					s := stop
					mu.Unlock()
					if s {
						return
					}
					k := key(rng.Intn(cfg.Keys))
					t0 := e.Now()
					if _, err := r.Do([]byte(k), ka.write(k, val)); err != nil {
						return
					}
					d := e.Now() - t0
					mu.Lock()
					if measuring {
						lat.Observe(d)
						perGroup[r.GroupFor([]byte(k))]++
					}
					done++
					mu.Unlock()
				}
			})
		}

		e.Sleep(cfg.Warmup)
		mu.Lock()
		startDone := done
		measuring = true
		mu.Unlock()
		e.Sleep(cfg.Measure)
		mu.Lock()
		endDone := done
		measuring = false
		stop = true
		mu.Unlock()
		g.Wait()
		mc.Stop()

		secs := cfg.Measure.Seconds()
		pt.Throughput = float64(endDone-startDone) / secs
		pt.PerGroup = make([]float64, groups)
		for gi, n := range perGroup {
			pt.PerGroup[gi] = float64(n) / secs
		}
		pt.P50Ms = float64(lat.Quantile(0.50)) / float64(time.Millisecond)
		pt.P99Ms = float64(lat.Quantile(0.99)) / float64(time.Millisecond)
	})
	return pt
}

// RunShardScaling runs the suite. logf, when non-nil, narrates progress.
func RunShardScaling(cfg ShardScalingConfig, logf func(string, ...any)) (ShardScalingResult, error) {
	var res ShardScalingResult
	kas, err := keyedApps(cfg.Apps)
	if err != nil {
		return res, err
	}
	for _, ka := range kas {
		base := 0.0
		for _, groups := range cfg.GroupCounts {
			if logf != nil {
				logf("shard scaling: %s, %d group(s)...", ka.app.Name, groups)
			}
			pt := runShardPoint(ka, groups, cfg)
			if groups == 1 {
				base = pt.Throughput
			}
			if base > 0 {
				pt.SpeedupVs1 = pt.Throughput / base
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

// WriteShardScalingJSON serializes the suite result.
func WriteShardScalingJSON(w io.Writer, r ShardScalingResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintShardScaling renders the suite as one table per app.
func PrintShardScaling(w io.Writer, r ShardScalingResult) {
	byApp := map[string][]ShardPoint{}
	var order []string
	for _, pt := range r.Points {
		if _, ok := byApp[pt.App]; !ok {
			order = append(order, pt.App)
		}
		byApp[pt.App] = append(byApp[pt.App], pt)
	}
	for _, app := range order {
		t := &Table{
			Title: fmt.Sprintf("Shard scaling: %s, fixed client population", app),
			Cols:  []string{"groups", "nodes", "clients", "writes/s", "speedup", "p50 ms", "p99 ms", "min grp/s", "max grp/s"},
		}
		for _, pt := range byApp[app] {
			lo, hi := pt.PerGroup[0], pt.PerGroup[0]
			for _, v := range pt.PerGroup {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			t.AddRow(
				fmt.Sprintf("%d", pt.Groups),
				fmt.Sprintf("%d", pt.Nodes),
				fmt.Sprintf("%d", pt.Clients),
				f0(pt.Throughput),
				f2(pt.SpeedupVs1),
				f2(pt.P50Ms),
				f2(pt.P99Ms),
				f0(lo),
				f0(hi),
			)
		}
		t.Notes = append(t.Notes,
			"same nodes and client count at every group count; speedup is extra commit pipelines, not extra load",
			"groups are conflict-free by construction (disjoint key ranges), so no cross-group ordering is paid")
		t.Fprint(w)
	}
}
