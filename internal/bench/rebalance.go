package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"rex/internal/apps/hashdb"
	"rex/internal/cluster"
	"rex/internal/env"
	"rex/internal/obs"
	"rex/internal/shard"
	"rex/internal/sim"
)

// The rebalance suite measures what a live range migration costs the
// rest of the deployment: two groups serve a fixed client population
// while the coordinator moves one of group 0's ranges to group 1 in the
// middle of the run. Three windows are compared — steady state before
// the move, the move window itself, and after the flip — plus a fresh
// deployment bootstrapped directly into the post-move map shape, which
// bounds the permanent cost of having migrated (as opposed to having
// always been there).

// RebalanceBenchConfig parameterizes the suite. Two groups, hashdb, and
// a key space split so roughly a quarter of the keys live in the moved
// span (group 0's upper range).
type RebalanceBenchConfig struct {
	Nodes            int
	ReplicasPerGroup int
	Workers          int
	Cores            int // simulated cores per node machine
	Clients          int // closed-loop clients, fixed across windows
	Keys             int
	ValueBytes       int
	Warmup           time.Duration
	Steady           time.Duration // steady-state measurement window
	Post             time.Duration // post-move measurement window
	WarmRounds       int           // coordinator warm-copy rounds
	Seed             int64
}

// DefaultRebalanceBench is the full suite.
func DefaultRebalanceBench() RebalanceBenchConfig {
	return RebalanceBenchConfig{
		Nodes:            3,
		ReplicasPerGroup: 3,
		Workers:          2,
		Cores:            8,
		Clients:          96,
		Keys:             1024,
		ValueBytes:       64,
		Warmup:           200 * time.Millisecond,
		Steady:           400 * time.Millisecond,
		Post:             400 * time.Millisecond,
		WarmRounds:       3,
		Seed:             42,
	}
}

// QuickRebalanceBench trims the suite for a fast pass.
func QuickRebalanceBench() RebalanceBenchConfig {
	cfg := DefaultRebalanceBench()
	cfg.Clients = 48
	cfg.Keys = 512
	cfg.Steady = 250 * time.Millisecond
	cfg.Post = 250 * time.Millisecond
	return cfg
}

// RebalanceBenchResult is the suite's verdict; `make bench-json` folds it
// into BENCH_shard_scaling.json.
type RebalanceBenchResult struct {
	Clients  int `json:"clients"`
	Keys     int `json:"keys"`
	MovedKey int `json:"moved_keys"` // keys whose hash lies in the moved span

	SteadyRPS         float64 `json:"steady_rps"`           // aggregate, before the move
	SteadySurviving   float64 `json:"steady_surviving_rps"` // surviving-range share of steady state
	MoveRPS           float64 `json:"move_rps"`             // aggregate during the live move
	MoveSurviving     float64 `json:"move_surviving_rps"`   // surviving-range share during the move
	SurvivingRatio    float64 `json:"surviving_ratio"`      // MoveSurviving / SteadySurviving
	PostRPS           float64 `json:"post_rps"`             // aggregate after the flip
	StaticRPS         float64 `json:"static_rps"`           // same map shape, never migrated
	PostVsStatic      float64 `json:"post_vs_static"`
	MoveSeconds       float64 `json:"move_seconds"`        // propose -> finalize
	FinalDeltaBytes   uint64  `json:"final_delta_bytes"`   // post-freeze export size
	MoveRangeFraction float64 `json:"move_range_fraction"` // share of hash space moved
}

const rebalanceMoveAt = uint64(1) << 62 // split point: group 0's upper half

// runRebalanceLoad drives the fixed client population against mc and
// returns a measure function: measureUntil(stopped) samples the aggregate
// and surviving-range committed-write counters over a window.
func runRebalanceBench(cfg RebalanceBenchConfig, res *RebalanceBenchResult, logf func(string, ...any)) error {
	var runErr error
	e := sim.New(cfg.Cores)
	e.Run(func() {
		m, err := shard.NewShardMap(1, 2, cfg.Nodes, cfg.ReplicasPerGroup)
		if err != nil {
			runErr = err
			return
		}
		mc, err := cluster.NewMulti(e, hashdb.New(hashdb.DefaultOptions()), m, cluster.Options{
			Workers:         cfg.Workers,
			ReadWorkers:     2,
			Timers:          hashdb.Timers(),
			ProposeEvery:    2 * time.Millisecond,
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 100 * time.Millisecond,
			StatusEvery:     20 * time.Millisecond,
			MaxOutstanding:  4 * cfg.Clients,
			Seed:            cfg.Seed,
			LiveRebalance:   true,
		})
		if err != nil {
			runErr = err
			return
		}
		if err := mc.Start(); err != nil {
			runErr = err
			return
		}
		if err := mc.WaitAllPrimaries(5 * time.Second); err != nil {
			runErr = err
			return
		}

		// Split group 0's range first (metadata only), so the move ships
		// the span [2^62, 2^63) — about a quarter of the keys.
		reg := obs.NewRegistry()
		cd := mc.NewCoordinator(900_000, reg)
		cd.WarmRounds = cfg.WarmRounds
		if _, err := cd.Split(rebalanceMoveAt); err != nil {
			runErr = fmt.Errorf("bench: pre-split: %v", err)
			return
		}

		key := func(k int) string { return fmt.Sprintf("key-%06d", k) }
		inMoved := func(k int) bool {
			h := shard.HashKey([]byte(key(k)))
			return h >= rebalanceMoveAt && h < uint64(1)<<63
		}
		for k := 0; k < cfg.Keys; k++ {
			if inMoved(k) {
				res.MovedKey++
			}
		}
		val := make([]byte, cfg.ValueBytes)
		for i := range val {
			val[i] = byte('a' + i%26)
		}

		// Prefill so the moved span actually has bytes to ship.
		setup := env.NewGroup(e)
		setupWorkers := 16
		for w := 0; w < setupWorkers; w++ {
			w := w
			setup.Add(1)
			e.Go(fmt.Sprintf("rebalance-setup-%d", w), func() {
				defer setup.Done()
				r := mc.NewRouter(uint64(1 + w*100))
				for k := w; k < cfg.Keys; k += setupWorkers {
					if _, err := r.Do([]byte(key(k)), hashdb.SetReq(key(k), val)); err != nil {
						panic(fmt.Sprintf("bench: rebalance prefill: %v", err))
					}
				}
			})
		}
		setup.Wait()

		var doneAll, doneSurv uint64
		mu := e.NewMutex()
		stop := false
		g := env.NewGroup(e)
		for i := 0; i < cfg.Clients; i++ {
			i := i
			g.Add(1)
			e.Go(fmt.Sprintf("rebalance-client-%d", i), func() {
				defer g.Done()
				r := mc.NewRouter(uint64(10_000 + i*100))
				rng := rand.New(rand.NewSource(cfg.Seed + int64(i) + 1))
				for {
					mu.Lock()
					s := stop
					mu.Unlock()
					if s {
						return
					}
					k := rng.Intn(cfg.Keys)
					if _, err := r.Do([]byte(key(k)), hashdb.SetReq(key(k), val)); err != nil {
						return
					}
					mu.Lock()
					doneAll++
					if !inMoved(k) {
						doneSurv++
					}
					mu.Unlock()
				}
			})
		}

		snapshot := func() (uint64, uint64) {
			mu.Lock()
			defer mu.Unlock()
			return doneAll, doneSurv
		}

		// Window 1: steady state.
		e.Sleep(cfg.Warmup)
		a0, s0 := snapshot()
		e.Sleep(cfg.Steady)
		a1, s1 := snapshot()
		secs := cfg.Steady.Seconds()
		res.SteadyRPS = float64(a1-a0) / secs
		res.SteadySurviving = float64(s1-s0) / secs

		// Window 2: the live move. The window is exactly the move's own
		// duration — propose through finalize.
		moveDone := false
		var moveErr error
		t0 := e.Now()
		a2, s2 := snapshot()
		mover := env.GoEach(e, "rebalance-mover", 1, func(int) {
			_, err := cd.Move(rebalanceMoveAt, 1)
			mu.Lock()
			moveDone = true
			moveErr = err
			mu.Unlock()
		})
		for {
			mu.Lock()
			d := moveDone
			mu.Unlock()
			if d {
				break
			}
			e.Sleep(2 * time.Millisecond)
		}
		mover.Wait()
		if moveErr != nil {
			runErr = fmt.Errorf("bench: move: %v", moveErr)
			return
		}
		a3, s3 := snapshot()
		moveSecs := (e.Now() - t0).Seconds()
		res.MoveSeconds = moveSecs
		if moveSecs > 0 {
			res.MoveRPS = float64(a3-a2) / moveSecs
			res.MoveSurviving = float64(s3-s2) / moveSecs
		}
		if res.SteadySurviving > 0 {
			res.SurvivingRatio = res.MoveSurviving / res.SteadySurviving
		}
		res.FinalDeltaBytes = reg.Snapshot().Counter("rex_rebalance_moved_bytes")
		res.MoveRangeFraction = 0.25

		// Window 3: after the flip.
		a4, s4 := snapshot()
		_ = s4
		e.Sleep(cfg.Post)
		a5, _ := snapshot()
		res.PostRPS = float64(a5-a4) / cfg.Post.Seconds()

		mu.Lock()
		stop = true
		mu.Unlock()
		g.Wait()
		mc.Stop()
	})
	return runErr
}

// runRebalanceStatic measures the same workload on a deployment
// bootstrapped directly into the post-move map shape — the "never
// migrated" baseline.
func runRebalanceStatic(cfg RebalanceBenchConfig) (float64, error) {
	var rps float64
	var runErr error
	e := sim.New(cfg.Cores)
	e.Run(func() {
		m, err := shard.NewShardMap(1, 2, cfg.Nodes, cfg.ReplicasPerGroup)
		if err != nil {
			runErr = err
			return
		}
		m.EnsureRanges()
		ms, err := m.WithSplit(rebalanceMoveAt)
		if err != nil {
			runErr = err
			return
		}
		shape, err := ms.WithMove(rebalanceMoveAt, 1)
		if err != nil {
			runErr = err
			return
		}
		mc, err := cluster.NewMulti(e, hashdb.New(hashdb.DefaultOptions()), shape, cluster.Options{
			Workers:         cfg.Workers,
			ReadWorkers:     2,
			Timers:          hashdb.Timers(),
			ProposeEvery:    2 * time.Millisecond,
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 100 * time.Millisecond,
			StatusEvery:     20 * time.Millisecond,
			MaxOutstanding:  4 * cfg.Clients,
			Seed:            cfg.Seed,
			LiveRebalance:   true,
		})
		if err != nil {
			runErr = err
			return
		}
		if err := mc.Start(); err != nil {
			runErr = err
			return
		}
		if err := mc.WaitAllPrimaries(5 * time.Second); err != nil {
			runErr = err
			return
		}

		key := func(k int) string { return fmt.Sprintf("key-%06d", k) }
		val := make([]byte, cfg.ValueBytes)
		for i := range val {
			val[i] = byte('a' + i%26)
		}
		var done uint64
		mu := e.NewMutex()
		stop := false
		g := env.NewGroup(e)
		for i := 0; i < cfg.Clients; i++ {
			i := i
			g.Add(1)
			e.Go(fmt.Sprintf("rebalance-static-client-%d", i), func() {
				defer g.Done()
				r := mc.NewRouter(uint64(10_000 + i*100))
				rng := rand.New(rand.NewSource(cfg.Seed + int64(i) + 1))
				for {
					mu.Lock()
					s := stop
					mu.Unlock()
					if s {
						return
					}
					k := key(rng.Intn(cfg.Keys))
					if _, err := r.Do([]byte(k), hashdb.SetReq(k, val)); err != nil {
						return
					}
					mu.Lock()
					done++
					mu.Unlock()
				}
			})
		}
		e.Sleep(cfg.Warmup)
		mu.Lock()
		start := done
		mu.Unlock()
		e.Sleep(cfg.Post)
		mu.Lock()
		end := done
		stop = true
		mu.Unlock()
		g.Wait()
		mc.Stop()
		rps = float64(end-start) / cfg.Post.Seconds()
	})
	return rps, runErr
}

// RunRebalanceBench runs the suite: the live-move deployment, then the
// static same-shape baseline.
func RunRebalanceBench(cfg RebalanceBenchConfig, logf func(string, ...any)) (RebalanceBenchResult, error) {
	res := RebalanceBenchResult{Clients: cfg.Clients, Keys: cfg.Keys}
	if logf != nil {
		logf("rebalance: live move deployment...")
	}
	if err := runRebalanceBench(cfg, &res, logf); err != nil {
		return res, err
	}
	if logf != nil {
		logf("rebalance: static same-shape baseline...")
	}
	static, err := runRebalanceStatic(cfg)
	if err != nil {
		return res, err
	}
	res.StaticRPS = static
	if static > 0 {
		res.PostVsStatic = res.PostRPS / static
	}
	return res, nil
}

// PrintRebalanceBench renders the suite.
func PrintRebalanceBench(w io.Writer, r RebalanceBenchResult) {
	t := &Table{
		Title: "Live rebalance: move 1/4 of the hash space under load",
		Cols:  []string{"window", "aggregate w/s", "surviving w/s"},
	}
	t.AddRow("steady", f0(r.SteadyRPS), f0(r.SteadySurviving))
	t.AddRow("during move", f0(r.MoveRPS), f0(r.MoveSurviving))
	t.AddRow("post-move", f0(r.PostRPS), "-")
	t.AddRow("static shape", f0(r.StaticRPS), "-")
	t.Notes = append(t.Notes,
		fmt.Sprintf("surviving-range throughput during the move: %.0f%% of steady state (floor: 70%%)", 100*r.SurvivingRatio),
		fmt.Sprintf("post-move vs never-migrated: %.0f%% (floor: 90%%)", 100*r.PostVsStatic),
		fmt.Sprintf("move took %.0f ms, final post-freeze delta %d bytes, %d of %d keys moved",
			1000*r.MoveSeconds, r.FinalDeltaBytes, r.MovedKey, r.Keys),
	)
	t.Fprint(w)
}
