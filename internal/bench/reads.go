package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"rex/internal/apps/hashdb"
	"rex/internal/cluster"
	"rex/internal/env"
	"rex/internal/obs"
	"rex/internal/readpath"
	"rex/internal/sim"
)

// The read-scaling suite measures what the consistent read path buys on a
// read-heavy mix: the same cluster and client population serve a 90/10
// read/write zipfian workload twice, once with every read linearizable
// (all reads funnel through the primary, each paying the admission drain
// plus a lease or barrier confirmation) and once at session level (reads
// fan out over the secondaries, waiting only for the client's own write
// frontier). The session rows should beat the linearizable baseline and
// keep scaling as replicas are added — secondaries are otherwise idle
// read capacity — while the baseline stays flat or degrades: extra
// replicas add commit fan-out cost but no read capacity.

// ReadScalingConfig parameterizes the suite.
type ReadScalingConfig struct {
	ReplicaCounts []int // e.g. 3, 5
	Workers       int
	ReadWorkers   int
	Cores         int
	Clients       int // closed-loop clients, fixed across runs
	Keys          int
	ValueBytes    int
	ReadPercent   int // reads per 100 operations (rest are writes)
	ZipfS         float64
	Warmup        time.Duration
	Measure       time.Duration
	Seed          int64
}

// DefaultReadScaling is the full suite.
func DefaultReadScaling() ReadScalingConfig {
	return ReadScalingConfig{
		ReplicaCounts: []int{3, 5},
		Workers:       2,
		ReadWorkers:   2,
		Cores:         8,
		Clients:       96,
		Keys:          1024,
		ValueBytes:    64,
		ReadPercent:   90,
		ZipfS:         1.2,
		Warmup:        200 * time.Millisecond,
		Measure:       500 * time.Millisecond,
		Seed:          42,
	}
}

// QuickReadScaling trims the suite for a fast pass.
func QuickReadScaling() ReadScalingConfig {
	cfg := DefaultReadScaling()
	cfg.ReplicaCounts = []int{3}
	cfg.Clients = 64
	cfg.Measure = 300 * time.Millisecond
	return cfg
}

// ReadPoint is one (replica count, consistency level) measurement.
type ReadPoint struct {
	App           string  `json:"app"`
	Replicas      int     `json:"replicas"`
	Level         string  `json:"level"` // "linearizable" or "session"
	Clients       int     `json:"clients"`
	ReadPercent   int     `json:"read_percent"`
	Throughput    float64 `json:"throughput_rps"` // reads+writes per second
	ReadsPerSec   float64 `json:"reads_rps"`
	WritesPerSec  float64 `json:"writes_rps"`
	SpeedupVsLin  float64 `json:"speedup_vs_linearizable"`
	ReadP50Ms     float64 `json:"read_p50_ms"`
	ReadP99Ms     float64 `json:"read_p99_ms"`
	FollowerShare float64 `json:"follower_share"` // fraction of reads served by secondaries
	LeaseShare    float64 `json:"lease_share"`    // fraction of lin reads confirmed by the lease
}

// ReadScalingResult is the whole suite; `make bench-json` serializes it
// as BENCH_read_scaling.json.
type ReadScalingResult struct {
	Points []ReadPoint `json:"points"`
}

// runReadPoint measures one (replicas, level) cell on a fresh simulator.
func runReadPoint(replicas int, level readpath.Level, cfg ReadScalingConfig) ReadPoint {
	name := "linearizable"
	if level == readpath.Session {
		name = "session"
	}
	pt := ReadPoint{
		App:         "hashdb",
		Replicas:    replicas,
		Level:       name,
		Clients:     cfg.Clients,
		ReadPercent: cfg.ReadPercent,
	}
	e := sim.New(cfg.Cores)
	e.Run(func() {
		c := cluster.New(e, hashdb.New(hashdb.DefaultOptions()), cluster.Options{
			Replicas:        replicas,
			Workers:         cfg.Workers,
			ReadWorkers:     cfg.ReadWorkers,
			Timers:          hashdb.Timers(),
			ProposeEvery:    2 * time.Millisecond,
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 100 * time.Millisecond,
			StatusEvery:     20 * time.Millisecond,
			MaxOutstanding:  4 * cfg.Clients,
			Seed:            cfg.Seed,
		})
		if err := c.Start(); err != nil {
			panic(err)
		}
		if _, err := c.WaitPrimary(5 * time.Second); err != nil {
			panic(err)
		}

		key := func(k uint64) string { return fmt.Sprintf("key-%06d", k) }
		val := make([]byte, cfg.ValueBytes)
		for i := range val {
			val[i] = byte('a' + i%26)
		}

		// Prefill so reads in the measured window always hit.
		setup := env.NewGroup(e)
		setupWorkers := 16
		for w := 0; w < setupWorkers; w++ {
			w := w
			setup.Add(1)
			e.Go(fmt.Sprintf("reads-setup-%d", w), func() {
				defer setup.Done()
				cl := c.NewClient(uint64(1 + w))
				for k := w; k < cfg.Keys; k += setupWorkers {
					if _, err := cl.Do(hashdb.SetReq(key(uint64(k)), val)); err != nil {
						panic(fmt.Sprintf("bench: reads prefill: %v", err))
					}
				}
			})
		}
		setup.Wait()

		readCounters := func() (follower, lease, confirm uint64) {
			for i := 0; i < c.Size(); i++ {
				if r := c.Replica(i); r != nil {
					m := r.Metrics()
					follower += m.Counter("rex_follower_reads_total")
					lease += m.Counter("rex_lease_reads_total")
					confirm += m.Counter("rex_lease_confirm_reads_total")
				}
			}
			return
		}

		var reads, writes uint64
		lat := obs.NewHistogram()
		mu := e.NewMutex()
		stop := false
		measuring := false
		g := env.NewGroup(e)
		for i := 0; i < cfg.Clients; i++ {
			i := i
			g.Add(1)
			e.Go(fmt.Sprintf("reads-client-%d", i), func() {
				defer g.Done()
				cl := c.NewClient(uint64(10_000 + i))
				rng := rand.New(rand.NewSource(cfg.Seed + int64(i) + 1))
				zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Keys-1))
				for {
					mu.Lock()
					s := stop
					mu.Unlock()
					if s {
						return
					}
					k := key(zipf.Uint64())
					if rng.Intn(100) < cfg.ReadPercent {
						t0 := e.Now()
						if _, err := cl.QueryLevel(level, hashdb.GetReq(k)); err != nil {
							return
						}
						d := e.Now() - t0
						mu.Lock()
						if measuring {
							lat.Observe(d)
							reads++
						}
						mu.Unlock()
					} else {
						if _, err := cl.Do(hashdb.SetReq(k, val)); err != nil {
							return
						}
						mu.Lock()
						if measuring {
							writes++
						}
						mu.Unlock()
					}
				}
			})
		}

		e.Sleep(cfg.Warmup)
		f0c, l0, c0 := readCounters()
		mu.Lock()
		measuring = true
		mu.Unlock()
		e.Sleep(cfg.Measure)
		mu.Lock()
		measuring = false
		stop = true
		mu.Unlock()
		f1, l1, c1 := readCounters()
		g.Wait()
		c.Stop()

		secs := cfg.Measure.Seconds()
		pt.ReadsPerSec = float64(reads) / secs
		pt.WritesPerSec = float64(writes) / secs
		pt.Throughput = float64(reads+writes) / secs
		pt.ReadP50Ms = float64(lat.Quantile(0.50)) / float64(time.Millisecond)
		pt.ReadP99Ms = float64(lat.Quantile(0.99)) / float64(time.Millisecond)
		if total := reads; total > 0 {
			pt.FollowerShare = float64(f1-f0c) / float64(total)
		}
		if linTotal := (l1 - l0) + (c1 - c0); linTotal > 0 {
			pt.LeaseShare = float64(l1-l0) / float64(linTotal)
		}
	})
	return pt
}

// RunReadScaling runs the suite. logf, when non-nil, narrates progress.
func RunReadScaling(cfg ReadScalingConfig, logf func(string, ...any)) (ReadScalingResult, error) {
	var res ReadScalingResult
	for _, replicas := range cfg.ReplicaCounts {
		var base float64
		for _, level := range []readpath.Level{readpath.Linearizable, readpath.Session} {
			if logf != nil {
				logf("read scaling: %d replicas, %v reads...", replicas, level)
			}
			pt := runReadPoint(replicas, level, cfg)
			if level == readpath.Linearizable {
				base = pt.Throughput
			}
			if base > 0 {
				pt.SpeedupVsLin = pt.Throughput / base
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

// WriteReadScalingJSON serializes the suite result.
func WriteReadScalingJSON(w io.Writer, r ReadScalingResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintReadScaling renders the suite as one table.
func PrintReadScaling(w io.Writer, r ReadScalingResult) {
	t := &Table{
		Title: "Read scaling: 90/10 zipfian mix, linearizable vs session reads",
		Cols:  []string{"replicas", "level", "clients", "ops/s", "reads/s", "writes/s", "speedup", "read p50 ms", "read p99 ms", "follower%", "lease%"},
	}
	for _, pt := range r.Points {
		t.AddRow(
			fmt.Sprintf("%d", pt.Replicas),
			pt.Level,
			fmt.Sprintf("%d", pt.Clients),
			f0(pt.Throughput),
			f0(pt.ReadsPerSec),
			f0(pt.WritesPerSec),
			f2(pt.SpeedupVsLin),
			f2(pt.ReadP50Ms),
			f2(pt.ReadP99Ms),
			f0(pt.FollowerShare*100),
			f0(pt.LeaseShare*100),
		)
	}
	t.Notes = append(t.Notes,
		"same cluster and client population per replica count; speedup compares session reads against the linearizable baseline",
		"linearizable reads pay the admission drain plus a lease (or barrier) confirmation at the primary; session reads fan out over secondaries",
		"follower% is the fraction of measured reads served by secondaries; lease% the fraction of linearizable reads confirmed without a barrier")
	t.Fprint(w)
}
