package bench

import (
	"fmt"
	"io"
	"time"

	"rex/internal/obs"
)

// fdur formats a duration for the metrics tables: millisecond resolution
// with enough digits for sub-millisecond latencies.
func fdur(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(time.Millisecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// PrintMetricsSummary renders the primary's metric snapshot after a figure
// run: per-stage latency histograms and the consensus/replay counters. An
// empty snapshot prints nothing.
func PrintMetricsSummary(w io.Writer, title string, s obs.Snapshot) {
	if len(s.Counters) == 0 && len(s.Histograms) == 0 {
		return
	}
	lt := &Table{
		Title: title + " — stage latencies",
		Cols:  []string{"stage", "count", "p50", "p95", "p99", "max"},
	}
	for _, h := range []struct{ label, name string }{
		{"exec (admit→handler done)", "rex_exec_latency_seconds"},
		{"request (admit→release)", "rex_request_latency_seconds"},
		{"agree (propose→commit)", "rex_paxos_commit_latency_seconds"},
		{"replay edge wait", "rex_replay_wait_seconds"},
		{"replay commit→replayed", "rex_replay_commit_lag_seconds"},
		{"checkpoint pause", "rex_checkpoint_pause_seconds"},
		{"checkpoint build", "rex_checkpoint_build_seconds"},
		{"promotion", "rex_promotion_seconds"},
		{"rebuild", "rex_rebuild_seconds"},
	} {
		hs := s.Histogram(h.name)
		if hs.Count == 0 {
			continue
		}
		lt.AddRow(h.label, fmt.Sprint(hs.Count),
			fdur(hs.P50), fdur(hs.P95), fdur(hs.P99), fdur(hs.Max))
	}
	if len(lt.Rows) > 0 {
		lt.Fprint(w)
	}

	ct := &Table{
		Title: title + " — consensus and replay counters",
		Cols:  []string{"counter", "value"},
	}
	for _, c := range []struct{ label, name string }{
		{"requests admitted", "rex_requests_admitted_total"},
		{"requests completed", "rex_requests_completed_total"},
		{"paxos proposals", "rex_paxos_proposals_total"},
		{"paxos commits", "rex_paxos_commits_total"},
		{"paxos elections", "rex_paxos_elections_total"},
		{"paxos leader wins", "rex_paxos_leader_wins_total"},
		{"paxos nacks sent", "rex_paxos_nacks_sent_total"},
		{"paxos nacks received", "rex_paxos_nacks_received_total"},
		{"paxos learn requests", "rex_paxos_learn_requests_total"},
		{"paxos heartbeats", "rex_paxos_heartbeats_total"},
		{"replay released events", "rex_replay_released_total"},
		{"replay waited events", "rex_replay_waited_total"},
	} {
		if v, ok := s.Counters[c.name]; ok && v > 0 {
			ct.AddRow(c.label, fmt.Sprint(v))
		}
	}
	if len(ct.Rows) > 0 {
		ct.Fprint(w)
	}
}
