package bench

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"testing"
	"time"
)

func TestShardScalingSmoke(t *testing.T) {
	cfg := ShardScalingConfig{
		GroupCounts:      []int{1, 2},
		Nodes:            3,
		ReplicasPerGroup: 3,
		// One worker per replica keeps the single-group point
		// execution-bound, so the extra group's pipeline shows up even
		// with this small client population.
		Workers:    1,
		Cores:      4,
		Clients:    64,
		Keys:       256,
		ValueBytes: 32,
		Warmup:     100 * time.Millisecond,
		Measure:    200 * time.Millisecond,
		Seed:       42,
		Apps:       []string{"hashdb"},
	}
	res, err := RunShardScaling(cfg, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	PrintShardScaling(os.Stderr, res)
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.Throughput <= 0 {
			t.Errorf("%s @ %d groups: zero throughput", pt.App, pt.Groups)
		}
		if len(pt.PerGroup) != pt.Groups {
			t.Fatalf("%s @ %d groups: %d per-group rates", pt.App, pt.Groups, len(pt.PerGroup))
		}
		// The per-group rates must account for the aggregate.
		sum := 0.0
		for _, v := range pt.PerGroup {
			if v <= 0 {
				t.Errorf("%s @ %d groups: idle group (rates %v)", pt.App, pt.Groups, pt.PerGroup)
				break
			}
			sum += v
		}
		if math.Abs(sum-pt.Throughput) > 0.01*pt.Throughput+1 {
			t.Errorf("%s @ %d groups: per-group sum %.0f != aggregate %.0f", pt.App, pt.Groups, sum, pt.Throughput)
		}
	}
	// Two independent pipelines must beat one on this CPU-bound app.
	if s := res.Points[1].SpeedupVs1; s < 1.3 {
		t.Errorf("2-group speedup %.2f, want >= 1.3", s)
	}
	var buf bytes.Buffer
	if err := WriteShardScalingJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var back ShardScalingResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(back.Points) != len(res.Points) {
		t.Fatalf("round-trip lost points: %d != %d", len(back.Points), len(res.Points))
	}
}

func TestShardScalingRejectsUnknownApp(t *testing.T) {
	cfg := QuickShardScaling()
	cfg.Apps = []string{"no-such-app"}
	if _, err := RunShardScaling(cfg, nil); err == nil {
		t.Fatal("want error for unknown app")
	}
}
