package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"rex/internal/apps"
	"rex/internal/core"
	"rex/internal/env"
	"rex/internal/rexsync"
	"rex/internal/sched"
	"rex/internal/sim"
	"rex/internal/trace"
	"rex/internal/wire"
)

// PrintTable1 reproduces Table 1: synchronization primitives per
// application.
func PrintTable1(w io.Writer) {
	t := &Table{
		Title: "Table 1: synchronization primitives used",
		Cols:  []string{"application", "primitives"},
	}
	for _, a := range apps.All() {
		prims := ""
		for i, p := range a.Primitives {
			if i > 0 {
				prims += ", "
			}
			prims += p
		}
		t.AddRow(a.Title, prims)
	}
	t.Fprint(w)
}

// TraceStats measures the §6.3 trace-size numbers for one application:
// bytes per synchronization event and the log-size overhead of the sync
// events relative to the raw requests.
type TraceStatsResult struct {
	BytesPerEvent float64
	EventsPerReq  float64
	EdgesPerEvent float64
	SyncOverhead  float64 // sync-event bytes as a fraction of total log
}

// TraceStats runs a short Rex measurement and extracts the trace-size
// profile.
func TraceStats(app apps.App, threads int) TraceStatsResult {
	r := RunRex(RunConfig{
		App: app, Threads: threads,
		Warmup: 150 * time.Millisecond, Measure: 500 * time.Millisecond,
	})
	return TraceStatsResult{
		BytesPerEvent: r.BytesPerEvent,
		EventsPerReq:  r.EventsPerReq,
		EdgesPerEvent: r.EdgesPerEvent,
		SyncOverhead:  r.SyncShare,
	}
}

// PrintTraceStats renders the trace-size profile for every application.
func PrintTraceStats(w io.Writer, threads int) {
	t := &Table{
		Title: "§6.3: trace size profile (committed log)",
		Cols:  []string{"application", "bytes/event", "events/request", "edges/event", "sync share of log"},
	}
	for _, a := range apps.All() {
		s := TraceStats(a, threads)
		t.AddRow(a.Title, f1(s.BytesPerEvent), f1(s.EventsPerReq), f2(s.EdgesPerEvent),
			fmt.Sprintf("%.0f%%", s.SyncOverhead*100))
	}
	t.Notes = append(t.Notes,
		"paper: each sync event adds ~16 bytes; sync events add 0-70% to the log size.")
	t.Fprint(w)
}

// EdgeAblation compares causal-edge volume with and without vector-clock
// pruning (§4.2's 58-99% reduction).
type EdgeAblationResult struct {
	EdgesPerEventPruned   float64
	EdgesPerEventUnpruned float64
	Reduction             float64
}

// EdgeAblation measures one application.
func EdgeAblation(app apps.App, threads int) EdgeAblationResult {
	base := RunConfig{
		App: app, Threads: threads,
		Warmup: 150 * time.Millisecond, Measure: 500 * time.Millisecond,
	}
	pruned := RunRex(base)
	noprune := base
	noprune.DisablePruning = true
	unpruned := RunRex(noprune)
	res := EdgeAblationResult{
		EdgesPerEventPruned:   pruned.EdgesPerEvent,
		EdgesPerEventUnpruned: unpruned.EdgesPerEvent,
	}
	if unpruned.EdgesPerEvent > 0 {
		res.Reduction = 1 - pruned.EdgesPerEvent/unpruned.EdgesPerEvent
	}
	return res
}

// PrintEdgeAblation renders the pruning ablation across applications.
func PrintEdgeAblation(w io.Writer, threads int) {
	t := &Table{
		Title: "Ablation (§4.2): causal-edge pruning",
		Cols:  []string{"application", "edges/event (pruned)", "edges/event (unpruned)", "reduction"},
	}
	for _, a := range apps.All() {
		r := EdgeAblation(a, threads)
		t.AddRow(a.Title, f2(r.EdgesPerEventPruned), f2(r.EdgesPerEventUnpruned),
			fmt.Sprintf("%.0f%%", r.Reduction*100))
	}
	t.Notes = append(t.Notes, "paper: pruning removes 58-99% of causal edges.")
	t.Fprint(w)
}

// tryMicroApp is a TryLock-heavy micro-application for the partial-order
// ablation (Fig. 4): one holder thread takes the lock for long stretches
// while pollers TryLock and do independent work.
func tryMicroApp() apps.App {
	factory := func(rt *sched.Runtime, host *core.TimerHost) core.StateMachine {
		return &trySM{
			lock: rexsync.NewLock(rt, "try-lock"),
		}
	}
	return apps.App{
		Name:       "try-micro",
		Title:      "TryLock partial-order micro-benchmark",
		Primitives: []string{"Lock (TryLock)"},
		Factory:    factory,
		NewWorkload: func(seed int64) apps.Workload {
			return &tryWorkload{rng: rand.New(rand.NewSource(seed))}
		},
	}
}

type trySM struct {
	lock  *rexsync.Lock
	held  uint64
	fails uint64
	polls uint64
}

func (s *trySM) Apply(ctx *core.Ctx, req []byte) []byte {
	w := ctx.Worker()
	d := wire.NewDecoder(req)
	if d.Byte() == 1 { // holder
		s.lock.Lock(w)
		ctx.Compute(400 * time.Microsecond)
		s.held++
		s.lock.Unlock(w)
		return []byte{1}
	}
	// Poller: TryLock, then independent computation either way. The
	// outcome is part of the response, so result checking covers it.
	got := byte(0)
	if s.lock.TryLock(w) {
		s.held++
		s.lock.Unlock(w)
		got = 1
	}
	ctx.Compute(50 * time.Microsecond)
	return []byte{2, got}
}

func (s *trySM) WriteCheckpoint(w io.Writer) error {
	e := wire.NewEncoder(nil)
	e.Uvarint(s.held)
	e.Uvarint(s.fails)
	e.Uvarint(s.polls)
	_, err := w.Write(e.Bytes())
	return err
}

func (s *trySM) ReadCheckpoint(r io.Reader) error {
	buf := make([]byte, 64)
	n, _ := r.Read(buf)
	d := wire.NewDecoder(buf[:n])
	s.held = d.Uvarint()
	s.fails = d.Uvarint()
	s.polls = d.Uvarint()
	return nil
}

type tryWorkload struct{ rng *rand.Rand }

func (w *tryWorkload) Setup() [][]byte { return nil }
func (w *tryWorkload) Next() []byte {
	if w.rng.Intn(4) == 0 {
		return []byte{1} // holder
	}
	return []byte{2} // poller
}
func (w *tryWorkload) Query() []byte { return []byte{2} }

// PartialOrderResult compares replay cost between the paper's
// partial-order TryLock recording (Fig. 4 right) and the naive total order
// (Fig. 4 left): the virtual time a secondary needs to replay an identical
// workload, and how many replayed events blocked on an edge.
type PartialOrderResult struct {
	RecordTime  time.Duration
	PartialTime time.Duration
	TotalTime   time.Duration

	PartialEdges  int
	TotalEdges    int
	PartialWaited uint64
	TotalWaited   uint64
}

// PartialOrderAblation records the Fig. 4 scenario — one long-holding
// thread plus heterogeneous pollers issuing failing TryLocks — under both
// recordings, then replays each trace and measures wall (virtual) replay
// time directly at the scheduler level.
func PartialOrderAblation(pollers int) PartialOrderResult {
	var res PartialOrderResult
	run := func(totalOrder bool) (time.Duration, time.Duration, int, uint64) {
		const iters = 40
		cores := pollers + 2
		// Record.
		recEnv := sim.New(cores)
		var tr *trace.Trace
		var recTime time.Duration
		recEnv.Run(func() {
			rt := sched.NewRuntime(recEnv, pollers+1, sched.ModeNative)
			rt.TotalOrderTryFail = totalOrder
			rt.StartRecord(nil, 0)
			lock := rexsync.NewLock(rt, "fig4")
			start := recEnv.Now()
			g := env.NewGroup(recEnv)
			g.Add(pollers + 1)
			recEnv.Go("holder", func() {
				defer g.Done()
				w := rt.Worker(0)
				for i := 0; i < iters; i++ {
					lock.Lock(w)
					recEnv.Compute(300 * time.Microsecond)
					lock.Unlock(w)
					recEnv.Sleep(50 * time.Microsecond)
				}
			})
			for p := 0; p < pollers; p++ {
				p := p
				recEnv.Go("poller", func() {
					defer g.Done()
					w := rt.Worker(p + 1)
					// Heterogeneous rates: under a total order, fast
					// pollers chain behind slow ones during replay.
					compute := time.Duration(20*(p+1)) * time.Microsecond
					for i := 0; i < iters; i++ {
						recEnv.Compute(compute)
						if lock.TryLock(w) {
							lock.Unlock(w)
						}
					}
				})
			}
			g.Wait()
			recTime = recEnv.Now() - start
			d := rt.Recorder().Collect()
			tr = trace.New(pollers + 1)
			if err := tr.Apply(d); err != nil {
				panic(err)
			}
		})
		// Replay.
		repEnv := sim.New(cores)
		var repTime time.Duration
		var waited uint64
		repEnv.Run(func() {
			rt := sched.NewRuntime(repEnv, pollers+1, sched.ModeNative)
			lock := rexsync.NewLock(rt, "fig4")
			rt.StartReplay(tr, nil)
			start := repEnv.Now()
			g := env.NewGroup(repEnv)
			g.Add(pollers + 1)
			repEnv.Go("holder", func() {
				defer g.Done()
				w := rt.Worker(0)
				for i := 0; i < iters; i++ {
					lock.Lock(w)
					repEnv.Compute(300 * time.Microsecond)
					lock.Unlock(w)
					repEnv.Sleep(50 * time.Microsecond)
				}
			})
			for p := 0; p < pollers; p++ {
				p := p
				repEnv.Go("poller", func() {
					defer g.Done()
					w := rt.Worker(p + 1)
					// Perturb replay pacing (reverse the speed assignment):
					// compute is not traced, and real replays diverge from
					// the recorded schedule anyway. Under the partial order
					// the pollers stay independent; under the total order
					// the false tryfail chain propagates the perturbation.
					compute := time.Duration(20*(pollers-p)) * time.Microsecond
					for i := 0; i < iters; i++ {
						repEnv.Compute(compute)
						if lock.TryLock(w) {
							lock.Unlock(w)
						}
					}
				})
			}
			g.Wait()
			repTime = repEnv.Now() - start
			_, waited = rt.Replayer().Stats()
		})
		return recTime, repTime, tr.EdgeCount(), waited
	}
	var rt1, rt2 time.Duration
	rt1, res.PartialTime, res.PartialEdges, res.PartialWaited = run(false)
	rt2, res.TotalTime, res.TotalEdges, res.TotalWaited = run(true)
	res.RecordTime = (rt1 + rt2) / 2
	return res
}

// PrintPartialOrderAblation renders the Fig. 4 ablation.
func PrintPartialOrderAblation(w io.Writer, pollers int) {
	r := PartialOrderAblation(pollers)
	t := &Table{
		Title: "Ablation (§4.2, Fig. 4): TryLock partial order vs total order",
		Cols:  []string{"recording", "replay time", "vs record", "edges", "waited events"},
	}
	rec := r.RecordTime.Seconds()
	t.AddRow("record (reference)", r.RecordTime.String(), "1.00x", "-", "-")
	t.AddRow("partial order (Rex)", r.PartialTime.String(),
		fmt.Sprintf("%.2fx", r.PartialTime.Seconds()/rec), fmt.Sprint(r.PartialEdges), fmt.Sprint(r.PartialWaited))
	t.AddRow("total order (naive)", r.TotalTime.String(),
		fmt.Sprintf("%.2fx", r.TotalTime.Seconds()/rec), fmt.Sprint(r.TotalEdges), fmt.Sprint(r.TotalWaited))
	t.Notes = append(t.Notes,
		"paper: total ordering failed TryLocks forces replay waits that are not true causal",
		"dependencies, reducing replay parallelism (and recording more edges).")
	t.Fprint(w)
}

// PipelineResult compares the paper's one-active-instance design against
// the §3.1 piggyback alternative (several open instances).
type PipelineResult struct {
	Depth1Tput float64
	Depth4Tput float64
}

// PipelineAblation measures whether limiting Rex to one active consensus
// instance costs throughput (the paper argues it does not: "this
// simplification does not come at the expense of performance").
func PipelineAblation(app apps.App, threads int) PipelineResult {
	base := RunConfig{
		App: app, Threads: threads,
		Warmup: 150 * time.Millisecond, Measure: 500 * time.Millisecond,
	}
	d1 := RunRex(base)
	deep := base
	deep.PipelineDepth = 4
	d4 := RunRex(deep)
	return PipelineResult{Depth1Tput: d1.Throughput, Depth4Tput: d4.Throughput}
}

// PrintPipelineAblation renders the pipeline ablation.
func PrintPipelineAblation(w io.Writer, threads int) {
	r := PipelineAblation(apps.LockServer(), threads)
	t := &Table{
		Title: "Ablation (§3.1): one active instance vs pipelined proposals",
		Cols:  []string{"pipeline depth", "Rex throughput (req/s)"},
	}
	t.AddRow("1 (paper's design)", f0(r.Depth1Tput))
	t.AddRow("4 (piggyback)", f0(r.Depth4Tput))
	t.Notes = append(t.Notes,
		"paper: the one-active-instance simplification \"does not come at the expense of",
		"performance\" — the pipelined variant should not be meaningfully faster.")
	t.Fprint(w)
}

// DeltaAblation compares the one-active-instance delta proposals (§3.1)
// against hypothetical full-trace proposals, in proposal bytes.
type DeltaAblationResult struct {
	Instances  int
	DeltaBytes uint64
	FullBytes  uint64
}

// DeltaAblation measures one application's proposal volume both ways. The
// full-trace volume is the sum of prefix sizes: proposing the whole trace
// in every instance.
func DeltaAblation(app apps.App, threads int) DeltaAblationResult {
	sizes := CollectDeltaSizes(app, threads)
	var res DeltaAblationResult
	var prefix uint64
	for _, s := range sizes {
		res.Instances++
		res.DeltaBytes += uint64(s)
		prefix += uint64(s)
		res.FullBytes += prefix
	}
	return res
}

// PrintDeltaAblation renders the delta-proposal ablation.
func PrintDeltaAblation(w io.Writer, threads int) {
	app := apps.LSMKV()
	r := DeltaAblation(app, threads)
	t := &Table{
		Title: "Ablation (§3.1): delta proposals vs full-trace proposals",
		Cols:  []string{"instances", "delta proposal bytes", "full-trace proposal bytes", "ratio"},
	}
	ratio := 0.0
	if r.DeltaBytes > 0 {
		ratio = float64(r.FullBytes) / float64(r.DeltaBytes)
	}
	t.AddRow(fmt.Sprint(r.Instances), fmt.Sprint(r.DeltaBytes), fmt.Sprint(r.FullBytes), f1(ratio))
	t.Notes = append(t.Notes,
		"proposing only the growth on top of the previously committed trace keeps proposal",
		"volume linear; re-proposing the full trace would grow quadratically.")
	t.Fprint(w)
}
