package bench

import (
	"os"
	"testing"
	"time"

	"rex/internal/apps"
)

func TestFig7ShapeThumbnailVsMemcache(t *testing.T) {
	cfg := QuickFig7()
	thumb := Fig7(apps.Thumbnail(), cfg)
	PrintFig7(os.Stderr, apps.Thumbnail(), thumb)
	// The compute-bound app must scale under Rex.
	if thumb[len(thumb)-1].Rex < 3*thumb[0].Rex {
		t.Errorf("thumbnail Rex did not scale: %v -> %v", thumb[0].Rex, thumb[len(thumb)-1].Rex)
	}
	// Rex must clearly beat the serialized RSM baseline at high thread
	// counts (paper: 3-16x).
	last := thumb[len(thumb)-1]
	if last.Rex < 3*last.RSM {
		t.Errorf("thumbnail Rex/RSM = %.1f, want >= 3", last.Rex/last.RSM)
	}

	mc := Fig7(apps.Memcache(), cfg)
	PrintFig7(os.Stderr, apps.Memcache(), mc)
	// The global-lock app must NOT scale (paper's negative result): going
	// from 1 to 16 threads buys little.
	if mc[len(mc)-1].Rex > 3*mc[0].Rex {
		t.Errorf("memcache unexpectedly scaled under Rex: %v -> %v", mc[0].Rex, mc[len(mc)-1].Rex)
	}
}

func TestFig8aGranularityShape(t *testing.T) {
	cfg := DefaultFig8()
	cfg.Measure = 400 * time.Millisecond
	cfg.Warmup = 100 * time.Millisecond
	rows := Fig8a(cfg, []int{10, 100}, []float64{0.001, 0.1})
	PrintFig8a(os.Stderr, rows)
	get := func(pct int, p float64) float64 {
		for _, r := range rows {
			if r.PctInLock == pct && r.ContentionP == p {
				return r.Rex
			}
		}
		t.Fatalf("missing cell %d%%@%g", pct, p)
		return 0
	}
	drop100 := 1 - get(100, 0.1)/get(100, 0.001)
	drop10 := 1 - get(10, 0.1)/get(10, 0.001)
	// 100% in-lock must suffer far more at p=0.1 than 10% in-lock.
	if drop100 < drop10+0.15 {
		t.Errorf("granularity shape off: drop(100%%)=%.2f, drop(10%%)=%.2f", drop100, drop10)
	}
	if drop100 < 0.3 {
		t.Errorf("100%% in-lock case should lose roughly half its throughput at p=0.1, lost %.0f%%", drop100*100)
	}
}

func TestFig8bContentionShape(t *testing.T) {
	cfg := DefaultFig8()
	cfg.Measure = 400 * time.Millisecond
	cfg.Warmup = 100 * time.Millisecond
	rows := Fig8b(cfg, []float64{0.01, 1})
	PrintFig8b(os.Stderr, rows)
	// At low contention Rex tracks native closely.
	if rows[0].Rex < 0.6*rows[0].Native {
		t.Errorf("Rex at p=0.01 is %.0f vs native %.0f — gap too large", rows[0].Rex, rows[0].Native)
	}
	// At p=1 both collapse toward the Amdahl ceiling (10% serial fraction
	// → 1/inside-time): native must have dropped substantially.
	if rows[1].Native > 0.75*rows[0].Native {
		t.Errorf("native did not collapse at p=1: %.0f vs %.0f", rows[1].Native, rows[0].Native)
	}
}

func TestFig9QueryPlacementShape(t *testing.T) {
	cfg := Fig9Config{
		QueryThreads:  12,
		UpdateThreads: []int{2, 16},
		Cores:         24,
		Warmup:        100 * time.Millisecond,
		Measure:       400 * time.Millisecond,
		Seed:          42,
	}
	sec := Fig9(cfg, false)
	pri := Fig9(cfg, true)
	PrintFig9(os.Stderr, false, sec)
	PrintFig9(os.Stderr, true, pri)
	// Query throughput on the secondary holds up better under heavy
	// updates than on the primary (§6.5).
	secHold := sec[1].QueryTput / sec[0].QueryTput
	priHold := pri[1].QueryTput / pri[0].QueryTput
	if secHold < priHold {
		t.Errorf("placement shape off: secondary holds %.2f, primary holds %.2f", secHold, priHold)
	}
	// Updates must scale in both configurations.
	if sec[1].UpdateTput < 2*sec[0].UpdateTput {
		t.Errorf("updates did not scale: %.0f -> %.0f", sec[0].UpdateTput, sec[1].UpdateTput)
	}
}

func TestFig10FailoverTimeline(t *testing.T) {
	cfg := Fig10Config{
		Threads:         4,
		Cores:           8,
		Clients:         12,
		BucketEvery:     500 * time.Millisecond,
		Checkpoint1:     2 * time.Second,
		Checkpoint2:     5 * time.Second,
		KillAt:          6 * time.Second,
		RestartAt:       9 * time.Second,
		ElectionTimeout: time.Second,
		EndAt:           14 * time.Second,
		Seed:            42,
	}
	samples := Fig10(cfg)
	PrintFig10(os.Stderr, cfg, samples)
	bucket := func(at time.Duration) float64 {
		for _, s := range samples {
			if s.At >= at {
				return s.Throughput
			}
		}
		return -1
	}
	// The election fires a randomized 1-2x timeout after the kill: find
	// the deepest bucket in the window following it.
	minIn := func(from, to time.Duration) float64 {
		low := -1.0
		for _, s := range samples {
			if s.At >= from && s.At <= to && (low < 0 || s.Throughput < low) {
				low = s.Throughput
			}
		}
		return low
	}
	before := bucket(1500 * time.Millisecond)
	outage := minIn(cfg.KillAt, cfg.KillAt+3*time.Second)
	recovered := bucket(13 * time.Second)
	if before <= 0 {
		t.Fatalf("no throughput before the kill: %v", before)
	}
	if outage > before/3 {
		t.Errorf("no visible outage after the primary kill: before=%.0f during=%.0f", before, outage)
	}
	if recovered < before/2 {
		t.Errorf("throughput did not recover: before=%.0f after=%.0f", before, recovered)
	}
}

func TestTable1(t *testing.T) {
	PrintTable1(os.Stderr)
	if len(apps.All()) != 6 {
		t.Errorf("expected 6 applications, got %d", len(apps.All()))
	}
}

func TestEdgePruningAblation(t *testing.T) {
	r := EdgeAblation(apps.LSMKV(), 8)
	t.Logf("lsmkv edges/event pruned=%.2f unpruned=%.2f reduction=%.0f%%",
		r.EdgesPerEventPruned, r.EdgesPerEventUnpruned, r.Reduction*100)
	if r.Reduction < 0.3 {
		t.Errorf("pruning reduced edges only %.0f%%, paper reports 58-99%%", r.Reduction*100)
	}
}

func TestPartialOrderAblation(t *testing.T) {
	r := PartialOrderAblation(6)
	t.Logf("record=%v; partial: replay=%v edges=%d waited=%d; total: replay=%v edges=%d waited=%d",
		r.RecordTime, r.PartialTime, r.PartialEdges, r.PartialWaited,
		r.TotalTime, r.TotalEdges, r.TotalWaited)
	// Total ordering records more edges and replays strictly slower
	// (Fig. 4): false dependencies chain independent pollers.
	if r.TotalEdges <= r.PartialEdges {
		t.Errorf("total order should record more edges: %d vs %d", r.TotalEdges, r.PartialEdges)
	}
	if r.TotalTime <= r.PartialTime {
		t.Errorf("total order should replay slower: %v vs %v", r.TotalTime, r.PartialTime)
	}
	// Partial-order replay stays close to record time (online replay).
	if r.PartialTime > 2*r.RecordTime {
		t.Errorf("partial-order replay %v much slower than record %v", r.PartialTime, r.RecordTime)
	}
}

func TestDeltaAblation(t *testing.T) {
	r := DeltaAblation(apps.HashDB(), 4)
	t.Logf("delta ablation: %d instances, delta=%dB full=%dB", r.Instances, r.DeltaBytes, r.FullBytes)
	if r.Instances < 3 {
		t.Fatalf("too few instances measured: %d", r.Instances)
	}
	if r.FullBytes <= r.DeltaBytes {
		t.Error("full-trace proposals should cost strictly more bytes")
	}
}

func TestTraceStats(t *testing.T) {
	s := TraceStats(apps.LockServer(), 8)
	t.Logf("lockserver: bytes/event=%.1f events/req=%.1f edges/event=%.2f sync-share=%.0f%%",
		s.BytesPerEvent, s.EventsPerReq, s.EdgesPerEvent, s.SyncOverhead*100)
	if s.BytesPerEvent <= 0 || s.BytesPerEvent > 64 {
		t.Errorf("bytes/event = %.1f, expected a small constant (paper: ~16)", s.BytesPerEvent)
	}
	if s.EventsPerReq < 2 {
		t.Errorf("events/request = %.1f, expected at least req-begin/end plus lock events", s.EventsPerReq)
	}
}

func TestPipelineAblation(t *testing.T) {
	r := PipelineAblation(apps.LockServer(), 8)
	t.Logf("pipeline depth 1: %.0f req/s; depth 4: %.0f req/s", r.Depth1Tput, r.Depth4Tput)
	if r.Depth1Tput <= 0 || r.Depth4Tput <= 0 {
		t.Fatal("pipeline ablation produced zero throughput")
	}
	// The paper's claim: one active instance does not cost performance.
	// Allow the pipelined variant a small win, but it must not dominate.
	if r.Depth4Tput > 1.5*r.Depth1Tput {
		t.Errorf("pipelining won big (%.0f vs %.0f): the paper's simplification claim would not hold in this configuration",
			r.Depth4Tput, r.Depth1Tput)
	}
}
