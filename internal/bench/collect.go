package bench

import (
	"fmt"
	"time"

	"rex/internal/apps"
	"rex/internal/cluster"
	"rex/internal/env"
	"rex/internal/sim"
)

// CollectDeltaSizes runs a short Rex load and returns the committed delta
// sizes observed by the primary, in instance order.
func CollectDeltaSizes(app apps.App, threads int) []int {
	e := sim.New(24)
	var sizes []int
	e.Run(func() {
		c := cluster.New(e, app.Factory, cluster.Options{
			Replicas:        3,
			Workers:         threads,
			Timers:          app.Timers,
			ProposeEvery:    2 * time.Millisecond,
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 100 * time.Millisecond,
			Seed:            42,
		})
		if err := c.Start(); err != nil {
			panic(err)
		}
		p, err := c.WaitPrimary(5 * time.Second)
		if err != nil {
			panic(err)
		}
		stop := false
		mu := e.NewMutex()
		g := env.NewGroup(e)
		for i := 0; i < 2*threads; i++ {
			i := i
			g.Add(1)
			e.Go(fmt.Sprintf("client-%d", i), func() {
				defer g.Done()
				cl := c.NewClient(uint64(100 + i))
				wl := app.NewWorkload(int64(i) + 1)
				for {
					mu.Lock()
					s := stop
					mu.Unlock()
					if s {
						return
					}
					if _, err := cl.Do(wl.Next()); err != nil {
						return
					}
				}
			})
		}
		e.Sleep(500 * time.Millisecond)
		mu.Lock()
		stop = true
		mu.Unlock()
		g.Wait()
		sizes = c.Replicas[p].DeltaSizes()
		c.Stop()
	})
	return sizes
}
