package bench

import (
	"testing"
	"time"

	"rex/internal/apps"
)

func shortCfg(app apps.App, threads int) RunConfig {
	return RunConfig{
		App:      app,
		Threads:  threads,
		Cores:    24,
		Warmup:   100 * time.Millisecond,
		Measure:  400 * time.Millisecond,
		SetupCap: 100,
	}
}

func TestRunnersProduceSaneThroughput(t *testing.T) {
	app := apps.Thumbnail()
	native := RunNative(shortCfg(app, 8))
	rex := RunRex(shortCfg(app, 8))
	rsm := RunRSM(shortCfg(app, 8))
	t.Logf("thumbnail@8: native=%.0f rex=%.0f rsm=%.0f waited/s=%.0f bytes/ev=%.1f",
		native.Throughput, rex.Throughput, rsm.Throughput, rex.WaitedPerSec, rex.BytesPerEvent)
	if native.Throughput <= 0 || rex.Throughput <= 0 || rsm.Throughput <= 0 {
		t.Fatalf("zero throughput: native=%v rex=%v rsm=%v", native, rex, rsm)
	}
	// The paper's headline: Rex beats serialized RSM on multi-core and is
	// within a modest factor of native.
	if rex.Throughput < 1.5*rsm.Throughput {
		t.Errorf("rex (%.0f) not meaningfully above RSM (%.0f)", rex.Throughput, rsm.Throughput)
	}
	if rex.Throughput < 0.4*native.Throughput {
		t.Errorf("rex (%.0f) too far below native (%.0f)", rex.Throughput, native.Throughput)
	}
}

func TestRexScalesWithThreads(t *testing.T) {
	app := apps.Thumbnail()
	one := RunRex(shortCfg(app, 1))
	eight := RunRex(shortCfg(app, 8))
	t.Logf("thumbnail rex: 1thr=%.0f 8thr=%.0f", one.Throughput, eight.Throughput)
	if eight.Throughput < 3*one.Throughput {
		t.Errorf("8 threads (%.0f) < 3x 1 thread (%.0f): Rex not preserving parallelism",
			eight.Throughput, one.Throughput)
	}
}
