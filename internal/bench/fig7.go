package bench

import (
	"fmt"
	"io"
	"time"

	"rex/internal/apps"
	"rex/internal/obs"
)

// Fig7Config parameterizes the Figure 7 reproduction.
type Fig7Config struct {
	ThreadCounts []int
	Cores        int
	Warmup       time.Duration
	Measure      time.Duration
	Seed         int64
}

// DefaultFig7 mirrors the paper's x-axis on a 24-way simulated machine.
func DefaultFig7() Fig7Config {
	return Fig7Config{
		ThreadCounts: []int{1, 2, 4, 8, 16, 24, 32},
		Cores:        24,
		Warmup:       200 * time.Millisecond,
		Measure:      time.Second,
		Seed:         42,
	}
}

// QuickFig7 is a reduced configuration for tests and testing.B benches.
func QuickFig7() Fig7Config {
	return Fig7Config{
		ThreadCounts: []int{1, 4, 16},
		Cores:        24,
		Warmup:       100 * time.Millisecond,
		Measure:      400 * time.Millisecond,
		Seed:         42,
	}
}

// Fig7Row is one x-axis point of a Figure 7 panel.
type Fig7Row struct {
	Threads      int
	Native       float64
	Rex          float64
	RSM          float64
	WaitedPerSec float64

	// Client-observed Rex request latency in the measure window.
	P50, P95, P99 time.Duration
	// Metrics is the Rex primary's snapshot for this point.
	Metrics obs.Snapshot
}

// Fig7 reproduces one panel of Figure 7 (throughput of a real-world
// application in native / Rex / RSM modes as worker threads scale, plus
// the waited-events series). The RSM baseline executes on one thread
// regardless, so it is measured once.
func Fig7(app apps.App, cfg Fig7Config) []Fig7Row {
	rsm := RunRSM(RunConfig{
		App: app, Threads: 1, Cores: cfg.Cores,
		Warmup: cfg.Warmup, Measure: cfg.Measure, Seed: cfg.Seed,
	})
	var rows []Fig7Row
	for _, th := range cfg.ThreadCounts {
		rc := RunConfig{
			App: app, Threads: th, Cores: cfg.Cores,
			Warmup: cfg.Warmup, Measure: cfg.Measure, Seed: cfg.Seed,
		}
		native := RunNative(rc)
		rex := RunRex(rc)
		rows = append(rows, Fig7Row{
			Threads:      th,
			Native:       native.Throughput,
			Rex:          rex.Throughput,
			RSM:          rsm.Throughput,
			WaitedPerSec: rex.WaitedPerSec,
			P50:          rex.P50,
			P95:          rex.P95,
			P99:          rex.P99,
			Metrics:      rex.Primary,
		})
	}
	return rows
}

// PrintFig7 renders one panel as the paper's series.
func PrintFig7(w io.Writer, app apps.App, rows []Fig7Row) {
	t := &Table{
		Title: fmt.Sprintf("Figure 7: %s — throughput vs worker threads", app.Title),
		Cols: []string{"threads", "native (req/s)", "Rex (req/s)", "RSM (req/s)", "waited events/s", "Rex/RSM",
			"p50", "p95", "p99"},
	}
	for _, r := range rows {
		ratio := 0.0
		if r.RSM > 0 {
			ratio = r.Rex / r.RSM
		}
		t.AddRow(fmt.Sprint(r.Threads), f0(r.Native), f0(r.Rex), f0(r.RSM), f0(r.WaitedPerSec), f1(ratio),
			fdur(r.P50), fdur(r.P95), fdur(r.P99))
	}
	t.Notes = append(t.Notes,
		"paper (§6.3): Rex tracks native within ~25% and reaches 3-16x the RSM baseline;",
		"waited events/s tracks the native-vs-Rex gap.",
		"p50/p95/p99 are client-observed Rex request latencies in the measure window.")
	t.Fprint(w)
	if n := len(rows); n > 0 {
		PrintMetricsSummary(w, fmt.Sprintf("%s primary @ %d threads", app.Title, rows[n-1].Threads),
			rows[n-1].Metrics)
	}
}
