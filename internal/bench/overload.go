package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"rex/internal/apps/hashdb"
	"rex/internal/cluster"
	"rex/internal/env"
	"rex/internal/obs"
	"rex/internal/sim"
)

// The overload suite draws the goodput-vs-offered-load curve that
// admission control is supposed to flatten. First a closed-loop probe
// finds the cluster's saturation goodput (its capacity). Then an
// open-loop generator offers multiples of that capacity — arrivals are
// paced by wall clock, not by completions, so the generator does not
// politely back off when the cluster slows — and we measure goodput:
// operations that complete successfully within their deadline. With
// admission control on, excess load is shed cheaply at the gate and
// goodput stays near capacity past saturation. With it off, every
// arrival queues, sojourn times blow through the deadline, and goodput
// collapses even though the server is doing more work than ever.

// OverloadConfig parameterizes the suite.
type OverloadConfig struct {
	Replicas   int
	Workers    int
	Cores      int
	Keys       int
	ValueBytes int

	ClosedClients int           // closed-loop clients for the saturation probe
	Multipliers   []float64     // offered-load multipliers vs measured capacity
	OpDeadline    time.Duration // per-op deadline; completions past it are not goodput

	MaxOutstanding      int
	MaxAdmissionWaiters int
	AdmissionTarget     time.Duration
	AdmissionInterval   time.Duration

	Warmup  time.Duration
	Measure time.Duration
	Seed    int64
}

// DefaultOverloadBench is the full suite.
func DefaultOverloadBench() OverloadConfig {
	return OverloadConfig{
		Replicas:            3,
		Workers:             2,
		Cores:               8,
		Keys:                512,
		ValueBytes:          64,
		ClosedClients:       64,
		Multipliers:         []float64{0.5, 1, 1.5, 2},
		OpDeadline:          25 * time.Millisecond,
		MaxOutstanding:      32,
		MaxAdmissionWaiters: 64,
		AdmissionTarget:     10 * time.Millisecond,
		AdmissionInterval:   50 * time.Millisecond,
		Warmup:              200 * time.Millisecond,
		Measure:             500 * time.Millisecond,
		Seed:                42,
	}
}

// QuickOverloadBench trims the suite for a fast pass.
func QuickOverloadBench() OverloadConfig {
	cfg := DefaultOverloadBench()
	cfg.ClosedClients = 48
	cfg.Multipliers = []float64{1, 2}
	cfg.Measure = 300 * time.Millisecond
	return cfg
}

// OverloadPoint is one measurement on the curve.
type OverloadPoint struct {
	Mode          string  `json:"mode"` // "peak", "protected", or "unprotected"
	OfferedMult   float64 `json:"offered_mult"`
	OfferedRPS    float64 `json:"offered_rps"` // arrivals actually generated per second
	GoodputRPS    float64 `json:"goodput_rps"` // successes within deadline per second
	GoodputVsPeak float64 `json:"goodput_vs_peak"`
	ShedRPS       float64 `json:"shed_rps"`     // server-side sheds per second
	DeadlineRPS   float64 `json:"deadline_rps"` // server-side deadline rejections per second
	FailRPS       float64 `json:"fail_rps"`     // client-visible failures per second
	P50Ms         float64 `json:"p50_ms"`       // latency of successful ops
	P99Ms         float64 `json:"p99_ms"`
	Clients       int     `json:"clients"`
}

// OverloadResult is the whole suite; rexbench -exp overload -json
// serializes it as BENCH_overload.json.
type OverloadResult struct {
	PeakGoodputRPS  float64         `json:"peak_goodput_rps"`
	Goodput2xVsPeak float64         `json:"goodput_2x_vs_peak"`
	Points          []OverloadPoint `json:"points"`
}

// runOverloadPoint measures one cell on a fresh simulator. offered is
// the target arrival rate in ops/s; 0 runs the closed-loop saturation
// probe instead. protected toggles admission control.
func runOverloadPoint(cfg OverloadConfig, protected bool, offered float64) OverloadPoint {
	pt := OverloadPoint{Mode: "peak"}
	opts := cluster.Options{
		Replicas:            cfg.Replicas,
		Workers:             cfg.Workers,
		Timers:              hashdb.Timers(),
		ProposeEvery:        2 * time.Millisecond,
		HeartbeatEvery:      20 * time.Millisecond,
		ElectionTimeout:     100 * time.Millisecond,
		StatusEvery:         20 * time.Millisecond,
		MaxOutstanding:      cfg.MaxOutstanding,
		MaxAdmissionWaiters: cfg.MaxAdmissionWaiters,
		AdmissionTarget:     cfg.AdmissionTarget,
		AdmissionInterval:   cfg.AdmissionInterval,
		Seed:                cfg.Seed,
	}
	if protected {
		pt.Mode = "protected"
	} else {
		// The contrast cell: the same pipeline depth (capacity is the
		// same provisioned machine) but an unbounded patience queue and
		// no CoDel — every arrival waits out its full sojourn instead of
		// being shed early.
		pt.Mode = "unprotected"
		opts.MaxAdmissionWaiters = 1 << 16
		opts.AdmissionTarget = -1
	}

	// Open-loop fleet sizing: each generator paces itself to an interval
	// and bursts to catch up, so the fleet sustains the offered rate as
	// long as one op (bounded by the deadline) fits in two intervals.
	clients := cfg.ClosedClients
	if offered > 0 {
		// Worst case a generator's op burns its whole deadline (sheds
		// pause-and-retry inside DoTimeout), so per-worker throughput
		// floors at 1/deadline; 2x headroom keeps the offered rate real.
		clients = int(offered * cfg.OpDeadline.Seconds() * 2)
		if clients < 32 {
			clients = 32
		}
		if clients > 1024 {
			clients = 1024
		}
	}
	pt.Clients = clients

	e := sim.New(cfg.Cores)
	e.Run(func() {
		c := cluster.New(e, hashdb.New(hashdb.DefaultOptions()), opts)
		if err := c.Start(); err != nil {
			panic(err)
		}
		if _, err := c.WaitPrimary(5 * time.Second); err != nil {
			panic(err)
		}

		key := func(k uint64) string { return fmt.Sprintf("key-%06d", k) }
		val := make([]byte, cfg.ValueBytes)
		for i := range val {
			val[i] = byte('a' + i%26)
		}

		overloadCounters := func() (sheds, deadline uint64) {
			for i := 0; i < c.Size(); i++ {
				if r := c.Replica(i); r != nil {
					m := r.Metrics()
					sheds += m.Counter("rex_shed_total")
					deadline += m.Counter("rex_deadline_exceeded_total")
				}
			}
			return
		}

		var attempts, good, failed uint64
		lat := obs.NewHistogram()
		mu := e.NewMutex()
		stop := false
		measuring := false
		begin := e.Now()
		g := env.NewGroup(e)
		for i := 0; i < clients; i++ {
			i := i
			g.Add(1)
			e.Go(fmt.Sprintf("overload-client-%d", i), func() {
				defer g.Done()
				cl := c.NewClient(uint64(10_000 + i))
				rng := rand.New(rand.NewSource(cfg.Seed + int64(i) + 1))
				zipf := rand.NewZipf(rng, 1.2, 1, uint64(cfg.Keys-1))
				var interval time.Duration
				next := begin
				if offered > 0 {
					interval = time.Duration(float64(clients) / offered * float64(time.Second))
					// Stagger the fleet's phases so arrivals spread uniformly
					// instead of thundering in once per interval.
					next += time.Duration(float64(i) / offered * float64(time.Second))
				}
				for {
					if offered > 0 {
						// Open loop: hold the arrival schedule; if the last op
						// ran long, fire immediately to catch up.
						if now := e.Now(); now < next {
							e.Sleep(next - now)
						}
						next += interval
					}
					mu.Lock()
					s := stop
					mu.Unlock()
					if s {
						return
					}
					timeout := cfg.OpDeadline
					if offered == 0 {
						// The saturation probe is about capacity, not deadline
						// misses: closed-loop clients wait out the queue.
						timeout = 10 * cfg.OpDeadline
					}
					t0 := e.Now()
					_, err := cl.DoTimeout(hashdb.SetReq(key(zipf.Uint64()), val), timeout)
					d := e.Now() - t0
					mu.Lock()
					if measuring {
						attempts++
						if err == nil && d <= timeout {
							good++
							lat.Observe(d)
						} else {
							failed++
						}
					}
					mu.Unlock()
				}
			})
		}

		e.Sleep(cfg.Warmup)
		s0, d0 := overloadCounters()
		mu.Lock()
		measuring = true
		mu.Unlock()
		e.Sleep(cfg.Measure)
		mu.Lock()
		measuring = false
		stop = true
		mu.Unlock()
		s1, d1 := overloadCounters()
		g.Wait()
		c.Stop()

		secs := cfg.Measure.Seconds()
		pt.OfferedRPS = float64(attempts) / secs
		pt.GoodputRPS = float64(good) / secs
		pt.FailRPS = float64(failed) / secs
		pt.ShedRPS = float64(s1-s0) / secs
		pt.DeadlineRPS = float64(d1-d0) / secs
		pt.P50Ms = float64(lat.Quantile(0.50)) / float64(time.Millisecond)
		pt.P99Ms = float64(lat.Quantile(0.99)) / float64(time.Millisecond)
	})
	return pt
}

// RunOverloadBench runs the suite. logf, when non-nil, narrates progress.
func RunOverloadBench(cfg OverloadConfig, logf func(string, ...any)) (OverloadResult, error) {
	var res OverloadResult
	if logf != nil {
		logf("overload: measuring saturation goodput (closed loop, %d clients)...", cfg.ClosedClients)
	}
	peak := runOverloadPoint(cfg, true, 0)
	peak.Mode = "peak"
	peak.GoodputVsPeak = 1
	res.PeakGoodputRPS = peak.GoodputRPS
	res.Points = append(res.Points, peak)
	if peak.GoodputRPS <= 0 {
		return res, fmt.Errorf("overload: saturation probe measured zero goodput")
	}

	maxMult := 0.0
	for _, m := range cfg.Multipliers {
		if logf != nil {
			logf("overload: offered %.1fx capacity (protected)...", m)
		}
		pt := runOverloadPoint(cfg, true, m*peak.GoodputRPS)
		pt.OfferedMult = m
		pt.GoodputVsPeak = pt.GoodputRPS / peak.GoodputRPS
		res.Points = append(res.Points, pt)
		if m >= maxMult {
			maxMult = m
			res.Goodput2xVsPeak = pt.GoodputVsPeak
		}
	}

	// The contrast cell: the same top offered load with admission
	// control off. Expect goodput to crater as queueing eats deadlines.
	if maxMult > 0 {
		if logf != nil {
			logf("overload: offered %.1fx capacity (unprotected)...", maxMult)
		}
		pt := runOverloadPoint(cfg, false, maxMult*peak.GoodputRPS)
		pt.OfferedMult = maxMult
		pt.GoodputVsPeak = pt.GoodputRPS / peak.GoodputRPS
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// WriteOverloadJSON serializes the suite result.
func WriteOverloadJSON(w io.Writer, r OverloadResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintOverloadBench renders the suite as one table.
func PrintOverloadBench(w io.Writer, r OverloadResult) {
	t := &Table{
		Title: "Overload: goodput vs offered load, admission control on/off",
		Cols:  []string{"mode", "offered x", "clients", "offered/s", "goodput/s", "vs peak", "shed/s", "deadline/s", "fail/s", "p50 ms", "p99 ms"},
	}
	for _, pt := range r.Points {
		t.AddRow(
			pt.Mode,
			f2(pt.OfferedMult),
			fmt.Sprintf("%d", pt.Clients),
			f0(pt.OfferedRPS),
			f0(pt.GoodputRPS),
			f2(pt.GoodputVsPeak),
			f0(pt.ShedRPS),
			f0(pt.DeadlineRPS),
			f0(pt.FailRPS),
			f2(pt.P50Ms),
			f2(pt.P99Ms),
		)
	}
	t.Notes = append(t.Notes,
		"peak is the closed-loop saturation probe: capacity with clients waiting out the queue",
		"protected/unprotected rows offer open-loop arrivals at multiples of peak; goodput counts only successes within the deadline",
		"the protected rows should hold near 1.0x past saturation (cheap sheds); the unprotected row craters as queueing eats every deadline")
	t.Fprint(w)
}
