// Package bench reproduces the paper's evaluation (§6): one runner per
// table and figure, each printing the same rows or series the paper
// reports. Figure benchmarks run on the deterministic simulator with a
// configurable core count standing in for the paper's 12-core
// hyper-threaded testbed (see DESIGN.md's substitution table); genuine
// per-operation overheads are measured by the real-environment benchmarks
// in the repository root's bench_test.go.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable result table.
type Table struct {
	Title string
	Cols  []string
	Rows  [][]string
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(fmt.Sprintf("%*s", widths[i], cell))
		}
		fmt.Fprintln(w, b.String())
	}
	printRow(t.Cols)
	total := len(t.Cols) - 1
	for _, w := range widths {
		total += w + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
