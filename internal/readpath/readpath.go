// Package readpath defines the consistency contract for Rex's read path:
// the consistency levels a client can ask for, the session tokens that
// carry a client's observed frontier between requests, and the typed
// errors the admission machinery uses to route reads between primaries
// and secondaries.
//
// The package is deliberately tiny and dependency-light (trace + wire
// only) so every layer — core, server, shard, cluster, the CLIs — can
// share one vocabulary without import cycles.
//
// # Levels
//
//   - Linearizable: the read observes every write that completed before
//     it began, cluster-wide. Served only by the primary, under a quorum
//     read lease (zero consensus rounds) or, when the lease has lapsed,
//     behind a consensus-confirmed barrier.
//   - Session: read-your-writes + monotonic reads within one client
//     session. Served by any replica whose replayed frontier covers the
//     client's token; the response carries a refreshed token.
//   - Eventual: whatever the contacted replica has applied. No waiting.
//
// # Tokens
//
// A Token is the client's proof of what it has observed: the shard
// group, the membership epoch, the primary's applied instance count, and
// the scheduler's consistent-cut frontier at the moment the client's
// last request was served. Both coordinates matter: the instance count
// orders tokens cheaply across failovers (committed cuts only grow, but
// comparing vectors is O(threads)), while the cut is what a secondary's
// replayer can actually wait on.
package readpath

import (
	"errors"
	"fmt"

	"rex/internal/trace"
	"rex/internal/wire"
)

// Level selects the consistency contract for one read.
type Level uint8

const (
	// Linearizable reads observe every completed write, cluster-wide.
	Linearizable Level = iota
	// Session reads observe at least the client's own prior writes and
	// reads (read-your-writes, monotonic reads).
	Session
	// Eventual reads observe whatever the contacted replica has applied.
	Eventual
)

// String renders the level the way flags and wire docs spell it.
func (l Level) String() string {
	switch l {
	case Linearizable:
		return "linearizable"
	case Session:
		return "session"
	case Eventual:
		return "eventual"
	}
	return fmt.Sprintf("level-%d", uint8(l))
}

// Valid reports whether l is one of the defined levels.
func (l Level) Valid() bool { return l <= Eventual }

// ParseLevel parses the flag/wire spelling of a consistency level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "linearizable", "lin":
		return Linearizable, nil
	case "session":
		return Session, nil
	case "eventual":
		return Eventual, nil
	}
	return 0, fmt.Errorf("readpath: unknown consistency level %q (want linearizable|session|eventual)", s)
}

// Token is a client's observed frontier: everything a session read must
// wait for before it can be served. The zero Token means "no
// observations yet" and is satisfied by any replica.
type Token struct {
	Group   int       // shard group the frontier belongs to
	Epoch   uint64    // membership epoch when the token was minted
	Applied uint64    // consensus instances applied when minted
	Cut     trace.Cut // committed consistent-cut frontier when minted
}

// Zero reports whether the token carries no observations.
func (t Token) Zero() bool { return t.Applied == 0 && len(t.Cut) == 0 }

// Covers reports whether a frontier described by tok is at least as
// fresh as t — i.e. a replica holding tok's state may serve a session
// read carrying t. Cut lengths need not match: a token minted before a
// resync/rebuild can carry a cut sized for a different thread count, and
// trace.Cut.AtLeast treats the missing entries as zero on either side —
// trailing zeros are trivially covered, while a non-zero entry for a
// thread the covering frontier lacks correctly fails.
func (t Token) Covers(o Token) bool {
	return t.Applied >= o.Applied && t.Cut.AtLeast(o.Cut)
}

// Merge folds another token into t, keeping the freshest coordinates.
// Sessions merge the token from every response so interleaved reads and
// writes stay monotonic.
//
// Tokens from different membership epochs are never merged coordinate-
// wise: their cuts index different record incarnations (a new primary
// rebases thread clocks at its promotion cut), so a pointwise max would
// fabricate a frontier no replica ever reached — and could then never be
// covered, wedging the session. The newer epoch's Applied and Cut are
// kept wholesale; Applied is monotone across epochs, so no freshness is
// lost.
func (t Token) Merge(o Token) Token {
	if o.Epoch != t.Epoch {
		if o.Epoch > t.Epoch {
			return o
		}
		return t
	}
	out := t
	if o.Applied > out.Applied {
		out.Applied = o.Applied
	}
	if len(o.Cut) > 0 {
		if out.Cut.AtLeast(o.Cut) {
			// keep ours
		} else if o.Cut.AtLeast(out.Cut) {
			out.Cut = o.Cut.Clone()
		} else {
			// Incomparable within one epoch (tokens minted by replicas at
			// different replay progress): take the pointwise max so neither
			// side regresses.
			n := len(out.Cut)
			if len(o.Cut) > n {
				n = len(o.Cut)
			}
			max := make(trace.Cut, n)
			copy(max, out.Cut)
			for i, v := range o.Cut {
				if v > max[i] {
					max[i] = v
				}
			}
			out.Cut = max
		}
	}
	return out
}

// Encode appends the token's wire form.
func (t Token) Encode(e *wire.Encoder) {
	e.Uvarint(uint64(t.Group))
	e.Uvarint(t.Epoch)
	e.Uvarint(t.Applied)
	e.Uvarint(uint64(len(t.Cut)))
	for _, v := range t.Cut {
		e.Uvarint(uint64(v))
	}
}

// EncodeBytes returns the token's wire form as a fresh slice.
func (t Token) EncodeBytes() []byte {
	e := wire.NewEncoder(nil)
	t.Encode(e)
	return e.Bytes()
}

// maxTokenThreads bounds the cut length a decoded token may claim, so a
// corrupt frame cannot ask for a giant allocation.
const maxTokenThreads = 1 << 16

// DecodeToken reads a token written by Encode.
func DecodeToken(d *wire.Decoder) (Token, error) {
	var t Token
	t.Group = int(d.Uvarint())
	t.Epoch = d.Uvarint()
	t.Applied = d.Uvarint()
	n := d.Uvarint()
	if err := d.Err(); err != nil {
		return Token{}, err
	}
	if n > maxTokenThreads {
		return Token{}, wire.ErrCorrupt
	}
	if n > 0 {
		t.Cut = make(trace.Cut, n)
		for i := range t.Cut {
			t.Cut[i] = int32(d.Uvarint())
		}
	}
	if err := d.Err(); err != nil {
		return Token{}, err
	}
	return t, nil
}

// DecodeTokenBytes decodes a token from b. An empty b is the zero token.
func DecodeTokenBytes(b []byte) (Token, error) {
	if len(b) == 0 {
		return Token{}, nil
	}
	return DecodeToken(wire.NewDecoder(b))
}

// SessionState accumulates tokens across a client's requests. It is not
// concurrency-safe; Rex clients are single-session by design.
type SessionState struct {
	tok Token
}

// Token returns the session's current frontier.
func (s *SessionState) Token() Token { return s.tok }

// Observe folds a response token into the session.
func (s *SessionState) Observe(t Token) { s.tok = s.tok.Merge(t) }

// Reset clears the session (e.g. after switching groups).
func (s *SessionState) Reset() { s.tok = Token{} }

// Errors the read path uses to route between replicas. They cross the
// server protocol as distinguishable status strings, so keep the
// messages stable.
var (
	// ErrPrimaryOnly: the query was classified primary-only (non-idempotent
	// or effectful) and this replica is not the primary. Clients retry on
	// the primary at linearizable level.
	ErrPrimaryOnly = errors.New("readpath: query must run on the primary")

	// ErrNotPrimary: a linearizable read reached a non-primary. Clients
	// follow the leader hint like a write would.
	ErrNotPrimary = errors.New("readpath: linearizable reads require the primary")

	// ErrFrontierWait: the replica's replayed frontier did not cover the
	// session token within the wait budget. Transient — clients try
	// another replica or fall back to the primary.
	ErrFrontierWait = errors.New("readpath: replica frontier behind session token")

	// ErrLeaseWait: the primary lost its lease and the consensus-confirmed
	// barrier did not commit within the wait budget (e.g. it was deposed).
	// Transient — clients retry, typically landing on the new primary.
	ErrLeaseWait = errors.New("readpath: read barrier not confirmed")
)
