package readpath

import (
	"bytes"
	"testing"

	"rex/internal/trace"
	"rex/internal/wire"
)

// FuzzTokenRoundTrip checks that any structurally valid token survives
// Encode/Decode unchanged.
func FuzzTokenRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint64(0), uint64(0), []byte(nil))
	f.Add(uint32(3), uint64(7), uint64(900), []byte{1, 2, 3, 4})
	f.Add(uint32(1<<20), uint64(1)<<60, uint64(1)<<50, bytes.Repeat([]byte{0xff}, 32))
	f.Fuzz(func(t *testing.T, group uint32, epoch, applied uint64, cutRaw []byte) {
		tok := Token{Group: int(group), Epoch: epoch, Applied: applied}
		if len(cutRaw) > 0 {
			tok.Cut = make(trace.Cut, len(cutRaw))
			for i, b := range cutRaw {
				tok.Cut[i] = int32(b) << (uint(i) % 20)
			}
		}
		got, err := DecodeTokenBytes(tok.EncodeBytes())
		if err != nil {
			t.Fatalf("decode of freshly encoded token failed: %v", err)
		}
		if got.Group != tok.Group || got.Epoch != tok.Epoch || got.Applied != tok.Applied {
			t.Fatalf("round trip changed coordinates: %+v -> %+v", tok, got)
		}
		if len(got.Cut) != len(tok.Cut) {
			t.Fatalf("round trip changed cut length: %d -> %d", len(tok.Cut), len(got.Cut))
		}
		for i := range tok.Cut {
			if got.Cut[i] != tok.Cut[i] {
				t.Fatalf("round trip changed cut[%d]: %d -> %d", i, tok.Cut[i], got.Cut[i])
			}
		}
	})
}

// FuzzTokenDecode throws arbitrary bytes at the decoder: it must never
// panic, and whatever it accepts must re-encode to something it decodes
// to the same token (decode is a projection onto valid tokens).
func FuzzTokenDecode(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{0x00})
	f.Add([]byte{0x80})                               // truncated uvarint
	f.Add([]byte{0x01, 0x02, 0x03, 0xff})             // truncated cut
	f.Add((Token{Epoch: 2, Applied: 9}).EncodeBytes()) // valid
	f.Add([]byte{0x00, 0x00, 0x00, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // giant cut length
	f.Fuzz(func(t *testing.T, data []byte) {
		tok, err := DecodeTokenBytes(data)
		if err != nil {
			return
		}
		again, err := DecodeTokenBytes(tok.EncodeBytes())
		if err != nil {
			t.Fatalf("re-decode of accepted token failed: %v", err)
		}
		if !again.Covers(tok) || !tok.Covers(again) {
			t.Fatalf("accepted token is not a fixed point: %+v vs %+v", tok, again)
		}
	})
}

// FuzzTokenMerge checks merge's contract on arbitrary token pairs: the
// result is at least as fresh as both inputs within an epoch, and never
// panics across epochs.
func FuzzTokenMerge(f *testing.F) {
	f.Add(uint64(1), uint64(5), []byte{3, 1}, uint64(1), uint64(9), []byte{1, 4})
	f.Add(uint64(1), uint64(5), []byte{3}, uint64(2), uint64(4), []byte{9, 9, 9})
	f.Fuzz(func(t *testing.T, epochA, appliedA uint64, cutA []byte, epochB, appliedB uint64, cutB []byte) {
		mk := func(epoch, applied uint64, raw []byte) Token {
			tok := Token{Epoch: epoch, Applied: applied}
			if len(raw) > 0 {
				tok.Cut = make(trace.Cut, len(raw))
				for i, b := range raw {
					tok.Cut[i] = int32(b)
				}
			}
			return tok
		}
		a, b := mk(epochA, appliedA, cutA), mk(epochB, appliedB, cutB)
		m := a.Merge(b)
		if a.Epoch == b.Epoch {
			if !m.Covers(a) || !m.Covers(b) {
				t.Fatalf("same-epoch merge lost freshness: %+v + %+v = %+v", a, b, m)
			}
		} else {
			want := a
			if b.Epoch > a.Epoch {
				want = b
			}
			if m.Epoch != want.Epoch || m.Applied != want.Applied {
				t.Fatalf("cross-epoch merge did not keep the newer epoch wholesale: %+v + %+v = %+v", a, b, m)
			}
		}
	})
}

// Keep the fuzz corpus decoder honest against the streaming decoder too:
// DecodeToken must leave the decoder usable (no panic) on any prefix.
func FuzzTokenDecodePrefix(f *testing.F) {
	full := (Token{Group: 2, Epoch: 3, Applied: 41, Cut: trace.Cut{5, 0, 7}}).EncodeBytes()
	for i := 0; i <= len(full); i++ {
		f.Add(full[:i])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d := wire.NewDecoder(data)
		_, _ = DecodeToken(d)
	})
}
