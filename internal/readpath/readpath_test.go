package readpath

import (
	"testing"

	"rex/internal/trace"
	"rex/internal/wire"
)

func TestParseLevel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Level
		err  bool
	}{
		{"linearizable", Linearizable, false},
		{"lin", Linearizable, false},
		{"session", Session, false},
		{"eventual", Eventual, false},
		{"strong", 0, true},
		{"", 0, true},
	} {
		got, err := ParseLevel(tc.in)
		if tc.err != (err != nil) {
			t.Fatalf("ParseLevel(%q): err=%v, want err=%v", tc.in, err, tc.err)
		}
		if err == nil && got != tc.want {
			t.Fatalf("ParseLevel(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, l := range []Level{Linearizable, Session, Eventual} {
		back, err := ParseLevel(l.String())
		if err != nil || back != l {
			t.Fatalf("round-trip %v: got %v, %v", l, back, err)
		}
		if !l.Valid() {
			t.Fatalf("%v should be valid", l)
		}
	}
	if Level(7).Valid() {
		t.Fatal("Level(7) should be invalid")
	}
}

func TestTokenRoundTrip(t *testing.T) {
	toks := []Token{
		{},
		{Group: 3, Epoch: 9, Applied: 1234, Cut: trace.Cut{5, 0, 19}},
		{Applied: 1},
	}
	for _, tok := range toks {
		e := wire.NewEncoder(nil)
		tok.Encode(e)
		got, err := DecodeToken(wire.NewDecoder(e.Bytes()))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Group != tok.Group || got.Epoch != tok.Epoch || got.Applied != tok.Applied || !got.Cut.Equal(tok.Cut) {
			t.Fatalf("round trip: got %+v, want %+v", got, tok)
		}
	}
	// Empty bytes decode to the zero token.
	z, err := DecodeTokenBytes(nil)
	if err != nil || !z.Zero() {
		t.Fatalf("DecodeTokenBytes(nil) = %+v, %v", z, err)
	}
	// Truncated bytes error rather than panic.
	full := toks[1].EncodeBytes()
	if _, err := DecodeTokenBytes(full[:len(full)-1]); err == nil {
		t.Fatal("truncated token should fail to decode")
	}
}

func TestTokenCovers(t *testing.T) {
	base := Token{Applied: 10, Cut: trace.Cut{4, 2}}
	if !base.Covers(Token{}) {
		t.Fatal("any token covers the zero token")
	}
	if !base.Covers(base) {
		t.Fatal("a token covers itself")
	}
	if base.Covers(Token{Applied: 11, Cut: trace.Cut{4, 2}}) {
		t.Fatal("lower applied must not cover")
	}
	if base.Covers(Token{Applied: 10, Cut: trace.Cut{5, 2}}) {
		t.Fatal("lower cut must not cover")
	}
	if !(Token{Applied: 12, Cut: trace.Cut{9, 9}}).Covers(base) {
		t.Fatal("strictly fresher token covers")
	}
}

func TestTokenMerge(t *testing.T) {
	// Same-epoch incomparable cuts (replicas at different replay progress)
	// merge pointwise: both cuts index the same trace lineage.
	a := Token{Epoch: 1, Applied: 10, Cut: trace.Cut{4, 2}}
	b := Token{Epoch: 1, Applied: 8, Cut: trace.Cut{1, 7, 3}}
	m := a.Merge(b)
	if m.Epoch != 1 || m.Applied != 10 {
		t.Fatalf("merge scalar: %+v", m)
	}
	want := trace.Cut{4, 7, 3}
	if !m.Cut.Equal(want) {
		t.Fatalf("merge cut = %v, want %v", m.Cut, want)
	}
	// Merge must not regress either input.
	if !m.Covers(a) || !m.Covers(b) {
		t.Fatal("merged token must cover both inputs")
	}
	// Merging the zero token is the identity.
	if got := a.Merge(Token{}); !got.Covers(a) || !a.Covers(got) {
		t.Fatalf("merge with zero changed token: %+v", got)
	}
}

func TestTokenMergeCrossEpoch(t *testing.T) {
	// Regression: cuts from different membership epochs index different
	// record incarnations (a new primary rebases thread clocks at its
	// promotion cut). A pointwise max across epochs fabricates a frontier
	// no replica ever reached — {9, 9} in epoch 2 below — which no replica
	// could ever cover, wedging the session. Merge must instead keep the
	// newer epoch's coordinates wholesale.
	old := Token{Epoch: 1, Applied: 10, Cut: trace.Cut{9, 9}}
	next := Token{Epoch: 2, Applied: 12, Cut: trace.Cut{1, 2}}
	for _, m := range []Token{old.Merge(next), next.Merge(old)} {
		if m.Epoch != 2 || m.Applied != 12 || !m.Cut.Equal(next.Cut) {
			t.Fatalf("cross-epoch merge must keep the newer token wholesale, got %+v", m)
		}
	}
	// Even when the stale epoch claims a higher Applied (impossible for a
	// correct replica, but tokens travel through clients), the newer epoch
	// wins: epoch ordering is authoritative.
	stale := Token{Epoch: 1, Applied: 99, Cut: trace.Cut{9, 9}}
	if m := stale.Merge(next); m.Epoch != 2 || m.Applied != 12 || !m.Cut.Equal(next.Cut) {
		t.Fatalf("stale high-applied token leaked through merge: %+v", m)
	}
}

func TestSession(t *testing.T) {
	var s SessionState
	if !s.Token().Zero() {
		t.Fatal("new session should hold the zero token")
	}
	s.Observe(Token{Applied: 5, Cut: trace.Cut{1}})
	s.Observe(Token{Applied: 3, Cut: trace.Cut{2}})
	got := s.Token()
	if got.Applied != 5 || !got.Cut.Equal(trace.Cut{2}) {
		t.Fatalf("session token = %+v", got)
	}
	s.Reset()
	if !s.Token().Zero() {
		t.Fatal("reset session should hold the zero token")
	}
}
