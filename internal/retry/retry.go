// Package retry holds the client-side pieces of overload protection:
// a jittered exponential backoff schedule and a token-bucket retry
// budget. Both were previously hand-rolled (twice, with slightly
// different constants) in cluster.Client and shard.Router; this package
// is the single shared implementation.
//
// Neither type is safe for concurrent use — each client or router owns
// its own instances, which keeps the package free of locks and therefore
// deterministic under the simulator.
package retry

import (
	"errors"
	"math/rand"
	"time"
)

// ErrBudgetExhausted is returned by clients when the retry budget ran
// dry: enough consecutive failures accumulated that further retries
// would only amplify the outage. The original request's outcome is
// unknown — callers must treat it like a timeout, not a definite
// failure.
var ErrBudgetExhausted = errors.New("retry: budget exhausted")

// Backoff produces a jittered exponential backoff schedule: each Next
// returns a duration drawn uniformly from [cur/2, cur], then doubles
// cur up to Max. Reset restores cur to Min (e.g. after a success or a
// redirect to a fresh target).
type Backoff struct {
	Min time.Duration
	Max time.Duration

	cur time.Duration
	rng *rand.Rand
}

// NewBackoff returns a backoff schedule over [min, max], seeded
// deterministically (pass a per-client seed so concurrent clients
// don't sleep in lockstep).
func NewBackoff(min, max time.Duration, seed int64) *Backoff {
	if min <= 0 {
		min = time.Millisecond
	}
	if max < min {
		max = min
	}
	return &Backoff{Min: min, Max: max, cur: min, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next sleep duration: uniform in [cur/2, cur], then
// doubles cur, saturating at Max.
func (b *Backoff) Next() time.Duration {
	if b.cur < b.Min {
		b.cur = b.Min
	}
	cur := b.cur
	d := cur/2 + time.Duration(b.rng.Int63n(int64(cur/2)+1))
	b.cur = cur * 2
	if b.cur > b.Max || b.cur < 0 {
		b.cur = b.Max
	}
	return d
}

// Reset restores the schedule to its minimum.
func (b *Backoff) Reset() { b.cur = b.Min }

// Cur exposes the current (pre-jitter) step, mostly for tests.
func (b *Backoff) Cur() time.Duration { return b.cur }

// Budget is a token-bucket retry budget: first attempts are always
// free, retries each consume one token, and successes earn Ratio
// tokens back (capped at Burst). Under a sustained outage the bucket
// drains and retries are refused, so a failing fleet offers at most
// (1 + Ratio) times its success rate instead of MaxAttempts times its
// arrival rate.
type Budget struct {
	// Ratio is the number of tokens earned per success. 0.5 bounds
	// steady-state retry amplification at 1.5x.
	Ratio float64
	// Burst caps the bucket, bounding how many back-to-back retries a
	// previously healthy client may issue when an outage starts.
	Burst float64

	tokens float64
}

// NewBudget returns a full budget (tokens = burst, so cold-start
// retries work) with the given earn ratio and cap.
func NewBudget(ratio, burst float64) *Budget {
	if ratio < 0 {
		ratio = 0
	}
	if burst <= 0 {
		burst = 1
	}
	return &Budget{Ratio: ratio, Burst: burst, tokens: burst}
}

// Allow reports whether a retry may proceed, consuming one token if so.
func (b *Budget) Allow() bool {
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Success credits the budget for a completed request.
func (b *Budget) Success() {
	b.tokens += b.Ratio
	if b.tokens > b.Burst {
		b.tokens = b.Burst
	}
}

// Tokens exposes the current balance, mostly for tests.
func (b *Budget) Tokens() float64 { return b.tokens }
