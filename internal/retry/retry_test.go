package retry

import (
	"testing"
	"time"
)

// TestBackoffJitterBounds draws many samples and checks every one lands
// in [step/2, step] for the step in force when it was drawn.
func TestBackoffJitterBounds(t *testing.T) {
	b := NewBackoff(time.Millisecond, 25*time.Millisecond, 42)
	for i := 0; i < 1000; i++ {
		step := b.Cur()
		d := b.Next()
		if d < step/2 || d > step {
			t.Fatalf("sample %d: got %v, want within [%v, %v]", i, d, step/2, step)
		}
	}
}

// TestBackoffDoublesAndCaps checks the pre-jitter step doubles each call
// and saturates at Max.
func TestBackoffDoublesAndCaps(t *testing.T) {
	b := NewBackoff(time.Millisecond, 25*time.Millisecond, 1)
	want := time.Millisecond
	for i := 0; i < 10; i++ {
		if got := b.Cur(); got != want {
			t.Fatalf("step %d: cur %v, want %v", i, got, want)
		}
		b.Next()
		want *= 2
		if want > 25*time.Millisecond {
			want = 25 * time.Millisecond
		}
	}
	// Stays pinned at the cap.
	for i := 0; i < 100; i++ {
		if d := b.Next(); d > 25*time.Millisecond {
			t.Fatalf("capped sample exceeded max: %v", d)
		}
	}
	if b.Cur() != 25*time.Millisecond {
		t.Fatalf("cur %v, want cap", b.Cur())
	}
}

func TestBackoffReset(t *testing.T) {
	b := NewBackoff(time.Millisecond, 25*time.Millisecond, 7)
	for i := 0; i < 6; i++ {
		b.Next()
	}
	b.Reset()
	if b.Cur() != time.Millisecond {
		t.Fatalf("after reset cur %v, want %v", b.Cur(), time.Millisecond)
	}
}

// TestBackoffDeterministic: same seed, same schedule (the simulator and
// pinned-seed chaos runs rely on this).
func TestBackoffDeterministic(t *testing.T) {
	a := NewBackoff(time.Millisecond, 25*time.Millisecond, 99)
	b := NewBackoff(time.Millisecond, 25*time.Millisecond, 99)
	for i := 0; i < 64; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("sample %d diverged: %v vs %v", i, x, y)
		}
	}
}

func TestBackoffDegenerateBounds(t *testing.T) {
	b := NewBackoff(0, -time.Second, 3)
	if d := b.Next(); d <= 0 || d > time.Millisecond {
		t.Fatalf("degenerate bounds produced %v", d)
	}
}

func TestBudgetExhaustsAndRefills(t *testing.T) {
	b := NewBudget(0.5, 4)
	// Starts full: four retries allowed, then dry.
	for i := 0; i < 4; i++ {
		if !b.Allow() {
			t.Fatalf("retry %d refused with %v tokens", i, b.Tokens())
		}
	}
	if b.Allow() {
		t.Fatal("allowed retry on empty budget")
	}
	// Two successes earn one token.
	b.Success()
	if b.Allow() {
		t.Fatal("half a token should not allow a retry")
	}
	b.Success()
	if !b.Allow() {
		t.Fatal("one full token should allow a retry")
	}
	// Earnings cap at Burst.
	for i := 0; i < 100; i++ {
		b.Success()
	}
	if b.Tokens() > 4 {
		t.Fatalf("tokens %v exceed burst", b.Tokens())
	}
}

func TestBudgetZeroRatioNeverRefills(t *testing.T) {
	b := NewBudget(0, 2)
	b.Allow()
	b.Allow()
	b.Success()
	b.Success()
	if b.Allow() {
		t.Fatal("zero-ratio budget refilled")
	}
}
