package sim

// current returns the task invoking a blocking operation. Exactly one task
// runs at any instant; it records itself in s.cur right after receiving the
// baton, so this is race-free.
func (s *Env) current() *task {
	s.mu.Lock()
	t := s.cur
	s.mu.Unlock()
	if t == nil {
		panic("sim: blocking operation invoked from outside a simulated task")
	}
	return t
}

// simMutex is a FIFO mutex with direct handoff: Unlock transfers ownership
// to the longest-waiting task, which keeps lock acquisition order
// deterministic.
type simMutex struct {
	s       *Env
	locked  bool
	owner   *task // diagnostics only
	waiters []*task
}

// Lock implements env.Mutex.
func (m *simMutex) Lock() {
	t := m.s.current()
	m.s.mu.Lock()
	if !m.locked {
		m.locked = true
		m.owner = t
		m.s.mu.Unlock()
		return
	}
	m.waiters = append(m.waiters, t)
	m.s.blockLocked(t, "mutex")
	// Ownership was transferred to us by Unlock.
}

// TryLock implements env.Mutex.
func (m *simMutex) TryLock() bool {
	t := m.s.current()
	m.s.mu.Lock()
	defer m.s.mu.Unlock()
	if m.locked {
		return false
	}
	m.locked = true
	m.owner = t
	return true
}

// Unlock implements env.Mutex.
func (m *simMutex) Unlock() {
	m.s.mu.Lock()
	defer m.s.mu.Unlock()
	if !m.locked {
		if m.s.stopped {
			// Teardown: a killed task unwinding out of Cond.Wait runs its
			// caller's deferred Unlock without having reacquired the
			// mutex. Tolerate it; the simulation is over.
			return
		}
		panic("sim: unlock of unlocked mutex")
	}
	if len(m.waiters) > 0 {
		next := m.waiters[0]
		m.waiters[0] = nil
		m.waiters = m.waiters[1:]
		m.owner = next
		m.s.readyLocked(next)
		return // still locked, owned by next
	}
	m.locked = false
	m.owner = nil
}

// simCond is a condition variable over a simMutex with FIFO wakeup.
type simCond struct {
	s       *Env
	m       *simMutex
	waiters []*task
}

// Wait implements env.Cond: atomically release the mutex, block, and
// reacquire before returning.
func (c *simCond) Wait() {
	t := c.s.current()
	c.s.mu.Lock()
	if !c.m.locked {
		c.s.mu.Unlock()
		panic("sim: Cond.Wait without holding the mutex")
	}
	c.waiters = append(c.waiters, t)
	// Release the mutex exactly as Unlock would, but under the scheduler
	// lock we already hold.
	if len(c.m.waiters) > 0 {
		next := c.m.waiters[0]
		c.m.waiters[0] = nil
		c.m.waiters = c.m.waiters[1:]
		c.m.owner = next
		c.s.readyLocked(next)
	} else {
		c.m.locked = false
		c.m.owner = nil
	}
	c.s.blockLocked(t, "cond")
	c.m.Lock()
}

// Signal implements env.Cond.
func (c *simCond) Signal() {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	if len(c.waiters) == 0 {
		return
	}
	t := c.waiters[0]
	c.waiters[0] = nil
	c.waiters = c.waiters[1:]
	c.s.readyLocked(t)
}

// Broadcast implements env.Cond.
func (c *simCond) Broadcast() {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	for _, t := range c.waiters {
		c.s.readyLocked(t)
	}
	c.waiters = nil
}
