// Package sim provides a deterministic simulated implementation of env.Env:
// virtual time, a configurable number of simulated CPU cores, and
// cooperatively scheduled tasks.
//
// Exactly one task runs at any instant; control is handed from task to task
// through per-task baton channels, and virtual time advances only when every
// task is blocked (sleeping, computing, or waiting on a primitive). The
// scheduler is strictly FIFO and timers tie-break by creation order, so a
// simulation with a fixed workload is bit-for-bit reproducible. This is the
// substitute for the paper's 12-core testbed: Compute(d) occupies one of K
// virtual cores for d of virtual time, so thread-scaling behaviour emerges
// from the same synchronization structure the paper measures, independent of
// the physical core count of the machine running the simulation.
package sim

import (
	"container/heap"
	"fmt"
	"os"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"rex/internal/env"
)

// Env is a deterministic simulated environment. Create one with New, spawn
// tasks with Go, and drive the simulation with Run.
type Env struct {
	mu sync.Mutex
	// machines are independent CPU pools: one per simulated server. Tasks
	// inherit their machine from their spawner, so a replica started on
	// machine i computes on machine i's cores — matching the paper's
	// one-server-per-replica testbed.
	machines  []*coreGroup
	now       int64 // virtual nanoseconds
	readyQ    []*task
	timers    timerHeap
	timerSeq  uint64
	taskSeq   int
	tasks     map[int]*task
	stopped   bool
	cur       *task // the task currently holding the baton
	mainDone  chan struct{}
	doneOnce  sync.Once
	panicVal  any
	panicText string
}

type cpuReq struct {
	t *task
	d int64
}

// coreGroup is one machine's CPU pool: FCFS allocation of whole compute
// slices onto `cores` cores.
type coreGroup struct {
	cores int
	busy  int
	q     []cpuReq
}

type task struct {
	id      int
	name    string
	fn      func()
	token   chan struct{}
	done    chan struct{}
	state   string
	machine int
	killed  bool
	exited  bool
}

// killedSignal unwinds a task that the environment is tearing down.
type killedSignal struct{}

// New returns a simulated environment whose machine 0 has the given
// number of CPU cores. Add more machines with AddMachine.
func New(cores int) *Env {
	if cores < 1 {
		cores = 1
	}
	return &Env{
		machines: []*coreGroup{{cores: cores}},
		tasks:    make(map[int]*task),
	}
}

// Cores implements env.Env: the core count of machine 0.
func (s *Env) Cores() int { return s.machines[0].cores }

// AddMachine adds an independent CPU pool (a simulated server) and returns
// its id. Tasks spawned via GoOn — and, transitively, everything those
// tasks spawn — compute on that machine.
func (s *Env) AddMachine(cores int) int {
	if cores < 1 {
		cores = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.machines = append(s.machines, &coreGroup{cores: cores})
	return len(s.machines) - 1
}

// GoOn spawns a task pinned to the given machine.
func (s *Env) GoOn(machine int, name string, fn func()) {
	s.mu.Lock()
	if machine < 0 || machine >= len(s.machines) {
		s.mu.Unlock()
		panic("sim: GoOn to unknown machine")
	}
	t := s.spawnLocked(name, fn, false)
	t.machine = machine
	s.mu.Unlock()
}

// Now implements env.Env.
func (s *Env) Now() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Duration(s.now)
}

// Run executes main as the root task and drives the simulation until main
// returns, then tears down every remaining task. If any task panicked, Run
// re-panics with that value.
func (s *Env) Run(main func()) {
	s.mainDone = make(chan struct{})
	if os.Getenv("REX_SIM_WATCHDOG") != "" {
		go s.watchdog()
	}
	s.spawn("main", main, true)
	s.mu.Lock()
	first := s.pickNextLocked()
	s.mu.Unlock()
	if first != nil {
		first.token <- struct{}{}
	}
	<-s.mainDone
	s.killAll()
	if s.panicVal != nil {
		panic(fmt.Sprintf("sim: task panic: %v\n%s", s.panicVal, s.panicText))
	}
}

// watchdog (debug, REX_SIM_WATCHDOG=1): dumps scheduler state when virtual
// time freezes for several real seconds.
func (s *Env) watchdog() {
	var lastNow int64 = -1
	var lastSeq uint64
	for {
		time.Sleep(5 * time.Second)
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			return
		}
		frozen := s.now == lastNow && s.timerSeq == lastSeq
		lastNow, lastSeq = s.now, s.timerSeq
		if frozen {
			dump := s.dumpLocked()
			cur := "nil"
			if s.cur != nil {
				cur = fmt.Sprintf("%d %q (%s)", s.cur.id, s.cur.name, s.cur.state)
			}
			fmt.Printf("SIM WATCHDOG: frozen at %v; cur=%s ready=%d timers=%d\n%s\n",
				time.Duration(s.now), cur, len(s.readyQ), s.timers.Len(), dump)
		}
		s.mu.Unlock()
	}
}

// Go implements env.Env.
func (s *Env) Go(name string, fn func()) {
	s.spawn(name, fn, false)
}

func (s *Env) spawn(name string, fn func(), isMain bool) *task {
	s.mu.Lock()
	t := s.spawnLocked(name, fn, isMain)
	s.mu.Unlock()
	return t
}

func (s *Env) spawnLocked(name string, fn func(), isMain bool) *task {
	s.taskSeq++
	t := &task{
		id:    s.taskSeq,
		name:  name,
		fn:    fn,
		token: make(chan struct{}, 1),
		done:  make(chan struct{}),
		state: "ready",
	}
	if s.cur != nil {
		t.machine = s.cur.machine // inherit the spawner's machine
	}
	s.tasks[t.id] = t
	s.readyQ = append(s.readyQ, t)
	go s.taskMain(t, isMain)
	return t
}

func (s *Env) taskMain(t *task, isMain bool) {
	defer close(t.done)
	<-t.token
	if t.killed {
		s.finishTask(t, isMain, nil, nil)
		return
	}
	s.mu.Lock()
	s.cur = t
	s.mu.Unlock()
	var pv any
	var stack []byte
	// finishTask runs from a defer so the baton is handed on even when the
	// task terminates via runtime.Goexit — e.g. testing.T.Fatal inside a
	// simulated task — which unwinds the goroutine without returning.
	defer func() {
		s.finishTask(t, isMain, pv, stack)
	}()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killedSignal); ok {
				return
			}
			pv = r
			stack = debug.Stack()
		}
	}()
	t.fn()
}

// finishTask removes t from the scheduler and, depending on why the task is
// finishing, either hands the baton onward or halts the simulation.
func (s *Env) finishTask(t *task, isMain bool, pv any, stack []byte) {
	s.mu.Lock()
	t.exited = true
	t.state = "exited"
	delete(s.tasks, t.id)
	if pv != nil {
		// A task crashed: halt the simulation and surface the panic.
		s.stopped = true
		if s.panicVal == nil {
			s.panicVal = pv
			s.panicText = string(stack)
		}
		s.mu.Unlock()
		s.doneOnce.Do(func() { close(s.mainDone) })
		return
	}
	if isMain || t.killed {
		s.stopped = true
		s.mu.Unlock()
		if isMain {
			s.doneOnce.Do(func() { close(s.mainDone) })
		}
		return
	}
	// Normal task exit: pass the baton to the next runnable task.
	next := s.pickNextLocked()
	s.mu.Unlock()
	if next != nil {
		next.token <- struct{}{}
	}
}

// block parks the current task t (which the caller has already registered on
// some wait list), hands the baton to the next runnable task, and returns
// when t is woken. Called with s.mu held; returns with s.mu released.
func (s *Env) blockLocked(t *task, state string) {
	t.state = state
	next := s.pickNextLocked()
	s.mu.Unlock()
	if next != nil {
		next.token <- struct{}{}
	}
	<-t.token
	if t.killed {
		panic(killedSignal{})
	}
	s.mu.Lock()
	s.cur = t
	t.state = "running"
	s.mu.Unlock()
}

// readyLocked marks t runnable. Called with s.mu held.
func (s *Env) readyLocked(t *task) {
	if t.state == "ready" || t.state == "running" {
		// Scheduler-state corruption (a double ready would duplicate the
		// baton). This fires with s.mu held, so a panic would deadlock
		// the unwinding task's epilogue — abort instead.
		fmt.Fprintf(os.Stderr, "sim: FATAL: task %d %q readied while %s\n%s\n",
			t.id, t.name, t.state, s.dumpLocked())
		os.Exit(2)
	}
	t.state = "ready"
	s.readyQ = append(s.readyQ, t)
}

// pickNextLocked returns the next runnable task, advancing virtual time and
// firing timers as needed. Returns nil if the simulation has stopped or no
// task can ever run again. Called with s.mu held.
func (s *Env) pickNextLocked() *task {
	for {
		if s.stopped {
			return nil
		}
		if len(s.readyQ) > 0 {
			t := s.readyQ[0]
			s.readyQ[0] = nil
			s.readyQ = s.readyQ[1:]
			t.state = "running"
			return t
		}
		if s.timers.Len() == 0 {
			if len(s.tasks) == 0 {
				return nil
			}
			dump := s.dumpLocked()
			// Release the scheduler lock before panicking so the task's
			// recovery path (finishTask) can reacquire it.
			s.mu.Unlock()
			panic("sim: deadlock — all tasks blocked with no pending timers\n" + dump)
		}
		tm := heap.Pop(&s.timers).(*timer)
		if tm.stopped {
			continue
		}
		if tm.when > s.now {
			s.now = tm.when
		}
		tm.fn()
	}
}

// dumpLocked renders the task table for deadlock diagnostics.
func (s *Env) dumpLocked() string {
	ids := make([]int, 0, len(s.tasks))
	for id := range s.tasks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := fmt.Sprintf("sim time %v, %d tasks:\n", time.Duration(s.now), len(ids))
	for _, id := range ids {
		t := s.tasks[id]
		out += fmt.Sprintf("  task %d %q: %s\n", t.id, t.name, t.state)
	}
	return out
}

// killAll tears down every remaining task, one at a time, until none remain.
func (s *Env) killAll() {
	for {
		s.mu.Lock()
		var victims []*task
		for _, t := range s.tasks {
			if !t.exited {
				victims = append(victims, t)
			}
		}
		s.mu.Unlock()
		if len(victims) == 0 {
			return
		}
		sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
		for _, t := range victims {
			s.mu.Lock()
			t.killed = true
			s.mu.Unlock()
			t.token <- struct{}{}
			<-t.done
		}
	}
}

// Sleep implements env.Env.
func (s *Env) Sleep(d time.Duration) {
	t := s.current()
	s.mu.Lock()
	if d <= 0 {
		// Yield: go to the back of the ready queue. (The state change
		// distinguishes this legitimate self-ready from a double-ready
		// bug, which readyLocked asserts against.)
		t.state = "yielding"
		s.readyLocked(t)
		s.blockLocked(t, "yield")
		return
	}
	s.addTimerLocked(s.now+int64(d), func() { s.readyLocked(t) })
	s.blockLocked(t, "sleep")
}

// Compute implements env.Env: occupy one of the calling task's machine's
// cores for d of virtual time, queueing FCFS when all cores are busy.
func (s *Env) Compute(d time.Duration) {
	if d <= 0 {
		return
	}
	t := s.current()
	s.mu.Lock()
	g := s.machines[t.machine]
	if g.busy < g.cores {
		g.busy++
		s.startComputeLocked(g, t, int64(d))
	} else {
		g.q = append(g.q, cpuReq{t: t, d: int64(d)})
	}
	s.blockLocked(t, "compute")
}

// startComputeLocked schedules the completion of t's compute slice; the core
// is considered busy until then. Called with s.mu held.
func (s *Env) startComputeLocked(g *coreGroup, t *task, d int64) {
	s.addTimerLocked(s.now+d, func() {
		s.readyLocked(t)
		if len(g.q) > 0 {
			next := g.q[0]
			g.q = g.q[1:]
			s.startComputeLocked(g, next.t, next.d)
		} else {
			g.busy--
		}
	})
}

// AfterFunc implements env.Env. fn runs on a fresh task at the deadline.
func (s *Env) AfterFunc(d time.Duration, fn func()) env.Timer {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d < 0 {
		d = 0
	}
	tm := s.addTimerLocked(s.now+int64(d), nil)
	tm.fn = func() {
		if !tm.stopped {
			s.spawnLocked("timer", fn, false)
		}
	}
	return tm
}

func (s *Env) addTimerLocked(when int64, fn func()) *timer {
	s.timerSeq++
	tm := &timer{when: when, seq: s.timerSeq, fn: fn, env: s}
	heap.Push(&s.timers, tm)
	return tm
}

// NewMutex implements env.Env.
func (s *Env) NewMutex() env.Mutex { return &simMutex{s: s} }

// NewCond implements env.Env.
func (s *Env) NewCond(m env.Mutex) env.Cond {
	return &simCond{s: s, m: m.(*simMutex)}
}

// NewChan implements env.Env.
func (s *Env) NewChan(capacity int) env.Chan { return env.NewChanFor(s, capacity) }

type timer struct {
	when    int64
	seq     uint64
	fn      func()
	env     *Env
	stopped bool
}

// Stop implements env.Timer.
func (tm *timer) Stop() bool {
	tm.env.mu.Lock()
	defer tm.env.mu.Unlock()
	was := !tm.stopped
	tm.stopped = true
	return was
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return
}
