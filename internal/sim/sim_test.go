package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"rex/internal/env"
)

func TestVirtualTimeAdvances(t *testing.T) {
	s := New(4)
	var at time.Duration
	s.Run(func() {
		s.Sleep(250 * time.Millisecond)
		at = s.Now()
	})
	if at != 250*time.Millisecond {
		t.Errorf("Now after sleep = %v, want 250ms", at)
	}
}

func TestComputeOccupiesCores(t *testing.T) {
	// 4 tasks x 10ms compute on 2 cores must take exactly 20ms of virtual
	// time under FCFS core allocation.
	s := New(2)
	var elapsed time.Duration
	s.Run(func() {
		g := env.GoEach(s, "worker", 4, func(int) {
			s.Compute(10 * time.Millisecond)
		})
		g.Wait()
		elapsed = s.Now()
	})
	if elapsed != 20*time.Millisecond {
		t.Errorf("elapsed = %v, want 20ms", elapsed)
	}
}

func TestComputeParallelWithinCores(t *testing.T) {
	s := New(8)
	var elapsed time.Duration
	s.Run(func() {
		env.GoEach(s, "worker", 8, func(int) {
			s.Compute(5 * time.Millisecond)
		}).Wait()
		elapsed = s.Now()
	})
	if elapsed != 5*time.Millisecond {
		t.Errorf("elapsed = %v, want 5ms (all parallel)", elapsed)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	s := New(4)
	var inside, maxInside int
	s.Run(func() {
		mu := s.NewMutex()
		env.GoEach(s, "locker", 10, func(int) {
			for i := 0; i < 5; i++ {
				mu.Lock()
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				s.Sleep(time.Millisecond)
				inside--
				mu.Unlock()
			}
		}).Wait()
	})
	if maxInside != 1 {
		t.Errorf("max concurrent holders = %d, want 1", maxInside)
	}
}

func TestMutexFIFOHandoff(t *testing.T) {
	s := New(1)
	var order []int
	s.Run(func() {
		mu := s.NewMutex()
		mu.Lock()
		g := env.GoEach(s, "w", 5, func(i int) {
			// Workers are spawned in index order and block in that order.
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
		s.Sleep(time.Millisecond) // let all workers enqueue
		mu.Unlock()
		g.Wait()
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("acquisition order %v, want FIFO", order)
		}
	}
}

func TestTryLock(t *testing.T) {
	s := New(1)
	s.Run(func() {
		mu := s.NewMutex()
		if !mu.TryLock() {
			t.Error("TryLock on free mutex failed")
		}
		got, ran := false, false
		s.Go("other", func() {
			got = mu.TryLock()
			ran = true
		})
		s.Sleep(time.Millisecond)
		if !ran {
			t.Fatal("other task never ran")
		}
		if got {
			t.Error("TryLock on held mutex succeeded")
		}
		mu.Unlock()
	})
}

func TestCondSignalWakesFIFO(t *testing.T) {
	s := New(1)
	var woke []int
	s.Run(func() {
		mu := s.NewMutex()
		cond := s.NewCond(mu)
		ready := 0
		g := env.GoEach(s, "waiter", 3, func(i int) {
			mu.Lock()
			ready++
			cond.Wait()
			woke = append(woke, i)
			mu.Unlock()
		})
		for {
			mu.Lock()
			r := ready
			mu.Unlock()
			if r == 3 {
				break
			}
			s.Sleep(time.Millisecond)
		}
		for i := 0; i < 3; i++ {
			mu.Lock()
			cond.Signal()
			mu.Unlock()
			s.Sleep(time.Millisecond)
		}
		g.Wait()
	})
	for i, v := range woke {
		if v != i {
			t.Fatalf("wake order %v, want FIFO", woke)
		}
	}
}

func TestCondBroadcast(t *testing.T) {
	s := New(2)
	woken := 0
	s.Run(func() {
		mu := s.NewMutex()
		cond := s.NewCond(mu)
		stop := false
		g := env.GoEach(s, "waiter", 4, func(int) {
			mu.Lock()
			for !stop {
				cond.Wait()
			}
			woken++
			mu.Unlock()
		})
		s.Sleep(time.Millisecond)
		mu.Lock()
		stop = true
		cond.Broadcast()
		mu.Unlock()
		g.Wait()
	})
	if woken != 4 {
		t.Errorf("woken = %d, want 4", woken)
	}
}

func TestAfterFunc(t *testing.T) {
	s := New(1)
	var fired time.Duration
	s.Run(func() {
		done := s.NewChan(1)
		s.AfterFunc(30*time.Millisecond, func() {
			fired = s.Now()
			done.Send(struct{}{})
		})
		done.Recv()
	})
	if fired != 30*time.Millisecond {
		t.Errorf("fired at %v, want 30ms", fired)
	}
}

func TestAfterFuncStop(t *testing.T) {
	s := New(1)
	firedCount := 0
	s.Run(func() {
		tm := s.AfterFunc(10*time.Millisecond, func() { firedCount++ })
		if !tm.Stop() {
			t.Error("Stop returned false on pending timer")
		}
		s.Sleep(50 * time.Millisecond)
		if tm.Stop() {
			t.Error("second Stop returned true")
		}
	})
	if firedCount != 0 {
		t.Errorf("stopped timer fired %d times", firedCount)
	}
}

func TestChanBlockingAndClose(t *testing.T) {
	s := New(2)
	var got []int
	var sendAfterClose bool
	s.Run(func() {
		ch := s.NewChan(2)
		g := env.GoEach(s, "producer", 1, func(int) {
			for i := 0; i < 5; i++ {
				ch.Send(i)
			}
			ch.Close()
			sendAfterClose = ch.Send(99)
		})
		for {
			v, ok := ch.Recv()
			if !ok {
				break
			}
			got = append(got, v.(int))
			s.Sleep(time.Millisecond) // force producer to block on the full queue
		}
		g.Wait()
	})
	if len(got) != 5 {
		t.Fatalf("received %v, want 5 values", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("received %v, want 0..4 in order", got)
		}
	}
	if sendAfterClose {
		t.Error("Send after Close returned true")
	}
}

func TestDeterminism(t *testing.T) {
	// Two runs of an identical mixed workload must produce identical
	// observation logs and identical final virtual times.
	run := func() (string, time.Duration) {
		s := New(3)
		var log strings.Builder
		var end time.Duration
		s.Run(func() {
			mu := s.NewMutex()
			ch := s.NewChan(4)
			g := env.GoEach(s, "w", 6, func(i int) {
				for j := 0; j < 4; j++ {
					s.Compute(time.Duration(i+1) * time.Millisecond)
					mu.Lock()
					fmt.Fprintf(&log, "%d.%d@%v ", i, j, s.Now())
					mu.Unlock()
					ch.Send(i)
				}
			})
			for k := 0; k < 24; k++ {
				ch.Recv()
			}
			g.Wait()
			end = s.Now()
		})
		return log.String(), end
	}
	log1, end1 := run()
	log2, end2 := run()
	if log1 != log2 {
		t.Errorf("logs differ:\n%s\n%s", log1, log2)
	}
	if end1 != end2 {
		t.Errorf("end times differ: %v vs %v", end1, end2)
	}
}

func TestDeadlockPanics(t *testing.T) {
	s := New(1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		if !strings.Contains(fmt.Sprint(r), "deadlock") {
			t.Errorf("panic = %v, want deadlock diagnostics", r)
		}
	}()
	s.Run(func() {
		mu := s.NewMutex()
		mu.Lock()
		mu.Lock() // self-deadlock, no timers pending
	})
}

func TestTaskPanicPropagates(t *testing.T) {
	s := New(1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate from task")
		}
		if !strings.Contains(fmt.Sprint(r), "boom") {
			t.Errorf("panic = %v, want to contain 'boom'", r)
		}
	}()
	s.Run(func() {
		s.Go("bad", func() { panic("boom") })
		s.Sleep(time.Hour)
	})
}

func TestRunKillsLeftoverTasks(t *testing.T) {
	// A task blocked forever must not prevent Run from returning, and its
	// goroutine must be torn down (observed via the deferred marker).
	s := New(1)
	cleaned := make(chan struct{})
	s.Run(func() {
		mu := s.NewMutex()
		mu.Lock()
		s.Go("stuck", func() {
			defer close(cleaned)
			mu.Lock()
		})
		s.Sleep(time.Millisecond)
	})
	select {
	case <-cleaned:
	case <-time.After(5 * time.Second):
		t.Fatal("leftover task was not torn down")
	}
}

func TestSleepZeroYields(t *testing.T) {
	s := New(1)
	var order []string
	s.Run(func() {
		s.Go("other", func() { order = append(order, "other") })
		s.Sleep(0)
		order = append(order, "main")
	})
	if len(order) != 2 || order[0] != "other" || order[1] != "main" {
		t.Errorf("order = %v, want [other main]", order)
	}
}

func TestNestedSpawnAndJoin(t *testing.T) {
	s := New(4)
	total := 0
	s.Run(func() {
		mu := s.NewMutex()
		outer := env.GoEach(s, "outer", 3, func(int) {
			inner := env.GoEach(s, "inner", 3, func(int) {
				s.Compute(time.Millisecond)
				mu.Lock()
				total++
				mu.Unlock()
			})
			inner.Wait()
		})
		outer.Wait()
	})
	if total != 9 {
		t.Errorf("total = %d, want 9", total)
	}
}

func TestMachinesAreIndependentCPUPools(t *testing.T) {
	// Two machines with 1 core each: two concurrent computes on DIFFERENT
	// machines overlap; two on the SAME machine serialize.
	s := New(1)
	m1 := s.AddMachine(1)
	var sameElapsed, crossElapsed time.Duration
	s.Run(func() {
		start := s.Now()
		g := env.NewGroup(s)
		g.Add(2)
		s.Go("a", func() { defer g.Done(); s.Compute(10 * time.Millisecond) })
		s.Go("b", func() { defer g.Done(); s.Compute(10 * time.Millisecond) })
		g.Wait()
		sameElapsed = s.Now() - start

		start = s.Now()
		g2 := env.NewGroup(s)
		g2.Add(2)
		s.Go("c", func() { defer g2.Done(); s.Compute(10 * time.Millisecond) })
		s.GoOn(m1, "d", func() { defer g2.Done(); s.Compute(10 * time.Millisecond) })
		g2.Wait()
		crossElapsed = s.Now() - start
	})
	if sameElapsed != 20*time.Millisecond {
		t.Errorf("same machine: %v, want 20ms (serialized)", sameElapsed)
	}
	if crossElapsed != 10*time.Millisecond {
		t.Errorf("cross machine: %v, want 10ms (parallel)", crossElapsed)
	}
}

func TestMachineInheritedBySpawnedTasks(t *testing.T) {
	s := New(1)
	m1 := s.AddMachine(1)
	var elapsed time.Duration
	s.Run(func() {
		g := env.NewGroup(s)
		g.Add(1)
		s.GoOn(m1, "parent", func() {
			defer g.Done()
			inner := env.GoEach(s, "child", 2, func(int) {
				s.Compute(10 * time.Millisecond)
			})
			inner.Wait()
		})
		start := s.Now()
		g.Wait()
		elapsed = s.Now() - start
	})
	// Both children inherited machine 1 (1 core): serialized to 20ms.
	if elapsed != 20*time.Millisecond {
		t.Errorf("children elapsed %v, want 20ms on the inherited 1-core machine", elapsed)
	}
}
