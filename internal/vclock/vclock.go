// Package vclock implements the vector clocks Rex uses to prune causally
// redundant edges at record time (§4.2 of the paper).
//
// Each logical thread maintains a vector clock over all threads; every
// shared resource carries a snapshot of its last releaser's clock. When a
// thread is about to record a causal edge from event e to its own next
// event, the edge is redundant — implied by already-recorded edges plus
// intra-thread program order — exactly when the thread's current vector
// clock already covers e. The paper reports this pruning removes 58–99 % of
// causal edges.
package vclock

// VC is a vector clock: VC[t] is the highest clock of thread t known to
// happen before the owner's next event. Thread clocks start at 1; a zero
// entry means "nothing from that thread observed yet".
type VC []int32

// New returns a zeroed vector clock over n threads.
func New(n int) VC { return make(VC, n) }

// Clone returns an independent copy of v.
func (v VC) Clone() VC {
	c := make(VC, len(v))
	copy(c, v)
	return c
}

// Observe records that the owner has observed thread t up to clock.
func (v VC) Observe(t int32, clock int32) {
	if int(t) < len(v) && v[t] < clock {
		v[t] = clock
	}
}

// Join folds o into v element-wise (v becomes the pointwise max).
func (v VC) Join(o VC) {
	for i := range o {
		if i >= len(v) {
			break
		}
		if v[i] < o[i] {
			v[i] = o[i]
		}
	}
}

// CopyFrom overwrites v with o. Both must have the same length.
func (v VC) CopyFrom(o VC) { copy(v, o) }

// Covers reports whether v already knows about event (t, clock) — i.e. the
// event happens before the owner's next event via recorded edges and
// program order, so an explicit edge from it would be redundant.
func (v VC) Covers(t int32, clock int32) bool {
	return int(t) < len(v) && v[t] >= clock
}
