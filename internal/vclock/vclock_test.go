package vclock

import (
	"testing"
	"testing/quick"
)

func TestObserveAndCovers(t *testing.T) {
	v := New(4)
	if v.Covers(2, 1) {
		t.Error("fresh clock covers (2,1)")
	}
	v.Observe(2, 5)
	if !v.Covers(2, 5) || !v.Covers(2, 1) {
		t.Error("Observe(2,5) not covered")
	}
	if v.Covers(2, 6) {
		t.Error("covers beyond observation")
	}
	v.Observe(2, 3) // must not regress
	if !v.Covers(2, 5) {
		t.Error("Observe regressed the clock")
	}
}

func TestCoversOutOfRange(t *testing.T) {
	v := New(2)
	if v.Covers(5, 1) {
		t.Error("covers an out-of-range thread")
	}
	v.Observe(5, 1) // must be a no-op, not a panic
}

func TestJoinIsPointwiseMax(t *testing.T) {
	a := VC{1, 5, 0}
	b := VC{3, 2, 7}
	a.Join(b)
	want := VC{3, 5, 7}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("Join = %v, want %v", a, want)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	a := VC{1, 2}
	b := a.Clone()
	b.Observe(0, 9)
	if a[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestQuickJoinProperties(t *testing.T) {
	// Join is idempotent, commutative (on equal lengths), and monotone.
	f := func(xs, ys []uint8) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			a[i], b[i] = int32(xs[i]), int32(ys[i])
		}
		ab := a.Clone()
		ab.Join(b)
		ba := b.Clone()
		ba.Join(a)
		for i := 0; i < n; i++ {
			if ab[i] != ba[i] {
				return false // commutative
			}
			if ab[i] < a[i] || ab[i] < b[i] {
				return false // monotone
			}
		}
		again := ab.Clone()
		again.Join(b)
		for i := 0; i < n; i++ {
			if again[i] != ab[i] {
				return false // idempotent
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
