// Package transport carries messages between replicas. The in-process
// Network implementation runs under any env.Env with configurable delay,
// loss, and partitions — deterministic under the simulator — and is what
// tests and benchmarks use; cmd/rexd wires the same interface to TCP.
package transport

import (
	"math/rand"
	"time"

	"rex/internal/env"
)

// Endpoint is one replica's attachment to the network.
type Endpoint interface {
	// Send delivers payload to replica `to` asynchronously. Delivery may
	// be delayed, dropped, or blocked by a partition; it is never
	// duplicated or corrupted. Sends to self are delivered like any other.
	Send(to int, payload []byte)
	// Recv blocks for the next incoming message; ok is false once the
	// endpoint is closed and drained.
	Recv() (payload []byte, from int, ok bool)
	// Close shuts the endpoint's inbox down.
	Close()
	// ID returns the replica id this endpoint belongs to.
	ID() int
}

// Network is an in-process message fabric between n replicas.
type Network struct {
	e  env.Env
	mu env.Mutex

	inboxes []env.Chan
	delay   time.Duration
	jitter  time.Duration
	lossP   float64
	rng     *rand.Rand
	cut     [][]bool       // cut[a][b]: messages a→b are dropped
	down    []bool         // down[i]: replica isolated (crashed)
	link    [][]delayRange // link[a][b]: per-link delay override (zero = none)

	bytesSent uint64
	msgsSent  uint64
	dropped   uint64
}

// NewNetwork creates a fabric for n replicas with the given base one-way
// delay. seed drives loss and jitter decisions deterministically.
func NewNetwork(e env.Env, n int, delay time.Duration, seed int64) *Network {
	nw := &Network{
		e:     e,
		mu:    e.NewMutex(),
		delay: delay,
		rng:   rand.New(rand.NewSource(seed)),
		cut:   make([][]bool, n),
		down:  make([]bool, n),
	}
	for i := 0; i < n; i++ {
		nw.inboxes = append(nw.inboxes, e.NewChan(0))
		nw.cut[i] = make([]bool, n)
	}
	nw.link = make([][]delayRange, n)
	for i := range nw.link {
		nw.link[i] = make([]delayRange, n)
	}
	return nw
}

// delayRange is a per-link delivery delay override; max <= min means a
// fixed delay of min.
type delayRange struct {
	min, max time.Duration
}

// Size returns the number of replicas the fabric connects.
func (nw *Network) Size() int {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return len(nw.inboxes)
}

// Grow extends the fabric to n replicas (no-op if already that large), so
// a cluster can attach joiners without rebuilding the network. New slots
// start connected and fault-free.
func (nw *Network) Grow(n int) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	for len(nw.inboxes) < n {
		nw.inboxes = append(nw.inboxes, nw.e.NewChan(0))
		nw.down = append(nw.down, false)
	}
	for i := range nw.cut {
		for len(nw.cut[i]) < n {
			nw.cut[i] = append(nw.cut[i], false)
		}
		for len(nw.link[i]) < n {
			nw.link[i] = append(nw.link[i], delayRange{})
		}
	}
	for len(nw.cut) < n {
		nw.cut = append(nw.cut, make([]bool, n))
		nw.link = append(nw.link, make([]delayRange, n))
	}
}

// Endpoint returns replica i's endpoint.
func (nw *Network) Endpoint(i int) Endpoint { return &netEndpoint{nw: nw, id: i} }

// Reset gives replica i a fresh inbox, discarding any queued or in-flight
// messages. Used when a crashed replica restarts: its previous endpoint
// was closed, and a restarted process starts with an empty socket.
func (nw *Network) Reset(i int) {
	nw.mu.Lock()
	nw.inboxes[i].Close()
	nw.inboxes[i] = env.NewChanFor(nw.e, 0)
	nw.mu.Unlock()
}

// inbox returns the current inbox of replica i.
func (nw *Network) inbox(i int) env.Chan {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.inboxes[i]
}

// SetLoss sets the independent drop probability for each message.
func (nw *Network) SetLoss(p float64) {
	nw.mu.Lock()
	nw.lossP = p
	nw.mu.Unlock()
}

// SetJitter sets the maximum extra random delivery delay.
func (nw *Network) SetJitter(d time.Duration) {
	nw.mu.Lock()
	nw.jitter = d
	nw.mu.Unlock()
}

// SetDelay overrides the delivery delay of the directed link a→b with a
// range [min, max). max <= min pins the link to a fixed delay of min; a
// zero range restores the network-wide base delay. The extra delay inside
// the range is drawn from the network's seeded rng, so a whole schedule of
// slow-link asymmetries replays identically from the same seed.
func (nw *Network) SetDelay(a, b int, min, max time.Duration) {
	nw.mu.Lock()
	nw.link[a][b] = delayRange{min: min, max: max}
	nw.mu.Unlock()
}

// Heal clears every fault the network carries — partitions, loss, jitter,
// and per-link delay overrides — leaving only the base delay. Crash
// isolation (Isolate) is replica state, not link state, and is untouched.
func (nw *Network) Heal() {
	nw.mu.Lock()
	for a := range nw.cut {
		for b := range nw.cut[a] {
			nw.cut[a][b] = false
			nw.link[a][b] = delayRange{}
		}
	}
	nw.lossP = 0
	nw.jitter = 0
	nw.mu.Unlock()
}

// SetPartition blocks or unblocks the directed link a→b.
func (nw *Network) SetPartition(a, b int, blocked bool) {
	nw.mu.Lock()
	nw.cut[a][b] = blocked
	nw.mu.Unlock()
}

// Isolate cuts replica i off from the network in both directions (a crash
// from the others' point of view). Reconnect with connected=true.
func (nw *Network) Isolate(i int, isolated bool) {
	nw.mu.Lock()
	nw.down[i] = isolated
	nw.mu.Unlock()
}

// Stats returns cumulative message and byte counts (delivered messages
// only) and the number of dropped messages.
func (nw *Network) Stats() (msgs, bytes, dropped uint64) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.msgsSent, nw.bytesSent, nw.dropped
}

type delivery struct {
	payload []byte
	from    int
}

type netEndpoint struct {
	nw *Network
	id int
}

func (ep *netEndpoint) ID() int { return ep.id }

func (ep *netEndpoint) Send(to int, payload []byte) {
	nw := ep.nw
	if to < 0 {
		panic("transport: send to negative replica id")
	}
	// An id beyond the fabric is dropped, not a panic: with dynamic
	// membership a replica can briefly hold a config naming a joiner the
	// test harness has not attached yet.
	if to == ep.id {
		// Local delivery (e.g. a leader's message to its own acceptor)
		// bypasses the network: no delay, no loss.
		nw.mu.Lock()
		if to >= len(nw.inboxes) {
			nw.dropped++
			nw.mu.Unlock()
			return
		}
		down := nw.down[ep.id]
		var inbox env.Chan
		if !down {
			nw.msgsSent++
			nw.bytesSent += uint64(len(payload))
			inbox = nw.inboxes[to]
		}
		nw.mu.Unlock()
		if inbox != nil {
			inbox.TrySend(delivery{payload: payload, from: ep.id})
		}
		return
	}
	nw.mu.Lock()
	if to >= len(nw.inboxes) {
		nw.dropped++
		nw.mu.Unlock()
		return
	}
	if nw.down[ep.id] || nw.down[to] || nw.cut[ep.id][to] {
		nw.dropped++
		nw.mu.Unlock()
		return
	}
	if nw.lossP > 0 && nw.rng.Float64() < nw.lossP {
		nw.dropped++
		nw.mu.Unlock()
		return
	}
	d := nw.delay
	if lr := nw.link[ep.id][to]; lr.min > 0 || lr.max > 0 {
		d = lr.min
		if lr.max > lr.min {
			d += time.Duration(nw.rng.Int63n(int64(lr.max - lr.min)))
		}
	}
	if nw.jitter > 0 {
		d += time.Duration(nw.rng.Int63n(int64(nw.jitter)))
	}
	nw.msgsSent++
	nw.bytesSent += uint64(len(payload))
	inbox := nw.inboxes[to]
	nw.mu.Unlock()

	msg := delivery{payload: payload, from: ep.id}
	if d <= 0 {
		inbox.TrySend(msg)
		return
	}
	nw.e.AfterFunc(d, func() {
		// Re-check liveness at delivery time: messages in flight to a
		// replica that crashed meanwhile are lost.
		nw.mu.Lock()
		drop := nw.down[to]
		nw.mu.Unlock()
		if !drop {
			inbox.TrySend(msg)
		}
	})
}

func (ep *netEndpoint) Recv() ([]byte, int, bool) {
	v, ok := ep.nw.inbox(ep.id).Recv()
	if !ok {
		return nil, 0, false
	}
	d := v.(delivery)
	return d.payload, d.from, true
}

func (ep *netEndpoint) Close() {
	ep.nw.inbox(ep.id).Close()
}
