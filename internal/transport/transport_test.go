package transport

import (
	"fmt"
	"testing"
	"time"

	"rex/internal/sim"
)

func TestDeliveryWithDelay(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		nw := NewNetwork(e, 2, 5*time.Millisecond, 1)
		a, b := nw.Endpoint(0), nw.Endpoint(1)
		start := e.Now()
		a.Send(1, []byte("hello"))
		payload, from, ok := b.Recv()
		if !ok || from != 0 || string(payload) != "hello" {
			t.Fatalf("Recv = %q,%d,%v", payload, from, ok)
		}
		if got := e.Now() - start; got != 5*time.Millisecond {
			t.Errorf("delivered after %v, want 5ms", got)
		}
	})
}

func TestSelfSendIsImmediate(t *testing.T) {
	e := sim.New(1)
	e.Run(func() {
		nw := NewNetwork(e, 2, 50*time.Millisecond, 1)
		a := nw.Endpoint(0)
		start := e.Now()
		a.Send(0, []byte("loop"))
		_, _, ok := a.Recv()
		if !ok {
			t.Fatal("self recv failed")
		}
		if got := e.Now() - start; got != 0 {
			t.Errorf("self delivery took %v, want 0", got)
		}
	})
}

func TestFIFOPerLink(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		nw := NewNetwork(e, 2, time.Millisecond, 1)
		a, b := nw.Endpoint(0), nw.Endpoint(1)
		for i := 0; i < 20; i++ {
			a.Send(1, []byte(fmt.Sprintf("%d", i)))
		}
		for i := 0; i < 20; i++ {
			payload, _, ok := b.Recv()
			if !ok || string(payload) != fmt.Sprintf("%d", i) {
				t.Fatalf("message %d = %q (ok=%v)", i, payload, ok)
			}
		}
	})
}

func TestPartitionBlocksDirected(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		nw := NewNetwork(e, 2, time.Millisecond, 1)
		a, b := nw.Endpoint(0), nw.Endpoint(1)
		nw.SetPartition(0, 1, true)
		a.Send(1, []byte("blocked"))
		b.Send(0, []byte("open"))
		payload, _, ok := a.Recv()
		if !ok || string(payload) != "open" {
			t.Fatalf("reverse direction broken: %q", payload)
		}
		e.Sleep(10 * time.Millisecond)
		if n := nw.inboxes[1].Len(); n != 0 {
			t.Errorf("partitioned link delivered %d messages", n)
		}
		nw.SetPartition(0, 1, false)
		a.Send(1, []byte("now"))
		payload, _, _ = b.Recv()
		if string(payload) != "now" {
			t.Errorf("after healing got %q", payload)
		}
	})
}

func TestIsolationDropsBothDirectionsAndInFlight(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		nw := NewNetwork(e, 2, 10*time.Millisecond, 1)
		a := nw.Endpoint(0)
		// Message in flight when the destination crashes: must be lost.
		a.Send(1, []byte("inflight"))
		e.Sleep(2 * time.Millisecond)
		nw.Isolate(1, true)
		e.Sleep(20 * time.Millisecond)
		if n := nw.inboxes[1].Len(); n != 0 {
			t.Errorf("crashed replica received %d in-flight messages", n)
		}
		nw.Isolate(1, false)
		a.Send(1, []byte("alive"))
		e.Sleep(20 * time.Millisecond)
		if n := nw.inboxes[1].Len(); n != 1 {
			t.Errorf("rejoined replica has %d queued, want 1", n)
		}
	})
}

func TestLossIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) uint64 {
		var dropped uint64
		e := sim.New(2)
		e.Run(func() {
			nw := NewNetwork(e, 2, time.Millisecond, seed)
			nw.SetLoss(0.5)
			a := nw.Endpoint(0)
			for i := 0; i < 100; i++ {
				a.Send(1, []byte("x"))
			}
			_, _, dropped = nw.Stats()
		})
		return dropped
	}
	if run(7) != run(7) {
		t.Error("same seed produced different loss patterns")
	}
	if run(7) == 0 {
		t.Error("50% loss dropped nothing")
	}
}

func TestStatsCountBytes(t *testing.T) {
	e := sim.New(1)
	e.Run(func() {
		nw := NewNetwork(e, 2, 0, 1)
		a := nw.Endpoint(0)
		a.Send(1, make([]byte, 100))
		a.Send(1, make([]byte, 50))
		msgs, bytes, _ := nw.Stats()
		if msgs != 2 || bytes != 150 {
			t.Errorf("stats = %d msgs %d bytes, want 2, 150", msgs, bytes)
		}
	})
}

func TestCloseUnblocksReceiver(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		nw := NewNetwork(e, 2, time.Millisecond, 1)
		b := nw.Endpoint(1)
		got := make(chan bool, 1)
		e.Go("rx", func() {
			_, _, ok := b.Recv()
			got <- ok
		})
		e.Sleep(time.Millisecond)
		b.Close()
		e.Sleep(time.Millisecond)
		select {
		case ok := <-got:
			if ok {
				t.Error("Recv reported ok after Close")
			}
		default:
			t.Error("receiver still blocked after Close")
		}
	})
}

func TestSetDelayOverridesPerLink(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		nw := NewNetwork(e, 2, time.Millisecond, 1)
		a, b := nw.Endpoint(0), nw.Endpoint(1)

		// A fixed override (max <= min) pins the directed link; the reverse
		// direction keeps the base delay — slow links are asymmetric.
		nw.SetDelay(0, 1, 40*time.Millisecond, 0)
		start := e.Now()
		a.Send(1, []byte("slow"))
		b.Recv()
		if got := e.Now() - start; got != 40*time.Millisecond {
			t.Errorf("overridden link delivered after %v, want 40ms", got)
		}
		start = e.Now()
		b.Send(0, []byte("base"))
		a.Recv()
		if got := e.Now() - start; got != time.Millisecond {
			t.Errorf("reverse link delivered after %v, want base 1ms", got)
		}

		// A range [min, max) stays inside its bounds.
		nw.SetDelay(0, 1, 10*time.Millisecond, 30*time.Millisecond)
		for i := 0; i < 5; i++ {
			start = e.Now()
			a.Send(1, []byte("jittered"))
			b.Recv()
			got := e.Now() - start
			if got < 10*time.Millisecond || got >= 30*time.Millisecond {
				t.Errorf("ranged delay %v outside [10ms, 30ms)", got)
			}
		}

		// Heal clears the override back to the base delay.
		nw.Heal()
		start = e.Now()
		a.Send(1, []byte("healed"))
		b.Recv()
		if got := e.Now() - start; got != time.Millisecond {
			t.Errorf("healed link delivered after %v, want base 1ms", got)
		}
	})
}

func TestSetDelayDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []time.Duration {
		var delays []time.Duration
		e := sim.New(2)
		e.Run(func() {
			nw := NewNetwork(e, 2, time.Millisecond, seed)
			nw.SetDelay(0, 1, time.Millisecond, 20*time.Millisecond)
			a, b := nw.Endpoint(0), nw.Endpoint(1)
			for i := 0; i < 10; i++ {
				start := e.Now()
				a.Send(1, []byte("x"))
				b.Recv()
				delays = append(delays, e.Now()-start)
			}
		})
		return delays
	}
	x, y := run(11), run(11)
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("same seed diverged at send %d: %v vs %v", i, x[i], y[i])
		}
	}
	z := run(12)
	same := true
	for i := range x {
		if x[i] != z[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical delay sequences")
	}
}
