package transport

import (
	"testing"
	"time"

	"rex/internal/sim"
)

func TestMuxRoutesChannels(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		nw := NewNetwork(e, 2, time.Millisecond, 1)
		muxA := NewMux(e, nw.Endpoint(0), 2)
		muxB := NewMux(e, nw.Endpoint(1), 2)
		defer muxA.Close()
		defer muxB.Close()

		muxA.Channel(0).Send(1, []byte("paxos"))
		muxA.Channel(1).Send(1, []byte("ctrl"))

		p, from, ok := muxB.Channel(0).Recv()
		if !ok || from != 0 || string(p) != "paxos" {
			t.Fatalf("channel 0 got %q from %d ok=%v", p, from, ok)
		}
		c, _, ok := muxB.Channel(1).Recv()
		if !ok || string(c) != "ctrl" {
			t.Fatalf("channel 1 got %q ok=%v", c, ok)
		}
	})
}

func TestMuxDropsUnroutable(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		nw := NewNetwork(e, 2, 0, 1)
		mux := NewMux(e, nw.Endpoint(1), 1)
		defer mux.Close()
		// A raw frame with an out-of-range channel tag must be dropped, not
		// crash the pump.
		nw.Endpoint(0).Send(1, []byte{7, 'x'})
		nw.Endpoint(0).Send(1, []byte{}) // empty frame
		nw.Endpoint(0).Send(1, []byte{0, 'o', 'k'})
		e.Sleep(time.Millisecond)
		p, _, ok := mux.Channel(0).Recv()
		if !ok || string(p) != "ok" {
			t.Fatalf("got %q ok=%v", p, ok)
		}
	})
}

func TestMuxCloseClosesChannels(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		nw := NewNetwork(e, 2, 0, 1)
		mux := NewMux(e, nw.Endpoint(0), 2)
		done := 0
		for ch := 0; ch < 2; ch++ {
			ch := ch
			e.Go("rx", func() {
				_, _, ok := mux.Channel(ch).Recv()
				if !ok {
					done++
				}
			})
		}
		e.Sleep(time.Millisecond)
		mux.Close()
		e.Sleep(time.Millisecond)
		if done != 2 {
			t.Errorf("%d channel receivers unblocked, want 2", done)
		}
	})
}

func TestMuxID(t *testing.T) {
	e := sim.New(1)
	e.Run(func() {
		nw := NewNetwork(e, 3, 0, 1)
		mux := NewMux(e, nw.Endpoint(2), 1)
		defer mux.Close()
		if got := mux.Channel(0).ID(); got != 2 {
			t.Errorf("channel ID = %d, want 2", got)
		}
	})
}
