package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"rex/internal/obs"
)

// TCPEndpoint implements Endpoint over TCP for real deployments
// (cmd/rexd). Peers dial lazily and reconnect on failure; a message that
// cannot be delivered is dropped, which the consensus engine tolerates.
// Use only under the real environment (it blocks OS threads).
//
// Concurrency design:
//   - ep.mu guards the closed flag and the accepted-connection set; it is
//     never held across network I/O.
//   - Each peer has its own tcpPeer with a write lock held across
//     dial+write, so one stalled or unreachable peer cannot block sends
//     to the others.
//   - Close stops the accept/read loops, closes their connections, and
//     waits for them (ep.wg) before closing the inbox, so no loop can
//     send on a closed channel.
type TCPEndpoint struct {
	id int
	ln net.Listener

	mu       sync.Mutex
	closed   bool
	accepted map[net.Conn]struct{}

	// peersMu guards the address book and peer slots, which change at
	// runtime as membership changes (SetPeer); never held across I/O.
	peersMu sync.Mutex
	addrs   map[int]string
	peers   map[int]*tcpPeer

	inbox chan tcpDelivery
	wg    sync.WaitGroup

	// Metrics (always collected; RegisterMetrics exports them).
	framesIn  *obs.Counter
	bytesIn   *obs.Counter
	framesOut *obs.Counter
	bytesOut  *obs.Counter
	drops     *obs.Counter // inbox overflow + undeliverable sends
	redials   *obs.Counter // connections (re)established
}

// tcpPeer is one outbound connection slot. writeMu serializes dialing and
// writing to this peer only; connMu guards the conn pointer so Close can
// shut a stalled write down without taking writeMu.
type tcpPeer struct {
	writeMu sync.Mutex
	wbuf    []byte // frame assembly buffer, guarded by writeMu

	connMu sync.Mutex
	conn   net.Conn
}

type tcpDelivery struct {
	payload []byte
	from    int
}

// Frame: [4-byte big-endian length][4-byte big-endian sender id][payload].
const tcpMaxFrame = 64 << 20

// ListenTCP starts an endpoint for replica id; addrs[i] is replica i's
// listen address.
func ListenTCP(id int, addrs []string) (*TCPEndpoint, error) {
	if id < 0 || id >= len(addrs) {
		return nil, fmt.Errorf("transport: id %d out of range for %d peers", id, len(addrs))
	}
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, err
	}
	ep := &TCPEndpoint{
		id:       id,
		ln:       ln,
		accepted: make(map[net.Conn]struct{}),
		addrs:    make(map[int]string, len(addrs)),
		peers:    make(map[int]*tcpPeer, len(addrs)),
		inbox:    make(chan tcpDelivery, 4096),

		framesIn:  obs.NewCounter(),
		bytesIn:   obs.NewCounter(),
		framesOut: obs.NewCounter(),
		bytesOut:  obs.NewCounter(),
		drops:     obs.NewCounter(),
		redials:   obs.NewCounter(),
	}
	for i, a := range addrs {
		if a == "" {
			continue // unknown peer; SetPeer fills it in later
		}
		ep.addrs[i] = a
		ep.peers[i] = &tcpPeer{}
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// ID implements Endpoint.
func (ep *TCPEndpoint) ID() int { return ep.id }

// SetPeer installs or updates the address for peer id, so deployments can
// attach joiners (and re-point replaced ids) as membership changes commit.
// An address change drops the cached connection; the next Send re-dials.
// An empty addr removes the peer.
func (ep *TCPEndpoint) SetPeer(id int, addr string) {
	if id < 0 || id == ep.id {
		return
	}
	ep.peersMu.Lock()
	old, had := ep.addrs[id]
	var stale net.Conn
	if addr == "" {
		delete(ep.addrs, id)
		if p := ep.peers[id]; p != nil {
			p.connMu.Lock()
			stale = p.conn
			p.conn = nil
			p.connMu.Unlock()
		}
		delete(ep.peers, id)
	} else {
		ep.addrs[id] = addr
		if _, ok := ep.peers[id]; !ok {
			ep.peers[id] = &tcpPeer{}
		}
		if had && old != addr {
			p := ep.peers[id]
			p.connMu.Lock()
			stale = p.conn
			p.conn = nil
			p.connMu.Unlock()
		}
	}
	ep.peersMu.Unlock()
	if stale != nil {
		stale.Close()
	}
}

// Addr returns the bound listen address.
func (ep *TCPEndpoint) Addr() net.Addr { return ep.ln.Addr() }

// RegisterMetrics exports the endpoint's counters and inbox depth gauge
// into reg under tcp_-prefixed names (see DESIGN.md "Observability").
func (ep *TCPEndpoint) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterCounter("tcp_frames_in_total", ep.framesIn)
	reg.RegisterCounter("tcp_bytes_in_total", ep.bytesIn)
	reg.RegisterCounter("tcp_frames_out_total", ep.framesOut)
	reg.RegisterCounter("tcp_bytes_out_total", ep.bytesOut)
	reg.RegisterCounter("tcp_drops_total", ep.drops)
	reg.RegisterCounter("tcp_redials_total", ep.redials)
	reg.RegisterGaugeFunc("tcp_inbox_depth", func() int64 { return int64(len(ep.inbox)) })
}

func (ep *TCPEndpoint) acceptLoop() {
	defer ep.wg.Done()
	for {
		conn, err := ep.ln.Accept()
		if err != nil {
			return
		}
		// Register the connection before spawning its read loop so Close
		// can unblock it; wg.Add under mu with closed==false is ordered
		// before Close's wg.Wait.
		ep.mu.Lock()
		if ep.closed {
			ep.mu.Unlock()
			conn.Close()
			return
		}
		ep.accepted[conn] = struct{}{}
		ep.wg.Add(1)
		ep.mu.Unlock()
		go ep.readLoop(conn)
	}
}

func (ep *TCPEndpoint) readLoop(conn net.Conn) {
	defer func() {
		ep.mu.Lock()
		delete(ep.accepted, conn)
		ep.mu.Unlock()
		conn.Close()
		ep.wg.Done()
	}()
	for {
		payload, from, err := readFrame(conn)
		if err != nil {
			return
		}
		// No closed-check is needed here: Close closes this connection and
		// waits for this loop before closing the inbox, so the channel is
		// always open when this send runs.
		select {
		case ep.inbox <- tcpDelivery{payload: payload, from: from}:
			ep.framesIn.Inc()
			ep.bytesIn.Add(uint64(len(payload)))
		default:
			// Inbox overflow: drop, like a congested network.
			ep.drops.Inc()
		}
	}
}

func readFrame(r io.Reader) ([]byte, int, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	from := int(binary.BigEndian.Uint32(hdr[4:8]))
	if n > tcpMaxFrame {
		return nil, 0, errors.New("transport: oversized frame")
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, err
	}
	return payload, from, nil
}

// appendFrame assembles a frame into buf (reusing its capacity) so header
// and payload go out in one Write: no partial-frame interleaving is
// possible even if a connection were shared, and the syscall count halves.
func appendFrame(buf []byte, from int, payload []byte) []byte {
	buf = buf[:0]
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(from))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

func (ep *TCPEndpoint) isClosed() bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.closed
}

// getConn returns the peer's live connection, dialing if needed. Called
// with p.writeMu held; the dial blocks only senders to this peer.
func (ep *TCPEndpoint) getConn(to int, p *tcpPeer) (net.Conn, error) {
	p.connMu.Lock()
	c := p.conn
	p.connMu.Unlock()
	if c != nil {
		return c, nil
	}
	if ep.isClosed() {
		return nil, errors.New("transport: endpoint closed")
	}
	ep.peersMu.Lock()
	addr := ep.addrs[to]
	ep.peersMu.Unlock()
	if addr == "" {
		return nil, errors.New("transport: no address for peer")
	}
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	p.connMu.Lock()
	// Recheck closed while holding connMu: Close iterates peers under
	// connMu after setting closed, so either it sees this conn and closes
	// it, or we see closed here and back out.
	if ep.isClosed() {
		p.connMu.Unlock()
		c.Close()
		return nil, errors.New("transport: endpoint closed")
	}
	p.conn = c
	p.connMu.Unlock()
	ep.redials.Inc()
	return c, nil
}

// dropConn discards a failed connection so the next Send re-dials.
func (p *tcpPeer) dropConn(c net.Conn) {
	p.connMu.Lock()
	if p.conn == c {
		p.conn = nil
	}
	p.connMu.Unlock()
	c.Close()
}

// Send implements Endpoint. Failures drop the message and the cached
// connection; the next Send re-dials. Sends to different peers proceed
// independently: only senders to the same peer serialize.
func (ep *TCPEndpoint) Send(to int, payload []byte) {
	if to < 0 {
		ep.drops.Inc()
		return
	}
	if to == ep.id {
		// Guard the self-delivery send with ep.mu: Close sets closed under
		// the same mutex before it closes the inbox, so a send that passed
		// the check completes before the channel can close.
		ep.mu.Lock()
		if ep.closed {
			ep.mu.Unlock()
			return
		}
		select {
		case ep.inbox <- tcpDelivery{payload: payload, from: ep.id}:
			ep.framesIn.Inc()
			ep.bytesIn.Add(uint64(len(payload)))
		default:
			ep.drops.Inc()
		}
		ep.mu.Unlock()
		return
	}
	ep.peersMu.Lock()
	p := ep.peers[to]
	ep.peersMu.Unlock()
	if p == nil {
		ep.drops.Inc()
		return
	}
	p.writeMu.Lock()
	defer p.writeMu.Unlock()
	c, err := ep.getConn(to, p)
	if err != nil {
		ep.drops.Inc()
		return
	}
	p.wbuf = appendFrame(p.wbuf, ep.id, payload)
	if _, err := c.Write(p.wbuf); err != nil {
		p.dropConn(c)
		ep.drops.Inc()
		return
	}
	ep.framesOut.Inc()
	ep.bytesOut.Add(uint64(len(payload)))
}

// Recv implements Endpoint.
func (ep *TCPEndpoint) Recv() ([]byte, int, bool) {
	d, ok := <-ep.inbox
	if !ok {
		return nil, 0, false
	}
	return d.payload, d.from, true
}

// Close implements Endpoint. It stops the accept and read loops, closes
// every connection (unblocking stalled reads and writes), waits for the
// loops to exit, and only then closes the inbox — so no concurrent Send
// or readLoop can hit a closed channel.
func (ep *TCPEndpoint) Close() {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return
	}
	ep.closed = true
	conns := make([]net.Conn, 0, len(ep.accepted))
	for c := range ep.accepted {
		conns = append(conns, c)
	}
	ep.mu.Unlock()

	ep.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	ep.peersMu.Lock()
	peers := make([]*tcpPeer, 0, len(ep.peers))
	for _, p := range ep.peers {
		peers = append(peers, p)
	}
	ep.peersMu.Unlock()
	for _, p := range peers {
		p.connMu.Lock()
		if p.conn != nil {
			p.conn.Close()
			p.conn = nil
		}
		p.connMu.Unlock()
	}
	ep.wg.Wait()
	close(ep.inbox)
}
