package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPEndpoint implements Endpoint over TCP for real deployments
// (cmd/rexd). Peers dial lazily and reconnect on failure; a message that
// cannot be delivered is dropped, which the consensus engine tolerates.
// Use only under the real environment (it blocks OS threads).
type TCPEndpoint struct {
	id    int
	addrs []string
	ln    net.Listener

	mu     sync.Mutex
	conns  map[int]net.Conn
	closed bool

	inbox chan tcpDelivery
	wg    sync.WaitGroup
}

type tcpDelivery struct {
	payload []byte
	from    int
}

// Frame: [4-byte big-endian length][4-byte big-endian sender id][payload].
const tcpMaxFrame = 64 << 20

// ListenTCP starts an endpoint for replica id; addrs[i] is replica i's
// listen address.
func ListenTCP(id int, addrs []string) (*TCPEndpoint, error) {
	if id < 0 || id >= len(addrs) {
		return nil, fmt.Errorf("transport: id %d out of range for %d peers", id, len(addrs))
	}
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, err
	}
	ep := &TCPEndpoint{
		id:    id,
		addrs: addrs,
		ln:    ln,
		conns: make(map[int]net.Conn),
		inbox: make(chan tcpDelivery, 4096),
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// ID implements Endpoint.
func (ep *TCPEndpoint) ID() int { return ep.id }

// Addr returns the bound listen address.
func (ep *TCPEndpoint) Addr() net.Addr { return ep.ln.Addr() }

func (ep *TCPEndpoint) acceptLoop() {
	defer ep.wg.Done()
	for {
		conn, err := ep.ln.Accept()
		if err != nil {
			return
		}
		ep.wg.Add(1)
		go ep.readLoop(conn)
	}
}

func (ep *TCPEndpoint) readLoop(conn net.Conn) {
	defer ep.wg.Done()
	defer conn.Close()
	for {
		payload, from, err := readFrame(conn)
		if err != nil {
			return
		}
		ep.mu.Lock()
		closed := ep.closed
		ep.mu.Unlock()
		if closed {
			return
		}
		select {
		case ep.inbox <- tcpDelivery{payload: payload, from: from}:
		default:
			// Inbox overflow: drop, like a congested network.
		}
	}
}

func readFrame(r io.Reader) ([]byte, int, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	from := int(binary.BigEndian.Uint32(hdr[4:8]))
	if n > tcpMaxFrame {
		return nil, 0, errors.New("transport: oversized frame")
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, err
	}
	return payload, from, nil
}

func writeFrame(w io.Writer, from int, payload []byte) error {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(from))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func (ep *TCPEndpoint) conn(to int) (net.Conn, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return nil, errors.New("transport: endpoint closed")
	}
	if c, ok := ep.conns[to]; ok {
		return c, nil
	}
	c, err := net.DialTimeout("tcp", ep.addrs[to], 2*time.Second)
	if err != nil {
		return nil, err
	}
	ep.conns[to] = c
	return c, nil
}

// Send implements Endpoint. Failures drop the message and the cached
// connection; the next Send re-dials.
func (ep *TCPEndpoint) Send(to int, payload []byte) {
	if to == ep.id {
		select {
		case ep.inbox <- tcpDelivery{payload: payload, from: ep.id}:
		default:
		}
		return
	}
	c, err := ep.conn(to)
	if err != nil {
		return
	}
	ep.mu.Lock()
	err = writeFrame(c, ep.id, payload)
	if err != nil {
		c.Close()
		delete(ep.conns, to)
	}
	ep.mu.Unlock()
}

// Recv implements Endpoint.
func (ep *TCPEndpoint) Recv() ([]byte, int, bool) {
	d, ok := <-ep.inbox
	if !ok {
		return nil, 0, false
	}
	return d.payload, d.from, true
}

// Close implements Endpoint.
func (ep *TCPEndpoint) Close() {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return
	}
	ep.closed = true
	for _, c := range ep.conns {
		c.Close()
	}
	ep.mu.Unlock()
	ep.ln.Close()
	close(ep.inbox)
}
