package transport

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"rex/internal/obs"
)

// listenLocal starts n endpoints on loopback with OS-assigned ports. The
// trick: bind placeholder listeners first to learn free ports, then start
// the real endpoints on those addresses.
func listenLocal(t *testing.T, n int) []*TCPEndpoint {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	eps := make([]*TCPEndpoint, n)
	for i := range eps {
		lns[i].Close()
		ep, err := ListenTCP(i, addrs)
		if err != nil {
			t.Fatalf("ListenTCP(%d): %v", i, err)
		}
		eps[i] = ep
	}
	return eps
}

func TestTCPRoundTrip(t *testing.T) {
	eps := listenLocal(t, 2)
	defer eps[0].Close()
	defer eps[1].Close()

	deadline := time.Now().Add(5 * time.Second)
	got := make(chan string, 1)
	go func() {
		payload, from, ok := eps[1].Recv()
		if ok {
			got <- fmt.Sprintf("%s/%d", payload, from)
		} else {
			got <- "closed"
		}
	}()
	// The first sends may race the listener goroutine; retry until the
	// frame lands.
	for {
		eps[0].Send(1, []byte("hello"))
		select {
		case s := <-got:
			if s != "hello/0" {
				t.Fatalf("got %q, want hello/0", s)
			}
			return
		case <-time.After(50 * time.Millisecond):
			if time.Now().After(deadline) {
				t.Fatal("timed out waiting for round trip")
			}
		}
	}
}

func TestTCPSelfSend(t *testing.T) {
	eps := listenLocal(t, 1)
	defer eps[0].Close()
	eps[0].Send(0, []byte("loop"))
	payload, from, ok := eps[0].Recv()
	if !ok || string(payload) != "loop" || from != 0 {
		t.Fatalf("self-send got (%q, %d, %v)", payload, from, ok)
	}
}

// TestTCPCloseTorture hammers Send (remote + self), Recv, and Close
// concurrently. On the seed implementation this panics with "send on
// closed channel" under -race; with the reworked Close (stop loops,
// wg.Wait, then close inbox) it must survive.
func TestTCPCloseTorture(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		eps := listenLocal(t, 3)
		var wg sync.WaitGroup

		// Drain every inbox until close.
		for _, ep := range eps {
			wg.Add(1)
			go func(ep *TCPEndpoint) {
				defer wg.Done()
				for {
					if _, _, ok := ep.Recv(); !ok {
						return
					}
				}
			}(ep)
		}
		// Senders: each endpoint blasts all peers and itself.
		stop := make(chan struct{})
		for _, ep := range eps {
			for to := 0; to < 3; to++ {
				wg.Add(1)
				go func(ep *TCPEndpoint, to int) {
					defer wg.Done()
					payload := []byte("torture")
					for {
						select {
						case <-stop:
							return
						default:
							ep.Send(to, payload)
						}
					}
				}(ep, to)
			}
		}
		// Let traffic flow, then close everything while sends are in
		// flight. Close must be idempotent and race-free.
		time.Sleep(5 * time.Millisecond)
		var cwg sync.WaitGroup
		for _, ep := range eps {
			cwg.Add(1)
			go func(ep *TCPEndpoint) {
				defer cwg.Done()
				ep.Close()
				ep.Close() // second close is a no-op
			}(ep)
		}
		cwg.Wait()
		close(stop)
		wg.Wait()
	}
}

// TestTCPSlowPeerDoesNotBlockOthers pins the head-of-line fix: with one
// peer address unreachable (dial hangs/fails), sends to a healthy peer
// must still go through promptly.
func TestTCPSlowPeerDoesNotBlockOthers(t *testing.T) {
	// Three slots: 0 and 1 live, 2 is a dead address nothing listens on.
	lns := make([]net.Listener, 3)
	addrs := make([]string, 3)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	lns[2].Close() // peer 2 stays dead
	var eps [2]*TCPEndpoint
	for i := 0; i < 2; i++ {
		lns[i].Close()
		ep, err := ListenTCP(i, addrs)
		if err != nil {
			t.Fatalf("ListenTCP(%d): %v", i, err)
		}
		eps[i] = ep
	}
	ep := eps[0]
	defer eps[0].Close()
	defer eps[1].Close()

	// Keep hammering the dead peer from background goroutines.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					ep.Send(2, []byte("void"))
				}
			}
		}()
	}

	// Sends to the live peer must complete quickly despite the stalled
	// dials to peer 2.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 50; i++ {
			ep.Send(1, []byte("alive"))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("sends to healthy peer blocked behind dead peer")
	}
	close(stop)
	wg.Wait()
}

func TestTCPMetricsRegistration(t *testing.T) {
	eps := listenLocal(t, 2)
	defer eps[1].Close()
	reg := obs.NewRegistry()
	eps[0].RegisterMetrics(reg)
	eps[0].Send(1, []byte("count-me"))
	eps[0].Close()

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		"tcp_frames_out_total", "tcp_bytes_out_total", "tcp_drops_total",
		"tcp_frames_in_total", "tcp_inbox_depth",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("metrics dump missing %s\n---\n%s", name, out)
		}
	}
	s := reg.Snapshot()
	if s.Counter("tcp_frames_out_total")+s.Counter("tcp_drops_total") == 0 {
		t.Error("send recorded neither a frame nor a drop")
	}
}
