package transport

import "rex/internal/env"

// Mux multiplexes several logical channels over one Endpoint by prefixing
// each payload with a channel tag. Rex uses channel 0 for Paxos and
// channel 1 for its control plane (checkpoint transfer, replay status).
type Mux struct {
	ep   Endpoint
	subs []*muxEndpoint
}

// NewMux wraps ep into n logical channels and starts the demux pump.
func NewMux(e env.Env, ep Endpoint, n int) *Mux {
	m := &Mux{ep: ep}
	for ch := 0; ch < n; ch++ {
		m.subs = append(m.subs, &muxEndpoint{
			mux:   m,
			tag:   byte(ch),
			inbox: e.NewChan(0),
		})
	}
	e.Go("transport-mux", func() {
		for {
			payload, from, ok := ep.Recv()
			if !ok {
				for _, s := range m.subs {
					s.inbox.Close()
				}
				return
			}
			if len(payload) == 0 || int(payload[0]) >= len(m.subs) {
				continue // unroutable
			}
			m.subs[payload[0]].inbox.TrySend(delivery{payload: payload[1:], from: from})
		}
	})
	return m
}

// Channel returns logical channel ch as an Endpoint.
func (m *Mux) Channel(ch int) Endpoint { return m.subs[ch] }

// Close closes the underlying endpoint (which stops the pump and closes
// every channel).
func (m *Mux) Close() { m.ep.Close() }

type muxEndpoint struct {
	mux   *Mux
	tag   byte
	inbox env.Chan
}

func (s *muxEndpoint) ID() int { return s.mux.ep.ID() }

func (s *muxEndpoint) Send(to int, payload []byte) {
	buf := make([]byte, 0, len(payload)+1)
	buf = append(buf, s.tag)
	buf = append(buf, payload...)
	s.mux.ep.Send(to, buf)
}

func (s *muxEndpoint) Recv() ([]byte, int, bool) {
	v, ok := s.inbox.Recv()
	if !ok {
		return nil, 0, false
	}
	d := v.(delivery)
	return d.payload, d.from, true
}

func (s *muxEndpoint) Close() { s.inbox.Close() }
