// Package obs is Rex's dependency-free metrics substrate: atomic counters,
// gauges, and fixed-bucket latency histograms with percentile snapshots.
// Every primitive is safe to call from hot paths (an Observe or Add is a
// few atomic operations, ~tens of ns) and safe under both the real
// environment and the simulator — metrics never block, never allocate
// after construction, and take no locks on the record path.
//
// Metric objects are standalone; a Registry is only a naming and export
// layer on top of them. Code that owns metrics (core, paxos, sched,
// transport) creates the objects directly and keeps updating them whether
// or not anyone registered them; cmd/rexd and the benchmarks register the
// interesting ones under stable names and export snapshots or a
// Prometheus-compatible text dump.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// NewCounter returns a zeroed counter.
func NewCounter() *Counter { return &Counter{} }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (may go up or down).
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns a zeroed gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// GaugeFunc is a gauge computed on demand (e.g. a queue depth).
type GaugeFunc func() int64

// histBounds are the fixed histogram bucket upper bounds (inclusive, "le"
// semantics): a 1-2-5 series from 100ns to 10s. An observation v lands in
// the first bucket with v <= bound; anything larger lands in the overflow
// bucket. The series is fixed so histograms from different replicas and
// runs are always mergeable and comparable.
var histBounds = []time.Duration{
	100 * time.Nanosecond, 250 * time.Nanosecond, 500 * time.Nanosecond,
	1 * time.Microsecond, 2 * time.Microsecond, 5 * time.Microsecond,
	10 * time.Microsecond, 20 * time.Microsecond, 50 * time.Microsecond,
	100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second,
}

// NumBuckets is the number of histogram buckets including overflow.
const NumBuckets = 26 // len(histBounds) + 1

// Histogram is a fixed-bucket latency histogram. Observations are
// durations; negative observations clamp to zero. All methods are safe for
// concurrent use; Observe is lock-free.
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex returns the index of the bucket that holds d: the first
// bound with d <= bound, or the overflow bucket.
func bucketIndex(d time.Duration) int {
	// Binary search over the small fixed table (5 probes).
	lo, hi := 0, len(histBounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if d <= histBounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo // == len(histBounds) for overflow
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Max returns the largest observation seen.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// smallest bucket bound b such that at least ceil(q*count) observations
// are <= b. Observations in the overflow bucket report the maximum
// observation seen. Returns 0 when the histogram is empty.
//
// Because buckets are fixed, the result is an upper bound with the
// resolution of the 1-2-5 series: an exact boundary observation (say
// exactly 1ms) reports exactly that boundary.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank = ceil(q*total), at least 1.
	rank := uint64(q * float64(total))
	if float64(rank) < q*float64(total) || rank == 0 {
		rank++
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := 0; i < len(histBounds); i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			return histBounds[i]
		}
	}
	return h.Max()
}

// Snapshot returns a consistent-enough copy of the histogram (buckets are
// read individually; totals may trail by in-flight observations).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.Sum(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	for i := range s.Buckets {
		s.Buckets[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time view of a histogram.
type HistogramSnapshot struct {
	Count   uint64
	Sum     time.Duration
	Max     time.Duration
	P50     time.Duration
	P95     time.Duration
	P99     time.Duration
	Buckets [NumBuckets]uint64 // parallel to BucketBounds(), last = overflow
}

// Mean returns the mean observation, or 0 when empty.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// BucketBounds returns the fixed bucket upper bounds (excluding the
// overflow bucket).
func BucketBounds() []time.Duration {
	return append([]time.Duration(nil), histBounds...)
}

// Registry names and exports metrics. Registration takes a lock; updates
// to the registered metrics never do.
//
// A Registry may be a labeled view of another registry (see Labeled):
// views share the parent's storage but decorate every registered name
// with a label block, so one process hosting several shard groups can
// register each group's identically named series side by side
// (`rex_requests_admitted_total{group="2"}`).
type Registry struct {
	mu         sync.Mutex
	names      []string // registration order
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]GaugeFunc
	histograms map[string]*Histogram
	sizeHists  map[string]*SizeHistogram

	// base and labels make this a labeled view: registrations decorate
	// names and land in base's maps. Both are nil/empty on a root registry.
	base   *Registry
	labels string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]GaugeFunc),
		histograms: make(map[string]*Histogram),
		sizeHists:  make(map[string]*SizeHistogram),
	}
}

// Labeled returns a view of r that attaches `key="value"` to every metric
// name registered through it. The view shares r's storage: snapshots and
// text dumps of r include the labeled series. Chaining Labeled appends
// further pairs.
func (r *Registry) Labeled(key, value string) *Registry {
	pair := fmt.Sprintf("%s=%q", key, value)
	labels := r.labels
	if labels != "" {
		labels += "," + pair
	} else {
		labels = pair
	}
	return &Registry{base: r.root(), labels: labels}
}

// root returns the registry owning the storage (r itself unless r is a
// labeled view).
func (r *Registry) root() *Registry {
	if r.base != nil {
		return r.base
	}
	return r
}

// decorate merges the view's labels into name.
func (r *Registry) decorate(name string) string {
	if r.labels == "" {
		return name
	}
	return WithLabels(name, r.labels)
}

// WithLabels merges a comma-joined `k="v"` label list into a series name,
// inserting into an existing label block if the name already has one.
func WithLabels(name, labels string) string {
	if labels == "" {
		return name
	}
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:len(name)-1] + "," + labels + "}"
	}
	return name + "{" + labels + "}"
}

// SplitLabels splits a decorated series name into its base name and label
// list (empty when undecorated).
func SplitLabels(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

func (r *Registry) addName(name string) {
	for _, n := range r.names {
		if n == name {
			panic(fmt.Sprintf("obs: duplicate metric name %q", name))
		}
	}
	r.names = append(r.names, name)
}

// Counter creates and registers a counter under name.
func (r *Registry) Counter(name string) *Counter {
	c := NewCounter()
	r.RegisterCounter(name, c)
	return c
}

// RegisterCounter registers an existing counter under name.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	t, name := r.root(), r.decorate(name)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addName(name)
	t.counters[name] = c
}

// CounterOf returns the counter registered under name, creating it on
// first use. Unlike Counter it is idempotent, which suits dynamically
// named metrics (the chaos engine's per-fault-kind counters). It still
// panics if name is already taken by a different metric type.
func (r *Registry) CounterOf(name string) *Counter {
	t, name := r.root(), r.decorate(name)
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.counters[name]; ok {
		return c
	}
	t.addName(name)
	c := NewCounter()
	t.counters[name] = c
	return c
}

// Gauge creates and registers a gauge under name.
func (r *Registry) Gauge(name string) *Gauge {
	g := NewGauge()
	r.RegisterGauge(name, g)
	return g
}

// RegisterGauge registers an existing gauge under name.
func (r *Registry) RegisterGauge(name string, g *Gauge) {
	t, name := r.root(), r.decorate(name)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addName(name)
	t.gauges[name] = g
}

// GaugeOf returns the gauge registered under name, creating it on first
// use (the idempotent counterpart of Gauge).
func (r *Registry) GaugeOf(name string) *Gauge {
	t, name := r.root(), r.decorate(name)
	t.mu.Lock()
	defer t.mu.Unlock()
	if g, ok := t.gauges[name]; ok {
		return g
	}
	t.addName(name)
	g := NewGauge()
	t.gauges[name] = g
	return g
}

// RegisterGaugeFunc registers a computed gauge under name. fn must be safe
// to call from any goroutine.
func (r *Registry) RegisterGaugeFunc(name string, fn GaugeFunc) {
	t, name := r.root(), r.decorate(name)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addName(name)
	t.gaugeFuncs[name] = fn
}

// Histogram creates and registers a histogram under name.
func (r *Registry) Histogram(name string) *Histogram {
	h := NewHistogram()
	r.RegisterHistogram(name, h)
	return h
}

// RegisterHistogram registers an existing histogram under name.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	t, name := r.root(), r.decorate(name)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addName(name)
	t.histograms[name] = h
}

// HistogramOf returns the histogram registered under name, creating it
// on first use (the idempotent counterpart of Histogram).
func (r *Registry) HistogramOf(name string) *Histogram {
	t, name := r.root(), r.decorate(name)
	t.mu.Lock()
	defer t.mu.Unlock()
	if h, ok := t.histograms[name]; ok {
		return h
	}
	t.addName(name)
	h := NewHistogram()
	t.histograms[name] = h
	return h
}

// SizeHistogram creates and registers a size histogram under name.
func (r *Registry) SizeHistogram(name string) *SizeHistogram {
	h := NewSizeHistogram()
	r.RegisterSizeHistogram(name, h)
	return h
}

// RegisterSizeHistogram registers an existing size histogram under name.
func (r *Registry) RegisterSizeHistogram(name string, h *SizeHistogram) {
	t, name := r.root(), r.decorate(name)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addName(name)
	t.sizeHists[name] = h
}

// Snapshot is a point-in-time copy of every registered metric.
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
	Sizes      map[string]SizeSnapshot
}

// Counter returns the named counter's value (0 if absent).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Histogram returns the named histogram's snapshot (zero if absent).
func (s Snapshot) Histogram(name string) HistogramSnapshot { return s.Histograms[name] }

// Size returns the named size histogram's snapshot (zero if absent).
func (s Snapshot) Size(name string) SizeSnapshot { return s.Sizes[name] }

// Snapshot copies every registered metric. On a labeled view it snapshots
// the whole underlying registry (keys carry their label blocks).
func (r *Registry) Snapshot() Snapshot {
	r = r.root()
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)+len(r.gaugeFuncs)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
		Sizes:      make(map[string]SizeSnapshot, len(r.sizeHists)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, fn := range r.gaugeFuncs {
		s.Gauges[n] = fn()
	}
	for n, h := range r.histograms {
		s.Histograms[n] = h.Snapshot()
	}
	for n, h := range r.sizeHists {
		s.Sizes[n] = h.Snapshot()
	}
	return s
}

// WriteText dumps every registered metric in Prometheus text exposition
// format (histograms as cumulative _bucket/_sum/_count series with le
// labels in seconds), in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	r = r.root()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.names {
		base, _ := SplitLabels(name)
		var err error
		switch {
		case r.counters[name] != nil:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", base, name, r.counters[name].Value())
		case r.gauges[name] != nil:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", base, name, r.gauges[name].Value())
		case r.gaugeFuncs[name] != nil:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", base, name, r.gaugeFuncs[name]())
		case r.histograms[name] != nil:
			err = writeHistText(w, name, r.histograms[name].Snapshot())
		case r.sizeHists[name] != nil:
			err = writeSizeHistText(w, name, r.sizeHists[name].Snapshot())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// histSeries renders the per-series name for a histogram sub-series:
// base_bucket{<labels,>le="bound"} / base_sum{<labels>} / base_count{<labels>}.
func histSeries(base, labels, suffix, le string) string {
	all := labels
	if le != "" {
		if all != "" {
			all += ","
		}
		all += `le="` + le + `"`
	}
	return WithLabels(base+suffix, all)
}

func writeHistText(w io.Writer, name string, s HistogramSnapshot) error {
	base, labels := SplitLabels(name)
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", base); err != nil {
		return err
	}
	var cum uint64
	for i, b := range histBounds {
		cum += s.Buckets[i]
		if _, err := fmt.Fprintf(w, "%s %d\n", histSeries(base, labels, "_bucket", formatSeconds(b)), cum); err != nil {
			return err
		}
	}
	cum += s.Buckets[NumBuckets-1]
	if _, err := fmt.Fprintf(w, "%s %d\n", histSeries(base, labels, "_bucket", "+Inf"), cum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %s\n%s %d\n",
		histSeries(base, labels, "_sum", ""), formatSeconds(s.Sum),
		histSeries(base, labels, "_count", ""), s.Count)
	return err
}

// formatSeconds renders a duration as decimal seconds without trailing
// zeros (Prometheus le label convention).
func formatSeconds(d time.Duration) string {
	s := fmt.Sprintf("%.9f", d.Seconds())
	s = strings.TrimRight(s, "0")
	s = strings.TrimSuffix(s, ".")
	if s == "" || s == "-" {
		s = "0"
	}
	return s
}

// SortedNames returns the registered metric names, sorted.
func (r *Registry) SortedNames() []string {
	r = r.root()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.names...)
	sort.Strings(out)
	return out
}
