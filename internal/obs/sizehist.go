package obs

import (
	"fmt"
	"io"
	"sync/atomic"
)

// sizeBounds are the fixed SizeHistogram bucket upper bounds (inclusive):
// a 1-2-5 series from 1 to 1e6. Like the latency bounds, the series is
// fixed so size histograms from different replicas and runs always merge
// and compare. Anything above the last bound lands in the overflow bucket.
var sizeBounds = []uint64{
	1, 2, 5,
	10, 20, 50,
	100, 200, 500,
	1_000, 2_000, 5_000,
	10_000, 20_000, 50_000,
	100_000, 200_000, 500_000,
	1_000_000,
}

// NumSizeBuckets is the number of SizeHistogram buckets including overflow.
const NumSizeBuckets = 20 // len(sizeBounds) + 1

// SizeHistogram is a fixed-bucket histogram over dimensionless counts and
// sizes (batch sizes, delta bytes, events per delta) — the count-valued
// sibling of Histogram. Observe is lock-free and allocation-free, so it is
// safe on hot paths like the WAL committer.
type SizeHistogram struct {
	counts [NumSizeBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
}

// NewSizeHistogram returns an empty size histogram.
func NewSizeHistogram() *SizeHistogram { return &SizeHistogram{} }

func sizeBucketIndex(v uint64) int {
	lo, hi := 0, len(sizeBounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= sizeBounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo // == len(sizeBounds) for overflow
}

// Observe records one value.
func (h *SizeHistogram) Observe(v uint64) {
	h.counts[sizeBucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *SizeHistogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *SizeHistogram) Sum() uint64 { return h.sum.Load() }

// Max returns the largest observation seen.
func (h *SizeHistogram) Max() uint64 { return h.max.Load() }

// Mean returns the mean observation, or 0 when empty.
func (h *SizeHistogram) Mean() float64 {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(c)
}

// Quantile returns an upper bound for the q-quantile with the resolution
// of the 1-2-5 series (observations in the overflow bucket report Max).
// Returns 0 when empty.
func (h *SizeHistogram) Quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if float64(rank) < q*float64(total) || rank == 0 {
		rank++
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := 0; i < len(sizeBounds); i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			return sizeBounds[i]
		}
	}
	return h.Max()
}

// SizeSnapshot is a point-in-time view of a SizeHistogram.
type SizeSnapshot struct {
	Count   uint64
	Sum     uint64
	Max     uint64
	P50     uint64
	P95     uint64
	P99     uint64
	Buckets [NumSizeBuckets]uint64 // parallel to SizeBucketBounds(), last = overflow
}

// Mean returns the mean observation, or 0 when empty.
func (s SizeSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Snapshot copies the histogram (buckets are read individually; totals may
// trail by in-flight observations).
func (h *SizeHistogram) Snapshot() SizeSnapshot {
	s := SizeSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	for i := range s.Buckets {
		s.Buckets[i] = h.counts[i].Load()
	}
	return s
}

// SizeBucketBounds returns the fixed bucket upper bounds (excluding the
// overflow bucket).
func SizeBucketBounds() []uint64 {
	return append([]uint64(nil), sizeBounds...)
}

func writeSizeHistText(w io.Writer, name string, s SizeSnapshot) error {
	base, labels := SplitLabels(name)
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", base); err != nil {
		return err
	}
	var cum uint64
	for i, b := range sizeBounds {
		cum += s.Buckets[i]
		if _, err := fmt.Fprintf(w, "%s %d\n", histSeries(base, labels, "_bucket", fmt.Sprintf("%d", b)), cum); err != nil {
			return err
		}
	}
	cum += s.Buckets[NumSizeBuckets-1]
	if _, err := fmt.Fprintf(w, "%s %d\n", histSeries(base, labels, "_bucket", "+Inf"), cum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n%s %d\n",
		histSeries(base, labels, "_sum", ""), s.Sum,
		histSeries(base, labels, "_count", ""), s.Count)
	return err
}
