package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	c := NewCounter()
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := NewGauge()
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

// TestHistogramBucketBoundaries pins the le semantics: an observation
// exactly at a bucket bound lands in that bucket, one nanosecond above
// lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := BucketBounds()
	for i, b := range bounds {
		if got := bucketIndex(b); got != i {
			t.Errorf("bucketIndex(%v) = %d, want %d (boundary inclusive)", b, got, i)
		}
		if got := bucketIndex(b + 1); got != i+1 {
			t.Errorf("bucketIndex(%v+1ns) = %d, want %d", b, got, i+1)
		}
	}
	if got := bucketIndex(0); got != 0 {
		t.Errorf("bucketIndex(0) = %d, want 0", got)
	}
	if got := bucketIndex(bounds[len(bounds)-1] + time.Hour); got != len(bounds) {
		t.Errorf("overflow index = %d, want %d", got, len(bounds))
	}
}

// TestHistogramQuantileAtBoundaries checks the percentile math against the
// documented contract: Quantile(q) is the smallest bucket bound covering
// at least ceil(q*count) observations.
func TestHistogramQuantileAtBoundaries(t *testing.T) {
	h := NewHistogram()
	// 100 observations: 50 at exactly 1ms, 45 at exactly 10ms, 5 at
	// exactly 100ms. All are exact bucket bounds.
	for i := 0; i < 50; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 45; i++ {
		h.Observe(10 * time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		h.Observe(100 * time.Millisecond)
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.01, time.Millisecond},        // rank 1
		{0.50, time.Millisecond},        // rank 50: exactly the first 50 obs
		{0.51, 10 * time.Millisecond},   // rank 51 crosses into the next bucket
		{0.95, 10 * time.Millisecond},   // rank 95 = 50+45
		{0.951, 100 * time.Millisecond}, // rank 96
		{0.99, 100 * time.Millisecond},
		{1.0, 100 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := h.Count(); got != 100 {
		t.Errorf("Count = %d, want 100", got)
	}
	wantSum := 50*time.Millisecond + 450*time.Millisecond + 500*time.Millisecond
	if got := h.Sum(); got != wantSum {
		t.Errorf("Sum = %v, want %v", got, wantSum)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Errorf("Max = %v, want 100ms", got)
	}
}

func TestHistogramEmptyAndOverflow(t *testing.T) {
	h := NewHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
	h.Observe(time.Minute) // beyond the last bound
	if got := h.Quantile(0.99); got != time.Minute {
		t.Fatalf("overflow Quantile = %v, want the observed max (1m)", got)
	}
	h.Observe(-time.Second) // clamps to zero
	if got := h.Quantile(0.25); got != BucketBounds()[0] {
		t.Fatalf("clamped Quantile = %v, want first bound", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("Count = %d, want 8000", got)
	}
	var cum uint64
	s := h.Snapshot()
	for _, b := range s.Buckets {
		cum += b
	}
	if cum != 8000 {
		t.Fatalf("bucket sum = %d, want 8000", cum)
	}
}

func TestRegistryTextDump(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("rex_requests_total")
	c.Add(3)
	g := reg.Gauge("rex_outstanding")
	g.Set(2)
	reg.RegisterGaugeFunc("rex_inbox_depth", func() int64 { return 9 })
	h := reg.Histogram("rex_request_latency_seconds")
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE rex_requests_total counter\nrex_requests_total 3\n",
		"# TYPE rex_outstanding gauge\nrex_outstanding 2\n",
		"rex_inbox_depth 9\n",
		"# TYPE rex_request_latency_seconds histogram\n",
		`rex_request_latency_seconds_bucket{le="0.001"} 1`,
		`rex_request_latency_seconds_bucket{le="0.002"} 2`,
		`rex_request_latency_seconds_bucket{le="+Inf"} 2`,
		"rex_request_latency_seconds_sum 0.003\n",
		"rex_request_latency_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text dump missing %q\n---\n%s", want, out)
		}
	}

	s := reg.Snapshot()
	if s.Counter("rex_requests_total") != 3 {
		t.Errorf("snapshot counter = %d, want 3", s.Counter("rex_requests_total"))
	}
	if s.Gauges["rex_inbox_depth"] != 9 {
		t.Errorf("snapshot gauge func = %d, want 9", s.Gauges["rex_inbox_depth"])
	}
	if hs := s.Histogram("rex_request_latency_seconds"); hs.Count != 2 || hs.P95 != 2*time.Millisecond {
		t.Errorf("snapshot histogram = %+v", hs)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg := NewRegistry()
	reg.Counter("dup")
	reg.Counter("dup")
}

// BenchmarkHistogramObserve is the metrics hot path: one Observe.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) & (1<<20 - 1))
	}
}

// BenchmarkCounterInc is the cheapest metrics operation.
func BenchmarkCounterInc(b *testing.B) {
	c := NewCounter()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func TestSizeHistogram(t *testing.T) {
	h := NewSizeHistogram()
	for i := uint64(1); i <= 100; i++ {
		h.Observe(i)
	}
	h.Observe(0) // clamps into the first bucket
	if h.Count() != 101 {
		t.Errorf("Count = %d, want 101", h.Count())
	}
	if h.Max() != 100 {
		t.Errorf("Max = %d, want 100", h.Max())
	}
	if got := h.Sum(); got != 5050 {
		t.Errorf("Sum = %d, want 5050", got)
	}
	if m := h.Mean(); m < 49 || m > 51 {
		t.Errorf("Mean = %f, want ~50", m)
	}
	// Quantiles are bucket upper bounds: p50 of 1..100 lands in the 50
	// bucket, p99 in the 100 bucket.
	if q := h.Quantile(0.50); q != 50 {
		t.Errorf("P50 = %d, want 50 (bucket bound)", q)
	}
	if q := h.Quantile(0.99); q != 100 {
		t.Errorf("P99 = %d, want 100 (bucket bound)", q)
	}

	reg := NewRegistry()
	reg.RegisterSizeHistogram("rex_test_sizes", h)
	s := reg.Snapshot()
	if sz := s.Size("rex_test_sizes"); sz.Count != 101 || sz.Max != 100 {
		t.Errorf("snapshot size hist = %+v", sz)
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "rex_test_sizes_count 101") || !strings.Contains(out, `le="50"`) {
		t.Errorf("WriteText output missing size histogram lines:\n%s", out)
	}
}

// BenchmarkSizeHistogramObserve guards the group-commit hot path: one
// batch-size observation per flush.
func BenchmarkSizeHistogramObserve(b *testing.B) {
	h := NewSizeHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i) & (1<<18 - 1))
	}
}

// TestLabeledRegistry covers the labeled-view mechanism multi-group
// hosting relies on: identically named series from several groups live
// side by side in one registry, distinguished by label blocks.
func TestLabeledRegistry(t *testing.T) {
	root := NewRegistry()
	g0 := root.Labeled("group", "0")
	g1 := root.Labeled("group", "1")

	c0 := g0.Counter("rex_requests_total")
	c1 := g1.Counter("rex_requests_total") // same base name: must not panic
	c0.Add(3)
	c1.Add(7)

	s := root.Snapshot()
	if got := s.Counter(`rex_requests_total{group="0"}`); got != 3 {
		t.Errorf("group 0 counter = %d, want 3", got)
	}
	if got := s.Counter(`rex_requests_total{group="1"}`); got != 7 {
		t.Errorf("group 1 counter = %d, want 7", got)
	}
	// Snapshots via the view see the whole registry.
	if got := g0.Snapshot().Counter(`rex_requests_total{group="1"}`); got != 7 {
		t.Errorf("view snapshot counter = %d, want 7", got)
	}

	h := g1.Histogram("rex_latency_seconds")
	h.Observe(2 * time.Millisecond)
	sh := g1.SizeHistogram("rex_batch_size")
	sh.Observe(4)

	var buf bytes.Buffer
	if err := root.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`rex_requests_total{group="0"} 3`,
		`rex_requests_total{group="1"} 7`,
		"# TYPE rex_latency_seconds histogram",
		`rex_latency_seconds_bucket{group="1",le="0.002"} 1`,
		`rex_latency_seconds_count{group="1"} 1`,
		`rex_batch_size_bucket{group="1",le="5"} 1`,
		`rex_batch_size_sum{group="1"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
	// TYPE lines must use the base name, never the decorated one.
	if strings.Contains(out, `# TYPE rex_requests_total{`) {
		t.Errorf("TYPE line carries labels:\n%s", out)
	}
}

// TestWithLabels covers label merging into already-decorated names.
func TestWithLabels(t *testing.T) {
	cases := []struct{ name, labels, want string }{
		{"m", "", "m"},
		{"m", `a="1"`, `m{a="1"}`},
		{`m{a="1"}`, `b="2"`, `m{a="1",b="2"}`},
	}
	for _, c := range cases {
		if got := WithLabels(c.name, c.labels); got != c.want {
			t.Errorf("WithLabels(%q, %q) = %q, want %q", c.name, c.labels, got, c.want)
		}
	}
	base, labels := SplitLabels(`m{a="1",b="2"}`)
	if base != "m" || labels != `a="1",b="2"` {
		t.Errorf("SplitLabels = %q, %q", base, labels)
	}
}
