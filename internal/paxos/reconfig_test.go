package paxos

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"rex/internal/env"
	"rex/internal/reconfig"
	"rex/internal/sim"
	"rex/internal/storage"
	"rex/internal/transport"
)

// voteTap wraps an Endpoint and counts outgoing quorum-forming messages
// (promises and accept acks) — the definition of "casting a vote". WAL
// records are too blunt a proxy: a learner legitimately persists the
// leader's ballot from heartbeats without ever voting.
type voteTap struct {
	transport.Endpoint
	votes *atomic.Int64
}

func (tp *voteTap) Send(to int, payload []byte) {
	if len(payload) > 0 {
		if k := msgKind(payload[0]); k == mPromise || k == mAccepted {
			tp.votes.Add(1)
		}
	}
	tp.Endpoint.Send(to, payload)
}

// rcluster is the reconfiguration test harness: n nodes whose initial
// membership view can be narrower than n (extra nodes start outside the
// cluster, as joiners do), with removal and membership activations
// captured per node.
type rcluster struct {
	e     *sim.Env
	net   *transport.Network
	nodes []*Node
	logs  []*storage.MemLog

	mu      env.Mutex
	commits [][]string
	removed []bool
	epochs  []uint64 // latest membership epoch activated per node
	votes   []*atomic.Int64
}

// newRCluster builds n nodes of which only the first `members` are in the
// epoch-0 membership; the rest start with the same narrow view and must be
// admitted by a committed change before they matter.
func newRCluster(e *sim.Env, n, members int, seed int64) *rcluster {
	c := &rcluster{
		e:       e,
		net:     transport.NewNetwork(e, n, time.Millisecond, seed),
		commits: make([][]string, n),
		removed: make([]bool, n),
		epochs:  make([]uint64, n),
		mu:      e.NewMutex(),
	}
	base := reconfig.Initial(members)
	for i := 0; i < n; i++ {
		i := i
		log := storage.NewMemLog()
		c.logs = append(c.logs, log)
		votes := new(atomic.Int64)
		c.votes = append(c.votes, votes)
		m := base.Clone()
		node, err := NewNode(Config{
			ID:              i,
			N:               members,
			Members:         &m,
			Env:             e,
			Endpoint:        &voteTap{Endpoint: c.net.Endpoint(i), votes: votes},
			Log:             log,
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 100 * time.Millisecond,
			Seed:            seed,
			OnCommitted: func(inst uint64, val []byte) {
				if reconfig.IsMeta(val) {
					return
				}
				c.mu.Lock()
				c.commits[i] = append(c.commits[i], string(val))
				c.mu.Unlock()
			},
			OnMembership: func(m reconfig.Membership) {
				c.mu.Lock()
				if m.Epoch > c.epochs[i] {
					c.epochs[i] = m.Epoch
				}
				c.mu.Unlock()
			},
			OnRemoved: func(reconfig.Membership) {
				c.mu.Lock()
				c.removed[i] = true
				c.mu.Unlock()
			},
		})
		if err != nil {
			panic(err)
		}
		c.nodes = append(c.nodes, node)
	}
	return c
}

func (c *rcluster) start() {
	for _, n := range c.nodes {
		n.Start()
	}
}

func (c *rcluster) stop() {
	for _, n := range c.nodes {
		n.Stop()
	}
}

func (c *rcluster) waitLeader(t *testing.T, timeout time.Duration) int {
	t.Helper()
	deadline := c.e.Now() + timeout
	for c.e.Now() < deadline {
		leaders, id := 0, -1
		for i, n := range c.nodes {
			if n.IsLeader() {
				leaders++
				id = i
			}
		}
		if leaders == 1 {
			return id
		}
		c.e.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no single leader within %v", timeout)
	return -1
}

func (c *rcluster) waitCommits(t *testing.T, node, want int, timeout time.Duration) {
	t.Helper()
	deadline := c.e.Now() + timeout
	for c.e.Now() < deadline {
		c.mu.Lock()
		got := len(c.commits[node])
		c.mu.Unlock()
		if got >= want {
			return
		}
		c.e.Sleep(5 * time.Millisecond)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t.Fatalf("node %d committed %d values within %v, want %d", node, len(c.commits[node]), timeout, want)
}

// waitEpochActive blocks until node i has activated membership epoch e.
func (c *rcluster) waitEpochActive(t *testing.T, node int, epoch uint64, timeout time.Duration) {
	t.Helper()
	deadline := c.e.Now() + timeout
	for c.e.Now() < deadline {
		c.mu.Lock()
		got := c.epochs[node]
		c.mu.Unlock()
		if got >= epoch {
			return
		}
		c.e.Sleep(5 * time.Millisecond)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t.Fatalf("node %d activated epoch %d within %v, want %d", node, c.epochs[node], timeout, epoch)
}

func (c *rcluster) isRemoved(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.removed[i]
}

// acceptRecords counts accept records in node i's WAL — durable evidence
// the node voted in phase 2. (Promise records are not counted: heartbeats
// legitimately persist the leader's ballot on learners too.)
func (c *rcluster) acceptRecords(i int) int {
	recs, err := c.logs[i].Records()
	if err != nil {
		panic(err)
	}
	accepts := 0
	for _, rec := range recs {
		if len(rec) > 0 && rec[0] == recAccepted {
			accepts++
		}
	}
	return accepts
}

// TestStaleEpochRejected: a voter that misses a membership change keeps
// campaigning with its stale epoch; the others must refuse its prepares
// with an epoch nack (never vote for it), and the nack must teach it the
// configuration that removed it, parking it via OnRemoved.
func TestStaleEpochRejected(t *testing.T) {
	e := sim.New(4)
	e.Run(func() {
		c := newRCluster(e, 3, 3, 21)
		c.start()
		lead := c.waitLeader(t, 2*time.Second)
		victim, other := -1, -1
		for i := 0; i < 3; i++ {
			if i != lead {
				if victim < 0 {
					victim = i
				} else {
					other = i
				}
			}
		}
		// The victim stops hearing anything before the change commits.
		c.net.Isolate(victim, true)

		m2, err := reconfig.Initial(3).WithRemove(victim)
		if err != nil {
			t.Fatal(err)
		}
		c.nodes[lead].Propose(reconfig.EncodeValue(m2))
		// Both surviving voters must have activated the new epoch before the
		// victim comes back, or a not-yet-activated voter could still promise
		// to its stale campaign.
		c.waitEpochActive(t, lead, m2.Epoch, 5*time.Second)
		c.waitEpochActive(t, other, m2.Epoch, 5*time.Second)

		// Back from the partition, the victim's election campaign carries
		// the stale epoch. It must never win; the nacks must teach it the
		// new config, and absence from it must fire OnRemoved.
		c.net.Isolate(victim, false)
		deadline := c.e.Now() + 5*time.Second
		for c.e.Now() < deadline && !c.isRemoved(victim) {
			if c.nodes[victim].IsLeader() {
				t.Fatal("removed node won an election on a stale epoch")
			}
			c.e.Sleep(5 * time.Millisecond)
		}
		if !c.isRemoved(victim) {
			t.Fatal("stale node was never told it is removed")
		}
		if c.nodes[victim].IsLeader() {
			t.Fatal("removed node believes it leads")
		}
		c.stop()
	})
}

// TestQuorumSwitchesAtHorizon: after a replace activates, the cluster must
// commit with the NEW quorum — the surviving old voter plus the admitted
// node — even when the replaced voter (and one more old voter) are gone.
func TestQuorumSwitchesAtHorizon(t *testing.T) {
	e := sim.New(4)
	e.Run(func() {
		c := newRCluster(e, 4, 3, 22)
		c.start()
		lead := c.waitLeader(t, 2*time.Second)
		victim := -1
		for i := 0; i < 3; i++ {
			if i != lead {
				victim = i
			}
		}
		// One committed change: drop the victim and admit node 3 straight
		// to voter (the With* builders each bump the epoch; collapse back to
		// a single step since the intermediates are never committed).
		m := reconfig.Initial(3)
		m2, err := m.WithRemove(victim)
		if err != nil {
			t.Fatal(err)
		}
		m2, err = m2.WithAdd(3, "")
		if err != nil {
			t.Fatal(err)
		}
		m2, err = m2.WithPromote(3)
		if err != nil {
			t.Fatal(err)
		}
		m2.Epoch = m.Epoch + 1
		c.nodes[lead].Propose(reconfig.EncodeValue(m2))

		// Activation needs chosenSeq to cross the horizon (leader padding
		// drives it even with no client values), and the new voter must
		// catch up before it can be useful to quorums.
		c.waitEpochActive(t, lead, m2.Epoch, 5*time.Second)
		c.waitEpochActive(t, 3, m2.Epoch, 5*time.Second)

		// Kill the replaced voter. Old quorums {lead, victim, other} are
		// now impossible without `other`; new quorums {lead, other, 3}
		// must work even with ONLY lead and 3 — prove it by also killing
		// the remaining old voter.
		other := 3 - lead - victim // the third original voter (0+1+2 == 3)
		c.net.Isolate(victim, true)
		c.net.Isolate(other, true)
		for i := 0; i < 5; i++ {
			c.nodes[lead].Propose([]byte(fmt.Sprintf("post-%d", i)))
		}
		c.waitCommits(t, lead, 5, 5*time.Second)
		c.waitCommits(t, 3, 5, 5*time.Second)
		c.stop()
	})
}

// TestJoinerNeverVotesBeforePromotion: a node admitted as a learner must
// cast no promise or accept votes — its WAL stays free of vote records —
// until a second committed change promotes it to voter, after which it
// must participate.
func TestJoinerNeverVotesBeforePromotion(t *testing.T) {
	e := sim.New(4)
	e.Run(func() {
		c := newRCluster(e, 4, 3, 23)
		c.start()
		lead := c.waitLeader(t, 2*time.Second)

		// Admit node 3 as a learner.
		m := reconfig.Initial(3)
		m2, err := m.WithAdd(3, "")
		if err != nil {
			t.Fatal(err)
		}
		c.nodes[lead].Propose(reconfig.EncodeValue(m2))
		c.waitEpochActive(t, 3, m2.Epoch, 5*time.Second)

		// Load while it is a learner: it must follow commits without ever
		// voting.
		for i := 0; i < 10; i++ {
			c.nodes[lead].Propose([]byte(fmt.Sprintf("pre-%d", i)))
		}
		c.waitCommits(t, 3, 10, 5*time.Second)
		if c.nodes[3].IsLeader() {
			t.Fatal("learner believes it leads")
		}
		if v := c.votes[3].Load(); v != 0 {
			t.Fatalf("learner sent %d promise/accepted messages before promotion", v)
		}
		if a := c.acceptRecords(3); a != 0 {
			t.Fatalf("learner persisted %d accept votes before promotion", a)
		}

		// Promote, then load again: now it must vote.
		m3, err := m2.WithPromote(3)
		if err != nil {
			t.Fatal(err)
		}
		c.nodes[lead].Propose(reconfig.EncodeValue(m3))
		c.waitEpochActive(t, 3, m3.Epoch, 5*time.Second)
		for i := 0; i < 10; i++ {
			c.nodes[lead].Propose([]byte(fmt.Sprintf("post-%d", i)))
		}
		c.waitCommits(t, 3, 20, 5*time.Second)
		deadline := c.e.Now() + 5*time.Second
		for c.e.Now() < deadline && c.votes[3].Load() == 0 {
			c.e.Sleep(5 * time.Millisecond)
		}
		if v := c.votes[3].Load(); v == 0 {
			t.Fatal("promoted voter cast no votes")
		}
		c.stop()
	})
}
