package paxos

import (
	"sort"
	"time"
)

// Quorum read leases: the mechanism that lets a leader serve
// linearizable reads without a consensus round per read.
//
// Every heartbeat carries the leader's send time (on the leader's own
// clock) in the Inst field. A voter that accepts the heartbeat replies
// with an mLeaseGrant echoing that stamp, and — this is the safety
// half — refuses mPrepare from anyone but the grantee until
// LeaseDuration has elapsed on its own clock since it received the
// heartbeat. The grant is therefore a temporary promise of electoral
// silence, not merely an ack.
//
// The leader sorts the acked stamps of the active voters (counting
// itself at its latest send time) and takes the Quorum()-th largest:
// call it S. Until S + LeaseDuration - ClockSkewBound (leader clock), a
// quorum of voters is still inside its silent window: receive time >=
// send time, and clocks drift by at most ClockSkewBound over a lease
// interval. Any competing election needs promises from a quorum, and
// quorums intersect, so no new leader can complete phase 1 before the
// lease expires — reads served under the lease cannot miss a newer
// leader's writes.
//
// Leases piggyback entirely on existing traffic: no extra messages on
// the critical path, one small grant per heartbeat per voter.

// leaseEnabled reports whether the lease machinery is on (LeaseDuration
// >= 0 after defaulting; negative disables it).
func (n *Node) leaseEnabled() bool { return n.cfg.LeaseDuration > 0 }

// stampHeartbeat fills the lease timestamp into an outgoing heartbeat
// and refreshes the leader's own (self-grant) stamp.
func (n *Node) stampHeartbeat(m *message, now time.Duration) {
	if !n.leaseEnabled() {
		return
	}
	m.Inst = uint64(now)
	n.grantAt[n.cfg.ID] = now
	n.recomputeLease()
}

// grantLease runs on a voter after a heartbeat passed the epoch, ballot,
// and voter checks: record the silent window and echo the stamp back.
func (n *Node) grantLease(m *message, from int) {
	if !n.leaseEnabled() || m.Inst == 0 || !n.isVoter() {
		return
	}
	n.leaseTo = from
	n.leaseUntil = n.cfg.Env.Now() + n.cfg.LeaseDuration
	n.cfg.Metrics.LeaseGrants.Inc()
	n.send(from, &message{Kind: mLeaseGrant, Ballot: m.Ballot, Inst: m.Inst, Epoch: n.activeEpoch})
}

// onLeaseGrant folds a voter's grant into the leader's lease window.
func (n *Node) onLeaseGrant(m *message, from int) {
	if !n.isLeader || m.Ballot != n.prepBallot || !n.leaseEnabled() {
		return
	}
	if t := time.Duration(m.Inst); t > n.grantAt[from] {
		n.grantAt[from] = t
	}
	n.recomputeLease()
}

// recomputeLease publishes the expiry of the current lease window: the
// Quorum()-th largest acked heartbeat stamp among the active voters,
// plus the lease duration, minus the clock-skew allowance.
func (n *Node) recomputeLease() {
	if !n.isLeader {
		n.leaseExpiry.Store(0)
		return
	}
	cfgm := n.activeConfig()
	stamps := make([]time.Duration, 0, len(cfgm.Voters))
	for _, id := range cfgm.Voters {
		stamps = append(stamps, n.grantAt[id]) // zero when never acked
	}
	q := cfgm.Quorum()
	if len(stamps) < q {
		n.leaseExpiry.Store(0)
		return
	}
	sort.Slice(stamps, func(i, j int) bool { return stamps[i] > stamps[j] })
	base := stamps[q-1]
	if base == 0 {
		n.leaseExpiry.Store(0)
		return
	}
	n.leaseExpiry.Store(int64(base + n.cfg.LeaseDuration - n.cfg.ClockSkewBound))
}

// dropLease clears all lease state on both sides: called on deposition,
// removal, epoch activation (the voter set changed under the window),
// and stop.
func (n *Node) dropLease() {
	n.leaseExpiry.Store(0)
	for id := range n.grantAt {
		delete(n.grantAt, id)
	}
	n.leaseTo = -1
	n.leaseUntil = 0
}

// suppressPrepare reports whether an incoming prepare from `from` must
// be dropped because this voter is inside a silent window granted to
// someone else. The leader's own unexpired lease counts: it included
// its own stamp in the quorum, so its promise must stay off the market
// just like any granting voter's.
func (n *Node) suppressPrepare(from int) bool {
	if !n.leaseEnabled() || from == n.cfg.ID {
		return false
	}
	now := n.cfg.Env.Now()
	if exp := n.leaseExpiry.Load(); exp > 0 && now < time.Duration(exp) {
		// This node is the leader of a still-valid lease; its own promise
		// was part of the quorum that established the window, so it stays
		// off the market exactly as long as it may serve lease reads.
		n.cfg.Metrics.LeaseSuppressed.Inc()
		return true
	}
	if n.leaseTo >= 0 && n.leaseTo != from && now < n.leaseUntil {
		n.cfg.Metrics.LeaseSuppressed.Inc()
		return true
	}
	return false
}

// holdElection reports whether this voter should delay starting its own
// election because it still holds a live grant to the current leader;
// the prepare would be suppressed by its peers anyway.
func (n *Node) holdElection() bool {
	if !n.leaseEnabled() || n.leaseTo < 0 || n.leaseTo == n.cfg.ID {
		return false
	}
	return n.cfg.Env.Now() < n.leaseUntil
}

// LeaseValid reports whether this node currently holds a quorum read
// lease: it is the leader and the published lease window has not
// expired. Safe to call from any task (the hot read path calls it per
// linearizable read).
func (n *Node) LeaseValid() bool {
	exp := n.leaseExpiry.Load()
	return exp > 0 && n.cfg.Env.Now() < time.Duration(exp)
}
