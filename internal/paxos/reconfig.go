package paxos

import (
	"sort"

	"rex/internal/reconfig"
)

// Membership machinery: horizon-based (α-bounded) reconfiguration.
//
// A membership change is an ordinary consensus value (reconfig.EncodeValue)
// chosen at some instance i; it takes effect at instance i+α. The node keeps
// a small schedule of configs ordered by activation instance: configAt(inst)
// is the membership governing that instance's quorum and epoch. Instances in
// [i, i+α) therefore keep the proposing epoch's quorum — in-flight pipelined
// instances are never stranded — while everything ≥ i+α uses the new one.
//
// Messages that drive voting (prepare, accept, heartbeat) carry the sender's
// epoch for the governing instance; a receiver whose governing epoch is newer
// rejects with mEpochNack carrying its active membership, so removed or
// lagging nodes learn the configuration they missed instead of assembling
// quorums from a stale world.

// scheduledConfigs returns a copy of the config schedule relevant at or
// after inst: the config governing inst plus everything scheduled later.
func (n *Node) scheduledConfigs(inst uint64) []reconfig.Scheduled {
	idx := n.configIdx(inst)
	out := make([]reconfig.Scheduled, 0, len(n.configs)-idx)
	for _, sc := range n.configs[idx:] {
		out = append(out, reconfig.Scheduled{FromInst: sc.FromInst, M: sc.M.Clone()})
	}
	return out
}

// configIdx returns the index of the config governing inst: the entry with
// the largest FromInst ≤ inst (clamped to the oldest known config).
func (n *Node) configIdx(inst uint64) int {
	idx := 0
	for i, sc := range n.configs {
		if sc.FromInst <= inst {
			idx = i
		} else {
			break
		}
	}
	return idx
}

// configAt returns the membership governing inst.
func (n *Node) configAt(inst uint64) *reconfig.Membership {
	return &n.configs[n.configIdx(inst)].M
}

// activeConfig is the membership governing the next undecided instance —
// the one elections and heartbeats are judged against.
func (n *Node) activeConfig() *reconfig.Membership { return n.configAt(n.chosenSeq) }

// epochAt returns the epoch governing inst.
func (n *Node) epochAt(inst uint64) uint64 { return n.configAt(inst).Epoch }

// isVoter reports whether this node votes for the next undecided instance.
func (n *Node) isVoter() bool { return n.activeConfig().IsVoter(n.cfg.ID) }

// peerList returns every id that must receive broadcasts: the union of all
// members across the schedule (old members still ack in-flight instances,
// learners need commits) plus self (the loop-back ack path).
func (n *Node) peerList() []int {
	seen := map[int]bool{n.cfg.ID: true}
	out := []int{n.cfg.ID}
	for _, sc := range n.configs {
		for _, id := range sc.M.Members() {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	sort.Ints(out)
	return out
}

// persistConfig writes a recConfig record for sc into the WAL arena.
func (n *Node) persistConfig(sc reconfig.Scheduled) {
	e := n.walEnc
	e.Byte(recConfig)
	e.Uvarint(sc.FromInst)
	e.BytesVal(reconfig.EncodeValue(sc.M))
	n.walEnd()
}

// scheduleConfig installs sc into the schedule (idempotent by epoch),
// persisting it when persist is set. Returns true if the schedule changed.
func (n *Node) scheduleConfig(sc reconfig.Scheduled, persist bool) bool {
	// Epochs are assigned consecutively in commit order, so an epoch we
	// already hold (or anything older) is a duplicate or superseded.
	for _, have := range n.configs {
		if have.M.Epoch >= sc.M.Epoch {
			return false
		}
	}
	n.configs = append(n.configs, reconfig.Scheduled{FromInst: sc.FromInst, M: sc.M.Clone()})
	sort.SliceStable(n.configs, func(i, j int) bool { return n.configs[i].FromInst < n.configs[j].FromInst })
	if persist {
		n.persistConfig(sc)
	}
	n.cfg.Metrics.Reconfigs.Inc()
	n.cfg.logf("scheduled membership %v effective at instance %d", sc.M, sc.FromInst)
	n.checkActivation()
	return true
}

// recoverConfig merges a recConfig WAL record into the schedule during
// recovery: no persistence, callbacks, or metrics — just state.
func (n *Node) recoverConfig(sc reconfig.Scheduled) {
	for i, have := range n.configs {
		if have.M.Epoch == sc.M.Epoch {
			n.configs[i] = sc
			return
		}
	}
	n.configs = append(n.configs, sc)
	sort.SliceStable(n.configs, func(i, j int) bool { return n.configs[i].FromInst < n.configs[j].FromInst })
}

// pruneConfigs drops schedule entries made obsolete by progress: everything
// older than the config governing chosenSeq. (Quorums are only ever needed
// for instances ≥ chosenSeq; older instances are already decided.)
func (n *Node) pruneConfigs() {
	idx := n.configIdx(n.chosenSeq)
	if idx > 0 {
		n.configs = append(n.configs[:0], n.configs[idx:]...)
	}
}

// checkActivation runs after chosenSeq advances (or the schedule changes):
// it prunes obsolete configs, notifies the host of a newly active
// membership, steps down a leader that lost its vote, and fires OnRemoved
// once this node is no longer a member of the active configuration.
func (n *Node) checkActivation() {
	n.pruneConfigs()
	active := n.activeConfig()
	if active.Epoch == n.activeEpoch {
		return
	}
	n.activeEpoch = active.Epoch
	n.cfg.logf("membership %v now active at instance %d", active, n.chosenSeq)
	// The voter set changed under any open lease window: both the grant
	// quorum math and a voter's silent window were judged against the old
	// epoch, so forfeit them rather than reason across the boundary.
	n.dropLease()
	if n.isLeader && !active.IsVoter(n.cfg.ID) {
		n.cfg.logf("lost voting rights in epoch %d; stepping down", active.Epoch)
		n.isLeader = false
		n.inflight = make(map[uint64]*inflightState)
		n.proposeQ = nil
	}
	if n.preparing && !active.IsVoter(n.cfg.ID) {
		n.preparing = false
	}
	if n.cfg.OnMembership != nil {
		n.cfg.OnMembership(active.Clone())
	}
	// Removal is a member→non-member transition, not mere absence: a
	// joiner catching up activates every historical config before the one
	// that admits it, and must not read its absence from those as removal.
	if !active.IsMember(n.cfg.ID) && n.wasMember && !n.removedFired {
		n.removedFired = true
		if n.cfg.OnRemoved != nil {
			n.cfg.OnRemoved(active.Clone())
		}
	}
	n.wasMember = active.IsMember(n.cfg.ID)
}

// maybeScheduleFromValue inspects a freshly chosen value; when it is an
// encoded membership it schedules activation at inst+α.
func (n *Node) maybeScheduleFromValue(inst uint64, val []byte) {
	if !reconfig.IsValue(val) {
		return
	}
	m, err := reconfig.DecodeValue(val)
	if err != nil {
		n.cfg.logf("ignoring corrupt membership chosen at %d: %v", inst, err)
		return
	}
	alpha := m.Alpha
	if alpha == 0 {
		alpha = reconfig.DefaultAlpha
	}
	n.scheduleConfig(reconfig.Scheduled{FromInst: inst + alpha, M: m}, true)
}

// sendEpochNack tells a peer its view of the membership is stale, carrying
// our active configuration so it can adopt it.
func (n *Node) sendEpochNack(to int) {
	idx := n.configIdx(n.chosenSeq)
	sc := n.configs[idx]
	n.cfg.Metrics.EpochNacks.Inc()
	n.send(to, &message{
		Kind:     mEpochNack,
		Epoch:    sc.M.Epoch,
		FromInst: sc.FromInst,
		Val:      reconfig.EncodeValue(sc.M),
	})
}

// onEpochNack adopts a newer membership a peer told us about, then asks the
// peer for the chosen values we are evidently missing.
func (n *Node) onEpochNack(m *message, from int) {
	if m.Epoch <= n.activeEpoch {
		return // stale or duplicate nack
	}
	mem, err := reconfig.DecodeValue(m.Val)
	if err != nil {
		n.cfg.logf("dropping corrupt epoch nack from %d: %v", from, err)
		return
	}
	n.cfg.logf("epoch nack from %d: adopting %v at instance %d", from, mem, m.FromInst)
	n.scheduleConfig(reconfig.Scheduled{FromInst: m.FromInst, M: mem}, true)
	if n.preparing {
		// Our prepare was judged against a stale epoch; abandon the round
		// and retry (with the adopted config) after catching up.
		n.preparing = false
		n.electionDeadline = n.cfg.Env.Now() + n.electionTimeout()
	}
	n.cfg.Metrics.LearnReqs.Inc()
	n.send(from, &message{Kind: mLearn, FromInst: n.chosenSeq})
}

// AdoptConfigs installs a config schedule recovered from a checkpoint
// transfer: the snapshot's sender recorded the configuration governing the
// snapshot instance plus everything scheduled after it. Safe to call from
// any task.
func (n *Node) AdoptConfigs(configs []reconfig.Scheduled) {
	n.inbox.Send(adoptCmd{configs: configs})
}

// learnTick is the non-voter's substitute for elections: a learner cannot
// become leader, so on election timeout it instead asks a voter for the
// chosen values it is missing, rotating through the voters so one dead
// peer cannot stall catch-up.
func (n *Node) learnTick() {
	voters := n.activeConfig().Voters
	if len(voters) == 0 {
		return
	}
	target := voters[n.learnRR%len(voters)]
	n.learnRR++
	if target == n.cfg.ID {
		if len(voters) == 1 {
			return
		}
		target = voters[n.learnRR%len(voters)]
		n.learnRR++
	}
	n.cfg.Metrics.LearnReqs.Inc()
	n.send(target, &message{Kind: mLearn, FromInst: n.chosenSeq})
	n.electionDeadline = n.cfg.Env.Now() + n.electionTimeout()
}
