// Package paxos implements the multi-instance Paxos engine Rex agrees on
// traces with (§3.1): ballot-based leader election with a heartbeat failure
// detector, a single active consensus instance at a time, learner catch-up,
// and durable acceptor state.
//
// The interface mirrors the paper's: Propose enqueues a value for the next
// instance; OnCommitted fires for every chosen instance in order;
// OnBecomeLeader fires when the local replica finishes phase 1 across all
// open instances without seeing a higher ballot; OnNewLeader(r) fires
// whenever a higher ballot from replica r is observed.
package paxos

import (
	"fmt"

	"rex/internal/wire"
)

// Ballot orders competing proposers: higher rounds win, ties broken by
// replica id.
type Ballot struct {
	Round uint64
	Node  uint32
}

// Less reports b < o.
func (b Ballot) Less(o Ballot) bool {
	if b.Round != o.Round {
		return b.Round < o.Round
	}
	return b.Node < o.Node
}

// IsZero reports whether b is the zero ballot (never promised).
func (b Ballot) IsZero() bool { return b.Round == 0 && b.Node == 0 }

func (b Ballot) String() string { return fmt.Sprintf("%d.%d", b.Round, b.Node) }

type msgKind uint8

const (
	mInvalid msgKind = iota
	// mPrepare: phase 1a — candidate asks for promises covering every
	// instance ≥ FromInst.
	mPrepare
	// mPromise: phase 1b — acceptor's promise, carrying its chosen count
	// and any accepted value at or beyond FromInst.
	mPromise
	// mNack rejects a Prepare or Accept that lost to a higher ballot.
	mNack
	// mAccept: phase 2a — leader proposes Val in instance Inst.
	mAccept
	// mAccepted: phase 2b — acceptor accepted (Ballot, Inst).
	mAccepted
	// mCommit announces a chosen value.
	mCommit
	// mHeartbeat is the leader's liveness beacon; carries its chosen count
	// so laggards detect gaps.
	mHeartbeat
	// mLearn asks a peer for chosen values starting at FromInst.
	mLearn
	// mLearnReply returns a batch of chosen values starting at FromInst.
	mLearnReply
	// mLearnNack tells a learner its requested prefix was compacted away;
	// FromInst carries the sender's compaction horizon. The learner needs
	// a checkpoint transfer (handled by the Rex layer) before it can
	// resume learning.
	mLearnNack
	// mEpochNack rejects a prepare/accept/heartbeat whose Epoch is behind
	// the receiver's active membership epoch. Epoch/FromInst/Val carry the
	// receiver's active membership (and its activation instance) so a
	// removed or lagging node learns the configuration it missed.
	mEpochNack
	// mLeaseGrant is a voter's read-lease grant in reply to a heartbeat:
	// Inst echoes the heartbeat's send-time stamp so the leader computes
	// lease expiry purely on its own clock. A granting voter refuses
	// prepares from anyone but the grantee until the grant expires.
	mLeaseGrant
)

func (k msgKind) String() string {
	switch k {
	case mPrepare:
		return "prepare"
	case mPromise:
		return "promise"
	case mNack:
		return "nack"
	case mAccept:
		return "accept"
	case mAccepted:
		return "accepted"
	case mCommit:
		return "commit"
	case mHeartbeat:
		return "heartbeat"
	case mLearn:
		return "learn"
	case mLearnReply:
		return "learn-reply"
	case mLearnNack:
		return "learn-nack"
	case mEpochNack:
		return "epoch-nack"
	case mLeaseGrant:
		return "lease-grant"
	}
	return fmt.Sprintf("msg(%d)", uint8(k))
}

// acceptedEntry is an acceptor's record for one instance.
type acceptedEntry struct {
	Inst   uint64
	Ballot Ballot
	Val    []byte
}

// message is the single wire type exchanged between nodes; fields are used
// per kind.
type message struct {
	Kind      msgKind
	Ballot    Ballot
	Inst      uint64 // mAccept/mAccepted/mCommit: instance; mHeartbeat/mLeaseGrant: lease time stamp
	FromInst  uint64 // mPrepare/mLearn/mLearnReply: starting instance
	ChosenSeq uint64 // mPromise/mHeartbeat: sender's chosen count
	Epoch     uint64 // membership epoch governing the message's instance
	Val       []byte // mAccept/mCommit: proposal value; mEpochNack: membership
	Accepted  []acceptedEntry
	Vals      [][]byte // mLearnReply: chosen values
}

func (m *message) encode() []byte {
	e := wire.NewEncoder(nil)
	e.Byte(byte(m.Kind))
	e.Uvarint(m.Ballot.Round)
	e.Uvarint(uint64(m.Ballot.Node))
	e.Uvarint(m.Inst)
	e.Uvarint(m.FromInst)
	e.Uvarint(m.ChosenSeq)
	e.Uvarint(m.Epoch)
	e.BytesVal(m.Val)
	e.Uvarint(uint64(len(m.Accepted)))
	for _, a := range m.Accepted {
		e.Uvarint(a.Inst)
		e.Uvarint(a.Ballot.Round)
		e.Uvarint(uint64(a.Ballot.Node))
		e.BytesVal(a.Val)
	}
	e.Uvarint(uint64(len(m.Vals)))
	for _, v := range m.Vals {
		e.BytesVal(v)
	}
	return e.Bytes()
}

func decodeMessage(buf []byte) (*message, error) {
	d := wire.NewDecoder(buf)
	m := &message{}
	m.Kind = msgKind(d.Byte())
	m.Ballot.Round = d.Uvarint()
	m.Ballot.Node = uint32(d.Uvarint())
	m.Inst = d.Uvarint()
	m.FromInst = d.Uvarint()
	m.ChosenSeq = d.Uvarint()
	m.Epoch = d.Uvarint()
	m.Val = append([]byte(nil), d.BytesVal()...)
	nAcc := d.Uvarint()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if nAcc > 1<<20 {
		return nil, wire.ErrCorrupt
	}
	for i := uint64(0); i < nAcc; i++ {
		a := acceptedEntry{Inst: d.Uvarint()}
		a.Ballot.Round = d.Uvarint()
		a.Ballot.Node = uint32(d.Uvarint())
		a.Val = append([]byte(nil), d.BytesVal()...)
		m.Accepted = append(m.Accepted, a)
	}
	nVals := d.Uvarint()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if nVals > 1<<20 {
		return nil, wire.ErrCorrupt
	}
	for i := uint64(0); i < nVals; i++ {
		m.Vals = append(m.Vals, append([]byte(nil), d.BytesVal()...))
	}
	if m.Kind == mInvalid || m.Kind > mLeaseGrant {
		return nil, wire.ErrCorrupt
	}
	return m, d.Err()
}
