package paxos

import (
	"testing"
	"time"

	"rex/internal/sim"
	"rex/internal/storage"
	"rex/internal/transport"
)

func TestLeaseAcquiredByLeaderOnly(t *testing.T) {
	e := sim.New(4)
	e.Run(func() {
		c := newCluster(e, 3, 11)
		c.start()
		lead := c.waitLeader(t, 2*time.Second)
		// A couple of heartbeat rounds bank the grants.
		deadline := e.Now() + 2*time.Second
		for !c.nodes[lead].LeaseValid() && e.Now() < deadline {
			e.Sleep(5 * time.Millisecond)
		}
		if !c.nodes[lead].LeaseValid() {
			t.Fatal("leader never acquired a read lease")
		}
		for i, n := range c.nodes {
			if i != lead && n.LeaseValid() {
				t.Fatalf("follower %d claims a lease", i)
			}
		}
		c.stop()
	})
}

func TestLeaseFencing(t *testing.T) {
	// The safety property: the old leader's lease must be invalid (on its
	// own clock) before any new leader can complete an election. Isolate
	// the leader and watch both conditions at fine granularity.
	e := sim.New(4)
	e.Run(func() {
		c := newCluster(e, 3, 12)
		c.start()
		old := c.waitLeader(t, 2*time.Second)
		deadline := e.Now() + 2*time.Second
		for !c.nodes[old].LeaseValid() && e.Now() < deadline {
			e.Sleep(5 * time.Millisecond)
		}
		if !c.nodes[old].LeaseValid() {
			t.Fatal("leader never acquired a read lease")
		}
		c.net.Isolate(old, true)
		// Poll every simulated millisecond: whenever a new leader exists,
		// the isolated leader's lease must already have expired.
		deadline = e.Now() + 5*time.Second
		sawNewLeader := false
		for e.Now() < deadline {
			newLead := -1
			for i, n := range c.nodes {
				if i != old && n.IsLeader() {
					newLead = i
				}
			}
			if newLead >= 0 {
				sawNewLeader = true
				if c.nodes[old].LeaseValid() {
					t.Fatalf("node %d leads while old leader %d still holds its lease", newLead, old)
				}
			}
			e.Sleep(time.Millisecond)
		}
		if !sawNewLeader {
			t.Fatal("no new leader emerged after isolating the old one")
		}
		c.stop()
	})
}

func TestLeaseFailoverLiveness(t *testing.T) {
	// Grant suppression must delay, not prevent, elections: after the
	// leader dies, a replacement emerges within a few timeouts.
	e := sim.New(4)
	e.Run(func() {
		c := newCluster(e, 3, 13)
		c.start()
		old := c.waitLeader(t, 2*time.Second)
		e.Sleep(200 * time.Millisecond) // leases well established
		c.net.Isolate(old, true)
		start := e.Now()
		deadline := start + 3*time.Second
		for e.Now() < deadline {
			for i, n := range c.nodes {
				if i != old && n.IsLeader() {
					c.stop()
					return
				}
			}
			e.Sleep(5 * time.Millisecond)
		}
		t.Fatal("no new leader within 3s of isolating the lease holder")
	})
}

func TestLeaseDisabled(t *testing.T) {
	e := sim.New(4)
	e.Run(func() {
		const n = 3
		net := transport.NewNetwork(e, n, time.Millisecond, 14)
		var nodes []*Node
		for i := 0; i < n; i++ {
			node, err := NewNode(Config{
				ID: i, N: n, Env: e,
				Endpoint:        net.Endpoint(i),
				Log:             storage.NewMemLog(),
				HeartbeatEvery:  20 * time.Millisecond,
				ElectionTimeout: 100 * time.Millisecond,
				LeaseDuration:   -1,
				Seed:            14,
			})
			if err != nil {
				t.Fatal(err)
			}
			nodes = append(nodes, node)
		}
		for _, nd := range nodes {
			nd.Start()
		}
		deadline := e.Now() + 2*time.Second
		lead := -1
		for e.Now() < deadline && lead < 0 {
			for i, nd := range nodes {
				if nd.IsLeader() {
					lead = i
				}
			}
			e.Sleep(5 * time.Millisecond)
		}
		if lead < 0 {
			t.Fatal("no leader with leases disabled")
		}
		e.Sleep(200 * time.Millisecond)
		if nodes[lead].LeaseValid() {
			t.Fatal("LeaseValid with leases disabled")
		}
		for _, nd := range nodes {
			nd.Stop()
		}
	})
}
