package paxos

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"rex/internal/env"
	"rex/internal/reconfig"
	"rex/internal/storage"
	"rex/internal/transport"
	"rex/internal/wire"
)

// Config configures a Paxos node.
type Config struct {
	ID       int
	N        int
	Env      env.Env
	Endpoint transport.Endpoint
	Log      storage.Log

	// Members is the initial membership. When nil, the classic static
	// configuration reconfig.Initial(N) (voters 0..N-1, epoch 0) is used.
	// A node joining an existing cluster passes that cluster's current
	// membership (which need not include the joiner: it participates as a
	// learner until a committed change adds it).
	Members *reconfig.Membership

	// HeartbeatEvery is the leader's beacon period; ElectionTimeout is the
	// base follower patience (actual deadline adds up to 100% random
	// slack, seeded by Seed, so elections are deterministic under the
	// simulator).
	HeartbeatEvery  time.Duration
	ElectionTimeout time.Duration
	Tick            time.Duration
	Seed            int64

	// LeaseDuration is the quorum read-lease window piggybacked on
	// heartbeats (see lease.go). 0 defaults to 4×HeartbeatEvery; negative
	// disables leases entirely. Must stay well below ElectionTimeout or
	// grant suppression will delay recovery from a dead leader.
	LeaseDuration time.Duration
	// ClockSkewBound is the allowance for clock-rate drift between
	// replicas over one lease window, subtracted from the leader's
	// computed expiry. 0 defaults to LeaseDuration/8.
	ClockSkewBound time.Duration

	// PipelineDepth is the number of consensus instances that may be open
	// concurrently. 1 (the default) is the paper's one-active-instance
	// design (§3.1); higher values implement the paper's piggyback
	// alternative: an acceptor accepts instance i+1 only if it has
	// accepted instance i, so committed traces still chain without holes.
	PipelineDepth int

	// OnCommitted fires for every chosen instance in order. It runs on the
	// node's event loop and must not block for long.
	OnCommitted func(inst uint64, val []byte)
	// OnBecomeLeader fires when this replica has completed phase 1 across
	// all open instances without seeing a higher ballot AND every instance
	// that might have been committed has been committed locally — i.e.
	// when the paper's new primary has "learned the trace committed in the
	// last instance" (§3.2).
	OnBecomeLeader func()
	// OnNewLeader fires whenever a higher ballot owned by another replica
	// is observed (§3.1): the signal for primary demotion.
	OnNewLeader func(leader int)
	// OnSnapshotGap fires when a peer reports that the chosen prefix this
	// learner needs was compacted away: the replica must obtain a
	// checkpoint covering at least minInst and call AdvanceTo.
	OnSnapshotGap func(minInst uint64)
	// OnMembership fires on the event loop whenever a committed membership
	// change reaches its activation instance and the node switches quorum
	// and peer sets to it.
	OnMembership func(m reconfig.Membership)
	// OnRemoved fires once when an activated membership no longer includes
	// this node: it has been removed from the cluster and should go quiet.
	OnRemoved func(m reconfig.Membership)
	// OnStorageFault, if set, fires when a WAL write fails. The node then
	// goes silent — endpoint and inbox closed, event loop exited — which is
	// the crash-stop behaviour consensus safety assumes: a promise or
	// acceptance that did not reach disk is never advertised. When unset, a
	// WAL write failure panics (a process with a dead disk cannot continue).
	OnStorageFault func(err error)
	// Logf, if set, receives diagnostic logging.
	Logf func(format string, args ...any)

	// Metrics, if set, receives consensus counters and the propose→commit
	// latency histogram. NewNode substitutes a private set when nil, so
	// instrumentation sites never nil-check.
	Metrics *Metrics
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf("paxos[%d] "+format, append([]any{c.ID}, args...)...)
	}
}

// Node is one replica's Paxos engine. All state is owned by the event-loop
// task; external methods communicate through the inbox.
type Node struct {
	cfg   Config
	inbox env.Chan
	rng   *rand.Rand

	// Acceptor state (durable).
	promised Ballot
	accepted map[uint64]acceptedEntry

	// Learner state (durable). chosen[i] is the value of instance
	// chosenBase+i; chosenSeq = chosenBase + len(chosen).
	chosen     [][]byte
	chosenBase uint64
	chosenSeq  uint64
	pendingVal map[uint64][]byte // commits received out of order

	// Leadership.
	leaderBallot Ballot
	curLeader    int
	isLeader     bool

	// Candidate state.
	preparing  bool
	prepBallot Ballot
	promises   map[int]*message
	prepSent   time.Duration

	// Proposer state. inflight holds the open instances (at most
	// PipelineDepth); nextPropose is the next instance to open.
	proposeQ      [][]byte
	inflight      map[uint64]*inflightState
	nextPropose   uint64
	announceAfter bool // fire OnBecomeLeader once re-proposals commit

	lastHeartbeat    time.Duration
	electionDeadline time.Duration
	stopped          bool

	// Read-lease state (lease.go). Voter side: leaseTo/leaseUntil is the
	// silent window granted to the current leader. Leader side: grantAt
	// records the latest acked heartbeat stamp per voter; leaseExpiry
	// publishes the computed window end for lock-free LeaseValid reads.
	leaseTo     int
	leaseUntil  time.Duration
	grantAt     map[int]time.Duration
	leaseExpiry atomic.Int64

	// Membership schedule: configs[i] governs every instance in
	// [configs[i].FromInst, configs[i+1].FromInst). Always non-empty,
	// sorted by FromInst (equivalently by epoch: both grow in commit
	// order). activeEpoch caches configAt(chosenSeq).Epoch; wasMember
	// tracks whether this node belonged to the active config, so only a
	// member→non-member transition counts as removal (a joiner replaying
	// history is absent from every pre-admission config); removedFired
	// latches OnRemoved; learnRR rotates a learner's catch-up targets.
	configs      []reconfig.Scheduled
	activeEpoch  uint64
	wasMember    bool
	removedFired bool
	learnRR      int

	// Batched-persistence state. Handlers append durable records to the
	// walEnc arena (walEnds marks record boundaries) and queue outgoing
	// messages and commit callbacks instead of acting immediately; the
	// event loop flushes everything it drained from the inbox with ONE
	// AppendBatch — so N messages cost one fsync, not N — and only then
	// releases the sends and callbacks. Persistence therefore still
	// happens before any state is advertised, exactly as in the
	// record-per-fsync design.
	walEnc   *wire.Encoder
	walEnds  []int    // arena offset after each pending record
	walRecs  [][]byte // scratch sub-slice view passed to AppendBatch
	outbox   []outMsg
	commits  []commitNote
}

// outMsg is a deferred send; to < 0 broadcasts.
type outMsg struct {
	to int
	m  *message
}

// commitNote is a deferred OnCommitted callback, or (promote=true) a
// deferred OnBecomeLeader announcement queued behind the commits it
// depends on so the callbacks fire in the same order as the
// record-per-fsync design.
type commitNote struct {
	inst    uint64
	val     []byte
	promote bool
}

// inflightState tracks one open phase-2 instance at the leader.
type inflightState struct {
	val    []byte
	acks   map[int]bool
	sentAt time.Duration
}

// internal inbox commands
type netMsg struct {
	m    *message
	from int
}
type tickMsg struct{}
type proposeCmd struct{ val []byte }
type compactCmd struct{ upTo uint64 }
type stopCmd struct{ done env.Chan }
type chosenReq struct{ reply env.Chan }
type advanceCmd struct{ to uint64 }
type adoptCmd struct{ configs []reconfig.Scheduled }

// ChosenState is a consistent snapshot of the learner's state, safe to
// request from any task.
type ChosenState struct {
	Base uint64
	Vals [][]byte
	Seq  uint64
	// Configs is the membership schedule relevant from Base on: the config
	// governing Base plus everything scheduled later. Checkpoint transfers
	// carry it so a restored learner knows the quorums for the instances
	// it skipped.
	Configs []reconfig.Scheduled
}

// NewNode creates a node, recovering durable state from cfg.Log. Call
// Start to begin participating. Chosen values recovered from the log are
// available via Chosen()/ChosenSeq() before Start and do not re-fire
// OnCommitted.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Tick <= 0 {
		cfg.Tick = cfg.HeartbeatEvery / 2
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 10 * time.Millisecond
	}
	if cfg.PipelineDepth <= 0 {
		cfg.PipelineDepth = 1
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics()
	}
	switch {
	case cfg.LeaseDuration < 0:
		cfg.LeaseDuration = 0 // disabled
	case cfg.LeaseDuration == 0:
		cfg.LeaseDuration = 4 * cfg.HeartbeatEvery
	}
	if cfg.ClockSkewBound <= 0 {
		cfg.ClockSkewBound = cfg.LeaseDuration / 8
	}
	n := &Node{
		cfg:        cfg,
		inbox:      cfg.Env.NewChan(0),
		rng:        rand.New(rand.NewSource(cfg.Seed ^ int64(cfg.ID)*0x9e3779b9)),
		accepted:   make(map[uint64]acceptedEntry),
		pendingVal: make(map[uint64][]byte),
		inflight:   make(map[uint64]*inflightState),
		curLeader:  -1,
		leaseTo:    -1,
		grantAt:    make(map[int]time.Duration),
		walEnc:     wire.NewEncoder(nil),
	}
	base := reconfig.Initial(cfg.N)
	if cfg.Members != nil {
		if err := cfg.Members.Validate(); err != nil {
			return nil, err
		}
		base = cfg.Members.Clone()
	}
	n.configs = []reconfig.Scheduled{{FromInst: 0, M: base}}
	if err := n.recover(); err != nil {
		return nil, err
	}
	n.pruneConfigs()
	n.activeEpoch = n.activeConfig().Epoch
	n.wasMember = n.activeConfig().IsMember(cfg.ID)
	return n, nil
}

// Durable record kinds.
const (
	recPromised byte = 1
	recAccepted byte = 2
	recChosen   byte = 3
	recAdvance  byte = 4
	recConfig   byte = 5
)

func (n *Node) recover() error {
	recs, err := n.cfg.Log.Records()
	if err != nil {
		return err
	}
	chosenMap := make(map[uint64][]byte)
	var maxChosen, advTo uint64
	hasChosen := false
	for _, rec := range recs {
		d := wire.NewDecoder(rec)
		switch d.Byte() {
		case recAdvance:
			if to := d.Uvarint(); to > advTo {
				advTo = to
			}
		case recPromised:
			n.promised = Ballot{Round: d.Uvarint(), Node: uint32(d.Uvarint())}
		case recAccepted:
			a := acceptedEntry{Inst: d.Uvarint()}
			a.Ballot = Ballot{Round: d.Uvarint(), Node: uint32(d.Uvarint())}
			a.Val = append([]byte(nil), d.BytesVal()...)
			if d.Err() == nil {
				n.accepted[a.Inst] = a
			}
		case recChosen:
			inst := d.Uvarint()
			val := append([]byte(nil), d.BytesVal()...)
			if d.Err() == nil {
				chosenMap[inst] = val
				if !hasChosen || inst > maxChosen {
					maxChosen = inst
				}
				hasChosen = true
			}
		case recConfig:
			from := d.Uvarint()
			mv := d.BytesVal()
			if d.Err() == nil {
				m, merr := reconfig.DecodeValue(mv)
				if merr != nil {
					return fmt.Errorf("paxos: corrupt membership record: %w", merr)
				}
				n.recoverConfig(reconfig.Scheduled{FromInst: from, M: m})
			}
		}
		if d.Err() != nil {
			return fmt.Errorf("paxos: corrupt log record: %w", d.Err())
		}
	}
	if hasChosen {
		// Find the lowest chosen instance at or above any advance marker
		// (the compaction base) and take the contiguous run from there.
		lo := maxChosen
		for inst := range chosenMap {
			if inst < lo && inst >= advTo {
				lo = inst
			}
		}
		if lo < advTo {
			lo = advTo
		}
		n.chosenBase = lo
		for inst := lo; ; inst++ {
			v, ok := chosenMap[inst]
			if !ok {
				break
			}
			n.chosen = append(n.chosen, v)
		}
		n.chosenSeq = n.chosenBase + uint64(len(n.chosen))
	}
	if advTo > n.chosenSeq {
		n.chosenBase = advTo
		n.chosen = nil
		n.chosenSeq = advTo
	}
	return nil
}

// storageFault unwinds the event loop when a WAL write fails; loop()
// recovers it and takes the node crash-stop silent (see OnStorageFault).
type storageFault struct{ err error }

func (n *Node) storageFailed(op string, err error) {
	panic(storageFault{err: fmt.Errorf("paxos: log %s failed: %w", op, err)})
}

// walEnd closes the record currently being written into the arena.
func (n *Node) walEnd() {
	n.walEnds = append(n.walEnds, n.walEnc.Len())
}

func (n *Node) persistPromised() {
	e := n.walEnc
	e.Byte(recPromised)
	e.Uvarint(n.promised.Round)
	e.Uvarint(uint64(n.promised.Node))
	n.walEnd()
}

func (n *Node) persistAccepted(a acceptedEntry) {
	e := n.walEnc
	e.Byte(recAccepted)
	e.Uvarint(a.Inst)
	e.Uvarint(a.Ballot.Round)
	e.Uvarint(uint64(a.Ballot.Node))
	e.BytesVal(a.Val)
	n.walEnd()
}

func (n *Node) persistChosen(inst uint64, val []byte) {
	e := n.walEnc
	e.Byte(recChosen)
	e.Uvarint(inst)
	e.BytesVal(val)
	n.walEnd()
}

// flushWAL retires every record pending in the arena with one AppendBatch
// (one fsync under a file log). A failure unwinds into the crash-stop
// storage-fault path before anything queued behind the records (sends,
// commit callbacks) is released.
func (n *Node) flushWAL() {
	if len(n.walEnds) == 0 {
		return
	}
	buf := n.walEnc.Bytes()
	recs := n.walRecs[:0]
	prev := 0
	for _, end := range n.walEnds {
		recs = append(recs, buf[prev:end:end])
		prev = end
	}
	n.walRecs = recs
	n.cfg.Metrics.PersistBatch.Observe(uint64(len(recs)))
	err := n.cfg.Log.AppendBatch(recs)
	// The log has retired (or rejected) the batch; the arena is ours again.
	n.walEnc.Reset()
	n.walEnds = n.walEnds[:0]
	if err != nil {
		n.storageFailed("append", err)
	}
}

// flushBatch releases everything deferred during the current drain cycle,
// in durability order: WAL first, then commit callbacks, then sends.
func (n *Node) flushBatch() {
	n.flushWAL()
	if len(n.commits) > 0 {
		// n.commits may grow while we iterate (OnCommitted is documented
		// to run on the event loop and must not re-enter, but commitValue
		// itself is not called from callbacks) — iterate by index anyway
		// so an append during iteration cannot be skipped.
		for i := 0; i < len(n.commits); i++ {
			c := n.commits[i]
			switch {
			case c.promote:
				if n.cfg.OnBecomeLeader != nil {
					n.cfg.OnBecomeLeader()
				}
			case n.cfg.OnCommitted != nil:
				n.cfg.OnCommitted(c.inst, c.val)
			}
			n.commits[i] = commitNote{}
		}
		n.commits = n.commits[:0]
	}
	if len(n.outbox) > 0 {
		for i := range n.outbox {
			o := n.outbox[i]
			payload := o.m.encode()
			if o.to < 0 {
				for _, peer := range n.peerList() {
					n.cfg.Endpoint.Send(peer, payload)
				}
			} else {
				n.cfg.Endpoint.Send(o.to, payload)
			}
			n.outbox[i] = outMsg{}
		}
		n.outbox = n.outbox[:0]
	}
}

// Chosen returns the in-memory chosen values starting at base (values
// before base were compacted away after a checkpoint).
func (n *Node) Chosen() (base uint64, vals [][]byte) {
	return n.chosenBase, n.chosen
}

// ChosenSeq returns the number of instances known chosen.
func (n *Node) ChosenSeq() uint64 { return n.chosenSeq }

// Start launches the node's tasks: the event loop, the network pump, and
// the ticker.
func (n *Node) Start() {
	e := n.cfg.Env
	n.electionDeadline = e.Now() + n.electionTimeout()
	e.Go(fmt.Sprintf("paxos-%d-pump", n.cfg.ID), func() {
		for {
			payload, from, ok := n.cfg.Endpoint.Recv()
			if !ok {
				return
			}
			m, err := decodeMessage(payload)
			if err != nil {
				n.cfg.logf("dropping corrupt message from %d: %v", from, err)
				continue
			}
			if !n.inbox.Send(netMsg{m: m, from: from}) {
				return
			}
		}
	})
	e.Go(fmt.Sprintf("paxos-%d-tick", n.cfg.ID), func() {
		for {
			e.Sleep(n.cfg.Tick)
			if !n.inbox.Send(tickMsg{}) {
				return
			}
		}
	})
	e.Go(fmt.Sprintf("paxos-%d-loop", n.cfg.ID), n.loop)
}

// Propose enqueues val for consensus. Only the leader's queue drains; a
// non-leader discards its queue when it observes a new leader.
func (n *Node) Propose(val []byte) {
	n.inbox.Send(proposeCmd{val: val})
}

// AdvanceTo fast-forwards the learner past a compacted prefix after the
// replica obtained a checkpoint covering every instance below `to`. The
// learner then resumes learning normal chosen values from `to`.
func (n *Node) AdvanceTo(to uint64) {
	n.inbox.Send(advanceCmd{to: to})
}

// Compact discards chosen values below upTo (they are covered by a
// checkpoint) and rewrites the durable log.
func (n *Node) Compact(upTo uint64) {
	n.inbox.Send(compactCmd{upTo: upTo})
}

// ChosenSnapshot returns a consistent copy of the learner state, safe to
// call from any task while the node is running.
func (n *Node) ChosenSnapshot() ChosenState {
	reply := n.cfg.Env.NewChan(1)
	if !n.inbox.Send(chosenReq{reply: reply}) {
		return ChosenState{Base: n.chosenBase, Seq: n.chosenSeq}
	}
	v, ok := reply.Recv()
	if !ok {
		// The loop exited (stop or storage fault) before answering.
		return ChosenState{Base: n.chosenBase, Seq: n.chosenSeq}
	}
	return v.(ChosenState)
}

// Stop shuts the node down and waits for the event loop to exit.
func (n *Node) Stop() {
	done := n.cfg.Env.NewChan(1)
	if !n.inbox.Send(stopCmd{done: done}) {
		return
	}
	done.Recv()
}

func (n *Node) electionTimeout() time.Duration {
	base := n.cfg.ElectionTimeout
	return base + time.Duration(n.rng.Int63n(int64(base)+1))
}

// send and broadcast queue into the outbox; the event loop releases the
// messages only after the WAL batch holding any state they advertise has
// been flushed (see flushBatch).
func (n *Node) send(to int, m *message) {
	n.outbox = append(n.outbox, outMsg{to: to, m: m})
}

func (n *Node) broadcast(m *message) {
	n.outbox = append(n.outbox, outMsg{to: -1, m: m})
}

func (n *Node) loop() {
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		sf, ok := v.(storageFault)
		if !ok {
			panic(v)
		}
		if n.cfg.OnStorageFault == nil {
			panic(sf.err.Error())
		}
		// Crash-stop: drop off the network before reporting, so no state
		// that failed to persist is ever advertised to a peer.
		n.stopped = true
		n.cfg.Endpoint.Close()
		n.inbox.Close()
		n.cfg.logf("storage fault, going silent: %v", sf.err)
		n.cfg.OnStorageFault(sf.err)
	}()
	// Drain greedily: one blocking Recv, then non-blocking TryRecv until the
	// inbox is empty (capped so a firehose cannot starve the flush). All the
	// durable records the drained handlers produced retire with ONE
	// AppendBatch in flushBatch — the group-commit half of the paper's
	// agree-stage pipelining — before any send or callback they queued is
	// released.
	const maxDrain = 256
	for {
		v, ok := n.inbox.Recv()
		if !ok {
			return
		}
		if n.handleCmd(v) {
			return
		}
		for drained := 0; drained < maxDrain; drained++ {
			v, ok, _ = n.inbox.TryRecv()
			if !ok {
				break
			}
			if n.handleCmd(v) {
				return
			}
		}
		n.flushBatch()
	}
}

// handleCmd dispatches one inbox value; it returns true when the event
// loop must exit.
func (n *Node) handleCmd(v any) (quit bool) {
	switch c := v.(type) {
	case netMsg:
		n.handleMessage(c.m, c.from)
	case tickMsg:
		n.handleTick()
	case proposeCmd:
		if n.isLeader {
			n.proposeQ = append(n.proposeQ, c.val)
			n.proposeNext()
		} else {
			n.cfg.logf("dropping proposal while not leader")
		}
	case compactCmd:
		// Rewrite replaces the whole log; records still pending in the
		// arena must reach the old log first so the snapshot supersedes
		// rather than races them.
		n.flushWAL()
		n.handleCompact(c.upTo)
	case advanceCmd:
		if c.to > n.chosenSeq {
			e := n.walEnc
			e.Byte(recAdvance)
			e.Uvarint(c.to)
			n.walEnd()
			n.chosenBase = c.to
			n.chosen = nil
			n.chosenSeq = c.to
			for inst := range n.accepted {
				if inst < c.to {
					delete(n.accepted, inst)
				}
			}
			n.checkActivation()
			// Values committed past the gap were stashed; fold in any
			// that are now contiguous.
			if v, ok := n.pendingVal[n.chosenSeq]; ok {
				delete(n.pendingVal, n.chosenSeq)
				n.commitValue(n.chosenSeq, v, n.cfg.ID)
			}
		}
	case adoptCmd:
		for _, sc := range c.configs {
			n.scheduleConfig(sc, true)
		}
	case chosenReq:
		// Snapshots promise durable state, as the record-per-fsync design
		// delivered by construction.
		n.flushWAL()
		c.reply.Send(ChosenState{
			Base:    n.chosenBase,
			Vals:    append([][]byte(nil), n.chosen...),
			Seq:     n.chosenSeq,
			Configs: n.scheduledConfigs(n.chosenBase),
		})
	case stopCmd:
		n.flushBatch()
		n.stopped = true
		n.leaseExpiry.Store(0)
		n.cfg.Endpoint.Close()
		n.inbox.Close()
		c.done.Send(struct{}{})
		return true
	}
	return false
}

func (n *Node) handleTick() {
	now := n.cfg.Env.Now()
	if n.isLeader {
		if now-n.lastHeartbeat >= n.cfg.HeartbeatEvery {
			n.lastHeartbeat = now
			n.cfg.Metrics.Heartbeats.Inc()
			hb := &message{Kind: mHeartbeat, Ballot: n.prepBallot, ChosenSeq: n.chosenSeq, Epoch: n.activeEpoch}
			n.stampHeartbeat(hb, now)
			n.broadcast(hb)
		}
		// Retransmit stuck proposals (lost Accept or Accepted), in
		// instance order so the acceptor-side chaining guard is satisfied.
		for inst := n.chosenSeq; inst < n.nextPropose; inst++ {
			if st, ok := n.inflight[inst]; ok && now-st.sentAt >= 4*n.cfg.Tick {
				st.sentAt = now
				n.broadcast(&message{Kind: mAccept, Ballot: n.prepBallot, Inst: inst, Val: st.val, Epoch: n.epochAt(inst)})
			}
		}
		return
	}
	if !n.isVoter() {
		// A learner cannot lead; its election timeout instead drives
		// catch-up from the voters until a committed change promotes it.
		if now >= n.electionDeadline {
			n.learnTick()
		}
		return
	}
	if n.preparing && now-n.prepSent >= 4*n.cfg.Tick {
		// Retransmit the Prepare (lost messages).
		n.prepSent = now
		n.broadcast(&message{Kind: mPrepare, Ballot: n.prepBallot, FromInst: n.chosenSeq, Epoch: n.activeEpoch})
	}
	if now >= n.electionDeadline {
		if n.holdElection() {
			// Our grant to the (possibly dead) leader is still live: peers
			// in the same window would suppress the prepare anyway. Retry
			// once the grant has run out.
			n.electionDeadline = n.leaseUntil
			return
		}
		n.startElection()
	}
}

func (n *Node) startElection() {
	now := n.cfg.Env.Now()
	round := n.leaderBallot.Round
	if n.promised.Round > round {
		round = n.promised.Round
	}
	if n.prepBallot.Round > round {
		round = n.prepBallot.Round
	}
	n.prepBallot = Ballot{Round: round + 1, Node: uint32(n.cfg.ID)}
	n.preparing = true
	n.promises = make(map[int]*message)
	n.prepSent = now
	n.electionDeadline = now + n.electionTimeout()
	n.cfg.Metrics.Elections.Inc()
	n.cfg.logf("starting election with ballot %v from instance %d", n.prepBallot, n.chosenSeq)
	n.broadcast(&message{Kind: mPrepare, Ballot: n.prepBallot, FromInst: n.chosenSeq, Epoch: n.activeEpoch})
}

// observeBallot tracks the highest ballot seen and fires leadership
// callbacks. Returns false if b is stale.
func (n *Node) observeBallot(b Ballot) {
	if n.leaderBallot.Less(b) {
		n.leaderBallot = b
		newLeader := int(b.Node)
		if n.isLeader && newLeader != n.cfg.ID {
			n.cfg.logf("deposed by ballot %v", b)
			n.isLeader = false
			n.inflight = make(map[uint64]*inflightState)
			n.proposeQ = nil
			n.dropLease()
		}
		if newLeader != n.curLeader {
			n.curLeader = newLeader
			if newLeader != n.cfg.ID && n.cfg.OnNewLeader != nil {
				n.cfg.OnNewLeader(newLeader)
			}
		}
		if n.preparing && n.prepBallot.Less(b) {
			n.preparing = false
		}
	}
}

func (n *Node) handleMessage(m *message, from int) {
	if n.stopped {
		return
	}
	switch m.Kind {
	case mPrepare:
		n.onPrepare(m, from)
	case mPromise:
		n.onPromise(m, from)
	case mNack:
		n.onNack(m, from)
	case mAccept:
		n.onAccept(m, from)
	case mAccepted:
		n.onAccepted(m, from)
	case mCommit:
		n.observeBallot(m.Ballot)
		n.bumpLeaderContact(from)
		n.commitValue(m.Inst, m.Val, from)
	case mHeartbeat:
		n.onHeartbeat(m, from)
	case mLearn:
		n.onLearn(m, from)
	case mLearnReply:
		for i, v := range m.Vals {
			n.commitValue(m.FromInst+uint64(i), v, from)
		}
	case mLearnNack:
		if m.FromInst > n.chosenSeq && n.cfg.OnSnapshotGap != nil {
			n.cfg.OnSnapshotGap(m.FromInst)
		}
	case mEpochNack:
		n.onEpochNack(m, from)
	case mLeaseGrant:
		n.onLeaseGrant(m, from)
	}
}

func (n *Node) bumpLeaderContact(from int) {
	if from == n.curLeader {
		n.electionDeadline = n.cfg.Env.Now() + n.electionTimeout()
	}
}

func (n *Node) onPrepare(m *message, from int) {
	if !n.isVoter() {
		return // learners never promise
	}
	if m.Epoch < n.activeEpoch || (m.Epoch == n.activeEpoch && !n.activeConfig().IsVoter(from)) {
		// The candidate's membership view is stale (it may have been
		// removed): refuse, and teach it the configuration it missed.
		n.sendEpochNack(from)
		return
	}
	if n.suppressPrepare(from) {
		// Inside a read-lease silent window granted to another node: a
		// promise now could elect a leader while the lease holder still
		// serves lease reads. Drop silently; the candidate retries after
		// the window.
		return
	}
	if m.Ballot.Less(n.promised) {
		n.cfg.Metrics.NacksSent.Inc()
		n.send(from, &message{Kind: mNack, Ballot: n.promised})
		return
	}
	if n.promised.Less(m.Ballot) {
		n.promised = m.Ballot
		n.persistPromised()
	}
	n.observeBallot(m.Ballot)
	// A prepare from a live candidate resets the election timer: give the
	// election a chance to complete before competing.
	n.electionDeadline = n.cfg.Env.Now() + n.electionTimeout()
	reply := &message{Kind: mPromise, Ballot: m.Ballot, ChosenSeq: n.chosenSeq}
	for inst, a := range n.accepted {
		if inst >= m.FromInst {
			reply.Accepted = append(reply.Accepted, a)
		}
	}
	n.send(from, reply)
}

func (n *Node) onPromise(m *message, from int) {
	if !n.preparing || m.Ballot != n.prepBallot {
		return
	}
	n.promises[from] = m
	if m.ChosenSeq > n.chosenSeq {
		// A peer knows more chosen instances: learn them before leading.
		n.cfg.Metrics.LearnReqs.Inc()
		n.send(from, &message{Kind: mLearn, FromInst: n.chosenSeq})
	}
	n.tryCompleteElection()
}

func (n *Node) tryCompleteElection() {
	if !n.preparing {
		return
	}
	// Quorum intersection across the activation horizon: open instances ≥
	// chosenSeq may be governed by the active config OR by any change
	// scheduled after it, so the candidate needs a promise majority in
	// every one of them before it may adopt-and-reproprose.
	for _, sc := range n.scheduledConfigs(n.chosenSeq) {
		got := 0
		for id := range n.promises {
			if sc.M.IsVoter(id) {
				got++
			}
		}
		if got < sc.M.Quorum() {
			return
		}
	}
	var maxChosen uint64
	for _, p := range n.promises {
		if p.ChosenSeq > maxChosen {
			maxChosen = p.ChosenSeq
		}
	}
	if n.chosenSeq < maxChosen {
		return // still catching up; LearnReply will re-trigger
	}
	// Phase 1 complete: adopt the highest-ballot accepted value for every
	// open instance (with pipelining there can be several) and re-run
	// phase 2 for them in order.
	for _, p := range n.promises {
		for i := range p.Accepted {
			a := p.Accepted[i]
			if a.Inst < n.chosenSeq {
				continue
			}
			if cur, ok := n.accepted[a.Inst]; !ok || cur.Ballot.Less(a.Ballot) {
				n.accepted[a.Inst] = a
			}
		}
	}
	n.preparing = false
	n.isLeader = true
	n.curLeader = n.cfg.ID
	n.leaderBallot = n.prepBallot
	n.lastHeartbeat = 0
	n.dropLease() // fresh leadership starts with no grants banked
	n.nextPropose = n.chosenSeq
	n.cfg.Metrics.LeaderWins.Inc()
	n.cfg.logf("won election with ballot %v at instance %d", n.prepBallot, n.chosenSeq)
	if a, ok := n.accepted[n.chosenSeq]; ok {
		n.announceAfter = true
		n.startPhase2(n.chosenSeq, a.Val)
		return
	}
	n.becomeLeaderNow()
}

func (n *Node) becomeLeaderNow() {
	n.announceAfter = false
	// Queue the announcement behind any commits already pending so the
	// replica layer observes them before the promotion, exactly as when
	// OnCommitted fired inline.
	n.commits = append(n.commits, commitNote{promote: true})
	n.proposeNext()
}

func (n *Node) onNack(m *message, from int) {
	_ = from
	n.cfg.Metrics.NacksRecv.Inc()
	if n.prepBallot.Less(m.Ballot) || n.promised.Less(m.Ballot) {
		n.observeBallot(m.Ballot)
		if n.preparing {
			n.preparing = false
			n.electionDeadline = n.cfg.Env.Now() + n.electionTimeout()
		}
	}
}

func (n *Node) onAccept(m *message, from int) {
	if !n.configAt(m.Inst).IsVoter(n.cfg.ID) {
		return // learners never accept
	}
	if m.Epoch < n.epochAt(m.Inst) {
		n.sendEpochNack(from)
		return
	}
	if m.Ballot.Less(n.promised) {
		n.cfg.Metrics.NacksSent.Inc()
		n.send(from, &message{Kind: mNack, Ballot: n.promised})
		return
	}
	if n.promised.Less(m.Ballot) {
		n.promised = m.Ballot
		n.persistPromised()
	}
	n.observeBallot(m.Ballot)
	n.electionDeadline = n.cfg.Env.Now() + n.electionTimeout()
	if m.Inst >= n.chosenSeq {
		if m.Inst > n.chosenSeq {
			// Piggyback chaining (§3.1): accept instance i only if i-1 was
			// accepted (or already chosen), so the committed sequence of
			// traces can never have a hole. The leader retransmits in
			// order, so a dropped predecessor heals itself.
			if _, ok := n.accepted[m.Inst-1]; !ok {
				return
			}
		}
		a := acceptedEntry{Inst: m.Inst, Ballot: m.Ballot, Val: m.Val}
		n.accepted[m.Inst] = a
		n.persistAccepted(a)
	}
	n.send(from, &message{Kind: mAccepted, Ballot: m.Ballot, Inst: m.Inst})
}

func (n *Node) onAccepted(m *message, from int) {
	if !n.isLeader || m.Ballot != n.prepBallot {
		return
	}
	st, ok := n.inflight[m.Inst]
	if !ok {
		return
	}
	st.acks[from] = true
	// Commit in instance order: only the lowest open instance may close.
	// Acks are counted against the membership governing the instance, so a
	// pipeline spanning an activation boundary uses the right quorum on
	// both sides and learner acks never count.
	for {
		low, ok := n.inflight[n.chosenSeq]
		if !ok {
			return
		}
		cfgm := n.configAt(n.chosenSeq)
		got := 0
		for id := range low.acks {
			if cfgm.IsVoter(id) {
				got++
			}
		}
		if got < cfgm.Quorum() {
			return
		}
		inst, val := n.chosenSeq, low.val
		n.cfg.Metrics.CommitLatency.Observe(n.cfg.Env.Now() - low.sentAt)
		delete(n.inflight, inst)
		n.broadcast(&message{Kind: mCommit, Ballot: n.prepBallot, Inst: inst, Val: val, Epoch: n.epochAt(inst)})
		// broadcast includes self; commitValue runs when the self-message
		// arrives. Commit locally right away instead for promptness.
		n.commitValue(inst, val, n.cfg.ID)
		if !n.isLeader {
			return
		}
	}
}

func (n *Node) onHeartbeat(m *message, from int) {
	if !n.activeConfig().IsVoter(from) {
		// A non-voter (typically a removed ex-leader that has not yet
		// learned the change) must not suppress elections; teach it.
		if m.Epoch < n.activeEpoch {
			n.sendEpochNack(from)
		}
		return
	}
	if m.Ballot.Less(n.promised) {
		return // stale leader
	}
	if n.promised.Less(m.Ballot) {
		n.promised = m.Ballot
		n.persistPromised()
	}
	n.observeBallot(m.Ballot)
	n.electionDeadline = n.cfg.Env.Now() + n.electionTimeout()
	n.grantLease(m, from)
	if m.ChosenSeq > n.chosenSeq {
		n.cfg.Metrics.LearnReqs.Inc()
		n.send(from, &message{Kind: mLearn, FromInst: n.chosenSeq})
	}
}

func (n *Node) onLearn(m *message, from int) {
	if m.FromInst < n.chosenBase {
		// Compacted away: the peer needs a checkpoint transfer, which the
		// Rex layer handles; point it at our compaction horizon.
		n.send(from, &message{Kind: mLearnNack, FromInst: n.chosenBase})
		return
	}
	const batch = 64
	reply := &message{Kind: mLearnReply, FromInst: m.FromInst}
	for i := m.FromInst; i < n.chosenSeq && len(reply.Vals) < batch; i++ {
		reply.Vals = append(reply.Vals, n.chosen[i-n.chosenBase])
	}
	if len(reply.Vals) > 0 {
		n.send(from, reply)
	}
}

func (n *Node) commitValue(inst uint64, val []byte, from int) {
	if inst < n.chosenSeq {
		return
	}
	if inst > n.chosenSeq {
		// Gap: stash and ask for the missing prefix.
		n.pendingVal[inst] = val
		n.cfg.Metrics.LearnReqs.Inc()
		n.send(from, &message{Kind: mLearn, FromInst: n.chosenSeq})
		return
	}
	for {
		n.persistChosen(inst, val)
		n.chosen = append(n.chosen, val)
		n.chosenSeq++
		n.cfg.Metrics.Commits.Inc()
		delete(n.accepted, inst)
		n.commits = append(n.commits, commitNote{inst: inst, val: val})
		n.maybeScheduleFromValue(inst, val)
		if n.isLeader && n.announceAfter {
			// Re-proposal(s) from takeover committed: check whether the
			// next instance also has an accepted value to re-propose.
			if a, ok := n.accepted[n.chosenSeq]; ok {
				n.startPhase2(n.chosenSeq, a.Val)
			} else {
				n.becomeLeaderNow()
			}
		}
		next, ok := n.pendingVal[n.chosenSeq]
		if !ok {
			break
		}
		delete(n.pendingVal, n.chosenSeq)
		inst, val = n.chosenSeq, next
	}
	n.checkActivation()
	if n.isLeader {
		n.proposeNext()
	}
	if n.preparing {
		// Catch-up during an election: we may now satisfy the
		// chosen-count requirement.
		n.tryCompleteElection()
	}
}

func (n *Node) startPhase2(inst uint64, val []byte) {
	n.cfg.Metrics.Proposals.Inc()
	n.inflight[inst] = &inflightState{
		val:    val,
		acks:   make(map[int]bool),
		sentAt: n.cfg.Env.Now(),
	}
	if inst >= n.nextPropose {
		n.nextPropose = inst + 1
	}
	n.broadcast(&message{Kind: mAccept, Ballot: n.prepBallot, Inst: inst, Val: val, Epoch: n.epochAt(inst)})
}

func (n *Node) proposeNext() {
	if !n.isLeader || n.announceAfter {
		return
	}
	if n.nextPropose < n.chosenSeq {
		n.nextPropose = n.chosenSeq
	}
	for len(n.inflight) < n.cfg.PipelineDepth && len(n.proposeQ) > 0 {
		val := n.proposeQ[0]
		n.proposeQ = n.proposeQ[1:]
		n.startPhase2(n.nextPropose, val)
	}
	// A scheduled membership activates only when chosenSeq crosses its
	// horizon; with no client traffic nothing else advances the counter,
	// so the leader pads with no-ops until the boundary is crossed.
	if len(n.inflight) == 0 && len(n.proposeQ) == 0 &&
		n.configs[len(n.configs)-1].FromInst > n.chosenSeq {
		n.startPhase2(n.nextPropose, reconfig.PaddingValue())
	}
}

func (n *Node) handleCompact(upTo uint64) {
	if upTo <= n.chosenBase {
		return
	}
	if upTo > n.chosenSeq {
		upTo = n.chosenSeq
	}
	n.chosen = append([][]byte(nil), n.chosen[upTo-n.chosenBase:]...)
	n.chosenBase = upTo
	// Rewrite the durable log with the surviving state.
	var recs [][]byte
	e := wire.NewEncoder(nil)
	e.Byte(recPromised)
	e.Uvarint(n.promised.Round)
	e.Uvarint(uint64(n.promised.Node))
	recs = append(recs, append([]byte(nil), e.Bytes()...))
	for _, a := range n.accepted {
		if a.Inst < upTo {
			continue
		}
		e.Reset()
		e.Byte(recAccepted)
		e.Uvarint(a.Inst)
		e.Uvarint(a.Ballot.Round)
		e.Uvarint(uint64(a.Ballot.Node))
		e.BytesVal(a.Val)
		recs = append(recs, append([]byte(nil), e.Bytes()...))
	}
	for i, v := range n.chosen {
		e.Reset()
		e.Byte(recChosen)
		e.Uvarint(n.chosenBase + uint64(i))
		e.BytesVal(v)
		recs = append(recs, append([]byte(nil), e.Bytes()...))
	}
	// The membership schedule must survive the rewrite: the reconfig
	// values that produced it may live in the compacted-away prefix.
	for _, sc := range n.scheduledConfigs(n.chosenBase) {
		e.Reset()
		e.Byte(recConfig)
		e.Uvarint(sc.FromInst)
		e.BytesVal(reconfig.EncodeValue(sc.M))
		recs = append(recs, append([]byte(nil), e.Bytes()...))
	}
	if err := n.cfg.Log.Rewrite(recs); err != nil {
		n.storageFailed("rewrite", err)
	}
}

// IsLeader reports whether this node currently believes it is the leader.
// Racy by nature; for tests and diagnostics.
func (n *Node) IsLeader() bool { return n.isLeader }
