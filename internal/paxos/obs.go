package paxos

import (
	"rex/internal/obs"
)

// Metrics holds the consensus counters and the agree-stage latency
// histogram. All fields are always allocated (NewNode substitutes a
// private set when Config.Metrics is nil) so the event loop never
// nil-checks individual series.
type Metrics struct {
	Elections  *obs.Counter // Prepare rounds started by this node
	LeaderWins *obs.Counter // elections this node won
	NacksSent  *obs.Counter // Nacks sent to stale ballots
	NacksRecv  *obs.Counter // Nacks received for our ballots
	LearnReqs  *obs.Counter // catch-up Learn requests sent
	Commits    *obs.Counter // instances committed (learned chosen)
	Proposals  *obs.Counter // phase-2 instances opened at the leader
	Heartbeats *obs.Counter // leader beacons broadcast
	EpochNacks *obs.Counter // stale-epoch rejections sent
	Reconfigs  *obs.Counter // membership changes scheduled (chosen)

	LeaseGrants     *obs.Counter // read-lease grants sent by this voter
	LeaseSuppressed *obs.Counter // prepares dropped while a grant was live

	// CommitLatency is propose→commit at the leader: from opening phase 2
	// for an instance until a majority of Accepteds closes it.
	CommitLatency *obs.Histogram

	// PersistBatch is the number of durable records retired per WAL
	// AppendBatch — how well the event loop amortizes fsyncs when draining
	// its inbox (mean > 1 under load means N messages cost < N fsyncs).
	PersistBatch *obs.SizeHistogram
}

// NewMetrics allocates all series.
func NewMetrics() *Metrics {
	return &Metrics{
		Elections:     obs.NewCounter(),
		LeaderWins:    obs.NewCounter(),
		NacksSent:     obs.NewCounter(),
		NacksRecv:     obs.NewCounter(),
		LearnReqs:     obs.NewCounter(),
		Commits:       obs.NewCounter(),
		Proposals:     obs.NewCounter(),
		Heartbeats:    obs.NewCounter(),
		EpochNacks:      obs.NewCounter(),
		Reconfigs:       obs.NewCounter(),
		LeaseGrants:     obs.NewCounter(),
		LeaseSuppressed: obs.NewCounter(),
		CommitLatency: obs.NewHistogram(),
		PersistBatch:  obs.NewSizeHistogram(),
	}
}

// Register exports the series into reg under rex_paxos_* names.
func (m *Metrics) Register(reg *obs.Registry) {
	reg.RegisterCounter("rex_paxos_elections_total", m.Elections)
	reg.RegisterCounter("rex_paxos_leader_wins_total", m.LeaderWins)
	reg.RegisterCounter("rex_paxos_nacks_sent_total", m.NacksSent)
	reg.RegisterCounter("rex_paxos_nacks_received_total", m.NacksRecv)
	reg.RegisterCounter("rex_paxos_learn_requests_total", m.LearnReqs)
	reg.RegisterCounter("rex_paxos_commits_total", m.Commits)
	reg.RegisterCounter("rex_paxos_proposals_total", m.Proposals)
	reg.RegisterCounter("rex_paxos_heartbeats_total", m.Heartbeats)
	reg.RegisterCounter("rex_paxos_epoch_nacks_total", m.EpochNacks)
	reg.RegisterCounter("rex_paxos_reconfigs_total", m.Reconfigs)
	reg.RegisterCounter("rex_lease_grants_total", m.LeaseGrants)
	reg.RegisterCounter("rex_lease_suppressed_prepares_total", m.LeaseSuppressed)
	reg.RegisterHistogram("rex_paxos_commit_latency_seconds", m.CommitLatency)
	reg.RegisterSizeHistogram("rex_paxos_persist_batch_records", m.PersistBatch)
}
