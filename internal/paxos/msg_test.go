package paxos

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBallotOrdering(t *testing.T) {
	cases := []struct {
		a, b Ballot
		less bool
	}{
		{Ballot{1, 0}, Ballot{2, 0}, true},
		{Ballot{2, 0}, Ballot{1, 5}, false},
		{Ballot{1, 1}, Ballot{1, 2}, true},
		{Ballot{1, 2}, Ballot{1, 2}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v < %v = %v, want %v", c.a, c.b, got, c.less)
		}
	}
	if !(Ballot{}).IsZero() {
		t.Error("zero ballot not zero")
	}
	if (Ballot{1, 0}).IsZero() {
		t.Error("nonzero ballot zero")
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := &message{
		Kind:      mPromise,
		Ballot:    Ballot{Round: 7, Node: 2},
		Inst:      11,
		FromInst:  3,
		ChosenSeq: 10,
		Val:       []byte("proposal"),
		Accepted: []acceptedEntry{
			{Inst: 10, Ballot: Ballot{6, 1}, Val: []byte("old")},
			{Inst: 11, Ballot: Ballot{7, 2}, Val: nil},
		},
		Vals: [][]byte{[]byte("a"), nil, []byte("ccc")},
	}
	got, err := decodeMessage(m.encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Kind != m.Kind || got.Ballot != m.Ballot || got.Inst != m.Inst ||
		got.FromInst != m.FromInst || got.ChosenSeq != m.ChosenSeq {
		t.Errorf("header: %+v", got)
	}
	if !bytes.Equal(got.Val, m.Val) {
		t.Errorf("val = %q", got.Val)
	}
	if len(got.Accepted) != 2 || got.Accepted[0].Inst != 10 || got.Accepted[0].Ballot != (Ballot{6, 1}) {
		t.Errorf("accepted = %+v", got.Accepted)
	}
	if len(got.Vals) != 3 || string(got.Vals[2]) != "ccc" {
		t.Errorf("vals = %+v", got.Vals)
	}
}

func TestMessageDecodeRejectsGarbage(t *testing.T) {
	if _, err := decodeMessage(nil); err == nil {
		t.Error("decoded empty message")
	}
	m := &message{Kind: mAccept, Ballot: Ballot{1, 1}, Inst: 2, Val: []byte("v")}
	b := m.encode()
	for cut := 0; cut < len(b); cut++ {
		if _, err := decodeMessage(b[:cut]); err == nil {
			t.Fatalf("decoded truncated message (%d/%d)", cut, len(b))
		}
	}
	// Invalid kind byte.
	b[0] = 0xfe
	if _, err := decodeMessage(b); err == nil {
		t.Error("decoded invalid kind")
	}
}

func TestQuickMessageRoundTrip(t *testing.T) {
	f := func(kind uint8, round uint64, node uint32, inst, from, chosen uint64, val []byte, vals [][]byte) bool {
		k := msgKind(kind%uint8(mLearnNack)) + 1
		m := &message{
			Kind:      k,
			Ballot:    Ballot{Round: round, Node: node},
			Inst:      inst,
			FromInst:  from,
			ChosenSeq: chosen,
			Val:       val,
			Vals:      vals,
		}
		got, err := decodeMessage(m.encode())
		if err != nil {
			return false
		}
		if got.Kind != k || got.Ballot != m.Ballot || got.Inst != inst ||
			got.FromInst != from || got.ChosenSeq != chosen || !bytes.Equal(got.Val, val) {
			return false
		}
		if len(got.Vals) != len(vals) {
			return false
		}
		for i := range vals {
			if !bytes.Equal(got.Vals[i], vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
