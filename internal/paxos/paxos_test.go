package paxos

import (
	"fmt"
	"testing"
	"time"

	"rex/internal/env"
	"rex/internal/sim"
	"rex/internal/storage"
	"rex/internal/transport"
)

// cluster is a test harness around n nodes on a simulated network.
type cluster struct {
	e     *sim.Env
	net   *transport.Network
	nodes []*Node
	logs  []*storage.MemLog

	mu        env.Mutex
	commits   [][]string // per node, committed values in order
	leaderEvt []string   // "become:<id>" / "new:<id>@<observer>"
}

func newCluster(e *sim.Env, n int, seed int64) *cluster {
	c := &cluster{
		e:       e,
		net:     transport.NewNetwork(e, n, time.Millisecond, seed),
		commits: make([][]string, n),
		mu:      e.NewMutex(),
	}
	for i := 0; i < n; i++ {
		i := i
		log := storage.NewMemLog()
		c.logs = append(c.logs, log)
		node, err := NewNode(Config{
			ID:              i,
			N:               n,
			Env:             e,
			Endpoint:        c.net.Endpoint(i),
			Log:             log,
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 100 * time.Millisecond,
			Seed:            seed,
			OnCommitted: func(inst uint64, val []byte) {
				c.mu.Lock()
				c.commits[i] = append(c.commits[i], string(val))
				c.mu.Unlock()
			},
			OnBecomeLeader: func() {
				c.mu.Lock()
				c.leaderEvt = append(c.leaderEvt, fmt.Sprintf("become:%d", i))
				c.mu.Unlock()
			},
			OnNewLeader: func(l int) {
				c.mu.Lock()
				c.leaderEvt = append(c.leaderEvt, fmt.Sprintf("new:%d@%d", l, i))
				c.mu.Unlock()
			},
		})
		if err != nil {
			panic(err)
		}
		c.nodes = append(c.nodes, node)
	}
	return c
}

func (c *cluster) start() {
	for _, n := range c.nodes {
		n.Start()
	}
}

func (c *cluster) leader() int {
	for i, n := range c.nodes {
		if n.IsLeader() {
			return i
		}
	}
	return -1
}

// waitLeader polls until exactly one node believes it leads.
func (c *cluster) waitLeader(t *testing.T, timeout time.Duration) int {
	t.Helper()
	deadline := c.e.Now() + timeout
	for c.e.Now() < deadline {
		leaders := 0
		id := -1
		for i, n := range c.nodes {
			if n.IsLeader() {
				leaders++
				id = i
			}
		}
		if leaders == 1 {
			return id
		}
		c.e.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no single leader within %v", timeout)
	return -1
}

func (c *cluster) waitCommits(t *testing.T, node, want int, timeout time.Duration) {
	t.Helper()
	deadline := c.e.Now() + timeout
	for c.e.Now() < deadline {
		c.mu.Lock()
		got := len(c.commits[node])
		c.mu.Unlock()
		if got >= want {
			return
		}
		c.e.Sleep(5 * time.Millisecond)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t.Fatalf("node %d committed %d values within %v, want %d", node, len(c.commits[node]), timeout, want)
}

func (c *cluster) stop() {
	for _, n := range c.nodes {
		n.Stop()
	}
}

func TestElectionAndCommit(t *testing.T) {
	e := sim.New(4)
	e.Run(func() {
		c := newCluster(e, 3, 1)
		c.start()
		lead := c.waitLeader(t, 2*time.Second)
		for i := 0; i < 10; i++ {
			c.nodes[lead].Propose([]byte(fmt.Sprintf("v%d", i)))
		}
		for i := 0; i < 3; i++ {
			c.waitCommits(t, i, 10, 2*time.Second)
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		for i := 0; i < 3; i++ {
			for j := 0; j < 10; j++ {
				if c.commits[i][j] != fmt.Sprintf("v%d", j) {
					t.Fatalf("node %d commit %d = %q", i, j, c.commits[i][j])
				}
			}
		}
		c.stop()
	})
}

func TestSingleNodeCluster(t *testing.T) {
	e := sim.New(1)
	e.Run(func() {
		c := newCluster(e, 1, 2)
		c.start()
		lead := c.waitLeader(t, time.Second)
		if lead != 0 {
			t.Fatalf("leader = %d", lead)
		}
		c.nodes[0].Propose([]byte("solo"))
		c.waitCommits(t, 0, 1, time.Second)
		c.stop()
	})
}

func TestLeaderFailover(t *testing.T) {
	e := sim.New(4)
	e.Run(func() {
		c := newCluster(e, 3, 3)
		c.start()
		old := c.waitLeader(t, 2*time.Second)
		c.nodes[old].Propose([]byte("before"))
		for i := 0; i < 3; i++ {
			c.waitCommits(t, i, 1, time.Second)
		}
		// Crash the leader (network isolation).
		c.net.Isolate(old, true)
		// A new leader must emerge among the remaining two.
		deadline := c.e.Now() + 3*time.Second
		newLead := -1
		for c.e.Now() < deadline {
			for i, n := range c.nodes {
				if i != old && n.IsLeader() {
					newLead = i
				}
			}
			if newLead >= 0 {
				break
			}
			e.Sleep(10 * time.Millisecond)
		}
		if newLead < 0 {
			t.Fatal("no new leader after isolating the old one")
		}
		c.nodes[newLead].Propose([]byte("after"))
		for _, i := range []int{newLead, 3 - old - newLead} {
			c.waitCommits(t, i, 2, 2*time.Second)
		}
		// Reconnect the old leader: it must step down and catch up.
		c.net.Isolate(old, false)
		c.waitCommits(t, old, 2, 3*time.Second)
		c.mu.Lock()
		got := append([]string(nil), c.commits[old]...)
		c.mu.Unlock()
		if got[0] != "before" || got[1] != "after" {
			t.Fatalf("old leader commits = %v", got)
		}
		if c.nodes[old].IsLeader() {
			t.Fatal("old leader still thinks it leads after rejoining")
		}
		c.stop()
	})
}

func TestCommitUnderMessageLoss(t *testing.T) {
	e := sim.New(4)
	e.Run(func() {
		c := newCluster(e, 3, 4)
		c.net.SetLoss(0.10)
		c.net.SetJitter(2 * time.Millisecond)
		c.start()
		lead := c.waitLeader(t, 5*time.Second)
		for i := 0; i < 20; i++ {
			c.nodes[lead].Propose([]byte(fmt.Sprintf("v%d", i)))
		}
		// Retransmissions must push everything through. The leader may
		// change under loss; proposals enqueued at a deposed leader are
		// dropped by design, so only require a prefix to commit everywhere
		// consistently.
		c.waitCommits(t, lead, 1, 10*time.Second)
		e.Sleep(2 * time.Second)
		c.mu.Lock()
		defer c.mu.Unlock()
		min := len(c.commits[0])
		for i := 1; i < 3; i++ {
			if len(c.commits[i]) < min {
				min = len(c.commits[i])
			}
		}
		if min == 0 {
			t.Fatal("nothing committed under 10% loss")
		}
		for i := 1; i < 3; i++ {
			for j := 0; j < min; j++ {
				if c.commits[i][j] != c.commits[0][j] {
					t.Fatalf("divergent commit %d: %q vs %q", j, c.commits[i][j], c.commits[0][j])
				}
			}
		}
		c.stop()
	})
}

func TestMinorityPartitionCannotCommit(t *testing.T) {
	e := sim.New(4)
	e.Run(func() {
		c := newCluster(e, 3, 5)
		c.start()
		lead := c.waitLeader(t, 2*time.Second)
		// Cut the leader off: it keeps its leader flag briefly but cannot
		// commit anything new.
		c.net.Isolate(lead, true)
		c.nodes[lead].Propose([]byte("doomed"))
		e.Sleep(500 * time.Millisecond)
		c.mu.Lock()
		doomed := false
		for _, v := range c.commits[lead] {
			if v == "doomed" {
				doomed = true
			}
		}
		c.mu.Unlock()
		if doomed {
			t.Fatal("isolated leader committed a value")
		}
		c.stop()
	})
}

func TestRecoveryFromLog(t *testing.T) {
	e := sim.New(4)
	e.Run(func() {
		c := newCluster(e, 3, 6)
		c.start()
		lead := c.waitLeader(t, 2*time.Second)
		for i := 0; i < 5; i++ {
			c.nodes[lead].Propose([]byte(fmt.Sprintf("v%d", i)))
		}
		for i := 0; i < 3; i++ {
			c.waitCommits(t, i, 5, 2*time.Second)
		}
		c.stop()
		// Restart node 0 from its log: recovered chosen values must match.
		n0, err := NewNode(Config{
			ID: 0, N: 3, Env: e,
			Endpoint:        c.net.Endpoint(0),
			Log:             c.logs[0],
			HeartbeatEvery:  20 * time.Millisecond,
			ElectionTimeout: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		base, vals := n0.Chosen()
		if base != 0 || len(vals) != 5 {
			t.Fatalf("recovered base=%d n=%d, want 0,5", base, len(vals))
		}
		for i, v := range vals {
			if string(v) != fmt.Sprintf("v%d", i) {
				t.Fatalf("recovered[%d] = %q", i, v)
			}
		}
	})
}

func TestCompaction(t *testing.T) {
	e := sim.New(4)
	e.Run(func() {
		c := newCluster(e, 3, 7)
		c.start()
		lead := c.waitLeader(t, 2*time.Second)
		for i := 0; i < 8; i++ {
			c.nodes[lead].Propose([]byte(fmt.Sprintf("v%d", i)))
		}
		c.waitCommits(t, lead, 8, 2*time.Second)
		c.nodes[lead].Compact(5)
		e.Sleep(100 * time.Millisecond)
		base, vals := c.nodes[lead].Chosen()
		if base != 5 || len(vals) != 3 {
			t.Fatalf("after compact: base=%d n=%d, want 5,3", base, len(vals))
		}
		// The compacted node keeps committing new values.
		c.nodes[lead].Propose([]byte("v8"))
		c.waitCommits(t, lead, 9, 2*time.Second)
		c.stop()
	})
}

func TestDeterministicElections(t *testing.T) {
	run := func() []string {
		var events []string
		e := sim.New(4)
		e.Run(func() {
			c := newCluster(e, 3, 42)
			c.start()
			lead := c.waitLeader(t, 2*time.Second)
			c.nodes[lead].Propose([]byte("x"))
			for i := 0; i < 3; i++ {
				c.waitCommits(t, i, 1, 2*time.Second)
			}
			c.mu.Lock()
			events = append([]string(nil), c.leaderEvt...)
			c.mu.Unlock()
			c.stop()
		})
		return events
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("elections not deterministic:\n%v\n%v", a, b)
	}
}

func TestProposalAtFollowerIsDropped(t *testing.T) {
	e := sim.New(4)
	e.Run(func() {
		c := newCluster(e, 3, 8)
		c.start()
		lead := c.waitLeader(t, 2*time.Second)
		follower := (lead + 1) % 3
		c.nodes[follower].Propose([]byte("nope"))
		e.Sleep(300 * time.Millisecond)
		c.mu.Lock()
		defer c.mu.Unlock()
		for i := 0; i < 3; i++ {
			for _, v := range c.commits[i] {
				if v == "nope" {
					t.Fatal("follower proposal was committed")
				}
			}
		}
		c.stop()
	})
}

func TestPipelinedProposals(t *testing.T) {
	// With PipelineDepth > 1, several instances are open concurrently and
	// still commit in order with identical sequences on every replica.
	e := sim.New(4)
	e.Run(func() {
		const n = 3
		net := transport.NewNetwork(e, n, 2*time.Millisecond, 21)
		c := &cluster{e: e, net: net, commits: make([][]string, n), mu: e.NewMutex()}
		for i := 0; i < n; i++ {
			i := i
			log := storage.NewMemLog()
			c.logs = append(c.logs, log)
			node, err := NewNode(Config{
				ID: i, N: n, Env: e,
				Endpoint:        net.Endpoint(i),
				Log:             log,
				HeartbeatEvery:  20 * time.Millisecond,
				ElectionTimeout: 100 * time.Millisecond,
				PipelineDepth:   4,
				Seed:            21,
				OnCommitted: func(inst uint64, val []byte) {
					c.mu.Lock()
					c.commits[i] = append(c.commits[i], string(val))
					c.mu.Unlock()
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			c.nodes = append(c.nodes, node)
		}
		c.start()
		lead := c.waitLeader(t, 2*time.Second)
		// Burst-propose: with a 2ms one-way delay and depth 4, these
		// overlap in flight.
		for i := 0; i < 40; i++ {
			c.nodes[lead].Propose([]byte(fmt.Sprintf("v%d", i)))
		}
		for i := 0; i < 3; i++ {
			c.waitCommits(t, i, 40, 5*time.Second)
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		for i := 0; i < 3; i++ {
			for j := 0; j < 40; j++ {
				if c.commits[i][j] != fmt.Sprintf("v%d", j) {
					t.Fatalf("node %d commit %d = %q", i, j, c.commits[i][j])
				}
			}
		}
		c.stop()
	})
}

func TestPipelinedFailoverReproposesAllOpenInstances(t *testing.T) {
	// Kill a pipelined leader mid-burst: the new leader must re-propose
	// every possibly-committed open instance before announcing, and no
	// committed value may be lost or reordered.
	e := sim.New(4)
	e.Run(func() {
		const n = 3
		net := transport.NewNetwork(e, n, 2*time.Millisecond, 31)
		c := &cluster{e: e, net: net, commits: make([][]string, n), mu: e.NewMutex()}
		for i := 0; i < n; i++ {
			i := i
			log := storage.NewMemLog()
			c.logs = append(c.logs, log)
			node, err := NewNode(Config{
				ID: i, N: n, Env: e,
				Endpoint:        net.Endpoint(i),
				Log:             log,
				HeartbeatEvery:  20 * time.Millisecond,
				ElectionTimeout: 100 * time.Millisecond,
				PipelineDepth:   4,
				Seed:            31,
				OnCommitted: func(inst uint64, val []byte) {
					c.mu.Lock()
					c.commits[i] = append(c.commits[i], string(val))
					c.mu.Unlock()
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			c.nodes = append(c.nodes, node)
		}
		c.start()
		lead := c.waitLeader(t, 2*time.Second)
		for i := 0; i < 20; i++ {
			c.nodes[lead].Propose([]byte(fmt.Sprintf("v%d", i)))
		}
		// Kill the leader while proposals are still in flight.
		e.Sleep(3 * time.Millisecond)
		c.net.Isolate(lead, true)
		// A new leader emerges and the survivors converge on a consistent
		// prefix (some tail proposals may be lost with the leader — that is
		// allowed; divergence or holes are not).
		deadline := e.Now() + 5*time.Second
		for e.Now() < deadline {
			newLead := -1
			for i, nd := range c.nodes {
				if i != lead && nd.IsLeader() {
					newLead = i
				}
			}
			if newLead >= 0 {
				break
			}
			e.Sleep(10 * time.Millisecond)
		}
		e.Sleep(500 * time.Millisecond)
		c.mu.Lock()
		defer c.mu.Unlock()
		a, b := c.commits[(lead+1)%3], c.commits[(lead+2)%3]
		min := len(a)
		if len(b) < min {
			min = len(b)
		}
		for j := 0; j < min; j++ {
			if a[j] != b[j] {
				t.Fatalf("survivors diverge at %d: %q vs %q", j, a[j], b[j])
			}
		}
		// Every committed value must be a v<i> in order without holes.
		for j, v := range a[:min] {
			if v != fmt.Sprintf("v%d", j) {
				t.Fatalf("hole or reorder at %d: %q", j, v)
			}
		}
		c.stop()
	})
}
