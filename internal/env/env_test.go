package env

import (
	"sync"
	"testing"
	"time"
)

func TestRealNowMonotonic(t *testing.T) {
	e := NewReal()
	a := e.Now()
	time.Sleep(2 * time.Millisecond)
	b := e.Now()
	if b <= a {
		t.Errorf("Now not monotonic: %v then %v", a, b)
	}
}

func TestRealComputeTakesTime(t *testing.T) {
	e := NewReal()
	start := time.Now()
	e.Compute(5 * time.Millisecond)
	if got := time.Since(start); got < 4*time.Millisecond {
		t.Errorf("Compute(5ms) returned after %v", got)
	}
}

func TestRealMutexAndCond(t *testing.T) {
	e := NewReal()
	mu := e.NewMutex()
	cond := e.NewCond(mu)
	done := make(chan struct{})
	ready := false
	go func() {
		mu.Lock()
		for !ready {
			cond.Wait()
		}
		mu.Unlock()
		close(done)
	}()
	time.Sleep(time.Millisecond)
	mu.Lock()
	ready = true
	cond.Signal()
	mu.Unlock()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cond wait never woke")
	}
}

func TestRealTryLock(t *testing.T) {
	e := NewReal()
	mu := e.NewMutex()
	if !mu.TryLock() {
		t.Fatal("TryLock on free mutex failed")
	}
	if mu.TryLock() {
		t.Fatal("TryLock on held mutex succeeded")
	}
	mu.Unlock()
}

func TestChanFIFO(t *testing.T) {
	e := NewReal()
	ch := e.NewChan(0) // unbounded
	for i := 0; i < 100; i++ {
		if !ch.Send(i) {
			t.Fatal("Send failed on open chan")
		}
	}
	if ch.Len() != 100 {
		t.Fatalf("Len = %d, want 100", ch.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := ch.Recv()
		if !ok || v.(int) != i {
			t.Fatalf("Recv = %v,%v, want %d,true", v, ok, i)
		}
	}
}

func TestChanCapacityBlocksSender(t *testing.T) {
	e := NewReal()
	ch := e.NewChan(1)
	ch.Send(1)
	if ch.TrySend(2) {
		t.Fatal("TrySend succeeded on full chan")
	}
	unblocked := make(chan struct{})
	go func() {
		ch.Send(2) // blocks until a Recv
		close(unblocked)
	}()
	time.Sleep(time.Millisecond)
	select {
	case <-unblocked:
		t.Fatal("Send did not block on full chan")
	default:
	}
	if v, _ := ch.Recv(); v.(int) != 1 {
		t.Fatalf("Recv = %v, want 1", v)
	}
	select {
	case <-unblocked:
	case <-time.After(5 * time.Second):
		t.Fatal("Send never unblocked")
	}
}

func TestChanCloseDrainsThenReportsClosed(t *testing.T) {
	e := NewReal()
	ch := e.NewChan(0)
	ch.Send(1)
	ch.Send(2)
	ch.Close()
	if ch.Send(3) {
		t.Error("Send after Close returned true")
	}
	if v, ok := ch.Recv(); !ok || v.(int) != 1 {
		t.Errorf("Recv = %v,%v want 1,true", v, ok)
	}
	if v, ok, open := ch.TryRecv(); !ok || !open || v.(int) != 2 {
		t.Errorf("TryRecv = %v,%v,%v want 2,true,true", v, ok, open)
	}
	if _, ok := ch.Recv(); ok {
		t.Error("Recv on drained closed chan reported ok")
	}
	if _, ok, open := ch.TryRecv(); ok || open {
		t.Error("TryRecv on drained closed chan reported ok/open")
	}
}

func TestChanCloseWakesBlockedReceiver(t *testing.T) {
	e := NewReal()
	ch := e.NewChan(0)
	done := make(chan bool)
	go func() {
		_, ok := ch.Recv()
		done <- ok
	}()
	time.Sleep(time.Millisecond)
	ch.Close()
	select {
	case ok := <-done:
		if ok {
			t.Error("Recv on closed empty chan reported ok")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not wake receiver")
	}
}

func TestGroupWait(t *testing.T) {
	e := NewReal()
	var mu sync.Mutex
	n := 0
	g := GoEach(e, "w", 8, func(int) {
		mu.Lock()
		n++
		mu.Unlock()
	})
	g.Wait()
	mu.Lock()
	defer mu.Unlock()
	if n != 8 {
		t.Errorf("n = %d, want 8", n)
	}
}

func TestGroupNegativePanics(t *testing.T) {
	e := NewReal()
	g := NewGroup(e)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative counter")
		}
	}()
	g.Done()
}

func TestAfterFuncReal(t *testing.T) {
	e := NewReal()
	done := make(chan struct{})
	e.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("AfterFunc never fired")
	}
}
