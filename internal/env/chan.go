package env

// chanImpl implements Chan for any Env using only the Env's Mutex and Cond,
// so both the real and the simulated environment share one implementation.
type chanImpl struct {
	mu       Mutex
	notEmpty Cond
	notFull  Cond
	buf      []any
	capacity int // <= 0 means unbounded
	closed   bool
}

// NewChanFor builds the shared Chan implementation on top of any Env's
// mutex and cond primitives. Env implementations outside this package use
// it to satisfy NewChan.
func NewChanFor(e Env, capacity int) Chan { return newChan(e, capacity) }

func newChan(e Env, capacity int) *chanImpl {
	c := &chanImpl{capacity: capacity}
	c.mu = e.NewMutex()
	c.notEmpty = e.NewCond(c.mu)
	c.notFull = e.NewCond(c.mu)
	return c
}

func (c *chanImpl) full() bool {
	return c.capacity > 0 && len(c.buf) >= c.capacity
}

// Send implements Chan.
func (c *chanImpl) Send(v any) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.full() && !c.closed {
		c.notFull.Wait()
	}
	if c.closed {
		return false
	}
	c.buf = append(c.buf, v)
	c.notEmpty.Signal()
	return true
}

// TrySend implements Chan.
func (c *chanImpl) TrySend(v any) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.full() {
		return false
	}
	c.buf = append(c.buf, v)
	c.notEmpty.Signal()
	return true
}

// Recv implements Chan.
func (c *chanImpl) Recv() (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.buf) == 0 && !c.closed {
		c.notEmpty.Wait()
	}
	if len(c.buf) == 0 {
		return nil, false
	}
	v := c.pop()
	return v, true
}

// TryRecv implements Chan.
func (c *chanImpl) TryRecv() (any, bool, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.buf) == 0 {
		return nil, false, !c.closed
	}
	v := c.pop()
	return v, true, true
}

func (c *chanImpl) pop() any {
	v := c.buf[0]
	c.buf[0] = nil
	c.buf = c.buf[1:]
	if len(c.buf) == 0 {
		// Reset to reclaim the drained prefix of the backing array.
		c.buf = nil
	}
	c.notFull.Signal()
	return v
}

// Close implements Chan.
func (c *chanImpl) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	c.notEmpty.Broadcast()
	c.notFull.Broadcast()
}

// Len implements Chan.
func (c *chanImpl) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.buf)
}
