package env

// Group is a WaitGroup equivalent built from an Env's primitives, usable
// under both the real and the simulated environment.
type Group struct {
	mu   Mutex
	cond Cond
	n    int
}

// NewGroup returns a Group for the given environment.
func NewGroup(e Env) *Group {
	g := &Group{mu: e.NewMutex()}
	g.cond = e.NewCond(g.mu)
	return g
}

// Add adds delta to the group counter.
func (g *Group) Add(delta int) {
	g.mu.Lock()
	g.n += delta
	if g.n < 0 {
		g.mu.Unlock()
		panic("env: negative Group counter")
	}
	if g.n == 0 {
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// Done decrements the group counter by one.
func (g *Group) Done() { g.Add(-1) }

// Wait blocks until the group counter reaches zero.
func (g *Group) Wait() {
	g.mu.Lock()
	for g.n != 0 {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// GoEach spawns fn on e for each i in [0, n) and returns a Group that Waits
// for all of them.
func GoEach(e Env, name string, n int, fn func(i int)) *Group {
	g := NewGroup(e)
	g.Add(n)
	for i := 0; i < n; i++ {
		i := i
		e.Go(name, func() {
			defer g.Done()
			fn(i)
		})
	}
	return g
}
