package env

import (
	"runtime"
	"sync"
	"time"
)

// RealEnv implements Env with goroutines, sync primitives, the wall clock,
// and CPU spinning for Compute.
type RealEnv struct {
	start time.Time
}

// NewReal returns a RealEnv whose clock starts at zero now.
func NewReal() *RealEnv { return &RealEnv{start: time.Now()} }

// Now implements Env.
func (e *RealEnv) Now() time.Duration { return time.Since(e.start) }

// Sleep implements Env.
func (e *RealEnv) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Compute implements Env by spinning the CPU for approximately d.
func (e *RealEnv) Compute(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	// Spin in small batches to keep the time.Now overhead negligible while
	// staying responsive for short durations.
	var sink uint64
	for time.Now().Before(deadline) {
		for i := 0; i < 200; i++ {
			sink = sink*2654435761 + uint64(i)
		}
	}
	_ = sink
}

// Go implements Env.
func (e *RealEnv) Go(name string, fn func()) {
	_ = name
	go fn()
}

// NewMutex implements Env.
func (e *RealEnv) NewMutex() Mutex { return &realMutex{} }

// NewCond implements Env.
func (e *RealEnv) NewCond(m Mutex) Cond {
	return sync.NewCond(&m.(*realMutex).mu)
}

// NewChan implements Env.
func (e *RealEnv) NewChan(capacity int) Chan { return newChan(e, capacity) }

// AfterFunc implements Env.
func (e *RealEnv) AfterFunc(d time.Duration, fn func()) Timer {
	return realTimer{t: time.AfterFunc(d, fn)}
}

// Cores implements Env.
func (e *RealEnv) Cores() int { return runtime.NumCPU() }

type realMutex struct{ mu sync.Mutex }

func (m *realMutex) Lock()         { m.mu.Lock() }
func (m *realMutex) Unlock()       { m.mu.Unlock() }
func (m *realMutex) TryLock() bool { return m.mu.TryLock() }

type realTimer struct{ t *time.Timer }

func (t realTimer) Stop() bool { return t.t.Stop() }
