// Package env abstracts the execution environment Rex runs on: logical
// tasks, blocking synchronization, queues, timers, a clock, and a CPU cost
// model.
//
// Rex is written entirely against the Env interface, which has two
// implementations:
//
//   - RealEnv (this package) backs tasks with goroutines, mutexes with
//     sync.Mutex, the clock with the wall clock, and Compute with actual CPU
//     spinning. It is used by the cmd/ binaries and by benchmarks that
//     measure genuine record/replay overheads.
//
//   - sim.Env (package internal/sim) is a deterministic cooperative
//     scheduler with virtual time and a configurable number of simulated
//     cores. It reproduces the paper's multi-core testbed on any machine
//     and makes whole-cluster tests (elections, failover, partitions)
//     deterministic and fast.
//
// The contract for code running under an Env: every blocking operation must
// go through the Env (its mutexes, conds, chans, Sleep, Compute). Blocking
// on a raw Go channel or sync primitive inside a simulated task would stall
// the simulation.
package env

import "time"

// Env is the execution environment: a clock, a CPU model, a task spawner,
// and factories for blocking primitives.
type Env interface {
	// Now returns the time elapsed since the environment started.
	Now() time.Duration
	// Sleep blocks the calling task for d.
	Sleep(d time.Duration)
	// Compute consumes d of CPU time on one of the environment's cores.
	// Under RealEnv this spins; under the simulator it occupies one of the
	// K virtual cores, so concurrent Compute calls beyond K queue up.
	Compute(d time.Duration)
	// Go spawns a new task running fn. The name is for diagnostics.
	Go(name string, fn func())
	// NewMutex returns a new unlocked mutex.
	NewMutex() Mutex
	// NewCond returns a condition variable bound to m.
	NewCond(m Mutex) Cond
	// NewChan returns a FIFO queue. capacity <= 0 means unbounded.
	NewChan(capacity int) Chan
	// AfterFunc schedules fn to run on its own task after d.
	AfterFunc(d time.Duration, fn func()) Timer
	// Cores reports the number of CPU cores the environment models.
	Cores() int
}

// Mutex is a mutual-exclusion lock with the semantics of sync.Mutex.
type Mutex interface {
	Lock()
	Unlock()
	// TryLock acquires the lock without blocking and reports success.
	TryLock() bool
}

// Cond is a condition variable with the semantics of sync.Cond: Wait must
// be called with the associated mutex held; it atomically releases the
// mutex, blocks, and reacquires the mutex before returning.
type Cond interface {
	Wait()
	Signal()
	Broadcast()
}

// Chan is a FIFO queue of values shared between tasks.
type Chan interface {
	// Send enqueues v, blocking while the queue is full. It returns false
	// (without enqueueing) if the channel is closed.
	Send(v any) bool
	// TrySend enqueues v without blocking; it returns false if the queue is
	// full or closed.
	TrySend(v any) bool
	// Recv dequeues the next value, blocking while the queue is empty. The
	// second result is false when the channel is closed and drained.
	Recv() (any, bool)
	// TryRecv dequeues without blocking. ok is false if nothing was
	// dequeued; open is false once the channel is closed and drained.
	TryRecv() (v any, ok bool, open bool)
	// Close marks the channel closed. Blocked receivers drain remaining
	// values and then observe closure; blocked senders fail.
	Close()
	// Len reports the number of queued values.
	Len() int
}

// Timer is a handle to a pending AfterFunc.
type Timer interface {
	// Stop cancels the timer and reports whether it was still pending.
	Stop() bool
}
