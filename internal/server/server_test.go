package server

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"rex/internal/apps"
	"rex/internal/apps/hashdb"
	"rex/internal/core"
	"rex/internal/env"
	"rex/internal/rebalance"
	"rex/internal/shard"
	"rex/internal/storage"
	"rex/internal/transport"
	"rex/internal/wire"
)

// freePorts reserves n distinct localhost ports.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	var addrs []string
	var listeners []net.Listener
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners = append(listeners, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs
}

// TestTCPClusterEndToEnd runs a real 3-replica cluster over TCP on the
// real environment — the cmd/rexd deployment path — and drives it through
// the client protocol.
func TestTCPClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time TCP cluster test")
	}
	app := apps.HashDB()
	peerAddrs := freePorts(t, 3)
	clientAddrs := freePorts(t, 3)
	e := env.NewReal()

	var replicas []*core.Replica
	var servers []*Server
	for i := 0; i < 3; i++ {
		ep, err := transport.ListenTCP(i, peerAddrs)
		if err != nil {
			t.Fatalf("listen %d: %v", i, err)
		}
		r, err := core.NewReplica(core.Config{
			ID: i, N: 3, Env: e,
			Endpoint:        ep,
			Log:             storage.NewMemLog(),
			Snapshots:       storage.NewMemSnapshots(),
			Factory:         app.Factory,
			Workers:         2,
			Timers:          app.Timers,
			ReadWorkers:     1,
			HeartbeatEvery:  30 * time.Millisecond,
			ElectionTimeout: 150 * time.Millisecond,
			Seed:            int64(i) + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		srv, err := Listen(r, clientAddrs[i])
		if err != nil {
			t.Fatal(err)
		}
		replicas = append(replicas, r)
		servers = append(servers, srv)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
		for _, r := range replicas {
			r.Stop()
		}
	}()

	// Wait for an election over real TCP.
	deadline := time.Now().Add(10 * time.Second)
	leader := -1
	for leader < 0 && time.Now().Before(deadline) {
		for i, r := range replicas {
			if r.Role() == core.RolePrimary {
				leader = i
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if leader < 0 {
		t.Fatal("no primary elected over TCP")
	}

	cl := NewClient(42, clientAddrs)
	defer cl.Close()
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("tcp-key-%d", i)
		resp, err := cl.Do(hashdb.SetReq(key, []byte(fmt.Sprintf("v%d", i))))
		if err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
		if len(resp) != 1 || resp[0] != 1 {
			t.Fatalf("set resp = %x", resp)
		}
	}
	resp, err := cl.Do(hashdb.GetReq("tcp-key-7"))
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	d := wire.NewDecoder(resp)
	if ok := d.Bool(); !ok || string(d.BytesVal()) != "v7" {
		t.Fatalf("get = %q (ok=%v)", resp, ok)
	}

	// Read-only query against each replica (secondaries may lag briefly).
	q := hashdb.GetReq("tcp-key-7")
	for i := range replicas {
		deadline := time.Now().Add(5 * time.Second)
		for {
			resp, err := cl.Query(i, q)
			if err == nil {
				d := wire.NewDecoder(resp)
				if d.Bool() && string(d.BytesVal()) == "v7" {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %d never served the query: %v", i, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Status from the leader reflects its role.
	st, err := cl.Status(leader)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.Role != core.RolePrimary || st.Leader != leader {
		t.Errorf("leader status = %+v", st)
	}

	// Unsharded servers have no map to serve.
	if _, err := cl.FetchShardMap(leader); err == nil {
		t.Error("unsharded server served a shard map")
	}

	// Submitting at a follower must redirect (the client handles it); a
	// direct Submit must return ErrNotPrimary.
	follower := (leader + 1) % 3
	if _, err := replicas[follower].Submit(1, 1, hashdb.GetReq("x")); err == nil {
		t.Error("follower accepted a Submit")
	}
}

// TestShardedTCPEndToEnd is the full multi-group deployment over real
// TCP: three processes, two groups each (via shard.Node + ListenNode), a
// keyed router over the node addresses, plus shard-map fetch and
// per-group status.
func TestShardedTCPEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time TCP cluster test")
	}
	m, err := shard.NewShardMap(1, 2, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	app := apps.HashDB()
	peerAddrs := freePorts(t, 3)
	clientAddrs := freePorts(t, 3)
	e := env.NewReal()

	var nodes []*shard.Node
	var servers []*Server
	for i := 0; i < 3; i++ {
		ep, err := transport.ListenTCP(i, peerAddrs)
		if err != nil {
			t.Fatalf("listen %d: %v", i, err)
		}
		n, err := shard.NewNode(shard.NodeConfig{
			Env:      e,
			Map:      m,
			Node:     i,
			Endpoint: ep,
			Template: core.Config{
				Factory:         app.Factory,
				Workers:         2,
				Timers:          app.Timers,
				ReadWorkers:     1,
				HeartbeatEvery:  30 * time.Millisecond,
				ElectionTimeout: 150 * time.Millisecond,
				Seed:            11,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		srv, err := ListenNode(n, clientAddrs[i])
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		servers = append(servers, srv)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
		for _, n := range nodes {
			n.Stop()
		}
	}()

	// Wait until every group has a primary somewhere.
	deadline := time.Now().Add(10 * time.Second)
	for g := 0; g < m.Groups(); g++ {
		for {
			elected := false
			for _, n := range nodes {
				if r := n.Replica(g); r != nil && r.Role() == core.RolePrimary {
					elected = true
				}
			}
			if elected {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("group %d never elected a primary", g)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	router, err := NewShardRouter(100, m, clientAddrs)
	if err != nil {
		t.Fatal(err)
	}
	covered := make(map[int]bool)
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("shard-key-%d", i)
		covered[router.GroupFor([]byte(key))] = true
		if _, err := router.Do([]byte(key), hashdb.SetReq(key, []byte(fmt.Sprintf("v%d", i)))); err != nil {
			t.Fatalf("set %s: %v", key, err)
		}
	}
	if len(covered) != 2 {
		t.Fatalf("16 keys covered %d of 2 groups", len(covered))
	}
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("shard-key-%d", i)
		resp, err := router.Do([]byte(key), hashdb.GetReq(key))
		if err != nil {
			t.Fatalf("get %s: %v", key, err)
		}
		d := wire.NewDecoder(resp)
		if ok := d.Bool(); !ok || string(d.BytesVal()) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %s = %q", key, resp)
		}
	}

	// Any node serves the deployment's map, byte-identical to ours.
	cl := NewClient(999, clientAddrs)
	defer cl.Close()
	fetched, err := cl.FetchShardMap(0)
	if err != nil {
		t.Fatalf("fetch map: %v", err)
	}
	if string(fetched.EncodeBytes()) != string(m.EncodeBytes()) {
		t.Fatalf("fetched map differs: %v vs %v", fetched, m)
	}

	// Per-group status via a group-bound client.
	g1 := NewGroupClient(1000, 1, []string{
		clientAddrs[m.Placement[1][0]], clientAddrs[m.Placement[1][1]], clientAddrs[m.Placement[1][2]],
	})
	defer g1.Close()
	st, err := g1.Status(0)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.Leader < 0 {
		t.Errorf("group 1 status has no leader: %+v", st)
	}

	// A request for a group the map doesn't define is an error, not a hang.
	bogus := NewGroupClient(1001, 9, []string{clientAddrs[0]})
	defer bogus.Close()
	if _, err := bogus.Do([]byte("x")); err == nil {
		t.Error("unknown group accepted")
	}
}

// TestRebalanceTCPEndToEnd runs a rebalance-enabled sharded deployment
// over real TCP — the `rexd -shards 2 -rebalance` path — and drives a
// split, a live move, and a merge through the server-side coordinator
// (the `rexctl rebalance` path) while reading back through the
// envelope-speaking live router.
func TestRebalanceTCPEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time TCP cluster test")
	}
	m, err := shard.NewShardMap(1, 2, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	m.EnsureRanges()
	app := apps.HashDB()
	peerAddrs := freePorts(t, 3)
	clientAddrs := freePorts(t, 3)
	e := env.NewReal()

	var nodes []*shard.Node
	var servers []*Server
	for i := 0; i < 3; i++ {
		ep, err := transport.ListenTCP(i, peerAddrs)
		if err != nil {
			t.Fatalf("listen %d: %v", i, err)
		}
		n, err := shard.NewNode(shard.NodeConfig{
			Env:      e,
			Map:      m,
			Node:     i,
			Endpoint: ep,
			Template: core.Config{
				Factory:         app.Factory,
				Workers:         2,
				Timers:          app.Timers,
				ReadWorkers:     1,
				HeartbeatEvery:  30 * time.Millisecond,
				ElectionTimeout: 150 * time.Millisecond,
				Seed:            13,
			},
			RebalanceWrap: func(g int, inner core.Factory) core.Factory {
				return rebalance.WrapFactory(inner, m, g, g == 0)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		srv, err := ListenNode(n, clientAddrs[i])
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		servers = append(servers, srv)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
		for _, n := range nodes {
			n.Stop()
		}
	}()

	deadline := time.Now().Add(10 * time.Second)
	for g := 0; g < m.Groups(); g++ {
		for {
			elected := false
			for _, n := range nodes {
				if r := n.Replica(g); r != nil && r.Role() == core.RolePrimary {
					elected = true
				}
			}
			if elected {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("group %d never elected a primary", g)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	router, err := NewLiveShardRouter(100, m, clientAddrs)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 24
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("rb-key-%d", i)
		if _, err := router.Do([]byte(key), hashdb.SetReq(key, []byte(fmt.Sprintf("v%d", i)))); err != nil {
			t.Fatalf("set %s: %v", key, err)
		}
	}

	// Split group 0's range, move the upper child to group 1, then merge
	// group 1's now-adjacent ranges.
	cd, err := NewCoordinator(500, m, clientAddrs)
	if err != nil {
		t.Fatal(err)
	}
	at := uint64(1) << 62
	if _, err := cd.Split(at); err != nil {
		t.Fatalf("split: %v", err)
	}
	if _, err := cd.Move(at, 1); err != nil {
		t.Fatalf("move: %v", err)
	}
	nm, err := cd.Merge(uint64(1) << 63)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if nm.Version != m.Version+3 {
		t.Fatalf("final map v%d, want v%d", nm.Version, m.Version+3)
	}
	if g := nm.Ranges[nm.RangeIndexFor(at)].Group; g != 1 {
		t.Fatalf("moved span owned by group %d, want 1\n%s", g, nm)
	}

	// Every key reads back through the live router (which follows the
	// NACKs to the new owner), and nodes serve the committed map.
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("rb-key-%d", i)
		resp, err := router.Do([]byte(key), hashdb.GetReq(key))
		if err != nil {
			t.Fatalf("get %s after rebalance: %v", key, err)
		}
		d := wire.NewDecoder(resp)
		if ok := d.Bool(); !ok || string(d.BytesVal()) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %s after rebalance = %q", key, resp)
		}
	}
	cl := NewClient(999, clientAddrs)
	defer cl.Close()
	fetched, err := cl.FetchShardMap(0)
	if err != nil {
		t.Fatalf("fetch live map: %v", err)
	}
	if fetched.Version != nm.Version {
		t.Fatalf("node serves map v%d, want live v%d", fetched.Version, nm.Version)
	}
}

// startFramingServer boots a single self-electing replica behind a TCP
// server for protocol edge-case tests.
func startFramingServer(t *testing.T) (*Server, func()) {
	t.Helper()
	app := apps.HashDB()
	e := env.NewReal()
	net1 := transport.NewNetwork(e, 1, 0, 1)
	r, err := core.NewReplica(core.Config{
		ID: 0, N: 1, Env: e,
		Endpoint:        net1.Endpoint(0),
		Log:             storage.NewMemLog(),
		Snapshots:       storage.NewMemSnapshots(),
		Factory:         app.Factory,
		Workers:         1,
		Timers:          app.Timers,
		ElectionTimeout: 50 * time.Millisecond,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	srv, err := Listen(r, "127.0.0.1:0")
	if err != nil {
		r.Stop()
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for r.Role() != core.RolePrimary && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	return srv, func() { srv.Close(); r.Stop() }
}

// request encodes a protocol frame body (without the length prefix).
func request(kind byte, group, client, seq uint64, body []byte) []byte {
	e := wire.NewEncoder(nil)
	e.Byte(kind)
	e.Uvarint(group)
	e.Uvarint(client)
	e.Uvarint(seq)
	e.BytesVal(body)
	return e.Bytes()
}

// TestClientProtocolFraming is the table-driven framing edge-case suite:
// malformed, unknown-kind, unknown-group, oversized, and truncated frames
// must all produce clean errors — never a crash, a hang, or a poisoned
// connection handler.
func TestClientProtocolFraming(t *testing.T) {
	srv, stop := startFramingServer(t)
	defer stop()

	oldTimeout := frameBodyTimeout
	frameBodyTimeout = 300 * time.Millisecond
	defer func() { frameBodyTimeout = oldTimeout }()

	writeRaw := func(conn net.Conn, declaredLen uint32, payload []byte) {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], declaredLen)
		conn.Write(hdr[:])
		conn.Write(payload)
	}

	cases := []struct {
		name string
		// send writes one bad frame and reports what must happen next:
		// wantStatus < 0 means the server must just close the connection.
		send       func(conn net.Conn)
		wantStatus int
		wantMsg    string
	}{
		{
			name: "unknown kind",
			send: func(conn net.Conn) {
				f := request(99, 0, 1, 1, nil)
				writeRaw(conn, uint32(len(f)), f)
			},
			wantStatus: int(StatusError),
			wantMsg:    "unknown request kind",
		},
		{
			name: "unknown group",
			send: func(conn net.Conn) {
				f := request(KindSubmit, 7, 1, 1, []byte("x"))
				writeRaw(conn, uint32(len(f)), f)
			},
			// Permanent: placement is static, retrying cannot help.
			wantStatus: int(StatusFailed),
			wantMsg:    "not hosted",
		},
		{
			name: "malformed body",
			send: func(conn net.Conn) {
				// A bare kind byte: the decoder runs out of input.
				writeRaw(conn, 1, []byte{KindSubmit})
			},
			wantStatus: int(StatusError),
			wantMsg:    "malformed",
		},
		{
			name: "oversized frame",
			send: func(conn net.Conn) {
				writeRaw(conn, maxFrame+1, nil)
			},
			wantStatus: int(StatusError),
			wantMsg:    "oversized",
		},
		{
			name: "short read",
			send: func(conn net.Conn) {
				// Announce 100 bytes, deliver 3, then go silent: the body
				// timeout must free the handler (connection closes).
				writeRaw(conn, 100, []byte{1, 2, 3})
			},
			wantStatus: -1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conn, err := net.Dial("tcp", srv.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			tc.send(conn)
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			resp, err := readFrame(conn)
			if tc.wantStatus < 0 {
				if err == nil {
					t.Fatalf("expected closed connection, got response %x", resp)
				}
				return
			}
			if err != nil {
				t.Fatalf("readFrame: %v", err)
			}
			if int(resp[0]) != tc.wantStatus {
				t.Errorf("status = %d, want %d", resp[0], tc.wantStatus)
			}
			if !strings.Contains(string(resp[1:]), tc.wantMsg) {
				t.Errorf("message = %q, want substring %q", resp[1:], tc.wantMsg)
			}
		})
	}

	// After all that abuse, a well-formed request still works.
	cl := NewClient(1, []string{srv.Addr().String()})
	defer cl.Close()
	if _, err := cl.Do(hashdb.SetReq("k", []byte("v"))); err != nil {
		t.Fatalf("well-formed request after abuse: %v", err)
	}
}

// TestCloseUnblocksIdleConns verifies the shutdown path: Close must
// return promptly even when clients hold open connections with no
// request in flight (the read loop is blocked in readFrame).
func TestCloseUnblocksIdleConns(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time TCP test")
	}
	srv, stop := startFramingServer(t)
	addr := srv.Addr().String()

	// Park a few idle connections; never send a byte on them.
	var idle []net.Conn
	for i := 0; i < 3; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		defer conn.Close()
		idle = append(idle, conn)
	}
	// Give the accept loop a moment to hand them to serveConn.
	time.Sleep(50 * time.Millisecond)

	done := make(chan struct{})
	go func() {
		stop() // srv.Close() + replica stop
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return within 5s with idle connections open")
	}
	// The server side must have closed the idle conns too.
	for _, conn := range idle {
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := readFrame(conn); err == nil {
			t.Error("idle connection still open after Close")
		}
	}
}

// TestDeadlineFrameRejectsGarbage sends request frames with malformed
// trailing deadline fields and expects a typed error status, never a
// hang or crash.
func TestDeadlineFrameRejectsGarbage(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time TCP test")
	}
	srv, stop := startFramingServer(t)
	defer stop()
	addr := srv.Addr().String()

	cases := []struct {
		name  string
		extra []byte
	}{
		{"zero budget", []byte{0x00}},
		{"truncated uvarint", []byte{0x80}},
		{"oversized budget", []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}},
		{"trailing junk", []byte{0x01, 0xde, 0xad}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			defer conn.Close()
			frame := request(KindSubmitToken, 0, 99, 1, hashdb.SetReq("k", []byte("v")))
			frame = append(frame, tc.extra...)
			var hdr [4]byte
			binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
			if _, err := conn.Write(hdr[:]); err != nil {
				t.Fatal(err)
			}
			if _, err := conn.Write(frame); err != nil {
				t.Fatal(err)
			}
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			resp, err := readFrame(conn)
			if err != nil {
				t.Fatalf("readFrame: %v", err)
			}
			if resp[0] != StatusError {
				t.Errorf("status = %d, want StatusError", resp[0])
			}
			if !strings.Contains(string(resp[1:]), "malformed request") {
				t.Errorf("message = %q, want malformed request", resp[1:])
			}
		})
	}

	// A well-formed v5 frame with a valid deadline still succeeds.
	cl := NewClient(7, []string{addr})
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := cl.DoCtx(ctx, hashdb.SetReq("k2", []byte("v2"))); err != nil {
		t.Fatalf("v5 framed request: %v", err)
	}
}
