package server

import (
	"fmt"
	"net"
	"testing"
	"time"

	"rex/internal/apps"
	"rex/internal/apps/hashdb"
	"rex/internal/core"
	"rex/internal/env"
	"rex/internal/storage"
	"rex/internal/transport"
	"rex/internal/wire"
)

// freePorts reserves n distinct localhost ports.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	var addrs []string
	var listeners []net.Listener
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners = append(listeners, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs
}

// TestTCPClusterEndToEnd runs a real 3-replica cluster over TCP on the
// real environment — the cmd/rexd deployment path — and drives it through
// the client protocol.
func TestTCPClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time TCP cluster test")
	}
	app := apps.HashDB()
	peerAddrs := freePorts(t, 3)
	clientAddrs := freePorts(t, 3)
	e := env.NewReal()

	var replicas []*core.Replica
	var servers []*Server
	for i := 0; i < 3; i++ {
		ep, err := transport.ListenTCP(i, peerAddrs)
		if err != nil {
			t.Fatalf("listen %d: %v", i, err)
		}
		r, err := core.NewReplica(core.Config{
			ID: i, N: 3, Env: e,
			Endpoint:        ep,
			Log:             storage.NewMemLog(),
			Snapshots:       storage.NewMemSnapshots(),
			Factory:         app.Factory,
			Workers:         2,
			Timers:          app.Timers,
			ReadWorkers:     1,
			HeartbeatEvery:  30 * time.Millisecond,
			ElectionTimeout: 150 * time.Millisecond,
			Seed:            int64(i) + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		srv, err := Listen(r, clientAddrs[i])
		if err != nil {
			t.Fatal(err)
		}
		replicas = append(replicas, r)
		servers = append(servers, srv)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
		for _, r := range replicas {
			r.Stop()
		}
	}()

	// Wait for an election over real TCP.
	deadline := time.Now().Add(10 * time.Second)
	leader := -1
	for leader < 0 && time.Now().Before(deadline) {
		for i, r := range replicas {
			if r.Role() == core.RolePrimary {
				leader = i
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if leader < 0 {
		t.Fatal("no primary elected over TCP")
	}

	cl := NewClient(42, clientAddrs)
	defer cl.Close()
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("tcp-key-%d", i)
		resp, err := cl.Do(hashdb.SetReq(key, []byte(fmt.Sprintf("v%d", i))))
		if err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
		if len(resp) != 1 || resp[0] != 1 {
			t.Fatalf("set resp = %x", resp)
		}
	}
	resp, err := cl.Do(hashdb.GetReq("tcp-key-7"))
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	d := wire.NewDecoder(resp)
	if ok := d.Bool(); !ok || string(d.BytesVal()) != "v7" {
		t.Fatalf("get = %q (ok=%v)", resp, ok)
	}

	// Read-only query against each replica (secondaries may lag briefly).
	q := hashdb.GetReq("tcp-key-7")
	for i := range replicas {
		deadline := time.Now().Add(5 * time.Second)
		for {
			resp, err := cl.Query(i, q)
			if err == nil {
				d := wire.NewDecoder(resp)
				if d.Bool() && string(d.BytesVal()) == "v7" {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %d never served the query: %v", i, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Submitting at a follower must redirect (the client handles it); a
	// direct Submit must return ErrNotPrimary.
	follower := (leader + 1) % 3
	if _, err := replicas[follower].Submit(1, 1, hashdb.GetReq("x")); err == nil {
		t.Error("follower accepted a Submit")
	}
}

func TestClientProtocolFraming(t *testing.T) {
	// Malformed and unknown frames must produce error responses, not
	// crashes or hangs.
	app := apps.HashDB()
	e := env.NewReal()
	net1 := transport.NewNetwork(e, 1, 0, 1)
	r, err := core.NewReplica(core.Config{
		ID: 0, N: 1, Env: e,
		Endpoint:        net1.Endpoint(0),
		Log:             storage.NewMemLog(),
		Snapshots:       storage.NewMemSnapshots(),
		Factory:         app.Factory,
		Workers:         1,
		Timers:          app.Timers,
		ElectionTimeout: 50 * time.Millisecond,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	srv, err := Listen(r, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Wait for the single replica to self-elect.
	deadline := time.Now().Add(5 * time.Second)
	for r.Role() != core.RolePrimary && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Unknown kind.
	e2 := wire.NewEncoder(nil)
	e2.Byte(99)
	e2.Uvarint(1)
	e2.Uvarint(1)
	e2.BytesVal(nil)
	frame := e2.Bytes()
	hdr := []byte{0, 0, 0, byte(len(frame))}
	conn.Write(hdr)
	conn.Write(frame)
	resp, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if resp[0] != StatusError {
		t.Errorf("unknown kind status = %d, want error", resp[0])
	}
}
