// Package server exposes a Rex replica to remote clients over a minimal
// TCP protocol, used by cmd/rexd and cmd/rexctl.
//
// Request frame:  [4-byte len][1-byte kind][uvarint client][uvarint seq][body]
// Response frame: [4-byte len][1-byte status][body]
//
// Kinds: 1 = submit (replicated), 2 = query (local read-only).
// Status: 0 = ok (body is the application response), 1 = not primary
// (body is a varint leader hint, -1 unknown), 2 = error (body is a
// message).
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"rex/internal/core"
	"rex/internal/wire"
)

// Protocol constants.
const (
	KindSubmit byte = 1
	KindQuery  byte = 2

	StatusOK         byte = 0
	StatusNotPrimary byte = 1
	StatusError      byte = 2

	maxFrame = 64 << 20
)

// Server serves client connections for one replica.
type Server struct {
	replica *core.Replica
	ln      net.Listener
	mu      sync.Mutex
	closed  bool
	wg      sync.WaitGroup
}

// Listen starts serving clients on addr.
func Listen(replica *core.Replica, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{replica: replica, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting and waits for connection handlers to drain.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	for {
		frame, err := readFrame(conn)
		if err != nil {
			return
		}
		status, body := s.handle(frame)
		if err := writeFrame(conn, status, body); err != nil {
			return
		}
	}
}

func (s *Server) handle(frame []byte) (byte, []byte) {
	d := wire.NewDecoder(frame)
	kind := d.Byte()
	client := d.Uvarint()
	seq := d.Uvarint()
	body := d.BytesVal()
	if d.Err() != nil {
		return StatusError, []byte("malformed request")
	}
	switch kind {
	case KindSubmit:
		resp, err := s.replica.Submit(client, seq, body)
		if err != nil {
			var np core.ErrNotPrimary
			if errors.As(err, &np) {
				e := wire.NewEncoder(nil)
				e.Varint(int64(np.Leader))
				return StatusNotPrimary, e.Bytes()
			}
			return StatusError, []byte(err.Error())
		}
		return StatusOK, resp
	case KindQuery:
		resp, err := s.replica.Query(body)
		if err != nil {
			return StatusError, []byte(err.Error())
		}
		return StatusOK, resp
	}
	return StatusError, []byte(fmt.Sprintf("unknown request kind %d", frame[0]))
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, errors.New("server: oversized frame")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func writeFrame(w io.Writer, status byte, body []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)+1))
	hdr[4] = status
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// Client talks to a replica group's client ports.
type Client struct {
	addrs  []string
	id     uint64
	seq    uint64
	mu     sync.Mutex
	conns  map[int]net.Conn
	target int
}

// NewClient creates a client with a unique id over the given client
// addresses (one per replica, in replica-id order).
func NewClient(id uint64, addrs []string) *Client {
	return &Client{addrs: addrs, id: id, conns: make(map[int]net.Conn)}
}

func (c *Client) conn(i int) (net.Conn, error) {
	if conn, ok := c.conns[i]; ok {
		return conn, nil
	}
	conn, err := net.Dial("tcp", c.addrs[i])
	if err != nil {
		return nil, err
	}
	c.conns[i] = conn
	return conn, nil
}

func (c *Client) roundTrip(i int, kind byte, seq uint64, body []byte) (byte, []byte, error) {
	conn, err := c.conn(i)
	if err != nil {
		return 0, nil, err
	}
	e := wire.NewEncoder(nil)
	e.Byte(kind)
	e.Uvarint(c.id)
	e.Uvarint(seq)
	e.BytesVal(body)
	frame := e.Bytes()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := conn.Write(hdr[:]); err != nil {
		conn.Close()
		delete(c.conns, i)
		return 0, nil, err
	}
	if _, err := conn.Write(frame); err != nil {
		conn.Close()
		delete(c.conns, i)
		return 0, nil, err
	}
	resp, err := readFrame(conn)
	if err != nil || len(resp) < 1 {
		conn.Close()
		delete(c.conns, i)
		if err == nil {
			err = errors.New("server: empty response")
		}
		return 0, nil, err
	}
	return resp[0], resp[1:], nil
}

// Do submits a replicated request, following not-primary redirects.
func (c *Client) Do(body []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	seq := c.seq
	tried := 0
	for tried < 4*len(c.addrs) {
		i := c.target % len(c.addrs)
		status, resp, err := c.roundTrip(i, KindSubmit, seq, body)
		if err != nil {
			c.target++
			tried++
			continue
		}
		switch status {
		case StatusOK:
			return resp, nil
		case StatusNotPrimary:
			d := wire.NewDecoder(resp)
			leader := d.Varint()
			if d.Err() == nil && leader >= 0 {
				c.target = int(leader)
			} else {
				c.target++
			}
			tried++
		default:
			c.target++
			tried++
		}
	}
	return nil, errors.New("server: no replica accepted the request")
}

// Query runs a read-only query against replica i.
func (c *Client) Query(i int, body []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	status, resp, err := c.roundTrip(i, KindQuery, 0, body)
	if err != nil {
		return nil, err
	}
	if status != StatusOK {
		return nil, fmt.Errorf("server: query failed: %s", resp)
	}
	return resp, nil
}

// Close closes all connections.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, conn := range c.conns {
		conn.Close()
	}
	c.conns = make(map[int]net.Conn)
}
