// Package server exposes Rex replicas to remote clients over a minimal
// TCP protocol, used by cmd/rexd and cmd/rexctl. One server can host
// several shard groups' replicas (one process, one listener).
//
// Request frame:  [4-byte len][1-byte kind][uvarint group][uvarint client][uvarint seq][body]
// Response frame: [4-byte len][1-byte status][body]
//
// Kinds: 1 = submit (replicated), 2 = query (local read-only), 3 = fetch
// the shard map (group/client/seq ignored), 4 = group status, 5 = propose
// a membership change (body: op + ids + addr), 6 = fetch the group's
// committed membership, 7 = leveled query (body: level byte + session
// token + query; ok body: refreshed token + response), 8 = submit
// returning a session token (ok body: token + response).
//
// Protocol v4 (live rebalancing): on a rebalance-enabled node, kind 3
// answers with the LIVE shard map read from group 0's replicated state —
// not the static bootstrap map — so clients that get a wrong-group NACK
// (a rebalance envelope reply carrying the newer map version, riding
// inside an ordinary StatusOK body) can self-update. The frame layout is
// unchanged; v3 clients still parse every frame.
//
// Protocol v5 (overload protection): a request frame may carry one
// OPTIONAL trailing field after the body — the client's remaining
// deadline budget in milliseconds as a uvarint (overload.
// AppendWireDeadline). v4 frames simply omit it, and v4 servers ignored
// trailing bytes, so both directions interoperate. Two statuses were
// added: 4 = overloaded (the request was shed before execution; body is
// a uvarint retry-after hint in milliseconds) and 5 = deadline exceeded
// (the propagated deadline expired before execution; body is a
// message). Both guarantee the request did NOT execute.
// Status: 0 = ok (body is the response), 1 = not primary (body is a
// varint leader hint, -1 unknown), 2 = error (body is a message; the
// request may succeed elsewhere or later), 3 = failed permanently (body
// is a message; retrying cannot help), 4 = overloaded (retry after the
// hinted delay), 5 = deadline exceeded (not executed; give up).
//
// Framing is defensive: an oversized length prefix gets an error response
// and the connection is dropped (the stream cannot be resynced), and a
// frame whose body never arrives times out instead of pinning the
// connection handler forever.
package server

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"rex/internal/core"
	"rex/internal/overload"
	"rex/internal/readpath"
	"rex/internal/rebalance"
	"rex/internal/reconfig"
	"rex/internal/shard"
	"rex/internal/wire"
)

// Protocol constants.
const (
	KindSubmit      byte = 1
	KindQuery       byte = 2
	KindShardMap    byte = 3
	KindStatus      byte = 4
	KindReconfig    byte = 5
	KindMembership  byte = 6
	KindQueryLevel  byte = 7
	KindSubmitToken byte = 8

	StatusOK         byte = 0
	StatusNotPrimary byte = 1
	StatusError      byte = 2
	StatusFailed     byte = 3
	StatusOverloaded byte = 4
	StatusDeadline   byte = 5

	// Reconfig ops carried in a KindReconfig body.
	ReconfigAdd     byte = 1
	ReconfigRemove  byte = 2
	ReconfigReplace byte = 3

	maxFrame = 64 << 20
)

// ErrPermanent marks client errors that no retry can fix: the server
// answered StatusFailed (stale sequence number, unknown group, a
// membership change the current membership rejects), or the request
// itself cannot be framed. Callers check with errors.Is.
var ErrPermanent = errors.New("server: permanent failure")

// frameBodyTimeout bounds how long a connection may dangle between a
// frame's length prefix and its last body byte. A package variable so the
// truncated-frame test doesn't take 10 seconds.
var frameBodyTimeout = 10 * time.Second

// errOversized marks a frame whose declared length exceeds maxFrame; the
// server answers it with StatusError before dropping the connection.
var errOversized = errors.New("server: oversized frame")

// DefaultMaxInflightPerGroup is the per-group concurrent-request budget
// a server applies when Options leaves it unset: requests past it are
// NACKed StatusOverloaded at the server edge, before touching the
// replica. The per-connection budget is structural — the protocol is
// one request per connection at a time — so this bounds total
// concurrency at (open connections) ∧ (groups × budget).
const DefaultMaxInflightPerGroup = 1024

// serverRetryAfter is the retry-after hint for edge NACKs (the server's
// own budget, as opposed to core sheds which carry the controller's
// estimate).
const serverRetryAfter = 10 * time.Millisecond

// Options tunes a listening server.
type Options struct {
	// MaxInflightPerGroup bounds requests concurrently executing per
	// hosted group. 0 selects DefaultMaxInflightPerGroup; negative
	// disables the budget.
	MaxInflightPerGroup int
}

// Server serves client connections for the replicas of one process.
type Server struct {
	replicas    map[int]*core.Replica // by group id
	smap        *shard.ShardMap       // nil when unsharded
	live        bool                  // rebalance-enabled: serve the live map
	maxInflight int                   // per-group budget; 0 = disabled
	ln          net.Listener
	mu          sync.Mutex
	closed      bool
	conns       map[net.Conn]struct{} // open connections, closed with the server
	inflight    map[int]int           // executing requests per group
	wg          sync.WaitGroup
}

// Listen starts serving a single, unsharded replica on addr (it answers
// group 0; shard-map fetches report an error).
func Listen(replica *core.Replica, addr string) (*Server, error) {
	return ListenWith(replica, addr, Options{})
}

// ListenWith is Listen with explicit options.
func ListenWith(replica *core.Replica, addr string, opts Options) (*Server, error) {
	return listen(map[int]*core.Replica{0: replica}, nil, false, addr, opts)
}

// ListenNode starts serving every group a shard node hosts, plus the
// node's shard map.
func ListenNode(n *shard.Node, addr string) (*Server, error) {
	return ListenNodeWith(n, addr, Options{})
}

// ListenNodeWith is ListenNode with explicit options.
func ListenNodeWith(n *shard.Node, addr string, opts Options) (*Server, error) {
	replicas := make(map[int]*core.Replica)
	for _, g := range n.Groups() {
		replicas[g] = n.Replica(g)
	}
	return listen(replicas, n.Map(), n.RebalanceEnabled(), addr, opts)
}

func listen(replicas map[int]*core.Replica, smap *shard.ShardMap, live bool, addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	maxInflight := opts.MaxInflightPerGroup
	if maxInflight == 0 {
		maxInflight = DefaultMaxInflightPerGroup
	}
	if maxInflight < 0 {
		maxInflight = 0
	}
	s := &Server{
		replicas:    replicas,
		smap:        smap,
		live:        live,
		maxInflight: maxInflight,
		ln:          ln,
		conns:       make(map[net.Conn]struct{}),
		inflight:    make(map[int]int),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting, closes every open connection — unblocking
// handlers idling in a read, so shutdown does not wait on silent
// clients — and waits for the handlers to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// admitGroup takes one slot of the group's in-flight budget; false means
// the edge budget is exhausted and the request must be NACKed without
// touching the replica.
func (s *Server) admitGroup(group int) bool {
	if s.maxInflight <= 0 {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight[group] >= s.maxInflight {
		return false
	}
	s.inflight[group]++
	return true
}

func (s *Server) releaseGroup(group int) {
	if s.maxInflight <= 0 {
		return
	}
	s.mu.Lock()
	s.inflight[group]--
	s.mu.Unlock()
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		frame, err := readFrame(conn)
		if err != nil {
			if errors.Is(err, errOversized) {
				// Tell the client why before hanging up; the stream can't
				// be resynced past a length we refuse to read.
				writeFrame(conn, StatusError, []byte(err.Error()))
			}
			return
		}
		status, body := s.handle(frame)
		if err := writeFrame(conn, status, body); err != nil {
			return
		}
	}
}

func (s *Server) handle(frame []byte) (byte, []byte) {
	d := wire.NewDecoder(frame)
	kind := d.Byte()
	group := d.Uvarint()
	client := d.Uvarint()
	seq := d.Uvarint()
	body := d.BytesVal()
	if d.Err() != nil {
		return StatusError, []byte("malformed request")
	}
	// Protocol v5: the optional trailing deadline budget. A garbage
	// trailer is a malformed frame, not a silently dropped field.
	budget, err := overload.DecodeWireDeadline(d)
	if err != nil {
		return StatusError, []byte(fmt.Sprintf("malformed request: %v", err))
	}
	if kind == KindShardMap {
		if s.smap == nil {
			return StatusError, []byte("server: not sharded (no shard map)")
		}
		// Protocol v4: a rebalance-enabled node hosting the map home
		// serves the live map from replicated state; anything else (home
		// group elsewhere, replica still catching up) falls back to the
		// static bootstrap map — clients converge via NACK-driven
		// refetches against a node that does host the home.
		if s.live {
			if rep := s.replicas[0]; rep != nil {
				if m := liveMapFrom(rep); m != nil {
					return StatusOK, m.EncodeBytes()
				}
			}
		}
		return StatusOK, s.smap.EncodeBytes()
	}
	rep := s.replicas[int(group)]
	if rep == nil {
		// Placement is static per map version: no retry against this node
		// can ever find the group.
		return StatusFailed, []byte(fmt.Sprintf("server: group %d not hosted here", group))
	}
	// The per-group in-flight budget guards the load-bearing kinds at
	// the server edge: past it, NACK without doing any replica work.
	switch kind {
	case KindSubmit, KindSubmitToken, KindQuery, KindQueryLevel:
		if !s.admitGroup(int(group)) {
			return StatusOverloaded, overloadedBody(serverRetryAfter)
		}
		defer s.releaseGroup(int(group))
	}
	switch kind {
	case KindSubmit:
		resp, _, err := rep.SubmitTokenDeadline(client, seq, body, budget)
		if err != nil {
			return submitErrStatus(err)
		}
		return StatusOK, resp
	case KindSubmitToken:
		resp, tok, err := rep.SubmitTokenDeadline(client, seq, body, budget)
		if err != nil {
			return submitErrStatus(err)
		}
		e := wire.NewEncoder(nil)
		e.BytesVal(tok.EncodeBytes())
		e.BytesVal(resp)
		return StatusOK, e.Bytes()
	case KindQuery:
		resp, err := rep.Query(body)
		if err != nil {
			return StatusError, []byte(err.Error())
		}
		return StatusOK, resp
	case KindQueryLevel:
		d2 := wire.NewDecoder(body)
		level := readpath.Level(d2.Byte())
		tokB := d2.BytesVal()
		q := d2.BytesVal()
		if d2.Err() != nil {
			return StatusFailed, []byte("malformed leveled query")
		}
		tok, err := readpath.DecodeTokenBytes(tokB)
		if err != nil {
			return StatusFailed, []byte(fmt.Sprintf("corrupt session token: %v", err))
		}
		resp, out, err := rep.QueryLevel(level, tok, q)
		if err != nil {
			var np core.ErrNotPrimary
			if errors.As(err, &np) {
				e := wire.NewEncoder(nil)
				e.Varint(int64(np.Leader))
				return StatusNotPrimary, e.Bytes()
			}
			if errors.Is(err, overload.ErrOverloaded) {
				return StatusOverloaded, overloadedBody(overload.RetryAfter(err))
			}
			// readpath's routing errors (primary-only classification,
			// frontier/lease waits) cross as their stable message strings;
			// clients match them to pick the next replica.
			return StatusError, []byte(err.Error())
		}
		e := wire.NewEncoder(nil)
		e.BytesVal(out.EncodeBytes())
		e.BytesVal(resp)
		return StatusOK, e.Bytes()
	case KindStatus:
		st := rep.Stats()
		e := wire.NewEncoder(nil)
		e.Byte(byte(st.Role))
		e.Varint(int64(rep.Leader()))
		e.Uvarint(st.Applied)
		e.Uvarint(st.ReqsCompleted)
		e.Uvarint(uint64(st.Outstanding))
		return StatusOK, e.Bytes()
	case KindReconfig:
		return s.handleReconfig(rep, body)
	case KindMembership:
		// A replica parked after its own removal still knows a membership,
		// but a stale one — make the client ask a live member instead.
		if rep.Role() == core.RoleRemoved {
			return StatusError, []byte("replica removed from membership")
		}
		return StatusOK, reconfig.EncodeValue(rep.Membership())
	}
	return StatusError, []byte(fmt.Sprintf("unknown request kind %d", kind))
}

// liveMapFrom reads the live shard map from the map home replica's local
// replicated state; nil if the replica cannot answer (not the map home,
// still starting, stopped).
func liveMapFrom(rep *core.Replica) *shard.ShardMap {
	resp, err := rep.Query(rebalance.GetMapQuery())
	if err != nil {
		return nil
	}
	st, payload, err := shard.DecodeReply(resp)
	if err != nil || st != shard.ReplyOK {
		return nil
	}
	m, _, err := rebalance.DecodeGetMapReply(payload)
	if err != nil {
		return nil
	}
	return m
}

// submitErrStatus maps a Submit/SubmitToken error onto the wire.
func submitErrStatus(err error) (byte, []byte) {
	var np core.ErrNotPrimary
	if errors.As(err, &np) {
		e := wire.NewEncoder(nil)
		e.Varint(int64(np.Leader))
		return StatusNotPrimary, e.Bytes()
	}
	if errors.Is(err, core.ErrStaleSeq) {
		// The primary's dedup table has moved past this sequence
		// number; no replica will ever accept it again.
		return StatusFailed, []byte(err.Error())
	}
	// Both overload NACKs guarantee the request was never admitted into
	// the trace: the client may safely retry (or discard the op from a
	// linearizability history) without risking duplicate execution.
	if errors.Is(err, overload.ErrOverloaded) {
		return StatusOverloaded, overloadedBody(overload.RetryAfter(err))
	}
	if errors.Is(err, overload.ErrDeadlineExceeded) {
		return StatusDeadline, []byte(err.Error())
	}
	return StatusError, []byte(err.Error())
}

// overloadedBody encodes a StatusOverloaded response body: the uvarint
// retry-after hint in milliseconds (rounded up, minimum 1ms).
func overloadedBody(ra time.Duration) []byte {
	if ra <= 0 {
		ra = serverRetryAfter
	}
	ms := uint64((ra + time.Millisecond - 1) / time.Millisecond)
	if ms == 0 {
		ms = 1
	}
	e := wire.NewEncoder(nil)
	e.Uvarint(ms)
	return e.Bytes()
}

// decodeRetryAfter parses a StatusOverloaded body; a malformed body
// degrades to the server's default hint rather than an error — the
// status byte alone already carries the decision that matters.
func decodeRetryAfter(b []byte) time.Duration {
	d := wire.NewDecoder(b)
	ms := d.Uvarint()
	if d.Err() != nil || ms == 0 {
		return serverRetryAfter
	}
	if ms > uint64(overload.MaxWireDeadline/time.Millisecond) {
		return serverRetryAfter
	}
	return time.Duration(ms) * time.Millisecond
}

func (s *Server) handleReconfig(rep *core.Replica, body []byte) (byte, []byte) {
	d := wire.NewDecoder(body)
	op := d.Byte()
	id := int(d.Uvarint())
	newID := int(d.Uvarint())
	addr := string(d.BytesVal())
	if d.Err() != nil {
		return StatusError, []byte("malformed reconfig request")
	}
	var err error
	switch op {
	case ReconfigAdd:
		err = rep.AddMember(id, addr)
	case ReconfigRemove:
		err = rep.RemoveMember(id)
	case ReconfigReplace:
		err = rep.ReplaceMember(id, newID, addr)
	default:
		return StatusFailed, []byte(fmt.Sprintf("unknown reconfig op %d", op))
	}
	if err != nil {
		var np core.ErrNotPrimary
		switch {
		case errors.As(err, &np):
			e := wire.NewEncoder(nil)
			e.Varint(int64(np.Leader))
			return StatusNotPrimary, e.Bytes()
		case errors.Is(err, core.ErrReconfigInFlight), errors.Is(err, core.ErrStopped):
			// Transient: the in-flight change commits, or another replica
			// takes over; the same request can succeed on a later attempt.
			return StatusError, []byte(err.Error())
		default:
			// Membership validation rejections (already a member, not a
			// member, would drop below quorum) don't change on retry.
			return StatusFailed, []byte(err.Error())
		}
	}
	return StatusOK, nil
}

// GroupStatus is one replica's answer to a KindStatus request.
type GroupStatus struct {
	Role          core.Role
	Leader        int
	Applied       uint64
	ReqsCompleted uint64
	Outstanding   int
}

func decodeGroupStatus(b []byte) (GroupStatus, error) {
	d := wire.NewDecoder(b)
	st := GroupStatus{
		Role:          core.Role(d.Byte()),
		Leader:        int(d.Varint()),
		Applied:       d.Uvarint(),
		ReqsCompleted: d.Uvarint(),
		Outstanding:   int(d.Uvarint()),
	}
	return st, d.Err()
}

func readFrame(r io.Reader) ([]byte, error) {
	return readFrameDeadline(r, time.Time{})
}

// readFrameDeadline is readFrame with an optional overall deadline: a
// zero dl lets the connection idle forever between frames (the server's
// posture), a non-zero dl caps both the wait for the header and the wait
// for the body (a client honoring a context deadline).
func readFrameDeadline(r io.Reader, dl time.Time) ([]byte, error) {
	conn, _ := r.(net.Conn)
	if conn != nil {
		conn.SetReadDeadline(dl)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, errOversized
	}
	// Once a length has been announced the body must follow promptly; a
	// peer that dies mid-frame must not pin this handler forever.
	if conn != nil {
		bodyDl := time.Now().Add(frameBodyTimeout)
		if !dl.IsZero() && dl.Before(bodyDl) {
			bodyDl = dl
		}
		conn.SetReadDeadline(bodyDl)
	}
	buf := make([]byte, n)
	if got, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("server: truncated frame (%d of %d bytes): %w", got, n, err)
	}
	return buf, nil
}

func writeFrame(w io.Writer, status byte, body []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)+1))
	hdr[4] = status
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// Client talks to one replica group's client ports. It maintains a
// session (readpath.SessionState): every write and session read folds the
// response token into it, so session-level reads are read-your-writes and
// monotonic across replicas.
type Client struct {
	addrs  []string
	id     uint64
	group  int
	seq    uint64
	mu     sync.Mutex
	conns  map[int]net.Conn
	target int
	sess   readpath.SessionState
	readRR int // rotation cursor for follower reads
}

// NewClient creates a client for an unsharded deployment (group 0) with a
// unique id over the given client addresses (one per replica, in
// replica-id order).
func NewClient(id uint64, addrs []string) *Client {
	return NewGroupClient(id, 0, addrs)
}

// NewGroupClient creates a client bound to one shard group. addrs are the
// client addresses of the group's replicas in replica-id order (for a
// sharded deployment: the nodes in the map's placement row).
func NewGroupClient(id uint64, group int, addrs []string) *Client {
	return &Client{addrs: addrs, id: id, group: group, conns: make(map[int]net.Conn)}
}

func (c *Client) conn(i int) (net.Conn, error) {
	if conn, ok := c.conns[i]; ok {
		return conn, nil
	}
	conn, err := net.Dial("tcp", c.addrs[i])
	if err != nil {
		return nil, err
	}
	c.conns[i] = conn
	return conn, nil
}

func (c *Client) roundTrip(ctx context.Context, i int, kind byte, seq uint64, body []byte) (byte, []byte, error) {
	e := wire.NewEncoder(nil)
	e.Byte(kind)
	e.Uvarint(uint64(c.group))
	e.Uvarint(c.id)
	e.Uvarint(seq)
	e.BytesVal(body)
	// Protocol v5 deadline propagation: a ctx deadline rides along so
	// every hop can fail fast instead of doing doomed work.
	if d, ok := ctx.Deadline(); ok {
		overload.AppendWireDeadline(e, time.Until(d))
	}
	frame := e.Bytes()
	if len(frame) > maxFrame {
		// The server would refuse the length prefix and drop the
		// connection; fail before poisoning the stream.
		return 0, nil, fmt.Errorf("%w: request frame of %d bytes exceeds the %d-byte limit",
			ErrPermanent, len(frame), maxFrame)
	}
	conn, err := c.conn(i)
	if err != nil {
		return 0, nil, err
	}
	var dl time.Time
	if d, ok := ctx.Deadline(); ok {
		dl = d
	}
	conn.SetWriteDeadline(dl)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := conn.Write(hdr[:]); err != nil {
		conn.Close()
		delete(c.conns, i)
		return 0, nil, err
	}
	if _, err := conn.Write(frame); err != nil {
		conn.Close()
		delete(c.conns, i)
		return 0, nil, err
	}
	resp, err := readFrameDeadline(conn, dl)
	if err != nil || len(resp) < 1 {
		conn.Close()
		delete(c.conns, i)
		if err == nil {
			err = errors.New("server: empty response")
		}
		return 0, nil, err
	}
	return resp[0], resp[1:], nil
}

// Do submits a replicated request to the client's group, following
// not-primary redirects.
func (c *Client) Do(body []byte) ([]byte, error) {
	return c.DoCtx(context.Background(), body)
}

// DoCtx is Do honoring ctx: cancellation aborts the retry loop between
// attempts, and a ctx deadline also bounds each attempt's network I/O.
// A StatusFailed answer (or an unframeable request) returns an error
// wrapping ErrPermanent immediately, with no further retries. Successful
// writes fold the returned session token into the client's session.
func (c *Client) DoCtx(ctx context.Context, body []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	seq := c.seq
	tried := 0
	var lastErr error
	for tried < 4*len(c.addrs) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		i := c.target % len(c.addrs)
		status, resp, err := c.roundTrip(ctx, i, KindSubmitToken, seq, body)
		if err != nil {
			if errors.Is(err, ErrPermanent) {
				return nil, err
			}
			c.target++
			tried++
			continue
		}
		switch status {
		case StatusOK:
			out, tok, err := decodeTokenResp(resp)
			if err != nil {
				return nil, err
			}
			c.sess.Observe(tok)
			return out, nil
		case StatusNotPrimary:
			d := wire.NewDecoder(resp)
			leader := d.Varint()
			if d.Err() == nil && leader >= 0 {
				c.target = int(leader)
			} else {
				c.target++
			}
			tried++
		case StatusFailed:
			return nil, fmt.Errorf("%w: %s", ErrPermanent, resp)
		case StatusOverloaded:
			// The primary shed the write before admission; honor its
			// retry-after hint (capped — the loop, not the hint, owns the
			// overall retry policy) and try the same target again.
			ra := decodeRetryAfter(resp)
			lastErr = overload.Shed{RetryAfter: ra}
			if !sleepCtx(ctx, minDuration(ra, maxClientRetryPause)) {
				return nil, ctx.Err()
			}
			tried++
		case StatusDeadline:
			// The budget we stamped ran out server-side before admission:
			// retrying is exactly the doomed work deadlines exist to avoid.
			return nil, overload.ErrDeadlineExceeded
		default:
			c.target++
			tried++
		}
	}
	if lastErr != nil {
		return nil, lastErr
	}
	return nil, errors.New("server: no replica accepted the request")
}

// maxClientRetryPause caps how long a client sleeps on a server
// retry-after hint: the hint shapes the pause, the retry loop bounds it.
const maxClientRetryPause = 50 * time.Millisecond

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// sleepCtx sleeps for d or until ctx is done; false means ctx fired.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// decodeTokenResp splits a token-carrying OK body into response and token.
func decodeTokenResp(b []byte) ([]byte, readpath.Token, error) {
	d := wire.NewDecoder(b)
	tokB := d.BytesVal()
	resp := d.BytesVal()
	if d.Err() != nil {
		return nil, readpath.Token{}, fmt.Errorf("server: malformed token response: %w", d.Err())
	}
	tok, err := readpath.DecodeTokenBytes(tokB)
	if err != nil {
		return nil, readpath.Token{}, err
	}
	return resp, tok, nil
}

// Query runs a read-only query, preferring the group's replica i but
// failing over to the others on connection failure or a transient error
// (a stopped or rebuilding replica), with the same classification Do
// gives writes.
func (c *Client) Query(i int, body []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < 2*len(c.addrs); attempt++ {
		target := (i + attempt) % len(c.addrs)
		status, resp, err := c.roundTrip(context.Background(), target, KindQuery, 0, body)
		if err != nil {
			lastErr = err
			continue
		}
		switch status {
		case StatusOK:
			return resp, nil
		case StatusFailed:
			return nil, fmt.Errorf("%w: %s", ErrPermanent, resp)
		default:
			lastErr = fmt.Errorf("server: query failed: %s", resp)
		}
	}
	return nil, lastErr
}

// QueryLevel runs a read at the given consistency level. Linearizable
// reads chase the primary exactly like writes do; session and eventual
// reads rotate over the other replicas (the likely secondaries) first and
// fall back to the primary when a query is classified primary-only.
// Session reads carry and refresh the client's session token.
func (c *Client) QueryLevel(level readpath.Level, q []byte) ([]byte, error) {
	return c.QueryLevelCtx(context.Background(), level, q)
}

// QueryLevelCtx is QueryLevel honoring ctx between attempts.
func (c *Client) QueryLevelCtx(ctx context.Context, level readpath.Level, q []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !level.Valid() {
		return nil, fmt.Errorf("%w: invalid consistency level %d", ErrPermanent, uint8(level))
	}
	var lastErr error
	toPrimary := level == readpath.Linearizable
	tried := 0
	for tried < 4*len(c.addrs) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var i int
		if toPrimary {
			i = c.target % len(c.addrs)
		} else {
			// Rotate away from the believed primary so follower-capable
			// reads land on secondaries and scale with the replica count.
			c.readRR++
			i = (c.target + 1 + c.readRR) % len(c.addrs)
			if len(c.addrs) == 1 {
				i = 0
			}
		}
		var tok readpath.Token
		if level == readpath.Session {
			tok = c.sess.Token()
		}
		e := wire.NewEncoder(nil)
		e.Byte(byte(level))
		e.BytesVal(tok.EncodeBytes())
		e.BytesVal(q)
		status, resp, err := c.roundTrip(ctx, i, KindQueryLevel, 0, e.Bytes())
		if err != nil {
			if errors.Is(err, ErrPermanent) {
				return nil, err
			}
			lastErr = err
			tried++
			continue
		}
		switch status {
		case StatusOK:
			out, newTok, err := decodeTokenResp(resp)
			if err != nil {
				return nil, err
			}
			c.sess.Observe(newTok)
			return out, nil
		case StatusNotPrimary:
			d := wire.NewDecoder(resp)
			leader := d.Varint()
			if d.Err() == nil && leader >= 0 {
				c.target = int(leader)
			} else {
				c.target++
			}
			toPrimary = true
			tried++
		case StatusFailed:
			return nil, fmt.Errorf("%w: %s", ErrPermanent, resp)
		case StatusOverloaded:
			// Shed read: pause per the hint, then rotate — under elevated
			// pressure another replica may still serve a weak read even
			// though this one shed it.
			ra := decodeRetryAfter(resp)
			lastErr = overload.Shed{RetryAfter: ra}
			if !sleepCtx(ctx, minDuration(ra, maxClientRetryPause)) {
				return nil, ctx.Err()
			}
			tried++
		case StatusDeadline:
			return nil, overload.ErrDeadlineExceeded
		default:
			if string(resp) == readpath.ErrPrimaryOnly.Error() {
				// Classified primary-only: stop probing secondaries.
				toPrimary = true
			}
			lastErr = fmt.Errorf("server: query failed: %s", resp)
			tried++
		}
	}
	if lastErr == nil {
		lastErr = errors.New("server: no replica served the read")
	}
	return nil, lastErr
}

// Status fetches the group's status from replica i.
func (c *Client) Status(i int) (GroupStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	status, resp, err := c.roundTrip(context.Background(), i, KindStatus, 0, nil)
	if err != nil {
		return GroupStatus{}, err
	}
	if status != StatusOK {
		return GroupStatus{}, fmt.Errorf("server: status failed: %s", resp)
	}
	return decodeGroupStatus(resp)
}

// Membership fetches the group's committed membership from replica i.
func (c *Client) Membership(i int) (reconfig.Membership, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	status, resp, err := c.roundTrip(context.Background(), i, KindMembership, 0, nil)
	if err != nil {
		return reconfig.Membership{}, err
	}
	if status != StatusOK {
		return reconfig.Membership{}, fmt.Errorf("server: membership fetch failed: %s", resp)
	}
	return reconfig.DecodeValue(resp)
}

// AddMember asks the group's primary to admit a new replica (it joins as
// a learner and is promoted once caught up). addr is its paxos address in
// a TCP deployment; empty for in-process transports.
func (c *Client) AddMember(id int, addr string) error {
	return c.reconfigOp(ReconfigAdd, id, 0, addr)
}

// RemoveMember asks the group's primary to retire a replica.
func (c *Client) RemoveMember(id int) error {
	return c.reconfigOp(ReconfigRemove, id, 0, "")
}

// ReplaceMember atomically swaps oldID out and admits newID in one
// committed membership change.
func (c *Client) ReplaceMember(oldID, newID int, addr string) error {
	return c.reconfigOp(ReconfigReplace, oldID, newID, addr)
}

func (c *Client) reconfigOp(op byte, id, newID int, addr string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := wire.NewEncoder(nil)
	e.Byte(op)
	e.Uvarint(uint64(id))
	e.Uvarint(uint64(newID))
	e.BytesVal([]byte(addr))
	body := e.Bytes()
	tried := 0
	for tried < 4*len(c.addrs) {
		i := c.target % len(c.addrs)
		status, resp, err := c.roundTrip(context.Background(), i, KindReconfig, 0, body)
		if err != nil {
			c.target++
			tried++
			continue
		}
		switch status {
		case StatusOK:
			return nil
		case StatusNotPrimary:
			d := wire.NewDecoder(resp)
			leader := d.Varint()
			if d.Err() == nil && leader >= 0 {
				c.target = int(leader)
			} else {
				c.target++
			}
			tried++
		case StatusFailed:
			return fmt.Errorf("%w: %s", ErrPermanent, resp)
		default:
			// Transient: a change already in flight, or a stopped/removed
			// replica. Give it a moment, then move on — if the change is
			// in flight on the primary the next server's redirect sends us
			// straight back, while a parked removed replica would answer
			// this way forever.
			time.Sleep(50 * time.Millisecond)
			c.target++
			tried++
		}
	}
	return errors.New("server: reconfiguration not accepted")
}

// FetchShardMap asks the replica at i for the deployment's shard map.
func (c *Client) FetchShardMap(i int) (*shard.ShardMap, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	status, resp, err := c.roundTrip(context.Background(), i, KindShardMap, 0, nil)
	if err != nil {
		return nil, err
	}
	if status != StatusOK {
		return nil, fmt.Errorf("server: shard map fetch failed: %s", resp)
	}
	return shard.DecodeShardMapBytes(resp)
}

// Close closes all connections.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, conn := range c.conns {
		conn.Close()
	}
	c.conns = make(map[int]net.Conn)
}

// NewShardRouter builds a keyed router over a sharded deployment:
// nodeAddrs maps node id → that process's client address, and each
// group's client follows that group's placement row. Client ids are
// idBase+group.
func NewShardRouter(idBase uint64, m *shard.ShardMap, nodeAddrs []string) (*shard.Router, error) {
	if len(nodeAddrs) != m.Nodes {
		return nil, fmt.Errorf("server: %d node addresses for a %d-node map", len(nodeAddrs), m.Nodes)
	}
	clients := make([]shard.GroupClient, m.Groups())
	for g := range clients {
		addrs := make([]string, m.Replicas(g))
		for r := range addrs {
			addrs[r] = nodeAddrs[m.Placement[g][r]]
		}
		clients[g] = NewGroupClient(idBase+uint64(g), g, addrs)
	}
	return shard.NewRouter(m, clients)
}

// NewCoordinator returns a rebalance coordinator over per-group clients
// of a rebalance-enabled deployment (client ids idBase+group, each
// following its group's placement row).
func NewCoordinator(idBase uint64, m *shard.ShardMap, nodeAddrs []string) (*rebalance.Coordinator, error) {
	if len(nodeAddrs) != m.Nodes {
		return nil, fmt.Errorf("server: %d node addresses for a %d-node map", len(nodeAddrs), m.Nodes)
	}
	clients := make([]shard.GroupClient, m.Groups())
	for g := range clients {
		addrs := make([]string, m.Replicas(g))
		for r := range addrs {
			addrs[r] = nodeAddrs[m.Placement[g][r]]
		}
		clients[g] = NewGroupClient(idBase+uint64(g), g, addrs)
	}
	return &rebalance.Coordinator{Groups: clients, Home: 0}, nil
}

// NewLiveShardRouter is NewShardRouter for a rebalance-enabled
// deployment: the router speaks the rebalance envelope and refetches the
// live map (highest version any node serves for kind 3) on wrong-group,
// stale, or permanent errors. An extra client id idBase+groups is used
// for map fetches.
func NewLiveShardRouter(idBase uint64, m *shard.ShardMap, nodeAddrs []string) (*shard.Router, error) {
	m = m.Clone()
	m.EnsureRanges()
	r, err := NewShardRouter(idBase, m, nodeAddrs)
	if err != nil {
		return nil, err
	}
	mapClient := NewGroupClient(idBase+uint64(m.Groups()), 0, nodeAddrs)
	r.Enveloped = true
	r.ClientID = idBase
	r.IsPermanent = func(err error) bool { return errors.Is(err, ErrPermanent) }
	r.Fetch = func() (*shard.ShardMap, error) {
		var best *shard.ShardMap
		for i := range nodeAddrs {
			nm, err := mapClient.FetchShardMap(i)
			if err != nil {
				continue
			}
			if best == nil || nm.Version > best.Version {
				best = nm
			}
		}
		if best == nil {
			return nil, errors.New("server: no node answered a map fetch")
		}
		return best, nil
	}
	return r, nil
}
