// Package server exposes Rex replicas to remote clients over a minimal
// TCP protocol, used by cmd/rexd and cmd/rexctl. One server can host
// several shard groups' replicas (one process, one listener).
//
// Request frame:  [4-byte len][1-byte kind][uvarint group][uvarint client][uvarint seq][body]
// Response frame: [4-byte len][1-byte status][body]
//
// Kinds: 1 = submit (replicated), 2 = query (local read-only), 3 = fetch
// the shard map (group/client/seq ignored), 4 = group status.
// Status: 0 = ok (body is the response), 1 = not primary (body is a
// varint leader hint, -1 unknown), 2 = error (body is a message).
//
// Framing is defensive: an oversized length prefix gets an error response
// and the connection is dropped (the stream cannot be resynced), and a
// frame whose body never arrives times out instead of pinning the
// connection handler forever.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"rex/internal/core"
	"rex/internal/shard"
	"rex/internal/wire"
)

// Protocol constants.
const (
	KindSubmit   byte = 1
	KindQuery    byte = 2
	KindShardMap byte = 3
	KindStatus   byte = 4

	StatusOK         byte = 0
	StatusNotPrimary byte = 1
	StatusError      byte = 2

	maxFrame = 64 << 20
)

// frameBodyTimeout bounds how long a connection may dangle between a
// frame's length prefix and its last body byte. A package variable so the
// truncated-frame test doesn't take 10 seconds.
var frameBodyTimeout = 10 * time.Second

// errOversized marks a frame whose declared length exceeds maxFrame; the
// server answers it with StatusError before dropping the connection.
var errOversized = errors.New("server: oversized frame")

// Server serves client connections for the replicas of one process.
type Server struct {
	replicas map[int]*core.Replica // by group id
	smap     *shard.ShardMap       // nil when unsharded
	ln       net.Listener
	mu       sync.Mutex
	closed   bool
	wg       sync.WaitGroup
}

// Listen starts serving a single, unsharded replica on addr (it answers
// group 0; shard-map fetches report an error).
func Listen(replica *core.Replica, addr string) (*Server, error) {
	return listen(map[int]*core.Replica{0: replica}, nil, addr)
}

// ListenNode starts serving every group a shard node hosts, plus the
// node's shard map.
func ListenNode(n *shard.Node, addr string) (*Server, error) {
	replicas := make(map[int]*core.Replica)
	for _, g := range n.Groups() {
		replicas[g] = n.Replica(g)
	}
	return listen(replicas, n.Map(), addr)
}

func listen(replicas map[int]*core.Replica, smap *shard.ShardMap, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{replicas: replicas, smap: smap, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting and waits for connection handlers to drain.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	for {
		frame, err := readFrame(conn)
		if err != nil {
			if errors.Is(err, errOversized) {
				// Tell the client why before hanging up; the stream can't
				// be resynced past a length we refuse to read.
				writeFrame(conn, StatusError, []byte(err.Error()))
			}
			return
		}
		status, body := s.handle(frame)
		if err := writeFrame(conn, status, body); err != nil {
			return
		}
	}
}

func (s *Server) handle(frame []byte) (byte, []byte) {
	d := wire.NewDecoder(frame)
	kind := d.Byte()
	group := d.Uvarint()
	client := d.Uvarint()
	seq := d.Uvarint()
	body := d.BytesVal()
	if d.Err() != nil {
		return StatusError, []byte("malformed request")
	}
	if kind == KindShardMap {
		if s.smap == nil {
			return StatusError, []byte("server: not sharded (no shard map)")
		}
		return StatusOK, s.smap.EncodeBytes()
	}
	rep := s.replicas[int(group)]
	if rep == nil {
		return StatusError, []byte(fmt.Sprintf("server: group %d not hosted here", group))
	}
	switch kind {
	case KindSubmit:
		resp, err := rep.Submit(client, seq, body)
		if err != nil {
			var np core.ErrNotPrimary
			if errors.As(err, &np) {
				e := wire.NewEncoder(nil)
				e.Varint(int64(np.Leader))
				return StatusNotPrimary, e.Bytes()
			}
			return StatusError, []byte(err.Error())
		}
		return StatusOK, resp
	case KindQuery:
		resp, err := rep.Query(body)
		if err != nil {
			return StatusError, []byte(err.Error())
		}
		return StatusOK, resp
	case KindStatus:
		st := rep.Stats()
		e := wire.NewEncoder(nil)
		e.Byte(byte(st.Role))
		e.Varint(int64(rep.Leader()))
		e.Uvarint(st.Applied)
		e.Uvarint(st.ReqsCompleted)
		e.Uvarint(uint64(st.Outstanding))
		return StatusOK, e.Bytes()
	}
	return StatusError, []byte(fmt.Sprintf("unknown request kind %d", kind))
}

// GroupStatus is one replica's answer to a KindStatus request.
type GroupStatus struct {
	Role          core.Role
	Leader        int
	Applied       uint64
	ReqsCompleted uint64
	Outstanding   int
}

func decodeGroupStatus(b []byte) (GroupStatus, error) {
	d := wire.NewDecoder(b)
	st := GroupStatus{
		Role:          core.Role(d.Byte()),
		Leader:        int(d.Varint()),
		Applied:       d.Uvarint(),
		ReqsCompleted: d.Uvarint(),
		Outstanding:   int(d.Uvarint()),
	}
	return st, d.Err()
}

func readFrame(r io.Reader) ([]byte, error) {
	conn, _ := r.(net.Conn)
	if conn != nil {
		// Between frames a connection may idle forever.
		conn.SetReadDeadline(time.Time{})
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, errOversized
	}
	// Once a length has been announced the body must follow promptly; a
	// client that dies mid-frame must not pin this handler forever.
	if conn != nil {
		conn.SetReadDeadline(time.Now().Add(frameBodyTimeout))
	}
	buf := make([]byte, n)
	if got, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("server: truncated frame (%d of %d bytes): %w", got, n, err)
	}
	return buf, nil
}

func writeFrame(w io.Writer, status byte, body []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)+1))
	hdr[4] = status
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// Client talks to one replica group's client ports.
type Client struct {
	addrs  []string
	id     uint64
	group  int
	seq    uint64
	mu     sync.Mutex
	conns  map[int]net.Conn
	target int
}

// NewClient creates a client for an unsharded deployment (group 0) with a
// unique id over the given client addresses (one per replica, in
// replica-id order).
func NewClient(id uint64, addrs []string) *Client {
	return NewGroupClient(id, 0, addrs)
}

// NewGroupClient creates a client bound to one shard group. addrs are the
// client addresses of the group's replicas in replica-id order (for a
// sharded deployment: the nodes in the map's placement row).
func NewGroupClient(id uint64, group int, addrs []string) *Client {
	return &Client{addrs: addrs, id: id, group: group, conns: make(map[int]net.Conn)}
}

func (c *Client) conn(i int) (net.Conn, error) {
	if conn, ok := c.conns[i]; ok {
		return conn, nil
	}
	conn, err := net.Dial("tcp", c.addrs[i])
	if err != nil {
		return nil, err
	}
	c.conns[i] = conn
	return conn, nil
}

func (c *Client) roundTrip(i int, kind byte, seq uint64, body []byte) (byte, []byte, error) {
	conn, err := c.conn(i)
	if err != nil {
		return 0, nil, err
	}
	e := wire.NewEncoder(nil)
	e.Byte(kind)
	e.Uvarint(uint64(c.group))
	e.Uvarint(c.id)
	e.Uvarint(seq)
	e.BytesVal(body)
	frame := e.Bytes()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := conn.Write(hdr[:]); err != nil {
		conn.Close()
		delete(c.conns, i)
		return 0, nil, err
	}
	if _, err := conn.Write(frame); err != nil {
		conn.Close()
		delete(c.conns, i)
		return 0, nil, err
	}
	resp, err := readFrame(conn)
	if err != nil || len(resp) < 1 {
		conn.Close()
		delete(c.conns, i)
		if err == nil {
			err = errors.New("server: empty response")
		}
		return 0, nil, err
	}
	return resp[0], resp[1:], nil
}

// Do submits a replicated request to the client's group, following
// not-primary redirects.
func (c *Client) Do(body []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	seq := c.seq
	tried := 0
	for tried < 4*len(c.addrs) {
		i := c.target % len(c.addrs)
		status, resp, err := c.roundTrip(i, KindSubmit, seq, body)
		if err != nil {
			c.target++
			tried++
			continue
		}
		switch status {
		case StatusOK:
			return resp, nil
		case StatusNotPrimary:
			d := wire.NewDecoder(resp)
			leader := d.Varint()
			if d.Err() == nil && leader >= 0 {
				c.target = int(leader)
			} else {
				c.target++
			}
			tried++
		default:
			c.target++
			tried++
		}
	}
	return nil, errors.New("server: no replica accepted the request")
}

// Query runs a read-only query against the group's replica i.
func (c *Client) Query(i int, body []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	status, resp, err := c.roundTrip(i, KindQuery, 0, body)
	if err != nil {
		return nil, err
	}
	if status != StatusOK {
		return nil, fmt.Errorf("server: query failed: %s", resp)
	}
	return resp, nil
}

// Status fetches the group's status from replica i.
func (c *Client) Status(i int) (GroupStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	status, resp, err := c.roundTrip(i, KindStatus, 0, nil)
	if err != nil {
		return GroupStatus{}, err
	}
	if status != StatusOK {
		return GroupStatus{}, fmt.Errorf("server: status failed: %s", resp)
	}
	return decodeGroupStatus(resp)
}

// FetchShardMap asks the replica at i for the deployment's shard map.
func (c *Client) FetchShardMap(i int) (*shard.ShardMap, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	status, resp, err := c.roundTrip(i, KindShardMap, 0, nil)
	if err != nil {
		return nil, err
	}
	if status != StatusOK {
		return nil, fmt.Errorf("server: shard map fetch failed: %s", resp)
	}
	return shard.DecodeShardMapBytes(resp)
}

// Close closes all connections.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, conn := range c.conns {
		conn.Close()
	}
	c.conns = make(map[int]net.Conn)
}

// NewShardRouter builds a keyed router over a sharded deployment:
// nodeAddrs maps node id → that process's client address, and each
// group's client follows that group's placement row. Client ids are
// idBase+group.
func NewShardRouter(idBase uint64, m *shard.ShardMap, nodeAddrs []string) (*shard.Router, error) {
	if len(nodeAddrs) != m.Nodes {
		return nil, fmt.Errorf("server: %d node addresses for a %d-node map", len(nodeAddrs), m.Nodes)
	}
	clients := make([]shard.GroupClient, m.Groups())
	for g := range clients {
		addrs := make([]string, m.Replicas(g))
		for r := range addrs {
			addrs[r] = nodeAddrs[m.Placement[g][r]]
		}
		clients[g] = NewGroupClient(idBase+uint64(g), g, addrs)
	}
	return shard.NewRouter(m, clients)
}
