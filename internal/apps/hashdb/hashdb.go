// Package hashdb is a Kyoto-Cabinet-style hash database (§6.3): the key
// space is divided into 1024 slices, each protected by a Rex
// readers–writer lock, plus a metadata lock and a condition variable used
// by the periodic auto-sync barrier (Table 1: Lock, Cond, ReadWriteLock).
package hashdb

import (
	"fmt"
	"io"
	"sort"
	"time"

	"rex/internal/core"
	"rex/internal/rexsync"
	"rex/internal/sched"
	"rex/internal/shard"
	"rex/internal/wire"
)

// Op codes.
const (
	OpSet byte = 1
	OpGet byte = 2
	OpDel byte = 3
	// OpSweep scans every slice (a whole-table stat pass). It touches all
	// slice locks, so it classifies as catch-all and runs under the
	// conflict-class dispatch barrier.
	OpSweep byte = 4
)

// Options configure the database.
type Options struct {
	Slices    int
	SyncEvery time.Duration
	SyncCost  time.Duration
	SetCost   time.Duration
	GetCost   time.Duration
}

// DefaultOptions mirror Kyoto Cabinet's 1024-slice layout.
func DefaultOptions() Options {
	return Options{
		Slices:    1024,
		SyncEvery: 25 * time.Millisecond,
		SyncCost:  200 * time.Microsecond,
		SetCost:   50 * time.Microsecond,
		GetCost:   35 * time.Microsecond,
	}
}

// Timers reports the number of background tasks the factory registers.
func Timers() int { return 1 }

// Primitives lists the Rex primitives used (Table 1).
func Primitives() []string { return []string{"Lock", "Cond", "ReadWriteLock"} }

// DB is the hash-database state machine.
type DB struct {
	opts   Options
	locks  []*rexsync.RWLock
	slices []map[string][]byte

	// meta guards record counting and the auto-sync barrier; writers wait
	// on syncDone while a sync is in progress.
	meta     *rexsync.Lock
	syncDone *rexsync.Cond
	count    int64
	dirty    int64
	syncing  bool
	syncs    uint64
}

// New returns a core.Factory for the database. It registers one auto-sync
// timer; pass Timers() as Config.Timers.
func New(opts Options) core.Factory {
	return func(rt *sched.Runtime, host *core.TimerHost) core.StateMachine {
		db := &DB{opts: opts}
		for i := 0; i < opts.Slices; i++ {
			// Slice i is owned by conflict class i+1 (matching
			// ClassifyConflict): only that class's handlers, barriered
			// catch-all sweeps, and native-mode readers touch it, and the
			// auto-sync timer never does — so single-key ops elide the
			// slice-lock events from the trace.
			db.locks = append(db.locks, rexsync.NewRWLockInClass(rt, fmt.Sprintf("hdb-slice-%d", i), uint32(i)+1))
			db.slices = append(db.slices, make(map[string][]byte))
		}
		db.meta = rexsync.NewLock(rt, "hdb-meta")
		db.syncDone = rexsync.NewCond(rt, "hdb-sync-done", db.meta)
		host.AddTimer("hdb-sync", opts.SyncEvery, db.autoSync)
		return db
	}
}

func (db *DB) slice(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h % uint32(db.opts.Slices))
}

// autoSync is Kyoto Cabinet's periodic msync stand-in: it briefly blocks
// metadata writers while "flushing".
func (db *DB) autoSync(ctx *core.Ctx) {
	w := ctx.Worker()
	db.meta.Lock(w)
	if db.dirty == 0 {
		db.meta.Unlock(w)
		return
	}
	db.syncing = true
	dirty := db.dirty
	db.meta.Unlock(w)

	// Flush cost proportional to dirtiness, outside the lock.
	cost := time.Duration(dirty) * db.opts.SyncCost / 64
	if cost > 4*db.opts.SyncCost {
		cost = 4 * db.opts.SyncCost
	}
	ctx.Compute(db.opts.SyncCost + cost)

	db.meta.Lock(w)
	db.dirty = 0
	db.syncing = false
	db.syncs++
	db.syncDone.Broadcast(w)
	db.meta.Unlock(w)
}

// Apply implements core.StateMachine.
func (db *DB) Apply(ctx *core.Ctx, req []byte) []byte {
	w := ctx.Worker()
	d := wire.NewDecoder(req)
	op := d.Byte()
	key := d.String()
	sl := db.slice(key)
	switch op {
	case OpSet:
		val := append([]byte(nil), d.BytesVal()...)
		ctx.Compute(db.opts.SetCost)
		db.locks[sl].Lock(w)
		_, existed := db.slices[sl][key]
		db.slices[sl][key] = val
		db.locks[sl].Unlock(w)
		db.meta.Lock(w)
		for db.syncing {
			db.syncDone.Wait(w)
		}
		if !existed {
			db.count++
		}
		db.dirty++
		db.meta.Unlock(w)
		return []byte{1}
	case OpGet:
		ctx.Compute(db.opts.GetCost)
		db.locks[sl].RLock(w)
		v, ok := db.slices[sl][key]
		db.locks[sl].RUnlock(w)
		e := wire.NewEncoder(nil)
		e.Bool(ok)
		e.BytesVal(v)
		return e.Bytes()
	case OpDel:
		ctx.Compute(db.opts.SetCost)
		db.locks[sl].Lock(w)
		_, existed := db.slices[sl][key]
		delete(db.slices[sl], key)
		db.locks[sl].Unlock(w)
		if existed {
			db.meta.Lock(w)
			for db.syncing {
				db.syncDone.Wait(w)
			}
			db.count--
			db.dirty++
			db.meta.Unlock(w)
		}
		return []byte{1}
	case OpSweep:
		// Whole-table stat pass: read-lock every slice in order and total
		// the keys and value bytes. Both totals are order-independent, so
		// the response is deterministic despite map iteration.
		var keys, bytes uint64
		for i := range db.slices {
			db.locks[i].RLock(w)
			for _, v := range db.slices[i] {
				keys++
				bytes += uint64(len(v))
			}
			db.locks[i].RUnlock(w)
		}
		e := wire.NewEncoder(nil)
		e.Uvarint(keys)
		e.Uvarint(bytes)
		return e.Bytes()
	}
	return []byte{0xff}
}

// ClassifyConflict implements core.ConflictClassifier: single-key ops
// conflict only within their slice (class = slice index + 1); a sweep —
// or any unknown op — may touch everything and classifies as catch-all.
// The meta lock and sync condition variable are shared across classes,
// but they are not class-owned, so their events stay fully traced and
// cross-class ordering through them is preserved.
func (db *DB) ClassifyConflict(req []byte) core.ConflictClass {
	d := wire.NewDecoder(req)
	op := d.Byte()
	key := d.String()
	if d.Err() != nil {
		return core.ConflictAll
	}
	switch op {
	case OpSet, OpGet, OpDel:
		return core.ConflictClass(db.slice(key)) + 1
	}
	return core.ConflictAll
}

// Query implements core.QueryHandler: unreplicated reads.
func (db *DB) Query(ctx *core.Ctx, q []byte) []byte {
	return db.Apply(ctx, q)
}

// ClassifyQuery implements core.QueryClassifier. Gets read under the
// slice RW locks without touching any state, so secondaries may serve
// them; a set or delete smuggled through Query would fork the replica's
// state from the committed trace and stays primary-only.
func (db *DB) ClassifyQuery(q []byte) core.QueryClass {
	if len(q) > 0 && q[0] == OpGet {
		return core.QueryFollowerOK
	}
	return core.QueryPrimaryOnly
}

// WriteCheckpoint implements core.StateMachine.
func (db *DB) WriteCheckpoint(w io.Writer) error {
	e := wire.NewEncoder(nil)
	e.Varint(db.count)
	e.Varint(db.dirty)
	e.Uvarint(db.syncs)
	for _, m := range db.slices {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		e.Uvarint(uint64(len(keys)))
		for _, k := range keys {
			e.String(k)
			e.BytesVal(m[k])
		}
	}
	_, err := w.Write(e.Bytes())
	return err
}

// ReadCheckpoint implements core.StateMachine.
func (db *DB) ReadCheckpoint(r io.Reader) error {
	buf, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	d := wire.NewDecoder(buf)
	db.count = d.Varint()
	db.dirty = d.Varint()
	db.syncs = d.Uvarint()
	for i := range db.slices {
		n := d.Uvarint()
		db.slices[i] = make(map[string][]byte, n)
		for j := uint64(0); j < n; j++ {
			k := d.String()
			db.slices[i][k] = append([]byte(nil), d.BytesVal()...)
		}
	}
	return d.Err()
}

// inRange reports whether key's shard hash lies in [lo, hi].
func inRange(key string, lo, hi uint64) bool {
	h := shard.HashKey([]byte(key))
	return lo <= h && h <= hi
}

// ExportRange implements core.RangeStateMachine: it serializes every key
// whose shard hash lies in [lo, hi], slice by slice with keys sorted, so
// the blob is deterministic despite map iteration. It touches every
// slice lock, like a sweep; the rebalance wrapper runs it as a catch-all
// replicated op or under a linearizable query's drained barrier.
func (db *DB) ExportRange(ctx *core.Ctx, lo, hi uint64) []byte {
	w := ctx.Worker()
	e := wire.NewEncoder(nil)
	for i := range db.slices {
		db.locks[i].RLock(w)
		keys := make([]string, 0, 8)
		for k := range db.slices[i] {
			if inRange(k, lo, hi) {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		e.Uvarint(uint64(len(keys)))
		for _, k := range keys {
			e.String(k)
			e.BytesVal(db.slices[i][k])
		}
		db.locks[i].RUnlock(w)
	}
	return e.Bytes()
}

// ImportRange implements core.RangeStateMachine, merging a blob written
// by ExportRange (overwriting existing keys).
func (db *DB) ImportRange(ctx *core.Ctx, blob []byte) {
	w := ctx.Worker()
	d := wire.NewDecoder(blob)
	var added int64
	for i := range db.slices {
		n := d.Uvarint()
		if n == 0 || d.Err() != nil {
			continue
		}
		db.locks[i].Lock(w)
		for j := uint64(0); j < n && d.Err() == nil; j++ {
			k := d.String()
			v := append([]byte(nil), d.BytesVal()...)
			if _, existed := db.slices[i][k]; !existed {
				added++
			}
			db.slices[i][k] = v
		}
		db.locks[i].Unlock(w)
	}
	db.meta.Lock(w)
	db.count += added
	db.dirty += added
	db.meta.Unlock(w)
}

// DropRange implements core.RangeStateMachine, deleting every key whose
// shard hash lies in [lo, hi]. The set of deleted keys is a pure
// function of the state, so the result is deterministic despite map
// iteration order.
func (db *DB) DropRange(ctx *core.Ctx, lo, hi uint64) {
	w := ctx.Worker()
	var removed int64
	for i := range db.slices {
		db.locks[i].Lock(w)
		var doomed []string
		for k := range db.slices[i] {
			if inRange(k, lo, hi) {
				doomed = append(doomed, k)
			}
		}
		for _, k := range doomed {
			delete(db.slices[i], k)
			removed++
		}
		db.locks[i].Unlock(w)
	}
	if removed > 0 {
		db.meta.Lock(w)
		db.count -= removed
		db.dirty += removed
		db.meta.Unlock(w)
	}
}

// SetReq encodes a set.
func SetReq(key string, val []byte) []byte {
	e := wire.NewEncoder(nil)
	e.Byte(OpSet)
	e.String(key)
	e.BytesVal(val)
	return e.Bytes()
}

// GetReq encodes a get.
func GetReq(key string) []byte {
	e := wire.NewEncoder(nil)
	e.Byte(OpGet)
	e.String(key)
	return e.Bytes()
}

// DelReq encodes a delete.
func DelReq(key string) []byte {
	e := wire.NewEncoder(nil)
	e.Byte(OpDel)
	e.String(key)
	return e.Bytes()
}

// SweepReq encodes a whole-table sweep (catch-all conflict class).
func SweepReq() []byte {
	e := wire.NewEncoder(nil)
	e.Byte(OpSweep)
	e.String("")
	return e.Bytes()
}
