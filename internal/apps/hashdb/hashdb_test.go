package hashdb

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"rex/internal/core"
	"rex/internal/sim"
	"rex/internal/wire"
)

func newHost(t *testing.T, e *sim.Env, opts Options) *core.NativeHost {
	t.Helper()
	h, err := core.NewNativeHost(e, 2, Timers(), 1, New(opts))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func get(t *testing.T, h *core.NativeHost, key string) (string, bool) {
	t.Helper()
	d := wire.NewDecoder(h.Apply(0, GetReq(key)))
	ok := d.Bool()
	return string(d.BytesVal()), ok
}

func TestSetGetDelete(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		h := newHost(t, e, DefaultOptions())
		h.Apply(0, SetReq("a", []byte("1")))
		h.Apply(0, SetReq("b", []byte("2")))
		if v, ok := get(t, h, "a"); !ok || v != "1" {
			t.Errorf("a = %q %v", v, ok)
		}
		h.Apply(0, DelReq("a"))
		if _, ok := get(t, h, "a"); ok {
			t.Error("deleted key found")
		}
		db := h.SM.(*DB)
		if db.count != 1 {
			t.Errorf("count = %d, want 1", db.count)
		}
	})
}

func TestAutoSyncClearsDirty(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		opts := DefaultOptions()
		opts.Slices = 8
		opts.SyncEvery = 5 * time.Millisecond
		h := newHost(t, e, opts)
		h.StartTimers()
		for i := 0; i < 20; i++ {
			h.Apply(0, SetReq(fmt.Sprintf("k%d", i), []byte("v")))
		}
		e.Sleep(50 * time.Millisecond)
		h.Stop()
		db := h.SM.(*DB)
		if db.dirty != 0 {
			t.Errorf("dirty = %d after sync window", db.dirty)
		}
		if db.syncs == 0 {
			t.Error("auto-sync never ran")
		}
	})
}

func TestCheckpointRoundTrip(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		opts := DefaultOptions()
		opts.Slices = 8
		h := newHost(t, e, opts)
		for i := 0; i < 30; i++ {
			h.Apply(0, SetReq(fmt.Sprintf("key-%02d", i), []byte(fmt.Sprintf("val-%d", i))))
		}
		var buf bytes.Buffer
		if err := h.SM.WriteCheckpoint(&buf); err != nil {
			t.Fatal(err)
		}
		h2 := newHost(t, e, opts)
		if err := h2.SM.ReadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			if v, ok := get(t, h2, fmt.Sprintf("key-%02d", i)); !ok || v != fmt.Sprintf("val-%d", i) {
				t.Fatalf("restored key-%02d = %q %v", i, v, ok)
			}
		}
		var buf2 bytes.Buffer
		h2.SM.WriteCheckpoint(&buf2)
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Error("checkpoint round trip not idempotent")
		}
	})
}

// TestClassifyQuery pins the read-path classification: only gets may be
// served from a secondary; mutating ops smuggled through Query stay on
// the primary.
func TestClassifyQuery(t *testing.T) {
	var db DB // ClassifyQuery is stateless
	if got := db.ClassifyQuery(GetReq("k")); got != core.QueryFollowerOK {
		t.Errorf("ClassifyQuery(get) = %v, want QueryFollowerOK", got)
	}
	for _, q := range [][]byte{SetReq("k", []byte("v")), DelReq("k"), nil} {
		if got := db.ClassifyQuery(q); got != core.QueryPrimaryOnly {
			t.Errorf("ClassifyQuery(%q) = %v, want QueryPrimaryOnly", q, got)
		}
	}
}
