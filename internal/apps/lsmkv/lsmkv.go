// Package lsmkv is a from-scratch log-structured-merge key/value store
// standing in for LevelDB in the paper's evaluation (§6.3). The key space
// is divided into slices, each a small LSM tree: an in-memory memtable,
// rotated into immutable sorted runs, merged by a background compaction
// task registered through Rex's AddTimer — the paper's canonical example
// of a background task that must pause at checkpoints (§3.3). Writers
// stall on a Rex condition variable when a slice accumulates too many
// unmerged runs, exactly like LevelDB's write stalls (Table 1: Lock, Cond).
package lsmkv

import (
	"fmt"
	"io"
	"sort"
	"time"

	"rex/internal/core"
	"rex/internal/rexsync"
	"rex/internal/sched"
	"rex/internal/wire"
)

// Op codes.
const (
	OpPut byte = 1
	OpGet byte = 2
	OpDel byte = 3
)

// Options configure the store.
type Options struct {
	Slices int
	// FlushBytes rotates a slice's memtable into an immutable run.
	FlushBytes int
	// StallRuns blocks writers while a slice has this many pending runs.
	StallRuns int
	// CompactEvery is the background compaction period.
	CompactEvery time.Duration
	// CPU cost model.
	PutCost, GetCost time.Duration
	CompactPerKey    time.Duration
}

// DefaultOptions mirror the paper's 256-slice configuration.
func DefaultOptions() Options {
	return Options{
		Slices:        256,
		FlushBytes:    16 << 10,
		StallRuns:     6,
		CompactEvery:  10 * time.Millisecond,
		PutCost:       60 * time.Microsecond,
		GetCost:       40 * time.Microsecond,
		CompactPerKey: 300 * time.Nanosecond,
	}
}

// Timers reports the number of background tasks the factory registers.
func Timers() int { return 1 }

// Primitives lists the Rex primitives used (Table 1).
func Primitives() []string { return []string{"Lock", "Cond"} }

// run is an immutable sorted string table.
type run struct {
	keys []string
	vals [][]byte // nil value = tombstone
}

func (r *run) get(key string) ([]byte, bool) {
	i := sort.SearchStrings(r.keys, key)
	if i < len(r.keys) && r.keys[i] == key {
		return r.vals[i], true
	}
	return nil, false
}

// slice is one shard's LSM tree; all fields are guarded by lock.
type slice struct {
	lock     *rexsync.Lock
	stall    *rexsync.Cond
	mem      map[string][]byte
	memBytes int
	runs     []*run // newest first
}

// Store is the LSM state machine.
type Store struct {
	opts   Options
	slices []*slice
}

// New returns a core.Factory for the store. It registers one background
// compaction timer; pass Timers() as Config.Timers.
func New(opts Options) core.Factory {
	return func(rt *sched.Runtime, host *core.TimerHost) core.StateMachine {
		s := &Store{opts: opts}
		for i := 0; i < opts.Slices; i++ {
			l := rexsync.NewLock(rt, fmt.Sprintf("lsm-slice-%d", i))
			s.slices = append(s.slices, &slice{
				lock:  l,
				stall: rexsync.NewCond(rt, fmt.Sprintf("lsm-stall-%d", i), l),
				mem:   make(map[string][]byte),
			})
		}
		host.AddTimer("lsm-compact", opts.CompactEvery, s.compact)
		return s
	}
}

func (s *Store) slice(key string) *slice {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return s.slices[h%uint32(s.opts.Slices)]
}

// rotateLocked turns the memtable into a sorted immutable run. Caller
// holds the slice lock.
func (sl *slice) rotateLocked() {
	if len(sl.mem) == 0 {
		return
	}
	r := &run{keys: make([]string, 0, len(sl.mem)), vals: make([][]byte, 0, len(sl.mem))}
	for k := range sl.mem {
		r.keys = append(r.keys, k)
	}
	sort.Strings(r.keys)
	for _, k := range r.keys {
		r.vals = append(r.vals, sl.mem[k])
	}
	sl.runs = append([]*run{r}, sl.runs...)
	sl.mem = make(map[string][]byte)
	sl.memBytes = 0
}

// compact is the background task: it merges each slice's runs down to one
// and wakes stalled writers (LevelDB's compaction thread).
func (s *Store) compact(ctx *core.Ctx) {
	w := ctx.Worker()
	for _, sl := range s.slices {
		sl.lock.Lock(w)
		if sl.memBytes >= s.opts.FlushBytes {
			sl.rotateLocked()
		}
		if len(sl.runs) > 1 {
			merged := mergeRuns(sl.runs)
			// Charge CPU proportional to the merged volume.
			ctx.Compute(time.Duration(len(merged.keys)) * s.opts.CompactPerKey)
			sl.runs = []*run{merged}
			sl.stall.Broadcast(w)
		}
		sl.lock.Unlock(w)
	}
}

// mergeRuns merges newest-first runs, newest value winning; tombstones are
// dropped from the final run.
func mergeRuns(runs []*run) *run {
	seen := make(map[string]int) // key → index of newest run containing it
	var keys []string
	for ri, r := range runs {
		for _, k := range r.keys {
			if _, ok := seen[k]; !ok {
				seen[k] = ri
				keys = append(keys, k)
			}
		}
	}
	sort.Strings(keys)
	out := &run{}
	for _, k := range keys {
		v, _ := runs[seen[k]].get(k)
		if v == nil {
			continue // tombstone
		}
		out.keys = append(out.keys, k)
		out.vals = append(out.vals, v)
	}
	return out
}

// getLocked looks a key up through the LSM hierarchy. Caller holds the
// slice lock.
func (sl *slice) getLocked(key string) ([]byte, bool) {
	if v, ok := sl.mem[key]; ok {
		return v, v != nil
	}
	for _, r := range sl.runs {
		if v, ok := r.get(key); ok {
			return v, v != nil
		}
	}
	return nil, false
}

// Apply implements core.StateMachine.
func (s *Store) Apply(ctx *core.Ctx, req []byte) []byte {
	w := ctx.Worker()
	d := wire.NewDecoder(req)
	op := d.Byte()
	key := d.String()
	sl := s.slice(key)
	switch op {
	case OpPut, OpDel:
		var val []byte
		if op == OpPut {
			val = append([]byte(nil), d.BytesVal()...)
		}
		ctx.Compute(s.opts.PutCost)
		sl.lock.Lock(w)
		for len(sl.runs) >= s.opts.StallRuns {
			// Write stall: wait for the compaction task (Cond, Table 1).
			sl.stall.Wait(w)
		}
		sl.mem[key] = val
		sl.memBytes += len(key) + len(val) + 16
		if sl.memBytes >= s.opts.FlushBytes {
			sl.rotateLocked()
		}
		sl.lock.Unlock(w)
		return []byte{1}
	case OpGet:
		ctx.Compute(s.opts.GetCost)
		sl.lock.Lock(w)
		v, ok := sl.getLocked(key)
		sl.lock.Unlock(w)
		e := wire.NewEncoder(nil)
		e.Bool(ok)
		e.BytesVal(v)
		return e.Bytes()
	}
	return []byte{0xff}
}

// Query implements core.QueryHandler: unreplicated reads.
func (s *Store) Query(ctx *core.Ctx, q []byte) []byte {
	return s.Apply(ctx, q)
}

// ClassifyQuery implements core.QueryClassifier. Gets walk the memtable
// and runs read-only, so secondaries may serve them; puts and deletes
// reached through Query stay primary-only.
func (s *Store) ClassifyQuery(q []byte) core.QueryClass {
	if len(q) > 0 && q[0] == OpGet {
		return core.QueryFollowerOK
	}
	return core.QueryPrimaryOnly
}

// ClassifyConflict implements core.ConflictClassifier: single-key ops
// conflict only within their slice (class = slice index + 1), which gives
// same-slice requests deterministic per-thread serialization. The slice
// locks themselves stay UNOWNED — the compaction timer takes every one of
// them, which the class-ownership contract forbids — so classification
// here buys dispatch locality but no event elision (the paper's §4.2
// trade-off shows up as a negative result for compaction-style apps).
func (s *Store) ClassifyConflict(req []byte) core.ConflictClass {
	d := wire.NewDecoder(req)
	op := d.Byte()
	key := d.String()
	if d.Err() != nil {
		return core.ConflictAll
	}
	switch op {
	case OpPut, OpGet, OpDel:
		h := uint32(2166136261)
		for i := 0; i < len(key); i++ {
			h = (h ^ uint32(key[i])) * 16777619
		}
		return core.ConflictClass(h%uint32(s.opts.Slices)) + 1
	}
	return core.ConflictAll
}

// WriteCheckpoint implements core.StateMachine.
func (s *Store) WriteCheckpoint(w io.Writer) error {
	e := wire.NewEncoder(nil)
	for _, sl := range s.slices {
		keys := make([]string, 0, len(sl.mem))
		for k := range sl.mem {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		e.Uvarint(uint64(len(keys)))
		for _, k := range keys {
			e.String(k)
			v := sl.mem[k]
			e.Bool(v != nil)
			e.BytesVal(v)
		}
		e.Uvarint(uint64(len(sl.runs)))
		for _, r := range sl.runs {
			e.Uvarint(uint64(len(r.keys)))
			for i, k := range r.keys {
				e.String(k)
				e.Bool(r.vals[i] != nil)
				e.BytesVal(r.vals[i])
			}
		}
	}
	_, err := w.Write(e.Bytes())
	return err
}

// ReadCheckpoint implements core.StateMachine.
func (s *Store) ReadCheckpoint(rd io.Reader) error {
	buf, err := io.ReadAll(rd)
	if err != nil {
		return err
	}
	d := wire.NewDecoder(buf)
	for _, sl := range s.slices {
		n := d.Uvarint()
		sl.mem = make(map[string][]byte, n)
		sl.memBytes = 0
		for j := uint64(0); j < n; j++ {
			k := d.String()
			live := d.Bool()
			v := append([]byte(nil), d.BytesVal()...)
			if !live {
				v = nil
			}
			sl.mem[k] = v
			sl.memBytes += len(k) + len(v) + 16
		}
		nr := d.Uvarint()
		sl.runs = nil
		for j := uint64(0); j < nr; j++ {
			nk := d.Uvarint()
			r := &run{}
			for i := uint64(0); i < nk; i++ {
				r.keys = append(r.keys, d.String())
				live := d.Bool()
				v := append([]byte(nil), d.BytesVal()...)
				if !live {
					v = nil
				}
				r.vals = append(r.vals, v)
			}
			sl.runs = append(sl.runs, r)
		}
	}
	return d.Err()
}

// PutReq encodes a put.
func PutReq(key string, val []byte) []byte {
	e := wire.NewEncoder(nil)
	e.Byte(OpPut)
	e.String(key)
	e.BytesVal(val)
	return e.Bytes()
}

// GetReq encodes a get.
func GetReq(key string) []byte {
	e := wire.NewEncoder(nil)
	e.Byte(OpGet)
	e.String(key)
	return e.Bytes()
}

// DelReq encodes a delete.
func DelReq(key string) []byte {
	e := wire.NewEncoder(nil)
	e.Byte(OpDel)
	e.String(key)
	return e.Bytes()
}
