package lsmkv

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"rex/internal/core"
	"rex/internal/sim"
	"rex/internal/wire"
)

func newHost(t *testing.T, e *sim.Env, opts Options) *core.NativeHost {
	t.Helper()
	h, err := core.NewNativeHost(e, 2, Timers(), 1, New(opts))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func get(t *testing.T, h *core.NativeHost, key string) (string, bool) {
	t.Helper()
	resp := h.Apply(0, GetReq(key))
	d := wire.NewDecoder(resp)
	ok := d.Bool()
	v := string(d.BytesVal())
	if d.Err() != nil {
		t.Fatalf("bad get response: %v", d.Err())
	}
	return v, ok
}

func TestPutGetDelete(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		h := newHost(t, e, DefaultOptions())
		if _, ok := get(t, h, "missing"); ok {
			t.Error("found a missing key")
		}
		h.Apply(0, PutReq("k1", []byte("v1")))
		if v, ok := get(t, h, "k1"); !ok || v != "v1" {
			t.Errorf("get k1 = %q %v", v, ok)
		}
		h.Apply(0, PutReq("k1", []byte("v2")))
		if v, _ := get(t, h, "k1"); v != "v2" {
			t.Errorf("overwrite: %q", v)
		}
		h.Apply(0, DelReq("k1"))
		if _, ok := get(t, h, "k1"); ok {
			t.Error("deleted key still found")
		}
	})
}

func TestFlushRotationAndLookupThroughRuns(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		opts := DefaultOptions()
		opts.Slices = 1
		opts.FlushBytes = 256 // rotate quickly
		h := newHost(t, e, opts)
		for i := 0; i < 50; i++ {
			h.Apply(0, PutReq(fmt.Sprintf("key-%02d", i), []byte("value")))
		}
		s := h.SM.(*Store)
		if len(s.slices[0].runs) == 0 {
			t.Fatal("no runs rotated despite tiny flush threshold")
		}
		// Every key must still be found through the run hierarchy.
		for i := 0; i < 50; i++ {
			if _, ok := get(t, h, fmt.Sprintf("key-%02d", i)); !ok {
				t.Fatalf("key-%02d lost after rotation", i)
			}
		}
	})
}

func TestCompactionMergesRunsAndKeepsNewest(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		opts := DefaultOptions()
		opts.Slices = 1
		opts.FlushBytes = 128
		opts.CompactEvery = 5 * time.Millisecond
		h := newHost(t, e, opts)
		h.StartTimers()
		for i := 0; i < 30; i++ {
			h.Apply(0, PutReq("hot", []byte(fmt.Sprintf("gen-%d", i))))
			h.Apply(0, PutReq(fmt.Sprintf("cold-%02d", i), []byte("x")))
		}
		e.Sleep(50 * time.Millisecond) // let compaction run
		h.Stop()
		s := h.SM.(*Store)
		if len(s.slices[0].runs) > 2 {
			t.Errorf("compaction left %d runs", len(s.slices[0].runs))
		}
		if v, ok := get(t, h, "hot"); !ok || v != "gen-29" {
			t.Errorf("hot = %q %v, want newest generation", v, ok)
		}
	})
}

func TestTombstonesSurviveCompaction(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		opts := DefaultOptions()
		opts.Slices = 1
		opts.FlushBytes = 64
		opts.CompactEvery = 5 * time.Millisecond
		h := newHost(t, e, opts)
		h.Apply(0, PutReq("doomed", []byte("alive")))
		// Force the put into a run, then delete and compact.
		for i := 0; i < 10; i++ {
			h.Apply(0, PutReq(fmt.Sprintf("filler-%d", i), []byte("xxxxxxxxxxxxxxxx")))
		}
		h.Apply(0, DelReq("doomed"))
		h.StartTimers()
		e.Sleep(50 * time.Millisecond)
		h.Stop()
		if _, ok := get(t, h, "doomed"); ok {
			t.Error("deleted key resurrected by compaction")
		}
	})
}

func TestCheckpointRoundTrip(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		opts := DefaultOptions()
		opts.Slices = 4
		opts.FlushBytes = 128
		h := newHost(t, e, opts)
		for i := 0; i < 40; i++ {
			h.Apply(0, PutReq(fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("v%d", i))))
		}
		h.Apply(0, DelReq("k05"))
		var buf bytes.Buffer
		if err := h.SM.WriteCheckpoint(&buf); err != nil {
			t.Fatal(err)
		}
		h2 := newHost(t, e, opts)
		if err := h2.SM.ReadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatal(err)
		}
		var buf2 bytes.Buffer
		if err := h2.SM.WriteCheckpoint(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Error("checkpoint round trip not idempotent")
		}
		if v, ok := get(t, h2, "k07"); !ok || v != "v7" {
			t.Errorf("restored k07 = %q %v", v, ok)
		}
		if _, ok := get(t, h2, "k05"); ok {
			t.Error("restored store resurrected a deleted key")
		}
	})
}

func TestQuickStoreMatchesMap(t *testing.T) {
	// Property: under any op sequence, the LSM store agrees with a plain
	// map (including through rotations and compactions).
	type op struct {
		Kind byte
		Key  uint8
		Val  uint16
	}
	f := func(ops []op) bool {
		result := true
		e := sim.New(2)
		e.Run(func() {
			opts := DefaultOptions()
			opts.Slices = 2
			opts.FlushBytes = 96
			opts.CompactEvery = time.Millisecond
			h, err := core.NewNativeHost(e, 1, Timers(), 1, New(opts))
			if err != nil {
				result = false
				return
			}
			h.StartTimers()
			model := make(map[string]string)
			for _, o := range ops {
				key := fmt.Sprintf("k%d", o.Key%16)
				switch o.Kind % 3 {
				case 0:
					val := fmt.Sprintf("v%d", o.Val)
					h.Apply(0, PutReq(key, []byte(val)))
					model[key] = val
				case 1:
					h.Apply(0, DelReq(key))
					delete(model, key)
				case 2:
					resp := h.Apply(0, GetReq(key))
					d := wire.NewDecoder(resp)
					ok := d.Bool()
					v := string(d.BytesVal())
					mv, mok := model[key]
					if ok != mok || (ok && v != mv) {
						result = false
						return
					}
				}
				e.Sleep(100 * time.Microsecond)
			}
			h.Stop()
		})
		return result
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
