package apps

import (
	"testing"
	"time"

	"rex/internal/cluster"
	"rex/internal/env"
	"rex/internal/sim"
)

// TestAllAppsReplicate drives each of the six applications through a full
// 3-replica cluster in the simulator: prefill, mixed workload from several
// clients, then convergence of all replicas to the same state — the
// end-to-end determinism property (§2.2) for every app in Table 1.
func TestAllAppsReplicate(t *testing.T) {
	for _, app := range All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			e := sim.New(8)
			e.Run(func() {
				c := cluster.New(e, app.Factory, cluster.Options{
					Replicas:        3,
					Workers:         4,
					Timers:          app.Timers,
					ReadWorkers:     1,
					ProposeEvery:    2 * time.Millisecond,
					HeartbeatEvery:  20 * time.Millisecond,
					ElectionTimeout: 100 * time.Millisecond,
					Seed:            7,
				})
				if err := c.Start(); err != nil {
					t.Fatalf("start: %v", err)
				}
				if _, err := c.WaitPrimary(5 * time.Second); err != nil {
					t.Fatal(err)
				}
				// Prefill from one client (a truncated setup to keep the
				// simulation fast).
				setupCl := c.NewClient(1)
				setup := app.NewWorkload(1).Setup()
				if len(setup) > 200 {
					setup = setup[:200]
				}
				for _, req := range setup {
					if _, err := setupCl.Do(req); err != nil {
						t.Fatalf("setup: %v", err)
					}
				}
				// Mixed load from 4 clients.
				g := env.NewGroup(e)
				for cid := 0; cid < 4; cid++ {
					cid := cid
					g.Add(1)
					e.Go("client", func() {
						defer g.Done()
						cl := c.NewClient(uint64(10 + cid))
						wl := app.NewWorkload(int64(100 + cid))
						for i := 0; i < 30; i++ {
							if _, err := cl.Do(wl.Next()); err != nil {
								t.Errorf("%s request: %v", app.Name, err)
								return
							}
						}
					})
				}
				g.Wait()
				// A read-only query must work on the primary.
				p := c.Primary()
				if p >= 0 {
					wl := app.NewWorkload(999)
					if _, err := c.Replicas[p].Query(wl.Query()); err != nil {
						t.Errorf("query: %v", err)
					}
				}
				state, err := c.WaitConverged(15 * time.Second)
				if err != nil {
					t.Fatal(err)
				}
				if len(state) == 0 {
					t.Error("converged on empty state")
				}
				c.Stop()
			})
		})
	}
}

// TestAppsSurviveFailover runs a shorter failover pass for each app: the
// primary is killed mid-load and the cluster must converge afterwards.
func TestAppsSurviveFailover(t *testing.T) {
	for _, app := range All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			e := sim.New(8)
			e.Run(func() {
				c := cluster.New(e, app.Factory, cluster.Options{
					Replicas:        3,
					Workers:         4,
					Timers:          app.Timers,
					ProposeEvery:    2 * time.Millisecond,
					HeartbeatEvery:  20 * time.Millisecond,
					ElectionTimeout: 100 * time.Millisecond,
					Seed:            13,
				})
				if err := c.Start(); err != nil {
					t.Fatalf("start: %v", err)
				}
				p, err := c.WaitPrimary(5 * time.Second)
				if err != nil {
					t.Fatal(err)
				}
				stop := false
				g := env.NewGroup(e)
				for cid := 0; cid < 3; cid++ {
					cid := cid
					g.Add(1)
					e.Go("client", func() {
						defer g.Done()
						cl := c.NewClient(uint64(20 + cid))
						wl := app.NewWorkload(int64(200 + cid))
						for !stop {
							if _, err := cl.Do(wl.Next()); err != nil {
								return
							}
						}
					})
				}
				e.Sleep(200 * time.Millisecond)
				c.Crash(p)
				e.Sleep(1500 * time.Millisecond)
				stop = true
				g.Wait()
				if err := c.Restart(p); err != nil {
					t.Fatal(err)
				}
				if _, err := c.WaitConverged(20 * time.Second); err != nil {
					t.Fatal(err)
				}
				c.Stop()
			})
		})
	}
}
