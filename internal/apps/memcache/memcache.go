// Package memcache is a memcached-style object cache (§6.3): a single hash
// table plus LRU, protected by three global locks (cache, slabs, stats),
// mirroring memcached's cache_lock / slabs_lock / stats_lock. The critical
// sections are deliberately coarse — the paper's negative result: the
// application does not scale even natively, so Rex cannot help it
// (Table 1: Lock, Cond).
package memcache

import (
	"container/list"
	"io"
	"time"

	"rex/internal/core"
	"rex/internal/rexsync"
	"rex/internal/sched"
	"rex/internal/wire"
)

// Op codes.
const (
	OpSet byte = 1
	OpGet byte = 2
	OpDel byte = 3
)

// Options configure the cache.
type Options struct {
	Capacity int // max items before LRU eviction
	// Costs spent INSIDE the global locks (the scaling killer).
	HashCost  time.Duration
	SlabCost  time.Duration
	StatsCost time.Duration
	// MaintainEvery is the slab-maintenance background task period.
	MaintainEvery time.Duration
}

// DefaultOptions reproduce memcached's coarse-grained behaviour.
func DefaultOptions() Options {
	return Options{
		Capacity:      1 << 18,
		HashCost:      60 * time.Microsecond,
		SlabCost:      20 * time.Microsecond,
		StatsCost:     5 * time.Microsecond,
		MaintainEvery: 50 * time.Millisecond,
	}
}

// Timers reports the number of background tasks the factory registers.
func Timers() int { return 1 }

// Primitives lists the Rex primitives used (Table 1).
func Primitives() []string { return []string{"Lock", "Cond"} }

type item struct {
	key string
	val []byte
	el  *list.Element
}

// Cache is the memcached-like state machine.
type Cache struct {
	opts Options

	cacheLock *rexsync.Lock // guards table + lru
	table     map[string]*item
	lru       *list.List // front = most recent

	slabsLock  *rexsync.Lock // guards allocation accounting
	slabBytes  int64
	evictions  uint64
	maintained uint64
	maintCond  *rexsync.Cond // slab maintainer's wakeup bookkeeping

	statsLock *rexsync.Lock
	gets      uint64
	sets      uint64
	hits      uint64
}

// New returns a core.Factory for the cache. It registers one maintenance
// timer; pass Timers() as Config.Timers.
func New(opts Options) core.Factory {
	return func(rt *sched.Runtime, host *core.TimerHost) core.StateMachine {
		c := &Cache{
			opts:  opts,
			table: make(map[string]*item),
			lru:   list.New(),
		}
		c.cacheLock = rexsync.NewLock(rt, "mc-cache")
		c.slabsLock = rexsync.NewLock(rt, "mc-slabs")
		c.statsLock = rexsync.NewLock(rt, "mc-stats")
		c.maintCond = rexsync.NewCond(rt, "mc-maint", c.slabsLock)
		host.AddTimer("mc-maintain", opts.MaintainEvery, c.maintain)
		return c
	}
}

// maintain is the slab rebalancer: bookkeeping under the slabs lock.
func (c *Cache) maintain(ctx *core.Ctx) {
	w := ctx.Worker()
	c.slabsLock.Lock(w)
	ctx.Compute(c.opts.SlabCost)
	c.maintained++
	// Wake anything waiting for slab pressure to drop (none in the
	// default workload, but the paper lists Cond for memcached).
	c.maintCond.Broadcast(w)
	c.slabsLock.Unlock(w)
}

// Apply implements core.StateMachine.
func (c *Cache) Apply(ctx *core.Ctx, req []byte) []byte {
	w := ctx.Worker()
	d := wire.NewDecoder(req)
	op := d.Byte()
	key := d.String()
	switch op {
	case OpSet:
		val := append([]byte(nil), d.BytesVal()...)
		// Slab allocation under the global slabs lock.
		c.slabsLock.Lock(w)
		ctx.Compute(c.opts.SlabCost)
		c.slabBytes += int64(len(key) + len(val))
		c.slabsLock.Unlock(w)
		// Hash insert + LRU under the global cache lock; the hash work
		// happens inside the lock, as in memcached.
		c.cacheLock.Lock(w)
		ctx.Compute(c.opts.HashCost)
		if it, ok := c.table[key]; ok {
			it.val = val
			c.lru.MoveToFront(it.el)
		} else {
			it := &item{key: key, val: val}
			it.el = c.lru.PushFront(it)
			c.table[key] = it
			if c.lru.Len() > c.opts.Capacity {
				back := c.lru.Back()
				victim := back.Value.(*item)
				c.lru.Remove(back)
				delete(c.table, victim.key)
				c.evictions++
			}
		}
		c.cacheLock.Unlock(w)
		c.statsLock.Lock(w)
		ctx.Compute(c.opts.StatsCost)
		c.sets++
		c.statsLock.Unlock(w)
		return []byte{1}
	case OpGet:
		c.cacheLock.Lock(w)
		ctx.Compute(c.opts.HashCost)
		it, ok := c.table[key]
		var val []byte
		if ok {
			val = it.val
			c.lru.MoveToFront(it.el)
		}
		c.cacheLock.Unlock(w)
		c.statsLock.Lock(w)
		ctx.Compute(c.opts.StatsCost)
		c.gets++
		if ok {
			c.hits++
		}
		c.statsLock.Unlock(w)
		e := wire.NewEncoder(nil)
		e.Bool(ok)
		e.BytesVal(val)
		return e.Bytes()
	case OpDel:
		c.cacheLock.Lock(w)
		ctx.Compute(c.opts.HashCost)
		if it, ok := c.table[key]; ok {
			c.lru.Remove(it.el)
			delete(c.table, key)
		}
		c.cacheLock.Unlock(w)
		return []byte{1}
	}
	return []byte{0xff}
}

// Query implements core.QueryHandler. Note: a memcached Get mutates the
// LRU, which would pollute replicated state if run natively; queries
// therefore read without touching recency (like a peek).
func (c *Cache) Query(ctx *core.Ctx, q []byte) []byte {
	w := ctx.Worker()
	d := wire.NewDecoder(q)
	_ = d.Byte()
	key := d.String()
	c.cacheLock.Lock(w)
	it, ok := c.table[key]
	var val []byte
	if ok {
		val = it.val
	}
	c.cacheLock.Unlock(w)
	e := wire.NewEncoder(nil)
	e.Bool(ok)
	e.BytesVal(val)
	return e.Bytes()
}

// ClassifyQuery implements core.QueryClassifier: always primary-only. A
// memcached get is not idempotent — Apply(OpGet) moves the item to the
// LRU front, so the "read" is semantically a write. Serving even the
// non-mutating peek from a secondary would advertise hits whose recency
// the replicated state never recorded, so cache reads are pinned to the
// primary (which sees the authoritative LRU).
func (c *Cache) ClassifyQuery([]byte) core.QueryClass { return core.QueryPrimaryOnly }

// ClassifyConflict implements core.ConflictClassifier: keys partition
// into 256 hash classes for deterministic dispatch. No lock is
// class-owned — every op serializes on the global cache/slabs/stats
// locks, so distinct key classes still share all mutable state and
// elision would be unsound. This is the paper's negative case: a
// globally-locked server gains nothing from conflict classes, and the
// fully-traced global locks keep it correct anyway.
func (c *Cache) ClassifyConflict(req []byte) core.ConflictClass {
	d := wire.NewDecoder(req)
	op := d.Byte()
	key := d.String()
	if d.Err() != nil {
		return core.ConflictAll
	}
	switch op {
	case OpSet, OpGet, OpDel:
		h := uint32(2166136261)
		for i := 0; i < len(key); i++ {
			h = (h ^ uint32(key[i])) * 16777619
		}
		return core.ConflictClass(h%256) + 1
	}
	return core.ConflictAll
}

// WriteCheckpoint implements core.StateMachine.
func (c *Cache) WriteCheckpoint(w io.Writer) error {
	e := wire.NewEncoder(nil)
	e.Varint(c.slabBytes)
	e.Uvarint(c.evictions)
	e.Uvarint(c.gets)
	e.Uvarint(c.sets)
	e.Uvarint(c.hits)
	e.Uvarint(uint64(c.lru.Len()))
	// Serialize in LRU order (front to back): order is part of state.
	for el := c.lru.Front(); el != nil; el = el.Next() {
		it := el.Value.(*item)
		e.String(it.key)
		e.BytesVal(it.val)
	}
	_, err := w.Write(e.Bytes())
	return err
}

// ReadCheckpoint implements core.StateMachine.
func (c *Cache) ReadCheckpoint(r io.Reader) error {
	buf, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	d := wire.NewDecoder(buf)
	c.slabBytes = d.Varint()
	c.evictions = d.Uvarint()
	c.gets = d.Uvarint()
	c.sets = d.Uvarint()
	c.hits = d.Uvarint()
	n := d.Uvarint()
	c.table = make(map[string]*item, n)
	c.lru = list.New()
	for j := uint64(0); j < n; j++ {
		it := &item{key: d.String()}
		it.val = append([]byte(nil), d.BytesVal()...)
		it.el = c.lru.PushBack(it)
		c.table[it.key] = it
	}
	return d.Err()
}

// SetReq encodes a set.
func SetReq(key string, val []byte) []byte {
	e := wire.NewEncoder(nil)
	e.Byte(OpSet)
	e.String(key)
	e.BytesVal(val)
	return e.Bytes()
}

// GetReq encodes a get.
func GetReq(key string) []byte {
	e := wire.NewEncoder(nil)
	e.Byte(OpGet)
	e.String(key)
	return e.Bytes()
}

// DelReq encodes a delete.
func DelReq(key string) []byte {
	e := wire.NewEncoder(nil)
	e.Byte(OpDel)
	e.String(key)
	return e.Bytes()
}
