package memcache

import (
	"bytes"
	"fmt"
	"testing"

	"rex/internal/core"
	"rex/internal/sim"
	"rex/internal/wire"
)

func newHost(t *testing.T, e *sim.Env, opts Options) *core.NativeHost {
	t.Helper()
	h, err := core.NewNativeHost(e, 2, Timers(), 1, New(opts))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func get(t *testing.T, h *core.NativeHost, key string) (string, bool) {
	t.Helper()
	d := wire.NewDecoder(h.Apply(0, GetReq(key)))
	ok := d.Bool()
	return string(d.BytesVal()), ok
}

func TestSetGetDelete(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		h := newHost(t, e, DefaultOptions())
		h.Apply(0, SetReq("a", []byte("1")))
		if v, ok := get(t, h, "a"); !ok || v != "1" {
			t.Errorf("a = %q %v", v, ok)
		}
		h.Apply(0, DelReq("a"))
		if _, ok := get(t, h, "a"); ok {
			t.Error("deleted key found")
		}
		c := h.SM.(*Cache)
		if c.gets != 2 || c.sets != 1 || c.hits != 1 {
			t.Errorf("stats gets=%d sets=%d hits=%d", c.gets, c.sets, c.hits)
		}
	})
}

func TestLRUEviction(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		opts := DefaultOptions()
		opts.Capacity = 4
		h := newHost(t, e, opts)
		for i := 0; i < 6; i++ {
			h.Apply(0, SetReq(fmt.Sprintf("k%d", i), []byte("v")))
		}
		// k0 and k1 must have been evicted (LRU order).
		for i := 0; i < 2; i++ {
			if _, ok := get(t, h, fmt.Sprintf("k%d", i)); ok {
				t.Errorf("k%d survived past capacity", i)
			}
		}
		for i := 2; i < 6; i++ {
			if _, ok := get(t, h, fmt.Sprintf("k%d", i)); !ok {
				t.Errorf("k%d evicted wrongly", i)
			}
		}
		if h.SM.(*Cache).evictions != 2 {
			t.Errorf("evictions = %d, want 2", h.SM.(*Cache).evictions)
		}
	})
}

func TestGetRefreshesRecency(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		opts := DefaultOptions()
		opts.Capacity = 2
		h := newHost(t, e, opts)
		h.Apply(0, SetReq("old", []byte("x")))
		h.Apply(0, SetReq("mid", []byte("y")))
		get(t, h, "old") // touch: "mid" becomes the LRU victim
		h.Apply(0, SetReq("new", []byte("z")))
		if _, ok := get(t, h, "old"); !ok {
			t.Error("touched entry was evicted")
		}
		if _, ok := get(t, h, "mid"); ok {
			t.Error("untouched entry survived")
		}
	})
}

func TestCheckpointPreservesLRUOrder(t *testing.T) {
	e := sim.New(2)
	e.Run(func() {
		opts := DefaultOptions()
		opts.Capacity = 3
		h := newHost(t, e, opts)
		h.Apply(0, SetReq("a", []byte("1")))
		h.Apply(0, SetReq("b", []byte("2")))
		h.Apply(0, SetReq("c", []byte("3")))
		get(t, h, "a") // a most recent; b is LRU victim
		var buf bytes.Buffer
		if err := h.SM.WriteCheckpoint(&buf); err != nil {
			t.Fatal(err)
		}
		h2 := newHost(t, e, opts)
		if err := h2.SM.ReadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatal(err)
		}
		h2.Apply(0, SetReq("d", []byte("4")))
		if _, ok := get(t, h2, "b"); ok {
			t.Error("LRU order lost across checkpoint: b should have been evicted")
		}
		if _, ok := get(t, h2, "a"); !ok {
			t.Error("most-recent entry evicted after restore")
		}
	})
}

// TestClassifyQueryPrimaryOnly pins the read-path classification: a
// memcached get mutates LRU order in Apply, so no query — not even the
// non-mutating peek — may be served from a secondary.
func TestClassifyQueryPrimaryOnly(t *testing.T) {
	var c Cache // ClassifyQuery is stateless
	for _, q := range [][]byte{GetReq("k"), SetReq("k", []byte("v")), DelReq("k"), nil} {
		if got := c.ClassifyQuery(q); got != core.QueryPrimaryOnly {
			t.Errorf("ClassifyQuery(%q) = %v, want QueryPrimaryOnly", q, got)
		}
	}
}
