// Package lockserver implements the paper's Chubby-like distributed lock
// service (§6.3): named locked files with leases. The namespace is divided
// into shards, each protected by a Rex readers–writer lock (Table 1:
// ReadWriteLock) — lease renewals only read the shard structure and take
// the read side, while create/update take the write side.
package lockserver

import (
	"fmt"
	"io"
	"sort"
	"time"

	"rex/internal/core"
	"rex/internal/rexsync"
	"rex/internal/sched"
	"rex/internal/wire"
)

// Op codes.
const (
	OpRenew  byte = 1 // renew the lease on a locked file
	OpCreate byte = 2 // create a locked file with content
	OpUpdate byte = 3 // replace a file's content
	OpInfo   byte = 4 // read lease/holder info (also the query op)
)

// Options configure the service.
type Options struct {
	Shards   int
	LeaseFor time.Duration
	// OpCost models the bookkeeping CPU per operation; content writes add
	// cost proportional to size.
	OpCost      time.Duration
	BytesPerOps time.Duration // CPU per 1 KiB of content written
	// HoldCost is CPU spent while holding the shard lock (lease-table
	// maintenance). The §6.5 query experiment raises it (with fewer
	// shards) so updates and queries genuinely contend.
	HoldCost time.Duration
}

// DefaultOptions match the paper's workload scale.
func DefaultOptions() Options {
	return Options{
		Shards:      128,
		LeaseFor:    12 * time.Second,
		OpCost:      30 * time.Microsecond,
		BytesPerOps: 8 * time.Microsecond,
	}
}

type entry struct {
	Holder  uint64
	Expiry  int64 // virtual nanoseconds
	Content []byte
	Renews  uint64
}

// Server is the lock-service state machine.
type Server struct {
	opts   Options
	locks  []*rexsync.RWLock
	shards []map[string]*entry
}

// New returns a core.Factory for the lock server.
func New(opts Options) core.Factory {
	return func(rt *sched.Runtime, host *core.TimerHost) core.StateMachine {
		s := &Server{opts: opts}
		for i := 0; i < opts.Shards; i++ {
			s.locks = append(s.locks, rexsync.NewRWLock(rt, fmt.Sprintf("ls-shard-%d", i)))
			s.shards = append(s.shards, make(map[string]*entry))
		}
		return s
	}
}

// Primitives lists the Rex primitives used (Table 1).
func Primitives() []string { return []string{"ReadWriteLock"} }

func (s *Server) shard(name string) int {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return int(h % uint32(s.opts.Shards))
}

// Apply implements core.StateMachine.
func (s *Server) Apply(ctx *core.Ctx, req []byte) []byte {
	w := ctx.Worker()
	d := wire.NewDecoder(req)
	op := d.Byte()
	name := d.String()
	client := d.Uvarint()
	sh := s.shard(name)
	ctx.Compute(s.opts.OpCost)
	switch op {
	case OpRenew:
		// Renewals dominate the workload (90%). They mutate the lease, so
		// they take the shard's write lock; read-only info requests and
		// queries take the read side. With many shards, write-side
		// contention stays low.
		now := ctx.Now()
		s.locks[sh].Lock(w)
		ctx.Compute(s.opts.HoldCost)
		en, ok := s.shards[sh][name]
		status := byte(0)
		if ok && en.Holder == client {
			en.Expiry = int64(now) + int64(s.opts.LeaseFor)
			en.Renews++
			status = 1
		}
		s.locks[sh].Unlock(w)
		return []byte{status}
	case OpCreate, OpUpdate:
		content := append([]byte(nil), d.BytesVal()...)
		ctx.Compute(time.Duration(len(content)) * s.opts.BytesPerOps / 1024)
		now := ctx.Now()
		s.locks[sh].Lock(w)
		en, ok := s.shards[sh][name]
		status := byte(1)
		switch {
		case op == OpCreate && ok:
			status = 0 // already exists
		case op == OpCreate:
			s.shards[sh][name] = &entry{Holder: client, Expiry: int64(now) + int64(s.opts.LeaseFor), Content: content}
		case !ok:
			status = 0 // update of missing file
		case en.Holder != client && en.Expiry > int64(now):
			status = 2 // held by someone else
		default:
			en.Holder = client
			en.Expiry = int64(now) + int64(s.opts.LeaseFor)
			en.Content = content
		}
		s.locks[sh].Unlock(w)
		return []byte{status}
	case OpInfo:
		s.locks[sh].RLock(w)
		en, ok := s.shards[sh][name]
		e := wire.NewEncoder(nil)
		e.Bool(ok)
		if ok {
			e.Uvarint(en.Holder)
			e.Uvarint(uint64(en.Expiry))
			e.Uvarint(en.Renews)
			e.Uvarint(uint64(len(en.Content)))
		}
		s.locks[sh].RUnlock(w)
		return e.Bytes()
	}
	return []byte{0xff}
}

// Query implements core.QueryHandler: OpInfo outside the replication
// protocol (the §6.5 experiment).
func (s *Server) Query(ctx *core.Ctx, q []byte) []byte {
	return s.Apply(ctx, q)
}

// WriteCheckpoint implements core.StateMachine.
func (s *Server) WriteCheckpoint(w io.Writer) error {
	e := wire.NewEncoder(nil)
	for _, m := range s.shards {
		names := make([]string, 0, len(m))
		for n := range m {
			names = append(names, n)
		}
		sort.Strings(names)
		e.Uvarint(uint64(len(names)))
		for _, n := range names {
			en := m[n]
			e.String(n)
			e.Uvarint(en.Holder)
			e.Uvarint(uint64(en.Expiry))
			e.Uvarint(en.Renews)
			e.BytesVal(en.Content)
		}
	}
	_, err := w.Write(e.Bytes())
	return err
}

// ReadCheckpoint implements core.StateMachine.
func (s *Server) ReadCheckpoint(r io.Reader) error {
	buf, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	d := wire.NewDecoder(buf)
	for i := range s.shards {
		n := d.Uvarint()
		s.shards[i] = make(map[string]*entry, n)
		for j := uint64(0); j < n; j++ {
			name := d.String()
			en := &entry{Holder: d.Uvarint(), Expiry: int64(d.Uvarint()), Renews: d.Uvarint()}
			en.Content = append([]byte(nil), d.BytesVal()...)
			s.shards[i][name] = en
		}
	}
	return d.Err()
}

// RenewReq encodes a lease renewal.
func RenewReq(name string, client uint64) []byte {
	e := wire.NewEncoder(nil)
	e.Byte(OpRenew)
	e.String(name)
	e.Uvarint(client)
	return e.Bytes()
}

// CreateReq encodes a create.
func CreateReq(name string, client uint64, content []byte) []byte {
	e := wire.NewEncoder(nil)
	e.Byte(OpCreate)
	e.String(name)
	e.Uvarint(client)
	e.BytesVal(content)
	return e.Bytes()
}

// UpdateReq encodes an update.
func UpdateReq(name string, client uint64, content []byte) []byte {
	e := wire.NewEncoder(nil)
	e.Byte(OpUpdate)
	e.String(name)
	e.Uvarint(client)
	e.BytesVal(content)
	return e.Bytes()
}

// InfoReq encodes an info read (usable via Submit or Query).
func InfoReq(name string) []byte {
	e := wire.NewEncoder(nil)
	e.Byte(OpInfo)
	e.String(name)
	e.Uvarint(0)
	return e.Bytes()
}
